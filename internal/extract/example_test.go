package extract_test

import (
	"fmt"

	"prodsynth/internal/extract"
)

// ExampleFromHTML shows the paper's §4 extractor on a merchant landing
// page: rows with exactly two cells become attribute-value pairs; the
// three-cell buy row and the single-cell banner are skipped.
func ExampleFromHTML() {
	page := `
	<html><body>
	<h1>Hitachi Deskstar T7K500</h1>
	<table>
	  <tr><td colspan="2">Free shipping this week only!</td></tr>
	  <tr><td>Brand</td><td>Hitachi</td></tr>
	  <tr><td>Capacity:</td><td>500 GB</td></tr>
	  <tr><td>RPM</td><td>7200</td></tr>
	  <tr><td>Qty</td><td><input value=1></td><td><a href="/cart">Buy</a></td></tr>
	</table>
	</body></html>`

	for _, av := range extract.FromHTML(page) {
		fmt.Printf("%s = %s\n", av.Name, av.Value)
	}
	// Output:
	// Brand = Hitachi
	// Capacity = 500 GB
	// RPM = 7200
}
