package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestAblationDropFeature(t *testing.T) {
	e := env(t)
	rows, err := AblationDropFeature(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 { // full + 6 drops
		t.Fatalf("rows = %d", len(rows))
	}
	full := rows[0]
	if full.Cov90 == 0 {
		t.Fatal("full model has zero coverage at 0.9")
	}
	// No single drop should improve coverage@0.9 by a large margin (the
	// features are complementary, not harmful).
	for _, r := range rows[1:] {
		if r.Cov90 > full.Cov90*3/2 {
			t.Errorf("%s coverage %d wildly exceeds full model %d", r.Name, r.Cov90, full.Cov90)
		}
	}
	var buf bytes.Buffer
	RenderAblation(&buf, "drop one feature", rows)
	if !strings.Contains(buf.String(), "without JS-MC") {
		t.Error("render missing rows")
	}
}

func TestAblationNameFeature(t *testing.T) {
	e := env(t)
	rows, err := AblationNameFeature(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The documented negative result: the name feature leaks the
	// auto-label, so adding it must not materially improve high-precision
	// coverage over the paper's configuration.
	if rows[1].Cov90 > rows[0].Cov90*2 {
		t.Errorf("name feature doubled coverage (%d vs %d); expected degeneracy", rows[1].Cov90, rows[0].Cov90)
	}
}

func TestAblationFusion(t *testing.T) {
	e := env(t)
	rows, err := AblationFusion(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Metric1 < 0.5 || r.Metric2 == 0 {
			t.Errorf("%s: precision %.3f products %.0f", r.Name, r.Metric1, r.Metric2)
		}
	}
	// Same clusters, same products count.
	if rows[0].Metric2 != rows[1].Metric2 {
		t.Errorf("fusion strategy changed product count: %v", rows)
	}
}

func TestAblationClusterKeys(t *testing.T) {
	e := env(t)
	rows, err := AblationClusterKeys(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	both, upc, mpn := rows[0], rows[1], rows[2]
	// Single-key configurations can only lose offers (fewer or equal
	// products than... actually fragmentation can create MORE clusters).
	// Firm assertion: every configuration synthesizes something and the
	// paper's both-keys setup has precision comparable to the best.
	for _, r := range rows {
		if r.Metric2 == 0 {
			t.Errorf("%s synthesized nothing", r.Name)
		}
	}
	if both.Metric1 < upc.Metric1-0.1 || both.Metric1 < mpn.Metric1-0.1 {
		t.Errorf("both-keys precision %.3f much worse than single-key (%.3f, %.3f)",
			both.Metric1, upc.Metric1, mpn.Metric1)
	}
}

func TestAblationExtraction(t *testing.T) {
	e := env(t)
	rows, err := AblationExtraction(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	tables, bullets := rows[0], rows[1]
	// Bullet-list extraction can only add evidence: it must synthesize at
	// least as many products (bullet-only merchants become extractable).
	if bullets.Metric2 < tables.Metric2 {
		t.Errorf("bullet extension lost products: %v vs %v", bullets.Metric2, tables.Metric2)
	}
	var buf bytes.Buffer
	RenderAblation(&buf, "extraction", rows, "attr precision", "products")
	if !strings.Contains(buf.String(), "bullet") {
		t.Error("render missing rows")
	}
}
