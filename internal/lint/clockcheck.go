package lint

import "go/ast"

// clockPackages are the packages that expose an injectable Clock: every
// timing decision in them must be testable without the wall clock, so
// fault schedules (fetch), recovery stats (durable), and wave timings
// (stream) stay deterministic under FakeClock-driven tests.
var clockPackages = map[string]bool{
	"prodsynth/internal/fetch":   true,
	"prodsynth/internal/durable": true,
	"prodsynth/internal/stream":  true,
}

// ClockCheck flags direct wall-clock and global-randomness use —
// time.Now, time.Since, and any math/rand import — in the packages that
// expose an injectable Clock. The one legitimate wall-clock site per
// package (the realClock implementation) and deterministic seeded RNGs
// carry lint:allow annotations.
var ClockCheck = &Analyzer{
	Name: "clockcheck",
	Doc:  "no direct time.Now/time.Since/math/rand in packages with an injectable Clock",
	Run:  runClockCheck,
}

func runClockCheck(pass *Pass) {
	if !clockPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, imp := range f.Ast.Imports {
			if p := imp.Path.Value; p == `"math/rand"` || p == `"math/rand/v2"` {
				pass.Reportf(imp.Pos(),
					"%s imports math/rand: randomness here must be seeded and injectable (see Policy.JitterSeed), not global", pass.Pkg.Path)
			}
		}
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			sel := f.PkgSel(e, "time")
			if sel == "Now" || sel == "Since" {
				pass.Reportf(n.Pos(),
					"direct time.%s in %s: route it through the package's injectable Clock so tests stay deterministic", sel, pass.Pkg.Path)
				return false
			}
			return true
		})
	}
}
