package serve

import (
	"prodsynth"
)

// The wire types: the JSON shapes of the daemon's request and response
// bodies. Specs are ordered lists of {name, value} pairs — not maps — so
// a round trip through the wire preserves the pipeline's deterministic
// spec ordering, and responses built from the same Result encode to
// byte-identical JSON in any process.

// AttrJSON is one attribute-value pair.
type AttrJSON struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// OfferJSON is one merchant offer as it travels in requests.
type OfferJSON struct {
	ID         string     `json:"id"`
	Merchant   string     `json:"merchant"`
	CategoryID string     `json:"category_id,omitempty"`
	Title      string     `json:"title"`
	PriceCents int64      `json:"price_cents,omitempty"`
	URL        string     `json:"url,omitempty"`
	ImageURL   string     `json:"image_url,omitempty"`
	Spec       []AttrJSON `json:"spec,omitempty"`
}

// PageJSON is one landing page supplied with a request.
type PageJSON struct {
	URL  string `json:"url"`
	HTML string `json:"html"`
}

// SynthesizeRequest is the body of POST /v1/synthesize.
type SynthesizeRequest struct {
	// Offers are the incoming offers to synthesize products from.
	Offers []OfferJSON `json:"offers"`
	// Pages are the offers' landing pages. A URL repeated with a
	// different body rejects the request (400): the map a fetcher is
	// built from must not silently keep the last duplicate.
	Pages []PageJSON `json:"pages,omitempty"`
	// TimeoutMillis optionally tightens the server's per-request timeout
	// for this request; it can never extend past the server's cap.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// StreamRequest is the body of POST /v1/synthesize/stream: the offers are
// pre-partitioned into waves, each processed in order with cross-wave
// cluster memory; the response is NDJSON, one StreamEventJSON per line.
type StreamRequest struct {
	Waves         [][]OfferJSON `json:"waves"`
	Pages         []PageJSON    `json:"pages,omitempty"`
	TimeoutMillis int64         `json:"timeout_ms,omitempty"`
	// MaxOpenClusters / MaxIdleWaves / DisableClusterMemory mirror
	// prodsynth.StreamOptions.
	MaxOpenClusters      int  `json:"max_open_clusters,omitempty"`
	MaxIdleWaves         int  `json:"max_idle_waves,omitempty"`
	DisableClusterMemory bool `json:"disable_cluster_memory,omitempty"`
}

// ProductJSON is one synthesized product.
type ProductJSON struct {
	CategoryID string     `json:"category_id"`
	Key        string     `json:"key"`
	KeyAttr    string     `json:"key_attr"`
	Spec       []AttrJSON `json:"spec"`
	OfferIDs   []string   `json:"offer_ids"`
}

// FetchReportJSON is the run's fetch accounting.
type FetchReportJSON struct {
	Attempted       int      `json:"attempted"`
	Attempts        int      `json:"attempts"`
	Retried         int      `json:"retried"`
	Recovered       int      `json:"recovered"`
	GaveUp          int      `json:"gave_up"`
	BreakerRejected int      `json:"breaker_rejected"`
	FeedOnly        []string `json:"feed_only,omitempty"`
}

// SynthesizeResponse is the body of a successful POST /v1/synthesize.
// Elapsed time is deliberately absent: the response is a pure function of
// the request and the model generation, so two identical requests against
// the same generation yield byte-identical bodies (latency lives in
// /metrics instead).
type SynthesizeResponse struct {
	Products         []ProductJSON   `json:"products"`
	Offers           int             `json:"offers"`
	Clusters         int             `json:"clusters"`
	PairsMapped      int             `json:"pairs_mapped"`
	PairsDropped     int             `json:"pairs_dropped"`
	OffersWithoutKey int             `json:"offers_without_key"`
	ExcludedMatched  int             `json:"excluded_matched"`
	ModelGeneration  uint64          `json:"model_generation"`
	Fetch            FetchReportJSON `json:"fetch"`
}

// SealedJSON is one ClusterSealed event on a stream line.
type SealedJSON struct {
	ClusterID int         `json:"cluster_id"`
	Wave      int         `json:"wave"`
	Reason    string      `json:"reason"`
	Product   ProductJSON `json:"product"`
}

// StreamEventJSON is one NDJSON line of POST /v1/synthesize/stream:
// type "wave" for each input wave (in order), then exactly one type
// "final" carrying the merged stream view. A failed wave reports its
// error in Error with the counters zeroed; the stream continues.
type StreamEventJSON struct {
	Type             string          `json:"type"`
	Wave             int             `json:"wave"`
	Products         []ProductJSON   `json:"products,omitempty"`
	Sealed           []SealedJSON    `json:"sealed,omitempty"`
	OpenClusters     int             `json:"open_clusters,omitempty"`
	Offers           int             `json:"offers"`
	Clusters         int             `json:"clusters"`
	PairsMapped      int             `json:"pairs_mapped"`
	PairsDropped     int             `json:"pairs_dropped"`
	OffersWithoutKey int             `json:"offers_without_key"`
	ExcludedMatched  int             `json:"excluded_matched"`
	ModelGeneration  uint64          `json:"model_generation"`
	Fetch            FetchReportJSON `json:"fetch"`
	Error            string          `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WireSpec converts a spec to its wire form.
func WireSpec(spec prodsynth.Spec) []AttrJSON {
	if spec == nil {
		return nil
	}
	out := make([]AttrJSON, len(spec))
	for i, av := range spec {
		out[i] = AttrJSON{Name: av.Name, Value: av.Value}
	}
	return out
}

func specFromWire(attrs []AttrJSON) prodsynth.Spec {
	if attrs == nil {
		return nil
	}
	out := make(prodsynth.Spec, len(attrs))
	for i, a := range attrs {
		out[i] = prodsynth.AttributeValue{Name: a.Name, Value: a.Value}
	}
	return out
}

// WireOffers converts offers to their wire form — the shape a client (or
// a test, or cmd/synthd -emit-request) posts.
func WireOffers(offers []prodsynth.Offer) []OfferJSON {
	out := make([]OfferJSON, len(offers))
	for i, o := range offers {
		out[i] = OfferJSON{
			ID: o.ID, Merchant: o.Merchant, CategoryID: o.CategoryID,
			Title: o.Title, PriceCents: o.PriceCents, URL: o.URL,
			ImageURL: o.ImageURL, Spec: WireSpec(o.Spec),
		}
	}
	return out
}

// OffersFromWire converts request offers to pipeline offers.
func OffersFromWire(offers []OfferJSON) []prodsynth.Offer {
	out := make([]prodsynth.Offer, len(offers))
	for i, o := range offers {
		out[i] = prodsynth.Offer{
			ID: o.ID, Merchant: o.Merchant, CategoryID: o.CategoryID,
			Title: o.Title, PriceCents: o.PriceCents, URL: o.URL,
			ImageURL: o.ImageURL, Spec: specFromWire(o.Spec),
		}
	}
	return out
}

// WirePages converts a URL→HTML page map to a wire page list in sorted
// URL order (deterministic requests for identical maps).
func WirePages(pages map[string]string) []PageJSON {
	out := make([]PageJSON, 0, len(pages))
	for url, html := range pages {
		out = append(out, PageJSON{URL: url, HTML: html})
	}
	sortPages(out)
	return out
}

func sortPages(pages []PageJSON) {
	for i := 1; i < len(pages); i++ {
		for j := i; j > 0 && pages[j].URL < pages[j-1].URL; j-- {
			pages[j], pages[j-1] = pages[j-1], pages[j]
		}
	}
}

// fetcherFromWire builds the request's page fetcher, rejecting duplicate
// URLs with conflicting bodies (the serve half of the MapFetcher
// duplicate fix).
func fetcherFromWire(pages []PageJSON) (prodsynth.MapFetcher, error) {
	docs := make([]prodsynth.PageDoc, len(pages))
	for i, p := range pages {
		docs[i] = prodsynth.PageDoc{URL: p.URL, HTML: p.HTML}
	}
	return prodsynth.NewMapFetcher(docs)
}

// WireProducts converts synthesized products to their wire form.
func WireProducts(products []prodsynth.Synthesized) []ProductJSON {
	out := make([]ProductJSON, len(products))
	for i, p := range products {
		out[i] = ProductJSON{
			CategoryID: p.CategoryID, Key: p.Key, KeyAttr: p.KeyAttr,
			Spec: WireSpec(p.Spec), OfferIDs: p.OfferIDs,
		}
	}
	return out
}

func wireFetchReport(r prodsynth.FetchReport) FetchReportJSON {
	return FetchReportJSON{
		Attempted: r.Attempted, Attempts: r.Attempts, Retried: r.Retried,
		Recovered: r.Recovered, GaveUp: r.GaveUp,
		BreakerRejected: r.BreakerRejected, FeedOnly: r.FeedOnly,
	}
}

// ResponseFromResult converts a synthesis Result to the wire response —
// exported so tests (and clients embedding the daemon) can reproduce a
// response byte-for-byte from a direct SynthesizeContext call.
func ResponseFromResult(r *prodsynth.Result) SynthesizeResponse {
	return SynthesizeResponse{
		Products:         WireProducts(r.Products),
		Offers:           r.Offers,
		Clusters:         r.Clusters,
		PairsMapped:      r.PairsMapped,
		PairsDropped:     r.PairsDropped,
		OffersWithoutKey: r.OffersWithoutKey,
		ExcludedMatched:  r.ExcludedMatched,
		ModelGeneration:  r.ModelGeneration,
		Fetch:            wireFetchReport(r.Fetch),
	}
}

// EventFromStreamResult converts one StreamResult emission to its NDJSON
// line value — exported for the same byte-identity reason as
// ResponseFromResult.
func EventFromStreamResult(r prodsynth.StreamResult) StreamEventJSON {
	ev := StreamEventJSON{
		Type:             "wave",
		Wave:             r.Wave,
		Products:         WireProducts(r.Products),
		Sealed:           wireSealed(r.Sealed),
		OpenClusters:     r.OpenClusters,
		Offers:           r.Offers,
		Clusters:         r.Clusters,
		PairsMapped:      r.PairsMapped,
		PairsDropped:     r.PairsDropped,
		OffersWithoutKey: r.OffersWithoutKey,
		ExcludedMatched:  r.ExcludedMatched,
		ModelGeneration:  r.ModelGeneration,
		Fetch:            wireFetchReport(r.Fetch),
	}
	if r.Final {
		ev.Type = "final"
	}
	if r.Err != nil {
		ev.Error = r.Err.Error()
	}
	return ev
}

func wireSealed(sealed []prodsynth.ClusterSealed) []SealedJSON {
	if sealed == nil {
		return nil
	}
	out := make([]SealedJSON, len(sealed))
	for i, s := range sealed {
		out[i] = SealedJSON{
			ClusterID: s.ClusterID,
			Wave:      s.Wave,
			Reason:    s.Reason.String(),
			Product:   wireProduct(s.Product),
		}
	}
	return out
}

func wireProduct(p prodsynth.Synthesized) ProductJSON {
	return ProductJSON{
		CategoryID: p.CategoryID, Key: p.Key, KeyAttr: p.KeyAttr,
		Spec: WireSpec(p.Spec), OfferIDs: p.OfferIDs,
	}
}

// streamOptionsFromWire maps request knobs onto StreamOptions.
func streamOptionsFromWire(req *StreamRequest) prodsynth.StreamOptions {
	return prodsynth.StreamOptions{
		MaxOpenClusters:      req.MaxOpenClusters,
		MaxIdleWaves:         req.MaxIdleWaves,
		DisableClusterMemory: req.DisableClusterMemory,
	}
}
