package synth

import "prodsynth/internal/catalog"

// The vocabulary below defines the simulated marketplace: four top-level
// domains matching the paper's Table 3 (Cameras, Computing, Home
// Furnishings, Kitchen & Housewares), each with leaf category templates,
// attribute templates with value generators, and per-attribute synonym
// pools describing how merchants rename catalog attributes.
//
// Schema richness is deliberately uneven across domains — Computing and
// Cameras categories carry many attributes, Furnishing and Kitchen few —
// because that asymmetry produces the paper's Table 3 effect (strict
// product precision is lower where products have more attributes).

// attrTemplate describes one catalog attribute and how merchants mangle it.
type attrTemplate struct {
	attr catalog.Attribute
	// synonyms are the names merchants may use instead of attr.Name.
	// attr.Name itself is always a candidate (name identity).
	synonyms []string
	// values is the closed vocabulary for categorical attributes.
	values []string
	// numeric values are drawn from numericChoices when non-empty.
	numericChoices []string
	// textPool provides tokens for KindText attributes.
	textPool []string
}

// domainTemplate describes one top-level taxonomy domain.
type domainTemplate struct {
	name string
	// categories are the leaf category base names.
	categories []string
	// attrs are the domain's non-key attribute templates; each category
	// samples a contiguous-ish subset of them.
	attrs []attrTemplate
	// minAttrs/maxAttrs bound how many non-key attributes a category
	// schema gets (drives Table 3's avg-attrs-per-product differences).
	minAttrs, maxAttrs int
	// brandPool names the brands active in this domain.
	brands []string
	// priceLo/priceHi bound offer prices in cents.
	priceLo, priceHi int64
}

var brandSynonyms = []string{"Brand", "Manufacturer", "Make", "Mfg", "Brand Name"}

var keyTemplates = []attrTemplate{
	{
		attr:     catalog.Attribute{Name: catalog.AttrMPN, Kind: catalog.KindIdentifier},
		synonyms: []string{"MPN", "Mfr. Part #", "Part Number", "Manufacturers Part Number", "Model No"},
	},
	{
		attr:     catalog.Attribute{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
		synonyms: []string{"UPC", "UPC Code", "EAN", "GTIN"},
	},
}

var domains = []domainTemplate{
	{
		name: "Computing",
		categories: []string{
			"Hard Drives", "Laptops", "Monitors", "Workstations",
			"Mobile Devices", "Routers", "Memory", "Graphics Cards",
			"Keyboards", "Printers", "Scanners", "Servers",
		},
		minAttrs: 5, maxAttrs: 8,
		brands: []string{
			"Seagate", "Western Digital", "Hitachi", "Samsung", "Toshiba",
			"Dell", "HP", "Lenovo", "Asus", "Acer", "Intel", "Kingston",
		},
		priceLo: 2900, priceHi: 249900,
		attrs: []attrTemplate{
			{
				attr:           catalog.Attribute{Name: "Capacity", Kind: catalog.KindNumeric, Unit: "GB"},
				synonyms:       []string{"Hard Disk Size", "Storage Capacity", "Drive Capacity", "Size"},
				numericChoices: []string{"80", "160", "250", "320", "400", "500", "640", "750", "1000"},
			},
			{
				attr:           catalog.Attribute{Name: "Speed", Kind: catalog.KindNumeric, Unit: "rpm"},
				synonyms:       []string{"RPM", "Rotational Speed", "Spindle Speed"},
				numericChoices: []string{"4200", "5400", "7200", "10000", "15000"},
			},
			{
				attr:     catalog.Attribute{Name: "Interface", Kind: catalog.KindCategorical},
				synonyms: []string{"Int. Type", "Interface Type", "Connection", "Bus Type"},
				values:   []string{"SATA 300", "SATA 150", "IDE 133", "ATA 100", "SCSI", "USB 2.0", "PCIe"},
			},
			{
				attr:           catalog.Attribute{Name: "Cache", Kind: catalog.KindNumeric, Unit: "MB"},
				synonyms:       []string{"Buffer Size", "Cache Size", "Cache Memory"},
				numericChoices: []string{"2", "8", "16", "32", "64"},
			},
			{
				attr:     catalog.Attribute{Name: "Form Factor", Kind: catalog.KindCategorical},
				synonyms: []string{"Size Class", "Disk Size", "Format"},
				values:   []string{"3.5 inch", "2.5 inch", "1.8 inch", "Tower", "Rackmount"},
			},
			{
				attr:           catalog.Attribute{Name: "Memory", Kind: catalog.KindNumeric, Unit: "GB"},
				synonyms:       []string{"RAM", "Installed Memory", "System Memory"},
				numericChoices: []string{"1", "2", "4", "8", "16", "32"},
			},
			{
				attr:           catalog.Attribute{Name: "Screen Size", Kind: catalog.KindNumeric, Unit: "in"},
				synonyms:       []string{"Display Size", "Diagonal Size", "Monitor Size"},
				numericChoices: []string{"13", "14", "15", "17", "19", "21", "24", "27"},
			},
			{
				attr:     catalog.Attribute{Name: "Processor", Kind: catalog.KindText},
				synonyms: []string{"CPU", "Processor Type", "Chip"},
				textPool: []string{"Core", "Duo", "Quad", "Xeon", "Atom", "Turion", "Phenom", "2.4", "3.0", "GHz"},
			},
			{
				attr:     catalog.Attribute{Name: "Operating System", Kind: catalog.KindText},
				synonyms: []string{"OS", "Platform", "OS Provided"},
				textPool: []string{"Windows", "Vista", "XP", "Linux", "Ubuntu", "Home", "Professional", "Microsoft"},
			},
			{
				attr:           catalog.Attribute{Name: "Data Transfer Rate", Kind: catalog.KindNumeric, Unit: "MBps"},
				synonyms:       []string{"Transfer Rate", "Throughput", "Max Transfer Rate"},
				numericChoices: []string{"100", "133", "150", "300", "600"},
			},
		},
	},
	{
		name: "Cameras",
		categories: []string{
			"Digital Cameras", "Lenses", "Camcorders", "Flashes",
			"Tripods", "Binoculars", "Camera Bags", "Memory Cards",
		},
		minAttrs: 4, maxAttrs: 6,
		brands: []string{
			"Canon", "Nikon", "Sony", "Olympus", "Pentax", "Fujifilm",
			"Panasonic", "Kodak", "Sigma", "Tamron",
		},
		priceLo: 1900, priceHi: 189900,
		attrs: []attrTemplate{
			{
				attr:           catalog.Attribute{Name: "Resolution", Kind: catalog.KindNumeric, Unit: "MP"},
				synonyms:       []string{"Megapixels", "Effective Pixels", "Sensor Resolution"},
				numericChoices: []string{"6", "8", "10", "12", "14", "16", "21"},
			},
			{
				attr:           catalog.Attribute{Name: "Optical Zoom", Kind: catalog.KindNumeric, Unit: "x"},
				synonyms:       []string{"Zoom", "Zoom Factor", "Optical Zoom Ratio"},
				numericChoices: []string{"3", "4", "5", "10", "12", "18", "20"},
			},
			{
				attr:     catalog.Attribute{Name: "Sensor Type", Kind: catalog.KindCategorical},
				synonyms: []string{"Sensor", "Image Sensor", "Sensor Technology"},
				values:   []string{"CMOS", "CCD", "Full Frame CMOS", "APS-C CMOS"},
			},
			{
				attr:     catalog.Attribute{Name: "Focal Length", Kind: catalog.KindText},
				synonyms: []string{"Lens Focal Length", "Focal Range", "Zoom Range"},
				textPool: []string{"18", "35", "55", "70", "105", "200", "300", "mm", "f/2.8", "f/4", "f/5.6"},
			},
			{
				attr:           catalog.Attribute{Name: "Display Size", Kind: catalog.KindNumeric, Unit: "in"},
				synonyms:       []string{"LCD Size", "Screen", "Monitor"},
				numericChoices: []string{"2.5", "2.7", "3.0", "3.5"},
			},
			{
				attr:     catalog.Attribute{Name: "Image Format", Kind: catalog.KindCategorical},
				synonyms: []string{"File Format", "Still Image Format", "Format"},
				values:   []string{"JPEG", "RAW", "JPEG RAW", "TIFF"},
			},
			{
				attr:     catalog.Attribute{Name: "Color", Kind: catalog.KindCategorical},
				synonyms: []string{"Colour", "Body Color", "Finish"},
				values:   []string{"Black", "Silver", "Red", "Blue", "Gray"},
			},
		},
	},
	{
		name: "Home Furnishings",
		categories: []string{
			"Bedspreads", "Home Lighting", "Curtains", "Area Rugs",
			"Throw Pillows", "Wall Art", "Mirrors", "Candles",
		},
		minAttrs: 1, maxAttrs: 3,
		brands: []string{
			"Croscill", "Waverly", "Laura Ashley", "Pottery Barn",
			"Mohawk", "Safavieh", "Nourison", "Surya",
		},
		priceLo: 900, priceHi: 59900,
		attrs: []attrTemplate{
			{
				attr:     catalog.Attribute{Name: "Material", Kind: catalog.KindCategorical},
				synonyms: []string{"Fabric", "Fabric Type", "Construction"},
				values:   []string{"Cotton", "Polyester", "Silk", "Wool", "Linen", "Velvet"},
			},
			{
				attr:     catalog.Attribute{Name: "Color", Kind: catalog.KindCategorical},
				synonyms: []string{"Colour", "Color Family", "Shade"},
				values:   []string{"White", "Ivory", "Blue", "Red", "Green", "Beige", "Brown"},
			},
			{
				attr:     catalog.Attribute{Name: "Size", Kind: catalog.KindCategorical},
				synonyms: []string{"Dimensions", "Item Size", "Measurements"},
				values:   []string{"Twin", "Full", "Queen", "King", "Standard", "Oversized"},
			},
			{
				attr:     catalog.Attribute{Name: "Pattern", Kind: catalog.KindCategorical},
				synonyms: []string{"Design", "Style", "Motif"},
				values:   []string{"Solid", "Floral", "Striped", "Paisley", "Geometric"},
			},
		},
	},
	{
		name: "Kitchen & Housewares",
		categories: []string{
			"Air Conditioners", "Dishwashers", "Blenders", "Coffee Makers",
			"Toasters", "Cookware", "Microwaves", "Vacuums",
		},
		minAttrs: 1, maxAttrs: 3,
		brands: []string{
			"KitchenAid", "Cuisinart", "Whirlpool", "GE", "Bosch",
			"Hamilton Beach", "Oster", "Breville", "Dyson",
		},
		priceLo: 1500, priceHi: 99900,
		attrs: []attrTemplate{
			{
				attr:           catalog.Attribute{Name: "Wattage", Kind: catalog.KindNumeric, Unit: "W"},
				synonyms:       []string{"Power", "Watts", "Power Consumption"},
				numericChoices: []string{"300", "500", "700", "900", "1200", "1500"},
			},
			{
				attr:     catalog.Attribute{Name: "Color", Kind: catalog.KindCategorical},
				synonyms: []string{"Colour", "Finish", "Exterior Color"},
				values:   []string{"Stainless Steel", "White", "Black", "Red", "Chrome"},
			},
			{
				attr:     catalog.Attribute{Name: "Material", Kind: catalog.KindCategorical},
				synonyms: []string{"Construction", "Body Material", "Housing"},
				values:   []string{"Stainless Steel", "Plastic", "Glass", "Aluminum", "Cast Iron"},
			},
			{
				attr:           catalog.Attribute{Name: "Capacity", Kind: catalog.KindNumeric, Unit: "qt"},
				synonyms:       []string{"Volume", "Size", "Holding Capacity"},
				numericChoices: []string{"1", "2", "4", "5", "6", "8", "12"},
			},
		},
	},
}

// noisePool is the marketing/fulfillment content that appears in landing
// page tables but is NOT part of any product specification. Extraction
// harvests these pairs; schema reconciliation must learn to drop them.
var noisePool = []struct {
	name   string
	values []string
}{
	{"Availability", []string{"In Stock", "Out of Stock", "2-3 Days", "Ships Today"}},
	{"Shipping", []string{"Free Shipping", "Flat Rate", "Ground", "Expedited"}},
	{"Condition", []string{"New", "Refurbished", "Open Box"}},
	{"Warranty", []string{"1 Year", "2 Years", "90 Days", "Limited Lifetime"}},
	{"Returns", []string{"30 Day Returns", "No Returns", "14 Day Returns"}},
	{"Our Price", []string{"See Cart", "Call For Price", "Special Offer"}},
}

// merchantNamePool seeds merchant identifiers.
var merchantNamePool = []string{
	"acme", "buynow", "techforless", "megastore", "shopsmart", "lacc",
	"microwarehouse", "valuebay", "gizmohut", "homegoods", "kitchenpro",
	"photodirect", "datastore", "pricekings", "fastship", "bargainbin",
	"primesource", "directdeals", "qualityfirst", "superstore",
}
