package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"prodsynth/internal/snapfmt"
)

// snapshotStore builds a store exercising every serialized feature:
// multiple categories, products with and without keys, a shadowed key, a
// key shared across categories, and unicode values.
func snapshotStore(t *testing.T) *Store {
	t.Helper()
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	if err := st.AddCategory(Category{
		ID: "cameras/digital", Name: "Digital Cameras", TopLevel: "Cameras",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Megapixels", Kind: KindNumeric, Unit: "MP"},
			{Name: "Description", Kind: KindText},
			{Name: AttrMPN, Kind: KindIdentifier},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	add := func(p Product) {
		t.Helper()
		if _, err := st.AddProductOutcome(p); err != nil {
			t.Fatal(err)
		}
	}
	catHD, catCam := "computing/hard-drives", "cameras/digital"
	add(Product{ID: "hd1", CategoryID: catHD, Spec: Spec{
		{Name: "Brand", Value: "Seagate"}, {Name: AttrMPN, Value: "ST3500"}}})
	add(Product{ID: "hd2", CategoryID: catHD, Spec: Spec{
		{Name: "Brand", Value: "Hitachi"}, {Name: AttrMPN, Value: "ST3500"}}}) // shadowed by hd1
	add(Product{ID: "hd3", CategoryID: catHD, Spec: Spec{
		{Name: "Capacity", Value: "500"}}}) // keyless
	// cam1 shares hd1's key value across categories: the key table must
	// keep hd1 as owner even though "cameras/digital" sorts first.
	add(Product{ID: "cam1", CategoryID: catCam, Spec: Spec{
		{Name: "Brand", Value: "Canon"}, {Name: AttrMPN, Value: "ST3500"},
		{Name: "Description", Value: "compact µFour-Thirds ✓"}}})
	add(Product{ID: "cam2", CategoryID: catCam, Spec: Spec{
		{Name: "Megapixels", Value: "12"}, {Name: AttrMPN, Value: "PSX-100"}}})
	return st
}

func encodeToBytes(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeStore(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreSnapshotRoundTrip proves a decoded store is behaviorally
// identical to the original: same categories, products, insertion order,
// key resolution, version counters, and ProductsSince deltas — and the
// encoding is deterministic and stable across a save→load→save cycle.
func TestStoreSnapshotRoundTrip(t *testing.T) {
	st := snapshotStore(t)
	raw := encodeToBytes(t, st)
	if again := encodeToBytes(t, st); !bytes.Equal(raw, again) {
		t.Fatal("encoding the same store twice produced different bytes")
	}
	loaded, err := DecodeStore(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := loaded.NumCategories(), st.NumCategories(); got != want {
		t.Fatalf("categories: %d loaded vs %d original", got, want)
	}
	if got, want := loaded.NumProducts(), st.NumProducts(); got != want {
		t.Fatalf("products: %d loaded vs %d original", got, want)
	}
	for _, c := range st.Categories() {
		lc, ok := loaded.Category(c.ID)
		if !ok {
			t.Fatalf("category %s missing after load", c.ID)
		}
		if lc.Name != c.Name || lc.TopLevel != c.TopLevel {
			t.Errorf("category %s differs: %+v vs %+v", c.ID, lc, c)
		}
		if fmt.Sprintf("%v", lc.Schema.Attributes) != fmt.Sprintf("%v", c.Schema.Attributes) {
			t.Errorf("schema of %s differs: %v vs %v", c.ID, lc.Schema.Attributes, c.Schema.Attributes)
		}
		// Map-backed schema lookups work on the loaded store.
		for _, name := range c.Schema.Names() {
			if !lc.Schema.Has(name) {
				t.Errorf("loaded schema of %s misses %q", c.ID, name)
			}
		}
		// Insertion order and spec contents survive.
		want := st.ProductsInCategory(c.ID)
		got := loaded.ProductsInCategory(c.ID)
		if len(got) != len(want) {
			t.Fatalf("category %s: %d products loaded vs %d", c.ID, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Spec.String() != want[i].Spec.String() {
				t.Errorf("category %s product %d differs: %+v vs %+v", c.ID, i, got[i], want[i])
			}
		}
		// Version counters are identical, so caches invalidate the same way.
		if gv, wv := loaded.CategoryVersion(c.ID), st.CategoryVersion(c.ID); gv != wv {
			t.Errorf("CategoryVersion(%s) = %d loaded vs %d original", c.ID, gv, wv)
		}
	}

	// Key resolution: hd1 owns the shadowed and cross-category key.
	if p, ok := loaded.ProductByKey("ST3500"); !ok || p.ID != "hd1" {
		t.Errorf("ProductByKey(ST3500) = %+v, %v; want hd1 (first insertion wins across load)", p, ok)
	}
	if p, ok := loaded.ProductByKey("PSX-100"); !ok || p.ID != "cam2" {
		t.Errorf("ProductByKey(PSX-100) = %+v, %v", p, ok)
	}

	// ProductsSince deltas carry straight on from the persisted versions.
	delta, v, ok := loaded.ProductsSince("computing/hard-drives", 1)
	if !ok || v != 3 || len(delta) != 2 || delta[0].ID != "hd2" || delta[1].ID != "hd3" {
		t.Fatalf("ProductsSince(1) after load = %v, %d, %v", delta, v, ok)
	}
	if err := loaded.AddProduct(Product{ID: "hd4", CategoryID: "computing/hard-drives",
		Spec: Spec{{Name: "Brand", Value: "WD"}}}); err != nil {
		t.Fatal(err)
	}
	delta, v, ok = loaded.ProductsSince("computing/hard-drives", 3)
	if !ok || v != 4 || len(delta) != 1 || delta[0].ID != "hd4" {
		t.Fatalf("ProductsSince(3) after growth = %v, %d, %v", delta, v, ok)
	}

	// save→load→save is byte-identical (before the growth above would
	// change it, we re-encode a second pristine load).
	pristine, err := DecodeStore(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if again := encodeToBytes(t, pristine); !bytes.Equal(again, raw) {
		t.Error("re-encoding a loaded store changed the bytes")
	}
}

// TestSnapshotEmptyStore round-trips the degenerate cases: empty store,
// and categories with no products.
func TestSnapshotEmptyStore(t *testing.T) {
	empty, err := DecodeStore(bytes.NewReader(encodeToBytes(t, NewStore())))
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumCategories() != 0 || empty.NumProducts() != 0 {
		t.Errorf("empty store round-trip: %d categories, %d products",
			empty.NumCategories(), empty.NumProducts())
	}

	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeStore(bytes.NewReader(encodeToBytes(t, st)))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumCategories() != 1 || loaded.NumProducts() != 0 {
		t.Errorf("productless category round-trip: %d categories, %d products",
			loaded.NumCategories(), loaded.NumProducts())
	}
	if v := loaded.CategoryVersion("computing/hard-drives"); v != 0 {
		t.Errorf("fresh category version after load = %d", v)
	}
}

// TestFromSnapshotValidation drives every inconsistency FromSnapshot must
// reject: the decode path depends on these to keep forged payloads from
// building a store whose indexes lie.
func TestFromSnapshotValidation(t *testing.T) {
	base := func() Snapshot { return snapshotStore(t).Snapshot() }
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		want   string
	}{
		{"duplicate category", func(s *Snapshot) {
			s.Categories = append(s.Categories, s.Categories[0])
		}, "duplicate category"},
		{"empty category ID", func(s *Snapshot) {
			s.Categories[0].Category.ID = ""
		}, "empty ID"},
		{"duplicate product", func(s *Snapshot) {
			c := &s.Categories[1]
			c.Products = append(c.Products, c.Products[0])
		}, "duplicate product"},
		{"product in wrong category", func(s *Snapshot) {
			s.Categories[1].Products[0].CategoryID = "cameras/digital"
		}, "claims category"},
		{"schema violation", func(s *Snapshot) {
			s.Categories[1].Products[0].Spec = Spec{{Name: "Bogus", Value: "x"}}
		}, "not in schema"},
		{"key table repeats key", func(s *Snapshot) {
			s.Keys = append(s.Keys, s.Keys[0])
		}, "repeats key"},
		{"key owned by unknown product", func(s *Snapshot) {
			s.Keys[0].ProductID = "ghost"
		}, "unknown product"},
		{"key owner without the key", func(s *Snapshot) {
			s.Keys[0].ProductID = "hd3" // keyless product
		}, "does not carry"},
		{"key table misses a key", func(s *Snapshot) {
			s.Keys = s.Keys[:1]
		}, "misses key"},
		{"version below product count", func(s *Snapshot) {
			s.Categories[0].Version = 0
		}, "has version"},
		{"version above product count", func(s *Snapshot) {
			s.Categories[0].Version += 2
		}, "has version"},
		{"invalid attribute kind", func(s *Snapshot) {
			s.Categories[0].Category.Schema.Attributes[0].Kind = AttributeKind(9)
		}, "invalid kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap := base()
			tc.mutate(&snap)
			st, err := FromSnapshot(snap)
			if err == nil {
				t.Fatal("inconsistent snapshot accepted")
			}
			if st != nil {
				t.Error("error with non-nil store")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}

	// Encode-time symmetry: state the decoder would reject must be
	// rejected at save time too, not written into an unloadable artifact.
	snap := base()
	snap.Categories[1].Products[0].CategoryID = "cameras/digital"
	if err := EncodeSnapshot(&bytes.Buffer{}, snap); err == nil {
		t.Error("encodeSnapshot accepted a product outside its enclosing category")
	}
	snap = base()
	snap.Categories[0].Category.Schema.Attributes[0].Kind = AttributeKind(-1)
	if err := EncodeSnapshot(&bytes.Buffer{}, snap); err == nil {
		t.Error("encodeSnapshot accepted an out-of-range attribute kind")
	}
}

// TestDecodeStoreStrictKind pins payload-level validation the framed
// header cannot catch: an out-of-range attribute kind.
func TestDecodeStoreStrictKind(t *testing.T) {
	st := NewStore()
	if err := st.AddCategory(hardDriveCategory()); err != nil {
		t.Fatal(err)
	}
	raw := encodeToBytes(t, st)
	// The first attribute kind ("Brand", KindCategorical = 0) sits right
	// after the category header and the attribute name. Corrupt it while
	// keeping the checksum valid by re-framing the payload.
	idx := bytes.Index(raw, []byte("Brand")) + len("Brand")
	payload := append([]byte(nil), raw[20:]...)
	payload[idx-20] = 0xFF
	var buf bytes.Buffer
	if err := snapfmt.Encode(&buf, snapshotMagic, SnapshotVersion, maxSnapshotPayload, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeStore(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot (invalid kind)", err)
	}
}
