package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prodsynth"
	"prodsynth/internal/serve"
)

// learnedSystem builds a marketplace and a learned System over it — the
// same Seed-21 dataset the root API tests use, so the daemon serves a
// pipeline whose direct outputs are pinned elsewhere.
func learnedSystem(t *testing.T) (*prodsynth.Marketplace, *prodsynth.System) {
	t.Helper()
	ds := prodsynth.GenerateMarketplace(prodsynth.MarketplaceConfig{
		Seed:                21,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 20,
		Merchants:           20,
	})
	model, err := prodsynth.Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	return ds, prodsynth.NewSystem(ds.Catalog, model)
}

// encodeJSON marshals exactly the way the handlers do (json.Encoder, so a
// trailing newline), for byte-identity comparisons.
func encodeJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// synthesizeRequest builds the /v1/synthesize body for a marketplace's
// incoming offers.
func synthesizeRequest(ds *prodsynth.Marketplace) serve.SynthesizeRequest {
	return serve.SynthesizeRequest{
		Offers: serve.WireOffers(ds.IncomingOffers),
		Pages:  serve.WirePages(ds.Pages),
	}
}

// post sends a JSON body and returns the response with its body read.
func post(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(encodeJSON(t, body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// gateFetcher parks every Fetch until released, signalling the first
// parked call — the hook that holds a request in flight at a known point
// (the shedding, reload-pinning, timeout, and drain tests all hang a
// request off it). Once release is closed it is transparent.
type gateFetcher struct {
	inner    prodsynth.PageFetcher
	inflight chan struct{}
	release  chan struct{}
	once     sync.Once
}

func newGate() *gateFetcher {
	return &gateFetcher{inflight: make(chan struct{}), release: make(chan struct{})}
}

// wrap is the Options.WrapFetcher hook installing this gate.
func (g *gateFetcher) wrap(inner prodsynth.PageFetcher) prodsynth.PageFetcher {
	return &gateInstance{gate: g, inner: inner}
}

type gateInstance struct {
	gate  *gateFetcher
	inner prodsynth.PageFetcher
}

func (g *gateInstance) Fetch(url string) (string, error) {
	g.gate.once.Do(func() { close(g.gate.inflight) })
	<-g.gate.release
	return g.inner.Fetch(url)
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (with slack for runtime housekeeping).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSynthesizeGoldenRoundTrip is the end-to-end acceptance test: a
// request through the HTTP layer must yield a body byte-identical to the
// response built from a direct SynthesizeContext call — the serving layer
// adds transport, never meaning — and repeating the request must yield
// the identical bytes again.
func TestSynthesizeGoldenRoundTrip(t *testing.T) {
	ds, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	defer ts.Close()

	direct, err := sys.SynthesizeContext(context.Background(), ds.IncomingOffers, prodsynth.MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Products) == 0 {
		t.Fatal("direct synthesis produced no products; the golden test would be vacuous")
	}
	want := encodeJSON(t, serve.ResponseFromResult(direct))

	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", synthesizeRequest(ds))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status = %d, body %s", i, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("round %d: Content-Type = %q", i, ct)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("round %d: HTTP body differs from direct synthesis:\n got: %s\nwant: %s", i, body, want)
		}
	}
}

// TestStreamNDJSONFraming pins the stream endpoint's wire format: one
// NDJSON line per wave in wave order, each byte-identical to the event
// built from a direct SynthesizeStream run, then exactly one final line
// carrying the merged view and the close-path seal events.
func TestStreamNDJSONFraming(t *testing.T) {
	ds, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	defer ts.Close()

	const nWaves = 3
	waves := make([][]prodsynth.Offer, 0, nWaves)
	for i := 0; i < nWaves; i++ {
		lo, hi := i*len(ds.IncomingOffers)/nWaves, (i+1)*len(ds.IncomingOffers)/nWaves
		waves = append(waves, ds.IncomingOffers[lo:hi])
	}

	// Direct run, collecting the per-wave results and the final one.
	in := make(chan []prodsynth.Offer)
	out, err := sys.SynthesizeStream(context.Background(), in, prodsynth.MapFetcher(ds.Pages), prodsynth.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, w := range waves {
			in <- w
		}
		close(in)
	}()
	var direct []prodsynth.StreamResult
	for r := range out {
		direct = append(direct, r)
	}
	if len(direct) != nWaves+1 {
		t.Fatalf("direct stream emitted %d results, want %d waves + 1 final", len(direct), nWaves)
	}

	wireWaves := make([][]serve.OfferJSON, len(waves))
	for i, w := range waves {
		wireWaves[i] = serve.WireOffers(w)
	}
	resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize/stream", serve.StreamRequest{
		Waves: wireWaves,
		Pages: serve.WirePages(ds.Pages),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	if len(lines) != len(direct) {
		t.Fatalf("stream framed %d lines, want %d", len(lines), len(direct))
	}
	for i, line := range lines {
		want := encodeJSON(t, serve.EventFromStreamResult(direct[i]))
		if line+"\n" != string(want) {
			t.Errorf("line %d differs from direct stream event:\n got: %s\nwant: %s", i, line, want)
		}
	}
	// Framing shape: waves in order, then the final line with seal events.
	for i := 0; i < nWaves; i++ {
		var ev serve.StreamEventJSON
		if err := json.Unmarshal([]byte(lines[i]), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type != "wave" || ev.Wave != i {
			t.Errorf("line %d: type %q wave %d, want wave %d", i, ev.Type, ev.Wave, i)
		}
	}
	var final serve.StreamEventJSON
	if err := json.Unmarshal([]byte(lines[nWaves]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Type != "final" {
		t.Fatalf("last line type = %q, want final", final.Type)
	}
	if len(final.Sealed) == 0 || len(final.Sealed) != len(final.Products) {
		t.Errorf("final line: %d seal events for %d products; the close path seals every open cluster", len(final.Sealed), len(final.Products))
	}
	for _, s := range final.Sealed {
		if s.Reason == "" {
			t.Error("seal event with empty reason")
		}
	}
}

// TestAdmissionShedding holds one request in flight at MaxInFlight=1 and
// asserts the next is shed — 429, Retry-After, JSON error body — while
// operability endpoints keep answering; once the slot frees, requests are
// admitted again.
func TestAdmissionShedding(t *testing.T) {
	ds, sys := learnedSystem(t)
	gate := newGate()
	ts := httptest.NewServer(serve.New(sys, serve.Options{
		MaxInFlight: 1,
		WrapFetcher: gate.wrap,
	}))
	defer ts.Close()
	defer func() {
		select {
		case <-gate.release:
		default:
			close(gate.release)
		}
	}()

	req := synthesizeRequest(ds)
	type answer struct {
		status int
		body   []byte
	}
	first := make(chan answer, 1)
	go func() {
		resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
		first <- answer{resp.StatusCode, body}
	}()
	<-gate.inflight // the first request is parked mid-fetch, holding the slot

	resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
	var errResp serve.ErrorResponse
	if err := json.Unmarshal(body, &errResp); err != nil || errResp.Error == "" {
		t.Errorf("shed body = %s (unmarshal err %v), want JSON error", body, err)
	}

	// Operability endpoints are never gated by admission.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s under load: status = %d", path, r.StatusCode)
		}
	}

	// The shed is visible in metrics before the first request completes.
	if m := scrapeMetrics(t, ts); !strings.Contains(m, "synthd_shed_total 1") {
		t.Errorf("metrics after shed missing synthd_shed_total 1:\n%s", m)
	}

	close(gate.release)
	got := <-first
	if got.status != http.StatusOK {
		t.Fatalf("first request: status = %d, body %s", got.status, got.body)
	}
	// Slot released: the next request is admitted and succeeds.
	resp, body = post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release request: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestReloadUnderLoad pins the generation contract during a hot swap: a
// request in flight when /v1/reload lands must answer entirely from the
// generation it started with, the next request from the new one, and the
// /metrics gauge must show the new generation — no response ever mixes
// the two.
func TestReloadUnderLoad(t *testing.T) {
	ds, sys := learnedSystem(t)
	startGen := sys.Generation()

	// The replacement model: re-learned from the same data (generation is
	// what distinguishes it on the wire).
	model2, err := prodsynth.Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	gate := newGate()
	ts := httptest.NewServer(serve.New(sys, serve.Options{
		WrapFetcher: gate.wrap,
		Reload:      func(context.Context) (*prodsynth.Model, error) { return model2, nil },
	}))
	defer ts.Close()

	req := synthesizeRequest(ds)
	type answer struct {
		status int
		body   []byte
	}
	first := make(chan answer, 1)
	go func() {
		resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
		first <- answer{resp.StatusCode, body}
	}()
	<-gate.inflight // request parked mid-synthesis on the old generation

	resp, body := post(t, ts.Client(), ts.URL+"/v1/reload?wait=1", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status = %d, body %s", resp.StatusCode, body)
	}
	var reload struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &reload); err != nil {
		t.Fatal(err)
	}
	if reload.Status != "ok" || reload.Generation != startGen+1 {
		t.Fatalf("reload answered %+v, want ok at generation %d", reload, startGen+1)
	}

	close(gate.release)
	got := <-first
	if got.status != http.StatusOK {
		t.Fatalf("in-flight request: status = %d, body %s", got.status, got.body)
	}
	var pinned serve.SynthesizeResponse
	if err := json.Unmarshal(got.body, &pinned); err != nil {
		t.Fatal(err)
	}
	if pinned.ModelGeneration != startGen {
		t.Errorf("in-flight request answered from generation %d, want pinned start generation %d",
			pinned.ModelGeneration, startGen)
	}

	resp, body = post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload request: status = %d, body %s", resp.StatusCode, body)
	}
	var fresh serve.SynthesizeResponse
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ModelGeneration != startGen+1 {
		t.Errorf("post-reload request answered from generation %d, want %d", fresh.ModelGeneration, startGen+1)
	}
	if m := scrapeMetrics(t, ts); !strings.Contains(m, fmt.Sprintf("synthd_model_generation %d", startGen+1)) {
		t.Errorf("metrics missing synthd_model_generation %d:\n%s", startGen+1, m)
	}
}

// TestReloadEndpointStates covers the endpoint's refusal paths: 501
// without a Reload callback, 409 while a reload is in flight.
func TestReloadEndpointStates(t *testing.T) {
	_, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	resp, _ := post(t, ts.Client(), ts.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("reload without callback: status = %d, want 501", resp.StatusCode)
	}
	ts.Close()

	started := make(chan struct{})
	block := make(chan struct{})
	var calls atomic.Int64
	_, sys2 := learnedSystem(t)
	ts2 := httptest.NewServer(serve.New(sys2, serve.Options{
		Reload: func(context.Context) (*prodsynth.Model, error) {
			calls.Add(1)
			close(started)
			<-block
			return sys2.Model(), nil
		},
	}))
	defer ts2.Close()

	resp, body := post(t, ts2.Client(), ts2.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async reload: status = %d, body %s", resp.StatusCode, body)
	}
	<-started
	resp, _ = post(t, ts2.Client(), ts2.URL+"/v1/reload", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent reload: status = %d, want 409", resp.StatusCode)
	}
	close(block)
	// The background swap lands: generation bumps without another call.
	deadline := time.Now().Add(5 * time.Second)
	for sys2.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background reload never swapped the model")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if calls.Load() != 1 {
		t.Errorf("reload callback ran %d times, want 1", calls.Load())
	}
}

// TestGracefulDrain runs the full lifecycle on a real listener: cancel
// Run's context while a request is parked mid-synthesis, assert the
// server reports draining (readyz 503), the in-flight request completes
// with a full response, Run returns cleanly, and no goroutine outlives
// the drain.
func TestGracefulDrain(t *testing.T) {
	ds, sys := learnedSystem(t)
	gate := newGate()
	srv := serve.New(sys, serve.Options{WrapFetcher: gate.wrap, DrainTimeout: 10 * time.Second})

	baseline := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, ln) }()

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	url := "http://" + ln.Addr().String()
	type answer struct {
		status int
		body   []byte
	}
	first := make(chan answer, 1)
	go func() {
		resp, body := post(t, client, url+"/v1/synthesize", synthesizeRequest(ds))
		first <- answer{resp.StatusCode, body}
	}()
	<-gate.inflight

	cancel() // SIGTERM equivalent: stop accepting, drain in-flight
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}
	// readyz fails during drain (the handler, exercised directly — the
	// listener has stopped accepting new connections by design).
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status = %d, want 503", rec.Code)
	}

	close(gate.release)
	got := <-first
	if got.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d, body %s", got.status, got.body)
	}
	var res serve.SynthesizeResponse
	if err := json.Unmarshal(got.body, &res); err != nil {
		t.Fatalf("drained response is not a full synthesis response: %v", err)
	}
	if len(res.Products) == 0 {
		t.Error("drained response carries no products")
	}
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v after a clean drain, want nil", err)
	}
	client.CloseIdleConnections()
	waitGoroutines(t, baseline)
}

// TestRequestTimeout asserts a request's timeout_ms bounds its synthesis:
// with fetches parked past the deadline the daemon answers 504 and the
// admission slot frees for the next request.
func TestRequestTimeout(t *testing.T) {
	ds, sys := learnedSystem(t)
	gate := newGate()
	ts := httptest.NewServer(serve.New(sys, serve.Options{WrapFetcher: gate.wrap}))
	defer ts.Close()

	req := synthesizeRequest(ds)
	req.TimeoutMillis = 30
	resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	var errResp serve.ErrorResponse
	if err := json.Unmarshal(body, &errResp); err != nil || errResp.Error == "" {
		t.Errorf("timeout body = %s, want JSON error", body)
	}
	close(gate.release) // un-park the fetch goroutines so the pipeline drains
}

// TestDuplicatePageRejected is the serving half of the MapFetcher
// duplicate fix: a request repeating a page URL with a different body is
// a 400, while an exact repeat is tolerated.
func TestDuplicatePageRejected(t *testing.T) {
	ds, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	defer ts.Close()

	req := synthesizeRequest(ds)
	req.Pages = append(req.Pages, serve.PageJSON{URL: req.Pages[0].URL, HTML: req.Pages[0].HTML + "<!-- conflict -->"})
	resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting duplicate page: status = %d, want 400; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "duplicate page") {
		t.Errorf("error body %s does not name the duplicate page", body)
	}

	req = synthesizeRequest(ds)
	req.Pages = append(req.Pages, req.Pages[0]) // exact repeat: harmless
	resp, body = post(t, ts.Client(), ts.URL+"/v1/synthesize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact duplicate page: status = %d, want 200; body %s", resp.StatusCode, body)
	}
}

// TestBadRequests covers decode rejection: malformed JSON and unknown
// fields are 400 with a JSON error body.
func TestBadRequests(t *testing.T) {
	_, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed":     `{"offers": [`,
		"unknown_field": `{"offerz": []}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400; body %s", name, resp.StatusCode, data)
		}
	}
}

func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMetricsExposition exercises the scrape after real traffic: request
// counters labeled by endpoint and code, the latency histogram's
// bucket/sum/count triple, throughput counters, and the generation gauge.
func TestMetricsExposition(t *testing.T) {
	ds, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	defer ts.Close()

	resp, body := post(t, ts.Client(), ts.URL+"/v1/synthesize", synthesizeRequest(ds))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var res serve.SynthesizeResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}

	m := scrapeMetrics(t, ts)
	for _, want := range []string{
		`synthd_requests_total{endpoint="synthesize",code="200"} 1`,
		`synthd_request_seconds_count{endpoint="synthesize"} 1`,
		`synthd_request_seconds_bucket{endpoint="synthesize",le="+Inf"} 1`,
		fmt.Sprintf("synthd_model_generation %d", sys.Generation()),
		fmt.Sprintf("synthd_offers_total %d", res.Offers),
		fmt.Sprintf("synthd_products_total %d", len(res.Products)),
		fmt.Sprintf("synthd_fetch_operations_total %d", res.Fetch.Attempted),
		"synthd_inflight_requests 0",
		"synthd_shed_total 0",
		"# TYPE synthd_request_seconds histogram",
		"# TYPE synthd_requests_total counter",
		"# TYPE synthd_model_generation gauge",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if resp, _ := ts.Client().Get(ts.URL + "/metrics"); resp != nil {
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("metrics Content-Type = %q", ct)
		}
		resp.Body.Close()
	}
}

// TestHealthEndpoints pins the liveness/readiness split: healthz is
// always 200; readyz is 200 on a learned server and 503 on an unlearned
// one.
func TestHealthEndpoints(t *testing.T) {
	_, sys := learnedSystem(t)
	ts := httptest.NewServer(serve.New(sys, serve.Options{}))
	defer ts.Close()
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status = %d, want %d", path, resp.StatusCode, want)
		}
	}

	unlearned := prodsynth.NewSystem(prodsynth.NewCatalog(), nil)
	ts2 := httptest.NewServer(serve.New(unlearned, serve.Options{}))
	defer ts2.Close()
	resp, err := ts2.Client().Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz on unlearned system: status = %d, want 503", resp.StatusCode)
	}
}
