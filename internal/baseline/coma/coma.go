// Package coma reimplements the matcher classes of COMA++ (Do & Rahm, VLDB
// 2002; Engmann & Maßmann, BTW 2007) that the paper compares against in
// §5.2 and Appendices C-D:
//
//   - Name-based matching: linguistic similarity between attribute names,
//     the average of normalized edit similarity and trigram (Dice)
//     similarity.
//   - Instance-based matching: TF-IDF cosine similarity between the
//     concatenated value corpora of the two attributes (all catalog products
//     of the category vs. all offers of the merchant in the category — no
//     match knowledge, which is precisely what Figure 8 probes).
//   - Combined: the average of name and instance scores.
//
// The δ (delta) candidate-selection knob of Appendix D is implemented in
// ApplyDelta: per merchant attribute, only candidates within δ of the best
// score survive; δ=∞ keeps every pair.
package coma

import (
	"math"

	"prodsynth/internal/baseline"
	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/distsim"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/text"
)

// Mode selects the matcher configuration.
type Mode int

const (
	// NameBased uses only attribute-name similarity.
	NameBased Mode = iota
	// InstanceBased uses only value-corpus similarity.
	InstanceBased
	// Combined averages the two.
	Combined
)

func (m Mode) String() string {
	switch m {
	case NameBased:
		return "Name-based COMA++"
	case InstanceBased:
		return "Instance-based COMA++"
	case Combined:
		return "Combined COMA++"
	default:
		return "COMA++"
	}
}

// Matcher is a COMA++-style matcher.
type Matcher struct {
	Mode Mode
	// Delta is the candidate-pruning threshold (Appendix D). Candidates
	// scoring below (best - Delta) for their merchant attribute are
	// zeroed. Use math.Inf(1) to disable pruning; the COMA++ default in
	// the paper's experiments is 0.01.
	Delta float64
}

// Name implements baseline.Matcher.
func (m Matcher) Name() string { return m.Mode.String() }

// Score implements baseline.Matcher. The matches argument is ignored:
// COMA++ has no notion of historical instance matches.
func (m Matcher) Score(store *catalog.Store, offers *offer.Set, _ *match.MatchSet) []correspond.Scored {
	universe := baseline.Candidates(store, offers)

	// Instance vectors: per category, the catalog-side bag per attribute;
	// per (merchant, category), the offer-side bag per attribute.
	var catBags map[string]map[string]*text.Bag
	var offBags map[offer.SchemaKey]map[string]*text.Bag
	var corpora map[string]*distsim.Corpus
	if m.Mode != NameBased {
		catBags = make(map[string]map[string]*text.Bag)
		offBags = make(map[offer.SchemaKey]map[string]*text.Bag)
		corpora = make(map[string]*distsim.Corpus)
		for _, categoryID := range offers.Categories() {
			bags := make(map[string]*text.Bag)
			corpus := distsim.NewCorpus()
			for _, p := range store.ProductsInCategory(categoryID) {
				for _, av := range p.Spec {
					b := bags[av.Name]
					if b == nil {
						b = text.NewBag()
						bags[av.Name] = b
					}
					b.AddValue(av.Value)
					corpus.AddDocument(av.Value)
				}
			}
			catBags[categoryID] = bags
			corpora[categoryID] = corpus
		}
		for _, o := range offers.All() {
			key := offer.SchemaKey{Merchant: o.Merchant, CategoryID: o.CategoryID}
			bags := offBags[key]
			if bags == nil {
				bags = make(map[string]*text.Bag)
				offBags[key] = bags
			}
			for _, av := range o.Spec {
				b := bags[av.Name]
				if b == nil {
					b = text.NewBag()
					bags[av.Name] = b
				}
				b.AddValue(av.Value)
				if c := corpora[o.CategoryID]; c != nil {
					c.AddDocument(av.Value)
				}
			}
		}
	}

	// Vector cache: bag pointer -> normalized TF-IDF vector.
	vecCache := make(map[*text.Bag]distsim.Vector)
	vector := func(corpus *distsim.Corpus, b *text.Bag) distsim.Vector {
		if b == nil {
			return nil
		}
		if v, ok := vecCache[b]; ok {
			return v
		}
		// Rebuild the raw text from the bag counts; TF weights preserved.
		v := make(distsim.Vector)
		var norm float64
		for _, tok := range b.SortedTokens() {
			w := float64(b.Count(tok)) * corpus.IDF(tok)
			v[tok] = w
			norm += w * w
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for t := range v {
				v[t] /= norm
			}
		}
		vecCache[b] = v
		return v
	}

	out := make([]correspond.Scored, len(universe))
	for i, c := range universe {
		var nameScore, instScore float64
		if m.Mode != InstanceBased {
			a := text.NormalizeName(c.CatalogAttr)
			b := text.NormalizeName(c.MerchantAttr)
			nameScore = (distsim.EditSimilarity(a, b) + distsim.TrigramSimilarity(a, b)) / 2
		}
		if m.Mode != NameBased {
			corpus := corpora[c.Key.CategoryID]
			pv := vector(corpus, catBags[c.Key.CategoryID][c.CatalogAttr])
			ov := vector(corpus, offBags[c.Key][c.MerchantAttr])
			if pv != nil && ov != nil {
				instScore = distsim.Cosine(pv, ov)
			}
		}
		var score float64
		switch m.Mode {
		case NameBased:
			score = nameScore
		case InstanceBased:
			score = instScore
		default:
			score = (nameScore + instScore) / 2
		}
		out[i] = correspond.Scored{Candidate: c, Score: score}
	}

	if !math.IsInf(m.Delta, 1) {
		delta := m.Delta
		if delta == 0 {
			delta = 0.01
		}
		ApplyDelta(out, delta)
	}
	baseline.SortScored(out)
	return out
}

// ApplyDelta zeroes candidates scoring below (best - delta) among the
// candidates sharing the same (merchant, category, merchant attribute) —
// COMA++'s per-element candidate selection (Appendix D).
func ApplyDelta(scored []correspond.Scored, delta float64) {
	best := make(map[string]float64)
	keyOf := func(sc correspond.Scored) string {
		return sc.Key.String() + "\x00" + sc.MerchantAttr
	}
	for _, sc := range scored {
		k := keyOf(sc)
		if sc.Score > best[k] {
			best[k] = sc.Score
		}
	}
	for i := range scored {
		if scored[i].Score < best[keyOf(scored[i])]-delta {
			scored[i].Score = 0
		}
	}
}

var _ baseline.Matcher = Matcher{}
