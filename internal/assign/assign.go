// Package assign solves the maximum-weight bipartite matching (assignment)
// problem. DUMAS (paper Appendix C) needs it to turn an averaged field-value
// similarity matrix into a one-to-one attribute matching.
//
// MaxWeight implements the Hungarian algorithm (Kuhn–Munkres, O(n³)) for
// rectangular weight matrices. Weights may be any finite float64; pairs may
// be left unmatched only when the matrix is rectangular (the smaller side is
// fully matched).
package assign

import (
	"fmt"
	"math"
)

// MaxWeight returns, for an m×n weight matrix w (w[i][j] = weight of
// matching row i to column j), an assignment slice a where a[i] = j means
// row i is matched to column j, and a[i] = -1 means row i is unmatched
// (possible only when m > n). The total weight of the returned assignment is
// maximal. The matrix must be rectangular and contain only finite values.
func MaxWeight(w [][]float64) ([]int, error) {
	m := len(w)
	if m == 0 {
		return nil, nil
	}
	n := len(w[0])
	for i, row := range w {
		if len(row) != n {
			return nil, fmt.Errorf("assign: ragged matrix: row %d has %d cols, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("assign: non-finite weight at (%d,%d)", i, j)
			}
		}
	}

	// The Hungarian algorithm below solves min-cost on a square matrix.
	// Build a square cost matrix of size s×s: cost = maxW - weight, with
	// padding cells at cost maxW (equivalent to weight 0 dummy matches).
	s := m
	if n > s {
		s = n
	}
	var maxW float64
	for _, row := range w {
		for _, v := range row {
			if v > maxW {
				maxW = v
			}
		}
	}
	cost := make([][]float64, s)
	for i := range cost {
		cost[i] = make([]float64, s)
		for j := range cost[i] {
			if i < m && j < n {
				cost[i][j] = maxW - w[i][j]
			} else {
				cost[i][j] = maxW
			}
		}
	}

	match := hungarianMin(cost)

	out := make([]int, m)
	for i := 0; i < m; i++ {
		j := match[i]
		if j >= n {
			out[i] = -1 // matched to a padding column
		} else {
			out[i] = j
		}
	}
	return out, nil
}

// hungarianMin solves the square min-cost assignment problem and returns
// row→col. Classic potentials-based O(n³) implementation.
func hungarianMin(cost [][]float64) []int {
	n := len(cost)
	// 1-indexed potentials and matching arrays, per the standard algorithm.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	rowToCol := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	return rowToCol
}

// TotalWeight returns the weight of assignment a over matrix w, ignoring
// unmatched rows.
func TotalWeight(w [][]float64, a []int) float64 {
	var sum float64
	for i, j := range a {
		if j >= 0 {
			sum += w[i][j]
		}
	}
	return sum
}
