package synth

import (
	"strings"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/extract"
	"prodsynth/internal/offer"
)

func small() Config {
	return Config{
		Seed:                7,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 15,
		Merchants:           12,
	}.withDefaults()
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(small())
	if got := ds.Catalog.NumCategories(); got != 8 {
		t.Errorf("categories = %d, want 8 (2 per domain x 4 domains)", got)
	}
	if len(ds.Universe) != 8*15 {
		t.Errorf("universe = %d, want 120", len(ds.Universe))
	}
	if len(ds.HistoricalOffers) == 0 || len(ds.IncomingOffers) == 0 {
		t.Fatalf("offers: hist=%d incoming=%d", len(ds.HistoricalOffers), len(ds.IncomingOffers))
	}
	if len(ds.Pages) != len(ds.HistoricalOffers)+len(ds.IncomingOffers) {
		t.Errorf("pages = %d, offers = %d", len(ds.Pages), len(ds.AllOffers()))
	}
	// Catalog contains exactly the non-missing universe products.
	wantCatalog := 0
	for pid := range ds.Universe {
		if !ds.Truth.Missing[pid] {
			wantCatalog++
		}
	}
	if got := ds.Catalog.NumProducts(); got != wantCatalog {
		t.Errorf("catalog products = %d, want %d", got, wantCatalog)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small())
	b := Generate(small())
	if len(a.HistoricalOffers) != len(b.HistoricalOffers) ||
		len(a.IncomingOffers) != len(b.IncomingOffers) {
		t.Fatal("offer counts differ across runs with same seed")
	}
	for i := range a.IncomingOffers {
		ao, bo := a.IncomingOffers[i], b.IncomingOffers[i]
		if ao.ID != bo.ID || ao.Title != bo.Title || ao.URL != bo.URL {
			t.Fatalf("offer %d differs: %+v vs %+v", i, ao, bo)
		}
	}
	for url, page := range a.Pages {
		if b.Pages[url] != page {
			t.Fatalf("page %s differs", url)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := small()
	a := Generate(cfg)
	cfg.Seed = 99
	b := Generate(cfg)
	if len(a.IncomingOffers) == len(b.IncomingOffers) {
		same := true
		for i := range a.IncomingOffers {
			if a.IncomingOffers[i].Title != b.IncomingOffers[i].Title {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical offers")
		}
	}
}

func TestOffersReferenceTheirProducts(t *testing.T) {
	ds := Generate(small())
	for _, o := range ds.AllOffers() {
		pid, ok := ds.Truth.OfferProduct[o.ID]
		if !ok {
			t.Fatalf("offer %s has no truth product", o.ID)
		}
		prod, ok := ds.Universe[pid]
		if !ok {
			t.Fatalf("offer %s references unknown product %s", o.ID, pid)
		}
		// Incoming offers must reference missing products; historical
		// offers must reference catalog products.
		if ds.Truth.Missing[pid] {
			continue
		}
		if _, ok := ds.Catalog.Product(pid); !ok {
			t.Fatalf("non-missing product %s absent from catalog", pid)
		}
		// Title carries the brand.
		brand, _ := prod.Spec.Get("Brand")
		if !strings.Contains(o.Title, brand) {
			t.Errorf("offer %s title %q lacks brand %q", o.ID, o.Title, brand)
		}
	}
	for _, o := range ds.IncomingOffers {
		pid := ds.Truth.OfferProduct[o.ID]
		if !ds.Truth.Missing[pid] {
			t.Fatalf("incoming offer %s references catalog product %s", o.ID, pid)
		}
	}
}

func TestPagesExtractable(t *testing.T) {
	ds := Generate(small())
	extractedSomething := 0
	truthAgreement := 0
	checked := 0
	for _, o := range ds.AllOffers() {
		page := ds.Pages[o.URL]
		if page == "" {
			t.Fatalf("offer %s has no page", o.ID)
		}
		spec := extract.FromHTML(page)
		if len(spec) > 0 {
			extractedSomething++
		}
		// Every extracted pair that is a true spec attribute must carry
		// the merchant's value for it.
		key := offer.SchemaKey{Merchant: o.Merchant, CategoryID: truthCategory(ds, o)}
		corr := ds.Truth.Correspondences[key]
		for _, av := range spec {
			if catName, ok := corr[av.Name]; ok {
				checked++
				prod := ds.Universe[ds.Truth.OfferProduct[o.ID]]
				trueVal, _ := prod.Spec.Get(catName)
				// The merchant value must contain the true value's
				// leading token (formatting only appends units/brand).
				if strings.Contains(av.Value, firstToken(trueVal)) {
					truthAgreement++
				}
			}
		}
	}
	if extractedSomething < len(ds.AllOffers())*7/10 {
		t.Errorf("extraction succeeded on %d/%d pages", extractedSomething, len(ds.AllOffers()))
	}
	if checked == 0 || truthAgreement < checked*95/100 {
		t.Errorf("value agreement %d/%d", truthAgreement, checked)
	}
}

// truthCategory returns the true category of an offer even when the feed
// row omitted it (PMissingCategory).
func truthCategory(ds *Dataset, o offer.Offer) string {
	if o.CategoryID != "" {
		return o.CategoryID
	}
	return ds.Universe[ds.Truth.OfferProduct[o.ID]].CategoryID
}

func firstToken(s string) string {
	f := strings.Fields(s)
	if len(f) == 0 {
		return s
	}
	return f[0]
}

func TestCorrespondenceTruthConsistent(t *testing.T) {
	ds := Generate(small())
	// A merchant must use exactly one name per catalog attribute within a
	// (merchant, category) — the §3.2 assumption.
	for key, corr := range ds.Truth.Correspondences {
		seen := make(map[string]string) // catalog name -> merchant name
		for mName, catName := range corr {
			if prev, ok := seen[catName]; ok && prev != mName {
				t.Errorf("%v: catalog attr %q has two merchant names %q and %q",
					key, catName, prev, mName)
			}
			seen[catName] = mName
		}
	}
	if len(ds.Truth.Correspondences) == 0 {
		t.Fatal("no correspondences recorded")
	}
	// Some merchants must use name identities (PIdentity > 0) and some
	// must rename; otherwise the learning problem degenerates.
	identities, renames := 0, 0
	for _, corr := range ds.Truth.Correspondences {
		for mName, catName := range corr {
			if mName == catName {
				identities++
			} else {
				renames++
			}
		}
	}
	if identities == 0 || renames == 0 {
		t.Errorf("identities=%d renames=%d; need both", identities, renames)
	}
}

func TestOfferDistributionForTable4(t *testing.T) {
	// The ≥10-offer split needs enough merchants per domain.
	cfg := small()
	cfg.Merchants = 60
	ds := Generate(cfg)
	perProduct := make(map[string]int)
	for _, o := range ds.IncomingOffers {
		perProduct[ds.Truth.OfferProduct[o.ID]]++
	}
	heavy, light := 0, 0
	for _, n := range perProduct {
		if n >= 10 {
			heavy++
		} else {
			light++
		}
	}
	if heavy == 0 || light == 0 {
		t.Errorf("need both heavy and light products: heavy=%d light=%d", heavy, light)
	}
}

func TestProductByKeyResolution(t *testing.T) {
	ds := Generate(small())
	for pid, prod := range ds.Universe {
		mpn, _ := prod.Spec.Get(catalog.AttrMPN)
		if got := ds.Truth.ProductByKey[mpn]; got != pid {
			t.Errorf("MPN %q resolves to %q, want %q", mpn, got, pid)
		}
	}
}

func TestUPCFeedFraction(t *testing.T) {
	ds := Generate(small())
	withUPC := 0
	for _, o := range ds.HistoricalOffers {
		if _, ok := o.Spec.Get(catalog.AttrUPC); ok {
			withUPC++
		}
	}
	frac := float64(withUPC) / float64(len(ds.HistoricalOffers))
	if frac < 0.5 || frac > 0.9 {
		t.Errorf("UPC-bearing fraction = %.2f, want ≈ 0.7", frac)
	}
}

func TestExperimentConfigLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := ExperimentConfig()
	cfg.ProductsPerCategory = 20 // keep the test fast; shape only
	ds := Generate(cfg)
	if ds.Catalog.NumCategories() < 30 {
		t.Errorf("experiment config categories = %d", ds.Catalog.NumCategories())
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := small()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
