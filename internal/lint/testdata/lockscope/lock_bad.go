package catalog

import (
	"os"
	"sync"
)

type shard struct {
	mu   sync.Mutex
	keys []string
}

// publish sends on a channel inside the critical section: every writer on
// the shard stalls until the receiver drains it.
func (s *shard) publish(ch chan string, key string) {
	s.mu.Lock()
	s.keys = append(s.keys, key)
	ch <- key // want "channel send while a mutex is held"
	s.mu.Unlock()
}

// flush holds the lock to function end via the deferred unlock, so the
// fsync and the os call both land inside the critical section.
func (s *shard) flush(f *os.File, path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := f.Sync(); err != nil { // want "no fsync inside a shard critical section"
		return err
	}
	return os.Remove(path) // want "no file I/O inside a shard critical section"
}

// each runs a user callback under the shard lock: a slow or re-entrant
// callback deadlocks the shard.
func (s *shard) each(fn func(string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range s.keys {
		fn(k) // want "function-typed parameter"
	}
}
