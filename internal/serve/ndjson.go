package serve

import (
	"encoding/json"
	"net/http"

	"prodsynth"
)

// writeNDJSON drains a SynthesizeStream result channel onto an HTTP
// response as NDJSON: one JSON object per line, flushed after every line
// so clients observe wave results as they complete, not when the stream
// ends. observe is called for each result before it is written (the
// server folds successful results into its metrics there).
func writeNDJSON(w http.ResponseWriter, out <-chan prodsynth.StreamResult, observe func(prodsynth.StreamResult)) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for res := range out {
		if observe != nil {
			observe(res)
		}
		if err := enc.Encode(EventFromStreamResult(res)); err != nil {
			// The client went away; drain the channel so the pipeline's
			// forwarding goroutine can exit, then report.
			for range out {
			}
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	return nil
}

// writeNDJSONError appends a terminal error line to an NDJSON stream that
// ended without its final result (e.g. the request deadline fired), so
// clients can distinguish truncation from completion.
func writeNDJSONError(w http.ResponseWriter, err error) {
	enc := json.NewEncoder(w)
	enc.Encode(StreamEventJSON{Type: "error", Error: err.Error()}) //nolint:errcheck // client may be gone
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
}
