package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/offer"
)

// mk builds one reconciled offer with alternating attr, value pairs.
func mk(id, cat string, kvs ...string) offer.Offer {
	o := offer.Offer{ID: id, CategoryID: cat}
	for i := 0; i+1 < len(kvs); i += 2 {
		o.Spec = append(o.Spec, catalog.AttributeValue{Name: kvs[i], Value: kvs[i+1]})
	}
	return o
}

// clusterFingerprint renders a cluster comparably: identity plus member
// offer IDs in order.
func clusterFingerprint(c cluster.Cluster) string {
	ids := make([]string, len(c.Offers))
	for i, o := range c.Offers {
		ids[i] = o.ID
	}
	return fmt.Sprintf("%s/%s=%s %v", c.CategoryID, c.KeyAttr, c.Key, ids)
}

// corpus is a fixed offer sequence exercising the interesting shapes:
// multi-offer clusters, UPC/MPN bridges that force cluster merges,
// key-less offers, and cross-category keys.
func corpus() []offer.Offer {
	return []offer.Offer{
		mk("o0", "hd", catalog.AttrUPC, "111"),
		mk("o1", "hd", catalog.AttrMPN, "ab-1"),
		mk("o2", "hd", catalog.AttrUPC, "222"),
		mk("o3", "hd"),                                                 // no key: always skipped
		mk("o4", "hd", catalog.AttrUPC, "111", catalog.AttrMPN, "AB1"), // bridges o0 and o1
		mk("o5", "tv", catalog.AttrUPC, "333"),
		mk("o6", "hd", catalog.AttrUPC, "2 2 2"), // normalizes to 222
		mk("o7", "tv", catalog.AttrMPN, "xy/9"),
		mk("o8", "hd", catalog.AttrUPC, "111"),
		mk("o9", "tv", catalog.AttrUPC, "333", catalog.AttrMPN, "XY9"), // bridges o5 and o7
		mk("o10", "hd", catalog.AttrMPN, "zz9"),
		mk("o11", "hd"),                         // no key
		mk("o12", "tv", catalog.AttrUPC, "111"), // same UPC, other category: same cluster (global keys)
	}
}

// partitions splits offers into n contiguous waves.
func partitions(offers []offer.Offer, n int) [][]offer.Offer {
	if n > len(offers) {
		n = len(offers)
	}
	waves := make([][]offer.Offer, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(offers)/n, (i+1)*len(offers)/n
		waves = append(waves, offers[lo:hi])
	}
	return waves
}

// TestMemoryMatchesGroupAcrossPartitions is the core incremental-clustering
// equivalence property: for every partitioning of an offer sequence into
// waves, an unbounded Memory's Final() must be byte-identical — same
// clusters, same member order, same cluster order — to one cluster.Group
// call over the whole sequence, and the skipped offers must agree.
func TestMemoryMatchesGroupAcrossPartitions(t *testing.T) {
	offers := corpus()
	wantClusters, wantSkipped := cluster.Group(offers, cluster.Options{})
	want := make([]string, len(wantClusters))
	for i, c := range wantClusters {
		want[i] = clusterFingerprint(c)
	}

	for _, n := range []int{1, 2, 3, 7, len(offers)} {
		mem := NewMemory(MemoryOptions{})
		var skipped []offer.Offer
		for _, wave := range partitions(offers, n) {
			_, sk := mem.Add(nil, wave)
			skipped = append(skipped, sk...)
		}
		got := mem.Final()
		if len(got) != len(want) {
			t.Fatalf("waves=%d: %d clusters, want %d", n, len(got), len(want))
		}
		for i := range got {
			if fp := clusterFingerprint(got[i]); fp != want[i] {
				t.Errorf("waves=%d: cluster %d = %s, want %s", n, i, fp, want[i])
			}
		}
		if len(skipped) != len(wantSkipped) {
			t.Fatalf("waves=%d: %d skipped, want %d", n, len(skipped), len(wantSkipped))
		}
		for i := range skipped {
			if skipped[i].ID != wantSkipped[i].ID {
				t.Errorf("waves=%d: skipped %d = %s, want %s", n, i, skipped[i].ID, wantSkipped[i].ID)
			}
		}
	}
}

// TestMemoryMatchesGroupRandomized fuzzes the same property over random
// offer sequences and random (non-contiguous sizes, contiguous order)
// partitionings.
func TestMemoryMatchesGroupRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var offers []offer.Offer
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			var kvs []string
			if rng.Intn(10) > 0 { // 10% key-less
				kvs = append(kvs, catalog.AttrUPC, fmt.Sprintf("u%d", rng.Intn(8)))
				if rng.Intn(3) == 0 {
					kvs = append(kvs, catalog.AttrMPN, fmt.Sprintf("m%d", rng.Intn(8)))
				}
			}
			offers = append(offers, mk(fmt.Sprintf("t%d-o%d", trial, i), fmt.Sprintf("c%d", rng.Intn(3)), kvs...))
		}
		wantClusters, _ := cluster.Group(offers, cluster.Options{})
		want := make([]string, len(wantClusters))
		for i, c := range wantClusters {
			want[i] = clusterFingerprint(c)
		}

		mem := NewMemory(MemoryOptions{})
		for lo := 0; lo < len(offers); {
			hi := lo + 1 + rng.Intn(6)
			if hi > len(offers) {
				hi = len(offers)
			}
			mem.Add(nil, offers[lo:hi])
			lo = hi
		}
		got := mem.Final()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d clusters, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if fp := clusterFingerprint(got[i]); fp != want[i] {
				t.Fatalf("trial %d: cluster %d = %s, want %s", trial, i, fp, want[i])
			}
		}
	}
}

// TestMemoryMergeAcrossWaves pins the cross-wave union: two clusters open
// in wave 1 are merged by a wave-2 offer carrying both keys, the merged
// cluster keeps the earliest creation slot, and the wave-2 snapshot holds
// the union of evidence in arrival order.
func TestMemoryMergeAcrossWaves(t *testing.T) {
	mem := NewMemory(MemoryOptions{})
	touched, _ := mem.Add(nil, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "hd", catalog.AttrMPN, "m-9"),
	})
	if len(touched) != 2 || mem.Len() != 2 {
		t.Fatalf("wave 1: touched %d, open %d; want 2, 2", len(touched), mem.Len())
	}

	touched, _ = mem.Add(nil, []offer.Offer{
		mk("c", "hd", catalog.AttrUPC, "111", catalog.AttrMPN, "M9"),
	})
	if len(touched) != 1 || mem.Len() != 1 {
		t.Fatalf("wave 2: touched %d, open %d; want 1, 1", len(touched), mem.Len())
	}
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [a b c]" {
		t.Errorf("merged cluster = %s, want hd/UPC=111 [a b c]", fp)
	}
	final := mem.Final()
	if len(final) != 1 || clusterFingerprint(final[0]) != clusterFingerprint(touched[0]) {
		t.Errorf("Final = %v", final)
	}
}

// TestMemorySnapshotIsolation ensures a returned snapshot is not mutated
// when later waves extend the same cluster.
func TestMemorySnapshotIsolation(t *testing.T) {
	mem := NewMemory(MemoryOptions{})
	first, _ := mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")})
	mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "111")})
	if len(first[0].Offers) != 1 || first[0].Offers[0].ID != "a" {
		t.Errorf("wave-1 snapshot mutated by wave 2: %s", clusterFingerprint(first[0]))
	}
}

// TestMemoryLRUEviction bounds the memory and checks the least recently
// extended cluster is forgotten: its next same-key offer opens a fresh
// cluster (the duplicate a batch run would produce) instead of rejoining.
func TestMemoryLRUEviction(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 2})
	mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")})
	mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "222")})
	mem.Add(nil, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "333")}) // evicts 111
	if mem.Len() != 2 {
		t.Fatalf("open = %d, want 2", mem.Len())
	}
	if lru, _, _ := mem.Evictions(); lru != 1 {
		t.Fatalf("lru evictions = %d, want 1", lru)
	}
	touched, _ := mem.Add(nil, []offer.Offer{mk("d", "hd", catalog.AttrUPC, "111")})
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [d]" {
		t.Errorf("post-eviction cluster = %s, want fresh [d]", fp)
	}

	// A wave touching more clusters than the bound still reports them all.
	mem2 := NewMemory(MemoryOptions{MaxClusters: 1})
	touched, _ = mem2.Add(nil, []offer.Offer{
		mk("x", "hd", catalog.AttrUPC, "1"),
		mk("y", "hd", catalog.AttrUPC, "2"),
		mk("z", "hd", catalog.AttrUPC, "3"),
	})
	if len(touched) != 3 {
		t.Errorf("oversized wave touched %d clusters, want 3", len(touched))
	}
	if mem2.Len() != 1 {
		t.Errorf("open = %d, want bound 1", mem2.Len())
	}
}

// TestMemoryLRUTieBreakInsertionOrder pins the eviction order among
// clusters last touched in the same wave: the tie breaks on creation
// ordinal (insertion order), not on the order the wave's offers happened
// to touch them — so re-batching offers inside a wave cannot change
// which cluster is evicted.
func TestMemoryLRUTieBreakInsertionOrder(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 2})
	mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")}) // ord 0
	mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "222")}) // ord 1
	// One wave touches 222 first, then 111, then opens a third cluster.
	// All three now share lastWave; pure touch recency would evict 222,
	// the insertion-order tie-break evicts 111 (the older cluster).
	mem.Add(nil, []offer.Offer{
		mk("b2", "hd", catalog.AttrUPC, "222"),
		mk("a2", "hd", catalog.AttrUPC, "111"),
		mk("c", "hd", catalog.AttrUPC, "333"),
	})
	evicted := mem.DrainEvicted()
	if len(evicted) != 1 {
		t.Fatalf("evicted %d clusters, want 1", len(evicted))
	}
	if ev := evicted[0]; ev.ID != 0 || ev.Reason != SealLRU || ev.Cluster.Key != "111" {
		t.Errorf("evicted ID=%d reason=%s key=%s, want the ord-0 cluster 111 via lru", ev.ID, ev.Reason, ev.Cluster.Key)
	}

	// Idle expiry under equal last-touch waves expires in insertion
	// order too: the seal queue order is by ordinal, not touch order.
	mem2 := NewMemory(MemoryOptions{MaxIdleWaves: 1})
	mem2.Add(nil, []offer.Offer{
		mk("p", "hd", catalog.AttrUPC, "1"), // ord 0
		mk("q", "hd", catalog.AttrUPC, "2"), // ord 1
	})
	// Touch both again, q before p, then go idle for two waves.
	mem2.Add(nil, []offer.Offer{
		mk("q2", "hd", catalog.AttrUPC, "2"),
		mk("p2", "hd", catalog.AttrUPC, "1"),
	})
	mem2.Add(nil, []offer.Offer{mk("r", "hd", catalog.AttrUPC, "3")})
	mem2.DrainEvicted()
	mem2.Add(nil, []offer.Offer{mk("s", "hd", catalog.AttrUPC, "4")})
	var idleIDs []int
	for _, ev := range mem2.DrainEvicted() {
		if ev.Reason == SealIdle {
			idleIDs = append(idleIDs, ev.ID)
		}
	}
	if len(idleIDs) != 2 || idleIDs[0] != 0 || idleIDs[1] != 1 {
		t.Errorf("idle seal order = %v, want [0 1] (insertion order)", idleIDs)
	}
}

// TestMemoryIdleExpiry checks the wave-TTL: clusters untouched for more
// than MaxIdleWaves waves are dropped at the next wave start.
func TestMemoryIdleExpiry(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxIdleWaves: 1})
	mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")}) // wave 1
	// Wave 2: 111 idle for 1 wave — within TTL, still rejoinable.
	touched, _ := mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "222")})
	if mem.Len() != 2 {
		t.Fatalf("after wave 2: open = %d, want 2", mem.Len())
	}
	// Wave 3: 111 idle for 2 waves > 1 — expired before the wave runs.
	touched, _ = mem.Add(nil, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "111")})
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [c]" {
		t.Errorf("expired cluster rejoined: %s", fp)
	}
	if _, idle, _ := mem.Evictions(); idle != 1 {
		t.Errorf("idle evictions = %d, want 1", idle)
	}
}

// TestMemoryVersionInvalidation checks mid-stream catalog growth: bumping
// a category's version (what AddToCatalog does) drops that category's
// open clusters at the next wave, while other categories' clusters stay.
func TestMemoryVersionInvalidation(t *testing.T) {
	store := catalog.NewStore()
	for _, id := range []string{"hd", "tv"} {
		if err := store.AddCategory(catalog.Category{
			ID: id, Name: id,
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mem := NewMemory(MemoryOptions{})
	mem.Add(store, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "tv", catalog.AttrUPC, "222"),
	})
	if mem.Len() != 2 {
		t.Fatalf("open = %d, want 2", mem.Len())
	}

	// Commit a product into hd — the mid-stream AddToCatalog.
	if err := store.AddProduct(catalog.Product{
		ID: "p1", CategoryID: "hd",
		Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "999"}},
	}); err != nil {
		t.Fatal(err)
	}

	touched, _ := mem.Add(store, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "111")})
	if _, _, version := mem.Evictions(); version != 1 {
		t.Errorf("version evictions = %d, want 1 (hd cluster)", version)
	}
	// The hd cluster was invalidated, so "c" opens a fresh cluster; the
	// tv cluster survives untouched.
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [c]" {
		t.Errorf("post-invalidation cluster = %s, want fresh [c]", fp)
	}
	final := mem.Final()
	if len(final) != 2 {
		t.Fatalf("Final = %d clusters, want 2 (fresh hd + surviving tv)", len(final))
	}
	if fp := clusterFingerprint(final[0]); fp != "tv/UPC=222 [b]" {
		t.Errorf("surviving cluster = %s, want tv/UPC=222 [b]", fp)
	}
}

// TestMemoryVersionInvalidationMinorityCategory pins that a cluster
// spanning categories (global keys allow it) is invalidated when ANY
// member category's version bumps — not just the majority one. The
// cluster below is majority-hd; growth in tv must still evict it.
func TestMemoryVersionInvalidationMinorityCategory(t *testing.T) {
	store := catalog.NewStore()
	for _, id := range []string{"hd", "tv"} {
		if err := store.AddCategory(catalog.Category{
			ID: id, Name: id,
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mem := NewMemory(MemoryOptions{})
	mem.Add(store, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "hd", catalog.AttrUPC, "111"),
		mk("c", "tv", catalog.AttrUPC, "111"), // minority member
	})
	if mem.Len() != 1 {
		t.Fatalf("open = %d, want 1", mem.Len())
	}
	if err := store.AddProduct(catalog.Product{
		ID: "p1", CategoryID: "tv",
		Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "999"}},
	}); err != nil {
		t.Fatal(err)
	}
	touched, _ := mem.Add(store, []offer.Offer{mk("d", "hd", catalog.AttrUPC, "111")})
	if _, _, version := mem.Evictions(); version != 1 {
		t.Errorf("version evictions = %d, want 1 (minority-category growth)", version)
	}
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [d]" {
		t.Errorf("post-invalidation cluster = %s, want fresh [d]", fp)
	}
}

// TestMemoryEvictionReleasesKeys ensures evicted clusters release their
// union-find keys — the memory's key space must not grow without bound
// under a bounded cluster count.
func TestMemoryEvictionReleasesKeys(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 4})
	for i := 0; i < 100; i++ {
		mem.Add(nil, []offer.Offer{
			mk(fmt.Sprintf("o%d", i), "hd",
				catalog.AttrUPC, fmt.Sprintf("u%d", i),
				catalog.AttrMPN, fmt.Sprintf("m%d", i)),
		})
	}
	if mem.Len() != 4 {
		t.Fatalf("open = %d, want 4", mem.Len())
	}
	if got := len(mem.parent); got > 8 {
		t.Errorf("union-find holds %d keys for 4 open clusters (leak)", got)
	}
}

// TestMemorySealRecords covers the eviction-side seal records: each evict
// path queues exactly one Evicted entry with the right reason and the
// membership snapshot at eviction time, DrainEvicted clears the queue, and
// CloseAll pairs 1:1 with Final().
func TestMemorySealRecords(t *testing.T) {
	t.Run("lru", func(t *testing.T) {
		mem := NewMemory(MemoryOptions{MaxClusters: 1})
		mem.Add(nil, []offer.Offer{mk("o0", "hd", catalog.AttrUPC, "111")})
		if ev := mem.DrainEvicted(); len(ev) != 0 {
			t.Fatalf("nothing should seal under the cap, got %v", ev)
		}
		mem.Add(nil, []offer.Offer{mk("o1", "hd", catalog.AttrUPC, "222")})
		ev := mem.DrainEvicted()
		if len(ev) != 1 || ev[0].Reason != SealLRU || ev[0].ID != 0 || ev[0].Wave != 1 {
			t.Fatalf("lru seal = %+v", ev)
		}
		if got := clusterFingerprint(ev[0].Cluster); got != "hd/UPC=111 [o0]" {
			t.Fatalf("sealed snapshot = %q", got)
		}
		if ev := mem.DrainEvicted(); len(ev) != 0 {
			t.Fatalf("drain must clear the queue, got %v", ev)
		}
	})

	t.Run("idle", func(t *testing.T) {
		mem := NewMemory(MemoryOptions{MaxIdleWaves: 1})
		mem.Add(nil, []offer.Offer{mk("o0", "hd", catalog.AttrUPC, "111")})
		mem.Add(nil, []offer.Offer{mk("o1", "hd", catalog.AttrUPC, "222")})
		mem.Add(nil, []offer.Offer{mk("o2", "hd", catalog.AttrUPC, "333")})
		ev := mem.DrainEvicted()
		if len(ev) != 1 || ev[0].Reason != SealIdle || ev[0].ID != 0 {
			t.Fatalf("idle seal = %+v", ev)
		}
	})

	t.Run("invalidated", func(t *testing.T) {
		store := catalog.NewStore()
		if err := store.AddCategory(catalog.Category{
			ID: "hd", Name: "hd",
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
		mem := NewMemory(MemoryOptions{})
		mem.Add(store, []offer.Offer{mk("o0", "hd", catalog.AttrUPC, "111")})
		if err := store.AddProduct(catalog.Product{ID: "p1", CategoryID: "hd"}); err != nil {
			t.Fatal(err)
		}
		mem.Add(store, []offer.Offer{mk("o1", "hd", catalog.AttrUPC, "222")})
		ev := mem.DrainEvicted()
		if len(ev) != 1 || ev[0].Reason != SealInvalidated || ev[0].ID != 0 {
			t.Fatalf("invalidation seal = %+v", ev)
		}
	})

	t.Run("close", func(t *testing.T) {
		mem := NewMemory(MemoryOptions{})
		for _, wave := range partitions(corpus(), 3) {
			mem.Add(nil, wave)
		}
		closing := mem.CloseAll()
		final := mem.Final()
		if len(closing) != len(final) || len(closing) == 0 {
			t.Fatalf("CloseAll %d entries, Final %d", len(closing), len(final))
		}
		seen := map[int]bool{}
		for i, ev := range closing {
			if ev.Reason != SealClose || ev.Wave != mem.Waves() {
				t.Fatalf("close entry %d = %+v", i, ev)
			}
			if seen[ev.ID] {
				t.Fatalf("duplicate sealed ID %d", ev.ID)
			}
			seen[ev.ID] = true
			if clusterFingerprint(ev.Cluster) != clusterFingerprint(final[i]) {
				t.Fatalf("CloseAll[%d] cluster diverges from Final()[%d]", i, i)
			}
		}
		// Non-destructive: the memory is still open.
		if mem.Len() != len(final) {
			t.Fatal("CloseAll mutated the memory")
		}
	})
}

// TestMemorySealExactlyOnce runs a bounded memory over the corpus and
// asserts the exactly-once contract: the union of drained evictions and
// the closing records covers each cluster ID at most once, and clusters
// retired by merges (their ordinals absorbed into the survivor) never
// appear at all.
func TestMemorySealExactlyOnce(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 2, MaxIdleWaves: 1})
	sealed := map[int]SealReason{}
	record := func(evs []Evicted) {
		for _, ev := range evs {
			if prev, dup := sealed[ev.ID]; dup {
				t.Fatalf("cluster %d sealed twice: %v then %v", ev.ID, prev, ev.Reason)
			}
			sealed[ev.ID] = ev.Reason
		}
	}
	for _, wave := range partitions(corpus(), 7) {
		mem.Add(nil, wave)
		record(mem.DrainEvicted())
	}
	record(mem.CloseAll())
	if len(sealed) == 0 {
		t.Fatal("bounded corpus run sealed nothing")
	}
}

// --- Spill store integration -------------------------------------------

// TestMemorySpillEquivalence is the out-of-core counterpart of
// TestMemoryMatchesGroupAcrossPartitions: a memory squeezed to ONE open
// cluster but given a spill store must still produce Final() output
// byte-identical to an unbounded memory — clusters park on disk instead
// of sealing, and revive when their keys resurface.
func TestMemorySpillEquivalence(t *testing.T) {
	offers := corpus()
	wantClusters, wantSkipped := cluster.Group(offers, cluster.Options{})
	want := make([]string, len(wantClusters))
	for i, c := range wantClusters {
		want[i] = clusterFingerprint(c)
	}

	for _, n := range []int{1, 2, 3, 7, len(offers)} {
		sp := cluster.NewMemorySpill()
		mem := NewMemory(MemoryOptions{MaxClusters: 1, Spill: sp})
		var skipped []offer.Offer
		for _, wave := range partitions(offers, n) {
			_, sk := mem.Add(nil, wave)
			skipped = append(skipped, sk...)
		}
		// Spilling replaces sealing: the bound must not have produced
		// a single seal event.
		if ev := mem.DrainEvicted(); len(ev) != 0 {
			t.Fatalf("waves=%d: %d seal events with spill enabled, want 0", n, len(ev))
		}
		got := mem.Final()
		if len(got) != len(want) {
			t.Fatalf("waves=%d: %d clusters, want %d", n, len(got), len(want))
		}
		for i := range got {
			if fp := clusterFingerprint(got[i]); fp != want[i] {
				t.Errorf("waves=%d: cluster %d = %s, want %s", n, i, fp, want[i])
			}
		}
		if len(skipped) != len(wantSkipped) {
			t.Fatalf("waves=%d: %d skipped, want %d", n, len(skipped), len(wantSkipped))
		}
		spills, revives, fallbacks := mem.Spilled()
		if spills == 0 {
			t.Errorf("waves=%d: no spills despite MaxClusters=1", n)
		}
		if fallbacks != 0 || mem.SpillErr() != nil {
			t.Errorf("waves=%d: fallbacks=%d err=%v, want none", n, fallbacks, mem.SpillErr())
		}
		if n == len(offers) && revives == 0 {
			t.Errorf("waves=%d: no revives despite key reuse across waves", n)
		}
		if mem.Len()+sp.Len() != len(want) {
			t.Errorf("waves=%d: open %d + spilled %d != %d clusters", n, mem.Len(), sp.Len(), len(want))
		}
	}
}

// TestMemorySpillIdle pins that idle expiry also spills instead of
// sealing, and that the spilled cluster revives and extends when its key
// reappears much later.
func TestMemorySpillIdle(t *testing.T) {
	sp := cluster.NewMemorySpill()
	mem := NewMemory(MemoryOptions{MaxIdleWaves: 1, Spill: sp})
	mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")})
	mem.Add(nil, []offer.Offer{mk("b", "tv", catalog.AttrUPC, "222")})
	// Wave 3: "a"'s cluster has been idle 2 > 1 waves. With a spill
	// store it parks rather than seals.
	mem.Add(nil, []offer.Offer{mk("c", "tv", catalog.AttrUPC, "333")})
	if sp.Len() != 1 {
		t.Fatalf("spilled = %d, want 1 (idle cluster)", sp.Len())
	}
	if ev := mem.DrainEvicted(); len(ev) != 0 {
		t.Fatalf("%d seal events, want 0", len(ev))
	}
	// Its key resurfaces: revive and extend in place.
	touched, _ := mem.Add(nil, []offer.Offer{mk("d", "hd", catalog.AttrUPC, "111")})
	if len(touched) != 1 || clusterFingerprint(touched[0]) != "hd/UPC=111 [a d]" {
		t.Fatalf("touched = %v, want revived [a d]", touched)
	}
	spills, revives, _ := mem.Spilled()
	if spills == 0 || revives == 0 {
		t.Errorf("spills=%d revives=%d, want both > 0", spills, revives)
	}
	want := []string{"hd/UPC=111 [a d]", "tv/UPC=222 [b]", "tv/UPC=333 [c]"}
	final := mem.Final()
	if len(final) != len(want) {
		t.Fatalf("Final = %d clusters, want %d", len(final), len(want))
	}
	for i := range final {
		if fp := clusterFingerprint(final[i]); fp != want[i] {
			t.Errorf("Final[%d] = %s, want %s", i, fp, want[i])
		}
	}
}

// failingSpill refuses every write; the memory must degrade to plain
// sealing, not lose clusters.
type failingSpill struct{ err error }

func (f failingSpill) Spill(cluster.Spilled) error           { return f.err }
func (failingSpill) Lookup(string) (int64, bool)             { return 0, false }
func (f failingSpill) Revive(int64) (cluster.Spilled, error) { return cluster.Spilled{}, f.err }
func (failingSpill) All() ([]cluster.Spilled, error)         { return nil, nil }
func (failingSpill) Len() int                                { return 0 }
func (failingSpill) Close() error                            { return nil }

// TestMemorySpillFallback pins the degradation contract: a failing spill
// store turns every would-be spill back into the seal a spill-less
// memory would have produced — identical events, identical Final — with
// the failure latched in SpillErr and counted in fallbacks.
func TestMemorySpillFallback(t *testing.T) {
	offers := corpus()
	boom := fmt.Errorf("disk full")

	run := func(opts MemoryOptions) ([]Evicted, []cluster.Cluster) {
		mem := NewMemory(opts)
		var evs []Evicted
		for _, wave := range partitions(offers, 7) {
			mem.Add(nil, wave)
			evs = append(evs, mem.DrainEvicted()...)
		}
		if opts.Spill != nil {
			if _, _, fb := mem.Spilled(); fb == 0 {
				t.Fatal("no fallbacks recorded for failing spill store")
			}
			if mem.SpillErr() == nil {
				t.Fatal("SpillErr not latched")
			}
		}
		return evs, mem.Final()
	}

	plainEvs, plainFinal := run(MemoryOptions{MaxClusters: 1})
	failEvs, failFinal := run(MemoryOptions{MaxClusters: 1, Spill: failingSpill{err: boom}})

	if len(failEvs) != len(plainEvs) {
		t.Fatalf("%d events with failing spill, %d without", len(failEvs), len(plainEvs))
	}
	for i := range failEvs {
		if failEvs[i].Reason != plainEvs[i].Reason || failEvs[i].ID != plainEvs[i].ID {
			t.Errorf("event %d = {%d %v}, want {%d %v}", i,
				failEvs[i].ID, failEvs[i].Reason, plainEvs[i].ID, plainEvs[i].Reason)
		}
	}
	if len(failFinal) != len(plainFinal) {
		t.Fatalf("Final %d clusters with failing spill, %d without", len(failFinal), len(plainFinal))
	}
	for i := range failFinal {
		if a, b := clusterFingerprint(failFinal[i]), clusterFingerprint(plainFinal[i]); a != b {
			t.Errorf("Final[%d] = %s, want %s", i, a, b)
		}
	}
}

// TestMemorySpillStaleRevive pins that catalog-version invalidation
// reaches spilled clusters too: a cluster that parked before the catalog
// grew in its category is sealed as invalidated at revival time, exactly
// as expire would have sealed it had it stayed in RAM.
func TestMemorySpillStaleRevive(t *testing.T) {
	store := catalog.NewStore()
	for _, id := range []string{"hd", "tv"} {
		if err := store.AddCategory(catalog.Category{
			ID: id, Name: id,
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	sp := cluster.NewMemorySpill()
	mem := NewMemory(MemoryOptions{MaxClusters: 1, Spill: sp})
	mem.Add(store, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "tv", catalog.AttrUPC, "222"),
	})
	// MaxClusters=1: "a"'s cluster (older ordinal) spilled at wave end.
	if sp.Len() != 1 {
		t.Fatalf("spilled = %d, want 1", sp.Len())
	}

	// The catalog grows in hd while the cluster is out-of-core.
	if err := store.AddProduct(catalog.Product{
		ID: "p1", CategoryID: "hd",
		Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "999"}},
	}); err != nil {
		t.Fatal(err)
	}

	touched, _ := mem.Add(store, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "111")})
	if _, _, version := mem.Evictions(); version != 1 {
		t.Errorf("version evictions = %d, want 1 (stale revived cluster)", version)
	}
	evs := mem.DrainEvicted()
	if len(evs) != 1 || evs[0].Reason != SealInvalidated {
		t.Fatalf("events = %v, want one SealInvalidated", evs)
	}
	if fp := clusterFingerprint(evs[0].Cluster); fp != "hd/UPC=111 [a]" {
		t.Errorf("invalidated cluster = %s, want stale [a]", fp)
	}
	// "c" opened a fresh cluster rather than joining the stale one.
	if len(touched) != 1 || clusterFingerprint(touched[0]) != "hd/UPC=111 [c]" {
		t.Fatalf("touched = %v, want fresh [c]", touched)
	}
	// The stale cluster is gone from the store; "b" (LRU victim of
	// wave 2's bound enforcement) took its place.
	final := mem.Final()
	if len(final) != 2 {
		t.Fatalf("Final = %d clusters, want 2 (surviving tv + fresh hd)", len(final))
	}
	if fp := clusterFingerprint(final[0]); fp != "tv/UPC=222 [b]" {
		t.Errorf("Final[0] = %s, want surviving tv [b]", fp)
	}
	if fp := clusterFingerprint(final[1]); fp != "hd/UPC=111 [c]" {
		t.Errorf("Final[1] = %s, want fresh hd [c]", fp)
	}
}
