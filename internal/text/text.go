// Package text provides tokenization, normalization, bags of words, and
// term probability distributions. These are the shared lexical substrate
// for the schema-reconciliation features (Jensen-Shannon divergence over
// attribute value distributions), the value-fusion component, and the
// baseline matchers.
//
// All operations are pure and allocation-conscious; a Tokenizer can be
// reused across goroutines because it carries no mutable state.
package text

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenizer splits raw attribute values and titles into normalized tokens.
// The zero value is ready to use and applies the default normalization:
// lower-casing, splitting on any non-alphanumeric rune, and splitting at
// letter/digit boundaries (so "500GB" becomes ["500", "gb"], matching how
// the paper's value distributions treat "500 GB" and "500GB" as overlapping).
type Tokenizer struct {
	// KeepAlphaNumJoined, when true, disables splitting at letter/digit
	// boundaries, so "500GB" stays a single token. The paper's examples
	// (Figure 5c) tokenize "ATA 100 mb/s" into ["ata", "100", "mb", "s"],
	// which the default behaviour reproduces.
	KeepAlphaNumJoined bool

	// StopWords, when non-nil, is a set of tokens dropped from output.
	StopWords map[string]bool
}

// DefaultTokenizer is the tokenizer used throughout the pipeline.
var DefaultTokenizer = Tokenizer{}

// Tokenize returns the normalized tokens of s, in order of appearance.
// It never returns nil; an input with no token content yields an empty slice.
// Allocation-sensitive callers should use Scanner or TokenizeIDs instead,
// which stream tokens through reusable buffers.
func (t Tokenizer) Tokenize(s string) []string {
	tokens := make([]string, 0, 8)
	sc := t.Scanner(nil, s)
	for {
		tok, ok := sc.Next()
		if !ok {
			return tokens
		}
		tokens = append(tokens, string(tok))
	}
}

type runeClass int

const (
	classOther runeClass = iota
	classLetter
	classDigit
)

func classify(r rune) runeClass {
	switch {
	case unicode.IsLetter(r):
		return classLetter
	case unicode.IsDigit(r):
		return classDigit
	default:
		return classOther
	}
}

// NormalizeName canonicalizes an attribute name for name-identity comparison:
// lower-case, with runs of non-alphanumeric runes collapsed to single spaces
// and leading/trailing separators trimmed. "Mfr. Part #" and "mfr part"
// normalize identically.
func NormalizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	pendingSpace := false
	for _, r := range name {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if pendingSpace && b.Len() > 0 {
				b.WriteByte(' ')
			}
			pendingSpace = false
			b.WriteRune(unicode.ToLower(r))
		} else {
			pendingSpace = true
		}
	}
	return b.String()
}

// Bag is a multiset of tokens: the "bag of words" the paper assembles from
// all values of an attribute across a set of products or offers (§3.1).
type Bag struct {
	counts map[string]int
	total  int
}

// NewBag returns an empty bag.
func NewBag() *Bag {
	return &Bag{counts: make(map[string]int)}
}

// Add inserts every token once.
func (b *Bag) Add(tokens ...string) {
	for _, tok := range tokens {
		b.counts[tok]++
		b.total++
	}
}

// AddValue tokenizes v with the default tokenizer and adds the tokens.
func (b *Bag) AddValue(v string) {
	b.Add(DefaultTokenizer.Tokenize(v)...)
}

// Count returns the multiplicity of tok.
func (b *Bag) Count(tok string) int { return b.counts[tok] }

// Total returns the total number of token occurrences.
func (b *Bag) Total() int { return b.total }

// Distinct returns the number of distinct tokens.
func (b *Bag) Distinct() int { return len(b.counts) }

// Tokens returns the distinct tokens in unspecified order.
func (b *Bag) Tokens() []string {
	out := make([]string, 0, len(b.counts))
	for tok := range b.counts {
		out = append(out, tok)
	}
	return out
}

// SortedTokens returns the distinct tokens in lexicographic order.
func (b *Bag) SortedTokens() []string {
	out := b.Tokens()
	sort.Strings(out)
	return out
}

// Merge adds all of other's counts into b.
func (b *Bag) Merge(other *Bag) {
	if other == nil {
		return
	}
	for tok, n := range other.counts {
		b.counts[tok] += n
		b.total += n
	}
}

// Clone returns a deep copy of the bag.
func (b *Bag) Clone() *Bag {
	c := &Bag{counts: make(map[string]int, len(b.counts)), total: b.total}
	for tok, n := range b.counts {
		c.counts[tok] = n
	}
	return c
}

// Jaccard returns the Jaccard coefficient |A∩B| / |A∪B| over the distinct
// token sets of the two bags (§3.1: "The Jaccard coefficient considers only
// counts for the different terms"). Two empty bags have similarity 0.
func (b *Bag) Jaccard(other *Bag) float64 {
	if b == nil || other == nil || (len(b.counts) == 0 && len(other.counts) == 0) {
		return 0
	}
	inter := 0
	small, large := b, other
	if len(small.counts) > len(large.counts) {
		small, large = large, small
	}
	for tok := range small.counts {
		if large.counts[tok] > 0 {
			inter++
		}
	}
	union := len(b.counts) + len(other.counts) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Distribution is a probability distribution over tokens:
// p(t) = count(t) / total, per the paper's definition in §3.1.
type Distribution struct {
	probs map[string]float64
}

// Distribution converts the bag into a probability distribution.
// An empty bag yields an empty (zero-support) distribution.
func (b *Bag) Distribution() Distribution {
	d := Distribution{probs: make(map[string]float64, len(b.counts))}
	if b.total == 0 {
		return d
	}
	inv := 1 / float64(b.total)
	for tok, n := range b.counts {
		d.probs[tok] = float64(n) * inv
	}
	return d
}

// P returns the probability of tok (0 if unsupported).
func (d Distribution) P(tok string) float64 { return d.probs[tok] }

// Support returns the number of tokens with non-zero probability.
func (d Distribution) Support() int { return len(d.probs) }

// Tokens returns the supported tokens in lexicographic order, so that
// floating-point reductions over a distribution are deterministic.
func (d Distribution) Tokens() []string {
	out := make([]string, 0, len(d.probs))
	for tok := range d.probs {
		out = append(out, tok)
	}
	sort.Strings(out)
	return out
}

// Mass returns the total probability mass (1 for a valid non-empty
// distribution, 0 for an empty one). Exposed for invariant testing.
func (d Distribution) Mass() float64 {
	var sum float64
	for _, p := range d.probs {
		sum += p
	}
	return sum
}
