package correspond

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"prodsynth/internal/offer"
)

func sampleSet() *Set {
	key1 := offer.SchemaKey{Merchant: "hdshop", CategoryID: "computing/hard-drives"}
	key2 := offer.SchemaKey{Merchant: "acme", CategoryID: "cameras/digital-cameras"}
	s := NewSet()
	s.Add(Scored{Candidate: Candidate{Key: key1, CatalogAttr: "Speed", MerchantAttr: "RPM"}, Score: 0.93})
	s.Add(Scored{Candidate: Candidate{Key: key1, CatalogAttr: "Interface", MerchantAttr: "Int. Type"}, Score: 0.88})
	s.Add(Scored{Candidate: Candidate{Key: key2, CatalogAttr: "Resolution", MerchantAttr: "Megapixels"}, Score: 0.97})
	return s
}

func TestSetRoundTrip(t *testing.T) {
	s := sampleSet()
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), s.Len())
	}
	for _, sc := range s.All() {
		ap, ok := got.Lookup(sc.Key, sc.MerchantAttr)
		if !ok || ap != sc.CatalogAttr {
			t.Errorf("lookup %v/%s = %q, %v", sc.Key, sc.MerchantAttr, ap, ok)
		}
	}
}

func TestWriteSetDeterministic(t *testing.T) {
	s := sampleSet()
	var a, b bytes.Buffer
	if err := WriteSet(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteSet(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic")
	}
	// Sorted: acme rows before hdshop rows.
	lines := strings.Split(a.String(), "\n")
	if !strings.HasPrefix(lines[1], "acme\t") {
		t.Errorf("order wrong: %q", lines[1])
	}
}

func TestReadSetErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"short row", ioHeader + "\nm\tc\n"},
		{"bad score", ioHeader + "\nm\tc\ta\tb\tNaNope\n"},
	}
	for _, c := range cases {
		if _, err := ReadSet(strings.NewReader(c.in)); !errors.Is(err, ErrBadCorrespondenceFile) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestReadSetSkipsBlankLines(t *testing.T) {
	in := ioHeader + "\n\nm\tc\ta\tb\t0.5\n"
	got, err := ReadSet(strings.NewReader(in))
	if err != nil || got.Len() != 1 {
		t.Errorf("got %v, err %v", got, err)
	}
}

func TestWriteSetSanitizes(t *testing.T) {
	s := NewSet()
	s.Add(Scored{Candidate: Candidate{
		Key:          offer.SchemaKey{Merchant: "m\tx", CategoryID: "c"},
		MerchantAttr: "a\nb", CatalogAttr: "B",
	}, Score: 0.5})
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSet(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("sanitized output unreadable: %v", err)
	}
}
