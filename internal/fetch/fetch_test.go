package fetch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mapPages is a minimal in-memory fetcher (core.MapFetcher's twin, kept
// local so the package stays a leaf).
type mapPages map[string]string

func (m mapPages) Fetch(url string) (string, error) {
	page, ok := m[url]
	if !ok {
		return "", fmt.Errorf("not found: %q", url)
	}
	return page, nil
}

func testPolicy(clock Clock) Policy {
	return Policy{
		Timeout:     time.Second,
		MaxAttempts: 3,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		Clock:       clock,
	}
}

func TestRetryRecovers(t *testing.T) {
	clock := NewFakeClock()
	pages := mapPages{"u1": "page one"}
	faulty := NewFaulty(pages, FailFirst(2), clock)
	r := NewResilient(faulty, testPolicy(clock))

	page, err := r.FetchContext(context.Background(), "u1")
	if err != nil {
		t.Fatalf("FetchContext: %v", err)
	}
	if page != "page one" {
		t.Fatalf("page = %q, want %q", page, "page one")
	}
	want := Counters{Attempted: 1, Attempts: 3, Retried: 1, Recovered: 1}
	if got := r.FetchCounters(); got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	if clock.Slept() <= 0 {
		t.Fatalf("expected backoff sleeps, slept = %v", clock.Slept())
	}
}

func TestRetriesExhausted(t *testing.T) {
	clock := NewFakeClock()
	faulty := NewFaulty(mapPages{"u1": "x"}, FailFirst(99), clock)
	r := NewResilient(faulty, testPolicy(clock))

	_, err := r.FetchContext(context.Background(), "u1")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	want := Counters{Attempted: 1, Attempts: 3, Retried: 1, GaveUp: 1}
	if got := r.FetchCounters(); got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	if faulty.Attempts("u1") != 3 {
		t.Fatalf("attempts = %d, want 3", faulty.Attempts("u1"))
	}
}

func TestPermanentErrorNoRetry(t *testing.T) {
	clock := NewFakeClock()
	sched := ScheduleFunc(func(url string, attempt int) Outcome {
		return Outcome{Err: fmt.Errorf("%w: gone: %q", ErrPermanent, url)}
	})
	faulty := NewFaulty(mapPages{}, sched, clock)
	r := NewResilient(faulty, testPolicy(clock))

	_, err := r.FetchContext(context.Background(), "u1")
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	want := Counters{Attempted: 1, Attempts: 1, GaveUp: 1}
	if got := r.FetchCounters(); got != want {
		t.Fatalf("counters = %+v, want %+v (permanent errors must not retry)", got, want)
	}
}

// slowLegacy is a context-free fetcher that blocks until released — the
// shape the per-attempt timeout has to race in a goroutine.
type slowLegacy struct {
	release chan struct{}
	calls   atomic.Int64
}

func (s *slowLegacy) Fetch(url string) (string, error) {
	s.calls.Add(1)
	<-s.release
	return "late", nil
}

func TestAttemptTimeoutLegacyFetcher(t *testing.T) {
	slow := &slowLegacy{release: make(chan struct{})}
	r := NewResilient(slow, Policy{Timeout: 20 * time.Millisecond, MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond})

	start := time.Now()
	_, err := r.FetchContext(context.Background(), "u1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, deadline not enforced", elapsed)
	}
	want := Counters{Attempted: 1, Attempts: 2, Retried: 1, GaveUp: 1}
	if got := r.FetchCounters(); got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
	close(slow.release) // let the abandoned goroutines drain
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	clock := NewFakeClock()
	down := true
	var mu sync.Mutex
	sched := ScheduleFunc(func(url string, attempt int) Outcome {
		mu.Lock()
		defer mu.Unlock()
		if down {
			return Outcome{Err: fmt.Errorf("%w: down", ErrInjected)}
		}
		return Outcome{}
	})
	faulty := NewFaulty(mapPages{"http://a.example.com/1": "p"}, sched, clock)
	p := testPolicy(clock)
	p.MaxAttempts = 1 // isolate breaker arithmetic from retries
	p.BreakerThreshold = 3
	p.BreakerCooldown = 30 * time.Second
	r := NewResilient(faulty, p)

	url := "http://a.example.com/1"
	ctx := context.Background()
	// Three failures trip the breaker.
	for i := 0; i < 3; i++ {
		if _, err := r.FetchContext(ctx, url); !errors.Is(err, ErrInjected) {
			t.Fatalf("fetch %d: err = %v, want ErrInjected", i, err)
		}
	}
	// Open: rejected without reaching the fetcher.
	before := faulty.Attempts(url)
	if _, err := r.FetchContext(ctx, url); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if faulty.Attempts(url) != before {
		t.Fatal("open breaker must not reach the underlying fetcher")
	}
	if got := r.FetchCounters().BreakerRejected; got != 1 {
		t.Fatalf("BreakerRejected = %d, want 1", got)
	}

	// Half-open probe fails → re-opens immediately (no threshold wait).
	clock.Advance(31 * time.Second)
	if _, err := r.FetchContext(ctx, url); !errors.Is(err, ErrInjected) {
		t.Fatalf("probe err = %v, want ErrInjected", err)
	}
	if _, err := r.FetchContext(ctx, url); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("after failed probe: err = %v, want ErrBreakerOpen", err)
	}

	// Host recovers; probe succeeds → breaker closes.
	mu.Lock()
	down = false
	mu.Unlock()
	clock.Advance(31 * time.Second)
	if _, err := r.FetchContext(ctx, url); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if _, err := r.FetchContext(ctx, url); err != nil {
		t.Fatalf("after close: %v", err)
	}
}

func TestBreakerPerHost(t *testing.T) {
	clock := NewFakeClock()
	faulty := NewFaulty(mapPages{"http://ok.example.com/1": "p"}, HostOutage("down.example.com"), clock)
	p := testPolicy(clock)
	p.MaxAttempts = 1
	p.BreakerThreshold = 2
	r := NewResilient(faulty, p)

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.FetchContext(ctx, "http://down.example.com/x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected", err)
		}
	}
	if _, err := r.FetchContext(ctx, "http://down.example.com/x"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	// The healthy host is unaffected.
	if _, err := r.FetchContext(ctx, "http://ok.example.com/1"); err != nil {
		t.Fatalf("healthy host: %v", err)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	var inFlight, peak atomic.Int64
	block := make(chan struct{})
	inner := fetchFunc(func(url string) (string, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-block
		inFlight.Add(-1)
		return "p", nil
	})
	r := NewResilient(inner, Policy{MaxAttempts: 1, MaxConcurrent: 2})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := r.FetchContext(context.Background(), fmt.Sprintf("u%d", i)); err != nil {
				t.Errorf("fetch: %v", err)
			}
		}(i)
	}
	// Let goroutines pile up against the gate, then release.
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak in-flight = %d, want <= 2", got)
	}
}

type fetchFunc func(url string) (string, error)

func (f fetchFunc) Fetch(url string) (string, error) { return f(url) }

func TestCancelDuringBackoffNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// A real clock so the backoff sleep genuinely blocks; cancellation
	// must cut it short.
	faulty := NewFaulty(mapPages{"u1": "p"}, FailFirst(99), nil)
	r := NewResilient(faulty, Policy{
		MaxAttempts: 10,
		BackoffBase: time.Hour, // without cancellation this would hang
		BackoffMax:  time.Hour,
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.FetchContext(ctx, "u1")
		done <- err
	}()
	// First attempt fails fast, then the operation parks in backoff.
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch did not return after cancel during backoff")
	}
	if got := r.FetchCounters().GaveUp; got != 1 {
		t.Fatalf("GaveUp = %d, want 1", got)
	}
	waitGoroutines(t, baseline)
}

func TestCancelWaitingOnGateNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	block := make(chan struct{})
	inner := fetchFunc(func(url string) (string, error) {
		<-block
		return "p", nil
	})
	r := NewResilient(inner, Policy{MaxAttempts: 1, MaxConcurrent: 1})

	// Occupy the only slot.
	first := make(chan struct{})
	go func() {
		r.FetchContext(context.Background(), "hold")
		close(first)
	}()
	time.Sleep(20 * time.Millisecond)

	// Second fetch parks on the gate; cancelling must release it.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.FetchContext(ctx, "waiting")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch did not return after cancel while gated")
	}
	close(block)
	<-first
	waitGoroutines(t, baseline)
}

func TestFaultyDeterministicAcrossOrder(t *testing.T) {
	urls := []string{"http://a.example.com/1", "http://b.example.com/2", "http://c.example.com/3"}
	sched := Flaky(42, 0.5)

	outcomes := func(order []string) map[string][]bool {
		got := make(map[string][]bool)
		for _, u := range order {
			for attempt := 1; attempt <= 4; attempt++ {
				got[u] = append(got[u], sched.Outcome(u, attempt).Err == nil)
			}
		}
		return got
	}
	forward := outcomes(urls)
	reversed := outcomes([]string{urls[2], urls[1], urls[0]})
	for u, seq := range forward {
		for i, ok := range seq {
			if reversed[u][i] != ok {
				t.Fatalf("schedule for %q attempt %d depends on call order", u, i+1)
			}
		}
	}
}

func TestFaultyLatencyObservesContext(t *testing.T) {
	clock := NewFakeClock()
	sched := ScheduleFunc(func(url string, attempt int) Outcome {
		return Outcome{Latency: time.Minute}
	})
	faulty := NewFaulty(mapPages{"u1": "p"}, sched, clock)

	// On a live context the fake clock absorbs the latency instantly.
	if _, err := faulty.FetchContext(context.Background(), "u1"); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if clock.Slept() != time.Minute {
		t.Fatalf("slept = %v, want 1m", clock.Slept())
	}
	// On a cancelled context the latency sleep returns the ctx error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := faulty.FetchContext(ctx, "u1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestHost(t *testing.T) {
	cases := map[string]string{
		"http://merchant-a.example.com/item/o1": "merchant-a.example.com",
		"https://x.test:8080/p":                 "x.test:8080",
		"no-scheme-plain-key":                   "no-scheme-plain-key",
		"http://":                               "http://",
	}
	for url, want := range cases {
		if got := Host(url); got != want {
			t.Errorf("Host(%q) = %q, want %q", url, got, want)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{
		Counters: Counters{Attempted: 10, Attempts: 14, Retried: 3, Recovered: 2, GaveUp: 1, BreakerRejected: 1},
		FeedOnly: []string{"o1", "o2"},
	}
	s := r.String()
	for _, frag := range []string{"fetched 10", "14 attempts", "3 retried", "2 recovered", "1 gave up", "1 breaker-rejected", "2 offers feed-only"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Report.String() = %q, missing %q", s, frag)
		}
	}
	if !r.Degraded() {
		t.Error("Degraded() = false, want true")
	}
}

func TestPolicyEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Error("zero Policy must be disabled")
	}
	if !(Policy{MaxAttempts: 3}).Enabled() {
		t.Error("Policy{MaxAttempts: 3} must be enabled")
	}
	if !DefaultPolicy().Enabled() {
		t.Error("DefaultPolicy must be enabled")
	}
}

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline, failing the test if it does not settle.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
