package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

func mkOffer(id, cat, mpn, upc string) offer.Offer {
	spec := catalog.Spec{}
	if mpn != "" {
		spec = append(spec, catalog.AttributeValue{Name: catalog.AttrMPN, Value: mpn})
	}
	if upc != "" {
		spec = append(spec, catalog.AttributeValue{Name: catalog.AttrUPC, Value: upc})
	}
	return offer.Offer{ID: id, CategoryID: cat, Spec: spec}
}

func TestGroupByMPN(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "HDT725", ""),
		mkOffer("o2", "hd", "hdt-725", ""), // same key after normalization
		mkOffer("o3", "hd", "ST3500", ""),
	}
	clusters, skipped := Group(offers, Options{})
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	if len(clusters[0].Offers) != 2 || clusters[0].Key != "HDT725" {
		t.Errorf("cluster0 = %+v", clusters[0])
	}
	if clusters[0].KeyAttr != catalog.AttrMPN {
		t.Errorf("KeyAttr = %q", clusters[0].KeyAttr)
	}
}

func TestGroupUPCPriority(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "MPN-A", "000111"),
		mkOffer("o2", "hd", "MPN-B", "000111"), // same UPC, different MPN
	}
	clusters, _ := Group(offers, Options{})
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d; UPC should take priority", len(clusters))
	}
	if clusters[0].KeyAttr != catalog.AttrUPC {
		t.Errorf("KeyAttr = %q", clusters[0].KeyAttr)
	}
}

func TestGroupMergesAcrossKeyAttributes(t *testing.T) {
	// o1 carries both keys, o2 only the MPN, o3 only the UPC: all three
	// describe one product and must form one cluster.
	offers := []offer.Offer{
		mkOffer("o1", "hd", "MPN1", "UPC1"),
		mkOffer("o2", "hd", "MPN1", ""),
		mkOffer("o3", "hd", "", "UPC1"),
	}
	clusters, skipped := Group(offers, Options{})
	if len(clusters) != 1 || len(skipped) != 0 {
		t.Fatalf("clusters=%d skipped=%d", len(clusters), len(skipped))
	}
	if len(clusters[0].Offers) != 3 {
		t.Errorf("cluster size = %d", len(clusters[0].Offers))
	}
	if clusters[0].KeyAttr != catalog.AttrUPC || clusters[0].Key != "UPC1" {
		t.Errorf("identity = %q/%q", clusters[0].KeyAttr, clusters[0].Key)
	}
}

func TestGroupSkipsKeylessOffers(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "A1", ""),
		{ID: "o2", CategoryID: "hd", Spec: catalog.Spec{{Name: "Brand", Value: "X"}}},
		{ID: "o3", CategoryID: "hd"},
	}
	clusters, skipped := Group(offers, Options{})
	if len(clusters) != 1 || len(skipped) != 2 {
		t.Errorf("clusters=%d skipped=%d", len(clusters), len(skipped))
	}
}

func TestGroupMajorityCategoryAbsorbsClassifierErrors(t *testing.T) {
	// Three offers share a UPC; one was misclassified into "cam". By
	// default they merge and the majority category wins.
	offers := []offer.Offer{
		mkOffer("o1", "hd", "", "U1"),
		mkOffer("o2", "hd", "", "U1"),
		mkOffer("o3", "cam", "", "U1"),
	}
	clusters, _ := Group(offers, Options{})
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	if clusters[0].CategoryID != "hd" {
		t.Errorf("category = %q, want majority hd", clusters[0].CategoryID)
	}
}

func TestGroupWithinCategoryOption(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "SAME", ""),
		mkOffer("o2", "cam", "SAME", ""),
	}
	clusters, _ := Group(offers, Options{WithinCategory: true})
	if len(clusters) != 2 {
		t.Errorf("clusters = %d; WithinCategory must not merge across categories", len(clusters))
	}
	merged, _ := Group(offers, Options{})
	if len(merged) != 1 {
		t.Errorf("default should merge on shared key: %d clusters", len(merged))
	}
}

func TestGroupCustomKeyAttrs(t *testing.T) {
	offers := []offer.Offer{
		{ID: "o1", CategoryID: "hd", Spec: catalog.Spec{{Name: "Serial", Value: "S1"}}},
		{ID: "o2", CategoryID: "hd", Spec: catalog.Spec{{Name: "Serial", Value: "S1"}}},
	}
	clusters, skipped := Group(offers, Options{KeyAttrs: []string{"Serial"}})
	if len(clusters) != 1 || len(skipped) != 0 {
		t.Errorf("clusters=%d skipped=%d", len(clusters), len(skipped))
	}
}

func TestNormalizeKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"HDT 725050-VLA360", "HDT725050VLA360"},
		{"hdt725050vla360", "HDT725050VLA360"},
		{"  a_b.c  ", "ABC"},
		{"---", ""},
	}
	for _, c := range cases {
		if got := normalizeKey(c.in); got != c.want {
			t.Errorf("normalizeKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSummarizeAndSort(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "A", ""),
		mkOffer("o2", "hd", "A", ""),
		mkOffer("o3", "hd", "A", ""),
		mkOffer("o4", "hd", "B", ""),
		{ID: "o5", CategoryID: "hd"},
	}
	clusters, skipped := Group(offers, Options{})
	st := Summarize(clusters, skipped)
	if st.Clusters != 2 || st.Offers != 4 || st.Skipped != 1 ||
		st.LargestSize != 3 || st.SingletonSize != 1 {
		t.Errorf("stats = %+v", st)
	}
	SortBySize(clusters)
	if clusters[0].Key != "A" {
		t.Errorf("sort order wrong: %+v", clusters)
	}
}

func TestGroupDeterministicOrder(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "Z", ""),
		mkOffer("o2", "hd", "A", ""),
		mkOffer("o3", "hd", "M", ""),
	}
	a, _ := Group(offers, Options{})
	b, _ := Group(offers, Options{})
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("cluster order not deterministic")
		}
	}
	// Insertion order preserved.
	if a[0].Key != "Z" || a[1].Key != "A" || a[2].Key != "M" {
		t.Errorf("order = %v", []string{a[0].Key, a[1].Key, a[2].Key})
	}
}

// TestGroupPartitionProperty checks the fundamental clustering invariants
// on random inputs: clusters partition the keyed offers (no loss, no
// duplication), offers sharing a key land together, and the result is
// independent of input order up to cluster identity.
func TestGroupPartitionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 2
		offers := make([]offer.Offer, count)
		for i := range offers {
			var spec catalog.Spec
			if rng.Intn(4) > 0 { // 3/4 of offers carry an MPN
				spec = append(spec, catalog.AttributeValue{
					Name: catalog.AttrMPN, Value: fmt.Sprintf("K%d", rng.Intn(8)),
				})
			}
			if rng.Intn(2) == 0 { // half carry a UPC
				spec = append(spec, catalog.AttributeValue{
					Name: catalog.AttrUPC, Value: fmt.Sprintf("U%d", rng.Intn(8)),
				})
			}
			offers[i] = offer.Offer{ID: fmt.Sprintf("o%d", i), CategoryID: "c", Spec: spec}
		}
		clusters, skipped := Group(offers, Options{})

		// Partition: every offer appears exactly once.
		seen := make(map[string]int)
		for _, cl := range clusters {
			for _, o := range cl.Offers {
				seen[o.ID]++
			}
		}
		for _, o := range skipped {
			seen[o.ID]++
		}
		if len(seen) != count {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}

		// Cohesion: two offers with the same MPN value share a cluster.
		clusterOf := make(map[string]int)
		for ci, cl := range clusters {
			for _, o := range cl.Offers {
				clusterOf[o.ID] = ci
			}
		}
		byMPN := make(map[string]int)
		for _, o := range offers {
			v, ok := o.Spec.Get(catalog.AttrMPN)
			if !ok {
				continue
			}
			if prev, ok := byMPN[v]; ok {
				if clusterOf[o.ID] != prev {
					return false
				}
			} else {
				byMPN[v] = clusterOf[o.ID]
			}
		}

		// Order independence: shuffling input preserves the partition.
		shuffled := append([]offer.Offer(nil), offers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		clusters2, skipped2 := Group(shuffled, Options{})
		if len(clusters2) != len(clusters) || len(skipped2) != len(skipped) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOfferKeys(t *testing.T) {
	o := mkOffer("o1", "hd", "hdt-725", "00 111")
	keys := OfferKeys(o, nil, false)
	want := []string{catalog.AttrUPC + "\x00" + "00111", catalog.AttrMPN + "\x00" + "HDT725"}
	if len(keys) != len(want) || keys[0] != want[0] || keys[1] != want[1] {
		t.Errorf("OfferKeys = %q, want %q", keys, want)
	}
	// Category namespace.
	keys = OfferKeys(o, []string{catalog.AttrUPC}, true)
	if len(keys) != 1 || keys[0] != "hd\x00"+catalog.AttrUPC+"\x00"+"00111" {
		t.Errorf("within-category keys = %q", keys)
	}
	// No keys at all.
	if keys := OfferKeys(mkOffer("o2", "hd", "", ""), nil, false); len(keys) != 0 {
		t.Errorf("key-less offer produced %q", keys)
	}
}

// TestAssembleMatchesGroup checks that Assemble computes cluster identity
// exactly as Group does: assembling each Group cluster's member set must
// reproduce the cluster.
func TestAssembleMatchesGroup(t *testing.T) {
	offers := []offer.Offer{
		mkOffer("o1", "hd", "MPN-A", "000111"),
		mkOffer("o2", "tv", "MPN-B", "000111"),
		mkOffer("o3", "hd", "mpn a", ""),
		mkOffer("o4", "hd", "ZZZ", ""),
	}
	clusters, _ := Group(offers, Options{})
	for i, c := range clusters {
		re := Assemble(c.Offers, nil)
		if re.Key != c.Key || re.KeyAttr != c.KeyAttr || re.CategoryID != c.CategoryID {
			t.Errorf("cluster %d: Assemble = %s/%s=%s, Group = %s/%s=%s",
				i, re.CategoryID, re.KeyAttr, re.Key, c.CategoryID, c.KeyAttr, c.Key)
		}
	}
}
