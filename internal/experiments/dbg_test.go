package experiments

import (
	"os"
	"testing"
)

// TestDebugCurves prints the figure curves; kept for interactive debugging,
// runs only with -run TestDebugCurves.
func TestDebugCurves(t *testing.T) {
	if os.Getenv("DEBUG_CURVES") == "" {
		t.Skip("set DEBUG_CURVES=1 to print curves")
	}
	e := env(t)
	for _, build := range []func(*Env) (*Figure, error){Figure6, Figure7, Figure8, Figure9} {
		f, err := build(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := RenderFigure(os.Stdout, f); err != nil {
			t.Fatal(err)
		}
	}
}
