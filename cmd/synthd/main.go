// Command synthd is the product-synthesis daemon: it boots a learned
// system once — from a catalog+model bundle (cmd/synthesize -save-bundle)
// or by learning from a dataset directory — and serves synthesis over
// HTTP until terminated.
//
// Usage:
//
//	synthd -bundle warm.psbd [-addr :8080]        # warm boot from one artifact
//	synthd -data ./data [-addr :8080]             # learn at boot, then serve
//	synthd -data ./data -emit-request             # print a /v1/synthesize body and exit
//
// Endpoints (see prodsynth/internal/serve for the full contract):
//
//	POST /v1/synthesize         one-shot synthesis
//	POST /v1/synthesize/stream  wave-at-a-time synthesis, NDJSON out
//	POST /v1/reload             hot-swap the model without downtime
//	GET  /healthz /readyz /metrics
//
// Reload semantics: with -reload-data (or -data) set, POST /v1/reload
// re-learns from that directory's historical feed against the serving
// catalog; with only -bundle set, it re-reads the bundle file — the ops
// flow where a batch job atomically replaces the bundle on disk and then
// pokes the daemon. The swap is atomic; in-flight requests finish on the
// generation they started with.
//
// On SIGTERM or SIGINT the daemon drains gracefully: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), then the process
// exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prodsynth"
	"prodsynth/internal/dataset"
	"prodsynth/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synthd: ")

	var (
		bundle       = flag.String("bundle", "", "catalog+model bundle to boot from (skips learning)")
		data         = flag.String("data", "", "dataset directory to learn from at boot")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxInFlight  = flag.Int("max-inflight", 64, "max concurrent synthesis requests before shedding with 429")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request synthesis deadline (requests may tighten it, never extend)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful drain bound after SIGTERM")
		reloadData   = flag.String("reload-data", "", "dataset directory re-learned by POST /v1/reload (defaults to -data)")
		emitRequest  = flag.Bool("emit-request", false, "print a /v1/synthesize request body for -data's incoming feed and exit")
		verbose      = flag.Bool("v", false, "log boot statistics")
	)
	flag.Parse()

	if *emitRequest {
		if *data == "" {
			log.Fatal("-emit-request requires -data")
		}
		ds, err := dataset.LoadWorkload(*data)
		if err != nil {
			log.Fatal(err)
		}
		req := serve.SynthesizeRequest{
			Offers: serve.WireOffers(ds.IncomingOffers),
			Pages:  serve.WirePages(ds.Pages),
		}
		if err := json.NewEncoder(os.Stdout).Encode(req); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		store *prodsynth.Catalog
		model *prodsynth.Model
		err   error
	)
	switch {
	case *bundle != "":
		store, model, err = readBundle(*bundle)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			log.Printf("booted from bundle %s: %d categories, %d products, %d correspondences",
				*bundle, store.NumCategories(), store.NumProducts(), st.Correspondences)
		}
	case *data != "":
		ds, err := dataset.Load(*data)
		if err != nil {
			log.Fatal(err)
		}
		store = ds.Catalog
		model, err = prodsynth.Learn(context.Background(), store, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			log.Printf("learned from %s: %d historical offers, %d correspondences", *data, st.HistoricalOffers, st.Correspondences)
		}
	default:
		log.Print("one of -bundle or -data is required")
		flag.Usage()
		os.Exit(2)
	}

	sys := prodsynth.NewSystem(store, model)
	srv := serve.New(sys, serve.Options{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		Reload:         reloadFunc(store, *reloadData, *data, *bundle),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Parseable by scripts and tests (and the only stdout line): the
	// resolved address matters when -addr picked port 0.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}

// reloadFunc picks the /v1/reload source: a dataset directory to re-learn
// from (against the serving catalog), else the bundle file to re-read,
// else nil (endpoint answers 501).
func reloadFunc(store *prodsynth.Catalog, reloadData, data, bundle string) func(context.Context) (*prodsynth.Model, error) {
	src := reloadData
	if src == "" {
		src = data
	}
	switch {
	case src != "":
		return func(ctx context.Context) (*prodsynth.Model, error) {
			ds, err := dataset.LoadWorkload(src)
			if err != nil {
				return nil, err
			}
			return prodsynth.Learn(ctx, store, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
		}
	case bundle != "":
		return func(context.Context) (*prodsynth.Model, error) {
			_, m, err := readBundle(bundle)
			return m, err
		}
	}
	return nil
}

func readBundle(path string) (*prodsynth.Catalog, *prodsynth.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return prodsynth.LoadBundle(f)
}
