package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearlySeparable builds a 2-D dataset separable by x0 > x1.
func linearlySeparable(n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		label := 0
		if a > b+0.05 {
			label = 1
		} else if a > b {
			continue // margin
		}
		out = append(out, Example{Features: []float64{a, b}, Label: label})
	}
	return out
}

func TestTrainLogisticSeparable(t *testing.T) {
	exs := linearlySeparable(500, 1)
	m, err := TrainLogistic(exs, LogisticConfig{Epochs: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	met := Evaluate(m, exs, 0.5)
	if acc := met.Accuracy(); acc < 0.97 {
		t.Errorf("train accuracy = %.3f, want >= 0.97 (%+v)", acc, met)
	}
	// Generalization on a fresh sample.
	test := linearlySeparable(300, 2)
	met = Evaluate(m, test, 0.5)
	if acc := met.Accuracy(); acc < 0.95 {
		t.Errorf("test accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestTrainLogisticDeterministic(t *testing.T) {
	exs := linearlySeparable(200, 3)
	m1, err := TrainLogistic(exs, LogisticConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainLogistic(exs, LogisticConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Weights {
		if m1.Weights[i] != m2.Weights[i] {
			t.Fatalf("weights differ at %d: %g vs %g", i, m1.Weights[i], m2.Weights[i])
		}
	}
	if m1.Bias != m2.Bias {
		t.Error("bias differs")
	}
}

func TestTrainLogisticErrors(t *testing.T) {
	if _, err := TrainLogistic(nil, LogisticConfig{}); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("empty err = %v", err)
	}
	onlyPos := []Example{{Features: []float64{1}, Label: 1}}
	if _, err := TrainLogistic(onlyPos, LogisticConfig{}); !errors.Is(err, ErrNoTrainingData) {
		t.Errorf("single-class err = %v", err)
	}
	ragged := []Example{
		{Features: []float64{1, 2}, Label: 1},
		{Features: []float64{1}, Label: 0},
	}
	if _, err := TrainLogistic(ragged, LogisticConfig{}); err == nil {
		t.Error("ragged features should error")
	}
}

func TestClassWeightingHelpsImbalance(t *testing.T) {
	// 95:5 imbalance with a weak signal; weighting should improve recall
	// of the minority class at threshold 0.5.
	rng := rand.New(rand.NewSource(9))
	var exs []Example
	for i := 0; i < 950; i++ {
		exs = append(exs, Example{Features: []float64{rng.Float64() * 0.6}, Label: 0})
	}
	for i := 0; i < 50; i++ {
		exs = append(exs, Example{Features: []float64{0.4 + rng.Float64()*0.6}, Label: 1})
	}
	unweighted, err := TrainLogistic(exs, LogisticConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := TrainLogistic(exs, LogisticConfig{Seed: 1, ClassWeighting: true})
	if err != nil {
		t.Fatal(err)
	}
	ru := Evaluate(unweighted, exs, 0.5).Recall()
	rw := Evaluate(weighted, exs, 0.5).Recall()
	if rw < ru {
		t.Errorf("weighted recall %.3f < unweighted %.3f", rw, ru)
	}
}

func TestSigmoid(t *testing.T) {
	if got := sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %g", got)
	}
	if got := sigmoid(100); got <= 0.999 {
		t.Errorf("sigmoid(100) = %g", got)
	}
	if got := sigmoid(-100); got >= 0.001 {
		t.Errorf("sigmoid(-100) = %g", got)
	}
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		p := sigmoid(z)
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbMonotonicInScore(t *testing.T) {
	m := &Logistic{Weights: []float64{2, -1}, Bias: 0.5}
	lo := m.Prob([]float64{0, 1})
	hi := m.Prob([]float64{1, 0})
	if lo >= hi {
		t.Errorf("prob not monotone: %g vs %g", lo, hi)
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, TN: 85, FN: 5}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("precision = %g", p)
	}
	if r := m.Recall(); math.Abs(r-8.0/13) > 1e-12 {
		t.Errorf("recall = %g", r)
	}
	if f := m.F1(); f <= 0 || f >= 1 {
		t.Errorf("f1 = %g", f)
	}
	if a := m.Accuracy(); math.Abs(a-0.93) > 1e-12 {
		t.Errorf("accuracy = %g", a)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero metrics should be 0")
	}
}

func TestNaiveBayesBasic(t *testing.T) {
	nb := NewNaiveBayes(1)
	nb.Train("hard-drives", []string{"hdd", "sata", "rpm", "gb"})
	nb.Train("hard-drives", []string{"drive", "gb", "cache", "sata"})
	nb.Train("cameras", []string{"mp", "zoom", "lens"})
	nb.Train("cameras", []string{"camera", "lens", "sensor"})

	class, p := nb.Classify([]string{"sata", "gb", "rpm"})
	if class != "hard-drives" {
		t.Errorf("class = %q (p=%g)", class, p)
	}
	class, _ = nb.Classify([]string{"zoom", "lens"})
	if class != "cameras" {
		t.Errorf("class = %q", class)
	}
	if nb.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", nb.NumClasses())
	}
}

func TestNaiveBayesPosteriorSumsToOne(t *testing.T) {
	nb := NewNaiveBayes(1)
	nb.Train("a", []string{"x", "y"})
	nb.Train("b", []string{"z"})
	nb.Train("c", []string{"x", "z"})
	post := nb.Posterior([]string{"x", "q"})
	var sum float64
	for _, p := range post {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posterior mass = %g", sum)
	}
}

func TestNaiveBayesUnknownTokens(t *testing.T) {
	nb := NewNaiveBayes(1)
	nb.Train("a", []string{"x"})
	nb.Train("b", []string{"y"})
	// All-unknown tokens: smoothing must keep this finite and prior-driven.
	class, p := nb.Classify([]string{"unseen", "tokens"})
	if class == "" || math.IsNaN(p) {
		t.Errorf("classify unknown = %q, %g", class, p)
	}
}

func TestNaiveBayesPriors(t *testing.T) {
	nb := NewNaiveBayes(1)
	// Class "big" has 9 docs, "small" has 1, same token content.
	for i := 0; i < 9; i++ {
		nb.Train("big", []string{"t"})
	}
	nb.Train("small", []string{"t"})
	class, _ := nb.Classify([]string{"t"})
	if class != "big" {
		t.Errorf("with priors, class = %q", class)
	}
	nb.SetUniformPriors()
	post := nb.Posterior([]string{"t"})
	if math.Abs(post["big"]-post["small"]) > 1e-9 {
		t.Errorf("uniform priors should tie: %v", post)
	}
}

func TestNaiveBayesEmpty(t *testing.T) {
	nb := NewNaiveBayes(1)
	if class, p := nb.Classify([]string{"x"}); class != "" || p != 0 {
		t.Errorf("empty classifier = %q, %g", class, p)
	}
	if lp := nb.LogPosterior("missing", []string{"x"}); !math.IsInf(lp, -1) {
		t.Errorf("unknown class LogPosterior = %g", lp)
	}
}

func TestNaiveBayesDeterministicTieBreak(t *testing.T) {
	nb := NewNaiveBayes(1)
	nb.Train("beta", []string{"t"})
	nb.Train("alpha", []string{"t"})
	class, _ := nb.Classify([]string{"t"})
	if class != "alpha" {
		t.Errorf("tie should break lexicographically, got %q", class)
	}
}

func BenchmarkTrainLogistic(b *testing.B) {
	exs := linearlySeparable(1000, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TrainLogistic(exs, LogisticConfig{Epochs: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveBayesClassify(b *testing.B) {
	nb := NewNaiveBayes(1)
	for i := 0; i < 50; i++ {
		nb.Train("hard-drives", []string{"hdd", "sata", "rpm", "gb"})
		nb.Train("cameras", []string{"mp", "zoom", "lens"})
		nb.Train("kitchen", []string{"watt", "steel", "dishwasher"})
	}
	toks := []string{"sata", "gb", "rpm", "cache"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nb.Classify(toks)
	}
}

// TestNaiveBayesSnapshotRoundTrip pins the snapshot contract: a rebuilt
// classifier posts identical posteriors, the snapshot itself is
// deterministic, and derived state (vocabulary, totals) is recovered.
func TestNaiveBayesSnapshotRoundTrip(t *testing.T) {
	nb := NewNaiveBayes(0.5)
	nb.Train("hard-drives", []string{"hdd", "sata", "rpm", "rpm"})
	nb.Train("hard-drives", []string{"gb", "sata"})
	nb.Train("cameras", []string{"mp", "zoom", "lens"})
	nb.Train("kitchen", []string{"watt", "steel"})

	snap := nb.Snapshot()
	if len(snap.Classes) != 3 || snap.Classes[0].Name != "cameras" {
		t.Fatalf("snapshot classes = %+v (want 3, sorted)", snap.Classes)
	}
	rebuilt := NaiveBayesFromSnapshot(snap)

	if got, want := rebuilt.Classes(), nb.Classes(); len(got) != len(want) {
		t.Fatalf("classes %v vs %v", got, want)
	}
	for _, toks := range [][]string{
		{"sata", "gb"}, {"zoom"}, {"watt", "steel", "unknown"}, {},
	} {
		c1, p1 := nb.Classify(toks)
		c2, p2 := rebuilt.Classify(toks)
		if c1 != c2 || p1 != p2 {
			t.Errorf("tokens %v: original (%q, %v) vs rebuilt (%q, %v)", toks, c1, p1, c2, p2)
		}
		for _, class := range nb.Classes() {
			if lp1, lp2 := nb.LogPosterior(class, toks), rebuilt.LogPosterior(class, toks); lp1 != lp2 {
				t.Errorf("LogPosterior(%q, %v): %v vs %v", class, toks, lp1, lp2)
			}
		}
	}

	// Determinism: snapshotting the rebuilt classifier reproduces the
	// snapshot exactly.
	again := rebuilt.Snapshot()
	if len(again.Classes) != len(snap.Classes) {
		t.Fatalf("re-snapshot has %d classes, want %d", len(again.Classes), len(snap.Classes))
	}
	for i := range snap.Classes {
		a, b := snap.Classes[i], again.Classes[i]
		if a.Name != b.Name || a.Docs != b.Docs || len(a.Tokens) != len(b.Tokens) {
			t.Fatalf("class %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Tokens {
			if a.Tokens[j] != b.Tokens[j] {
				t.Errorf("class %s token %d: %+v vs %+v", a.Name, j, a.Tokens[j], b.Tokens[j])
			}
		}
	}

	// Uniform priors survive the round trip too.
	nb.SetUniformPriors()
	uniform := NaiveBayesFromSnapshot(nb.Snapshot())
	if lp1, lp2 := nb.LogPosterior("cameras", []string{"zoom"}), uniform.LogPosterior("cameras", []string{"zoom"}); lp1 != lp2 {
		t.Errorf("uniform-prior LogPosterior: %v vs %v", lp1, lp2)
	}
}
