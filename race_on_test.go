//go:build race

package prodsynth

const raceEnabled = true
