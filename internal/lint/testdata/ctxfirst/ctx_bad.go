package stream

import (
	"context"
	"os"
)

// Run is the pre-fix shape: spawns the pipeline goroutine with no way for
// the caller to cancel it.
func Run(waves int) error { // want "spawns goroutines but does not take context.Context"
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	return nil
}

// Drain blocks on a channel receive.
func Drain(ch chan int) int { // want "blocks on channel operations but does not take context.Context"
	return <-ch
}

// Snapshot performs direct file I/O.
func Snapshot(path string) error { // want "performs I/O"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	return f.Close()
}

func detach() context.Context {
	return context.Background() // want "context.Background in library package"
}
