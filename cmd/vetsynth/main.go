// Command vetsynth is prodsynth's repo-specific static analyzer suite:
// it machine-checks the invariants the codebase accumulated PR over PR —
// injectable clocks, context-first entry points, I/O-free shard critical
// sections, %w-wrapped sentinels, compat-shim deprecation markers, and
// join-guarded goroutines.
//
// Usage:
//
//	vetsynth [-list] [-only name,name] [module-dir | ./...]
//
// With no arguments it analyzes the module containing the current
// directory ("./..." is accepted as an alias for the same thing, so the
// CI invocation reads like go vet). Exit status is 1 when any
// unsuppressed diagnostic is reported, 2 on usage or load errors.
//
// Findings that are justified exceptions are suppressed in the source
// with a reasoned annotation on (or immediately above) the offending
// line:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prodsynth/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vetsynth [-list] [-only name,name] [module-dir | ./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "vetsynth: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = selected
	}

	dir := "."
	if args := flag.Args(); len(args) > 1 {
		flag.Usage()
		os.Exit(2)
	} else if len(args) == 1 && args[0] != "./..." && args[0] != "..." {
		dir = strings.TrimSuffix(args[0], "/...")
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetsynth: %v\n", err)
		os.Exit(2)
	}

	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vetsynth: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vetsynth: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
