package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"prodsynth/internal/cluster"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/synth"
)

func dataset(t *testing.T) *synth.Dataset {
	t.Helper()
	return synth.Generate(synth.Config{
		Seed:                11,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 25,
		Merchants:           24,
	})
}

func TestMapFetcher(t *testing.T) {
	f := MapFetcher{"u": "page"}
	if got, err := f.Fetch("u"); err != nil || got != "page" {
		t.Errorf("Fetch = %q, %v", got, err)
	}
	if _, err := f.Fetch("missing"); !errors.Is(err, ErrPageNotFound) {
		t.Errorf("err = %v", err)
	}
}

// TestMapFetcherFromDocs pins the duplicate-URL rule: a URL repeated with
// a conflicting body is rejected (previously page lists degraded to the
// map's silent last-wins), while exact repeats remain legal.
func TestMapFetcherFromDocs(t *testing.T) {
	f, err := MapFetcherFromDocs([]PageDoc{
		{URL: "a", HTML: "<p>1</p>"},
		{URL: "b", HTML: "<p>2</p>"},
		{URL: "a", HTML: "<p>1</p>"}, // idempotent repeat
	})
	if err != nil {
		t.Fatalf("MapFetcherFromDocs = %v, want nil", err)
	}
	if got, err := f.Fetch("a"); err != nil || got != "<p>1</p>" {
		t.Errorf("Fetch(a) = %q, %v", got, err)
	}
	if len(f) != 2 {
		t.Errorf("fetcher holds %d pages, want 2", len(f))
	}

	_, err = MapFetcherFromDocs([]PageDoc{
		{URL: "a", HTML: "<p>1</p>"},
		{URL: "a", HTML: "<p>other</p>"},
	})
	if !errors.Is(err, ErrDuplicatePage) {
		t.Fatalf("conflicting duplicate: err = %v, want ErrDuplicatePage", err)
	}
	if err != nil && !strings.Contains(err.Error(), `"a"`) {
		t.Errorf("error %q does not quote the offending URL", err)
	}
}

func TestOfflinePhase(t *testing.T) {
	ds := dataset(t)
	off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages), Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := off.Stats
	if st.HistoricalOffers != len(ds.HistoricalOffers) {
		t.Errorf("HistoricalOffers = %d", st.HistoricalOffers)
	}
	if st.MatchedOffers == 0 || st.MatchedOffers > st.HistoricalOffers {
		t.Errorf("MatchedOffers = %d of %d", st.MatchedOffers, st.HistoricalOffers)
	}
	if st.Candidates == 0 || st.TrainingSize == 0 || st.TrainingPositives == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.TrainingPositives >= st.TrainingSize {
		t.Errorf("positives %d should be < training size %d", st.TrainingPositives, st.TrainingSize)
	}
	if st.Correspondences == 0 {
		t.Error("no correspondences selected")
	}

	// Quality gate: selected non-identity correspondences should be
	// mostly correct against ground truth.
	correct, wrong := 0, 0
	for _, sc := range off.Correspondences.All() {
		if sc.NameIdentity() {
			continue
		}
		if ds.Truth.IsCorrespondence(sc.Key, sc.CatalogAttr, sc.MerchantAttr) {
			correct++
		} else {
			wrong++
		}
	}
	if correct == 0 {
		t.Fatal("no correct renamed correspondences found")
	}
	prec := float64(correct) / float64(correct+wrong)
	if prec < 0.7 {
		t.Errorf("non-identity correspondence precision = %.3f (%d/%d)", prec, correct, correct+wrong)
	}
}

func TestOfflineNoMatchesError(t *testing.T) {
	ds := dataset(t)
	cfg := Config{Matcher: match.Matcher{DisableTitleMatching: true}}
	// Strip the UPC pairs so identifier matching fails too.
	stripped := make([]offer.Offer, len(ds.HistoricalOffers))
	for i, o := range ds.HistoricalOffers {
		c := o.Clone()
		c.Spec = nil
		stripped[i] = c
	}
	// Without pages there are no specs at all -> no matches.
	_, err := RunOffline(context.Background(), ds.Catalog, stripped, nil, cfg)
	if err == nil {
		t.Fatal("expected error with no matches")
	}
}

func TestEndToEndSynthesis(t *testing.T) {
	ds := dataset(t)
	fetcher := MapFetcher(ds.Pages)
	off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunRuntime(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Products) == 0 {
		t.Fatal("no products synthesized")
	}
	// Clusters should correspond ~1:1 to missing products (§4). A small
	// amount of fragmentation is inherent to key-based clustering: when
	// one merchant's offers expose only the MPN and another's only the
	// UPC, no shared offer bridges the two keys.
	seen := make(map[string]bool)
	resolved, fragmented := 0, 0
	for _, p := range run.Products {
		pid := ds.Truth.ProductByKey[p.Key]
		if pid == "" {
			continue
		}
		resolved++
		if seen[pid] {
			fragmented++
		}
		seen[pid] = true
		if !ds.Truth.Missing[pid] {
			t.Errorf("synthesized product %s already in catalog", pid)
		}
	}
	if fragmented > len(seen)/10 {
		t.Errorf("fragmentation too high: %d duplicate clusters over %d products", fragmented, len(seen))
	}
	if resolved < len(run.Products)*9/10 {
		t.Errorf("only %d/%d products resolve to universe keys", resolved, len(run.Products))
	}
	// Spot-check quality: most attribute pairs should match truth.
	pairs, correctPairs := 0, 0
	for _, p := range run.Products {
		pid := ds.Truth.ProductByKey[p.Key]
		if pid == "" {
			continue
		}
		trueProd := ds.Universe[pid]
		for _, av := range p.Spec {
			pairs++
			if tv, ok := trueProd.Spec.Get(av.Name); ok && tokensOverlap(av.Value, tv) {
				correctPairs++
			}
		}
	}
	if pairs == 0 || float64(correctPairs)/float64(pairs) < 0.8 {
		t.Errorf("attribute agreement = %d/%d", correctPairs, pairs)
	}
	if run.Reconcile.PairsDropped == 0 {
		t.Error("expected noise pairs to be dropped by reconciliation")
	}
}

func tokensOverlap(a, b string) bool {
	am := make(map[string]bool)
	for _, t := range tokenize(a) {
		am[t] = true
	}
	for _, t := range tokenize(b) {
		if am[t] {
			return true
		}
	}
	return false
}

func tokenize(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			cur += string(r)
		} else if cur != "" {
			out = append(out, cur)
			cur = ""
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestRuntimeExcludesMatchedIncoming(t *testing.T) {
	ds := dataset(t)
	fetcher := MapFetcher(ds.Pages)
	off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Feed historical offers (which match catalog products) through the
	// runtime: they should be excluded.
	run, err := RunRuntime(context.Background(), ds.Catalog, off, ds.HistoricalOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if run.ExcludedMatched == 0 {
		t.Error("no incoming offers excluded despite matching catalog products")
	}
	// With the filter disabled they flow through.
	run2, err := RunRuntime(context.Background(), ds.Catalog, off, ds.HistoricalOffers, fetcher, Config{KeepMatchedIncoming: true})
	if err != nil {
		t.Fatal(err)
	}
	if run2.ExcludedMatched != 0 {
		t.Errorf("ExcludedMatched = %d with filter disabled", run2.ExcludedMatched)
	}
	if len(run2.Products) <= len(run.Products) {
		t.Errorf("unfiltered run should synthesize more clusters: %d vs %d",
			len(run2.Products), len(run.Products))
	}
}

// TestPrepareIncomingComposesToRunRuntime pins the stage refactor: the
// incremental front half plus global clustering plus fusion must equal
// the whole-run RunRuntime exactly — and the front half of a subset of
// offers is the corresponding subset of the whole-run front half, the
// property the streaming pipeline is built on.
func TestPrepareIncomingComposesToRunRuntime(t *testing.T) {
	ds := dataset(t)
	fetcher := MapFetcher(ds.Pages)
	off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunRuntime(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prep, err := PrepareIncoming(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Reconcile != run.Reconcile || prep.ExcludedMatched != run.ExcludedMatched {
		t.Errorf("front-half stats %+v/%d, want %+v/%d",
			prep.Reconcile, prep.ExcludedMatched, run.Reconcile, run.ExcludedMatched)
	}
	clusters, skipped := cluster.Group(prep.Kept, cluster.Options{})
	if len(skipped) != len(run.SkippedNoKey) {
		t.Errorf("skipped %d, want %d", len(skipped), len(run.SkippedNoKey))
	}
	products, err := FuseClusters(context.Background(), clusters, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(products) != len(run.Products) {
		t.Fatalf("%d products, want %d", len(products), len(run.Products))
	}
	for i := range products {
		got := products[i].CategoryID + "/" + products[i].Key + "/" + products[i].Spec.String()
		want := run.Products[i].CategoryID + "/" + run.Products[i].Key + "/" + run.Products[i].Spec.String()
		if got != want {
			t.Errorf("product %d: %s, want %s", i, got, want)
		}
	}

	// Subset property: preparing half the offers yields the matching
	// subset of the whole run's kept offers.
	half := ds.IncomingOffers[:len(ds.IncomingOffers)/2]
	sub, err := PrepareIncoming(context.Background(), ds.Catalog, off, half, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wholeKept := make(map[string]string, len(prep.Kept))
	for _, o := range prep.Kept {
		wholeKept[o.ID] = o.Spec.String()
	}
	for _, o := range sub.Kept {
		if spec, ok := wholeKept[o.ID]; !ok || spec != o.Spec.String() {
			t.Errorf("subset kept offer %s disagrees with whole run", o.ID)
		}
	}
}

// TestStrictPages pins the per-batch failure path: with StrictPages a
// missing landing page fails the run deterministically; without, the
// offer keeps its feed spec and the run succeeds.
func TestStrictPages(t *testing.T) {
	ds := dataset(t)
	fetcher := MapFetcher(ds.Pages)
	off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := ds.IncomingOffers[0].Clone()
	bad.ID = "bad"
	bad.URL = "missing://nowhere"
	incoming := append([]offer.Offer{bad}, ds.IncomingOffers[1:]...)

	lenient, err := RunRuntime(context.Background(), ds.Catalog, off, incoming, fetcher, Config{})
	if err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
	// Lenient degradation is accounted, not silent: the bad offer shows
	// up in the run's fetch report.
	if got := lenient.Fetch.FeedOnly; len(got) != 1 || got[0] != "bad" {
		t.Errorf("lenient FeedOnly = %v, want [bad]", got)
	}
	if lenient.Fetch.GaveUp != 1 {
		t.Errorf("lenient GaveUp = %d, want 1", lenient.Fetch.GaveUp)
	}
	_, err = RunRuntime(context.Background(), ds.Catalog, off, incoming, fetcher, Config{StrictPages: true})
	if err == nil {
		t.Fatal("strict run tolerated a missing page")
	}
	if !errors.Is(err, ErrPageNotFound) {
		t.Errorf("err = %v, want wrapped ErrPageNotFound", err)
	}
	// The error names the URL it could not fetch.
	if !strings.Contains(err.Error(), `"missing://nowhere"`) {
		t.Errorf("strict error %q does not name the URL", err)
	}

	// The flag applies symmetrically to the offline phase: a crawl gap
	// in the historical corpus is tolerated (and accounted) by default
	// and fails Learn under StrictPages.
	badHist := ds.HistoricalOffers[0].Clone()
	badHist.ID = "bad-hist"
	badHist.URL = "missing://nowhere"
	historical := append([]offer.Offer{badHist}, ds.HistoricalOffers[1:]...)
	offBad, err := RunOffline(context.Background(), ds.Catalog, historical, fetcher, Config{})
	if err != nil {
		t.Fatalf("lenient offline phase failed: %v", err)
	}
	if got := offBad.Fetch.FeedOnly; len(got) != 1 || got[0] != "bad-hist" {
		t.Errorf("offline FeedOnly = %v, want [bad-hist]", got)
	}
	if _, err := RunOffline(context.Background(), ds.Catalog, historical, fetcher, Config{StrictPages: true}); err == nil {
		t.Error("offline phase tolerated a missing page under StrictPages")
	}
}

func TestRuntimeRequiresOffline(t *testing.T) {
	ds := dataset(t)
	if _, err := RunRuntime(context.Background(), ds.Catalog, nil, ds.IncomingOffers, nil, Config{}); err == nil {
		t.Fatal("expected error without offline result")
	}
}

// TestPipelineWorkerCountInvariance asserts that the per-category fan-out
// produces identical offline matches and identical synthesized products
// for every worker count.
func TestPipelineWorkerCountInvariance(t *testing.T) {
	ds := dataset(t)
	fetcher := MapFetcher(ds.Pages)

	type snapshot struct {
		matches  []match.Match
		products []string
		stats    OfflineStats
	}
	run := func(workers int) snapshot {
		cfg := Config{Workers: workers}
		off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RunRuntime(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, cfg)
		if err != nil {
			t.Fatal(err)
		}
		products := make([]string, len(rt.Products))
		for i, p := range rt.Products {
			products[i] = p.CategoryID + "/" + p.Key + "/" + p.Spec.String()
		}
		return snapshot{matches: off.Matches.All(), products: products, stats: off.Stats}
	}

	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.stats != base.stats {
			t.Errorf("Workers=%d: stats %+v, want %+v", w, got.stats, base.stats)
		}
		if len(got.matches) != len(base.matches) {
			t.Fatalf("Workers=%d: %d matches, want %d", w, len(got.matches), len(base.matches))
		}
		for i := range base.matches {
			if got.matches[i] != base.matches[i] {
				t.Fatalf("Workers=%d: match %d = %+v, want %+v", w, i, got.matches[i], base.matches[i])
			}
		}
		if len(got.products) != len(base.products) {
			t.Fatalf("Workers=%d: %d products, want %d", w, len(got.products), len(base.products))
		}
		for i := range base.products {
			if got.products[i] != base.products[i] {
				t.Fatalf("Workers=%d: product %d differs:\n  got  %s\n  want %s", w, i, got.products[i], base.products[i])
			}
		}
	}
}

func TestRunLimited(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {10, 1}, {10, 4}, {10, 100}, {100, 0},
	} {
		hits := make([]int32, tc.n)
		if err := runLimited(context.Background(), tc.n, tc.workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("n=%d workers=%d: err = %v", tc.n, tc.workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Errorf("n=%d workers=%d: job %d ran %d times", tc.n, tc.workers, i, h)
			}
		}
	}
}

// TestRunLimitedCancelled pins the pool's cancellation contract: a
// cancelled context stops workers from pulling new jobs, the call returns
// ctx.Err(), and jobs never run after return (the pool is joined).
func TestRunLimitedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := runLimited(ctx, 100, 4, func(i int) { atomic.AddInt32(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers check ctx before each pull, so an already-cancelled pool
	// runs nothing (serial path) or at most a handful of in-flight jobs.
	if n := atomic.LoadInt32(&ran); n == 100 {
		t.Errorf("all %d jobs ran despite pre-cancelled ctx", n)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	ds := dataset(t)
	fetcher := MapFetcher(ds.Pages)
	run := func() ([]string, int) {
		off, err := RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, Config{})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := RunRuntime(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, Config{})
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(rt.Products))
		for i, p := range rt.Products {
			keys[i] = p.CategoryID + "/" + p.Key
		}
		return keys, rt.Reconcile.PairsMapped
	}
	k1, m1 := run()
	k2, m2 := run()
	if m1 != m2 || len(k1) != len(k2) {
		t.Fatalf("runs differ: %d/%d products, %d/%d mapped", len(k1), len(k2), m1, m2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("product order differs at %d: %s vs %s", i, k1[i], k2[i])
		}
	}
}
