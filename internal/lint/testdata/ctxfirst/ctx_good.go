package stream

import "context"

// RunContext takes the context first: no finding.
func RunContext(ctx context.Context, waves int) error {
	done := make(chan struct{})
	go func() { close(done) }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// pump is unexported: the ctx-first rule covers only the exported
// surface.
func pump(ch chan int) int { return <-ch }
