// Package dataset persists a marketplace to disk and loads it back, so the
// command-line tools can separate data generation (cmd/datagen) from
// pipeline execution (cmd/synthesize). The on-disk layout is:
//
//	<dir>/catalog.json        categories + catalog products
//	<dir>/historical.tsv      historical offer feed (offer.WriteFeed format)
//	<dir>/incoming.tsv        incoming offer feed
//	<dir>/pages.jsonl         one {"url":..., "html":...} per line
//	<dir>/truth.json          generator ground truth (optional; evaluation)
//
// All files are plain text so datasets can be inspected, diffed, and
// hand-edited.
package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/offer"
	"prodsynth/internal/synth"
)

// File names within a dataset directory.
const (
	CatalogFile    = "catalog.json"
	HistoricalFile = "historical.tsv"
	IncomingFile   = "incoming.tsv"
	PagesFile      = "pages.jsonl"
	TruthFile      = "truth.json"
)

// jsonCatalog is the serialized catalog.
type jsonCatalog struct {
	Categories []jsonCategory `json:"categories"`
	Products   []jsonProduct  `json:"products"`
}

type jsonCategory struct {
	ID       string          `json:"id"`
	Name     string          `json:"name"`
	TopLevel string          `json:"top_level"`
	Schema   []jsonAttribute `json:"schema"`
}

type jsonAttribute struct {
	Name string `json:"name"`
	Kind int    `json:"kind"`
	Unit string `json:"unit,omitempty"`
}

type jsonProduct struct {
	ID         string     `json:"id"`
	CategoryID string     `json:"category_id"`
	Spec       []jsonPair `json:"spec"`
}

type jsonPair struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type jsonPage struct {
	URL  string `json:"url"`
	HTML string `json:"html"`
}

// jsonTruth is the serialized ground truth.
type jsonTruth struct {
	Correspondences []jsonCorrespondence  `json:"correspondences"`
	OfferProduct    map[string]string     `json:"offer_product"`
	Missing         []string              `json:"missing"`
	PageAttrs       map[string][]string   `json:"page_attrs"`
	ProductByKey    map[string]string     `json:"product_by_key"`
	Universe        map[string][]jsonPair `json:"universe"`
	UniverseCats    map[string]string     `json:"universe_categories"`
}

type jsonCorrespondence struct {
	Merchant     string `json:"merchant"`
	CategoryID   string `json:"category_id"`
	MerchantAttr string `json:"merchant_attr"`
	CatalogAttr  string `json:"catalog_attr"`
}

// Save writes the marketplace to dir, creating it if needed. When
// includeTruth is false the ground truth is omitted (the shape a production
// dataset would have).
func Save(ds *synth.Dataset, dir string, includeTruth bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := saveCatalog(ds, filepath.Join(dir, CatalogFile)); err != nil {
		return err
	}
	if err := saveFeed(ds.HistoricalOffers, filepath.Join(dir, HistoricalFile)); err != nil {
		return err
	}
	if err := saveFeed(ds.IncomingOffers, filepath.Join(dir, IncomingFile)); err != nil {
		return err
	}
	if err := savePages(ds.Pages, filepath.Join(dir, PagesFile)); err != nil {
		return err
	}
	if includeTruth {
		if err := saveTruth(ds, filepath.Join(dir, TruthFile)); err != nil {
			return err
		}
	}
	return nil
}

func saveCatalog(ds *synth.Dataset, path string) error {
	var jc jsonCatalog
	for _, cat := range ds.Catalog.Categories() {
		c := jsonCategory{ID: cat.ID, Name: cat.Name, TopLevel: cat.TopLevel}
		for _, a := range cat.Schema.Attributes {
			c.Schema = append(c.Schema, jsonAttribute{Name: a.Name, Kind: int(a.Kind), Unit: a.Unit})
		}
		jc.Categories = append(jc.Categories, c)
		for _, p := range ds.Catalog.ProductsInCategory(cat.ID) {
			jc.Products = append(jc.Products, jsonProduct{
				ID: p.ID, CategoryID: p.CategoryID, Spec: toPairs(p.Spec),
			})
		}
	}
	return writeJSON(path, jc)
}

func toPairs(spec catalog.Spec) []jsonPair {
	out := make([]jsonPair, len(spec))
	for i, av := range spec {
		out[i] = jsonPair{Name: av.Name, Value: av.Value}
	}
	return out
}

func fromPairs(pairs []jsonPair) catalog.Spec {
	out := make(catalog.Spec, len(pairs))
	for i, p := range pairs {
		out[i] = catalog.AttributeValue{Name: p.Name, Value: p.Value}
	}
	return out
}

func saveFeed(offers []offer.Offer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if err := offer.WriteFeed(f, offers); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	return f.Close()
}

func savePages(pages map[string]string, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	urls := make([]string, 0, len(pages))
	for url := range pages {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		if err := enc.Encode(jsonPage{URL: url, HTML: pages[url]}); err != nil {
			return fmt.Errorf("dataset: writing pages: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func saveTruth(ds *synth.Dataset, path string) error {
	jt := jsonTruth{
		OfferProduct: ds.Truth.OfferProduct,
		PageAttrs:    ds.Truth.PageAttrs,
		ProductByKey: ds.Truth.ProductByKey,
		Universe:     make(map[string][]jsonPair, len(ds.Universe)),
		UniverseCats: make(map[string]string, len(ds.Universe)),
	}
	for key, corr := range ds.Truth.Correspondences {
		for mAttr, cAttr := range corr {
			jt.Correspondences = append(jt.Correspondences, jsonCorrespondence{
				Merchant: key.Merchant, CategoryID: key.CategoryID,
				MerchantAttr: mAttr, CatalogAttr: cAttr,
			})
		}
	}
	sort.Slice(jt.Correspondences, func(i, j int) bool {
		a, b := jt.Correspondences[i], jt.Correspondences[j]
		if a.Merchant != b.Merchant {
			return a.Merchant < b.Merchant
		}
		if a.CategoryID != b.CategoryID {
			return a.CategoryID < b.CategoryID
		}
		return a.MerchantAttr < b.MerchantAttr
	})
	for pid := range ds.Truth.Missing {
		jt.Missing = append(jt.Missing, pid)
	}
	sort.Strings(jt.Missing)
	for pid, p := range ds.Universe {
		jt.Universe[pid] = toPairs(p.Spec)
		jt.UniverseCats[pid] = p.CategoryID
	}
	return writeJSON(path, jt)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("dataset: encoding %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a dataset directory back into memory. The ground truth is
// loaded when present; ds.Truth is nil otherwise.
func Load(dir string) (*synth.Dataset, error) {
	ds, err := LoadWorkload(dir)
	if err != nil {
		return nil, err
	}
	if err := loadCatalog(ds, filepath.Join(dir, CatalogFile)); err != nil {
		return nil, err
	}
	return ds, nil
}

// LoadWorkload reads everything except the catalog: the offer feeds, the
// landing pages, and the ground truth. ds.Catalog is left empty — the
// path for consumers whose catalog arrives from elsewhere (a catalog or
// bundle snapshot), where re-ingesting the dataset's copy would be pure
// waste.
func LoadWorkload(dir string) (*synth.Dataset, error) {
	ds := &synth.Dataset{
		Catalog:  catalog.NewStore(),
		Universe: make(map[string]catalog.Product),
		Pages:    make(map[string]string),
	}
	var err error
	if ds.HistoricalOffers, err = loadFeed(filepath.Join(dir, HistoricalFile)); err != nil {
		return nil, err
	}
	if ds.IncomingOffers, err = loadFeed(filepath.Join(dir, IncomingFile)); err != nil {
		return nil, err
	}
	if err := loadPages(ds, filepath.Join(dir, PagesFile)); err != nil {
		return nil, err
	}
	if err := loadTruth(ds, filepath.Join(dir, TruthFile)); err != nil {
		return nil, err
	}
	return ds, nil
}

func loadCatalog(ds *synth.Dataset, path string) error {
	var jc jsonCatalog
	if err := readJSON(path, &jc); err != nil {
		return err
	}
	for _, c := range jc.Categories {
		cat := catalog.Category{ID: c.ID, Name: c.Name, TopLevel: c.TopLevel}
		for _, a := range c.Schema {
			cat.Schema.Attributes = append(cat.Schema.Attributes, catalog.Attribute{
				Name: a.Name, Kind: catalog.AttributeKind(a.Kind), Unit: a.Unit,
			})
		}
		if err := ds.Catalog.AddCategory(cat); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		ds.Categories = append(ds.Categories, cat)
	}
	for _, p := range jc.Products {
		prod := catalog.Product{ID: p.ID, CategoryID: p.CategoryID, Spec: fromPairs(p.Spec)}
		if err := ds.Catalog.AddProduct(prod); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	return nil
}

func loadFeed(path string) ([]offer.Offer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	offers, err := offer.ReadFeed(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", path, err)
	}
	return offers, nil
}

func loadPages(ds *synth.Dataset, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var p jsonPage
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			return fmt.Errorf("dataset: %s line %d: %w", path, line, err)
		}
		// Same conflict rule as core.MapFetcherFromDocs: a repeated URL
		// with a different body is a corrupt dataset, not a quiet
		// last-wins overwrite.
		if prev, ok := ds.Pages[p.URL]; ok && prev != p.HTML {
			return fmt.Errorf("dataset: %s line %d: %w: %q", path, line, core.ErrDuplicatePage, p.URL)
		}
		ds.Pages[p.URL] = p.HTML
	}
	return sc.Err()
}

func loadTruth(ds *synth.Dataset, path string) error {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return nil
	}
	var jt jsonTruth
	if err := readJSON(path, &jt); err != nil {
		return err
	}
	truth := &synth.Truth{
		Correspondences: make(map[offer.SchemaKey]map[string]string),
		OfferProduct:    jt.OfferProduct,
		Missing:         make(map[string]bool, len(jt.Missing)),
		PageAttrs:       jt.PageAttrs,
		ProductByKey:    jt.ProductByKey,
	}
	for _, c := range jt.Correspondences {
		key := offer.SchemaKey{Merchant: c.Merchant, CategoryID: c.CategoryID}
		m := truth.Correspondences[key]
		if m == nil {
			m = make(map[string]string)
			truth.Correspondences[key] = m
		}
		m[c.MerchantAttr] = c.CatalogAttr
	}
	for _, pid := range jt.Missing {
		truth.Missing[pid] = true
	}
	for pid, pairs := range jt.Universe {
		ds.Universe[pid] = catalog.Product{
			ID: pid, CategoryID: jt.UniverseCats[pid], Spec: fromPairs(pairs),
		}
	}
	ds.Truth = truth
	return nil
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("dataset: decoding %s: %w", path, err)
	}
	return nil
}
