// Pull-based pipeline stages. The runtime pipeline's per-offer front half
// and per-cluster fusion are expressed as composable pipe.Stage values,
// so the one-shot entry points (RunRuntime, and PrepareIncoming /
// FuseClusters which it composes) and the streaming pipeline
// (internal/stream) execute the exact same stage bodies — the one-shot
// path drains a one-wave pipeline to slices, the stream pipelines waves
// through the same stages continuously. Each stage owns its scratch:
// nothing is materialized at wave size except where the algorithm itself
// needs the whole wave (the per-category partition and the global
// clustering step).
//
// Stage map (runtime phase, Figure 4 right half):
//
//	offers ── Classify ── Extract ── [gather] ── Match+Reconcile ──► Prepared
//	                (per offer)        (per category, ordered merge)
//	clusters ── Fuse ──► products   (per cluster, ordered)
package core

import (
	"context"
	"fmt"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/extract"
	"prodsynth/internal/fetch"
	"prodsynth/internal/fusion"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/pipe"
	"prodsynth/internal/reconcile"
)

// ClassifyStage is the category classification stage: offers that lack a
// CategoryID get one from the offline classifier. Offers flow by value,
// so assignment never mutates the caller's slice — and when no classifier
// was learned (every incoming offer carries a feed category) the stage is
// a pass-through that copies nothing at all.
func ClassifyStage(offline *OfflineResult) pipe.Stage[offer.Offer, offer.Offer] {
	classifier := offline.Classifier
	if classifier == nil {
		return func(src pipe.Source[offer.Offer]) pipe.Source[offer.Offer] { return src }
	}
	return pipe.Map(func(_ context.Context, o offer.Offer) (offer.Offer, error) {
		if o.CategoryID == "" {
			if cat, _ := classifier.Classify(o.Title); cat != "" {
				o.CategoryID = cat
			}
		}
		return o, nil
	})
}

// ExtractStage is the web-page attribute extraction stage: each offer's
// landing page is fetched and extracted pairs are merged into the offer
// spec (feed pairs win on name conflict). Fetches fan out across
// cfg.Workers goroutines; results are delivered in input order, so output
// is identical for every worker count. A failed fetch keeps the feed spec
// unless cfg.StrictPages is set, in which case the first failure in input
// order ends the stage with a deterministic error.
//
// The stage context reaches each fetch: a context-aware fetcher
// (fetch.ContextPages, e.g. fetch.Resilient) observes pipeline
// cancellation and stage teardown mid-fetch — mid-retry, mid-backoff —
// instead of being abandoned; a plain PageFetcher is checked before the
// call and allowed to finish once started.
func ExtractStage(pages PageFetcher, cfg Config) pipe.Stage[offer.Offer, offer.Offer] {
	return extractStage(pages, cfg, nil)
}

// extractStage is ExtractStage plus the run-scoped degradation tally the
// result's fetch report is built from (nil: no accounting).
func extractStage(pages PageFetcher, cfg Config, tally *fetchTally) pipe.Stage[offer.Offer, offer.Offer] {
	return pipe.ParMap(cfg.Workers, func(ctx context.Context, o offer.Offer) (offer.Offer, error) {
		return extractOne(ctx, o, pages, cfg, tally)
	})
}

// extractOne is the per-offer extraction body shared by ExtractStage and
// the offline phase's extractSpecs.
func extractOne(ctx context.Context, o offer.Offer, pages PageFetcher, cfg Config, tally *fetchTally) (offer.Offer, error) {
	o = o.Clone()
	if pages == nil {
		return o, nil
	}
	tally.attempt()
	page, err := fetch.Call(ctx, pages, o.URL)
	if err != nil {
		if cfg.StrictPages {
			return offer.Offer{}, fmt.Errorf("core: strict pages: offer %s: %w", o.ID, err)
		}
		tally.degraded(o.ID)
		return o, nil
	}
	extracted := extract.WithOptions(page, cfg.Extraction)
	have := make(map[string]bool, len(o.Spec))
	for _, av := range o.Spec {
		have[av.Name] = true
	}
	for _, av := range extracted {
		if !have[av.Name] {
			o.Spec = append(o.Spec, av)
		}
	}
	return o, nil
}

// partPrepared is one category's match-exclusion + reconciliation result.
type partPrepared struct {
	keptIdx  []int // global indices of the survivors, ascending
	kept     []offer.Offer
	excluded int
	stats    reconcile.Stats
}

// matchReconcile is the per-category back half of offer preparation:
// matching (to exclude offers describing products the catalog already
// has, §1) and schema reconciliation fan out across the worker pool, one
// task per category, and the per-category survivors are merged back in
// global input order — output independent of Workers.
func matchReconcile(ctx context.Context, store *catalog.Store, offline *OfflineResult, enriched []offer.Offer, cfg Config) (*Prepared, error) {
	parts := partitionByCategory(enriched)
	matcher := categoryMatcher(cfg, len(parts))

	stage := pipe.ParMap(cfg.Workers, func(_ context.Context, part categorySlice) (partPrepared, error) {
		sub := make([]offer.Offer, len(part.indices))
		for j, gi := range part.indices {
			sub[j] = enriched[gi]
		}
		var matches *match.MatchSet
		if !cfg.KeepMatchedIncoming {
			matches = matcher.Run(store, offer.NewSet(sub))
		}
		pr := partPrepared{keptIdx: make([]int, 0, len(part.indices))}
		kept := sub[:0]
		for j, gi := range part.indices {
			if matches != nil {
				if _, ok := matches.ProductFor(sub[j].ID); ok {
					pr.excluded++
					continue
				}
			}
			kept = append(kept, sub[j])
			pr.keptIdx = append(pr.keptIdx, gi)
		}
		pr.kept, pr.stats = reconcile.Offers(kept, offline.Correspondences)
		return pr, nil
	})
	results, err := pipe.Collect(ctx, stage(pipe.FromSlice(parts)))
	if err != nil {
		return nil, err
	}

	// Ordered merge: per-category survivor sets are disjoint index sets,
	// so walking the global input order reassembles exactly the sequence
	// a serial run over the whole wave would keep.
	prep := &Prepared{}
	keep := make([]bool, len(enriched))
	reconciled := make([]offer.Offer, len(enriched))
	for _, pr := range results {
		prep.ExcludedMatched += pr.excluded
		prep.Reconcile.Add(pr.stats)
		for j, gi := range pr.keptIdx {
			reconciled[gi] = pr.kept[j]
			keep[gi] = true
		}
	}
	kept := make([]offer.Offer, 0, len(enriched))
	for i := range enriched {
		if keep[i] {
			kept = append(kept, reconciled[i])
		}
	}
	prep.Kept = kept
	return prep, nil
}

// FuseStage is the value fusion stage: one cluster in, one synthesized
// product out. Fusion fans out across cfg.Workers goroutines with results
// in cluster order; fusion is a pure function of each cluster's member
// offers, so re-fusing an extended cluster yields exactly what fusing it
// whole would have (the streaming pipeline's contract).
func FuseStage(cfg Config) pipe.Stage[cluster.Cluster, fusion.Synthesized] {
	cfg = cfg.withDefaults()
	return pipe.ParMap(cfg.Workers, func(_ context.Context, cl cluster.Cluster) (fusion.Synthesized, error) {
		return fusion.SynthesizeOne(cl, cfg.Fusion), nil
	})
}
