package correspond

import (
	"fmt"
	"sort"

	"prodsynth/internal/ml"
)

// Model is the trained attribute-correspondence classifier.
type Model struct {
	LR *ml.Logistic
	// TrainingSize and TrainingPositives record the §5.1-style statistics
	// of the automatically built training set.
	TrainingSize      int
	TrainingPositives int
}

// TrainOptions configures classifier training.
type TrainOptions struct {
	// Logistic overrides the SGD configuration; zero value uses defaults
	// with class weighting on (the auto-labeled set is imbalanced).
	Logistic ml.LogisticConfig
}

// Train builds the training set from the feature table and fits the
// logistic regression classifier.
func Train(ft *FeatureTable, opts TrainOptions) (*Model, error) {
	ts := BuildTrainingSet(ft)
	if len(ts.Examples) == 0 {
		return nil, fmt.Errorf("correspond: no name-identity candidates to train on: %w", ml.ErrNoTrainingData)
	}
	cfg := opts.Logistic
	if !cfg.ClassWeighting {
		cfg.ClassWeighting = true
	}
	lr, err := ml.TrainLogistic(ts.Examples, cfg)
	if err != nil {
		return nil, fmt.Errorf("correspond: training classifier: %w", err)
	}
	return &Model{
		LR:                lr,
		TrainingSize:      len(ts.Examples),
		TrainingPositives: ts.Positives,
	}, nil
}

// ScoreAll scores every candidate in the table with the classifier,
// returning results sorted by descending score (ties broken by candidate
// order for determinism).
func (m *Model) ScoreAll(ft *FeatureTable) []Scored {
	out := make([]Scored, ft.Len())
	for i := 0; i < ft.Len(); i++ {
		out[i] = Scored{
			Candidate: ft.Candidates()[i],
			Score:     m.LR.Prob(ft.Features(i)),
		}
	}
	sortScored(out)
	return out
}

// ScoreSingleFeature scores candidates by one raw feature (the Figure 6
// baselines JS-MC and Jaccard-MC), no classifier involved.
func ScoreSingleFeature(ft *FeatureTable, featureName string) ([]Scored, error) {
	col := -1
	for j, n := range FeatureNames {
		if n == featureName {
			col = j
			break
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("correspond: unknown feature %q", featureName)
	}
	out := make([]Scored, ft.Len())
	for i := 0; i < ft.Len(); i++ {
		out[i] = Scored{
			Candidate: ft.Candidates()[i],
			Score:     ft.Features(i)[col],
		}
	}
	sortScored(out)
	return out, nil
}

func sortScored(s []Scored) {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		a, b := s[i].Candidate, s[j].Candidate
		if a.Key != b.Key {
			if a.Key.Merchant != b.Key.Merchant {
				return a.Key.Merchant < b.Key.Merchant
			}
			return a.Key.CategoryID < b.Key.CategoryID
		}
		if a.CatalogAttr != b.CatalogAttr {
			return a.CatalogAttr < b.CatalogAttr
		}
		return a.MerchantAttr < b.MerchantAttr
	})
}
