package offer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prodsynth/internal/catalog"
)

// The feed format mirrors Figure 3 of the paper: a header row then one offer
// per line, tab-separated. The optional Spec column encodes any structured
// attribute-value pairs already present in the feed as "A=v|B=w" (most real
// feeds leave it empty — "most feeds contain little structured data", §2).
//
//	id \t merchant \t category \t title \t price_cents \t url \t image \t spec
var feedHeader = []string{"id", "merchant", "category", "title", "price_cents", "url", "image", "spec"}

// ErrBadFeed is wrapped by all feed parsing errors.
var ErrBadFeed = errors.New("offer: malformed feed")

// WriteFeed serializes offers in the TSV feed format.
func WriteFeed(w io.Writer, offers []Offer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(feedHeader, "\t") + "\n"); err != nil {
		return err
	}
	for _, o := range offers {
		row := []string{
			sanitizeField(o.ID),
			sanitizeField(o.Merchant),
			sanitizeField(o.CategoryID),
			sanitizeField(o.Title),
			strconv.FormatInt(o.PriceCents, 10),
			sanitizeField(o.URL),
			sanitizeField(o.ImageURL),
			encodeSpec(o.Spec),
		}
		if _, err := bw.WriteString(strings.Join(row, "\t") + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFeed parses a TSV feed produced by WriteFeed (or hand-authored in the
// same format). It validates the header and field count and returns an error
// naming the offending line.
func ReadFeed(r io.Reader) ([]Offer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty input", ErrBadFeed)
	}
	if got := sc.Text(); got != strings.Join(feedHeader, "\t") {
		return nil, fmt.Errorf("%w: unexpected header %q", ErrBadFeed, got)
	}
	var offers []Offer
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Text()
		if raw == "" {
			continue
		}
		fields := strings.Split(raw, "\t")
		if len(fields) != len(feedHeader) {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrBadFeed, line, len(fields), len(feedHeader))
		}
		price, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d price: %v", ErrBadFeed, line, err)
		}
		spec, err := decodeSpec(fields[7])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d spec: %v", ErrBadFeed, line, err)
		}
		offers = append(offers, Offer{
			ID:         fields[0],
			Merchant:   fields[1],
			CategoryID: fields[2],
			Title:      fields[3],
			PriceCents: price,
			URL:        fields[5],
			ImageURL:   fields[6],
			Spec:       spec,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return offers, nil
}

// sanitizeField strips the TSV structural characters from free text.
func sanitizeField(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

func encodeSpec(s catalog.Spec) string {
	if len(s) == 0 {
		return ""
	}
	parts := make([]string, len(s))
	for i, av := range s {
		name := strings.NewReplacer("=", " ", "|", " ", "\t", " ", "\n", " ").Replace(av.Name)
		value := strings.NewReplacer("=", " ", "|", " ", "\t", " ", "\n", " ").Replace(av.Value)
		parts[i] = name + "=" + value
	}
	return strings.Join(parts, "|")
}

func decodeSpec(s string) (catalog.Spec, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	spec := make(catalog.Spec, 0, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return nil, fmt.Errorf("pair %q missing '='", p)
		}
		spec = append(spec, catalog.AttributeValue{Name: p[:eq], Value: p[eq+1:]})
	}
	return spec, nil
}
