package durable

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"prodsynth/internal/catalog"
	"prodsynth/internal/snapfmt"
)

// Manager ties one catalog store to one data directory: it recovers the
// store at Open (snapshot load + log replay), logs every later mutation
// through an attached observer, and compacts the log into fresh per-shard
// snapshots on demand or on a schedule (Run).
type Manager struct {
	dir   string
	opts  Options
	store *catalog.Store
	log   *walLog
	kp    *killpoint

	mu          sync.Mutex // serializes Compact, Close
	epoch       uint64
	firstSeq    uint64
	compactions uint64
	closed      bool
	recovery    RecoveryStats
}

// Open recovers (or initializes) a durable catalog in dir: load the
// manifest's shard snapshots, merge them into one store, replay the log
// segments the snapshots do not cover, truncate a torn tail if the last
// crash left one, then open a fresh active segment and attach the logging
// observer. After Open returns, every mutation of Store() is logged.
func Open(dir string, opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	start := opts.Clock.Now()
	kp := parseKillpoint()

	man, haveMan, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if err := removeOrphans(dir, man); err != nil {
		return nil, err
	}

	var store *catalog.Store
	var rec RecoveryStats
	if haveMan {
		snaps := make([]catalog.Snapshot, man.Shards)
		for i := range snaps {
			snaps[i], err = readShardSnapshot(filepath.Join(dir, snapName(i, man.Epoch)))
			if err != nil {
				return nil, fmt.Errorf("durable: epoch %d shard %d: %w", man.Epoch, i, err)
			}
		}
		merged := catalog.MergeSnapshots(snaps)
		store, err = catalog.FromSnapshotShards(merged, opts.Shards)
		if err != nil {
			return nil, fmt.Errorf("durable: epoch %d: %w", man.Epoch, err)
		}
		rec.SnapshotEpoch = man.Epoch
		rec.SnapshotProducts = store.NumProducts()
	} else {
		store = catalog.NewStoreShards(opts.Shards)
	}

	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	replay, err := replaySegments(store, dir, seqs)
	if err != nil {
		return nil, err
	}
	rec.ReplayedRecords = replay.records
	rec.TruncatedBytes = replay.truncated
	rec.Segments = replay.segments

	// A boot always starts a fresh segment — never appends to one an
	// earlier process wrote.
	nextSeq := man.FirstSeq
	if nextSeq == 0 {
		nextSeq = 1
	}
	if n := len(seqs); n > 0 && seqs[n-1] >= nextSeq {
		nextSeq = seqs[n-1] + 1
	}
	log, err := openLog(dir, nextSeq, opts, kp)
	if err != nil {
		return nil, err
	}
	store.SetObserver(log)
	rec.Duration = opts.Clock.Now().Sub(start)

	return &Manager{
		dir:      dir,
		opts:     opts,
		store:    store,
		log:      log,
		kp:       kp,
		epoch:    man.Epoch,
		firstSeq: man.FirstSeq,
		recovery: rec,
	}, nil
}

// removeOrphans deletes files a crash mid-compaction can leave behind:
// temp files never renamed, snapshot files of an epoch the manifest does
// not name (either the next epoch that never published, or the previous
// one that was not yet deleted), and log segments below the manifest's
// first uncovered sequence.
func removeOrphans(dir string, man manifest) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		drop := false
		switch {
		case strings.HasSuffix(name, ".tmp"):
			drop = true
		case strings.HasPrefix(name, "shard-") && strings.HasSuffix(name, ".psct"):
			var shard int
			var epoch uint64
			if _, err := fmt.Sscanf(name, "shard-%d-%d.psct", &shard, &epoch); err == nil {
				drop = epoch != man.Epoch
			}
		default:
			if seq, ok := parseSegName(name); ok {
				drop = seq < man.FirstSeq
			}
		}
		if drop {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readShardSnapshot loads one shard snapshot file.
func readShardSnapshot(path string) (catalog.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return catalog.Snapshot{}, err
	}
	defer f.Close()
	tr := snapfmt.TrackOffset(f)
	snap, err := catalog.DecodeSnapshot(tr)
	if err != nil {
		return catalog.Snapshot{}, err
	}
	if err := snapfmt.ExpectEOF(tr, catalog.ErrBadSnapshot); err != nil {
		return catalog.Snapshot{}, err
	}
	return snap, nil
}

// Store returns the recovered, observer-attached catalog store.
func (m *Manager) Store() *catalog.Store { return m.store }

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Compact folds the log into a new snapshot epoch: rotate the log,
// capture one snapshot per shard (temp + rename, each fsynced), publish
// a manifest naming the new epoch, then delete the files the new epoch
// obsoletes. Appends proceed concurrently throughout — only the rotation
// itself takes the log lock. Crash-safe at every step: until the
// manifest rename commits, recovery uses the old epoch and replays the
// old segments; after it, the stale files are orphans the next Open
// removes.
func (m *Manager) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("durable: manager closed")
	}
	retainSeq, markRecords, markBytes, err := m.log.rotate()
	if err != nil {
		return err
	}
	epoch := m.epoch + 1
	shards := m.store.NumShards()
	for i := 0; i < shards; i++ {
		if err := writeShardSnapshot(m.dir, i, epoch, m.store.ShardSnapshot(i)); err != nil {
			return err
		}
	}
	m.kp.maybeKill("compact-snapshots")
	if err := writeManifest(m.dir, manifest{Epoch: epoch, Shards: uint32(shards), FirstSeq: retainSeq}); err != nil {
		return err
	}
	m.kp.maybeKill("compact-manifest")
	// The new epoch is durable; everything below is garbage collection,
	// and a crash here just leaves orphans for the next Open.
	for i := 0; i < shards; i++ {
		_ = os.Remove(filepath.Join(m.dir, snapName(i, m.epoch)))
	}
	seqs, err := listSegments(m.dir)
	if err == nil {
		for _, seq := range seqs {
			if seq < retainSeq {
				_ = os.Remove(filepath.Join(m.dir, segName(seq)))
			}
		}
	}
	m.epoch = epoch
	m.firstSeq = retainSeq
	m.compactions++
	m.log.setBaseline(markRecords, markBytes)
	return nil
}

// writeShardSnapshot encodes one shard snapshot to its immutable file
// via temp + rename + directory fsync.
func writeShardSnapshot(dir string, shard int, epoch uint64, snap catalog.Snapshot) error {
	final := filepath.Join(dir, snapName(shard, epoch))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := catalog.EncodeSnapshot(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return syncDir(dir)
}

// ImportSnapshot seeds an EMPTY durable store from an external catalog
// snapshot (typically a bundle's catalog half) and immediately compacts,
// so the imported state is on disk as the first epoch rather than
// re-imported on every boot. The records are applied through the replay
// path — validated, but not logged record-by-record.
func (m *Manager) ImportSnapshot(snap catalog.Snapshot) error {
	if m.store.NumCategories() != 0 || m.store.NumProducts() != 0 {
		return errors.New("durable: ImportSnapshot into non-empty store")
	}
	for _, rec := range snapshotRecords(snap) {
		if err := m.store.Replay(rec); err != nil {
			return fmt.Errorf("durable: import: %w", err)
		}
	}
	return m.Compact()
}

// Run services the manager's timers until ctx is done: the fsync flush
// ticker (under SyncInterval), timed compaction (SnapshotInterval), and
// depth-triggered compaction (CompactRecords, checked on whichever
// ticker fires). Compaction failures are retried on the next tick; the
// first error is latched into the log's error counters for Stats.
func (m *Manager) Run(ctx context.Context) {
	flushEvery := time.Duration(0)
	if m.opts.Fsync == SyncInterval {
		flushEvery = m.opts.FsyncInterval
	}
	// Depth-triggered compaction needs a heartbeat even when neither
	// timer is configured.
	if flushEvery == 0 && m.opts.SnapshotInterval == 0 && m.opts.CompactRecords > 0 {
		flushEvery = time.Second
	}
	var flushC, snapC <-chan time.Time
	if flushEvery > 0 {
		t := time.NewTicker(flushEvery)
		defer t.Stop()
		flushC = t.C
	}
	if m.opts.SnapshotInterval > 0 {
		t := time.NewTicker(m.opts.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-flushC:
			if err := m.log.sync(); err != nil {
				m.log.recordError(err)
			}
			m.compactIfDeep()
		case <-snapC:
			if err := m.Compact(); err != nil && !m.isClosed() {
				m.log.recordError(err)
			}
		}
	}
}

func (m *Manager) compactIfDeep() {
	if m.opts.CompactRecords <= 0 {
		return
	}
	if depth, _ := m.log.depth(); depth >= uint64(m.opts.CompactRecords) {
		if err := m.Compact(); err != nil && !m.isClosed() {
			m.log.recordError(err)
		}
	}
}

func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Sync flushes the active log segment — the explicit counterpart of the
// SyncInterval ticker.
func (m *Manager) Sync() error { return m.log.sync() }

// Stats reports the durability layer's current state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	s := Stats{
		Recovery:    m.recovery,
		Epoch:       m.epoch,
		Compactions: m.compactions,
	}
	m.mu.Unlock()
	s.LogDepthRecords, s.LogDepthBytes = m.log.depth()
	var ferr error
	s.AppendErrors, ferr = m.log.errors()
	if ferr != nil {
		s.LastAppendError = ferr.Error()
	}
	return s
}

// Close detaches nothing (the store stays usable in memory, unlogged)
// but syncs and closes the log. Call after the store's writers have
// stopped.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	return m.log.close()
}
