package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeSimple(t *testing.T) {
	toks := Tokenize(`<p class="x">Hello</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[0].Type != StartTagToken || toks[0].Data != "p" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if v, _ := attr(toks[0], "class"); v != "x" {
		t.Errorf("class = %q", v)
	}
	if toks[1].Type != TextToken || toks[1].Data != "Hello" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "p" {
		t.Errorf("tok2 = %+v", toks[2])
	}
}

func attr(tok Token, key string) (string, bool) {
	for _, a := range tok.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

func TestTokenizeUnquotedAndSingleQuotedAttrs(t *testing.T) {
	toks := Tokenize(`<td width=100 align='left' nowrap>x</td>`)
	if toks[0].Data != "td" {
		t.Fatalf("tok = %+v", toks[0])
	}
	if v, _ := attr(toks[0], "width"); v != "100" {
		t.Errorf("width = %q", v)
	}
	if v, _ := attr(toks[0], "align"); v != "left" {
		t.Errorf("align = %q", v)
	}
	if _, ok := attr(toks[0], "nowrap"); !ok {
		t.Error("bare attribute lost")
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize(`<br/><img src="x.png" />`)
	if toks[0].Type != SelfClosingToken || toks[0].Data != "br" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != SelfClosingToken || toks[1].Data != "img" {
		t.Errorf("tok1 = %+v", toks[1])
	}
}

func TestTokenizeCommentAndDoctype(t *testing.T) {
	toks := Tokenize(`<!doctype html><!-- nav starts -->text`)
	if toks[0].Type != CommentToken {
		t.Errorf("doctype tok = %+v", toks[0])
	}
	if toks[1].Type != CommentToken || toks[1].Data != " nav starts " {
		t.Errorf("comment tok = %+v", toks[1])
	}
	if toks[2].Type != TextToken || toks[2].Data != "text" {
		t.Errorf("text tok = %+v", toks[2])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a < b) { x("<td>"); }</script><p>after</p>`)
	// Expect: script start, raw text, script end, p start, text, p end.
	if toks[0].Data != "script" {
		t.Fatalf("toks = %+v", toks)
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, `x("<td>")`) {
		t.Errorf("script body = %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Errorf("script end = %+v", toks[2])
	}
	if toks[3].Data != "p" {
		t.Errorf("after = %+v", toks[3])
	}
}

func TestTokenizeLoneLessThan(t *testing.T) {
	toks := Tokenize(`5 < 7 and <b>bold</b>`)
	var text strings.Builder
	for _, tok := range toks {
		if tok.Type == TextToken {
			text.WriteString(tok.Data)
		}
	}
	if !strings.Contains(text.String(), "<") {
		t.Errorf("lone < lost: %q", text.String())
	}
}

func TestTokenizeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		Tokenize(s) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Targeted nasties.
	for _, s := range []string{
		"<", "</", "<a", "<a href=", `<a href="unterminated`, "<!--unterminated",
		"<script>never closed", "</>", "< >", "<a/", "<a /", "&", "&#", "&#x;",
	} {
		Tokenize(s)
	}
}

func TestUnescapeEntities(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;td&gt;", "<td>"},
		{"&#65;&#x42;", "AB"},
		{"&nbsp;", " "},
		{"&unknown;", "&unknown;"},
		{"no entities", "no entities"},
		{"&", "&"},
		{"&#0;", "&#0;"},
		{"5&quot;", `5"`},
	}
	for _, c := range cases {
		if got := UnescapeEntities(c.in); got != c.want {
			t.Errorf("UnescapeEntities(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseTree(t *testing.T) {
	root := Parse(`<html><body><div id="main"><p>one</p><p>two</p></div></body></html>`)
	ps := root.FindAll("p")
	if len(ps) != 2 {
		t.Fatalf("found %d <p>", len(ps))
	}
	if ps[0].InnerText() != "one" || ps[1].InnerText() != "two" {
		t.Errorf("texts = %q, %q", ps[0].InnerText(), ps[1].InnerText())
	}
	div := root.FindAll("div")[0]
	if v, _ := div.Attr("id"); v != "main" {
		t.Errorf("id = %q", v)
	}
	if ps[0].Parent != div {
		t.Error("parent pointer wrong")
	}
}

func TestParseAutoCloseTableCells(t *testing.T) {
	// Unclosed <tr> and <td>, as on sloppy merchant pages.
	root := Parse(`<table>
		<tr><td>Brand<td>Seagate
		<tr><td>Capacity<td>500 GB
	</table>`)
	trs := root.FindAll("tr")
	if len(trs) != 2 {
		t.Fatalf("found %d rows", len(trs))
	}
	for i, tr := range trs {
		tds := tr.ChildElements("td")
		if len(tds) != 2 {
			t.Errorf("row %d has %d cells: %q", i, len(tds), tr.InnerText())
		}
	}
	if got := trs[1].ChildElements("td")[1].InnerText(); got != "500 GB" {
		t.Errorf("cell = %q", got)
	}
}

func TestParseAutoCloseListItems(t *testing.T) {
	root := Parse(`<ul><li>Resolution: 12 MP<li>Zoom: 3x</ul>`)
	lis := root.FindAll("li")
	if len(lis) != 2 {
		t.Fatalf("found %d <li>", len(lis))
	}
	if lis[0].InnerText() != "Resolution: 12 MP" {
		t.Errorf("li0 = %q", lis[0].InnerText())
	}
}

func TestParseStrayEndTag(t *testing.T) {
	root := Parse(`<div></span><p>ok</p></div>`)
	if got := root.InnerText(); got != "ok" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestParseUnclosedAtEOF(t *testing.T) {
	root := Parse(`<div><p>dangling`)
	if got := root.InnerText(); got != "dangling" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestInnerTextSkipsScriptStyle(t *testing.T) {
	root := Parse(`<div>visible<script>var x = "hidden";</script><style>.a{}</style></div>`)
	if got := root.InnerText(); got != "visible" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestInnerTextCollapsesWhitespace(t *testing.T) {
	root := Parse("<p>  a \n\t b  </p>")
	if got := root.InnerText(); got != "a b" {
		t.Errorf("InnerText = %q", got)
	}
}

func TestWalkPrune(t *testing.T) {
	root := Parse(`<div><table><tr><td>x</td></tr></table><p>y</p></div>`)
	var visited []string
	root.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
			return n.Tag != "table" // prune below table
		}
		return true
	})
	for _, tag := range visited {
		if tag == "tr" || tag == "td" {
			t.Errorf("walk did not prune: %v", visited)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		root := Parse(s)
		root.InnerText()
		return root != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseEntitiesInAttributesAndText(t *testing.T) {
	root := Parse(`<td title="A &amp; B">3.5&quot; drive</td>`)
	td := root.FindAll("td")[0]
	if v, _ := td.Attr("title"); v != "A & B" {
		t.Errorf("attr = %q", v)
	}
	if got := td.InnerText(); got != `3.5" drive` {
		t.Errorf("text = %q", got)
	}
}

func BenchmarkParseSpecPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body><div class='nav'><ul>")
	for i := 0; i < 20; i++ {
		sb.WriteString("<li><a href='/x'>Link</a></li>")
	}
	sb.WriteString("</ul></div><table>")
	for i := 0; i < 30; i++ {
		sb.WriteString("<tr><td>Attribute Name</td><td>Some Value 123</td></tr>")
	}
	sb.WriteString("</table></body></html>")
	page := sb.String()
	b.ReportAllocs()
	b.SetBytes(int64(len(page)))
	for i := 0; i < b.N; i++ {
		Parse(page)
	}
}
