package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadModule parses every package under the module rooted at root (the
// directory holding go.mod). Directories named testdata, hidden
// directories, and vendor trees are skipped. The returned packages share
// one FileSet.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loadDir(fset, path, importPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses one directory as a package with an explicit import path
// — the fixture loader: testdata packages declare the path whose scoping
// rules they want to exercise.
func LoadDir(dir, importPath string) (*Package, error) {
	pkg, err := loadDir(token.NewFileSet(), dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return pkg, nil
}

// loadDir parses the directory's .go files; nil when it has none.
func loadDir(fset *token.FileSet, dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		astf, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		f := &File{
			Ast:     astf,
			Name:    name,
			Test:    strings.HasSuffix(name, "_test.go"),
			Imports: importTable(astf),
		}
		f.allows = parseAllows(fset, astf)
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Name < pkg.Files[j].Name })
	return pkg, nil
}

// importTable maps each import's local name to its path. Blank and dot
// imports carry no usable name and are omitted.
func importTable(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = path
	}
	return out
}

// modulePath reads the module directive out of a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
