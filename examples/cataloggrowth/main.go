// Cataloggrowth demonstrates the operational loop a Product Search Engine
// runs: as synthesized products are added to the catalog, offers that used
// to be unmatched start matching, so the next synthesis wave has less to do
// and the catalog's coverage of the offer stream climbs.
//
// The incoming offer stream is split into two waves. After wave 1 the
// synthesized products are committed to the catalog; wave 2 then sees many
// of its offers match the now-grown catalog and is synthesized from the
// remainder only.
//
//	go run ./examples/cataloggrowth
package main

import (
	"context"
	"fmt"
	"log"

	"prodsynth"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	market := prodsynth.GenerateMarketplace(prodsynth.MarketplaceConfig{
		Seed:                7,
		CategoriesPerDomain: 3,
		ProductsPerCategory: 30,
		Merchants:           30,
	})
	pages := prodsynth.MapFetcher(market.Pages)

	model, err := prodsynth.Learn(ctx, market.Catalog, market.HistoricalOffers, pages)
	if err != nil {
		log.Fatal(err)
	}
	sys := prodsynth.NewSystem(market.Catalog, model)
	fmt.Printf("catalog before synthesis: %d products\n", market.Catalog.NumProducts())
	fmt.Printf("learned %d correspondences from %d historical offers\n\n",
		model.Stats().Correspondences, model.Stats().HistoricalOffers)

	// Split the incoming stream into two interleaved waves, so offers for
	// the same product land in both. That is what makes wave 2
	// interesting: wave 1 will have synthesized many of its products
	// already, and those offers now match instead of re-synthesizing.
	incoming := market.IncomingOffers
	var waves [2][]prodsynth.Offer
	for i, o := range incoming {
		waves[i%2] = append(waves[i%2], o)
	}

	for i, wave := range waves {
		res, err := sys.SynthesizeContext(ctx, wave, pages)
		if err != nil {
			log.Fatal(err)
		}
		report := sys.AddToCatalog(res.Products, fmt.Sprintf("wave%d", i+1))
		fmt.Printf("wave %d: %d offers in\n", i+1, len(wave))
		fmt.Printf("  matched existing catalog products (excluded): %d\n", res.ExcludedMatched)
		fmt.Printf("  synthesized: %d products; committed %d (%d key collisions, %d schema violations)\n",
			len(res.Products), report.Added,
			len(report.KeyCollisions), len(report.SchemaViolations))
		fmt.Printf("  catalog now: %d products\n\n", market.Catalog.NumProducts())
	}

	// The loop's payoff: replaying wave 1 against the grown catalog shows
	// its offers now match instead of requiring synthesis.
	res, err := sys.SynthesizeContext(ctx, waves[0], pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying wave 1 against the grown catalog:\n")
	fmt.Printf("  matched existing products: %d of %d offers\n", res.ExcludedMatched, len(waves[0]))
	fmt.Printf("  remaining to synthesize: %d products\n", len(res.Products))
}
