// Command synthesize runs the end-to-end product synthesis pipeline over a
// dataset directory produced by cmd/datagen (or hand-assembled in the same
// layout): offline learning on the historical feed, then runtime synthesis
// on the incoming feed. Synthesized products are written as JSON.
//
// Usage:
//
//	synthesize -data ./data [-out products.json] [-threshold 0.5]
//	           [-correspondences corr.tsv] [-v]
//	synthesize -data ./data -save-model model.psmd    # learn once, persist
//	synthesize -data ./data -load-model model.psmd    # warm-start, skip learning
//	synthesize -data ./data -save-bundle warm.psbd    # persist catalog + model
//	synthesize -data ./data -load-bundle warm.psbd    # full warm start: zero
//	                                                  # re-ingestion, zero re-learning
//
// The model flags persist the full learned artifact (correspondences,
// classifier weights, statistics) in the versioned binary snapshot format,
// so a learned model can be reused across invocations and machines; the
// older -correspondences/-load TSV flags carry the correspondence set only.
// The bundle flags additionally persist the catalog store (categories,
// products, version counters, key index), so -load-bundle boots from the
// single artifact alone — the dataset directory supplies only the offer
// feed and landing pages.
//
// When the dataset carries ground truth, the run is graded and attribute /
// product precision are printed (the paper's Table 2 metrics).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"prodsynth"
	"prodsynth/internal/correspond"
	"prodsynth/internal/dataset"
	"prodsynth/internal/eval"
)

type jsonProduct struct {
	CategoryID string            `json:"category_id"`
	Key        string            `json:"key"`
	KeyAttr    string            `json:"key_attr"`
	Spec       map[string]string `json:"spec"`
	OfferIDs   []string          `json:"offer_ids"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("synthesize: ")

	var (
		data       = flag.String("data", "", "dataset directory (required)")
		out        = flag.String("out", "", "write synthesized products JSON here (default stdout)")
		threshold  = flag.Float64("threshold", 0.5, "correspondence score threshold")
		corrOut    = flag.String("correspondences", "", "also write learned correspondences (TSV)")
		corrIn     = flag.String("load", "", "load correspondences from TSV and skip offline learning")
		saveModel  = flag.String("save-model", "", "write the learned model snapshot here (binary, reusable via -load-model)")
		loadModel  = flag.String("load-model", "", "load a model snapshot and skip offline learning")
		saveBundle = flag.String("save-bundle", "", "write catalog + model as one bundle artifact (reusable via -load-bundle)")
		loadBundle = flag.String("load-bundle", "", "load a catalog + model bundle: skip catalog re-ingestion and offline learning")
		verbose    = flag.Bool("v", false, "print pipeline statistics")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	loaders := 0
	for _, f := range []string{*corrIn, *loadModel, *loadBundle} {
		if f != "" {
			loaders++
		}
	}
	if loaders > 1 {
		log.Fatal("-load, -load-model, and -load-bundle are mutually exclusive")
	}
	if loaders > 0 {
		// The threshold gates correspondence *selection*, an offline-phase
		// decision already baked into a loaded artifact.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threshold" {
				log.Print("warning: -threshold has no effect with -load/-load-model/-load-bundle; the loaded artifact's selection is fixed at learn time")
			}
		})
	}

	ctx := context.Background()
	load := dataset.Load
	if *loadBundle != "" {
		// The catalog arrives from the bundle; skip re-ingesting the
		// dataset's copy and read only the offer feeds, pages, and truth.
		load = dataset.LoadWorkload
	}
	ds, err := load(*data)
	if err != nil {
		log.Fatal(err)
	}
	fetcher := prodsynth.MapFetcher(ds.Pages)
	opts := []prodsynth.Option{prodsynth.WithScoreThreshold(*threshold)}

	store := ds.Catalog
	var model *prodsynth.Model
	switch {
	case *loadBundle != "":
		store, model, err = readBundle(*loadBundle)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			fmt.Fprintf(os.Stderr, "loaded bundle from %s: %d categories, %d products, %d correspondences (catalog ingestion and offline learning skipped)\n",
				*loadBundle, store.NumCategories(), store.NumProducts(), st.Correspondences)
		}
	case *loadModel != "":
		model, err = readModel(*loadModel)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			fmt.Fprintf(os.Stderr, "loaded model from %s: %d correspondences (offline learning skipped)\n",
				*loadModel, st.Correspondences)
		}
	case *corrIn != "":
		scored, err := loadCorrespondences(*corrIn)
		if err != nil {
			log.Fatal(err)
		}
		model = prodsynth.ModelFromCorrespondences(store, scored)
		if *verbose {
			fmt.Fprintf(os.Stderr, "loaded %d correspondences from %s (offline learning skipped)\n",
				len(scored), *corrIn)
		}
	default:
		model, err = prodsynth.Learn(ctx, store, ds.HistoricalOffers, fetcher, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			fmt.Fprintf(os.Stderr, "offline: %d offers, %d matched, %d candidates, training %d (%d+), %d correspondences\n",
				st.HistoricalOffers, st.MatchedOffers, st.Candidates, st.TrainingSize, st.TrainingPositives, st.Correspondences)
		}
	}
	if *saveModel != "" {
		if err := writeModel(*saveModel, model); err != nil {
			log.Fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "saved model snapshot to %s\n", *saveModel)
		}
	}
	if *saveBundle != "" {
		if err := writeBundle(*saveBundle, store, model); err != nil {
			log.Fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "saved catalog+model bundle to %s\n", *saveBundle)
		}
	}
	if *corrOut != "" {
		if err := writeCorrespondences(*corrOut, model); err != nil {
			log.Fatal(err)
		}
	}

	sys := prodsynth.NewSystem(store, model, opts...)
	run, err := sys.SynthesizeContext(ctx, ds.IncomingOffers, fetcher)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "runtime: %d products, %d pairs mapped, %d dropped, %d offers without key, %d matched existing\n",
			len(run.Products), run.PairsMapped, run.PairsDropped,
			run.OffersWithoutKey, run.ExcludedMatched)
	}

	if err := writeProducts(*out, run.Products); err != nil {
		log.Fatal(err)
	}

	if ds.Truth != nil {
		rep := eval.GradeSynthesis(run.Products, ds.Truth, ds.Universe)
		fmt.Fprintf(os.Stderr, "graded against ground truth: attribute precision %.3f, product precision %.3f (%d products, %d pairs)\n",
			rep.AttributePrecision(), rep.ProductPrecision(), rep.Products, rep.AttributePairs)
	}
}

func writeProducts(path string, products []prodsynth.Synthesized) error {
	var w *os.File
	if path == "" {
		w = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	for _, p := range products {
		jp := jsonProduct{
			CategoryID: p.CategoryID, Key: p.Key, KeyAttr: p.KeyAttr,
			Spec: make(map[string]string, len(p.Spec)), OfferIDs: p.OfferIDs,
		}
		for _, av := range p.Spec {
			jp.Spec[av.Name] = av.Value
		}
		if err := enc.Encode(jp); err != nil {
			return err
		}
	}
	return nil
}

func readBundle(path string) (*prodsynth.Catalog, *prodsynth.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return prodsynth.LoadBundle(f)
}

func writeBundle(path string, store *prodsynth.Catalog, m *prodsynth.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := prodsynth.SaveBundle(f, store, m); err != nil {
		return err
	}
	return f.Close()
}

func readModel(path string) (*prodsynth.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return prodsynth.LoadModel(f)
}

func writeModel(path string, m *prodsynth.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := prodsynth.SaveModel(f, m); err != nil {
		return err
	}
	return f.Close()
}

func loadCorrespondences(path string) ([]prodsynth.Correspondence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := correspond.ReadSet(f)
	if err != nil {
		return nil, err
	}
	return set.All(), nil
}

func writeCorrespondences(path string, m *prodsynth.Model) error {
	set := correspond.NewSet()
	for _, sc := range m.Correspondences() {
		set.Add(sc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := correspond.WriteSet(f, set); err != nil {
		return err
	}
	return f.Close()
}
