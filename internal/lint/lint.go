// Package lint is prodsynth's repo-specific static analyzer suite: the
// invariants nine PRs of growth accumulated — injectable clocks,
// context-first entry points, I/O-free shard critical sections, %w-wrapped
// sentinels, compat-shim deprecation markers, and join-guarded goroutines
// — encoded as machine-checked analysis passes instead of prose and CI
// greps.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Reportf) but is self-contained on the standard
// library: the root module stays zero-dependency, and the passes are
// syntactic (go/ast over parsed source, import-table resolution, no type
// checking). That bounds what they can see — they reason per function and
// per file, not interprocedurally — which is exactly the level the
// invariants are stated at.
//
// # Suppression
//
// A finding that is a justified exception is allowlisted in the source,
// next to the code it covers, with a reason:
//
//	//lint:allow <analyzer> <reason>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The reason is mandatory: an allow comment without
// one does not suppress anything (and is itself reported), so every
// exception in the tree documents why it is one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named pass over a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:allow comments.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string
	// Run reports the analyzer's findings on pass.Pkg via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: an invariant violation at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed (not type-checked) package: every .go file of one
// directory, including test files — analyzers that should not look at
// tests skip File.Test themselves.
type Package struct {
	// Path is the import path, e.g. "prodsynth/internal/stream".
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*File
}

// File is one parsed source file plus the lookup tables analyzers need.
type File struct {
	Ast *ast.File
	// Name is the file's base name, e.g. "stream.go".
	Name string
	// Test reports a *_test.go file.
	Test bool
	// Imports maps the local name of each import to its path, e.g.
	// "rand" -> "math/rand". Dot and blank imports are omitted.
	Imports map[string]string

	allows []allow
}

// ImportsPath reports whether the file imports path (under any name).
func (f *File) ImportsPath(path string) bool {
	for _, p := range f.Imports {
		if p == path {
			return true
		}
	}
	return false
}

// PkgSel returns the selector name if e is a call-ready selector
// `<ident>.<Sel>` whose ident is f's local name for the import path, e.g.
// PkgSel(e, "time") returning "Now" for `time.Now`. Empty when not.
func (f *File) PkgSel(e ast.Expr, path string) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if f.Imports[id.Name] != path {
		return ""
	}
	return sel.Sel.Name
}

// allow is one parsed //lint:allow comment.
type allow struct {
	line     int
	analyzer string
	reason   string
}

var allowRe = regexp.MustCompile(`^\s*lint:allow\s+(\S+)\s*(.*)$`)

// parseAllows extracts the file's lint:allow comments.
func parseAllows(fset *token.FileSet, f *ast.File) []allow {
	var out []allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			m := allowRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			out = append(out, allow{
				line:     fset.Position(c.Pos()).Line,
				analyzer: m[1],
				reason:   strings.TrimSpace(strings.TrimSuffix(m[2], "*/")),
			})
		}
	}
	return out
}

// suppressed reports whether an allow comment for analyzer covers line:
// same line as the finding, or the line immediately above it.
func (f *File) suppressed(analyzer string, line int) bool {
	for _, a := range f.allows {
		if a.analyzer == analyzer && a.reason != "" && (a.line == line || a.line == line-1) {
			return true
		}
	}
	return false
}

// RunAnalyzers runs every analyzer over every package, applies the
// lint:allow suppressions, and returns the surviving diagnostics sorted
// by position. Allow comments missing their mandatory reason are
// themselves diagnostics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		byFile := make(map[string]*File, len(pkg.Files))
		for _, f := range pkg.Files {
			byFile[f.Name] = f
			for _, a := range f.allows {
				if a.reason == "" {
					out = append(out, Diagnostic{
						Analyzer: "lintallow",
						Pos:      token.Position{Filename: pkg.Dir + "/" + f.Name, Line: a.line, Column: 1},
						Message:  fmt.Sprintf("lint:allow %s needs a reason: every allowlisted exception documents why it is one", a.analyzer),
					})
				}
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if f, ok := byFile[baseName(d.Pos.Filename)]; ok && f.suppressed(a.Name, d.Pos.Line) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// All returns the full suite, the set cmd/vetsynth and the repo self-scan
// run.
func All() []*Analyzer {
	return []*Analyzer{
		ClockCheck,
		CtxFirst,
		LockScope,
		ErrWrapCheck,
		ShimCheck,
		SpawnCheck,
	}
}
