package cluster

import "prodsynth/internal/offer"

// SpillMember is one spilled cluster member: the offer plus its global
// arrival index, which keeps member order byte-identical to batch
// clustering when the cluster is revived.
type SpillMember struct {
	Seq   int
	Offer offer.Offer
}

// Spilled is the out-of-core form of one open cluster: everything the
// stream's cluster memory needs to revive it as if it had never left RAM
// — creation ordinal, union-find key set, members in arrival order, the
// wave that last touched it, and the catalog versions observed then.
type Spilled struct {
	Ord         int
	Keys        []string
	Members     []SpillMember
	LastWave    int
	CatVersions map[string]uint64
}

// SpillStore parks evicted-but-revivable clusters outside RAM. The
// stream's cluster memory spills clusters it would otherwise seal on
// LRU/TTL bounds and revives them when one of their keys reappears, so a
// bounded memory over an oversized open-cluster set stays byte-identical
// to an unbounded one. Implementations keep a compact key -> ref index
// (keys are small; members are what spilling moves out of RAM) and need
// not be safe for concurrent use: one stream owns one store.
type SpillStore interface {
	// Spill parks one cluster and indexes all its keys.
	Spill(s Spilled) error
	// Lookup resolves a key to the ref of the spilled cluster holding it.
	Lookup(key string) (ref int64, ok bool)
	// Revive loads the cluster behind ref and removes it (and its keys)
	// from the store.
	Revive(ref int64) (Spilled, error)
	// All returns every spilled cluster without removing anything, in no
	// particular order — the close-path merge input.
	All() ([]Spilled, error)
	// Len reports how many clusters are currently spilled.
	Len() int
	// Close releases the store's resources; the stream calls it once the
	// feed ends.
	Close() error
}

// SpillFactory opens a fresh SpillStore per stream. Cluster memory is
// per-stream state, so concurrent streams must not share a store; the
// factory is what a Config can carry.
type SpillFactory interface {
	NewSpill() (SpillStore, error)
}
