package prodsynth

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"
)

// recoveryPolicy is the acceptance-test fetch policy: three attempts with
// fake-clock backoff, breaker disabled so lenient-mode output stays
// byte-identical across worker interleavings (see FetchPolicy's
// determinism note).
func recoveryPolicy() FetchPolicy {
	return FetchPolicy{
		MaxAttempts: 3,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  time.Second,
		JitterSeed:  7,
		Clock:       NewFakeFetchClock(),
	}
}

// TestFetchPolicyRecoversByteIdentical is the headline acceptance
// criterion: under a seeded fault schedule where every URL fails exactly
// twice and then succeeds, a lenient run with three attempts recovers
// every page — output byte-identical to the no-fault run — and the
// FetchReport counts match the schedule exactly.
func TestFetchPolicyRecoversByteIdentical(t *testing.T) {
	ds := marketplace(t)
	model, err := Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}

	clean := NewSystem(ds.Catalog, model)
	noFault, err := clean.SynthesizeContext(context.Background(), ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	want := productFingerprints(noFault.Products)

	sys := NewSystem(ds.Catalog, model, WithFetchPolicy(recoveryPolicy()))
	faulty := NewFaultyFetcher(MapFetcher(ds.Pages), FailFirstFaults(2), NewFakeFetchClock())
	res, err := sys.SynthesizeContext(context.Background(), ds.IncomingOffers, faulty)
	if err != nil {
		t.Fatal(err)
	}

	got := productFingerprints(res.Products)
	if len(got) != len(want) {
		t.Fatalf("%d products under faults vs %d without", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("product %d differs:\n  faults:   %s\n  no-fault: %s", i, got[i], want[i])
		}
	}

	// Every URL failed exactly twice then succeeded, so with 3 attempts:
	// every operation retried, every operation recovered, none gave up.
	n := len(ds.IncomingOffers)
	wantCounts := FetchCounters{Attempted: n, Attempts: 3 * n, Retried: n, Recovered: n}
	if res.Fetch.Counters != wantCounts {
		t.Errorf("FetchReport counters = %+v, want %+v", res.Fetch.Counters, wantCounts)
	}
	if res.Fetch.Degraded() {
		t.Errorf("retries recovered everything, yet FeedOnly = %v", res.Fetch.FeedOnly)
	}
}

// TestFetchPolicyStreamBatchEquivalence re-runs the stream≡batch
// equivalence matrix with the fault-injecting fetcher installed: for
// every StageBuffer × Workers combination the streamed merged view must
// stay byte-identical to the no-fault one-shot output, and the final
// result's aggregated FetchReport must match the schedule exactly.
func TestFetchPolicyStreamBatchEquivalence(t *testing.T) {
	ds := marketplace(t)
	model, err := Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	clean := NewSystem(ds.Catalog, model)
	noFault, err := clean.SynthesizeContext(context.Background(), ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	want := productFingerprints(noFault.Products)
	n := len(ds.IncomingOffers)
	wantCounts := FetchCounters{Attempted: n, Attempts: 3 * n, Retried: n, Recovered: n}

	for _, sb := range []int{-1, 0, 1, 4} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("stagebuffer=%d/workers=%d", sb, workers)
			t.Run(name, func(t *testing.T) {
				cfg := Config{Workers: workers, StageBuffer: sb, Fetch: recoveryPolicy()}
				sys := NewSystem(ds.Catalog, model, WithConfig(cfg))
				// A fresh Faulty per cell: FailFirst counts attempts per
				// URL over the fetcher's lifetime.
				faulty := NewFaultyFetcher(MapFetcher(ds.Pages), FailFirstFaults(2), NewFakeFetchClock())
				perWave, final := runStream(t, sys, contiguousWaves(ds.IncomingOffers, 4), faulty, StreamOptions{})

				for _, r := range perWave {
					if r.Err != nil {
						t.Fatalf("wave %d failed: %v", r.Wave, r.Err)
					}
					if r.Fetch.Degraded() {
						t.Errorf("wave %d degraded: %v", r.Wave, r.Fetch.FeedOnly)
					}
				}
				got := productFingerprints(final.Products)
				if len(got) != len(want) {
					t.Fatalf("%d merged products vs %d one-shot", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("product %d differs:\n  streamed: %s\n  one-shot: %s", i, got[i], want[i])
					}
				}
				if final.Fetch.Counters != wantCounts {
					t.Errorf("final FetchReport = %+v, want %+v", final.Fetch.Counters, wantCounts)
				}
			})
		}
	}
}

// TestFetchPolicyBatchesRecover runs the same recovery schedule through
// the batch entry point: the fetcher is wrapped once for the whole
// sequence, per-batch reports carry each batch's share, and the total
// matches the schedule.
func TestFetchPolicyBatchesRecover(t *testing.T) {
	ds, sys := learned(t, Config{Fetch: recoveryPolicy()})
	faulty := NewFaultyFetcher(MapFetcher(ds.Pages), FailFirstFaults(2), NewFakeFetchClock())
	batches := contiguousWaves(ds.IncomingOffers, 3)

	res, err := sys.SynthesizeBatchesContext(context.Background(), batches, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d batches failed", res.Failed)
	}
	for i, b := range res.Batches {
		if b.Fetch.Attempted != len(batches[i]) || b.Fetch.Recovered != len(batches[i]) {
			t.Errorf("batch %d report = %+v, want %d attempted and recovered",
				i, b.Fetch.Counters, len(batches[i]))
		}
	}
	n := len(ds.IncomingOffers)
	wantCounts := FetchCounters{Attempted: n, Attempts: 3 * n, Retried: n, Recovered: n}
	if res.Total.Fetch.Counters != wantCounts {
		t.Errorf("total FetchReport = %+v, want %+v", res.Total.Fetch.Counters, wantCounts)
	}
}

// TestFetchReportFeedOnly pins lenient mode's degradation accounting: an
// offer whose page never fetches proceeds feed-only and is named in the
// result's FetchReport, while strict mode fails the run even after
// retries.
func TestFetchReportFeedOnly(t *testing.T) {
	ds, sys := learned(t, Config{Fetch: recoveryPolicy()})
	incoming := append([]Offer{badOffer(ds)}, ds.IncomingOffers[1:]...)
	faulty := NewFaultyFetcher(MapFetcher(ds.Pages), FailFirstFaults(0), nil) // no injected faults; the bad URL alone fails

	res, err := sys.SynthesizeContext(context.Background(), incoming, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Fetch.FeedOnly; len(got) != 1 || got[0] != "bad-offer" {
		t.Fatalf("FeedOnly = %v, want [bad-offer]", got)
	}
	if !res.Fetch.Degraded() {
		t.Error("Degraded() = false with a feed-only offer")
	}
	n := len(incoming)
	// The bad offer exhausts all 3 attempts; everything else succeeds
	// first try.
	wantCounts := FetchCounters{Attempted: n, Attempts: n + 2, Retried: 1, GaveUp: 1}
	if res.Fetch.Counters != wantCounts {
		t.Errorf("counters = %+v, want %+v", res.Fetch.Counters, wantCounts)
	}

	strict := NewSystem(ds.Catalog, sys.Model(), WithConfig(Config{Fetch: recoveryPolicy(), StrictPages: true}))
	if _, err := strict.SynthesizeContext(context.Background(), incoming, faulty); err == nil {
		t.Fatal("strict run tolerated an unfetchable page")
	}
}

// TestFetchPolicyStrictSavedByRetries pins the strict+retry interplay: a
// transient double-failure that would abort a strict run without retries
// is recovered by the policy and the run succeeds.
func TestFetchPolicyStrictSavedByRetries(t *testing.T) {
	ds, sys := learned(t, Config{Fetch: recoveryPolicy(), StrictPages: true})
	faulty := NewFaultyFetcher(MapFetcher(ds.Pages), FailFirstFaults(2), NewFakeFetchClock())
	res, err := sys.SynthesizeContext(context.Background(), ds.IncomingOffers, faulty)
	if err != nil {
		t.Fatalf("strict run failed despite recovering retries: %v", err)
	}
	if res.Fetch.Recovered != len(ds.IncomingOffers) {
		t.Errorf("Recovered = %d, want %d", res.Fetch.Recovered, len(ds.IncomingOffers))
	}

	// Three failures exceed the retry budget: now strict aborts, and the
	// error carries the injected cause.
	exhausted := NewFaultyFetcher(MapFetcher(ds.Pages), FailFirstFaults(3), NewFakeFetchClock())
	if _, err := sys.SynthesizeContext(context.Background(), ds.IncomingOffers, exhausted); !errors.Is(err, ErrFetchInjected) {
		t.Fatalf("err = %v, want wrapped ErrFetchInjected", err)
	}
}

// TestLearnHonorsStrictPages pins the fixed StrictPages asymmetry at the
// public boundary: offline learning now honors the knob exactly as the
// runtime does, and lenient learning accounts its crawl gaps on the Model.
func TestLearnHonorsStrictPages(t *testing.T) {
	ds := marketplace(t)
	badHist := ds.HistoricalOffers[0].Clone()
	badHist.ID = "bad-hist"
	badHist.URL = "missing://nowhere"
	historical := append([]Offer{badHist}, ds.HistoricalOffers[1:]...)

	model, err := Learn(context.Background(), ds.Catalog, historical, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatalf("lenient Learn failed: %v", err)
	}
	if got := model.FetchReport().FeedOnly; len(got) != 1 || got[0] != "bad-hist" {
		t.Errorf("Model.FetchReport().FeedOnly = %v, want [bad-hist]", got)
	}

	if _, err := Learn(context.Background(), ds.Catalog, historical, MapFetcher(ds.Pages), WithStrictPages(true)); err == nil {
		t.Fatal("strict Learn tolerated a missing historical page")
	}
}

// alwaysFail is a schedule that fails every attempt for every URL.
var alwaysFail = FaultScheduleFunc(func(url string, attempt int) FaultOutcome {
	return FaultOutcome{Err: fmt.Errorf("%w: %q attempt %d", ErrFetchInjected, url, attempt)}
})

// TestFetchCancelDuringBackoffNoLeak cancels a synthesis run while its
// fetches are parked in real-clock backoff sleeps: the run must return
// promptly with ctx.Err() and leak no goroutines — the resilience layer's
// counterpart of TestStreamCtxCancelNoLeak.
func TestFetchCancelDuringBackoffNoLeak(t *testing.T) {
	policy := FetchPolicy{
		MaxAttempts: 10,
		BackoffBase: time.Hour, // only cancellation can cut this short
		BackoffMax:  time.Hour,
	}
	ds, sys := learned(t, Config{})
	sysWithPolicy := NewSystem(ds.Catalog, sys.Model(), WithConfig(Config{Fetch: policy}))

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	faulty := NewFaultyFetcher(MapFetcher(ds.Pages), alwaysFail, nil)
	done := make(chan error, 1)
	go func() {
		_, err := sysWithPolicy.SynthesizeContext(ctx, ds.IncomingOffers, faulty)
		done <- err
	}()
	// Give the extraction stage time to fail first attempts and park in
	// backoff, then cancel.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("synthesis did not return after cancel during backoff")
	}
	waitGoroutines(t, baseline)
}

// TestFetchCancelWithBreakerOpenNoLeak cancels a stream whose fetches are
// split between an open circuit breaker (rejecting instantly) and a
// schedule-injected latency stall: cancellation must unwind both paths
// without leaking pipeline goroutines, and the stream must close without
// a healthy final result.
func TestFetchCancelWithBreakerOpenNoLeak(t *testing.T) {
	ds, sys := learned(t, Config{})
	// Every URL of the first merchant's host fails hard (tripping its
	// breaker after 1 failure); every other URL stalls for an hour of
	// real-clock latency, so the wave parks mid-fetch.
	downHost := hostOf(ds.IncomingOffers, t)
	sched := FaultScheduleFunc(func(url string, attempt int) FaultOutcome {
		if hostOfURL(url) == downHost {
			return FaultOutcome{Err: fmt.Errorf("%w: %q down", ErrFetchInjected, downHost)}
		}
		return FaultOutcome{Latency: time.Hour}
	})
	policy := FetchPolicy{
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	}
	sysWithPolicy := NewSystem(ds.Catalog, sys.Model(), WithConfig(Config{Fetch: policy}))

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	faulty := NewFaultyFetcher(MapFetcher(ds.Pages), sched, nil)
	in := make(chan []Offer, 1)
	out, err := sysWithPolicy.SynthesizeStream(ctx, in, faulty, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in <- ds.IncomingOffers
	time.Sleep(50 * time.Millisecond) // breaker trips; healthy-host fetches stall in latency
	cancel()
	sawFinal := false
	for r := range out {
		if r.Final {
			sawFinal = true
		}
	}
	if sawFinal {
		t.Error("cancelled stream delivered a final result")
	}
	close(in)
	waitGoroutines(t, baseline)
}

// hostOf returns the host of the first offer's URL.
func hostOf(offers []Offer, t *testing.T) string {
	t.Helper()
	if len(offers) == 0 {
		t.Fatal("no offers")
	}
	return hostOfURL(offers[0].URL)
}

// hostOfURL extracts "merchant.example.com" from the synthetic
// marketplace's offer URLs (http://<merchant>.example.com/item/<id>).
func hostOfURL(url string) string {
	const scheme = "http://"
	if len(url) < len(scheme) {
		return url
	}
	rest := url[len(scheme):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			return rest[:i]
		}
	}
	return rest
}

// TestFetchReportWaveMergeMath is the stream accounting property test:
// the final result's FetchReport must be exactly the sum of the per-wave
// reports — every counter adds up and FeedOnly is the per-wave union —
// across the full StageBuffer × Workers pipelining matrix, under both a
// recovering schedule (every URL fails twice, retries save everything)
// and an exhausting one (every URL fails three times, every operation
// gives up and degrades to feed-only). If a pipelined interleaving ever
// double-counted or dropped a wave's share, the sums would disagree.
func TestFetchReportWaveMergeMath(t *testing.T) {
	ds := marketplace(t)
	model, err := Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	schedules := []struct {
		name   string
		faults FaultSchedule
	}{
		{"recovers", FailFirstFaults(2)}, // 2 failures < 3 attempts: all recover
		{"exhausts", FailFirstFaults(3)}, // 3 failures = 3 attempts: all give up
	}
	for _, sched := range schedules {
		for _, sb := range []int{-1, 0, 1, 4} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/stagebuffer=%d/workers=%d", sched.name, sb, workers)
				t.Run(name, func(t *testing.T) {
					cfg := Config{Workers: workers, StageBuffer: sb, Fetch: recoveryPolicy()}
					sys := NewSystem(ds.Catalog, model, WithConfig(cfg))
					faulty := NewFaultyFetcher(MapFetcher(ds.Pages), sched.faults, NewFakeFetchClock())
					perWave, final := runStream(t, sys, contiguousWaves(ds.IncomingOffers, 4), faulty, StreamOptions{})

					var sum FetchCounters
					var feedOnly []string
					for _, r := range perWave {
						if r.Err != nil {
							t.Fatalf("wave %d failed: %v", r.Wave, r.Err)
						}
						sum.Attempted += r.Fetch.Attempted
						sum.Attempts += r.Fetch.Attempts
						sum.Retried += r.Fetch.Retried
						sum.Recovered += r.Fetch.Recovered
						sum.GaveUp += r.Fetch.GaveUp
						sum.BreakerRejected += r.Fetch.BreakerRejected
						feedOnly = append(feedOnly, r.Fetch.FeedOnly...)
					}
					if final.Fetch.Counters != sum {
						t.Errorf("final counters = %+v, per-wave sum = %+v", final.Fetch.Counters, sum)
					}
					gotFeed := append([]string(nil), final.Fetch.FeedOnly...)
					sort.Strings(gotFeed)
					sort.Strings(feedOnly)
					if len(gotFeed) != len(feedOnly) {
						t.Fatalf("final FeedOnly has %d offers, per-wave union %d", len(gotFeed), len(feedOnly))
					}
					for i := range feedOnly {
						if gotFeed[i] != feedOnly[i] {
							t.Fatalf("FeedOnly diverges at %d: final %q vs union %q", i, gotFeed[i], feedOnly[i])
						}
					}

					// The schedule fixes the totals too: every operation
					// either recovered (2 failures) or gave up (3).
					n := len(ds.IncomingOffers)
					want := FetchCounters{Attempted: n, Attempts: 3 * n, Retried: n}
					if sched.name == "recovers" {
						want.Recovered = n
					} else {
						want.GaveUp = n
					}
					if sum != want {
						t.Errorf("schedule accounting: sum = %+v, want %+v", sum, want)
					}
					if wantFeed := sched.name == "exhausts"; (len(feedOnly) == n) != wantFeed {
						t.Errorf("FeedOnly carries %d offers, degraded run = %v", len(feedOnly), wantFeed)
					}
				})
			}
		}
	}
}
