package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prodsynth/internal/catalog"
)

// testCategories returns the fixed taxonomy the tests append into.
func testCategories() []catalog.Category {
	return []catalog.Category{
		{
			ID: "c-tv", Name: "Televisions", TopLevel: "Electronics",
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: "Brand", Kind: catalog.KindCategorical},
				{Name: "Screen Size", Kind: catalog.KindNumeric, Unit: "in"},
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		},
		{
			ID: "c-hdd", Name: "Hard Drives", TopLevel: "Electronics",
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: "Brand", Kind: catalog.KindCategorical},
				{Name: "Capacity", Kind: catalog.KindNumeric, Unit: "GB"},
				{Name: catalog.AttrMPN, Kind: catalog.KindIdentifier},
			}},
		},
	}
}

// testProduct builds the i-th deterministic product; even i land in
// c-tv, odd in c-hdd. Every fourth product reuses an earlier product's
// key so shadowed (non-owning) keys are part of every test corpus.
func testProduct(i int) catalog.Product {
	if i%2 == 0 {
		key := fmt.Sprintf("0%08d", i)
		if i%4 == 2 && i > 2 {
			key = fmt.Sprintf("0%08d", i-4)
		}
		return catalog.Product{
			ID: fmt.Sprintf("tv-%04d", i), CategoryID: "c-tv",
			Spec: catalog.Spec{
				{Name: "Brand", Value: fmt.Sprintf("Brand%d", i%5)},
				{Name: "Screen Size", Value: fmt.Sprintf("%d in", 30+i%30)},
				{Name: catalog.AttrUPC, Value: key},
			},
		}
	}
	return catalog.Product{
		ID: fmt.Sprintf("hdd-%04d", i), CategoryID: "c-hdd",
		Spec: catalog.Spec{
			{Name: "Brand", Value: fmt.Sprintf("Maker%d", i%3)},
			{Name: "Capacity", Value: fmt.Sprintf("%d GB", 250*(1+i%8))},
			{Name: catalog.AttrMPN, Value: fmt.Sprintf("MPN-%05d", i)},
		},
	}
}

// seedStore appends the categories and n products to a store.
func seedStore(t *testing.T, st *catalog.Store, n int) {
	t.Helper()
	for _, c := range testCategories() {
		if err := st.AddCategory(c); err != nil && !errors.Is(err, catalog.ErrDuplicateCategory) {
			t.Fatalf("AddCategory: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := st.AddProductOutcome(testProduct(i)); err != nil {
			t.Fatalf("AddProduct %d: %v", i, err)
		}
	}
}

// referenceBytes is the EncodeStore image of a fresh in-memory store
// after n appends — the ground truth every recovery must reproduce.
func referenceBytes(t *testing.T, n int) []byte {
	t.Helper()
	st := catalog.NewStore()
	seedStore(t, st, n)
	return storeBytes(t, st)
}

func storeBytes(t *testing.T, st *catalog.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := catalog.EncodeStore(&buf, st); err != nil {
		t.Fatalf("EncodeStore: %v", err)
	}
	return buf.Bytes()
}

func TestOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 25)
	if s := m.Stats(); s.LogDepthRecords != 27 { // 2 categories + 25 products
		t.Fatalf("log depth = %d, want 27", s.LogDepthRecords)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if got, want := storeBytes(t, m2.Store()), referenceBytes(t, 25); !bytes.Equal(got, want) {
		t.Fatalf("recovered store differs from reference (%d vs %d bytes)", len(got), len(want))
	}
	s := m2.Stats()
	if s.Recovery.ReplayedRecords != 27 {
		t.Errorf("ReplayedRecords = %d, want 27", s.Recovery.ReplayedRecords)
	}
	if s.Recovery.SnapshotEpoch != 0 || s.Recovery.SnapshotProducts != 0 {
		t.Errorf("unexpected snapshot recovery: %+v", s.Recovery)
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 10)
	if err := m.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s := m.Stats(); s.Epoch != 1 || s.Compactions != 1 || s.LogDepthRecords != 0 {
		t.Fatalf("post-compact stats: %+v", s)
	}
	// Appends after compaction land in the retained log tail.
	for i := 10; i < 20; i++ {
		if _, err := m.Store().AddProductOutcome(testProduct(i)); err != nil {
			t.Fatalf("AddProduct %d: %v", i, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if got, want := storeBytes(t, m2.Store()), referenceBytes(t, 20); !bytes.Equal(got, want) {
		t.Fatal("recovered store differs from reference after compact + tail")
	}
	s := m2.Stats()
	if s.Recovery.SnapshotEpoch != 1 {
		t.Errorf("SnapshotEpoch = %d, want 1", s.Recovery.SnapshotEpoch)
	}
	if s.Recovery.SnapshotProducts != 10 {
		t.Errorf("SnapshotProducts = %d, want 10", s.Recovery.SnapshotProducts)
	}
	if s.Recovery.ReplayedRecords != 10 {
		t.Errorf("ReplayedRecords = %d, want 10 (the tail)", s.Recovery.ReplayedRecords)
	}
}

func TestShardCountMayChangeAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 12)
	if err := m.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	m.Close()

	m2, err := Open(dir, Options{Shards: 7})
	if err != nil {
		t.Fatalf("reopen with different shard count: %v", err)
	}
	defer m2.Close()
	if m2.Store().NumShards() != 7 {
		t.Fatalf("NumShards = %d, want 7", m2.Store().NumShards())
	}
	if got, want := storeBytes(t, m2.Store()), referenceBytes(t, 12); !bytes.Equal(got, want) {
		t.Fatal("snapshot bytes changed across shard-count change")
	}
}

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 30)
	m.Close()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(seqs))
	}
	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if got, want := storeBytes(t, m2.Store()), referenceBytes(t, 30); !bytes.Equal(got, want) {
		t.Fatal("recovered store differs after multi-segment replay")
	}
	if s := m2.Stats(); s.Recovery.Segments < 3 {
		t.Errorf("Recovery.Segments = %d, want >= 3", s.Recovery.Segments)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 8)
	m.Close()

	// Tear the last segment by hand: append half of a framed record.
	seqs, _ := listSegments(dir)
	last := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	torn := frameRecord(encodeProduct(99, false, testProduct(99)))
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer m2.Close()
	if got, want := storeBytes(t, m2.Store()), referenceBytes(t, 8); !bytes.Equal(got, want) {
		t.Fatal("recovered store differs after torn-tail truncation")
	}
	if s := m2.Stats(); s.Recovery.TruncatedBytes != int64(len(torn)/2) {
		t.Errorf("TruncatedBytes = %d, want %d", s.Recovery.TruncatedBytes, len(torn)/2)
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 8)
	m.Close()

	// Flip one payload byte in the middle of the segment: checksum
	// fails, valid records follow, so this must NOT pass as a torn tail.
	seqs, _ := listSegments(dir)
	var path string
	for _, seq := range seqs {
		p := filepath.Join(dir, segName(seq))
		if fi, err := os.Stat(p); err == nil && fi.Size() > 0 {
			path = p
			break
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a mid-log corruption")
	} else if !strings.Contains(err.Error(), "not a torn tail") {
		t.Fatalf("error does not identify the corruption: %v", err)
	}
}

func TestImportSnapshotSeedsFirstEpoch(t *testing.T) {
	src := catalog.NewStore()
	seedStore(t, src, 15)

	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.ImportSnapshot(src.Snapshot()); err != nil {
		t.Fatalf("ImportSnapshot: %v", err)
	}
	if s := m.Stats(); s.Epoch != 1 {
		t.Fatalf("import did not compact: %+v", s)
	}
	if err := m.ImportSnapshot(src.Snapshot()); err == nil {
		t.Fatal("ImportSnapshot into non-empty store did not fail")
	}
	m.Close()

	m2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	if got, want := storeBytes(t, m2.Store()), storeBytes(t, src); !bytes.Equal(got, want) {
		t.Fatal("recovered store differs from imported snapshot")
	}
	if s := m2.Stats(); s.Recovery.SnapshotEpoch != 1 || s.Recovery.ReplayedRecords != 0 {
		t.Errorf("import recovery should be snapshot-only: %+v", s.Recovery)
	}
}

func TestCompactDeletesObsoleteFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seedStore(t, m.Store(), 6)
	if err := m.Compact(); err != nil {
		t.Fatalf("Compact 1: %v", err)
	}
	for i := 6; i < 12; i++ {
		if _, err := m.Store().AddProductOutcome(testProduct(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(); err != nil {
		t.Fatalf("Compact 2: %v", err)
	}
	m.Close()

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.Contains(name, "-1.psct") {
			t.Errorf("epoch-1 snapshot %s not deleted by compaction", name)
		}
		if strings.HasSuffix(name, ".tmp") {
			t.Errorf("temp file %s left behind", name)
		}
	}
	seqs, _ := listSegments(dir)
	man, ok, err := readManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest: %v ok=%v", err, ok)
	}
	if man.Epoch != 2 {
		t.Errorf("manifest epoch = %d, want 2", man.Epoch)
	}
	for _, seq := range seqs {
		if seq < man.FirstSeq {
			t.Errorf("segment %d below manifest FirstSeq %d not deleted", seq, man.FirstSeq)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, c := range testCategories() {
		rec, err := decodeRecord(encodeCategory(c))
		if err != nil {
			t.Fatalf("decode category: %v", err)
		}
		if rec.Category == nil || rec.Category.ID != c.ID || len(rec.Category.Schema.Attributes) != len(c.Schema.Attributes) {
			t.Fatalf("category round-trip mismatch: %+v", rec.Category)
		}
	}
	p := testProduct(3)
	rec, err := decodeRecord(encodeProduct(7, true, p))
	if err != nil {
		t.Fatalf("decode product: %v", err)
	}
	if rec.Product == nil || rec.Product.ID != p.ID || rec.Version != 7 || !rec.OwnsKey {
		t.Fatalf("product round-trip mismatch: %+v", rec)
	}
	if _, err := decodeRecord([]byte{9, 0, 0, 0}); err == nil {
		t.Fatal("unknown record tag accepted")
	}
}
