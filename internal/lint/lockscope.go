package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// lockScopePackages are where shard mutexes live: the sharded catalog
// backend and the sharded match registry. Their critical sections are the
// hottest locks in the repo — a fetch, channel wait, or fsync inside one
// stalls every writer on the shard.
var lockScopePackages = map[string]bool{
	"prodsynth/internal/catalog": true,
	"prodsynth/internal/match":   true,
}

// LockScope flags blocking or re-entrant work inside a mutex critical
// section: channel operations, goroutine spawns, direct file I/O (os.*,
// Sync), fetcher calls, and invocations of function-typed parameters
// (user callbacks). The one documented exception is the catalog.Observer
// hook — Observe* method calls are the WAL's commit point and run inside
// the shard critical section by design.
//
// The pass is per-function and position-based: a region counts as locked
// from an x.Lock()/x.RLock() call to the matching same-receiver unlock
// (or to the function's end for deferred unlocks). Helpers that run with
// a caller-held lock (the *Locked naming convention) are outside its
// reach — the convention in their name is the contract the caller's
// flagged region enforces.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "no channel ops, I/O, fetcher calls, or user callbacks while a shard mutex is held",
	Run:  runLockScope,
}

func runLockScope(pass *Pass) {
	if !lockScopePackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockScope(pass, f, fd)
		}
	}
}

// lockEvent is one mutex transition in source order.
type lockEvent struct {
	pos    token.Pos
	recv   string // printed receiver, e.g. "sh.mu"
	lock   bool
	defers bool
}

func checkLockScope(pass *Pass, f *File, fd *ast.FuncDecl) {
	var events []lockEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred unlock holds the lock to function end. A deferred
			// func literal containing unlocks (the multi-shard snapshot
			// pattern) counts the same way.
			ast.Inspect(n.Call.Fun, func(inner ast.Node) bool {
				if call, ok := inner.(*ast.CallExpr); ok {
					if recv, op := mutexOp(call); op == "Unlock" || op == "RUnlock" {
						events = append(events, lockEvent{pos: n.Pos(), recv: recv, defers: true})
					}
				}
				return true
			})
			if recv, op := mutexOp(n.Call); op == "Unlock" || op == "RUnlock" {
				events = append(events, lockEvent{pos: n.Pos(), recv: recv, defers: true})
			}
			return false
		case *ast.CallExpr:
			recv, op := mutexOp(n)
			switch op {
			case "Lock", "RLock":
				events = append(events, lockEvent{pos: n.Pos(), recv: recv, lock: true})
			case "Unlock", "RUnlock":
				events = append(events, lockEvent{pos: n.Pos(), recv: recv})
			}
		}
		return true
	})
	if len(events) == 0 {
		return
	}

	// Build held intervals per receiver: Lock opens at its position,
	// the next same-receiver unlock closes it (deferred unlocks close at
	// function end). Branch-dependent unlocks make this an
	// under-approximation — an early conditional unlock ends the region
	// for the straight-line reading — which keeps the pass free of false
	// positives at the cost of missing some held code.
	type interval struct{ from, to token.Pos }
	var held []interval
	end := fd.End()
	open := map[string]token.Pos{}
	deferred := map[string]bool{}
	for _, ev := range events {
		switch {
		case ev.lock:
			if _, ok := open[ev.recv]; !ok {
				open[ev.recv] = ev.pos
			}
		case ev.defers:
			deferred[ev.recv] = true
		default:
			if from, ok := open[ev.recv]; ok && !deferred[ev.recv] {
				held = append(held, interval{from, ev.pos})
				delete(open, ev.recv)
			}
		}
	}
	for _, from := range open {
		held = append(held, interval{from, end})
	}
	if len(held) == 0 {
		return
	}
	inHeld := func(pos token.Pos) bool {
		for _, iv := range held {
			if pos > iv.from && pos < iv.to {
				return true
			}
		}
		return false
	}

	funcParams := funcTypedParams(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || !inHeld(n.Pos()) {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine spawned while a mutex is held in %s", fd.Name.Name)
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while a mutex is held in %s", fd.Name.Name)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select while a mutex is held in %s", fd.Name.Name)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while a mutex is held in %s", fd.Name.Name)
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if strings.HasPrefix(name, "Observe") {
					return true // the documented catalog.Observer commit hook
				}
				if id, ok := fun.X.(*ast.Ident); ok && f.Imports[id.Name] == "os" {
					pass.Reportf(n.Pos(), "os.%s while a mutex is held in %s: no file I/O inside a shard critical section", name, fd.Name.Name)
					return true
				}
				switch name {
				case "Sync", "Fsync":
					pass.Reportf(n.Pos(), "%s() while a mutex is held in %s: no fsync inside a shard critical section", name, fd.Name.Name)
				case "Fetch", "FetchContext":
					pass.Reportf(n.Pos(), "fetcher call %s while a mutex is held in %s", name, fd.Name.Name)
				}
			case *ast.Ident:
				if funcParams[fun.Name] {
					pass.Reportf(n.Pos(), "call to function-typed parameter %q while a mutex is held in %s: user callbacks must not run inside a shard critical section", fun.Name, fd.Name.Name)
				}
			}
		}
		return true
	})
}

// mutexOp decodes a call of the form <expr>.mu-ish.Lock/RLock/Unlock/
// RUnlock, returning the printed receiver and the operation. Only
// receivers that look like mutexes count: a terminal selector (or
// identifier) containing "mu" — sh.mu, d.mu, r.lock would not match, but
// the repo's convention is mu/­muFoo fields.
func mutexOp(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return "", ""
	}
	recv := exprString(sel.X)
	last := recv
	if i := strings.LastIndexByte(recv, '.'); i >= 0 {
		last = recv[i+1:]
	}
	if !strings.Contains(strings.ToLower(last), "mu") {
		return "", ""
	}
	return recv, op
}

// funcTypedParams returns the names of fd's parameters with function
// types — the "user callback" shape lockscope polices.
func funcTypedParams(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if _, ok := field.Type.(*ast.FuncType); !ok {
			continue
		}
		for _, name := range field.Names {
			out[name.Name] = true
		}
	}
	return out
}

// exprString prints a dotted identifier chain; other shapes collapse to
// a stable placeholder so indexed receivers (b.shards[i].mu) still pair
// their Lock with their Unlock textually.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[i]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	default:
		return "?"
	}
}
