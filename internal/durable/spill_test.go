package durable

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/offer"
)

func sampleSpilled(ord int) cluster.Spilled {
	return cluster.Spilled{
		Ord:      ord,
		Keys:     []string{"UPC=111", "Model Part Number=ab1"},
		LastWave: 7 + ord,
		CatVersions: map[string]uint64{
			"tv": 2,
			"hd": uint64(ord),
		},
		Members: []cluster.SpillMember{
			{Seq: 5, Offer: offer.Offer{
				ID: "o1", Merchant: "acme", CategoryID: "tv",
				Title: "Plasma 42\"", PriceCents: 49999,
				URL: "http://x/1", ImageURL: "http://x/1.jpg",
				Spec: catalog.Spec{
					{Name: catalog.AttrUPC, Value: "111"},
					{Name: "Brand", Value: "X"},
				},
			}},
			{Seq: 9, Offer: offer.Offer{
				ID: "o2", CategoryID: "hd", PriceCents: -1,
			}},
		},
	}
}

// TestSpilledRoundTrip pins the spill record encoding: encode + decode is
// the identity on every field.
func TestSpilledRoundTrip(t *testing.T) {
	want := sampleSpilled(3)
	got, err := decodeSpilled(encodeSpilled(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %#v\nwant %#v", got, want)
	}

	// Empty cluster round-trips too (nil slices stay nil).
	empty := cluster.Spilled{Ord: 0}
	got, err = decodeSpilled(encodeSpilled(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Fatalf("empty round trip: got %#v", got)
	}
}

// TestSpilledDecodeRejectsCorruption flips each payload byte in turn and
// requires decode to either fail with ErrBadSpill or produce a different
// value — never panic.
func TestSpilledDecodeRejectsCorruption(t *testing.T) {
	payload := encodeSpilled(sampleSpilled(1))
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0xff
		sp, err := decodeSpilled(mut)
		if err == nil && reflect.DeepEqual(sp, sampleSpilled(1)) {
			t.Errorf("byte %d: corruption decoded to the original value", i)
		}
		if err != nil && !errors.Is(err, ErrBadSpill) {
			t.Errorf("byte %d: error %v not wrapped in ErrBadSpill", i, err)
		}
	}

	if _, err := decodeSpilled(payload[:len(payload)-1]); !errors.Is(err, ErrBadSpill) {
		t.Errorf("truncated payload: err = %v, want ErrBadSpill", err)
	}
}

// TestFileSpillStore drives the file-backed SpillStore through the whole
// contract: spill, lookup, revive (with index cleanup), All ordering,
// double-revive rejection, and scratch-file removal at Close.
func TestFileSpillStore(t *testing.T) {
	dir := t.TempDir()
	factory := SpillDir{Dir: filepath.Join(dir, "spill")}
	st, err := factory.NewSpill()
	if err != nil {
		t.Fatal(err)
	}

	sp1, sp2 := sampleSpilled(1), sampleSpilled(2)
	sp2.Keys = []string{"UPC=222"}
	if err := st.Spill(sp1); err != nil {
		t.Fatal(err)
	}
	if err := st.Spill(sp2); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}

	all, err := st.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || !reflect.DeepEqual(all[0], sp1) || !reflect.DeepEqual(all[1], sp2) {
		t.Fatalf("All() mismatch: %#v", all)
	}

	if _, ok := st.Lookup("nope"); ok {
		t.Error("Lookup(nope) found something")
	}
	ref, ok := st.Lookup("UPC=111")
	if !ok {
		t.Fatal("Lookup(UPC=111) missed")
	}
	got, err := st.Revive(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp1) {
		t.Fatalf("Revive:\n got %#v\nwant %#v", got, sp1)
	}
	if st.Len() != 1 {
		t.Fatalf("Len after revive = %d, want 1", st.Len())
	}
	for _, k := range sp1.Keys {
		if _, ok := st.Lookup(k); ok {
			t.Errorf("key %q still indexed after revive", k)
		}
	}
	if _, err := st.Revive(ref); err == nil {
		t.Error("second Revive of the same ref succeeded")
	}

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(factory.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("spill dir not empty after Close: %v", left)
	}
}
