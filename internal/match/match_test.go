package match

import (
	"fmt"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

func testStore(t *testing.T) *catalog.Store {
	t.Helper()
	st := catalog.NewStore()
	cat := catalog.Category{
		ID: "hd", Name: "Hard Drives", TopLevel: "Computing",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Brand"}, {Name: "Model"},
			{Name: catalog.AttrMPN, Kind: catalog.KindIdentifier},
			{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
		}},
	}
	if err := st.AddCategory(cat); err != nil {
		t.Fatal(err)
	}
	cam := cat
	cam.ID = "cam"
	cam.Name = "Cameras"
	if err := st.AddCategory(cam); err != nil {
		t.Fatal(err)
	}
	add := func(id, categoryID, brand, model, mpn, upc string) {
		t.Helper()
		err := st.AddProduct(catalog.Product{
			ID: id, CategoryID: categoryID,
			Spec: catalog.Spec{
				{Name: "Brand", Value: brand},
				{Name: "Model", Value: model},
				{Name: catalog.AttrMPN, Value: mpn},
				{Name: catalog.AttrUPC, Value: upc},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	add("p-barracuda", "hd", "Seagate", "Barracuda 7200.10", "ST3250", "0001")
	add("p-raptor", "hd", "Western Digital", "Raptor X", "WD1500", "0002")
	add("p-eos", "cam", "Canon", "EOS 40D", "EOS40D", "0003")
	return st
}

func TestMatcherUPC(t *testing.T) {
	st := testStore(t)
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "hd", Title: "some drive",
			Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "0002"}}},
	})
	ms := Matcher{}.Run(st, offers)
	got, ok := ms.ProductFor("o1")
	if !ok || got.ProductID != "p-raptor" || got.Source != "upc" || got.Score != 1 {
		t.Errorf("match = %+v, %v", got, ok)
	}
}

func TestMatcherUPCWrongCategoryRejected(t *testing.T) {
	st := testStore(t)
	// Offer categorized as camera, but UPC belongs to a hard drive:
	// identifier matches must stay within the offer's category.
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "cam", Title: "zzz qqq",
			Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "0001"}}},
	})
	ms := Matcher{DisableTitleMatching: true}.Run(st, offers)
	if _, ok := ms.ProductFor("o1"); ok {
		t.Error("cross-category UPC match should be rejected")
	}
}

func TestMatcherTitle(t *testing.T) {
	st := testStore(t)
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "hd",
			Title: "Seagate Barracuda 7200.10 HDD"},
		{ID: "o2", Merchant: "m", CategoryID: "hd",
			Title: "Completely unrelated gadget xyz"},
	})
	ms := Matcher{}.Run(st, offers)
	got, ok := ms.ProductFor("o1")
	if !ok || got.ProductID != "p-barracuda" || got.Source != "title" {
		t.Errorf("match = %+v, %v", got, ok)
	}
	if _, ok := ms.ProductFor("o2"); ok {
		t.Error("unrelated title should not match")
	}
}

func TestMatcherDisableTitle(t *testing.T) {
	st := testStore(t)
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "hd",
			Title: "Seagate Barracuda 7200.10 HDD"},
	})
	ms := Matcher{DisableTitleMatching: true}.Run(st, offers)
	if ms.Len() != 0 {
		t.Errorf("Len = %d, want 0", ms.Len())
	}
}

func TestMatchSetIndexes(t *testing.T) {
	ms := NewMatchSet([]Match{
		{OfferID: "o1", ProductID: "p1"},
		{OfferID: "o2", ProductID: "p1"},
		{OfferID: "o3", ProductID: "p2"},
		{OfferID: "o1", ProductID: "p9"}, // duplicate offer: dropped
	})
	if ms.Len() != 3 {
		t.Errorf("Len = %d", ms.Len())
	}
	if got := ms.OffersFor("p1"); len(got) != 2 || got[0] != "o1" || got[1] != "o2" {
		t.Errorf("OffersFor(p1) = %v", got)
	}
	m, ok := ms.ProductFor("o1")
	if !ok || m.ProductID != "p1" {
		t.Errorf("ProductFor(o1) = %+v (duplicate should have been dropped)", m)
	}
	if got := ms.OffersFor("missing"); len(got) != 0 {
		t.Errorf("OffersFor(missing) = %v", got)
	}
}

func TestMatcherParallelConsistency(t *testing.T) {
	st := testStore(t)
	var offs []offer.Offer
	for i := 0; i < 200; i++ {
		o := offer.Offer{
			ID:       "o" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Merchant: "m", CategoryID: "hd",
			Title: "Western Digital Raptor X",
		}
		offs = append(offs, o)
	}
	set := offer.NewSet(offs)
	a := Matcher{Workers: 1}.Run(st, set)
	b := Matcher{Workers: 8}.Run(st, set)
	if a.Len() != b.Len() {
		t.Errorf("worker counts disagree: %d vs %d", a.Len(), b.Len())
	}
	for _, m := range a.All() {
		bm, ok := b.ProductFor(m.OfferID)
		if !ok || bm.ProductID != m.ProductID {
			t.Errorf("mismatch for %s", m.OfferID)
		}
	}
}

func BenchmarkMatcherTitle(b *testing.B) {
	st := catalog.NewStore()
	cat := catalog.Category{ID: "hd", Schema: catalog.Schema{Attributes: []catalog.Attribute{
		{Name: "Brand"}, {Name: "Model"}, {Name: catalog.AttrMPN},
	}}}
	if err := st.AddCategory(cat); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := "p" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
		if err := st.AddProduct(catalog.Product{ID: id, CategoryID: "hd",
			Spec: catalog.Spec{{Name: "Model", Value: "Model " + id}, {Name: catalog.AttrMPN, Value: id}}}); err != nil {
			b.Fatal(err)
		}
	}
	var offs []offer.Offer
	for i := 0; i < 1000; i++ {
		offs = append(offs, offer.Offer{ID: string(rune(i)), CategoryID: "hd", Merchant: "m",
			Title: "Model pab gadget"})
	}
	set := offer.NewSet(offs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matcher{Workers: 4}.Run(st, set)
	}
}

func TestTitleIndexBasic(t *testing.T) {
	st := testStore(t)
	idx := NewTitleIndex(st.ProductsInCategory("hd"))
	if idx.Len() != 2 {
		t.Fatalf("Len = %d", idx.Len())
	}
	pid, score := idx.Match("Seagate Barracuda 7200.10 hard drive")
	if pid != "p-barracuda" || score <= 0.5 {
		t.Errorf("Match = %q, %.3f", pid, score)
	}
	pid, score = idx.Match("Western Digital Raptor X")
	if pid != "p-raptor" {
		t.Errorf("Match = %q, %.3f", pid, score)
	}
}

func TestTitleIndexUnknownTokensPenalized(t *testing.T) {
	st := testStore(t)
	idx := NewTitleIndex(st.ProductsInCategory("hd"))
	// A title of mostly-unknown tokens must score low even if one token
	// ("Seagate") is indexed.
	_, score := idx.Match("Seagate zzz qqq www vvv uuu ttt")
	if score > 0.5 {
		t.Errorf("unknown-heavy title scored %.3f", score)
	}
}

func TestTitleIndexRareTokensDominate(t *testing.T) {
	// Ten same-brand products with distinct part numbers: a title pairing
	// a rare token (part number) with an unknown word must outscore one
	// pairing a common token (brand) with an unknown word, because IDF
	// weights the covered mass.
	var products []catalog.Product
	for i := 0; i < 10; i++ {
		products = append(products, catalog.Product{
			ID: fmt.Sprintf("p%d", i),
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Seagate"},
				{Name: catalog.AttrMPN, Value: fmt.Sprintf("PARTNUM%d", i)},
			},
		})
	}
	idx := NewTitleIndex(products)
	_, partScore := idx.Match("PARTNUM3 qqqzzz")
	_, brandScore := idx.Match("Seagate qqqzzz")
	if partScore <= brandScore {
		t.Errorf("part number score %.3f should beat brand score %.3f", partScore, brandScore)
	}
}

func TestTitleIndexEmpty(t *testing.T) {
	idx := NewTitleIndex(nil)
	if pid, score := idx.Match("anything"); pid != "" || score != 0 {
		t.Errorf("empty index matched %q %.3f", pid, score)
	}
	full := NewTitleIndex([]catalog.Product{{ID: "p", Spec: catalog.Spec{{Name: "A", Value: "x"}}}})
	if pid, _ := full.Match(""); pid != "" {
		t.Errorf("empty title matched %q", pid)
	}
}

func TestIndexedMatcherAgreesOnClearCases(t *testing.T) {
	st := testStore(t)
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "hd", Title: "Seagate Barracuda 7200.10 ST3250"},
		{ID: "o2", Merchant: "m", CategoryID: "cam", Title: "Canon EOS 40D EOS40D"},
		{ID: "o3", Merchant: "m", CategoryID: "hd", Title: "nothing relevant whatsoever xyz"},
	})
	linear := Matcher{LinearScan: true}.Run(st, offers)
	indexed := Matcher{}.Run(st, offers)
	for _, oid := range []string{"o1", "o2"} {
		lm, lok := linear.ProductFor(oid)
		im, iok := indexed.ProductFor(oid)
		if !lok || !iok || lm.ProductID != im.ProductID {
			t.Errorf("%s: linear %+v(%v) vs indexed %+v(%v)", oid, lm, lok, im, iok)
		}
	}
	if _, ok := indexed.ProductFor("o3"); ok {
		t.Error("indexed matcher matched an irrelevant title")
	}
}

func BenchmarkTitleIndexMatch(b *testing.B) {
	st := catalog.NewStore()
	cat := catalog.Category{ID: "hd", Schema: catalog.Schema{Attributes: []catalog.Attribute{
		{Name: "Brand"}, {Name: "Model"}, {Name: catalog.AttrMPN},
	}}}
	if err := st.AddCategory(cat); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("p%d", i)
		if err := st.AddProduct(catalog.Product{ID: id, CategoryID: "hd",
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Seagate"},
				{Name: "Model", Value: fmt.Sprintf("Model %d", i)},
				{Name: catalog.AttrMPN, Value: fmt.Sprintf("MPN%07d", i)},
			}}); err != nil {
			b.Fatal(err)
		}
	}
	idx := NewTitleIndex(st.ProductsInCategory("hd"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Match("Seagate Model 2500 MPN0002500 hard drive")
	}
}
