package fusion_test

import (
	"fmt"

	"prodsynth/internal/fusion"
)

// ExampleCentroid reproduces Appendix A of the paper: three offers describe
// the operating system as "Windows Vista", "Microsoft Windows Vista" and
// "Microsoft Vista". Exact majority voting cannot break the three-way tie;
// the centroid generalization picks the value closest to the term-vector
// centroid.
func ExampleCentroid() {
	values := []string{
		"Windows Vista",
		"Microsoft Windows Vista",
		"Microsoft Vista",
	}
	fmt.Println(fusion.Centroid{}.Fuse(values))
	// Output:
	// Microsoft Windows Vista
}

// ExampleMajorityVote shows the single-token case where plain majority
// voting is the right tool (Appendix A's Memory Capacity example).
func ExampleMajorityVote() {
	values := []string{"1024", "1024", "1024", "1024", "2048"}
	fmt.Println(fusion.MajorityVote{}.Fuse(values))
	// Output:
	// 1024
}
