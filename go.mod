module prodsynth

go 1.24
