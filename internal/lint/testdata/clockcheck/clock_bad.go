package durable

import (
	"math/rand" // want "imports math/rand"
	"time"
)

// recoverLog is the pre-fix manager.go shape: recovery duration measured
// straight off the wall clock, so tests cannot pin it.
func recoverLog() time.Duration {
	start := time.Now() // want "direct time.Now"
	_ = rand.Int()
	return time.Since(start) // want "direct time.Since"
}
