package experiments

import (
	"context"
	"fmt"
	"io"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/eval"
	"prodsynth/internal/extract"
)

// The ablations below probe the design choices DESIGN.md calls out, beyond
// the paper's own Figures 6-7: how much each of the six features
// contributes, whether the §7 name-feature extension helps under automatic
// labeling (it does not — see AblationNameFeature), what centroid fusion
// buys over exact majority voting, how the clustering key set affects
// product formation, and what the bullet-list extractor (the paper's
// acknowledged coverage gap) adds.

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Name string
	// Cov90 and Cov80 are exact coverages at precision 0.9 / 0.8 for
	// correspondence ablations; Metric1/Metric2 carry experiment-specific
	// values for pipeline ablations.
	Cov90, Cov80     int
	Metric1, Metric2 float64
}

// AblationDropFeature retrains the classifier with each feature zeroed in
// turn and reports correspondence quality, plus the full model as baseline.
func AblationDropFeature(ctx context.Context, e *Env) ([]AblationRow, error) {
	truth := e.Truth()
	rows := []AblationRow{{
		Name:  "all six features",
		Cov90: eval.MaxCoverageAtPrecision(e.Offline.Scored, truth, CurveOpts, 0.9),
		Cov80: eval.MaxCoverageAtPrecision(e.Offline.Scored, truth, CurveOpts, 0.8),
	}}
	for _, feat := range correspond.FeatureNames {
		dropped := e.Offline.Features.DropFeature(feat)
		model, err := correspond.Train(dropped, correspond.TrainOptions{})
		if err != nil {
			return nil, fmt.Errorf("ablation drop %s: %w", feat, err)
		}
		scored := model.ScoreAll(dropped)
		rows = append(rows, AblationRow{
			Name:  "without " + feat,
			Cov90: eval.MaxCoverageAtPrecision(scored, truth, CurveOpts, 0.9),
			Cov80: eval.MaxCoverageAtPrecision(scored, truth, CurveOpts, 0.8),
		})
	}
	return rows, nil
}

// AblationNameFeature compares the classifier with and without the lexical
// name-similarity feature (§7 future work). Under the automatic training
// set of §3.2 the name feature equals 1 on every positive example, so the
// classifier collapses toward a name matcher — this ablation quantifies the
// damage.
func AblationNameFeature(ctx context.Context, e *Env) ([]AblationRow, error) {
	truth := e.Truth()
	rows := []AblationRow{{
		Name:  "distributional features only (paper)",
		Cov90: eval.MaxCoverageAtPrecision(e.Offline.Scored, truth, CurveOpts, 0.9),
		Cov80: eval.MaxCoverageAtPrecision(e.Offline.Scored, truth, CurveOpts, 0.8),
	}}
	ft := correspond.ComputeFeatures(e.Dataset.Catalog, e.Offline.Offers, e.Offline.Matches,
		correspond.FeatureOptions{UseMatches: true, IncludeNameFeature: true})
	model, err := correspond.Train(ft, correspond.TrainOptions{})
	if err != nil {
		return nil, err
	}
	scored := model.ScoreAll(ft)
	rows = append(rows, AblationRow{
		Name:  "with name-similarity feature",
		Cov90: eval.MaxCoverageAtPrecision(scored, truth, CurveOpts, 0.9),
		Cov80: eval.MaxCoverageAtPrecision(scored, truth, CurveOpts, 0.8),
	})
	return rows, nil
}

// AblationFusion compares value-fusion strategies on the same clusters.
// Metric1 = attribute precision, Metric2 = product precision.
func AblationFusion(ctx context.Context, e *Env) ([]AblationRow, error) {
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"centroid generalization (paper)", e.Config},
		{"exact majority voting", withFusion(e.Config, majorityVote{})},
	}
	return e.pipelineAblation(ctx, configs)
}

type majorityVote struct{}

func (majorityVote) Fuse(candidates []string) string {
	counts := make(map[string]int)
	best, bestN := "", -1
	for _, v := range candidates {
		counts[v]++
	}
	for v, n := range counts {
		if n > bestN || (n == bestN && v < best) {
			best, bestN = v, n
		}
	}
	return best
}

func withFusion(cfg core.Config, s interface{ Fuse([]string) string }) core.Config {
	cfg.Fusion = s
	return cfg
}

// AblationClusterKeys compares clustering key sets.
// Metric1 = attribute precision, Metric2 = products synthesized.
func AblationClusterKeys(ctx context.Context, e *Env) ([]AblationRow, error) {
	mk := func(keys ...string) core.Config {
		cfg := e.Config
		cfg.ClusterKeys = keys
		return cfg
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"UPC + MPN (paper)", e.Config},
		{"UPC only", mk(catalog.AttrUPC)},
		{"MPN only", mk(catalog.AttrMPN)},
	}
	return e.pipelineAblation(ctx, configs)
}

// AblationExtraction compares the paper's table-only extractor with the
// bullet-list extension. Metric1 = attribute precision, Metric2 = products.
// Both phases rerun because extraction feeds offline learning too.
func AblationExtraction(ctx context.Context, e *Env) ([]AblationRow, error) {
	bullet := e.Config
	bullet.Extraction = extract.Options{
		MaxValueLen:        extract.DefaultOptions.MaxValueLen,
		IncludeBulletLists: true,
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"tables only (paper)", e.Config},
		{"tables + bullet lists", bullet},
	}
	var rows []AblationRow
	for _, c := range configs {
		fetcher := core.MapFetcher(e.Dataset.Pages)
		off, err := core.RunOffline(ctx, e.Dataset.Catalog, e.Dataset.HistoricalOffers, fetcher, c.cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", c.name, err)
		}
		run, err := core.RunRuntime(ctx, e.Dataset.Catalog, off, e.Dataset.IncomingOffers, fetcher, c.cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", c.name, err)
		}
		rep := eval.GradeSynthesis(run.Products, e.Dataset.Truth, e.Dataset.Universe)
		rows = append(rows, AblationRow{
			Name:    c.name,
			Metric1: rep.AttributePrecision(),
			Metric2: float64(rep.Products),
		})
	}
	return rows, nil
}

// pipelineAblation reruns the runtime phase under each configuration,
// reusing the already-learned correspondences.
func (e *Env) pipelineAblation(ctx context.Context, configs []struct {
	name string
	cfg  core.Config
}) ([]AblationRow, error) {
	var rows []AblationRow
	for _, c := range configs {
		run, err := core.RunRuntime(ctx, e.Dataset.Catalog, e.Offline, e.Dataset.IncomingOffers,
			core.MapFetcher(e.Dataset.Pages), c.cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", c.name, err)
		}
		rep := eval.GradeSynthesis(run.Products, e.Dataset.Truth, e.Dataset.Universe)
		rows = append(rows, AblationRow{
			Name:    c.name,
			Metric1: rep.AttributePrecision(),
			Metric2: float64(rep.Products),
		})
	}
	return rows, nil
}

// RenderAblation writes an ablation sweep. Correspondence sweeps show
// coverage columns; pipeline sweeps show their metrics.
func RenderAblation(w io.Writer, title string, rows []AblationRow, metricNames ...string) {
	fmt.Fprintf(w, "== Ablation: %s ==\n", title)
	if len(metricNames) == 2 {
		fmt.Fprintf(w, "%-40s %-16s %s\n", "configuration", metricNames[0], metricNames[1])
		for _, r := range rows {
			fmt.Fprintf(w, "%-40s %-16.3f %.0f\n", r.Name, r.Metric1, r.Metric2)
		}
	} else {
		fmt.Fprintf(w, "%-40s %-16s %s\n", "configuration", "coverage@0.9", "coverage@0.8")
		for _, r := range rows {
			fmt.Fprintf(w, "%-40s %-16d %d\n", r.Name, r.Cov90, r.Cov80)
		}
	}
	fmt.Fprintln(w)
}
