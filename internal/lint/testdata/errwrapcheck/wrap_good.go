package snapfmt

import (
	"errors"
	"fmt"
)

var ErrBadBundle = errors.New("bad bundle")

// decodeBundle wraps: the sentinel stays matchable through the wrap.
func decodeBundle(n int) error {
	return fmt.Errorf("bundle record %d: %w", n, ErrBadBundle)
}

// annotate stringifies a plain error variable — only Err* sentinels are
// under the contract.
func annotate(err error) error {
	return fmt.Errorf("annotate: %v", err)
}
