// Package core orchestrates the end-to-end product synthesis pipeline of
// Figure 4 in the paper:
//
//	Offline Learning:
//	  historical offers → web-page attribute extraction → historical
//	  offer-to-product matching → distributional feature computation →
//	  automatic training-set construction → correspondence classifier →
//	  attribute correspondences
//
//	Run-Time Offer Processing:
//	  incoming offers → category classification (if missing) → web-page
//	  attribute extraction → schema reconciliation → clustering by key
//	  attribute → value fusion → new products
//
// The package wires the substrate packages together, parallelizes the
// per-offer stages, and reports the statistics the paper's §5.1 quotes.
//
// Concurrency model: per-category work — matching and schema
// reconciliation — fans out across a bounded worker pool (Config.Workers),
// one task per category, with results merged back in input order so output
// is identical for every worker count. Matching state is shared through
// the match package's index registry — sharded by category hash, so
// concurrent category tasks neither rebuild each other's indexes nor
// serialize on one registry lock. Clustering stays global (clusters may
// span categories when the category classifier errs on individual offers,
// §2); value fusion then fans out again, one task per cluster.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"prodsynth/internal/catalog"
	"prodsynth/internal/categorize"
	"prodsynth/internal/cluster"
	"prodsynth/internal/correspond"
	"prodsynth/internal/extract"
	"prodsynth/internal/fetch"
	"prodsynth/internal/fusion"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/pipe"
	"prodsynth/internal/reconcile"
)

// PageFetcher retrieves landing pages by URL. Production systems would
// back this with a crawler cache; tests and experiments use MapFetcher.
//
// A fetcher may additionally implement fetch.ContextPages
// (FetchContext(ctx, url)); the pipeline detects it by interface upgrade
// and threads the stage context through, so cancellation and per-attempt
// deadlines reach in-flight fetches instead of abandoning them. A plain
// Fetch is checked for cancellation before the call and allowed to
// finish once started. Fetchers that also implement fetch.CounterSource
// (fetch.Resilient does both) contribute exact per-run counters to the
// result's fetch report.
type PageFetcher interface {
	Fetch(url string) (html string, err error)
}

// MapFetcher serves pages from an in-memory map.
type MapFetcher map[string]string

// PageDoc is one landing page as it travels in page lists (dataset files,
// serving requests): a URL and its HTML body.
type PageDoc struct {
	URL  string
	HTML string
}

// ErrPageNotFound is returned by MapFetcher for unknown URLs.
var ErrPageNotFound = errors.New("core: page not found")

// ErrDuplicatePage is returned by MapFetcherFromDocs when the same URL
// appears twice with different bodies.
var ErrDuplicatePage = errors.New("core: duplicate page URL with conflicting body")

// MapFetcherFromDocs builds a MapFetcher from a page list, rejecting a URL
// that appears twice with distinct bodies instead of silently keeping the
// last one — the map literal's last-wins semantics would make synthesis
// output depend on input file or request-body ordering. Exact repeats
// (same URL, same body) are tolerated, since they are idempotent.
func MapFetcherFromDocs(docs []PageDoc) (MapFetcher, error) {
	m := make(MapFetcher, len(docs))
	for _, d := range docs {
		if prev, ok := m[d.URL]; ok && prev != d.HTML {
			return nil, fmt.Errorf("%w: %q", ErrDuplicatePage, d.URL)
		}
		m[d.URL] = d.HTML
	}
	return m, nil
}

// Fetch implements PageFetcher.
func (m MapFetcher) Fetch(url string) (string, error) {
	page, ok := m[url]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrPageNotFound, url)
	}
	return page, nil
}

// Config controls the pipeline.
type Config struct {
	// Extraction configures the web-page attribute extractor.
	Extraction extract.Options
	// Matcher configures historical offer-to-product matching. Set
	// Matcher.Registry to give the pipeline a private index cache with
	// its own sharding and LRU bound (match.NewRegistryWithOptions);
	// nil shares the process-wide default.
	Matcher match.Matcher
	// Features configures distributional feature computation.
	Features correspond.FeatureOptions
	// Train configures classifier training.
	Train correspond.TrainOptions
	// ScoreThreshold is the classifier probability above which a
	// candidate becomes a correspondence (default 0.5).
	ScoreThreshold float64
	// ClusterKeys overrides the clustering key attributes (§4 default:
	// UPC then Model Part Number).
	ClusterKeys []string
	// Fusion selects the value fusion strategy (default Centroid).
	// Fuse is called concurrently from the worker pool, one cluster per
	// call; implementations must be safe for concurrent use (stateless
	// strategies, like the provided ones, are).
	Fusion fusion.Strategy
	// Workers bounds the pipeline's worker pools (default 4): per-offer
	// extraction, the per-category fan-out for matching and
	// reconciliation, and the per-cluster fusion fan-out. It also seeds
	// Features.Workers when that is unset, and is split with the
	// matcher's per-offer parallelism unless Matcher.Workers is set
	// explicitly (see categoryMatcher). Output is identical for every
	// value.
	Workers int
	// KeepMatchedIncoming disables the runtime filter that excludes
	// incoming offers matching existing catalog products (§1: synthesis
	// targets offers that cannot be matched).
	KeepMatchedIncoming bool
	// StrictPages makes a landing-page fetch failure fatal to a run —
	// runtime (Synthesize, a batch, a stream wave) and offline (Learn)
	// alike. By default the pipeline tolerates crawl gaps — an offer
	// whose page cannot be fetched keeps its feed spec — and every
	// degraded offer is accounted in the result's fetch report, so
	// lenient mode is observable graceful degradation rather than
	// invisible data loss. Deployments that would rather fail a run (and
	// retry it) than learn or synthesize from feed specs alone set this;
	// pair it with a retrying fetcher (fetch.Policy) so a transient
	// flake does not abort a run a retry would have saved.
	StrictPages bool
	// Fetch is the resilience policy for landing-page fetches: per-attempt
	// deadlines, bounded retries with jittered backoff, a per-host circuit
	// breaker, and a concurrency gate (see fetch.Policy). The zero value
	// disables wrapping — fetch failures surface after a single attempt,
	// as before. The top-level entry points wrap the caller's PageFetcher
	// once per run (or once per stream), so breaker state and counters
	// span an entire batch sequence or wave sequence. Retries change when
	// a fetch runs, never what it returns, so output determinism is
	// unaffected; the breaker reacts to cross-offer ordering and is the
	// one knob that can make lenient-mode degradation timing-dependent
	// (see fetch.Policy's determinism note).
	Fetch fetch.Policy
	// StageBuffer is the bounded buffer depth between the streaming
	// pipeline's wave-level stages (prepare → fuse). 0, the default, is
	// an unbuffered handoff: wave n+1's prepare still overlaps wave n's
	// fuse, but prepare never runs more than one wave ahead. Positive
	// depths let prepare run that many additional waves ahead (more
	// overlap, more prepared waves held in memory). A negative value
	// disables cross-wave pipelining entirely — each wave fully fuses
	// before the next wave's prepare starts (the pre-pipelining barrier
	// execution; useful as a baseline and for strict memory bounds).
	// Output is byte-identical for every value.
	StageBuffer int
	// Spill, when non-nil, gives each streaming run's cluster memory an
	// out-of-core backing store: clusters the LRU/idle bounds would seal
	// are parked in a store the factory opens (one per stream) and
	// revived when their keys reappear, keeping bounded-memory output
	// byte-identical to unbounded. Ignored by batch synthesis, which has
	// no cross-wave memory to bound.
	Spill cluster.SpillFactory
}

func (c Config) withDefaults() Config {
	if c.Extraction == (extract.Options{}) {
		c.Extraction = extract.DefaultOptions
	}
	if c.ScoreThreshold == 0 {
		c.ScoreThreshold = 0.5
	}
	if c.Fusion == nil {
		c.Fusion = fusion.Centroid{}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Features.Workers <= 0 {
		c.Features.Workers = c.Workers
	}
	c.Features.UseMatches = true
	return c
}

// runLimited executes jobs 0..n-1 on at most workers goroutines, pulling
// from a shared counter so unbalanced jobs (a huge category next to tiny
// ones) do not leave workers idle. Jobs must write only to their own slots.
//
// Cancellation is checked between jobs: once ctx is done, workers stop
// pulling new indexes, finish the job in hand, and the call returns
// ctx.Err(). Every worker goroutine is always joined before returning, so
// a cancelled pool leaks nothing; callers must treat a non-nil error as
// "results incomplete" and discard their slots.
func runLimited(ctx context.Context, n, workers int, job func(i int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			job(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// fetchTally is the run-scoped account of extraction-stage fetch activity
// shared by the stage's workers. The fetch counters themselves come from
// the fetcher when it keeps them (fetch.CounterSource — fetch.Resilient
// does); the tally supplies what only the pipeline knows — which offers
// proceeded feed-only — plus a coarse one-attempt-per-offer counter
// fallback for plain fetchers.
type fetchTally struct {
	mu        sync.Mutex
	attempted int
	feedOnly  []string
}

// attempt counts one fetch operation started. nil-safe.
func (t *fetchTally) attempt() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attempted++
	t.mu.Unlock()
}

// degraded records an offer that proceeded on feed spec alone. nil-safe.
func (t *fetchTally) degraded(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.feedOnly = append(t.feedOnly, id)
	t.mu.Unlock()
}

// report assembles the run's fetch report: exact counter deltas when the
// fetcher accounts itself (cs non-nil, snapshotted at before), the
// tally's coarse counters otherwise. FeedOnly is sorted so the report is
// independent of worker scheduling.
func (t *fetchTally) report(cs fetch.CounterSource, before fetch.Counters) fetch.Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rep fetch.Report
	if cs != nil {
		rep.Counters = cs.FetchCounters().Sub(before)
	} else {
		rep.Counters = fetch.Counters{
			Attempted: t.attempted,
			Attempts:  t.attempted,
			GaveUp:    len(t.feedOnly),
		}
	}
	if len(t.feedOnly) > 0 {
		rep.FeedOnly = append([]string(nil), t.feedOnly...)
		sort.Strings(rep.FeedOnly)
	}
	return rep
}

// counterSnapshot returns the fetcher's counter source and its current
// snapshot when it keeps counters, (nil, zero) otherwise. Counter deltas
// are per-run-exact because the entry points run extraction stages
// serially per run (waves prepare in input order, batches sequentially)
// against the one wrapped fetcher.
func counterSnapshot(pages PageFetcher) (fetch.CounterSource, fetch.Counters) {
	if cs, ok := pages.(fetch.CounterSource); ok {
		return cs, cs.FetchCounters()
	}
	return nil, fetch.Counters{}
}

// categorySlice names one category's offers by their positions in the
// enclosing slice (ascending, so gathering preserves input order).
type categorySlice struct {
	category string
	indices  []int
}

// partitionByCategory groups offer positions by category, categories
// sorted by ID for a deterministic task order.
func partitionByCategory(offers []offer.Offer) []categorySlice {
	byCat := make(map[string][]int)
	for i, o := range offers {
		byCat[o.CategoryID] = append(byCat[o.CategoryID], i)
	}
	parts := make([]categorySlice, 0, len(byCat))
	for cat, idx := range byCat {
		parts = append(parts, categorySlice{category: cat, indices: idx})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].category < parts[j].category })
	return parts
}

// categoryMatcher is the matcher used inside per-category tasks. An
// explicitly configured Matcher.Workers is honored as-is; otherwise the
// Config.Workers budget is split between the per-category pool and the
// matcher's per-offer parallelism inside one category: with few large
// categories the matcher keeps its own workers, with many categories the
// category fan-out is the parallelism.
func categoryMatcher(cfg Config, parts int) match.Matcher {
	matcher := cfg.Matcher
	if matcher.Workers > 0 {
		return matcher
	}
	matcher.Workers = 1
	if parts == 0 {
		matcher.Workers = cfg.Workers
	} else if w := cfg.Workers / parts; w > 1 {
		matcher.Workers = w
	}
	return matcher
}

// matchPerCategory fans historical matching out across the worker pool,
// one task per category, and merges the per-category match sets back in
// offer input order — byte-for-byte the MatchSet a single serial Run over
// the whole set produces.
func matchPerCategory(ctx context.Context, store *catalog.Store, offers []offer.Offer, cfg Config) (*match.MatchSet, error) {
	parts := partitionByCategory(offers)
	matcher := categoryMatcher(cfg, len(parts))

	results := make([]match.Match, len(offers))
	found := make([]bool, len(offers))
	err := runLimited(ctx, len(parts), cfg.Workers, func(pi int) {
		part := parts[pi]
		sub := make([]offer.Offer, len(part.indices))
		for j, gi := range part.indices {
			sub[j] = offers[gi]
		}
		ms := matcher.Run(store, offer.NewSet(sub))
		for j, gi := range part.indices {
			if mt, ok := ms.ProductFor(sub[j].ID); ok {
				results[gi] = mt
				found[gi] = true
			}
		}
	})
	if err != nil {
		return nil, err
	}

	kept := make([]match.Match, 0, len(offers))
	for i := range results {
		if found[i] {
			kept = append(kept, results[i])
		}
	}
	return match.NewMatchSet(kept), nil
}

// OfflineResult is the output of the offline learning phase.
type OfflineResult struct {
	// Offers are the historical offers with extracted specs attached.
	Offers *offer.Set
	// Matches are the historical offer-to-product matches.
	Matches *match.MatchSet
	// Features is the candidate feature table.
	Features *correspond.FeatureTable
	// Model is the trained correspondence classifier.
	Model *correspond.Model
	// Scored is every candidate with its classifier score (descending).
	Scored []correspond.Scored
	// Correspondences is the selected correspondence set used by
	// schema reconciliation.
	Correspondences *correspond.Set
	// Classifier is the title→category classifier, reused at runtime.
	Classifier *categorize.Classifier
	// Stats are the §5.1-style statistics.
	Stats OfflineStats
	// Fetch accounts the phase's landing-page fetches: counts plus the
	// historical offers whose page could not be fetched and that were
	// learned from feed specs alone.
	Fetch fetch.Report
}

// OfflineStats mirrors the statistics reported in the paper's §5.1.
type OfflineStats struct {
	HistoricalOffers  int
	MatchedOffers     int
	Candidates        int
	TrainingSize      int
	TrainingPositives int
	Correspondences   int
}

// RunOffline executes the offline learning phase. Cancellation of ctx is
// observed at stage boundaries and between the worker-pool jobs inside
// each stage; on cancellation the error is ctx.Err() and every pool
// goroutine has already been joined.
//
// Config.StrictPages applies here exactly as at runtime: by default a
// historical offer whose page cannot be fetched is learned from its feed
// spec alone (and accounted in the result's Fetch report); under
// StrictPages the first fetch failure in offer input order fails the
// phase.
func RunOffline(ctx context.Context, store *catalog.Store, historical []offer.Offer, pages PageFetcher, cfg Config) (*OfflineResult, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	classifier := categorize.New()
	classifier.TrainFromCatalog(store)
	withCat := make([]offer.Offer, len(historical))
	copy(withCat, historical)
	classifier.Assign(withCat)

	cs, before := counterSnapshot(pages)
	tally := &fetchTally{}
	enriched, err := extractSpecs(ctx, withCat, pages, cfg, tally)
	if err != nil {
		return nil, err
	}
	set := offer.NewSet(enriched)

	matches, err := matchPerCategory(ctx, store, enriched, cfg)
	if err != nil {
		return nil, err
	}
	if matches.Len() == 0 {
		return nil, errors.New("core: no historical offer-to-product matches; offline learning has no signal")
	}

	ft := correspond.ComputeFeatures(store, set, matches, cfg.Features)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	model, err := correspond.Train(ft, cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("core: offline training: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scored := model.ScoreAll(ft)
	selected := correspond.Select(scored, cfg.ScoreThreshold)

	return &OfflineResult{
		Offers:          set,
		Matches:         matches,
		Features:        ft,
		Model:           model,
		Scored:          scored,
		Correspondences: selected,
		Classifier:      classifier,
		Fetch:           tally.report(cs, before),
		Stats: OfflineStats{
			HistoricalOffers:  len(historical),
			MatchedOffers:     matches.Len(),
			Candidates:        ft.Len(),
			TrainingSize:      model.TrainingSize,
			TrainingPositives: model.TrainingPositives,
			Correspondences:   selected.Len(),
		},
	}, nil
}

// OfflineFromCorrespondences wraps a previously learned correspondence set
// (e.g. loaded via correspond.ReadSet) so the runtime pipeline can run
// without repeating the offline phase. The classifier may be nil when every
// incoming offer carries a category.
func OfflineFromCorrespondences(set *correspond.Set, classifier *categorize.Classifier) *OfflineResult {
	return &OfflineResult{
		Correspondences: set,
		Classifier:      classifier,
		Stats:           OfflineStats{Correspondences: set.Len()},
	}
}

// RuntimeResult is the output of the runtime offer processing pipeline.
type RuntimeResult struct {
	// Products are the synthesized product instances.
	Products []fusion.Synthesized
	// Reconcile counts pair translation outcomes.
	Reconcile reconcile.Stats
	// Clusters summarizes the clustering step.
	Clusters cluster.Stats
	// SkippedNoKey are reconciled offers with no key attribute.
	SkippedNoKey []offer.Offer
	// ExcludedMatched counts incoming offers dropped because they match
	// an existing catalog product.
	ExcludedMatched int
	// Fetch accounts the run's landing-page fetches, including the offers
	// that proceeded feed-only (lenient mode's graceful degradation).
	Fetch fetch.Report
}

// Prepared is the output of the front half of the runtime pipeline —
// category classification, page extraction, catalog-match exclusion, and
// schema reconciliation — before any clustering. Every stage is a pure
// per-offer function of the catalog and the offline artifacts, so a
// Prepared for a subset of offers is the corresponding subset of the
// whole-run Prepared: the streaming pipeline leans on this to process
// waves incrementally and still agree with a one-shot run.
type Prepared struct {
	// Kept are the reconciled survivors (offers that matched no existing
	// catalog product), in input order, specs in catalog vocabulary.
	Kept []offer.Offer
	// Reconcile counts pair translation outcomes over Kept.
	Reconcile reconcile.Stats
	// ExcludedMatched counts incoming offers dropped because they match
	// an existing catalog product.
	ExcludedMatched int
	// Fetch accounts the wave's landing-page fetches: exact counter
	// deltas when the fetcher keeps counters (fetch.Resilient), a coarse
	// one-attempt-per-offer tally otherwise, plus the sorted IDs of the
	// offers that proceeded feed-only.
	Fetch fetch.Report
}

// PrepareIncoming runs the per-offer front half of the runtime pipeline:
// classification, extraction, match exclusion, and reconciliation. It is
// the incremental entry point RunRuntime and the streaming pipeline share,
// expressed as a drain of the composable stages in stage.go:
//
//	ClassifyStage → ExtractStage → [gather] → per-category match+reconcile
//
// Cancellation of ctx is observed at every stage pull; the error is then
// ctx.Err().
func PrepareIncoming(ctx context.Context, store *catalog.Store, offline *OfflineResult, incoming []offer.Offer, pages PageFetcher, cfg Config) (*Prepared, error) {
	cfg = cfg.withDefaults()
	if offline == nil || offline.Correspondences == nil {
		return nil, errors.New("core: offline result required")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	cs, before := counterSnapshot(pages)
	tally := &fetchTally{}
	perOffer := extractStage(pages, cfg, tally)(ClassifyStage(offline)(pipe.FromSlice(incoming)))
	enriched, err := pipe.Collect(ctx, perOffer)
	if err != nil {
		return nil, err
	}
	prep, err := matchReconcile(ctx, store, offline, enriched, cfg)
	if err != nil {
		return nil, err
	}
	prep.Fetch = tally.report(cs, before)
	return prep, nil
}

// FuseClusters drains FuseStage over the clusters: value fusion fans out
// across the worker pool, one task per cluster, results in cluster order.
// It is safe to call repeatedly on overlapping cluster snapshots: fusion
// is a pure function of each cluster's member offers, so re-fusing an
// extended cluster yields exactly what fusing it whole would have (the
// streaming pipeline's contract). A cancelled ctx returns ctx.Err() and
// no products.
func FuseClusters(ctx context.Context, clusters []cluster.Cluster, cfg Config) ([]fusion.Synthesized, error) {
	return pipe.Collect(ctx, FuseStage(cfg)(pipe.FromSlice(clusters)))
}

// RunRuntime executes the runtime pipeline over incoming offers using the
// artifacts of an offline learning run. Cancellation of ctx is observed at
// stage boundaries and between worker-pool jobs; the error is then
// ctx.Err().
func RunRuntime(ctx context.Context, store *catalog.Store, offline *OfflineResult, incoming []offer.Offer, pages PageFetcher, cfg Config) (*RuntimeResult, error) {
	cfg = cfg.withDefaults()
	prep, err := PrepareIncoming(ctx, store, offline, incoming, pages, cfg)
	if err != nil {
		return nil, err
	}
	res := &RuntimeResult{
		Reconcile:       prep.Reconcile,
		ExcludedMatched: prep.ExcludedMatched,
		Fetch:           prep.Fetch,
	}

	// Clustering is global: key values identify a product regardless of
	// the category the classifier assigned each offer, so clusters may
	// span category tasks and cannot be formed per category.
	clusters, skipped := cluster.Group(prep.Kept, cluster.Options{KeyAttrs: cfg.ClusterKeys})
	res.SkippedNoKey = skipped
	res.Clusters = cluster.Summarize(clusters, skipped)
	res.Products, err = FuseClusters(ctx, clusters, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// extractSpecs is the offline phase's bulk extraction: it fetches each
// offer's landing page and merges extracted attribute-value pairs into the
// offer spec (feed pairs win on name conflict), sharing the per-offer body
// (extractOne) with the runtime ExtractStage. Offers whose page cannot be
// fetched keep their feed spec (recorded in the tally) unless
// Config.StrictPages is set, in which case the first fetch failure in
// offer input order fails the run. Cancellation is checked between offers
// and, for a context-aware fetcher, reaches in-flight fetches; a plain
// Fetch is allowed to finish, after which the pool drains and ctx.Err()
// is returned.
func extractSpecs(ctx context.Context, offers []offer.Offer, pages PageFetcher, cfg Config, tally *fetchTally) ([]offer.Offer, error) {
	out := make([]offer.Offer, len(offers))
	var errs []error
	if cfg.StrictPages {
		errs = make([]error, len(offers))
	}
	poolErr := runLimited(ctx, len(offers), cfg.Workers, func(i int) {
		o, err := extractOne(ctx, offers[i], pages, cfg, tally)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = o
	})
	if poolErr != nil {
		return nil, poolErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
