package lint

import (
	"go/ast"
	"strings"
)

// ShimCheck polices the v1 compatibility surface: every exported function
// in the root package's compat.go carries a "Deprecated:" doc marker (so
// editors and pkg.go.dev steer callers to the v2 API), and no Deprecated:
// function lives anywhere else in the root package — deprecated shims
// have exactly one home. This replaces the old CI step that compared
// `grep -c '^func '` against `grep -c '^// Deprecated:'`.
var ShimCheck = &Analyzer{
	Name: "shimcheck",
	Doc:  "compat.go shims carry Deprecated: markers; no Deprecated: func outside compat.go",
	Run:  runShimCheck,
}

func runShimCheck(pass *Pass) {
	if pass.Pkg.Path != "prodsynth" {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		inCompat := f.Name == "compat.go"
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			deprecated := hasDeprecatedMarker(fd.Doc)
			switch {
			case inCompat && fd.Name.IsExported() && !deprecated:
				pass.Reportf(fd.Name.Pos(),
					"exported shim %s in compat.go is missing its \"Deprecated:\" doc marker", fd.Name.Name)
			case !inCompat && deprecated:
				pass.Reportf(fd.Name.Pos(),
					"Deprecated: function %s outside compat.go — v1 shims live in compat.go, nothing else is deprecated", fd.Name.Name)
			}
		}
	}
}

// hasDeprecatedMarker reports whether a doc comment contains a line
// starting with the conventional "Deprecated:" paragraph marker.
func hasDeprecatedMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "Deprecated:") {
			return true
		}
	}
	return false
}
