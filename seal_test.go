package prodsynth

import (
	"context"
	"testing"
)

// recordSeals folds one result's seal events into the id→reason map,
// failing on any duplicate ClusterID — the exactly-once contract.
func recordSeals(t *testing.T, sealed map[int]SealReason, r StreamResult) {
	t.Helper()
	for _, ev := range r.Sealed {
		if prev, dup := sealed[ev.ClusterID]; dup {
			t.Fatalf("cluster %d sealed twice: %v then %v (wave %d)", ev.ClusterID, prev, ev.Reason, r.Wave)
		}
		sealed[ev.ClusterID] = ev.Reason
	}
}

// TestClusterSealedOnClose pins the close path: with unbounded memory no
// per-wave result seals anything, and the final result's Sealed events
// align 1:1 with its merged Products — same order, same fused values,
// reason SealClose — so every product in the final result corresponds to
// exactly one seal event.
func TestClusterSealedOnClose(t *testing.T) {
	ds, sys := learned(t, Config{})
	fetcher := MapFetcher(ds.Pages)
	waves := contiguousWaves(ds.IncomingOffers, 3)
	perWave, final := runStream(t, sys, waves, fetcher, StreamOptions{})

	for _, r := range perWave {
		if len(r.Sealed) != 0 {
			t.Fatalf("wave %d sealed %d clusters with unbounded memory", r.Wave, len(r.Sealed))
		}
	}
	if len(final.Sealed) == 0 || len(final.Sealed) != len(final.Products) {
		t.Fatalf("final: %d seal events for %d products", len(final.Sealed), len(final.Products))
	}
	sealed := map[int]SealReason{}
	recordSeals(t, sealed, final)
	for i, ev := range final.Sealed {
		if ev.Reason != SealClose {
			t.Errorf("final seal %d reason = %v, want SealClose", i, ev.Reason)
		}
		if ev.Wave != final.Wave {
			t.Errorf("final seal %d wave = %d, want %d", i, ev.Wave, final.Wave)
		}
		got := productFingerprints([]Synthesized{ev.Product})[0]
		want := productFingerprints([]Synthesized{final.Products[i]})[0]
		if got != want {
			t.Errorf("final seal %d product = %s, want %s", i, got, want)
		}
	}
}

// TestClusterSealedNoMemoryNoSeals: with cluster memory disabled nothing
// is ever provisional, so nothing seals.
func TestClusterSealedNoMemoryNoSeals(t *testing.T) {
	ds, sys := learned(t, Config{})
	waves := contiguousWaves(ds.IncomingOffers, 3)
	perWave, final := runStream(t, sys, waves, MapFetcher(ds.Pages), StreamOptions{DisableClusterMemory: true})
	for _, r := range append(perWave, final) {
		if len(r.Sealed) != 0 {
			t.Fatalf("wave %d carries %d seal events with memory disabled", r.Wave, len(r.Sealed))
		}
	}
}

// TestClusterSealedLRU covers the eviction path under MaxOpenClusters:
// mid-stream results carry SealLRU events, each cluster seals exactly once
// across the whole stream, and the final result still pairs 1:1 with its
// own SealClose events.
func TestClusterSealedLRU(t *testing.T) {
	ds, sys := learned(t, Config{})
	waves := contiguousWaves(ds.IncomingOffers, 6)
	perWave, final := runStream(t, sys, waves, MapFetcher(ds.Pages), StreamOptions{MaxOpenClusters: 2})

	sealed := map[int]SealReason{}
	lru := 0
	for _, r := range perWave {
		recordSeals(t, sealed, r)
		for _, ev := range r.Sealed {
			if ev.Reason != SealLRU {
				t.Errorf("wave %d seal reason = %v, want SealLRU", r.Wave, ev.Reason)
			}
			if ev.Wave != r.Wave {
				t.Errorf("seal wave %d on result wave %d", ev.Wave, r.Wave)
			}
			lru++
		}
	}
	if lru == 0 {
		t.Fatal("MaxOpenClusters=2 over 6 waves evicted nothing")
	}
	recordSeals(t, sealed, final)
	if len(final.Sealed) != len(final.Products) {
		t.Fatalf("final: %d seal events for %d products", len(final.Sealed), len(final.Products))
	}
}

// TestClusterSealedIdle covers the wave-TTL path: with MaxIdleWaves=1,
// clusters untouched for two consecutive waves seal mid-stream with
// SealIdle, exactly once each.
func TestClusterSealedIdle(t *testing.T) {
	ds, sys := learned(t, Config{})
	waves := contiguousWaves(ds.IncomingOffers, 8)
	perWave, final := runStream(t, sys, waves, MapFetcher(ds.Pages), StreamOptions{MaxIdleWaves: 1})

	sealed := map[int]SealReason{}
	idle := 0
	for _, r := range perWave {
		recordSeals(t, sealed, r)
		for _, ev := range r.Sealed {
			if ev.Reason != SealIdle {
				t.Errorf("wave %d seal reason = %v, want SealIdle", r.Wave, ev.Reason)
			}
			idle++
		}
	}
	if idle == 0 {
		t.Fatal("MaxIdleWaves=1 over 8 waves expired nothing")
	}
	recordSeals(t, sealed, final)
}

// TestClusterSealedInvalidated covers the catalog-growth path: committing
// wave 1's products with AddToCatalog before sending wave 2 bumps the
// member categories' versions, so wave 2's result seals wave 1's clusters
// with SealInvalidated — and none of those IDs reappear later.
func TestClusterSealedInvalidated(t *testing.T) {
	ds, sys := learned(t, Config{})
	waves := contiguousWaves(ds.IncomingOffers, 2)

	in := make(chan []Offer)
	out, err := sys.SynthesizeStream(context.Background(), in, MapFetcher(ds.Pages), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in <- waves[0]
	r0 := <-out
	if r0.Err != nil || len(r0.Products) == 0 {
		t.Fatalf("wave 0: err=%v products=%d", r0.Err, len(r0.Products))
	}
	// Commit wave 0's products before wave 1 is even sent, so the version
	// bump deterministically precedes wave 1's memory pass.
	if rep := sys.AddToCatalog(r0.Products, "mid"); rep.Added == 0 {
		t.Fatalf("AddToCatalog added nothing: %+v", rep)
	}
	in <- waves[1]
	r1 := <-out
	if r1.Err != nil {
		t.Fatalf("wave 1: %v", r1.Err)
	}
	sealed := map[int]SealReason{}
	recordSeals(t, sealed, r0)
	recordSeals(t, sealed, r1)
	invalidated := 0
	for _, ev := range r1.Sealed {
		if ev.Reason == SealInvalidated {
			invalidated++
		}
	}
	if invalidated == 0 {
		t.Fatal("mid-stream catalog growth invalidated no clusters")
	}
	close(in)
	for r := range out {
		recordSeals(t, sealed, r) // exactly-once holds through the close
	}
}
