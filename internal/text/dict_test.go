package text

import (
	"testing"
)

func TestDictInternAssignsDenseIDs(t *testing.T) {
	b := NewDictBuilder()
	words := []string{"seagate", "barracuda", "7200", "seagate", "gb"}
	want := []uint32{0, 1, 2, 0, 3}
	for i, w := range words {
		if got := b.Intern(w); got != want[i] {
			t.Errorf("Intern(%q) = %d, want %d", w, got, want[i])
		}
	}
	d := b.Build()
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	for _, w := range []string{"seagate", "barracuda", "7200", "gb"} {
		id, ok := d.Lookup(w)
		if !ok || d.Token(id) != w {
			t.Errorf("round trip %q: id=%d ok=%v token=%q", w, id, ok, d.Token(id))
		}
		bid, bok := d.LookupBytes([]byte(w))
		if !bok || bid != id {
			t.Errorf("LookupBytes(%q) = %d,%v, want %d,true", w, bid, bok, id)
		}
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) = ok")
	}
}

func TestDictNilIsEmpty(t *testing.T) {
	var d *Dict
	if d.Len() != 0 {
		t.Errorf("nil Len = %d", d.Len())
	}
	if _, ok := d.Lookup("x"); ok {
		t.Error("nil Lookup ok")
	}
	if _, ok := d.LookupBytes([]byte("x")); ok {
		t.Error("nil LookupBytes ok")
	}
	b := d.Extend()
	if b.Intern("a") != 0 {
		t.Error("Extend of nil dict should start at ID 0")
	}
}

func TestDictExtendPreservesIDs(t *testing.T) {
	b := NewDictBuilder()
	b.Intern("a")
	b.Intern("b")
	old := b.Build()

	nb := old.Extend()
	if got := nb.Intern("b"); got != 1 {
		t.Errorf("extended Intern(b) = %d, want 1", got)
	}
	if got := nb.Intern("c"); got != 2 {
		t.Errorf("extended Intern(c) = %d, want 2", got)
	}
	grown := nb.Build()

	// The old dict is unaffected and still consistent.
	if old.Len() != 2 {
		t.Errorf("old Len = %d, want 2", old.Len())
	}
	if _, ok := old.Lookup("c"); ok {
		t.Error("old dict sees token interned after Extend")
	}
	for i, w := range []string{"a", "b", "c"} {
		id, ok := grown.Lookup(w)
		if !ok || id != uint32(i) || grown.Token(id) != w {
			t.Errorf("grown %q = %d,%v", w, id, ok)
		}
	}
}

func TestTokenizeIDsMatchesTokenize(t *testing.T) {
	inputs := []string{
		"Seagate Barracuda 7200.10 500GB",
		"ATA 100 mb/s",
		"", "  --  ", "ÜBER-Größe 42",
	}
	b := NewDictBuilder()
	var ids []uint32
	var buf []byte
	for _, in := range inputs {
		ids = ids[:0]
		ids, buf = DefaultTokenizer.TokenizeIDs(b, ids, buf, in)
		toks := DefaultTokenizer.Tokenize(in)
		if len(ids) != len(toks) {
			t.Fatalf("%q: %d ids vs %d tokens", in, len(ids), len(toks))
		}
		d := b.Build()
		for i := range ids {
			if d.Token(ids[i]) != toks[i] {
				t.Errorf("%q token %d: id %d spells %q, want %q",
					in, i, ids[i], d.Token(ids[i]), toks[i])
			}
		}
	}
}

// TestScannerTokens pins the scanner against literal expected token
// lists across the tokenizer's variants. Tokenize is implemented on top
// of the scanner, so comparing the two would be circular — these fixed
// expectations (together with the ones in text_test.go) are what
// actually constrain tokenization behavior.
func TestScannerTokens(t *testing.T) {
	cases := []struct {
		tk   Tokenizer
		in   string
		want []string
	}{
		{Tokenizer{}, "Hitachi Deskstar HDT725050VLA360 (500GB)",
			[]string{"hitachi", "deskstar", "hdt", "725050", "vla", "360", "500", "gb"}},
		{Tokenizer{}, "ata100", []string{"ata", "100"}},
		{Tokenizer{}, "A1B2C3", []string{"a", "1", "b", "2", "c", "3"}},
		{Tokenizer{}, "...", nil},
		{Tokenizer{}, "", nil},
		{Tokenizer{}, "ß ss", []string{"ß", "ss"}},
		{Tokenizer{}, string([]byte{0xff, 'a', 0xfe, 'b'}), []string{"a", "b"}}, // invalid UTF-8 splits
		{Tokenizer{KeepAlphaNumJoined: true}, "ata100 500GB", []string{"ata100", "500gb"}},
		{Tokenizer{StopWords: map[string]bool{"a": true, "500": true}},
			"A 500GB drive", []string{"gb", "drive"}},
	}
	for _, c := range cases {
		var got []string
		sc := c.tk.Scanner(nil, c.in)
		for {
			tok, ok := sc.Next()
			if !ok {
				break
			}
			got = append(got, string(tok))
		}
		if len(got) != len(c.want) {
			t.Errorf("%+v %q: got %v, want %v", c.tk, c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%+v %q token %d: %q, want %q", c.tk, c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestScannerReusesBuffer(t *testing.T) {
	sc := DefaultTokenizer.Scanner(make([]byte, 0, 64), "one two three")
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
	}
	buf := sc.Buffer()
	if cap(buf) < 64 {
		t.Errorf("Buffer cap = %d, want the caller's scratch back", cap(buf))
	}
}
