package correspond

import (
	"fmt"
	"math/rand"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
)

// figure5Fixture builds the paper's Figure 5 scenario: a hard-drive catalog
// with Speed/Interface attributes, and one merchant whose offers use
// RPM/Int. Type. Historical matches link each offer to its product.
func figure5Fixture(t *testing.T) (*catalog.Store, *offer.Set, *match.MatchSet) {
	t.Helper()
	st := catalog.NewStore()
	cat := catalog.Category{
		ID: "hd", Name: "Hard Drives", TopLevel: "Computing",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Brand"}, {Name: "Model"},
			{Name: "Speed", Kind: catalog.KindNumeric},
			{Name: "Interface"},
		}},
	}
	if err := st.AddCategory(cat); err != nil {
		t.Fatal(err)
	}
	type row struct{ brand, model, speed, iface string }
	rows := []row{
		{"Seagate", "Barracuda", "5400", "ATA 100"},
		{"Seagate", "Cheetah", "10000", "ATA 100"}, // no offer matches this one
		{"Western Digital", "Raptor", "7200", "IDE 133"},
		{"Seagate", "Momentus", "5400", "IDE 133"},
		{"Hitachi", "39T2525", "7200", "ATA 133"},
		{"Hitachi", "38L2392", "10000", "SCSI"}, // no offer matches this one
	}
	for i, r := range rows {
		err := st.AddProduct(catalog.Product{
			ID: fmt.Sprintf("p%d", i), CategoryID: "hd",
			Spec: catalog.Spec{
				{Name: "Brand", Value: r.brand},
				{Name: "Model", Value: r.model},
				{Name: "Speed", Value: r.speed},
				{Name: "Interface", Value: r.iface},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Merchant offers (Figure 5a right side), with merchant vocabulary.
	offers := []offer.Offer{
		{ID: "o0", Merchant: "hdshop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Product Description", Value: "Seagate Barracuda HD"},
			{Name: "RPM", Value: "5400"},
			{Name: "Int. Type", Value: "ATA 100 mb/s"},
		}},
		{ID: "o2", Merchant: "hdshop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Product Description", Value: "WD RaptorHDD"},
			{Name: "RPM", Value: "7200"},
			{Name: "Int. Type", Value: "IDE 133 mb/s"},
		}},
		{ID: "o3", Merchant: "hdshop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Product Description", Value: "Seagate Momentus"},
			{Name: "RPM", Value: "5400"},
			{Name: "Int. Type", Value: "IDE 133 mb/s"},
		}},
		{ID: "o4", Merchant: "hdshop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Product Description", Value: "Hitachi model 39T2525"},
			{Name: "RPM", Value: "7200"},
			{Name: "Int. Type", Value: "ATA 133 mb/s"},
		}},
	}
	matches := match.NewMatchSet([]match.Match{
		{OfferID: "o0", ProductID: "p0", Source: "upc", Score: 1},
		{OfferID: "o2", ProductID: "p2", Source: "upc", Score: 1},
		{OfferID: "o3", ProductID: "p3", Source: "upc", Score: 1},
		{OfferID: "o4", ProductID: "p4", Source: "upc", Score: 1},
	})
	return st, offer.NewSet(offers), matches
}

func TestFigure5FeatureOrdering(t *testing.T) {
	st, offers, matches := figure5Fixture(t)
	ft := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true})

	key := offer.SchemaKey{Merchant: "hdshop", CategoryID: "hd"}
	get := func(ap, ao, feat string) float64 {
		i, ok := ft.Lookup(Candidate{Key: key, CatalogAttr: ap, MerchantAttr: ao})
		if !ok {
			t.Fatalf("candidate <%s,%s> missing", ap, ao)
		}
		return ft.Feature(i, feat)
	}

	// Figure 5d: JS(Speed, RPM) = 0 -> similarity 1; disjoint pairs -> 0.
	if got := get("Speed", "RPM", "JS-MC"); got < 0.999 {
		t.Errorf("JS-MC(Speed,RPM) similarity = %g, want ~1", got)
	}
	if got := get("Speed", "Int. Type", "JS-MC"); got > 0.01 {
		t.Errorf("JS-MC(Speed,Int.Type) = %g, want ~0", got)
	}
	if got := get("Interface", "RPM", "JS-MC"); got > 0.01 {
		t.Errorf("JS-MC(Interface,RPM) = %g, want ~0", got)
	}
	// Interface vs Int. Type: close but not identical (0.13 JS in paper).
	ifaceIT := get("Interface", "Int. Type", "JS-MC")
	if ifaceIT < 0.6 || ifaceIT > 0.99 {
		t.Errorf("JS-MC(Interface,Int.Type) = %g, want high but < 1", ifaceIT)
	}
	// Jaccard: Speed/RPM identical token sets -> 1.
	if got := get("Speed", "RPM", "Jaccard-MC"); got != 1 {
		t.Errorf("Jaccard-MC(Speed,RPM) = %g, want 1", got)
	}
}

func TestCandidateEnumeration(t *testing.T) {
	st, offers, matches := figure5Fixture(t)
	ft := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true})
	// 4 catalog attrs x 3 merchant attrs = 12 candidates.
	if ft.Len() != 12 {
		t.Errorf("candidates = %d, want 12", ft.Len())
	}
	// Deterministic ordering across runs.
	ft2 := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true, Workers: 8})
	for i := range ft.Candidates() {
		if ft.Candidates()[i] != ft2.Candidates()[i] {
			t.Fatalf("candidate order differs at %d", i)
		}
		for j := range ft.Features(i) {
			if ft.Features(i)[j] != ft2.Features(i)[j] {
				t.Fatalf("feature (%d,%d) differs", i, j)
			}
		}
	}
}

func TestNoMatchesModeDiffers(t *testing.T) {
	st, offers, matches := figure5Fixture(t)
	withM := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true})
	without := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: false})
	key := offer.SchemaKey{Merchant: "hdshop", CategoryID: "hd"}
	c := Candidate{Key: key, CatalogAttr: "Speed", MerchantAttr: "RPM"}
	i1, _ := withM.Lookup(c)
	i2, _ := without.Lookup(c)
	// With matches the Speed/RPM distributions are identical (sim 1);
	// without, the catalog contains 10000-rpm products no offer covers,
	// so similarity must drop (the paper's §3.1 motivating example).
	simWith := withM.Feature(i1, "JS-MC")
	simWithout := without.Feature(i2, "JS-MC")
	if simWithout >= simWith {
		t.Errorf("no-match similarity %g should be < match-restricted %g", simWithout, simWith)
	}
}

// syntheticTable builds a multi-merchant scenario where half the merchants
// use identical names (training signal) and half rename, so the classifier
// must generalize from identities to renamed attributes.
func syntheticTable(t *testing.T) (*FeatureTable, map[Candidate]bool) {
	t.Helper()
	st, set, ms, truth := syntheticInputs(t)
	ft := ComputeFeatures(st, set, ms, FeatureOptions{UseMatches: true})
	_ = st
	return ft, truth
}

// syntheticInputs builds the multi-merchant scenario shared by several
// tests: m0/m1 use identical names, m2/m3 rename.
func syntheticInputs(t *testing.T) (*catalog.Store, *offer.Set, *match.MatchSet, map[Candidate]bool) {
	t.Helper()
	st := catalog.NewStore()
	cat := catalog.Category{
		ID: "hd", Name: "Hard Drives",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Speed"}, {Name: "Interface"}, {Name: "Capacity"},
		}},
	}
	if err := st.AddCategory(cat); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	speeds := []string{"5400", "7200", "10000", "15000"}
	ifaces := []string{"SATA", "IDE", "SCSI"}
	caps := []string{"250", "500", "750", "1000"}

	var prods []catalog.Product
	for i := 0; i < 60; i++ {
		p := catalog.Product{
			ID: fmt.Sprintf("p%d", i), CategoryID: "hd",
			Spec: catalog.Spec{
				{Name: "Speed", Value: speeds[rng.Intn(len(speeds))]},
				{Name: "Interface", Value: ifaces[rng.Intn(len(ifaces))]},
				{Name: "Capacity", Value: caps[rng.Intn(len(caps))]},
			},
		}
		if err := st.AddProduct(p); err != nil {
			t.Fatal(err)
		}
		prods = append(prods, p)
	}
	// Merchants: m0/m1 use identical names; m2/m3 rename.
	rename := map[string]map[string]string{
		"m0": {"Speed": "Speed", "Interface": "Interface", "Capacity": "Capacity"},
		"m1": {"Speed": "Speed", "Interface": "Interface", "Capacity": "Capacity"},
		"m2": {"Speed": "RPM", "Interface": "Int. Type", "Capacity": "Hard Disk Size"},
		"m3": {"Speed": "Rotational Speed", "Interface": "Connection", "Capacity": "Size"},
	}
	var offs []offer.Offer
	var ms []match.Match
	n := 0
	for merchant, names := range rename {
		for i, p := range prods {
			if (i+len(merchant))%3 != 0 { // each merchant covers ~1/3 of products
				continue
			}
			n++
			oid := fmt.Sprintf("o%d", n)
			spec := catalog.Spec{}
			for _, av := range p.Spec {
				spec = append(spec, catalog.AttributeValue{Name: names[av.Name], Value: av.Value})
			}
			// Every merchant also exposes a noise attribute whose values
			// match nothing in the catalog.
			spec = append(spec, catalog.AttributeValue{Name: "Availability", Value: []string{"In Stock", "Ships Today"}[rng.Intn(2)]})
			offs = append(offs, offer.Offer{ID: oid, Merchant: merchant, CategoryID: "hd", Spec: spec})
			ms = append(ms, match.Match{OfferID: oid, ProductID: p.ID, Source: "upc", Score: 1})
		}
	}
	truth := make(map[Candidate]bool)
	for merchant, names := range rename {
		key := offer.SchemaKey{Merchant: merchant, CategoryID: "hd"}
		for catName, mName := range names {
			truth[Candidate{Key: key, CatalogAttr: catName, MerchantAttr: mName}] = true
		}
	}
	return st, offer.NewSet(offs), match.NewMatchSet(ms), truth
}

func TestTrainingSetConstruction(t *testing.T) {
	ft, _ := syntheticTable(t)
	ts := BuildTrainingSet(ft)
	if ts.Positives == 0 {
		t.Fatal("no positives")
	}
	if len(ts.Examples) <= ts.Positives {
		t.Fatal("no negatives")
	}
	// m0/m1 have 3 identities each -> 6 positives. Negatives: for each
	// identity attribute A, the other merchant attrs B != A. m0/m1 expose
	// 4 attrs (3 + Availability) so 3 non-identity per identity attr.
	if ts.Positives != 6 {
		t.Errorf("positives = %d, want 6", ts.Positives)
	}
	if got := len(ts.Examples) - ts.Positives; got != 18 {
		t.Errorf("negatives = %d, want 18", got)
	}
}

func TestTrainAndRankCorrespondences(t *testing.T) {
	ft, truth := syntheticTable(t)
	model, err := Train(ft, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scored := model.ScoreAll(ft)

	// Evaluate ranking on non-identity candidates only (§5.2 protocol).
	var correctAbove, total int
	var worstTrue, bestFalse float64 = 1, 0
	for _, sc := range scored {
		if sc.NameIdentity() {
			continue
		}
		if truth[sc.Candidate] {
			total++
			if sc.Score < worstTrue {
				worstTrue = sc.Score
			}
			if sc.Score >= 0.5 {
				correctAbove++
			}
		} else if sc.Score > bestFalse {
			bestFalse = sc.Score
		}
	}
	if total != 6 {
		t.Fatalf("expected 6 renamed true correspondences, got %d", total)
	}
	if correctAbove < 5 {
		t.Errorf("only %d/6 true renamed correspondences scored >= 0.5 (worst true %.3f, best false %.3f)",
			correctAbove, worstTrue, bestFalse)
	}
	// The classifier must separate: noise attr "Availability" should not
	// outrank real correspondences.
	for _, sc := range scored {
		if sc.MerchantAttr == "Availability" && sc.Score > worstTrue && sc.Score > 0.5 {
			t.Errorf("noise candidate %v scored %.3f above a true correspondence", sc.Candidate, sc.Score)
		}
	}
}

func TestScoreSingleFeature(t *testing.T) {
	ft, _ := syntheticTable(t)
	scored, err := ScoreSingleFeature(ft, "JS-MC")
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != ft.Len() {
		t.Fatalf("scored = %d", len(scored))
	}
	for i := 1; i < len(scored); i++ {
		if scored[i].Score > scored[i-1].Score {
			t.Fatal("not sorted descending")
		}
	}
	if _, err := ScoreSingleFeature(ft, "nope"); err == nil {
		t.Error("unknown feature should error")
	}
}

func TestSetSelectAndLookup(t *testing.T) {
	key := offer.SchemaKey{Merchant: "m", CategoryID: "c"}
	scored := []Scored{
		{Candidate: Candidate{Key: key, CatalogAttr: "Speed", MerchantAttr: "RPM"}, Score: 0.9},
		{Candidate: Candidate{Key: key, CatalogAttr: "Capacity", MerchantAttr: "RPM"}, Score: 0.7}, // loses argmax
		{Candidate: Candidate{Key: key, CatalogAttr: "Interface", MerchantAttr: "Conn"}, Score: 0.3},
		{Candidate: Candidate{Key: key, CatalogAttr: "Brand", MerchantAttr: "Brand"}, Score: 0.2}, // identity: kept
	}
	set := Select(scored, 0.5)
	if ap, ok := set.Lookup(key, "RPM"); !ok || ap != "Speed" {
		t.Errorf("RPM -> %q, %v", ap, ok)
	}
	if _, ok := set.Lookup(key, "Conn"); ok {
		t.Error("below-threshold non-identity kept")
	}
	if ap, ok := set.Lookup(key, "Brand"); !ok || ap != "Brand" {
		t.Error("identity should be kept regardless of score")
	}
	if set.Len() != 2 {
		t.Errorf("Len = %d, want 2", set.Len())
	}
	if len(set.All()) != 2 {
		t.Errorf("All = %v", set.All())
	}
	if _, ok := set.Lookup(offer.SchemaKey{Merchant: "other"}, "RPM"); ok {
		t.Error("wrong key should miss")
	}
}

func TestModelDeterministic(t *testing.T) {
	ft, _ := syntheticTable(t)
	m1, err := Train(ft, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(ft, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := m1.ScoreAll(ft)
	s2 := m2.ScoreAll(ft)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("scored[%d] differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func BenchmarkComputeFeatures(b *testing.B) {
	st := catalog.NewStore()
	cat := catalog.Category{ID: "hd", Schema: catalog.Schema{Attributes: []catalog.Attribute{
		{Name: "Speed"}, {Name: "Interface"}, {Name: "Capacity"}, {Name: "Brand"},
	}}}
	if err := st.AddCategory(cat); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var offs []offer.Offer
	var ms []match.Match
	for i := 0; i < 200; i++ {
		pid := fmt.Sprintf("p%d", i)
		if err := st.AddProduct(catalog.Product{ID: pid, CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Speed", Value: fmt.Sprintf("%d", 5400+rng.Intn(5)*1200)},
			{Name: "Interface", Value: "SATA"},
			{Name: "Capacity", Value: "500"},
			{Name: "Brand", Value: "Seagate"},
		}}); err != nil {
			b.Fatal(err)
		}
		oid := fmt.Sprintf("o%d", i)
		offs = append(offs, offer.Offer{ID: oid, Merchant: fmt.Sprintf("m%d", i%10), CategoryID: "hd", Spec: catalog.Spec{
			{Name: "RPM", Value: "7200"}, {Name: "Int. Type", Value: "SATA"},
			{Name: "Size", Value: "500 GB"}, {Name: "Make", Value: "Seagate"},
		}})
		ms = append(ms, match.Match{OfferID: oid, ProductID: pid})
	}
	set := offer.NewSet(offs)
	matches := match.NewMatchSet(ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeFeatures(st, set, matches, FeatureOptions{UseMatches: true})
	}
}

func TestNameFeature(t *testing.T) {
	st, offers, matches := figure5Fixture(t)
	ft := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true, IncludeNameFeature: true})
	if got := len(ft.Names()); got != NumFeatures+1 {
		t.Fatalf("feature width = %d, want %d", got, NumFeatures+1)
	}
	key := offer.SchemaKey{Merchant: "hdshop", CategoryID: "hd"}
	i, ok := ft.Lookup(Candidate{Key: key, CatalogAttr: "Interface", MerchantAttr: "Int. Type"})
	if !ok {
		t.Fatal("candidate missing")
	}
	near := ft.Feature(i, NameFeature)
	j, _ := ft.Lookup(Candidate{Key: key, CatalogAttr: "Speed", MerchantAttr: "Int. Type"})
	far := ft.Feature(j, NameFeature)
	if near <= far {
		t.Errorf("name similarity: Interface/Int.Type %.3f <= Speed/Int.Type %.3f", near, far)
	}
}

func TestNameFeatureTraining(t *testing.T) {
	// Training still works with the extra dimension (needs a fixture
	// with name identities).
	st, offers, matches, _ := syntheticInputs(t)
	wide := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true, IncludeNameFeature: true})
	if _, err := Train(wide, TrainOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestDropFeature(t *testing.T) {
	st, offers, matches := figure5Fixture(t)
	ft := ComputeFeatures(st, offers, matches, FeatureOptions{UseMatches: true})
	dropped := ft.DropFeature("JS-MC")
	if dropped.Len() != ft.Len() {
		t.Fatal("length changed")
	}
	for i := 0; i < ft.Len(); i++ {
		if dropped.Feature(i, "JS-MC") != 0 {
			t.Fatalf("JS-MC not zeroed at %d", i)
		}
		if dropped.Feature(i, "JS-C") != ft.Feature(i, "JS-C") {
			t.Fatalf("JS-C changed at %d", i)
		}
	}
	// Original untouched.
	any := false
	for i := 0; i < ft.Len(); i++ {
		if ft.Feature(i, "JS-MC") != 0 {
			any = true
		}
	}
	if !any {
		t.Error("original table mutated")
	}
	// Unknown feature: identity copy.
	same := ft.DropFeature("nope")
	for i := 0; i < ft.Len(); i++ {
		for j := range ft.Features(i) {
			if same.Features(i)[j] != ft.Features(i)[j] {
				t.Fatal("unknown drop changed features")
			}
		}
	}
}
