package prodsynth

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"prodsynth/internal/categorize"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/ml"
	"prodsynth/internal/offer"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden snapshot files")

// handBuiltModel constructs a fully deterministic model without running
// the learner: every float is exactly representable and every count is
// fixed, so its encoded bytes are stable across platforms — the golden
// file pins the on-disk format itself, not the learner's output.
func handBuiltModel() *Model {
	key := offer.SchemaKey{Merchant: "hdshop", CategoryID: "computing/hard-drives"}
	key2 := offer.SchemaKey{Merchant: "driveking", CategoryID: "computing/hard-drives"}
	scored := []correspond.Scored{
		{Candidate: correspond.Candidate{Key: key, MerchantAttr: "RPM", CatalogAttr: "Speed"}, Score: 0.96875},
		{Candidate: correspond.Candidate{Key: key, MerchantAttr: "Hard Disk Size", CatalogAttr: "Capacity"}, Score: 0.875},
		{Candidate: correspond.Candidate{Key: key2, MerchantAttr: "Speed", CatalogAttr: "Speed"}, Score: 0.75},
		{Candidate: correspond.Candidate{Key: key, MerchantAttr: "Availability", CatalogAttr: "Interface"}, Score: 0.125},
	}
	set := correspond.NewSet()
	for _, sc := range scored[:3] {
		set.Add(sc)
	}
	classifier := categorize.New()
	classifier.TrainFromOffers([]Offer{
		{CategoryID: "computing/hard-drives", Title: "seagate barracuda hard drive"},
		{CategoryID: "computing/hard-drives", Title: "hitachi deskstar hdd"},
		{CategoryID: "cameras/digital", Title: "canon powershot camera"},
	})
	return &Model{offline: &core.OfflineResult{
		Correspondences: set,
		Scored:          scored,
		Model: &correspond.Model{
			LR:                &ml.Logistic{Weights: []float64{0.5, -0.25, 1, 0, 0.125, -2}, Bias: 0.0625},
			TrainingSize:      8,
			TrainingPositives: 3,
		},
		Classifier: classifier,
		Stats: core.OfflineStats{
			HistoricalOffers: 9, MatchedOffers: 8, Candidates: 4,
			TrainingSize: 8, TrainingPositives: 3, Correspondences: 3,
		},
	}}
}

func saveToBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corrFingerprints renders correspondences comparably (they are returned
// in unspecified order).
func corrFingerprints(t *testing.T, corr []Correspondence) []string {
	t.Helper()
	out := make([]string, len(corr))
	for i, c := range corr {
		out[i] = c.Key.String() + "|" + c.MerchantAttr + "->" + c.CatalogAttr + "|" +
			"score=" + formatScore(c.Score)
	}
	sort.Strings(out)
	return out
}

// formatScore renders a score at full precision, so a single-ULP drift in
// a round-tripped correspondence fails the comparison.
func formatScore(f float64) string {
	return strconv.FormatFloat(f, 'b', -1, 64)
}

// TestModelRoundTrip is the acceptance test for persistence: a model
// learned in one process, saved, and loaded by a "fresh process" —
// simulated by a new, identically populated Catalog and LoadModel from
// bytes — produces Synthesize output byte-identical to the in-memory
// model, and identical correspondences.
func TestModelRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds := marketplace(t)
	model, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := NewSystem(ds.Catalog, model).SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}

	raw := saveToBytes(t, model)
	loaded, err := LoadModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	// The "fresh process": a second marketplace generated from the same
	// seed has an identically populated but distinct Catalog, and the
	// model arrives only through its serialized bytes.
	ds2 := marketplace(t)
	fresh, err := NewSystem(ds2.Catalog, loaded).SynthesizeContext(ctx, ds2.IncomingOffers, MapFetcher(ds2.Pages))
	if err != nil {
		t.Fatal(err)
	}

	want, got := productFingerprints(inMem.Products), productFingerprints(fresh.Products)
	if len(got) != len(want) {
		t.Fatalf("loaded model synthesized %d products, in-memory %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("product %d differs:\n  loaded:    %s\n  in-memory: %s", i, got[i], want[i])
		}
	}
	if fresh.PairsMapped != inMem.PairsMapped || fresh.PairsDropped != inMem.PairsDropped ||
		fresh.ExcludedMatched != inMem.ExcludedMatched || fresh.OffersWithoutKey != inMem.OffersWithoutKey {
		t.Errorf("counters differ: loaded %+v vs in-memory %+v", *fresh, *inMem)
	}

	wantCorr := corrFingerprints(t, model.Correspondences())
	gotCorr := corrFingerprints(t, loaded.Correspondences())
	if len(wantCorr) != len(gotCorr) {
		t.Fatalf("correspondences: %d loaded vs %d in-memory", len(gotCorr), len(wantCorr))
	}
	for i := range wantCorr {
		if gotCorr[i] != wantCorr[i] {
			t.Errorf("correspondence %d differs:\n  loaded:    %s\n  in-memory: %s", i, gotCorr[i], wantCorr[i])
		}
	}
	if loaded.Stats() != model.Stats() {
		t.Errorf("stats differ: %+v vs %+v", loaded.Stats(), model.Stats())
	}
	if got, want := len(loaded.ScoredCandidates()), len(model.ScoredCandidates()); got != want {
		t.Errorf("scored candidates: %d loaded vs %d in-memory", got, want)
	}

	// Determinism: save→load→save is byte-identical, so snapshots can be
	// content-addressed.
	if again := saveToBytes(t, loaded); !bytes.Equal(again, raw) {
		t.Error("re-encoding a loaded model changed the bytes")
	}
}

// TestModelGoldenSnapshot pins the on-disk format: the hand-built model
// must encode to exactly the checked-in golden file, so any format change
// forces a deliberate version bump. Refresh with -update-golden.
func TestModelGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "model_v1.golden")
	raw := saveToBytes(t, handBuiltModel())
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("encoded model (%d bytes) differs from golden file (%d bytes); "+
			"if the format change is intentional, bump core.SnapshotVersion and run with -update-golden",
			len(raw), len(want))
	}
	// And the golden bytes decode to a model that still serves: its
	// correspondences survive intact.
	m, err := LoadModel(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Correspondences()); got != 3 {
		t.Errorf("golden model has %d correspondences, want 3", got)
	}
	if m.Stats().TrainingSize != 8 {
		t.Errorf("golden model stats = %+v", m.Stats())
	}
}

// TestLoadModelStrict pins the decode error paths: every corruption mode
// errors with ErrBadModel, never a panic or a partial model.
func TestLoadModelStrict(t *testing.T) {
	valid := saveToBytes(t, handBuiltModel())
	mutate := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:10]},
		{"bad magic", mutate(0)},
		{"bad version", mutate(4)},
		{"bad length", mutate(8)},
		{"bad checksum", mutate(16)},
		{"corrupt payload", mutate(len(valid) - 1)},
		{"truncated payload", valid[:len(valid)-7]},
		{"trailing data", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := LoadModel(bytes.NewReader(tc.data))
			if !errors.Is(err, ErrBadModel) {
				t.Fatalf("err = %v, want ErrBadModel", err)
			}
			if m != nil {
				t.Fatal("corrupt input returned a non-nil model")
			}
		})
	}
}

// TestSystemUseHotSwap pins the atomic model swap: a System built from one
// model serves a different one after Use, and Use(nil) returns the system
// to the unlearned state.
func TestSystemUseHotSwap(t *testing.T) {
	ctx := context.Background()
	ds := marketplace(t)
	m1, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(ds.Catalog, m1)
	if sys.Model() != m1 {
		t.Fatal("Model() is not the constructed model")
	}
	res1, err := sys.SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}

	// A re-learned model (different threshold → different artifact).
	m2, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages), WithScoreThreshold(0.99))
	if err != nil {
		t.Fatal(err)
	}
	sys.Use(m2)
	if sys.Model() != m2 {
		t.Fatal("Use did not swap the model")
	}
	res2, err := sys.SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if res1.PairsMapped == res2.PairsMapped && res1.PairsDropped == res2.PairsDropped {
		t.Log("warning: threshold change produced identical mapping counts; swap still verified by pointer")
	}

	sys.Use(nil)
	if _, err := sys.SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages)); !errors.Is(err, ErrNotLearned) {
		t.Fatalf("after Use(nil): err = %v, want ErrNotLearned", err)
	}
}

// TestModelFromCorrespondences pins the TSV-interchange path: a model
// wrapped around an externally supplied correspondence set reconciles with
// it at runtime.
func TestModelFromCorrespondences(t *testing.T) {
	ctx := context.Background()
	ds := marketplace(t)
	learned, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	wrapped := ModelFromCorrespondences(ds.Catalog, learned.Correspondences())
	if got, want := len(wrapped.Correspondences()), len(learned.Correspondences()); got != want {
		t.Fatalf("wrapped model has %d correspondences, want %d", got, want)
	}
	res, err := NewSystem(ds.Catalog, wrapped).SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Products) == 0 || res.PairsMapped == 0 {
		t.Fatalf("wrapped model synthesized nothing: %+v", res)
	}
}

// FuzzLoadModel proves corrupt or truncated snapshots error cleanly: no
// panic, no partial model, and any input that does decode re-encodes and
// re-decodes stably.
func FuzzLoadModel(f *testing.F) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, handBuiltModel()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	f.Add([]byte{})
	f.Add([]byte("PSMD junk that is not a snapshot"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil model")
			}
			return
		}
		var out bytes.Buffer
		if err := SaveModel(&out, m); err != nil {
			t.Fatalf("re-encoding a decoded model failed: %v", err)
		}
		if _, err := LoadModel(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-decoding a re-encoded model failed: %v", err)
		}
	})
}
