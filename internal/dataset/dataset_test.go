package dataset

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"prodsynth/internal/core"
	"prodsynth/internal/synth"
)

func smallDataset() *synth.Dataset {
	return synth.Generate(synth.Config{
		Seed:                17,
		CategoriesPerDomain: 1,
		ProductsPerCategory: 8,
		Merchants:           10,
	})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := smallDataset()
	dir := t.TempDir()
	if err := Save(ds, dir, true); err != nil {
		t.Fatal(err)
	}
	// All expected files exist.
	for _, name := range []string{CatalogFile, HistoricalFile, IncomingFile, PagesFile, TruthFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}

	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Catalog.NumCategories() != ds.Catalog.NumCategories() {
		t.Errorf("categories: %d vs %d", got.Catalog.NumCategories(), ds.Catalog.NumCategories())
	}
	if got.Catalog.NumProducts() != ds.Catalog.NumProducts() {
		t.Errorf("products: %d vs %d", got.Catalog.NumProducts(), ds.Catalog.NumProducts())
	}
	if !reflect.DeepEqual(got.HistoricalOffers, ds.HistoricalOffers) {
		t.Error("historical offers differ after round trip")
	}
	if !reflect.DeepEqual(got.IncomingOffers, ds.IncomingOffers) {
		t.Error("incoming offers differ after round trip")
	}
	if len(got.Pages) != len(ds.Pages) {
		t.Fatalf("pages: %d vs %d", len(got.Pages), len(ds.Pages))
	}
	for url, html := range ds.Pages {
		if got.Pages[url] != html {
			t.Fatalf("page %s differs", url)
		}
	}
	// Truth round trip.
	if got.Truth == nil {
		t.Fatal("truth not loaded")
	}
	if !reflect.DeepEqual(got.Truth.OfferProduct, ds.Truth.OfferProduct) {
		t.Error("OfferProduct differs")
	}
	if !reflect.DeepEqual(got.Truth.Missing, ds.Truth.Missing) {
		t.Error("Missing differs")
	}
	if !reflect.DeepEqual(got.Truth.Correspondences, ds.Truth.Correspondences) {
		t.Error("Correspondences differ")
	}
	if len(got.Universe) != len(ds.Universe) {
		t.Errorf("universe: %d vs %d", len(got.Universe), len(ds.Universe))
	}
	for pid, p := range ds.Universe {
		gp := got.Universe[pid]
		if gp.CategoryID != p.CategoryID || !reflect.DeepEqual(gp.Spec, p.Spec) {
			t.Fatalf("universe product %s differs", pid)
		}
	}
}

func TestSaveWithoutTruth(t *testing.T) {
	ds := smallDataset()
	dir := t.TempDir()
	if err := Save(ds, dir, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, TruthFile)); !os.IsNotExist(err) {
		t.Error("truth file should not exist")
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Truth != nil {
		t.Error("truth should be nil")
	}
	if len(got.HistoricalOffers) != len(ds.HistoricalOffers) {
		t.Error("offers lost")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadCorruptPages(t *testing.T) {
	ds := smallDataset()
	dir := t.TempDir()
	if err := Save(ds, dir, false); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, PagesFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("expected error for corrupt pages file")
	}
}

// TestLoadDuplicatePages pins the duplicate-URL rule for pages.jsonl: a
// URL repeated with a different body fails the load (previously the later
// line silently won), while an exact repeated line stays legal.
func TestLoadDuplicatePages(t *testing.T) {
	ds := smallDataset()
	dir := t.TempDir()
	if err := Save(ds, dir, false); err != nil {
		t.Fatal(err)
	}
	conflict := []byte(`{"url":"u","html":"<p>1</p>"}` + "\n" + `{"url":"u","html":"<p>2</p>"}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, PagesFile), conflict, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); !errors.Is(err, core.ErrDuplicatePage) {
		t.Fatalf("conflicting duplicate page: err = %v, want core.ErrDuplicatePage", err)
	}

	repeat := []byte(`{"url":"u","html":"<p>1</p>"}` + "\n" + `{"url":"u","html":"<p>1</p>"}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, PagesFile), repeat, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("idempotent repeated page: err = %v, want nil", err)
	}
}

// TestPipelineEquivalenceAfterRoundTrip runs the full pipeline on the
// in-memory dataset and on its save/load round trip; both must synthesize
// identical products — persistence must be lossless for everything the
// pipeline consumes.
func TestPipelineEquivalenceAfterRoundTrip(t *testing.T) {
	orig := synth.Generate(synth.Config{
		Seed:                23,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 12,
		Merchants:           12,
	})
	dir := t.TempDir()
	if err := Save(orig, dir, true); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	run := func(ds *synth.Dataset) []string {
		fetcher := core.MapFetcher(ds.Pages)
		off, err := core.RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := core.RunRuntime(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(rt.Products))
		for i, p := range rt.Products {
			out[i] = p.CategoryID + "|" + p.Key + "|" + p.Spec.String()
		}
		return out
	}
	a := run(orig)
	b := run(loaded)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pipeline output differs after round trip:\n%d vs %d products", len(a), len(b))
	}
}
