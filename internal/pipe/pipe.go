// Package pipe provides the pull-based iterator stages the runtime
// pipeline is composed from. A Source is a lazy, context-aware iterator;
// a Stage wraps an upstream Source into a downstream one. Stages do no
// work until pulled, so a composed pipeline materializes nothing beyond
// each stage's own bounded scratch — memory is governed by stage-buffer
// depth and worker count, not by input size.
//
// Three execution shapes cover the pipeline's needs:
//
//   - Map: serial per-item transformation, zero goroutines, laziness only.
//   - ParMap: ordered parallel transformation — a bounded worker pool
//     pulls items, and results are delivered strictly in input order, so
//     output is byte-identical for every worker count.
//   - Buffer: a stage boundary — the upstream runs in its own goroutine
//     feeding a bounded channel, so downstream work overlaps upstream
//     work (wave pipelining). Depth 0 is an unbuffered handoff: the
//     upstream still works one item ahead of the consumer.
//
// Cancellation: every blocking point selects on the context, and every
// goroutine a stage spawned exits once the context is cancelled or the
// stage is drained. The context passed to the first Next call is the one
// a stage's goroutines watch; callers must use a single context for one
// pipeline's lifetime (the pipeline packages do). A pipeline abandoned
// mid-stream without cancellation may strand stage goroutines — always
// either drain a pipeline or cancel its context. When a ParMap item
// returns an error the stage shuts itself down (later items are never
// delivered), so an erroring pipeline needs no explicit teardown either.
package pipe

import (
	"context"
	"sync"
	"sync/atomic"
)

// Source is a pull-based iterator. Next returns the next element with
// ok=true; exhaustion is (zero, false, nil) and failure (zero, false,
// err). After the first ok=false return the source is spent: further
// calls keep returning ok=false. Sources are for single-consumer use;
// Next must not be called concurrently.
type Source[T any] interface {
	Next(ctx context.Context) (T, bool, error)
}

// Stage is one composable pipeline stage: it wraps an upstream source
// into a downstream one. Stages compose by application:
//
//	out := fuse(cluster(prepare(src)))
type Stage[In, Out any] func(Source[In]) Source[Out]

// sliceSource iterates a slice.
type sliceSource[T any] struct {
	items []T
	next  int
}

// FromSlice returns a Source over the slice, in order. The slice is
// retained, not copied.
func FromSlice[T any](items []T) Source[T] {
	return &sliceSource[T]{items: items}
}

func (s *sliceSource[T]) Next(ctx context.Context) (T, bool, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, false, err
	}
	if s.next >= len(s.items) {
		return zero, false, nil
	}
	item := s.items[s.next]
	s.next++
	return item, true, nil
}

// chanSource iterates a channel until it closes.
type chanSource[T any] struct {
	ch <-chan T
}

// FromChan returns a Source that receives from ch until ch closes (ok
// becomes false) or the context is cancelled (err is ctx.Err()).
func FromChan[T any](ch <-chan T) Source[T] {
	return &chanSource[T]{ch: ch}
}

func (s *chanSource[T]) Next(ctx context.Context) (T, bool, error) {
	var zero T
	select {
	case <-ctx.Done():
		return zero, false, ctx.Err()
	case item, ok := <-s.ch:
		if !ok {
			return zero, false, nil
		}
		return item, true, nil
	}
}

// mapSource applies fn on pull.
type mapSource[In, Out any] struct {
	src  Source[In]
	fn   func(context.Context, In) (Out, error)
	done bool
}

// Map returns the serial transformation stage: each pull takes one item
// from the upstream and applies fn. No goroutines, no buffering — pure
// laziness. An fn error ends the stage.
func Map[In, Out any](fn func(context.Context, In) (Out, error)) Stage[In, Out] {
	return func(src Source[In]) Source[Out] {
		return &mapSource[In, Out]{src: src, fn: fn}
	}
}

func (s *mapSource[In, Out]) Next(ctx context.Context) (Out, bool, error) {
	var zero Out
	if s.done {
		return zero, false, nil
	}
	in, ok, err := s.src.Next(ctx)
	if err != nil || !ok {
		s.done = true
		return zero, false, err
	}
	out, err := s.fn(ctx, in)
	if err != nil {
		s.done = true
		return zero, false, err
	}
	return out, true, nil
}

// parItem is one in-flight ParMap computation: the result channel the
// worker will fulfill, queued in input order.
type parItem[Out any] struct {
	res chan parResult[Out]
}

type parResult[Out any] struct {
	out Out
	err error
}

// parMapSource is the ordered parallel stage described on ParMap.
type parMapSource[In, Out any] struct {
	src     Source[In]
	fn      func(context.Context, In) (Out, error)
	workers int

	start sync.Once
	stop  chan struct{} // closed on first delivered error: tears the stage down
	once  sync.Once
	order chan parItem[Out] // pending results, input order; cap bounds in-flight items
	done  bool
}

// ParMap returns the ordered parallel transformation stage: up to workers
// goroutines apply fn concurrently, and results are delivered strictly in
// input order — output is byte-identical for every worker count. At most
// 2×workers items are in flight (being computed or waiting, computed, for
// an earlier item), so scratch is bounded by the worker count, not the
// input length. workers < 1 is treated as 1.
//
// The stage's goroutines start lazily on the first pull and exit when the
// upstream is exhausted and drained, the context is cancelled, or any fn
// call returns an error (the error is delivered at its item's position
// and ends the stage: later items are never delivered).
//
// fn receives a stage-scoped context derived from the pull context: it is
// cancelled when the stage tears down — on a delivered error or outer
// cancellation — so in-flight sibling computations whose results can no
// longer be delivered (a fetch mid-retry, a blocking call) observe the
// teardown and abort promptly instead of running to completion unseen.
func ParMap[In, Out any](workers int, fn func(context.Context, In) (Out, error)) Stage[In, Out] {
	if workers < 1 {
		workers = 1
	}
	return func(src Source[In]) Source[Out] {
		return &parMapSource[In, Out]{src: src, fn: fn, workers: workers}
	}
}

func (s *parMapSource[In, Out]) shutdown() { s.once.Do(func() { close(s.stop) }) }

// run is the dispatcher: it pulls the upstream serially and hands each
// item to the worker pool, queueing the item's result slot in input
// order. The order channel's capacity is the in-flight bound.
func (s *parMapSource[In, Out]) run(ctx context.Context) {
	type job struct {
		in  In
		res chan parResult[Out]
	}
	// The stage-scoped context handed to fn: cancelled on teardown (first
	// delivered error or outer cancellation), so in-flight siblings whose
	// results will never be read abort promptly. Workers are joined before
	// the final cancel, so a successful drain never cancels a live fn.
	sctx, cancel := context.WithCancel(ctx)
	go func() {
		select {
		case <-s.stop:
		case <-sctx.Done():
		}
		cancel()
	}()
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out, err := s.fn(sctx, j.in)
				j.res <- parResult[Out]{out: out, err: err} // cap 1: never blocks
			}
		}()
	}
	go func() {
		defer func() {
			close(jobs)
			wg.Wait()
			cancel()
			close(s.order)
		}()
		for {
			in, ok, err := s.src.Next(sctx)
			if err != nil {
				res := make(chan parResult[Out], 1)
				res <- parResult[Out]{err: err}
				select {
				case s.order <- parItem[Out]{res: res}:
				case <-ctx.Done():
				case <-s.stop:
				}
				return
			}
			if !ok {
				return
			}
			res := make(chan parResult[Out], 1)
			select {
			case s.order <- parItem[Out]{res: res}:
			case <-ctx.Done():
				return
			case <-s.stop:
				return
			}
			select {
			case jobs <- job{in: in, res: res}:
			case <-ctx.Done():
				return
			case <-s.stop:
				return
			}
		}
	}()
}

func (s *parMapSource[In, Out]) Next(ctx context.Context) (Out, bool, error) {
	var zero Out
	if s.done {
		return zero, false, nil
	}
	s.start.Do(func() {
		s.stop = make(chan struct{})
		s.order = make(chan parItem[Out], s.workers)
		s.run(ctx)
	})
	select {
	case <-ctx.Done():
		s.done = true
		s.shutdown()
		return zero, false, ctx.Err()
	case item, ok := <-s.order:
		if !ok {
			s.done = true
			return zero, false, nil
		}
		select {
		case <-ctx.Done():
			s.done = true
			s.shutdown()
			return zero, false, ctx.Err()
		case r := <-item.res:
			if r.err != nil {
				s.done = true
				s.shutdown()
				return zero, false, r.err
			}
			return r.out, true, nil
		}
	}
}

// bufItem carries one element or the upstream's terminal error across the
// stage boundary.
type bufItem[T any] struct {
	val T
	err error
}

// bufSource is the stage boundary described on Buffer.
type bufSource[T any] struct {
	src   Source[T]
	depth int

	start sync.Once
	ch    chan bufItem[T]
	done  bool
}

// Buffer returns a stage boundary: the upstream runs in its own goroutine
// feeding a channel of the given capacity, so pulls from downstream
// overlap the upstream's work. Depth 0 is an unbuffered handoff — the
// upstream still computes one item ahead while the consumer processes the
// previous one; larger depths let it run further ahead. The goroutine
// starts on the first pull and exits when the upstream is exhausted (its
// terminal error, if any, is delivered in position) or the context is
// cancelled.
func Buffer[T any](depth int) Stage[T, T] {
	if depth < 0 {
		depth = 0
	}
	return func(src Source[T]) Source[T] {
		return &bufSource[T]{src: src, depth: depth}
	}
}

func (s *bufSource[T]) Next(ctx context.Context) (T, bool, error) {
	var zero T
	if s.done {
		return zero, false, nil
	}
	s.start.Do(func() {
		s.ch = make(chan bufItem[T], s.depth)
		go func() {
			defer close(s.ch)
			for {
				item, ok, err := s.src.Next(ctx)
				if err != nil {
					select {
					case s.ch <- bufItem[T]{err: err}:
					case <-ctx.Done():
					}
					return
				}
				if !ok {
					return
				}
				select {
				case s.ch <- bufItem[T]{val: item}:
				case <-ctx.Done():
					return
				}
			}
		}()
	})
	select {
	case <-ctx.Done():
		s.done = true
		return zero, false, ctx.Err()
	case item, ok := <-s.ch:
		if !ok {
			s.done = true
			return zero, false, nil
		}
		if item.err != nil {
			s.done = true
			return zero, false, item.err
		}
		return item.val, true, nil
	}
}

// Collect drains the source into a slice. On error the partial slice is
// discarded and the error returned.
func Collect[T any](ctx context.Context, src Source[T]) ([]T, error) {
	var out []T
	for {
		item, ok, err := src.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, item)
	}
}

// CollectInto drains the source into the given slice (append), reusing
// its capacity. On error the accumulated slice is discarded.
func CollectInto[T any](ctx context.Context, src Source[T], into []T) ([]T, error) {
	out := into[:0]
	for {
		item, ok, err := src.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, item)
	}
}

// Gauge tracks a current value and its high-water mark, atomically — the
// instrumentation hook for "peak in-flight offers" style measurements.
// The zero Gauge is ready to use; a nil *Gauge is a no-op on every
// method, so call sites need no guards.
type Gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Add moves the current value by n (negative to release) and folds the
// new value into the peak.
func (g *Gauge) Add(n int) {
	if g == nil {
		return
	}
	cur := g.cur.Add(int64(n))
	for {
		p := g.peak.Load()
		if cur <= p || g.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Current returns the current value.
func (g *Gauge) Current() int {
	if g == nil {
		return 0
	}
	return int(g.cur.Load())
}

// Peak returns the high-water mark.
func (g *Gauge) Peak() int {
	if g == nil {
		return 0
	}
	return int(g.peak.Load())
}
