// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic marketplace: Table 2 (end-to-end
// quality), Table 3 (per top-level category), Table 4 (recall by offer-set
// size), Figure 6 (classifier vs single features), Figure 7 (historical
// matches vs none), Figure 8 (baseline comparison), and Figure 9 (COMA++ δ
// settings). Each experiment returns structured results plus a text
// rendering shaped like the paper's presentation.
//
// cmd/experiments drives this package from the command line; the root
// bench_test.go exposes one testing.B benchmark per experiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"prodsynth/internal/baseline"
	"prodsynth/internal/baseline/coma"
	"prodsynth/internal/baseline/dumas"
	"prodsynth/internal/baseline/lsd"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/eval"
	"prodsynth/internal/offer"
	"prodsynth/internal/synth"
)

// Env is one generated-and-learned environment shared by all experiments,
// so the expensive offline phase runs once.
type Env struct {
	Dataset *synth.Dataset
	Offline *core.OfflineResult
	Runtime *core.RuntimeResult
	Config  core.Config
}

// Setup generates the marketplace and runs the full pipeline. ctx cancels
// the underlying offline and runtime phases.
func Setup(ctx context.Context, gen synth.Config, pipe core.Config) (*Env, error) {
	ds := synth.Generate(gen)
	fetcher := core.MapFetcher(ds.Pages)
	off, err := core.RunOffline(ctx, ds.Catalog, ds.HistoricalOffers, fetcher, pipe)
	if err != nil {
		return nil, fmt.Errorf("experiments: offline phase: %w", err)
	}
	run, err := core.RunRuntime(ctx, ds.Catalog, off, ds.IncomingOffers, fetcher, pipe)
	if err != nil {
		return nil, fmt.Errorf("experiments: runtime phase: %w", err)
	}
	return &Env{Dataset: ds, Offline: off, Runtime: run, Config: pipe}, nil
}

// Truth adapts the generator ground truth to an eval.TruthFunc.
func (e *Env) Truth() eval.TruthFunc {
	return func(c correspond.Candidate) bool {
		return e.Dataset.Truth.IsCorrespondence(c.Key, c.CatalogAttr, c.MerchantAttr)
	}
}

// computingOffers restricts the historical offers to the Computing subtree,
// matching the paper's setup for Figures 7-9 ("92 categories, corresponding
// to subcategories of Computing").
func (e *Env) computingOffers() *offer.Set {
	var subset []offer.Offer
	for _, o := range e.Offline.Offers.All() {
		cat, ok := e.Dataset.Catalog.Category(o.CategoryID)
		if ok && cat.TopLevel == "Computing" {
			subset = append(subset, o)
		}
	}
	return offer.NewSet(subset)
}

// Table2Result is the paper's Table 2.
type Table2Result struct {
	InputOffers      int
	Products         int
	AttributePairs   int
	AttributePrec    float64
	ProductPrec      float64
	OfflineStats     core.OfflineStats
	PredictedValid   int
	ExcludedMatched  int
	OffersWithoutKey int
	// Sampled reproduces the paper's §5.1 protocol: grade a 400-product
	// sample and report 95% intervals, next to the exact numbers above.
	Sampled eval.SampledReport
}

// Table2 grades the end-to-end run.
func Table2(e *Env) Table2Result {
	rep := eval.GradeSynthesis(e.Runtime.Products, e.Dataset.Truth, e.Dataset.Universe)
	predicted := 0
	for _, sc := range e.Offline.Scored {
		if sc.Score >= 0.5 {
			predicted++
		}
	}
	return Table2Result{
		InputOffers:      len(e.Dataset.IncomingOffers),
		Products:         rep.Products,
		AttributePairs:   rep.AttributePairs,
		AttributePrec:    rep.AttributePrecision(),
		ProductPrec:      rep.ProductPrecision(),
		OfflineStats:     e.Offline.Stats,
		PredictedValid:   predicted,
		ExcludedMatched:  e.Runtime.ExcludedMatched,
		OffersWithoutKey: len(e.Runtime.SkippedNoKey),
		Sampled: eval.GradeSynthesisSampled(e.Runtime.Products, e.Dataset.Truth,
			e.Dataset.Universe, 400, 0.95, 1),
	}
}

// RenderTable2 writes the Table 2 analogue.
func RenderTable2(w io.Writer, r Table2Result) {
	fmt.Fprintln(w, "== Table 2: Quality of synthesized product specifications ==")
	fmt.Fprintf(w, "%-36s %d\n", "Input Offers", r.InputOffers)
	fmt.Fprintf(w, "%-36s %d\n", "Synthesized Products", r.Products)
	fmt.Fprintf(w, "%-36s %d\n", "Synthesized Product Attributes", r.AttributePairs)
	fmt.Fprintf(w, "%-36s %.2f\n", "Attribute Precision", r.AttributePrec)
	fmt.Fprintf(w, "%-36s %.2f\n", "Product Precision", r.ProductPrec)
	fmt.Fprintln(w, "-- offline learning (cf. §5.1) --")
	fmt.Fprintf(w, "%-36s %d\n", "Historical offers", r.OfflineStats.HistoricalOffers)
	fmt.Fprintf(w, "%-36s %d\n", "Matched offers", r.OfflineStats.MatchedOffers)
	fmt.Fprintf(w, "%-36s %d\n", "Candidate tuples", r.OfflineStats.Candidates)
	fmt.Fprintf(w, "%-36s %d (%d positive)\n", "Auto-labeled training set",
		r.OfflineStats.TrainingSize, r.OfflineStats.TrainingPositives)
	fmt.Fprintf(w, "%-36s %d\n", "Correspondences predicted valid", r.PredictedValid)
	fmt.Fprintln(w, "-- paper's sampled protocol (400 products, 95% CI) --")
	fmt.Fprintf(w, "%-36s %.2f [%.2f, %.2f]\n", "Sampled attribute precision",
		r.Sampled.AttributePrec.Estimate, r.Sampled.AttributePrec.Low(), r.Sampled.AttributePrec.High())
	fmt.Fprintf(w, "%-36s %.2f [%.2f, %.2f]\n", "Sampled product precision",
		r.Sampled.ProductPrec.Estimate, r.Sampled.ProductPrec.Low(), r.Sampled.ProductPrec.High())
	fmt.Fprintln(w)
}

// Table3 grades per top-level category.
func Table3(e *Env) []eval.CategoryReport {
	return eval.GradeByTopLevel(e.Runtime.Products, e.Dataset.Truth, e.Dataset.Universe, e.Dataset.Catalog)
}

// RenderTable3 writes the Table 3 analogue.
func RenderTable3(w io.Writer, reports []eval.CategoryReport) {
	fmt.Fprintln(w, "== Table 3: Synthesis per top-level category ==")
	fmt.Fprintf(w, "%-24s %-8s %-18s %-18s %s\n", "Top-level", "Products", "Avg Attrs/Product", "Attribute prec.", "Product prec.")
	for _, r := range reports {
		fmt.Fprintf(w, "%-24s %-8d %-18.2f %-18.2f %.2f\n",
			r.TopLevel, r.Products, r.AvgAttrsPerProduct(), r.AttributePrecision(), r.ProductPrecision())
	}
	fmt.Fprintln(w)
}

// Table4 computes the recall split at 10 offers.
func Table4(e *Env) (heavy, light eval.RecallReport) {
	return eval.GradeRecall(e.Runtime.Products, e.Dataset.Truth, e.Dataset.Universe, 10)
}

// RenderTable4 writes the Table 4 analogue.
func RenderTable4(w io.Writer, heavy, light eval.RecallReport) {
	fmt.Fprintln(w, "== Table 4: Precision and recall for synthesized attributes ==")
	fmt.Fprintf(w, "%-30s %-10s %-16s %-16s %-14s %s\n",
		"Bucket", "Products", "Attr recall", "Attr precision", "Avg pool", "Avg synthesized")
	for _, r := range []eval.RecallReport{heavy, light} {
		fmt.Fprintf(w, "%-30s %-10d %-16.2f %-16.2f %-14.1f %.1f\n",
			r.Bucket, r.Products, r.AttributeRecall, r.AttributePrecision, r.AvgPoolSize, r.AvgSynthesized)
	}
	fmt.Fprintln(w)
}

// CurveOpts are the shared precision-at-coverage sweep settings.
var CurveOpts = eval.CurveOptions{ExcludeNameIdentity: true, Points: 40}

// Figure is one figure's data: the ranked candidates per system, plus the
// ground truth to grade them.
type Figure struct {
	Title  string
	Truth  eval.TruthFunc
	Names  []string
	Scored map[string][]correspond.Scored
}

func newFigure(title string, truth eval.TruthFunc) *Figure {
	return &Figure{Title: title, Truth: truth, Scored: make(map[string][]correspond.Scored)}
}

func (f *Figure) add(name string, scored []correspond.Scored) {
	f.Names = append(f.Names, name)
	f.Scored[name] = scored
}

// Series converts the figure into precision-at-coverage curves.
func (f *Figure) Series() []eval.Series {
	out := make([]eval.Series, 0, len(f.Names))
	for _, name := range f.Names {
		out = append(out, eval.Series{
			Name:   name,
			Points: eval.PrecisionAtCoverage(f.Scored[name], f.Truth, CurveOpts),
		})
	}
	return out
}

// CoverageAt returns a system's exact maximum coverage at a precision level.
func (f *Figure) CoverageAt(name string, precision float64) int {
	return eval.MaxCoverageAtPrecision(f.Scored[name], f.Truth, CurveOpts, precision)
}

// Figure6 compares the classifier against the single-feature scorers
// JS-MC and Jaccard-MC over all categories.
func Figure6(e *Env) (*Figure, error) {
	f := newFigure("Figure 6: classifier vs single distributional features", e.Truth())
	f.add("Our approach", e.Offline.Scored)
	for _, feat := range []string{"JS-MC", "Jaccard-MC"} {
		scored, err := correspond.ScoreSingleFeature(e.Offline.Features, feat)
		if err != nil {
			return nil, err
		}
		f.add(feat+" only", scored)
	}
	return f, nil
}

// trainOn retrains the classifier on a restricted offer set.
func (e *Env) trainOn(offers *offer.Set, useMatches bool) ([]correspond.Scored, error) {
	ft := correspond.ComputeFeatures(e.Dataset.Catalog, offers, e.Offline.Matches,
		correspond.FeatureOptions{UseMatches: useMatches})
	model, err := correspond.Train(ft, correspond.TrainOptions{})
	if err != nil {
		return nil, err
	}
	return model.ScoreAll(ft), nil
}

// Figure7 compares the classifier with and without historical instance
// matches, on the Computing subtree.
func Figure7(e *Env) (*Figure, error) {
	offers := e.computingOffers()
	with, err := e.trainOn(offers, true)
	if err != nil {
		return nil, err
	}
	without, err := e.trainOn(offers, false)
	if err != nil {
		return nil, err
	}
	f := newFigure("Figure 7: with vs without historical instance matches (Computing)", e.Truth())
	f.add("Our approach", with)
	f.add("No matching", without)
	return f, nil
}

// Figure8 compares the classifier against DUMAS, the LSD Naive Bayes
// matcher, and the three COMA++ configurations, on the Computing subtree.
func Figure8(e *Env) (*Figure, error) {
	offers := e.computingOffers()
	ours, err := e.trainOn(offers, true)
	if err != nil {
		return nil, err
	}
	f := newFigure("Figure 8: comparison against schema matching approaches (Computing)", e.Truth())
	f.add("Our approach", ours)
	matchers := []baseline.Matcher{
		lsd.Matcher{},
		dumas.Matcher{},
		coma.Matcher{Mode: coma.NameBased, Delta: math.Inf(1)},
		coma.Matcher{Mode: coma.InstanceBased, Delta: math.Inf(1)},
		coma.Matcher{Mode: coma.Combined, Delta: math.Inf(1)},
	}
	for _, m := range matchers {
		f.add(m.Name(), m.Score(e.Dataset.Catalog, offers, e.Offline.Matches))
	}
	return f, nil
}

// Figure9 compares COMA++ δ=0.01 (default) against δ=∞, on the Computing
// subtree, for the name-based and combined configurations, together with
// the paper's classifier curve for reference.
func Figure9(e *Env) (*Figure, error) {
	offers := e.computingOffers()
	ours, err := e.trainOn(offers, true)
	if err != nil {
		return nil, err
	}
	f := newFigure("Figure 9: COMA++ delta settings (Computing)", e.Truth())
	f.add("Our approach", ours)
	configs := []struct {
		name string
		m    coma.Matcher
	}{
		{"Name-based COMA++ (delta=0.01)", coma.Matcher{Mode: coma.NameBased, Delta: 0.01}},
		{"Name-based COMA++ (delta=inf)", coma.Matcher{Mode: coma.NameBased, Delta: math.Inf(1)}},
		{"Combined COMA++ (delta=0.01)", coma.Matcher{Mode: coma.Combined, Delta: 0.01}},
		{"Combined COMA++ (delta=inf)", coma.Matcher{Mode: coma.Combined, Delta: math.Inf(1)}},
	}
	for _, cfg := range configs {
		f.add(cfg.name, cfg.m.Score(e.Dataset.Catalog, offers, e.Offline.Matches))
	}
	return f, nil
}

// RenderFigure writes a figure's curves plus exact coverage-at-precision
// summary lines, the form the paper quotes ("20K correspondences at 0.87").
func RenderFigure(w io.Writer, f *Figure) error {
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	if err := eval.WriteCurves(w, f.Series()); err != nil {
		return err
	}
	for _, p := range []float64{0.9, 0.8, 0.7} {
		var parts []string
		for _, name := range f.Names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, f.CoverageAt(name, p)))
		}
		fmt.Fprintf(w, "coverage@%.1f: %s\n", p, strings.Join(parts, "  "))
	}
	fmt.Fprintln(w)
	return nil
}
