package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/offer"
)

// mk builds one reconciled offer with alternating attr, value pairs.
func mk(id, cat string, kvs ...string) offer.Offer {
	o := offer.Offer{ID: id, CategoryID: cat}
	for i := 0; i+1 < len(kvs); i += 2 {
		o.Spec = append(o.Spec, catalog.AttributeValue{Name: kvs[i], Value: kvs[i+1]})
	}
	return o
}

// clusterFingerprint renders a cluster comparably: identity plus member
// offer IDs in order.
func clusterFingerprint(c cluster.Cluster) string {
	ids := make([]string, len(c.Offers))
	for i, o := range c.Offers {
		ids[i] = o.ID
	}
	return fmt.Sprintf("%s/%s=%s %v", c.CategoryID, c.KeyAttr, c.Key, ids)
}

// corpus is a fixed offer sequence exercising the interesting shapes:
// multi-offer clusters, UPC/MPN bridges that force cluster merges,
// key-less offers, and cross-category keys.
func corpus() []offer.Offer {
	return []offer.Offer{
		mk("o0", "hd", catalog.AttrUPC, "111"),
		mk("o1", "hd", catalog.AttrMPN, "ab-1"),
		mk("o2", "hd", catalog.AttrUPC, "222"),
		mk("o3", "hd"),                                                 // no key: always skipped
		mk("o4", "hd", catalog.AttrUPC, "111", catalog.AttrMPN, "AB1"), // bridges o0 and o1
		mk("o5", "tv", catalog.AttrUPC, "333"),
		mk("o6", "hd", catalog.AttrUPC, "2 2 2"), // normalizes to 222
		mk("o7", "tv", catalog.AttrMPN, "xy/9"),
		mk("o8", "hd", catalog.AttrUPC, "111"),
		mk("o9", "tv", catalog.AttrUPC, "333", catalog.AttrMPN, "XY9"), // bridges o5 and o7
		mk("o10", "hd", catalog.AttrMPN, "zz9"),
		mk("o11", "hd"),                         // no key
		mk("o12", "tv", catalog.AttrUPC, "111"), // same UPC, other category: same cluster (global keys)
	}
}

// partitions splits offers into n contiguous waves.
func partitions(offers []offer.Offer, n int) [][]offer.Offer {
	if n > len(offers) {
		n = len(offers)
	}
	waves := make([][]offer.Offer, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(offers)/n, (i+1)*len(offers)/n
		waves = append(waves, offers[lo:hi])
	}
	return waves
}

// TestMemoryMatchesGroupAcrossPartitions is the core incremental-clustering
// equivalence property: for every partitioning of an offer sequence into
// waves, an unbounded Memory's Final() must be byte-identical — same
// clusters, same member order, same cluster order — to one cluster.Group
// call over the whole sequence, and the skipped offers must agree.
func TestMemoryMatchesGroupAcrossPartitions(t *testing.T) {
	offers := corpus()
	wantClusters, wantSkipped := cluster.Group(offers, cluster.Options{})
	want := make([]string, len(wantClusters))
	for i, c := range wantClusters {
		want[i] = clusterFingerprint(c)
	}

	for _, n := range []int{1, 2, 3, 7, len(offers)} {
		mem := NewMemory(MemoryOptions{})
		var skipped []offer.Offer
		for _, wave := range partitions(offers, n) {
			_, sk := mem.Add(nil, wave)
			skipped = append(skipped, sk...)
		}
		got := mem.Final()
		if len(got) != len(want) {
			t.Fatalf("waves=%d: %d clusters, want %d", n, len(got), len(want))
		}
		for i := range got {
			if fp := clusterFingerprint(got[i]); fp != want[i] {
				t.Errorf("waves=%d: cluster %d = %s, want %s", n, i, fp, want[i])
			}
		}
		if len(skipped) != len(wantSkipped) {
			t.Fatalf("waves=%d: %d skipped, want %d", n, len(skipped), len(wantSkipped))
		}
		for i := range skipped {
			if skipped[i].ID != wantSkipped[i].ID {
				t.Errorf("waves=%d: skipped %d = %s, want %s", n, i, skipped[i].ID, wantSkipped[i].ID)
			}
		}
	}
}

// TestMemoryMatchesGroupRandomized fuzzes the same property over random
// offer sequences and random (non-contiguous sizes, contiguous order)
// partitionings.
func TestMemoryMatchesGroupRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var offers []offer.Offer
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			var kvs []string
			if rng.Intn(10) > 0 { // 10% key-less
				kvs = append(kvs, catalog.AttrUPC, fmt.Sprintf("u%d", rng.Intn(8)))
				if rng.Intn(3) == 0 {
					kvs = append(kvs, catalog.AttrMPN, fmt.Sprintf("m%d", rng.Intn(8)))
				}
			}
			offers = append(offers, mk(fmt.Sprintf("t%d-o%d", trial, i), fmt.Sprintf("c%d", rng.Intn(3)), kvs...))
		}
		wantClusters, _ := cluster.Group(offers, cluster.Options{})
		want := make([]string, len(wantClusters))
		for i, c := range wantClusters {
			want[i] = clusterFingerprint(c)
		}

		mem := NewMemory(MemoryOptions{})
		for lo := 0; lo < len(offers); {
			hi := lo + 1 + rng.Intn(6)
			if hi > len(offers) {
				hi = len(offers)
			}
			mem.Add(nil, offers[lo:hi])
			lo = hi
		}
		got := mem.Final()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d clusters, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if fp := clusterFingerprint(got[i]); fp != want[i] {
				t.Fatalf("trial %d: cluster %d = %s, want %s", trial, i, fp, want[i])
			}
		}
	}
}

// TestMemoryMergeAcrossWaves pins the cross-wave union: two clusters open
// in wave 1 are merged by a wave-2 offer carrying both keys, the merged
// cluster keeps the earliest creation slot, and the wave-2 snapshot holds
// the union of evidence in arrival order.
func TestMemoryMergeAcrossWaves(t *testing.T) {
	mem := NewMemory(MemoryOptions{})
	touched, _ := mem.Add(nil, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "hd", catalog.AttrMPN, "m-9"),
	})
	if len(touched) != 2 || mem.Len() != 2 {
		t.Fatalf("wave 1: touched %d, open %d; want 2, 2", len(touched), mem.Len())
	}

	touched, _ = mem.Add(nil, []offer.Offer{
		mk("c", "hd", catalog.AttrUPC, "111", catalog.AttrMPN, "M9"),
	})
	if len(touched) != 1 || mem.Len() != 1 {
		t.Fatalf("wave 2: touched %d, open %d; want 1, 1", len(touched), mem.Len())
	}
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [a b c]" {
		t.Errorf("merged cluster = %s, want hd/UPC=111 [a b c]", fp)
	}
	final := mem.Final()
	if len(final) != 1 || clusterFingerprint(final[0]) != clusterFingerprint(touched[0]) {
		t.Errorf("Final = %v", final)
	}
}

// TestMemorySnapshotIsolation ensures a returned snapshot is not mutated
// when later waves extend the same cluster.
func TestMemorySnapshotIsolation(t *testing.T) {
	mem := NewMemory(MemoryOptions{})
	first, _ := mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")})
	mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "111")})
	if len(first[0].Offers) != 1 || first[0].Offers[0].ID != "a" {
		t.Errorf("wave-1 snapshot mutated by wave 2: %s", clusterFingerprint(first[0]))
	}
}

// TestMemoryLRUEviction bounds the memory and checks the least recently
// extended cluster is forgotten: its next same-key offer opens a fresh
// cluster (the duplicate a batch run would produce) instead of rejoining.
func TestMemoryLRUEviction(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 2})
	mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")})
	mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "222")})
	mem.Add(nil, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "333")}) // evicts 111
	if mem.Len() != 2 {
		t.Fatalf("open = %d, want 2", mem.Len())
	}
	if lru, _, _ := mem.Evictions(); lru != 1 {
		t.Fatalf("lru evictions = %d, want 1", lru)
	}
	touched, _ := mem.Add(nil, []offer.Offer{mk("d", "hd", catalog.AttrUPC, "111")})
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [d]" {
		t.Errorf("post-eviction cluster = %s, want fresh [d]", fp)
	}

	// A wave touching more clusters than the bound still reports them all.
	mem2 := NewMemory(MemoryOptions{MaxClusters: 1})
	touched, _ = mem2.Add(nil, []offer.Offer{
		mk("x", "hd", catalog.AttrUPC, "1"),
		mk("y", "hd", catalog.AttrUPC, "2"),
		mk("z", "hd", catalog.AttrUPC, "3"),
	})
	if len(touched) != 3 {
		t.Errorf("oversized wave touched %d clusters, want 3", len(touched))
	}
	if mem2.Len() != 1 {
		t.Errorf("open = %d, want bound 1", mem2.Len())
	}
}

// TestMemoryIdleExpiry checks the wave-TTL: clusters untouched for more
// than MaxIdleWaves waves are dropped at the next wave start.
func TestMemoryIdleExpiry(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxIdleWaves: 1})
	mem.Add(nil, []offer.Offer{mk("a", "hd", catalog.AttrUPC, "111")}) // wave 1
	// Wave 2: 111 idle for 1 wave — within TTL, still rejoinable.
	touched, _ := mem.Add(nil, []offer.Offer{mk("b", "hd", catalog.AttrUPC, "222")})
	if mem.Len() != 2 {
		t.Fatalf("after wave 2: open = %d, want 2", mem.Len())
	}
	// Wave 3: 111 idle for 2 waves > 1 — expired before the wave runs.
	touched, _ = mem.Add(nil, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "111")})
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [c]" {
		t.Errorf("expired cluster rejoined: %s", fp)
	}
	if _, idle, _ := mem.Evictions(); idle != 1 {
		t.Errorf("idle evictions = %d, want 1", idle)
	}
}

// TestMemoryVersionInvalidation checks mid-stream catalog growth: bumping
// a category's version (what AddToCatalog does) drops that category's
// open clusters at the next wave, while other categories' clusters stay.
func TestMemoryVersionInvalidation(t *testing.T) {
	store := catalog.NewStore()
	for _, id := range []string{"hd", "tv"} {
		if err := store.AddCategory(catalog.Category{
			ID: id, Name: id,
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mem := NewMemory(MemoryOptions{})
	mem.Add(store, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "tv", catalog.AttrUPC, "222"),
	})
	if mem.Len() != 2 {
		t.Fatalf("open = %d, want 2", mem.Len())
	}

	// Commit a product into hd — the mid-stream AddToCatalog.
	if err := store.AddProduct(catalog.Product{
		ID: "p1", CategoryID: "hd",
		Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "999"}},
	}); err != nil {
		t.Fatal(err)
	}

	touched, _ := mem.Add(store, []offer.Offer{mk("c", "hd", catalog.AttrUPC, "111")})
	if _, _, version := mem.Evictions(); version != 1 {
		t.Errorf("version evictions = %d, want 1 (hd cluster)", version)
	}
	// The hd cluster was invalidated, so "c" opens a fresh cluster; the
	// tv cluster survives untouched.
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [c]" {
		t.Errorf("post-invalidation cluster = %s, want fresh [c]", fp)
	}
	final := mem.Final()
	if len(final) != 2 {
		t.Fatalf("Final = %d clusters, want 2 (fresh hd + surviving tv)", len(final))
	}
	if fp := clusterFingerprint(final[0]); fp != "tv/UPC=222 [b]" {
		t.Errorf("surviving cluster = %s, want tv/UPC=222 [b]", fp)
	}
}

// TestMemoryVersionInvalidationMinorityCategory pins that a cluster
// spanning categories (global keys allow it) is invalidated when ANY
// member category's version bumps — not just the majority one. The
// cluster below is majority-hd; growth in tv must still evict it.
func TestMemoryVersionInvalidationMinorityCategory(t *testing.T) {
	store := catalog.NewStore()
	for _, id := range []string{"hd", "tv"} {
		if err := store.AddCategory(catalog.Category{
			ID: id, Name: id,
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	mem := NewMemory(MemoryOptions{})
	mem.Add(store, []offer.Offer{
		mk("a", "hd", catalog.AttrUPC, "111"),
		mk("b", "hd", catalog.AttrUPC, "111"),
		mk("c", "tv", catalog.AttrUPC, "111"), // minority member
	})
	if mem.Len() != 1 {
		t.Fatalf("open = %d, want 1", mem.Len())
	}
	if err := store.AddProduct(catalog.Product{
		ID: "p1", CategoryID: "tv",
		Spec: catalog.Spec{{Name: catalog.AttrUPC, Value: "999"}},
	}); err != nil {
		t.Fatal(err)
	}
	touched, _ := mem.Add(store, []offer.Offer{mk("d", "hd", catalog.AttrUPC, "111")})
	if _, _, version := mem.Evictions(); version != 1 {
		t.Errorf("version evictions = %d, want 1 (minority-category growth)", version)
	}
	if fp := clusterFingerprint(touched[0]); fp != "hd/UPC=111 [d]" {
		t.Errorf("post-invalidation cluster = %s, want fresh [d]", fp)
	}
}

// TestMemoryEvictionReleasesKeys ensures evicted clusters release their
// union-find keys — the memory's key space must not grow without bound
// under a bounded cluster count.
func TestMemoryEvictionReleasesKeys(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 4})
	for i := 0; i < 100; i++ {
		mem.Add(nil, []offer.Offer{
			mk(fmt.Sprintf("o%d", i), "hd",
				catalog.AttrUPC, fmt.Sprintf("u%d", i),
				catalog.AttrMPN, fmt.Sprintf("m%d", i)),
		})
	}
	if mem.Len() != 4 {
		t.Fatalf("open = %d, want 4", mem.Len())
	}
	if got := len(mem.parent); got > 8 {
		t.Errorf("union-find holds %d keys for 4 open clusters (leak)", got)
	}
}

// TestMemorySealRecords covers the eviction-side seal records: each evict
// path queues exactly one Evicted entry with the right reason and the
// membership snapshot at eviction time, DrainEvicted clears the queue, and
// CloseAll pairs 1:1 with Final().
func TestMemorySealRecords(t *testing.T) {
	t.Run("lru", func(t *testing.T) {
		mem := NewMemory(MemoryOptions{MaxClusters: 1})
		mem.Add(nil, []offer.Offer{mk("o0", "hd", catalog.AttrUPC, "111")})
		if ev := mem.DrainEvicted(); len(ev) != 0 {
			t.Fatalf("nothing should seal under the cap, got %v", ev)
		}
		mem.Add(nil, []offer.Offer{mk("o1", "hd", catalog.AttrUPC, "222")})
		ev := mem.DrainEvicted()
		if len(ev) != 1 || ev[0].Reason != SealLRU || ev[0].ID != 0 || ev[0].Wave != 1 {
			t.Fatalf("lru seal = %+v", ev)
		}
		if got := clusterFingerprint(ev[0].Cluster); got != "hd/UPC=111 [o0]" {
			t.Fatalf("sealed snapshot = %q", got)
		}
		if ev := mem.DrainEvicted(); len(ev) != 0 {
			t.Fatalf("drain must clear the queue, got %v", ev)
		}
	})

	t.Run("idle", func(t *testing.T) {
		mem := NewMemory(MemoryOptions{MaxIdleWaves: 1})
		mem.Add(nil, []offer.Offer{mk("o0", "hd", catalog.AttrUPC, "111")})
		mem.Add(nil, []offer.Offer{mk("o1", "hd", catalog.AttrUPC, "222")})
		mem.Add(nil, []offer.Offer{mk("o2", "hd", catalog.AttrUPC, "333")})
		ev := mem.DrainEvicted()
		if len(ev) != 1 || ev[0].Reason != SealIdle || ev[0].ID != 0 {
			t.Fatalf("idle seal = %+v", ev)
		}
	})

	t.Run("invalidated", func(t *testing.T) {
		store := catalog.NewStore()
		if err := store.AddCategory(catalog.Category{
			ID: "hd", Name: "hd",
			Schema: catalog.Schema{Attributes: []catalog.Attribute{
				{Name: catalog.AttrUPC, Kind: catalog.KindIdentifier},
			}},
		}); err != nil {
			t.Fatal(err)
		}
		mem := NewMemory(MemoryOptions{})
		mem.Add(store, []offer.Offer{mk("o0", "hd", catalog.AttrUPC, "111")})
		if err := store.AddProduct(catalog.Product{ID: "p1", CategoryID: "hd"}); err != nil {
			t.Fatal(err)
		}
		mem.Add(store, []offer.Offer{mk("o1", "hd", catalog.AttrUPC, "222")})
		ev := mem.DrainEvicted()
		if len(ev) != 1 || ev[0].Reason != SealInvalidated || ev[0].ID != 0 {
			t.Fatalf("invalidation seal = %+v", ev)
		}
	})

	t.Run("close", func(t *testing.T) {
		mem := NewMemory(MemoryOptions{})
		for _, wave := range partitions(corpus(), 3) {
			mem.Add(nil, wave)
		}
		closing := mem.CloseAll()
		final := mem.Final()
		if len(closing) != len(final) || len(closing) == 0 {
			t.Fatalf("CloseAll %d entries, Final %d", len(closing), len(final))
		}
		seen := map[int]bool{}
		for i, ev := range closing {
			if ev.Reason != SealClose || ev.Wave != mem.Waves() {
				t.Fatalf("close entry %d = %+v", i, ev)
			}
			if seen[ev.ID] {
				t.Fatalf("duplicate sealed ID %d", ev.ID)
			}
			seen[ev.ID] = true
			if clusterFingerprint(ev.Cluster) != clusterFingerprint(final[i]) {
				t.Fatalf("CloseAll[%d] cluster diverges from Final()[%d]", i, i)
			}
		}
		// Non-destructive: the memory is still open.
		if mem.Len() != len(final) {
			t.Fatal("CloseAll mutated the memory")
		}
	})
}

// TestMemorySealExactlyOnce runs a bounded memory over the corpus and
// asserts the exactly-once contract: the union of drained evictions and
// the closing records covers each cluster ID at most once, and clusters
// retired by merges (their ordinals absorbed into the survivor) never
// appear at all.
func TestMemorySealExactlyOnce(t *testing.T) {
	mem := NewMemory(MemoryOptions{MaxClusters: 2, MaxIdleWaves: 1})
	sealed := map[int]SealReason{}
	record := func(evs []Evicted) {
		for _, ev := range evs {
			if prev, dup := sealed[ev.ID]; dup {
				t.Fatalf("cluster %d sealed twice: %v then %v", ev.ID, prev, ev.Reason)
			}
			sealed[ev.ID] = ev.Reason
		}
	}
	for _, wave := range partitions(corpus(), 7) {
		mem.Add(nil, wave)
		record(mem.DrainEvicted())
	}
	record(mem.CloseAll())
	if len(sealed) == 0 {
		t.Fatal("bounded corpus run sealed nothing")
	}
}
