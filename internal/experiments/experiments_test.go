package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prodsynth/internal/core"
	"prodsynth/internal/eval"
	"prodsynth/internal/synth"
)

// testEnv builds one shared environment for the whole test file (the
// offline phase is the expensive part).
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv != nil {
		return sharedEnv
	}
	e, err := Setup(context.Background(), synth.Config{
		Seed:                13,
		CategoriesPerDomain: 3,
		ProductsPerCategory: 25,
		Merchants:           40,
	}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharedEnv = e
	return e
}

func TestTable2(t *testing.T) {
	e := env(t)
	r := Table2(e)
	if r.Products == 0 || r.AttributePairs == 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.AttributePrec < 0.8 {
		t.Errorf("attribute precision = %.3f, want >= 0.8 (paper: 0.92)", r.AttributePrec)
	}
	if r.ProductPrec > r.AttributePrec {
		t.Error("product precision cannot exceed attribute precision")
	}
	var buf bytes.Buffer
	RenderTable2(&buf, r)
	if !strings.Contains(buf.String(), "Synthesized Products") {
		t.Error("render missing rows")
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	reports := Table3(e)
	if len(reports) != 4 {
		t.Fatalf("reports = %d", len(reports))
	}
	by := make(map[string]eval.CategoryReport)
	for _, r := range reports {
		by[r.TopLevel] = r
	}
	// Paper Table 3 shape: attribute-rich domains (Computing, Cameras)
	// have more attrs per product and LOWER strict product precision
	// than sparse domains (Furnishings, Kitchen).
	rich := (by["Computing"].AvgAttrsPerProduct() + by["Cameras"].AvgAttrsPerProduct()) / 2
	sparse := (by["Home Furnishings"].AvgAttrsPerProduct() + by["Kitchen & Housewares"].AvgAttrsPerProduct()) / 2
	if rich <= sparse {
		t.Errorf("avg attrs: rich %.2f <= sparse %.2f", rich, sparse)
	}
	richPP := (by["Computing"].ProductPrecision() + by["Cameras"].ProductPrecision()) / 2
	sparsePP := (by["Home Furnishings"].ProductPrecision() + by["Kitchen & Housewares"].ProductPrecision()) / 2
	if richPP >= sparsePP {
		t.Errorf("product precision inversion missing: rich %.2f >= sparse %.2f", richPP, sparsePP)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, reports)
	if !strings.Contains(buf.String(), "Computing") {
		t.Error("render missing rows")
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	heavy, light := Table4(e)
	if heavy.Products == 0 || light.Products == 0 {
		t.Skipf("need both buckets: heavy=%d light=%d", heavy.Products, light.Products)
	}
	// Paper Table 4 shape: recall higher for heavy bucket, precision
	// similar; evidence pool much larger for heavy bucket.
	if heavy.AttributeRecall <= light.AttributeRecall {
		t.Errorf("recall: heavy %.3f <= light %.3f", heavy.AttributeRecall, light.AttributeRecall)
	}
	if heavy.AvgPoolSize <= light.AvgPoolSize {
		t.Errorf("pool: heavy %.1f <= light %.1f", heavy.AvgPoolSize, light.AvgPoolSize)
	}
	var buf bytes.Buffer
	RenderTable4(&buf, heavy, light)
	if !strings.Contains(buf.String(), "Table 4") {
		t.Error("render missing header")
	}
}

func TestFigure6ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	f, err := Figure6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Names) != 3 {
		t.Fatalf("series = %d", len(f.Names))
	}
	// Paper Figure 6 shape: the classifier beats both single features at
	// matched precision. Compare exact coverage at precision 0.85.
	ours := f.CoverageAt("Our approach", 0.85)
	js := f.CoverageAt("JS-MC only", 0.85)
	jac := f.CoverageAt("Jaccard-MC only", 0.85)
	if ours == 0 {
		t.Fatal("our approach never reaches 0.85 precision")
	}
	if ours < js || ours < jac {
		t.Errorf("coverage@0.85: ours=%d js=%d jaccard=%d (classifier should win)", ours, js, jac)
	}
	var buf bytes.Buffer
	if err := RenderFigure(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Our approach") {
		t.Error("render missing series")
	}
}

func TestFigure7ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	f, err := Figure7(e)
	if err != nil {
		t.Fatal(err)
	}
	ours := f.CoverageAt("Our approach", 0.85)
	noMatch := f.CoverageAt("No matching", 0.85)
	if ours == 0 {
		t.Fatal("our approach never reaches 0.85 precision")
	}
	if ours <= noMatch {
		t.Errorf("coverage@0.85: with-matches=%d <= no-matches=%d (paper Figure 7 inverts this)", ours, noMatch)
	}
}

func TestFigure8ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	f, err := Figure8(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Names) != 6 {
		t.Fatalf("series = %d", len(f.Names))
	}
	// Paper Figure 8 shape: our approach achieves the highest coverage
	// at high precision among all systems.
	ours := f.CoverageAt("Our approach", 0.8)
	if ours == 0 {
		t.Fatal("our approach never reaches 0.8 precision")
	}
	for _, name := range f.Names[1:] {
		if c := f.CoverageAt(name, 0.8); c > ours {
			t.Errorf("%s coverage@0.8 = %d beats ours %d", name, c, ours)
		}
	}
}

func TestFigure9ShapeMatchesPaper(t *testing.T) {
	e := env(t)
	f, err := Figure9(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Names) != 5 {
		t.Fatalf("series = %d", len(f.Names))
	}
	// The firm assertion from the paper: our approach leads to higher
	// precision at the same coverage than all COMA++ configurations.
	ours := f.CoverageAt("Our approach", 0.8)
	if ours == 0 {
		t.Fatal("our approach never reaches 0.8 precision")
	}
	for _, name := range f.Names[1:] {
		if c := f.CoverageAt(name, 0.8); c > ours {
			t.Errorf("%s coverage@0.8 = %d beats ours %d", name, c, ours)
		}
	}
}
