// Command synthesize runs the end-to-end product synthesis pipeline over a
// dataset directory produced by cmd/datagen (or hand-assembled in the same
// layout): offline learning on the historical feed, then runtime synthesis
// on the incoming feed. Synthesized products are written as JSON.
//
// Usage:
//
//	synthesize -data ./data [-out products.json] [-threshold 0.5]
//	           [-correspondences corr.tsv] [-v]
//
// When the dataset carries ground truth, the run is graded and attribute /
// product precision are printed (the paper's Table 2 metrics).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"prodsynth/internal/categorize"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/dataset"
	"prodsynth/internal/eval"
	"prodsynth/internal/fusion"
)

type jsonProduct struct {
	CategoryID string            `json:"category_id"`
	Key        string            `json:"key"`
	KeyAttr    string            `json:"key_attr"`
	Spec       map[string]string `json:"spec"`
	OfferIDs   []string          `json:"offer_ids"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("synthesize: ")

	var (
		data      = flag.String("data", "", "dataset directory (required)")
		out       = flag.String("out", "", "write synthesized products JSON here (default stdout)")
		threshold = flag.Float64("threshold", 0.5, "correspondence score threshold")
		corrOut   = flag.String("correspondences", "", "also write learned correspondences (TSV)")
		corrIn    = flag.String("load", "", "load correspondences from TSV and skip offline learning")
		verbose   = flag.Bool("v", false, "print pipeline statistics")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	ds, err := dataset.Load(*data)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{ScoreThreshold: *threshold}
	fetcher := core.MapFetcher(ds.Pages)

	var off *core.OfflineResult
	if *corrIn != "" {
		set, err := loadCorrespondences(*corrIn)
		if err != nil {
			log.Fatal(err)
		}
		classifier := categorize.New()
		classifier.TrainFromCatalog(ds.Catalog)
		off = core.OfflineFromCorrespondences(set, classifier)
		if *verbose {
			fmt.Fprintf(os.Stderr, "loaded %d correspondences from %s (offline learning skipped)\n",
				set.Len(), *corrIn)
		}
	} else {
		var err error
		off, err = core.RunOffline(ds.Catalog, ds.HistoricalOffers, fetcher, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *verbose && *corrIn == "" {
		st := off.Stats
		fmt.Fprintf(os.Stderr, "offline: %d offers, %d matched, %d candidates, training %d (%d+), %d correspondences\n",
			st.HistoricalOffers, st.MatchedOffers, st.Candidates, st.TrainingSize, st.TrainingPositives, st.Correspondences)
	}
	if *corrOut != "" {
		if err := writeCorrespondences(*corrOut, off); err != nil {
			log.Fatal(err)
		}
	}

	run, err := core.RunRuntime(ds.Catalog, off, ds.IncomingOffers, fetcher, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "runtime: %d products, %d pairs mapped, %d dropped, %d offers without key, %d matched existing\n",
			len(run.Products), run.Reconcile.PairsMapped, run.Reconcile.PairsDropped,
			len(run.SkippedNoKey), run.ExcludedMatched)
	}

	if err := writeProducts(*out, run.Products); err != nil {
		log.Fatal(err)
	}

	if ds.Truth != nil {
		rep := eval.GradeSynthesis(run.Products, ds.Truth, ds.Universe)
		fmt.Fprintf(os.Stderr, "graded against ground truth: attribute precision %.3f, product precision %.3f (%d products, %d pairs)\n",
			rep.AttributePrecision(), rep.ProductPrecision(), rep.Products, rep.AttributePairs)
	}
}

func writeProducts(path string, products []fusion.Synthesized) error {
	var w *os.File
	if path == "" {
		w = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	for _, p := range products {
		jp := jsonProduct{
			CategoryID: p.CategoryID, Key: p.Key, KeyAttr: p.KeyAttr,
			Spec: make(map[string]string, len(p.Spec)), OfferIDs: p.OfferIDs,
		}
		for _, av := range p.Spec {
			jp.Spec[av.Name] = av.Value
		}
		if err := enc.Encode(jp); err != nil {
			return err
		}
	}
	return nil
}

func loadCorrespondences(path string) (*correspond.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return correspond.ReadSet(f)
}

func writeCorrespondences(path string, off *core.OfflineResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := correspond.WriteSet(f, off.Correspondences); err != nil {
		return err
	}
	return f.Close()
}
