// Snapshot: versioned binary persistence for the catalog store — the
// second half of warm start, alongside the model snapshot in
// internal/core. A Store serializes to a framed block (magic + version +
// length + CRC32 header over a deterministic payload, shared framing in
// internal/snapfmt) capturing categories with their schemas, products in
// per-category insertion order, the per-category version counters, and
// the key-index ownership table; decoding rebuilds every index so the
// loaded store is behaviorally identical to the original — including
// ProductsSince deltas and CategoryVersion-driven cache invalidation.
package catalog

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"prodsynth/internal/snapfmt"
)

// SnapshotVersion is the on-disk format version written by EncodeStore.
// DecodeStore rejects any other version.
const SnapshotVersion = 1

// ErrBadSnapshot is wrapped by every DecodeStore error caused by the
// input (bad magic, unsupported version, checksum mismatch, truncation,
// malformed or inconsistent payload) — as opposed to I/O errors from the
// reader.
var ErrBadSnapshot = errors.New("catalog: invalid catalog snapshot")

var snapshotMagic = [4]byte{'P', 'S', 'C', 'T'}

// maxSnapshotPayload bounds the payload length DecodeStore accepts, so a
// corrupt header cannot demand an absurd read.
const maxSnapshotPayload = 1 << 30

// validKind reports whether k is one of the defined attribute kinds —
// the range the snapshot codec accepts, on both the save and load side.
func validKind(k AttributeKind) bool {
	return k >= KindCategorical && k <= KindIdentifier
}

// Snapshot is the serializable deep copy of a Store's logical state. It
// is plain data — no locks, no index maps — so it can be encoded, moved
// across a process boundary, or (once the store is sharded) captured per
// shard. Obtain one with Store.Snapshot and rebuild with FromSnapshot.
type Snapshot struct {
	// Categories holds every category sorted by ID, each with its
	// products in insertion order and its version counter.
	Categories []CategorySnapshot
	// Keys is the key-index ownership table sorted by key: which product
	// owns each UPC/MPN key. Recorded explicitly because ownership is
	// first-insertion-wins across the whole store, which per-category
	// product order alone cannot reconstruct when a key is shared across
	// categories.
	Keys []KeyOwner
}

// CategorySnapshot is one category's slice of a Snapshot.
type CategorySnapshot struct {
	Category Category
	// Version is the category's mutation counter (see CategoryVersion).
	Version uint64
	// Products are the category's products in insertion order.
	Products []Product
}

// KeyOwner records that ProductID owns Key in the store's key index.
type KeyOwner struct {
	Key       string
	ProductID string
}

// Snapshot captures the store's state atomically: categories sorted by
// ID, products in per-category insertion order, version counters, and
// the key ownership table sorted by key. Everything is deeply copied;
// later store mutation does not affect the snapshot.
func (st *Store) Snapshot() Snapshot {
	return st.b.Snapshot()
}

// MergeSnapshots combines per-shard snapshots (see Store.ShardSnapshot)
// back into one global snapshot, restoring the deterministic ordering
// Snapshot guarantees: categories sorted by ID, keys sorted by key. The
// inputs must be disjoint (each category and key in exactly one shard),
// which FromSnapshot's consistency checks enforce when the merge is
// loaded.
func MergeSnapshots(shards []Snapshot) Snapshot {
	var snap Snapshot
	for _, s := range shards {
		snap.Categories = append(snap.Categories, s.Categories...)
		snap.Keys = append(snap.Keys, s.Keys...)
	}
	sortSnapshotCategories(&snap)
	sort.Slice(snap.Keys, func(i, j int) bool { return snap.Keys[i].Key < snap.Keys[j].Key })
	return snap
}

// FromSnapshot rebuilds a Store from a snapshot, reconstructing the
// category, key, and schema-name indexes, and validating the snapshot's
// internal consistency: category and product IDs must be unique, every
// product must belong to its enclosing category and conform to its
// schema, and the key table must cover exactly the keys the products
// carry, each owned by a product actually holding that key. The rebuilt
// store is behaviorally identical to the one the snapshot was taken
// from.
func FromSnapshot(snap Snapshot) (*Store, error) {
	return FromSnapshotShards(snap, DefaultShards)
}

// FromSnapshotShards is FromSnapshot onto an in-memory backend with the
// given shard count — the recovery entry point, where the shard count is
// configuration rather than the default.
func FromSnapshotShards(snap Snapshot, shards int) (*Store, error) {
	if err := validateSnapshot(snap); err != nil {
		return nil, err
	}
	b := NewMemBackend(shards).(*memBackend)
	b.loadSnapshot(snap)
	return NewStoreBackend(b), nil
}

// validateSnapshot runs the consistency checks FromSnapshot promises,
// against transient indexes rather than a live backend.
func validateSnapshot(snap Snapshot) error {
	cats := make(map[string]*Category, len(snap.Categories))
	prods := make(map[string]*Product)
	for ci := range snap.Categories {
		cs := &snap.Categories[ci]
		c := cs.Category
		if c.ID == "" {
			return errors.New("catalog: snapshot category with empty ID")
		}
		if _, dup := cats[c.ID]; dup {
			return fmt.Errorf("catalog: snapshot has duplicate category %s", c.ID)
		}
		for _, a := range c.Schema.Attributes {
			if !validKind(a.Kind) {
				return fmt.Errorf("catalog: snapshot attribute %q in %s has invalid kind %d", a.Name, c.ID, a.Kind)
			}
		}
		cc := c
		cc.Schema.Attributes = append([]Attribute(nil), c.Schema.Attributes...)
		cc.Schema.byName = nil
		cc.Schema.buildNameIndex()
		cats[cc.ID] = &cc
		for pi := range cs.Products {
			p := &cs.Products[pi]
			if p.ID == "" {
				return fmt.Errorf("catalog: snapshot product with empty ID in %s", cc.ID)
			}
			if p.CategoryID != cc.ID {
				return fmt.Errorf("catalog: snapshot product %s claims category %s inside %s", p.ID, p.CategoryID, cc.ID)
			}
			if _, dup := prods[p.ID]; dup {
				return fmt.Errorf("catalog: snapshot has duplicate product %s", p.ID)
			}
			for _, av := range p.Spec {
				if !cc.Schema.Has(av.Name) {
					return fmt.Errorf("catalog: snapshot product %s: %q not in schema of %s", p.ID, av.Name, cc.ID)
				}
			}
			prods[p.ID] = p
		}
		// The store's only mutation today is an append, so a category's
		// version always equals its product count — and ProductsSince
		// depends on that equality to serve deltas. Reject snapshots that
		// break it, or the loaded store would silently degrade every
		// incremental index update into a full rebuild.
		if cs.Version != uint64(len(cs.Products)) {
			return fmt.Errorf("catalog: snapshot category %s has version %d but %d products", cc.ID, cs.Version, len(cs.Products))
		}
	}
	seenKeys := make(map[string]bool, len(snap.Keys))
	for _, ko := range snap.Keys {
		if seenKeys[ko.Key] {
			return fmt.Errorf("catalog: snapshot key table repeats key %q", ko.Key)
		}
		seenKeys[ko.Key] = true
		owner, ok := prods[ko.ProductID]
		if !ok {
			return fmt.Errorf("catalog: snapshot key %q owned by unknown product %s", ko.Key, ko.ProductID)
		}
		if k, ok := owner.Key(); !ok || k != ko.Key {
			return fmt.Errorf("catalog: snapshot key %q owner %s does not carry that key", ko.Key, ko.ProductID)
		}
	}
	// Coverage: every key a product carries must have an owner, or a
	// forged snapshot could hide products from ProductByKey.
	for id, p := range prods {
		if k, ok := p.Key(); ok {
			if !seenKeys[k] {
				return fmt.Errorf("catalog: snapshot key table misses key %q of product %s", k, id)
			}
		}
	}
	return nil
}

// EncodeStore writes a versioned, checksummed snapshot of the store. The
// output is deterministic: encoding the same logical state twice yields
// identical bytes, so snapshots can be content-addressed and diffed.
func EncodeStore(w io.Writer, st *Store) error {
	if st == nil {
		return errors.New("catalog: nil store")
	}
	return EncodeSnapshot(w, st.Snapshot())
}

// EncodeSnapshot writes one snapshot as a framed block — the same format
// EncodeStore produces, exposed so per-shard snapshots (which are plain
// Snapshot values) serialize independently onto the shared framing.
func EncodeSnapshot(w io.Writer, snap Snapshot) error {
	var p snapfmt.Writer
	p.U32(uint32(len(snap.Categories)))
	for _, cs := range snap.Categories {
		p.Str(cs.Category.ID)
		p.Str(cs.Category.Name)
		p.Str(cs.Category.TopLevel)
		p.U32(uint32(len(cs.Category.Schema.Attributes)))
		for _, a := range cs.Category.Schema.Attributes {
			// An out-of-range kind would encode fine but fail every
			// decode — reject it at save time, like the payload cap.
			if !validKind(a.Kind) {
				return fmt.Errorf("catalog: snapshot attribute %q in %s has invalid kind %d", a.Name, cs.Category.ID, a.Kind)
			}
			p.Str(a.Name)
			p.U32(uint32(a.Kind))
			p.Str(a.Unit)
		}
		p.U64(cs.Version)
		p.U32(uint32(len(cs.Products)))
		for _, prod := range cs.Products {
			// CategoryID is implied by the enclosing category; reject
			// snapshots that disagree rather than silently rewriting.
			if prod.CategoryID != cs.Category.ID {
				return fmt.Errorf("catalog: snapshot product %s claims category %s inside %s",
					prod.ID, prod.CategoryID, cs.Category.ID)
			}
			p.Str(prod.ID)
			p.U32(uint32(len(prod.Spec)))
			for _, av := range prod.Spec {
				p.Str(av.Name)
				p.Str(av.Value)
			}
		}
	}
	p.U32(uint32(len(snap.Keys)))
	for _, ko := range snap.Keys {
		p.Str(ko.Key)
		p.Str(ko.ProductID)
	}
	return snapfmt.Encode(w, snapshotMagic, SnapshotVersion, maxSnapshotPayload, p.Bytes())
}

// DecodeStore parses a snapshot written by EncodeStore, strictly: any
// deviation from the format — wrong magic, unknown version, length or
// checksum mismatch, truncated or trailing bytes, an out-of-range
// attribute kind, or a payload whose indexes cannot be rebuilt
// consistently — is an error wrapping ErrBadSnapshot, never a panic or a
// partially filled store.
func DecodeStore(r io.Reader) (*Store, error) {
	st, err := DecodeStoreFrom(r)
	if err != nil {
		return nil, err
	}
	if err := snapfmt.ExpectEOF(r, ErrBadSnapshot); err != nil {
		return nil, err
	}
	return st, nil
}

// DecodeStoreFrom parses exactly one snapshot block and leaves the
// reader positioned after it — the entry point for composite artifacts
// (the catalog+model bundle) where another block follows. DecodeStore is
// this plus a trailing-data check.
func DecodeStoreFrom(r io.Reader) (*Store, error) {
	snap, err := DecodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	st, err := FromSnapshot(snap)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	return st, nil
}

// DecodeSnapshot parses one snapshot block into a plain Snapshot without
// building a store — the shape shard-by-shard recovery needs, where
// several shard snapshots are merged (MergeSnapshots) and validated once
// by FromSnapshot. The framing and payload strictness match DecodeStore;
// the cross-index consistency checks are FromSnapshot's job.
func DecodeSnapshot(r io.Reader) (Snapshot, error) {
	payload, err := snapfmt.Decode(r, snapshotMagic, SnapshotVersion, maxSnapshotPayload, ErrBadSnapshot)
	if err != nil {
		return Snapshot{}, err
	}
	d := snapfmt.NewReader(payload, ErrBadSnapshot)
	snap := decodeSnapshot(d)
	if err := d.Finish(); err != nil {
		return Snapshot{}, err
	}
	return snap, nil
}

func decodeSnapshot(d *snapfmt.Reader) Snapshot {
	var snap Snapshot
	// Smallest category: three empty strings (4 each) + attribute count
	// (4) + version (8) + product count (4).
	nCats := d.Count("categories", 3*4+4+8+4)
	for i := 0; i < nCats && d.Err() == nil; i++ {
		cs := CategorySnapshot{Category: Category{
			ID:       d.Str(),
			Name:     d.Str(),
			TopLevel: d.Str(),
		}}
		// Smallest attribute: empty name (4) + kind (4) + empty unit (4).
		nAttrs := d.Count("schema attributes", 12)
		for j := 0; j < nAttrs && d.Err() == nil; j++ {
			// Kind range is validated once, in FromSnapshot, which every
			// decode runs through.
			a := Attribute{Name: d.Str(), Kind: AttributeKind(d.U32()), Unit: d.Str()}
			cs.Category.Schema.Attributes = append(cs.Category.Schema.Attributes, a)
		}
		cs.Version = d.U64()
		// Smallest product: empty ID (4) + pair count (4).
		nProds := d.Count("products", 8)
		for j := 0; j < nProds && d.Err() == nil; j++ {
			prod := Product{ID: d.Str(), CategoryID: cs.Category.ID}
			// Smallest pair: empty name (4) + empty value (4).
			nPairs := d.Count("spec pairs", 8)
			for k := 0; k < nPairs && d.Err() == nil; k++ {
				prod.Spec = append(prod.Spec, AttributeValue{Name: d.Str(), Value: d.Str()})
			}
			cs.Products = append(cs.Products, prod)
		}
		snap.Categories = append(snap.Categories, cs)
	}
	// Smallest key entry: empty key (4) + empty product ID (4).
	nKeys := d.Count("key table", 8)
	for i := 0; i < nKeys && d.Err() == nil; i++ {
		snap.Keys = append(snap.Keys, KeyOwner{Key: d.Str(), ProductID: d.Str()})
	}
	return snap
}
