package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"prodsynth"
	"prodsynth/internal/experiments"
	"prodsynth/internal/serve"
)

// The serving benchmark boots the daemon's HTTP layer in-process on a
// real TCP listener and measures POST /v1/synthesize round trips — the
// full wire path (JSON decode, admission, synthesis, JSON encode) rather
// than the bare pipeline, so the report answers "what does a synthd
// deployment sustain", not "what does the library sustain".
const (
	serveBenchWarmup      = 3
	serveBenchRequests    = 60
	serveBenchConcurrency = 4
)

// serveBenchReport is the machine-readable shape written to -servebench
// (BENCH_serve.json in CI).
type serveBenchReport struct {
	GeneratedAt    string  `json:"generated_at"`
	Scale          string  `json:"scale"`
	Seed           int64   `json:"seed"`
	Offers         int     `json:"offers"`
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	MeanMS         float64 `json:"mean_ms"`
	// ProductsPerRequest pins that every measured request did the full
	// synthesis (the response is deterministic, so one number).
	ProductsPerRequest int `json:"products_per_request"`
	// Shed must be 0: the benchmark's concurrency stays under the
	// admission cap, so a nonzero value means the harness raced itself.
	Shed uint64 `json:"shed"`
}

// runServeBench measures the serving layer over the experiment dataset
// and writes the JSON report to path.
func runServeBench(w io.Writer, env *experiments.Env, rc runConfig, path string) error {
	fmt.Fprintf(w, "## serving benchmark (%d requests, concurrency %d)\n\n", serveBenchRequests, serveBenchConcurrency)

	ds := env.Dataset
	model, err := prodsynth.Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
	if err != nil {
		return err
	}
	sys := prodsynth.NewSystem(ds.Catalog, model)
	srv := serve.New(sys, serve.Options{MaxInFlight: 2 * serveBenchConcurrency})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(ctx, ln) }()
	defer func() {
		cancel()
		<-runDone
	}()

	body, err := json.Marshal(serve.SynthesizeRequest{
		Offers: serve.WireOffers(ds.IncomingOffers),
		Pages:  serve.WirePages(ds.Pages),
	})
	if err != nil {
		return err
	}
	url := "http://" + ln.Addr().String() + "/v1/synthesize"
	client := &http.Client{}

	products := 0
	do := func() (time.Duration, error) {
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("servebench: status %d: %s", resp.StatusCode, data)
		}
		elapsed := time.Since(start)
		var res serve.SynthesizeResponse
		if err := json.Unmarshal(data, &res); err != nil {
			return 0, err
		}
		products = len(res.Products)
		return elapsed, nil
	}

	for i := 0; i < serveBenchWarmup; i++ {
		if _, err := do(); err != nil {
			return err
		}
	}

	latencies := make([]time.Duration, serveBenchRequests)
	errs := make([]error, serveBenchConcurrency)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	benchStart := time.Now()
	for c := 0; c < serveBenchConcurrency; c++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= serveBenchRequests {
					return
				}
				d, err := do()
				if err != nil {
					errs[worker] = err
					return
				}
				latencies[i] = d
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(benchStart)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var total time.Duration
	for _, d := range latencies {
		total += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	report := serveBenchReport{
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		Scale:              rc.scale,
		Seed:               rc.seed,
		Offers:             len(ds.IncomingOffers),
		Requests:           serveBenchRequests,
		Concurrency:        serveBenchConcurrency,
		RequestsPerSec:     float64(serveBenchRequests) / wall.Seconds(),
		P50MS:              ms(latencies[serveBenchRequests/2]),
		P99MS:              ms(latencies[serveBenchRequests*99/100]),
		MeanMS:             ms(total / serveBenchRequests),
		ProductsPerRequest: products,
		Shed:               shedCount(srv),
	}

	fmt.Fprintf(w, "requests/sec %.1f, p50 %.2fms, p99 %.2fms, mean %.2fms (%d products per request)\n\n",
		report.RequestsPerSec, report.P50MS, report.P99MS, report.MeanMS, report.ProductsPerRequest)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	return f.Close()
}

// shedCount reads the server's shed counter back out of its registry —
// the benchmark's sanity check that admission never throttled the run.
func shedCount(srv *serve.Server) uint64 {
	return srv.Metrics().Counter("synthd_shed_total", "").Value()
}
