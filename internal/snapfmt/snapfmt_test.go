package snapfmt

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

var testMagic = [4]byte{'T', 'E', 'S', 'T'}

var errBad = errors.New("test: bad block")

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("hello snapshot payload")
	var buf bytes.Buffer
	if err := Encode(&buf, testMagic, 3, 1<<20, payload); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()), testMagic, 3, 1<<20, errBad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: %q != %q", got, payload)
	}
}

// TestEncodeRejectsOversizedPayload pins the save-time half of the size
// limit: a payload the decoder would refuse must not be writable in the
// first place, or the artifact is silently unrecoverable.
func TestEncodeRejectsOversizedPayload(t *testing.T) {
	payload := make([]byte, 100)
	var buf bytes.Buffer
	err := Encode(&buf, testMagic, 1, 99, payload)
	if err == nil {
		t.Fatal("oversized payload encoded without error")
	}
	if !strings.Contains(err.Error(), "unloadable") {
		t.Errorf("err = %v, want the unloadable-artifact explanation", err)
	}
	if buf.Len() != 0 {
		t.Errorf("failed Encode wrote %d bytes", buf.Len())
	}
	// At the limit exactly, the block must encode and decode.
	if err := Encode(&buf, testMagic, 1, 100, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()), testMagic, 1, 100, errBad); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeLeavesReaderAtBlockEnd pins the self-delimiting property the
// bundle depends on: two blocks decode back to back from one reader.
func TestDecodeLeavesReaderAtBlockEnd(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testMagic, 1, 1<<10, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&buf, testMagic, 1, 1<<10, []byte("second")); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	a, err := Decode(r, testMagic, 1, 1<<10, errBad)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(r, testMagic, 1, 1<<10, errBad)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "first" || string(b) != "second" {
		t.Fatalf("blocks = %q, %q", a, b)
	}
	if err := ExpectEOF(r, errBad); err != nil {
		t.Fatal(err)
	}
}
