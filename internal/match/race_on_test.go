//go:build race

package match

const raceEnabled = true
