// Package fetch is the resilience layer around the pipeline's one
// external boundary: landing-page retrieval. The pipeline's substrate
// packages treat a fetcher as an infallible map lookup; production
// crawlers time out, flap, and fall over wholesale. This package wraps
// any fetcher with the standard production defenses — per-attempt
// deadlines, bounded retries with exponential backoff and full jitter, a
// per-host circuit breaker, and a bounded-concurrency gate — and makes
// every failure observable through counters instead of silently swallowed.
//
// The package is a leaf: it imports only the standard library and defines
// its interfaces structurally, so internal/core's PageFetcher satisfies
// Pages without an import in either direction.
//
// Two fetcher shapes exist at the boundary:
//
//   - Pages is the legacy context-free interface (core.PageFetcher's
//     structural twin): Fetch(url).
//   - ContextPages is the context-aware boundary: FetchContext(ctx, url).
//     A fetcher implementing it observes pipeline cancellation and
//     per-attempt deadlines mid-fetch instead of being abandoned.
//
// Resilient implements both, so it drops in anywhere a PageFetcher is
// accepted while upgrading the boundary to context-awareness; the
// pipeline detects ContextPages by interface upgrade and threads its
// stage context through.
//
// Every behavior is testable without wall-clock flakiness: the Clock
// interface injects time (FakeClock advances instantly through backoff
// and injected latency), and Faulty scripts deterministic per-(URL,
// attempt) fault schedules, so retry outcomes are fixed by the schedule,
// not by scheduling.
package fetch

import (
	"context"
	"errors"
	neturl "net/url"
	"strings"
)

// Pages retrieves landing pages by URL — the structural twin of
// core.PageFetcher, kept context-free for legacy fetchers that cannot be
// interrupted.
type Pages interface {
	Fetch(url string) (string, error)
}

// ContextPages is the context-aware fetch boundary. Cancelling ctx (or
// exceeding a deadline derived from it) aborts the fetch with ctx's
// error; implementations must not outlive the call.
type ContextPages interface {
	FetchContext(ctx context.Context, url string) (string, error)
}

// ErrBreakerOpen is wrapped by fetch errors rejected by an open circuit
// breaker: the attempt never reached the underlying fetcher.
var ErrBreakerOpen = errors.New("fetch: circuit breaker open")

// ErrPermanent marks an error as not worth retrying. A fetcher (or
// Schedule) that wraps its errors with ErrPermanent opts the failure out
// of Resilient's retry loop — the fetch gives up on the first attempt.
var ErrPermanent = errors.New("fetch: permanent failure")

// Call fetches through p with the context when p is context-aware, and
// falls back to a pre-flight cancellation check plus a plain Fetch when
// it is not (a legacy in-flight Fetch is allowed to finish; it cannot be
// interrupted).
func Call(ctx context.Context, p Pages, url string) (string, error) {
	if cp, ok := p.(ContextPages); ok {
		return cp.FetchContext(ctx, url)
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return p.Fetch(url)
}

// Host extracts the host component of a URL — the circuit breaker's
// failure domain. URLs that do not parse (or have no host) fall back to
// the whole string, so every URL maps to exactly one breaker.
func Host(url string) string {
	if !strings.Contains(url, "://") {
		return url
	}
	u, err := neturl.Parse(url)
	if err != nil || u.Host == "" {
		return url
	}
	return u.Host
}
