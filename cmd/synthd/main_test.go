package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"prodsynth"
	"prodsynth/internal/dataset"
	"prodsynth/internal/serve"
	"prodsynth/internal/synth"
)

// TestMain doubles the test binary as the synthd command: when re-exec'd
// with the marker variable set, it runs main() instead of the tests. The
// daemon test below uses this to run synthd as a real, separate OS
// process — nothing is shared with the test but the bundle file and a
// TCP port.
func TestMain(m *testing.M) {
	if os.Getenv("SYNTHD_EXEC_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func writeDataset(t *testing.T) string {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Seed:                7,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 15,
		Merchants:           12,
	})
	dir := filepath.Join(t.TempDir(), "data")
	if err := dataset.Save(ds, dir, true); err != nil {
		t.Fatal(err)
	}
	return dir
}

// writeBundle learns from the dataset directory and persists the
// catalog+model bundle the daemon boots from.
func writeBundle(t *testing.T, dataDir string) string {
	t.Helper()
	ds, err := dataset.Load(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	model, err := prodsynth.Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.psbd")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := prodsynth.SaveBundle(f, ds.Catalog, model); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// startDaemon re-execs the test binary as synthd, waits for the
// "listening on" line, and returns the base URL plus the running command.
func startDaemon(t *testing.T, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SYNTHD_EXEC_MAIN=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	lines := bufio.NewScanner(stdout)
	urlCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if rest, ok := strings.CutPrefix(lines.Text(), "listening on "); ok {
				urlCh <- rest
			}
		}
	}()
	select {
	case url := <-urlCh:
		return url, cmd
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
		return "", nil
	}
}

// runEmitRequest re-execs synthd -emit-request and returns the request
// body it prints — the same artifact the CI smoke test posts with curl.
func runEmitRequest(t *testing.T, dataDir string) []byte {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-emit-request", "-data", dataDir)
	cmd.Env = append(os.Environ(), "SYNTHD_EXEC_MAIN=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("synthd -emit-request: %v", err)
	}
	return out
}

// TestDaemonCrossProcess is the daemon's acceptance test, run across real
// process boundaries: learn and save a bundle in this process, boot
// synthd from it in a child process, serve one synthesize request built
// by synthd -emit-request, and assert the answer is byte-identical to
// in-process synthesis from the same bundle. Then SIGTERM the daemon and
// require a clean exit.
func TestDaemonCrossProcess(t *testing.T) {
	dataDir := writeDataset(t)
	bundlePath := writeBundle(t, dataDir)

	url, cmd := startDaemon(t, "-bundle", bundlePath, "-addr", "127.0.0.1:0")

	// Liveness first: healthz answers before any synthesis traffic.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status = %d", resp.StatusCode)
	}

	reqBody := runEmitRequest(t, dataDir)
	resp, err = http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synthesize: status = %d, body %s", resp.StatusCode, got)
	}

	// The in-process reference: boot from the same bundle file, synthesize
	// the same request, encode with the same wire converters.
	f, err := os.Open(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	store, model, err := prodsynth.LoadBundle(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sys := prodsynth.NewSystem(store, model)
	var req serve.SynthesizeRequest
	if err := json.Unmarshal(reqBody, &req); err != nil {
		t.Fatal(err)
	}
	pages := make(prodsynth.MapFetcher, len(req.Pages))
	for _, p := range req.Pages {
		pages[p.URL] = p.HTML
	}
	direct, err := sys.SynthesizeContext(context.Background(), serve.OffersFromWire(req.Offers), pages)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Products) == 0 {
		t.Fatal("in-process synthesis produced no products; the identity check would be vacuous")
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(serve.ResponseFromResult(direct)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon response differs from in-process synthesis:\n daemon: %s\n direct: %s", got, want.Bytes())
	}

	// Metrics crossed the process boundary too.
	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `synthd_requests_total{endpoint="synthesize",code="200"} 1`) {
		t.Errorf("daemon metrics missing the synthesize request count:\n%s", metrics)
	}

	// Graceful shutdown: SIGTERM, clean exit (status 0), no kill needed.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
}

// TestEmitRequestShape pins the -emit-request artifact: valid JSON in the
// /v1/synthesize request shape, with the dataset's full incoming feed and
// deduplicated pages.
func TestEmitRequestShape(t *testing.T) {
	dataDir := writeDataset(t)
	out := runEmitRequest(t, dataDir)

	var req serve.SynthesizeRequest
	if err := json.Unmarshal(out, &req); err != nil {
		t.Fatalf("emit-request output is not a request body: %v\n%s", err, out)
	}
	ds, err := dataset.LoadWorkload(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Offers) != len(ds.IncomingOffers) {
		t.Errorf("request carries %d offers, dataset has %d incoming", len(req.Offers), len(ds.IncomingOffers))
	}
	if len(req.Pages) != len(ds.Pages) {
		t.Errorf("request carries %d pages, dataset has %d", len(req.Pages), len(ds.Pages))
	}
	seen := map[string]bool{}
	for _, p := range req.Pages {
		if seen[p.URL] {
			t.Errorf("page %q repeated in emitted request", p.URL)
		}
		seen[p.URL] = true
	}
}

// TestDaemonDurableRecovery boots synthd with -data-dir twice against the
// same directory: the first boot seeds the durable catalog from the
// bundle, the second recovers it from disk. Both must serve byte-identical
// synthesis responses, and the durability gauges must be on /metrics.
func TestDaemonDurableRecovery(t *testing.T) {
	dataDir := writeDataset(t)
	bundlePath := writeBundle(t, dataDir)
	durDir := filepath.Join(t.TempDir(), "catalog")
	reqBody := runEmitRequest(t, dataDir)

	synthesize := func(url string) []byte {
		t.Helper()
		resp, err := http.Post(url+"/v1/synthesize", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("synthesize: status = %d, body %s", resp.StatusCode, body)
		}
		return body
	}
	// The durability gauges are set by a goroutine racing the listener
	// announcement, so poll briefly.
	waitMetrics := func(url string) string {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(url + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(body), "synthd_durable_snapshot_epoch") || time.Now().After(deadline) {
				return string(body)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	stop := func(cmd *exec.Cmd) {
		t.Helper()
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit after SIGTERM: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not exit within 30s of SIGTERM")
		}
	}

	// First boot: seeds durDir from the bundle (import + compaction →
	// epoch 1).
	url, cmd := startDaemon(t, "-bundle", bundlePath, "-data-dir", durDir, "-addr", "127.0.0.1:0")
	first := synthesize(url)
	metrics := waitMetrics(url)
	if !strings.Contains(metrics, "synthd_durable_snapshot_epoch 1") {
		t.Errorf("first-boot metrics missing snapshot epoch 1:\n%s", metrics)
	}
	if !strings.Contains(metrics, "synthd_durable_recovery_ms") {
		t.Errorf("metrics missing recovery gauge:\n%s", metrics)
	}
	stop(cmd)

	// Second boot: same directory, now recovered rather than reseeded.
	url, cmd = startDaemon(t, "-bundle", bundlePath, "-data-dir", durDir, "-addr", "127.0.0.1:0", "-v")
	second := synthesize(url)
	if !bytes.Equal(first, second) {
		t.Errorf("post-recovery response differs:\n first: %s\nsecond: %s", first, second)
	}
	metrics = waitMetrics(url)
	if !strings.Contains(metrics, "synthd_durable_snapshot_epoch 1") {
		t.Errorf("recovered-boot metrics missing snapshot epoch 1:\n%s", metrics)
	}
	stop(cmd)
}
