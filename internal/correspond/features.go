package correspond

import (
	"sort"
	"sync"

	"prodsynth/internal/catalog"
	"prodsynth/internal/distsim"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/text"
)

// FeatureTable holds the candidate tuples and their feature vectors.
type FeatureTable struct {
	candidates []Candidate
	features   [][]float64
	index      map[Candidate]int
	names      []string
}

// Candidates returns the candidate tuples in deterministic order.
func (ft *FeatureTable) Candidates() []Candidate { return ft.candidates }

// Features returns the feature vector of candidate i (order: Names).
func (ft *FeatureTable) Features(i int) []float64 { return ft.features[i] }

// Len returns the number of candidates.
func (ft *FeatureTable) Len() int { return len(ft.candidates) }

// Names returns the feature names in vector order.
func (ft *FeatureTable) Names() []string { return ft.names }

// Lookup returns the index of a candidate.
func (ft *FeatureTable) Lookup(c Candidate) (int, bool) {
	i, ok := ft.index[c]
	return i, ok
}

// Feature returns one named feature of candidate i.
func (ft *FeatureTable) Feature(i int, name string) float64 {
	for j, n := range ft.names {
		if n == name {
			return ft.features[i][j]
		}
	}
	return 0
}

// DropFeature returns a copy of the table with the named feature zeroed —
// the substrate for drop-one-feature ablations. The underlying candidate
// slice is shared; feature vectors are copied.
func (ft *FeatureTable) DropFeature(name string) *FeatureTable {
	col := -1
	for j, n := range ft.names {
		if n == name {
			col = j
			break
		}
	}
	out := &FeatureTable{candidates: ft.candidates, index: ft.index, names: ft.names}
	out.features = make([][]float64, len(ft.features))
	for i, v := range ft.features {
		cp := make([]float64, len(v))
		copy(cp, v)
		if col >= 0 {
			cp[col] = 0
		}
		out.features[i] = cp
	}
	return out
}

// NameFeature is the optional 7th feature: lexical similarity between the
// attribute names themselves (the paper's §7 future work, "integrate other
// matchers, notably name matchers"). See FeatureOptions.IncludeNameFeature
// for why it is off by default.
const NameFeature = "NameSim"

// FeatureOptions configures feature computation.
type FeatureOptions struct {
	// UseMatches restricts value distributions to historical
	// offer-to-product matches (the paper's approach). When false, the
	// Figure 7 baseline is computed instead: distributions over ALL
	// products of the category and ALL offers, ignoring match knowledge.
	UseMatches bool
	// IncludeNameFeature adds a lexical name-similarity feature (average
	// of normalized edit similarity and trigram similarity). CAUTION:
	// under the automatic training-set construction of §3.2 the positive
	// examples are exactly the name-identity candidates, so this feature
	// equals 1 on every positive — it is perfectly correlated with the
	// auto-label and the classifier degenerates into a name matcher.
	// Exposed for the ablation experiment that demonstrates this.
	IncludeNameFeature bool
	// Workers is the parallelism for feature computation (default 4).
	Workers int
}

// attrBags accumulates one bag of words per attribute name.
type attrBags map[string]*text.Bag

func (ab attrBags) bag(name string) *text.Bag {
	b := ab[name]
	if b == nil {
		b = text.NewBag()
		ab[name] = b
	}
	return b
}

func (ab attrBags) addSpec(spec catalog.Spec) {
	for _, av := range spec {
		ab.bag(av.Name).AddValue(av.Value)
	}
}

// groupBags holds offer-side and product-side bags for one group.
type groupBags struct {
	offers   attrBags
	products attrBags
	seenProd map[string]bool // product IDs already added (products are sets)
}

func newGroupBags() *groupBags {
	return &groupBags{
		offers:   make(attrBags),
		products: make(attrBags),
		seenProd: make(map[string]bool),
	}
}

func (g *groupBags) addOffer(spec catalog.Spec) { g.offers.addSpec(spec) }

func (g *groupBags) addProduct(p catalog.Product) {
	if g.seenProd[p.ID] {
		return
	}
	g.seenProd[p.ID] = true
	g.products.addSpec(p.Spec)
}

// ComputeFeatures builds the candidate set and its feature vectors from
// historical offers (with extracted specs), the catalog, and the historical
// matches. Candidates pair every catalog schema attribute of category C
// with every attribute observed in offers of merchant M in C (§3.1).
func ComputeFeatures(store *catalog.Store, offers *offer.Set, matches *match.MatchSet, opts FeatureOptions) *FeatureTable {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}

	// Pass 1: accumulate bags per grouping.
	mcBags := make(map[offer.SchemaKey]*groupBags)
	cBags := make(map[string]*groupBags)
	mBags := make(map[string]*groupBags)

	group := func(key offer.SchemaKey) (*groupBags, *groupBags, *groupBags) {
		mc := mcBags[key]
		if mc == nil {
			mc = newGroupBags()
			mcBags[key] = mc
		}
		c := cBags[key.CategoryID]
		if c == nil {
			c = newGroupBags()
			cBags[key.CategoryID] = c
		}
		m := mBags[key.Merchant]
		if m == nil {
			m = newGroupBags()
			mBags[key.Merchant] = m
		}
		return mc, c, m
	}

	for _, o := range offers.All() {
		key := offer.SchemaKey{Merchant: o.Merchant, CategoryID: o.CategoryID}
		if opts.UseMatches {
			mt, ok := matches.ProductFor(o.ID)
			if !ok {
				continue // unmatched offers contribute nothing (§3.1)
			}
			p, ok := store.Product(mt.ProductID)
			if !ok {
				continue
			}
			mc, c, m := group(key)
			mc.addOffer(o.Spec)
			c.addOffer(o.Spec)
			m.addOffer(o.Spec)
			mc.addProduct(p)
			c.addProduct(p)
			m.addProduct(p)
		} else {
			mc, c, m := group(key)
			mc.addOffer(o.Spec)
			c.addOffer(o.Spec)
			m.addOffer(o.Spec)
		}
	}
	if !opts.UseMatches {
		// Figure 7 baseline: product side = every product of the
		// category, attributed to each group touching that category.
		for cat, g := range cBags {
			for _, p := range store.ProductsInCategory(cat) {
				g.addProduct(p)
			}
		}
		for key, g := range mcBags {
			for _, p := range store.ProductsInCategory(key.CategoryID) {
				g.addProduct(p)
			}
		}
		// Merchant-level product bags span the merchant's categories.
		for merchantName, g := range mBags {
			seen := make(map[string]bool)
			for _, o := range offers.ByMerchant(merchantName) {
				if seen[o.CategoryID] {
					continue
				}
				seen[o.CategoryID] = true
				for _, p := range store.ProductsInCategory(o.CategoryID) {
					g.addProduct(p)
				}
			}
		}
	}

	// Pass 2: enumerate candidates in deterministic order.
	names := append([]string(nil), FeatureNames...)
	if opts.IncludeNameFeature {
		names = append(names, NameFeature)
	}
	ft := &FeatureTable{index: make(map[Candidate]int), names: names}
	keys := offers.SchemaKeys()
	for _, key := range keys {
		cat, ok := store.Category(key.CategoryID)
		if !ok {
			continue
		}
		merchantAttrs := offers.MerchantAttributes(key)
		if len(merchantAttrs) == 0 {
			continue
		}
		catalogAttrs := cat.Schema.Names()
		sort.Strings(catalogAttrs)
		for _, ap := range catalogAttrs {
			for _, ao := range merchantAttrs {
				c := Candidate{Key: key, CatalogAttr: ap, MerchantAttr: ao}
				ft.index[c] = len(ft.candidates)
				ft.candidates = append(ft.candidates, c)
			}
		}
	}

	// Pass 3: compute features, sharded across workers. Distributions are
	// cached per (group, attribute) to avoid recomputation.
	ft.features = make([][]float64, len(ft.candidates))
	distCache := newDistributionCache()
	var wg sync.WaitGroup
	chunk := (len(ft.candidates) + opts.Workers - 1) / opts.Workers
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < len(ft.candidates); start += chunk {
		end := start + chunk
		if end > len(ft.candidates) {
			end = len(ft.candidates)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := ft.candidates[i]
				v := make([]float64, len(names))
				mc := mcBags[c.Key]
				cb := cBags[c.Key.CategoryID]
				mb := mBags[c.Key.Merchant]
				v[0] = jsFeature(distCache, mc, c)
				v[1] = jsFeature(distCache, cb, c)
				v[2] = jsFeature(distCache, mb, c)
				v[3] = jaccardFeature(mc, c)
				v[4] = jaccardFeature(cb, c)
				v[5] = jaccardFeature(mb, c)
				if opts.IncludeNameFeature {
					a := text.NormalizeName(c.CatalogAttr)
					b := text.NormalizeName(c.MerchantAttr)
					v[6] = (distsim.EditSimilarity(a, b) + distsim.TrigramSimilarity(a, b)) / 2
				}
				ft.features[i] = v
			}
		}(start, end)
	}
	wg.Wait()
	return ft
}

// distributionCache memoizes bag→distribution conversion; bags are frozen
// by the time features are computed, so caching is safe. Keyed by bag
// pointer identity.
type distributionCache struct {
	mu sync.Mutex
	m  map[*text.Bag]text.Distribution
}

func newDistributionCache() *distributionCache {
	return &distributionCache{m: make(map[*text.Bag]text.Distribution)}
}

func (dc *distributionCache) distribution(b *text.Bag) text.Distribution {
	if b == nil {
		return text.Distribution{}
	}
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if d, ok := dc.m[b]; ok {
		return d
	}
	d := b.Distribution()
	dc.m[b] = d
	return d
}

func jsFeature(dc *distributionCache, g *groupBags, c Candidate) float64 {
	if g == nil {
		return 0
	}
	p := dc.distribution(g.products[c.CatalogAttr])
	o := dc.distribution(g.offers[c.MerchantAttr])
	return distsim.JSSimilarity(p, o)
}

func jaccardFeature(g *groupBags, c Candidate) float64 {
	if g == nil {
		return 0
	}
	return g.products[c.CatalogAttr].Jaccard(g.offers[c.MerchantAttr])
}
