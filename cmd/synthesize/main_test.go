package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"prodsynth/internal/dataset"
	"prodsynth/internal/synth"
)

// TestMain doubles the test binary as the synthesize command: when
// re-exec'd with the marker variable set, it runs main() instead of the
// tests. The byte-identity tests below use this to run the command as
// real, separate OS processes — nothing is shared but the files.
func TestMain(m *testing.M) {
	if os.Getenv("SYNTHESIZE_EXEC_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSynthesize(t *testing.T, args ...string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SYNTHESIZE_EXEC_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("synthesize %v: %v\n%s", args, err, out)
	}
}

func writeDataset(t *testing.T) string {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Seed:                7,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 15,
		Merchants:           12,
	})
	dir := filepath.Join(t.TempDir(), "data")
	if err := dataset.Save(ds, dir, true); err != nil {
		t.Fatal(err)
	}
	return dir
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBundleByteIdentityAcrossProcesses is the acceptance harness for the
// full warm start: process A learns, synthesizes, and saves the
// catalog+model bundle; process B cold-starts from the bundle alone (no
// catalog ingestion, no learning) and must emit byte-identical products.
func TestBundleByteIdentityAcrossProcesses(t *testing.T) {
	data := writeDataset(t)
	tmp := t.TempDir()
	bundle := filepath.Join(tmp, "warm.psbd")
	out1 := filepath.Join(tmp, "p1.json")
	out2 := filepath.Join(tmp, "p2.json")

	runSynthesize(t, "-data", data, "-save-bundle", bundle, "-out", out1)
	runSynthesize(t, "-data", data, "-load-bundle", bundle, "-out", out2)

	p1, p2 := readFile(t, out1), readFile(t, out2)
	if len(p1) == 0 {
		t.Fatal("process A synthesized nothing")
	}
	if !bytes.Equal(p1, p2) {
		t.Fatalf("bundle warm start diverged: process A wrote %d bytes, process B %d", len(p1), len(p2))
	}

	// The bundle is also byte-stable across processes: saving again from
	// the loaded state reproduces it.
	bundle2 := filepath.Join(tmp, "warm2.psbd")
	runSynthesize(t, "-data", data, "-load-bundle", bundle, "-save-bundle", bundle2, "-out", filepath.Join(tmp, "p3.json"))
	if !bytes.Equal(readFile(t, bundle), readFile(t, bundle2)) {
		t.Fatal("re-saving a loaded bundle changed the bytes")
	}
}

// TestModelByteIdentityAcrossProcesses keeps the model-only warm start
// pinned the same way: -save-model in one process, -load-model in
// another (same dataset catalog), identical output.
func TestModelByteIdentityAcrossProcesses(t *testing.T) {
	data := writeDataset(t)
	tmp := t.TempDir()
	model := filepath.Join(tmp, "model.psmd")
	out1 := filepath.Join(tmp, "p1.json")
	out2 := filepath.Join(tmp, "p2.json")

	runSynthesize(t, "-data", data, "-save-model", model, "-out", out1)
	runSynthesize(t, "-data", data, "-load-model", model, "-out", out2)

	p1, p2 := readFile(t, out1), readFile(t, out2)
	if len(p1) == 0 {
		t.Fatal("process A synthesized nothing")
	}
	if !bytes.Equal(p1, p2) {
		t.Fatal("model warm start diverged across processes")
	}
}
