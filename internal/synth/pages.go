package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"prodsynth/internal/catalog"
)

// renderPage produces a merchant landing page: navigation chrome, a title,
// the spec block (a two-column table, or a bullet list for bullet-style
// merchants), and a marketing table. Noise rows arrive pre-mixed in pairs.
func renderPage(rng *rand.Rand, m *merchant, title string, priceCents int64, pairs []catalog.AttributeValue) string {
	var b strings.Builder
	b.Grow(2048)
	b.WriteString("<!doctype html>\n<html><head><title>")
	b.WriteString(escape(title))
	b.WriteString(" | ")
	b.WriteString(escape(m.name))
	b.WriteString("</title>\n<script>var page = {layout: \"<table><tr><td>decoy</td><td>markup</td></tr></table>\"};</script>\n")
	b.WriteString("<style>.spec td { padding: 2px; }</style>\n</head>\n<body>\n")

	// Navigation chrome.
	b.WriteString("<div class=nav><ul>")
	for _, link := range []string{"Home", "Departments", "Deals", "Cart", "Help"} {
		fmt.Fprintf(&b, "<li><a href=\"/%s\">%s</a>", strings.ToLower(link), link)
	}
	b.WriteString("</ul></div>\n")

	fmt.Fprintf(&b, "<h1>%s</h1>\n", escape(title))

	// Marketing table: single-cell and three-cell rows that the
	// two-column extractor must skip, plus a price pair it will pick up
	// as a (noise) attribute.
	b.WriteString("<table class=buybox>\n")
	fmt.Fprintf(&b, "<tr><td colspan=2>Order today and save!</td></tr>\n")
	fmt.Fprintf(&b, "<tr><td>Price</td><td>$%d.%02d</td></tr>\n", priceCents/100, priceCents%100)
	fmt.Fprintf(&b, "<tr><td>Qty</td><td><input name=qty value=1></td><td><a href=\"/cart\">Add to Cart</a></td></tr>\n")
	b.WriteString("</table>\n")

	if m.bulletPages {
		// Bullet-list spec block (invisible to the default extractor).
		b.WriteString("<h2>Specifications</h2>\n<ul class=spec>\n")
		for _, av := range pairs {
			fmt.Fprintf(&b, "<li>%s: %s</li>\n", escape(av.Name), escape(av.Value))
		}
		b.WriteString("</ul>\n")
	} else {
		b.WriteString("<h2>Specifications</h2>\n<table class=spec>\n")
		sloppy := rng.Float64() < 0.3 // unclosed cells, as in the wild
		for _, av := range pairs {
			if sloppy {
				fmt.Fprintf(&b, "<tr><td>%s<td>%s\n", escape(av.Name), escape(av.Value))
			} else {
				fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td></tr>\n", escape(av.Name), escape(av.Value))
			}
		}
		b.WriteString("</table>\n")
	}

	b.WriteString("<div class=footer>&copy; merchant store &mdash; all rights reserved</div>\n")
	b.WriteString("</body></html>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
