package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/offer"
	"prodsynth/internal/snapfmt"
)

// ErrBadSpill is wrapped by every spill-record decode failure.
var ErrBadSpill = errors.New("durable: invalid spill record")

// SpillDir hands every stream a file-backed spill store under Dir: open
// clusters evicted from the stream's RAM bounds park on disk (see
// cluster.SpillStore) and only a small key -> offset index stays in
// memory. Files are per-stream scratch — created on demand, deleted on
// Close, never part of recovery.
type SpillDir struct {
	// Dir is the directory spill files are created in (a "spill"
	// subdirectory of a Manager's data dir, typically). Created if
	// missing.
	Dir string
}

// NewSpill implements cluster.SpillFactory.
func (d SpillDir) NewSpill() (cluster.SpillStore, error) {
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(d.Dir, "spill-*.psps")
	if err != nil {
		return nil, err
	}
	return &fileSpill{f: f, index: make(map[string]int64), live: make(map[int64][]string)}, nil
}

// fileSpill is an append-only spill file plus its in-RAM indexes. Space
// of revived clusters is not reclaimed — the file is scratch, bounded by
// the stream's lifetime and deleted at Close; what matters is that the
// cluster MEMBERS (the bulk) live on disk while only keys and offsets
// stay resident. Not safe for concurrent use, matching the SpillStore
// contract (one stream owns one store).
type fileSpill struct {
	f     *os.File
	end   int64
	index map[string]int64   // key -> record offset
	live  map[int64][]string // record offset -> its keys (the live set)
}

// Spill implements cluster.SpillStore.
func (s *fileSpill) Spill(sp cluster.Spilled) error {
	buf := frameRecord(encodeSpilled(sp))
	if _, err := s.f.WriteAt(buf, s.end); err != nil {
		return err
	}
	ref := s.end
	s.end += int64(len(buf))
	keys := append([]string(nil), sp.Keys...)
	s.live[ref] = keys
	for _, k := range keys {
		s.index[k] = ref
	}
	return nil
}

// Lookup implements cluster.SpillStore.
func (s *fileSpill) Lookup(key string) (int64, bool) {
	ref, ok := s.index[key]
	return ref, ok
}

// Revive implements cluster.SpillStore.
func (s *fileSpill) Revive(ref int64) (cluster.Spilled, error) {
	keys, ok := s.live[ref]
	if !ok {
		return cluster.Spilled{}, fmt.Errorf("durable: no spilled cluster at offset %d", ref)
	}
	sp, err := s.readAt(ref)
	if err != nil {
		return cluster.Spilled{}, err
	}
	delete(s.live, ref)
	for _, k := range keys {
		if s.index[k] == ref {
			delete(s.index, k)
		}
	}
	return sp, nil
}

// All implements cluster.SpillStore: every live cluster, read back from
// disk, in stable (offset) order.
func (s *fileSpill) All() ([]cluster.Spilled, error) {
	refs := make([]int64, 0, len(s.live))
	for ref := range s.live {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	out := make([]cluster.Spilled, len(refs))
	for i, ref := range refs {
		sp, err := s.readAt(ref)
		if err != nil {
			return nil, err
		}
		out[i] = sp
	}
	return out, nil
}

// Len implements cluster.SpillStore.
func (s *fileSpill) Len() int { return len(s.live) }

// Close implements cluster.SpillStore: the file is scratch, so it is
// removed, not kept.
func (s *fileSpill) Close() error {
	name := s.f.Name()
	err := s.f.Close()
	if rerr := os.Remove(name); err == nil {
		err = rerr
	}
	return err
}

// readAt decodes the framed spill record at the given offset.
func (s *fileSpill) readAt(ref int64) (cluster.Spilled, error) {
	var hdr [recordHeaderSize]byte
	if _, err := s.f.ReadAt(hdr[:], ref); err != nil {
		return cluster.Spilled{}, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordLen {
		return cluster.Spilled{}, fmt.Errorf("%w: record length %d exceeds maximum %d", ErrBadSpill, length, maxRecordLen)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, ref+recordHeaderSize, int64(length)), payload); err != nil {
		return cluster.Spilled{}, err
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return cluster.Spilled{}, fmt.Errorf("%w: checksum mismatch at offset %d", ErrBadSpill, ref)
	}
	return decodeSpilled(payload)
}

// encodeSpilled serializes one spilled cluster. CatVersions is written
// sorted by category so the bytes are deterministic.
func encodeSpilled(sp cluster.Spilled) []byte {
	var p snapfmt.Writer
	p.U64(uint64(sp.Ord))
	p.U64(uint64(sp.LastWave))
	p.U32(uint32(len(sp.Keys)))
	for _, k := range sp.Keys {
		p.Str(k)
	}
	cats := make([]string, 0, len(sp.CatVersions))
	for c := range sp.CatVersions {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	p.U32(uint32(len(cats)))
	for _, c := range cats {
		p.Str(c)
		p.U64(sp.CatVersions[c])
	}
	p.U32(uint32(len(sp.Members)))
	for _, m := range sp.Members {
		p.U64(uint64(m.Seq))
		o := m.Offer
		p.Str(o.ID)
		p.Str(o.Merchant)
		p.Str(o.CategoryID)
		p.Str(o.Title)
		p.U64(uint64(o.PriceCents))
		p.Str(o.URL)
		p.Str(o.ImageURL)
		p.U32(uint32(len(o.Spec)))
		for _, av := range o.Spec {
			p.Str(av.Name)
			p.Str(av.Value)
		}
	}
	return p.Bytes()
}

func decodeSpilled(payload []byte) (cluster.Spilled, error) {
	d := snapfmt.NewReader(payload, ErrBadSpill)
	var sp cluster.Spilled
	sp.Ord = d.Int("cluster ordinal")
	sp.LastWave = d.Int("last wave")
	nk := d.Count("keys", 4)
	for i := 0; i < nk && d.Err() == nil; i++ {
		sp.Keys = append(sp.Keys, d.Str())
	}
	nc := d.Count("category versions", 12)
	if nc > 0 && d.Err() == nil {
		sp.CatVersions = make(map[string]uint64, nc)
		for i := 0; i < nc && d.Err() == nil; i++ {
			c := d.Str()
			sp.CatVersions[c] = d.U64()
		}
	}
	nm := d.Count("members", 8)
	for i := 0; i < nm && d.Err() == nil; i++ {
		var m cluster.SpillMember
		m.Seq = d.Int("member seq")
		var o offer.Offer
		o.ID = d.Str()
		o.Merchant = d.Str()
		o.CategoryID = d.Str()
		o.Title = d.Str()
		o.PriceCents = int64(d.U64())
		o.URL = d.Str()
		o.ImageURL = d.Str()
		ns := d.Count("offer spec pairs", 8)
		for j := 0; j < ns && d.Err() == nil; j++ {
			var av catalog.AttributeValue
			av.Name = d.Str()
			av.Value = d.Str()
			o.Spec = append(o.Spec, av)
		}
		m.Offer = o
		sp.Members = append(sp.Members, m)
	}
	if err := d.Finish(); err != nil {
		return cluster.Spilled{}, err
	}
	return sp, nil
}
