// Snapshot: versioned binary persistence for the learned offline artifact.
//
// The format is deliberately hand-rolled rather than gob/JSON so that the
// bytes are deterministic (maps are emitted in sorted order), strict to
// decode (magic, version, length and checksum are all verified before any
// payload field is parsed), and stable across Go versions — a model saved
// by one process warm-starts another without re-running the offline phase.
// The framing (magic + version + length + CRC32 header) and the payload
// codec are shared with the catalog snapshot through internal/snapfmt.
//
// The payload holds everything the runtime pipeline consumes — the
// correspondence set, the trained logistic-regression weights, the scored
// candidate list, the title→category classifier counts, and the §5.1
// statistics. The offline phase's raw inputs (offers, matches, the feature
// table) are learning-time diagnostics and are not persisted; a decoded
// OfflineResult carries nil for them.
package core

import (
	"errors"
	"io"
	"sort"

	"prodsynth/internal/categorize"
	"prodsynth/internal/correspond"
	"prodsynth/internal/ml"
	"prodsynth/internal/offer"
	"prodsynth/internal/snapfmt"
)

// SnapshotVersion is the on-disk format version written by EncodeOffline.
// DecodeOffline rejects any other version.
const SnapshotVersion = 1

// ErrBadSnapshot is wrapped by every DecodeOffline error caused by the
// input (bad magic, unsupported version, checksum mismatch, truncation,
// malformed payload) — as opposed to I/O errors from the reader.
var ErrBadSnapshot = errors.New("core: invalid model snapshot")

var snapshotMagic = [4]byte{'P', 'S', 'M', 'D'}

// maxSnapshotPayload bounds the payload length DecodeOffline accepts, so a
// corrupt header cannot demand an absurd read.
const maxSnapshotPayload = 1 << 30

// EncodeOffline writes a versioned, checksummed snapshot of the learned
// artifact. The output is deterministic: encoding the same logical state
// twice yields identical bytes.
func EncodeOffline(w io.Writer, off *OfflineResult) error {
	if off == nil {
		return errors.New("core: nil offline result")
	}
	var p snapfmt.Writer
	writeStats(&p, off.Stats)
	writeCorrespondences(&p, off.Correspondences)
	writeScored(&p, off.Scored)
	writeLogistic(&p, off.Model)
	writeClassifier(&p, off.Classifier)
	return snapfmt.Encode(w, snapshotMagic, SnapshotVersion, maxSnapshotPayload, p.Bytes())
}

// DecodeOffline parses a snapshot written by EncodeOffline, strictly: any
// deviation from the format — wrong magic, unknown version, length or
// checksum mismatch, truncated or trailing bytes — is an error wrapping
// ErrBadSnapshot, never a panic or a partially filled result.
func DecodeOffline(r io.Reader) (*OfflineResult, error) {
	off, err := DecodeOfflineFrom(r)
	if err != nil {
		return nil, err
	}
	if err := snapfmt.ExpectEOF(r, ErrBadSnapshot); err != nil {
		return nil, err
	}
	return off, nil
}

// DecodeOfflineFrom parses exactly one snapshot block and leaves the
// reader positioned after it — the entry point for composite artifacts
// (the catalog+model bundle) where another block follows. DecodeOffline
// is this plus a trailing-data check.
func DecodeOfflineFrom(r io.Reader) (*OfflineResult, error) {
	payload, err := snapfmt.Decode(r, snapshotMagic, SnapshotVersion, maxSnapshotPayload, ErrBadSnapshot)
	if err != nil {
		return nil, err
	}
	d := snapfmt.NewReader(payload, ErrBadSnapshot)
	off := &OfflineResult{}
	off.Stats = readStats(d)
	off.Correspondences = readCorrespondences(d)
	off.Scored = readScored(d)
	off.Model = readLogistic(d)
	off.Classifier = readClassifier(d)
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return off, nil
}

func writeRecord(p *snapfmt.Writer, sc correspond.Scored) {
	p.Str(sc.Key.Merchant)
	p.Str(sc.Key.CategoryID)
	p.Str(sc.MerchantAttr)
	p.Str(sc.CatalogAttr)
	p.F64(sc.Score)
}

func writeStats(p *snapfmt.Writer, st OfflineStats) {
	p.U64(uint64(st.HistoricalOffers))
	p.U64(uint64(st.MatchedOffers))
	p.U64(uint64(st.Candidates))
	p.U64(uint64(st.TrainingSize))
	p.U64(uint64(st.TrainingPositives))
	p.U64(uint64(st.Correspondences))
}

func writeCorrespondences(p *snapfmt.Writer, set *correspond.Set) {
	if set == nil {
		p.U32(0)
		return
	}
	all := set.All()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Key.Merchant != b.Key.Merchant {
			return a.Key.Merchant < b.Key.Merchant
		}
		if a.Key.CategoryID != b.Key.CategoryID {
			return a.Key.CategoryID < b.Key.CategoryID
		}
		return a.MerchantAttr < b.MerchantAttr
	})
	p.U32(uint32(len(all)))
	for _, sc := range all {
		writeRecord(p, sc)
	}
}

func writeScored(p *snapfmt.Writer, scored []correspond.Scored) {
	p.U32(uint32(len(scored)))
	for _, sc := range scored {
		writeRecord(p, sc)
	}
}

func writeLogistic(p *snapfmt.Writer, m *correspond.Model) {
	if m == nil || m.LR == nil {
		p.Bool(false)
		return
	}
	p.Bool(true)
	p.U64(uint64(m.TrainingSize))
	p.U64(uint64(m.TrainingPositives))
	p.F64(m.LR.Bias)
	p.U32(uint32(len(m.LR.Weights)))
	for _, w := range m.LR.Weights {
		p.F64(w)
	}
}

func writeClassifier(p *snapfmt.Writer, c *categorize.Classifier) {
	if c == nil {
		p.Bool(false)
		return
	}
	p.Bool(true)
	snap := c.Snapshot()
	p.F64(snap.Laplace)
	p.Bool(snap.ClassPriors)
	p.U32(uint32(len(snap.Classes)))
	for _, cls := range snap.Classes {
		p.Str(cls.Name)
		p.U64(uint64(cls.Docs))
		p.U32(uint32(len(cls.Tokens)))
		for _, tc := range cls.Tokens {
			p.Str(tc.Token)
			p.U64(uint64(tc.Count))
		}
	}
}

// minRecordSize is four empty strings (4 bytes length each) + a float64.
const minRecordSize = 4*4 + 8

func readRecord(d *snapfmt.Reader) correspond.Scored {
	return correspond.Scored{
		Candidate: correspond.Candidate{
			Key:          offer.SchemaKey{Merchant: d.Str(), CategoryID: d.Str()},
			MerchantAttr: d.Str(),
			CatalogAttr:  d.Str(),
		},
		Score: d.F64(),
	}
}

func readStats(d *snapfmt.Reader) OfflineStats {
	return OfflineStats{
		HistoricalOffers:  d.Int("stats.HistoricalOffers"),
		MatchedOffers:     d.Int("stats.MatchedOffers"),
		Candidates:        d.Int("stats.Candidates"),
		TrainingSize:      d.Int("stats.TrainingSize"),
		TrainingPositives: d.Int("stats.TrainingPositives"),
		Correspondences:   d.Int("stats.Correspondences"),
	}
}

func readCorrespondences(d *snapfmt.Reader) *correspond.Set {
	n := d.Count("correspondences", minRecordSize)
	set := correspond.NewSet()
	for i := 0; i < n && d.Err() == nil; i++ {
		set.Add(readRecord(d))
	}
	return set
}

func readScored(d *snapfmt.Reader) []correspond.Scored {
	n := d.Count("scored candidates", minRecordSize)
	if n == 0 {
		return nil
	}
	out := make([]correspond.Scored, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, readRecord(d))
	}
	return out
}

func readLogistic(d *snapfmt.Reader) *correspond.Model {
	if !d.Bool() {
		return nil
	}
	m := &correspond.Model{
		TrainingSize:      d.Int("model.TrainingSize"),
		TrainingPositives: d.Int("model.TrainingPositives"),
	}
	bias := d.F64()
	n := d.Count("classifier weights", 8)
	weights := make([]float64, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		weights = append(weights, d.F64())
	}
	m.LR = &ml.Logistic{Weights: weights, Bias: bias}
	return m
}

func readClassifier(d *snapfmt.Reader) *categorize.Classifier {
	if !d.Bool() {
		return nil
	}
	snap := ml.NBSnapshot{
		Laplace:     d.F64(),
		ClassPriors: d.Bool(),
	}
	// Smallest class: empty name (4) + docs (8) + token count (4).
	nClasses := d.Count("classifier classes", 16)
	for i := 0; i < nClasses && d.Err() == nil; i++ {
		cls := ml.NBClassSnapshot{Name: d.Str(), Docs: d.Int("class docs")}
		// Smallest token entry: empty token (4) + count (8).
		nTokens := d.Count("class tokens", 12)
		for j := 0; j < nTokens && d.Err() == nil; j++ {
			cls.Tokens = append(cls.Tokens, ml.NBTokenCount{Token: d.Str(), Count: d.Int("token count")})
		}
		snap.Classes = append(snap.Classes, cls)
	}
	if d.Err() != nil {
		return nil
	}
	return categorize.FromSnapshot(snap)
}
