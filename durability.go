package prodsynth

import (
	"context"
	"path/filepath"

	"prodsynth/internal/durable"
)

// Durability: the out-of-core catalog. A Durable wraps a data directory
// holding the catalog as shard snapshots plus an append-only delta log
// (WAL): every AddCategory/AddProduct commit is framed, checksummed, and
// appended before control returns, and reopening the directory recovers
// the catalog by loading the last compacted snapshots and replaying the
// log tail — including after a crash mid-write (a torn final record is
// truncated, anything else refuses to open). See prodsynth/internal/durable
// for the on-disk format and crash-atomicity argument.
type Durable struct {
	m *durable.Manager
}

// DurabilityOptions configures OpenDurable: shard count, fsync policy,
// segment size, and the background compaction triggers used by Run.
type DurabilityOptions = durable.Options

// DurabilityStats is a point-in-time snapshot of a Durable's health:
// recovery cost, log depth since the last compaction, and append errors.
type DurabilityStats = durable.Stats

// RecoveryStats describes what the last OpenDurable had to do.
type RecoveryStats = durable.RecoveryStats

// FsyncPolicy picks the WAL durability/latency trade-off.
type FsyncPolicy = durable.FsyncPolicy

// Fsync policies, strongest first. SyncAlways is the default.
const (
	SyncAlways   = durable.SyncAlways
	SyncInterval = durable.SyncInterval
	SyncNone     = durable.SyncNone
)

// OpenDurable opens (creating if absent) the durable catalog rooted at
// dir and recovers its state: snapshots load, the delta log replays, and
// the returned Durable's Catalog is ready to serve and to absorb new
// commits, each appended to the log as it happens.
func OpenDurable(dir string, opts DurabilityOptions) (*Durable, error) {
	m, err := durable.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Durable{m: m}, nil
}

// Catalog returns the recovered, live catalog. Use it wherever a
// *Catalog goes — New, NewSystem, Learn; every mutation through it is
// logged.
func (d *Durable) Catalog() *Catalog { return d.m.Store() }

// Dir returns the data directory.
func (d *Durable) Dir() string { return d.m.Dir() }

// ImportCatalog seeds an empty durable store from an in-RAM catalog (a
// dataset load or a bundle) and compacts immediately, so the import is
// snapshot-backed rather than one giant log. It refuses to run on a
// non-empty store — recovery owns existing state.
func (d *Durable) ImportCatalog(store *Catalog) error {
	return d.m.ImportSnapshot(store.Snapshot())
}

// Compact rotates the log, writes fresh shard snapshots, atomically
// publishes them in the manifest, and deletes the segments they cover.
// Appends proceed concurrently; recovery cost drops to the new tail.
func (d *Durable) Compact() error { return d.m.Compact() }

// Sync forces an fsync of the current log segment — the manual flush for
// SyncInterval/SyncNone policies.
func (d *Durable) Sync() error { return d.m.Sync() }

// Run services the background durability loops — interval fsync and
// automatic compaction (snapshotting while serving) — until ctx is
// cancelled. Errors are recorded in Stats, never fatal.
func (d *Durable) Run(ctx context.Context) { d.m.Run(ctx) }

// Stats reports recovery cost, current log depth, compaction count, and
// any append errors.
func (d *Durable) Stats() DurabilityStats { return d.m.Stats() }

// Close flushes and closes the log. The Catalog stays readable; further
// mutations would no longer be durable, so close last.
func (d *Durable) Close() error { return d.m.Close() }

// WithDurability attaches a Durable's data directory to the synthesis
// config: stream cluster memory spills evicted clusters to scratch files
// under <dir>/spill instead of sealing them early, keeping bounded-RAM
// streaming byte-identical to unbounded (see StreamOptions.MaxOpenClusters).
// The catalog itself is durable through d.Catalog() regardless of this
// option — this wires the out-of-core *stream* side.
func WithDurability(d *Durable) Option {
	return func(c *Config) {
		c.Spill = durable.SpillDir{Dir: filepath.Join(d.m.Dir(), "spill")}
	}
}
