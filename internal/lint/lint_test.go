package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness follows the analysistest convention: a fixture line
// annotated `// want "substr"` expects exactly one diagnostic on that line
// whose message contains substr, and every diagnostic must be claimed by
// a want marker. Fixtures load under an explicit import path so the
// per-package scoping rules fire the same way they do on the real tree.

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var out []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				out = append(out, &expectation{file: e.Name(), line: i + 1, substr: m[1]})
			}
		}
	}
	return out
}

// runFixture runs one analyzer over one fixture package and compares its
// diagnostics 1:1 against the fixture's want markers.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants := loadExpectations(t, dir)
	for _, d := range diags {
		file := filepath.Base(d.Pos.Filename)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == file && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want diagnostic containing %q, got none", filepath.Join(dir, w.file), w.line, w.substr)
		}
	}
}

func TestClockCheckFixture(t *testing.T) {
	runFixture(t, ClockCheck, "testdata/clockcheck", "prodsynth/internal/durable")
}

// TestClockCheckScope runs the failing fixture under an import path with
// no injectable Clock: the pass must stay silent outside its packages.
func TestClockCheckScope(t *testing.T) {
	pkg, err := LoadDir("testdata/clockcheck", "prodsynth/internal/report")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ClockCheck}); len(diags) != 0 {
		t.Errorf("clockcheck fired outside its scoped packages: %v", diags)
	}
}

func TestCtxFirstFixture(t *testing.T) {
	runFixture(t, CtxFirst, "testdata/ctxfirst", "prodsynth/internal/stream")
}

func TestLockScopeFixture(t *testing.T) {
	runFixture(t, LockScope, "testdata/lockscope", "prodsynth/internal/catalog")
}

func TestErrWrapCheckFixture(t *testing.T) {
	runFixture(t, ErrWrapCheck, "testdata/errwrapcheck", "prodsynth/internal/snapfmt")
}

func TestShimCheckFixture(t *testing.T) {
	runFixture(t, ShimCheck, "testdata/shimcheck", "prodsynth")
}

func TestSpawnCheckFixture(t *testing.T) {
	runFixture(t, SpawnCheck, "testdata/spawncheck", "prodsynth/internal/serve")
}

// TestSpawnCheckExempt runs the failing spawn fixture as internal/pipe,
// the goroutine-runtime package the pass exempts.
func TestSpawnCheckExempt(t *testing.T) {
	pkg, err := LoadDir("testdata/spawncheck", "prodsynth/internal/pipe")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{SpawnCheck}); len(diags) != 0 {
		t.Errorf("spawncheck fired in exempt package: %v", diags)
	}
}

// TestAllowRequiresReason: an allow comment with no reason suppresses
// nothing — the underlying finding survives and the bare allow is itself
// reported.
func TestAllowRequiresReason(t *testing.T) {
	pkg, err := LoadDir("testdata/lintallow", "prodsynth/internal/durable")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{ClockCheck})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bare allow + unsuppressed finding): %v", len(diags), diags)
	}
	var sawAllow, sawClock bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lintallow":
			sawAllow = strings.Contains(d.Message, "needs a reason")
		case "clockcheck":
			sawClock = strings.Contains(d.Message, "time.Now")
		}
	}
	if !sawAllow || !sawClock {
		t.Errorf("missing expected diagnostics (lintallow=%v clockcheck=%v): %v", sawAllow, sawClock, diags)
	}
}

// TestAllSuite pins the suite roster: vetsynth and the repo self-scan run
// exactly these passes.
func TestAllSuite(t *testing.T) {
	want := []string{"clockcheck", "ctxfirst", "lockscope", "errwrapcheck", "shimcheck", "spawncheck"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", a.Name)
		}
	}
}
