package lsd

import (
	"fmt"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
)

func fixture(t *testing.T) (*catalog.Store, *offer.Set) {
	t.Helper()
	st := catalog.NewStore()
	err := st.AddCategory(catalog.Category{
		ID: "hd",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Speed"}, {Name: "Interface"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	speeds := []string{"5400", "7200", "10000"}
	ifaces := []string{"SATA", "IDE", "SCSI"}
	for i := 0; i < 15; i++ {
		err := st.AddProduct(catalog.Product{ID: fmt.Sprintf("p%d", i), CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Speed", Value: speeds[i%3]},
			{Name: "Interface", Value: ifaces[i%3]},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	var offs []offer.Offer
	for i := 0; i < 10; i++ {
		offs = append(offs, offer.Offer{ID: fmt.Sprintf("o%d", i), Merchant: "shop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "RPM", Value: speeds[i%3]},
			{Name: "Conn", Value: ifaces[i%3]},
		}})
	}
	return st, offer.NewSet(offs)
}

func TestLSDScoresValueAlignedAttributes(t *testing.T) {
	st, offers := fixture(t)
	scored := Matcher{}.Score(st, offers, match.NewMatchSet(nil))

	get := func(ap, ao string) float64 {
		for _, sc := range scored {
			if sc.CatalogAttr == ap && sc.MerchantAttr == ao {
				return sc.Score
			}
		}
		t.Fatalf("candidate <%s,%s> missing", ap, ao)
		return 0
	}
	if get("Speed", "RPM") <= get("Interface", "RPM") {
		t.Errorf("Speed/RPM %.3f should beat Interface/RPM %.3f",
			get("Speed", "RPM"), get("Interface", "RPM"))
	}
	if get("Interface", "Conn") <= get("Speed", "Conn") {
		t.Errorf("Interface/Conn %.3f should beat Speed/Conn %.3f",
			get("Interface", "Conn"), get("Speed", "Conn"))
	}
}

func TestLSDArgmaxZeroing(t *testing.T) {
	st, offers := fixture(t)
	scored := Matcher{}.Score(st, offers, match.NewMatchSet(nil))
	// Per merchant attribute, only the argmax catalog attribute keeps a
	// positive score (Appendix C's hard selection).
	positive := make(map[string]int)
	for _, sc := range scored {
		if sc.Score > 0 {
			positive[sc.MerchantAttr]++
		}
	}
	for attr, n := range positive {
		if n != 1 {
			t.Errorf("merchant attr %q has %d positive candidates, want 1", attr, n)
		}
	}
}

func TestLSDEmptyCatalogCategory(t *testing.T) {
	st := catalog.NewStore()
	if err := st.AddCategory(catalog.Category{ID: "empty",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{{Name: "A"}}}}); err != nil {
		t.Fatal(err)
	}
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "empty", Spec: catalog.Spec{{Name: "B", Value: "v"}}},
	})
	scored := Matcher{}.Score(st, offers, match.NewMatchSet(nil))
	for _, sc := range scored {
		if sc.Score != 0 {
			t.Errorf("no-training-data score = %+v", sc)
		}
	}
}
