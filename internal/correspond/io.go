package correspond

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"prodsynth/internal/offer"
)

// The TSV serialization lets a production deployment learn correspondences
// offline on one machine and ship the artifact to the runtime fleet —
// retraining per synthesis run would waste the most expensive phase.
//
//	merchant \t category \t merchant_attr \t catalog_attr \t score

// ErrBadCorrespondenceFile is wrapped by all parsing errors.
var ErrBadCorrespondenceFile = errors.New("correspond: malformed correspondence file")

var ioHeader = "merchant\tcategory\tmerchant_attr\tcatalog_attr\tscore"

// WriteSet serializes a correspondence set in deterministic order.
func WriteSet(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ioHeader + "\n"); err != nil {
		return err
	}
	all := s.All()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Key.Merchant != b.Key.Merchant {
			return a.Key.Merchant < b.Key.Merchant
		}
		if a.Key.CategoryID != b.Key.CategoryID {
			return a.Key.CategoryID < b.Key.CategoryID
		}
		return a.MerchantAttr < b.MerchantAttr
	})
	for _, sc := range all {
		row := fmt.Sprintf("%s\t%s\t%s\t%s\t%.6f\n",
			sanitize(sc.Key.Merchant), sanitize(sc.Key.CategoryID),
			sanitize(sc.MerchantAttr), sanitize(sc.CatalogAttr), sc.Score)
		if _, err := bw.WriteString(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	return strings.ReplaceAll(s, "\n", " ")
}

// ReadSet parses a correspondence file written by WriteSet.
func ReadSet(r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: empty input", ErrBadCorrespondenceFile)
	}
	if sc.Text() != ioHeader {
		return nil, fmt.Errorf("%w: unexpected header %q", ErrBadCorrespondenceFile, sc.Text())
	}
	set := NewSet()
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Text()
		if raw == "" {
			continue
		}
		fields := strings.Split(raw, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("%w: line %d has %d fields, want 5", ErrBadCorrespondenceFile, line, len(fields))
		}
		score, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d score: %v", ErrBadCorrespondenceFile, line, err)
		}
		set.Add(Scored{
			Candidate: Candidate{
				Key:          offer.SchemaKey{Merchant: fields[0], CategoryID: fields[1]},
				MerchantAttr: fields[2],
				CatalogAttr:  fields[3],
			},
			Score: score,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}
