// Package eval computes the paper's evaluation metrics: precision-at-
// coverage curves for attribute correspondences (§5.2, Figures 6-9, with
// the relative-recall argument of Appendix B), and attribute/product
// precision and attribute recall for synthesized products (§5.1, Tables
// 2-4). Ground truth comes from the synthetic marketplace generator, so
// grading is exact rather than sampled.
package eval

import (
	"fmt"
	"io"
	"sort"

	"prodsynth/internal/correspond"
)

// TruthFunc reports whether a candidate is a true attribute correspondence.
type TruthFunc func(correspond.Candidate) bool

// Point is one point of a precision-at-coverage curve.
type Point struct {
	// Theta is the score threshold at this point.
	Theta float64
	// Coverage is the number of correspondences with score >= Theta
	// (the paper's x-axis).
	Coverage int
	// Precision is the fraction of those that are correct.
	Precision float64
}

// CurveOptions configures curve computation.
type CurveOptions struct {
	// ExcludeNameIdentity drops candidates where the names are equal, as
	// the paper does ("we exclude from the evaluation set the name
	// identity correspondences which are used to construct the
	// classifier", §5.2). Default in the experiments: true.
	ExcludeNameIdentity bool
	// Points is the number of curve points (default 40). Points are
	// spaced quadratically in rank space — dense near the head of the
	// ranking — because the interesting region of the paper's figures is
	// high precision at low coverage.
	Points int
	// MinScore drops candidates at or below this score before sweeping
	// (default 0: zero-scored candidates are never counted as output).
	MinScore float64
}

// PrecisionAtCoverage sweeps the score threshold over a ranked candidate
// list, producing the paper's precision-vs-coverage curve. The input must
// be sorted by descending score (as all scorers in this repository return).
func PrecisionAtCoverage(scored []correspond.Scored, truth TruthFunc, opts CurveOptions) []Point {
	if opts.Points <= 0 {
		opts.Points = 40
	}
	filtered := filterAndRank(scored, opts)
	if len(filtered) == 0 {
		return nil
	}
	// Running precision over the ranked list.
	correct := 0
	cum := make([]int, len(filtered))
	for i, sc := range filtered {
		if truth(sc.Candidate) {
			correct++
		}
		cum[i] = correct
	}
	var pts []Point
	lastK := 0
	for p := 1; p <= opts.Points; p++ {
		frac := float64(p) / float64(opts.Points)
		k := int(frac * frac * float64(len(filtered)))
		if k <= lastK {
			k = lastK + 1
		}
		if k > len(filtered) {
			break
		}
		lastK = k
		pts = append(pts, Point{
			Theta:     filtered[k-1].Score,
			Coverage:  k,
			Precision: float64(cum[k-1]) / float64(k),
		})
	}
	return pts
}

// filterAndRank applies the option filters and returns candidates sorted by
// descending score (stable, preserving the caller's tie order).
func filterAndRank(scored []correspond.Scored, opts CurveOptions) []correspond.Scored {
	filtered := make([]correspond.Scored, 0, len(scored))
	for _, sc := range scored {
		if opts.ExcludeNameIdentity && sc.NameIdentity() {
			continue
		}
		if sc.Score <= opts.MinScore {
			continue
		}
		filtered = append(filtered, sc)
	}
	sort.SliceStable(filtered, func(i, j int) bool { return filtered[i].Score > filtered[j].Score })
	return filtered
}

// MaxCoverageAtPrecision scans the full ranking and returns the largest k
// such that the precision of the top k is at least p — the exact version of
// CoverageAtPrecision, independent of curve-point granularity.
func MaxCoverageAtPrecision(scored []correspond.Scored, truth TruthFunc, opts CurveOptions, p float64) int {
	correct, best := 0, 0
	for k, sc := range filterAndRank(scored, opts) {
		if truth(sc.Candidate) {
			correct++
		}
		if float64(correct) >= p*float64(k+1) {
			best = k + 1
		}
	}
	return best
}

// CoverageAtPrecision returns the largest coverage whose precision is at
// least p (0 if never reached) — how the paper phrases comparisons like
// "we obtain 20K correspondences with 0.87 precision".
func CoverageAtPrecision(pts []Point, p float64) int {
	best := 0
	for _, pt := range pts {
		if pt.Precision >= p && pt.Coverage > best {
			best = pt.Coverage
		}
	}
	return best
}

// RelativeRecall computes recall of curve A relative to curve B at a common
// precision level per Appendix B: recall_A/recall_B = coverage_A/coverage_B
// (both multiplied by the same precision and divided by the same ground
// truth size). Returns 0 when B never reaches the precision.
func RelativeRecall(a, b []Point, precision float64) float64 {
	ca := CoverageAtPrecision(a, precision)
	cb := CoverageAtPrecision(b, precision)
	if cb == 0 {
		return 0
	}
	return float64(ca) / float64(cb)
}

// Series is a named curve, for reports.
type Series struct {
	Name   string
	Points []Point
}

// WriteCurves renders curves as aligned text columns (coverage, precision
// per series), the textual analogue of the paper's figures.
func WriteCurves(w io.Writer, series []Series) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-10s %-10s %s\n", "coverage", "precision", "theta"); err != nil {
			return err
		}
		for _, pt := range s.Points {
			if _, err := fmt.Fprintf(w, "%-10d %-10.3f %.4f\n", pt.Coverage, pt.Precision, pt.Theta); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
