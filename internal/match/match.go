// Package match produces historical offer-to-product associations —
// the instance-level matches that the offline learning phase of the paper
// exploits (§3.1: "historical offer-to-product matches").
//
// As in production systems, matches come from two sources here:
//
//  1. Universal identifiers: an offer whose spec carries a UPC (or MPN)
//     equal to a catalog product's key matches that product exactly.
//  2. Title matching: a fallback that compares the offer title with the
//     product's identifying attributes using token overlap; only matches
//     above a confidence threshold are kept.
//
// The output is a MatchSet, the input to feature computation.
package match

import (
	"sort"
	"sync"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
	"prodsynth/internal/text"
)

// Match associates one offer with one catalog product.
type Match struct {
	OfferID   string
	ProductID string
	// Source records how the match was obtained ("upc", "title").
	Source string
	// Score is the matcher confidence in [0,1]; 1 for identifier matches.
	Score float64
}

// MatchSet is an indexed collection of offer-product matches.
type MatchSet struct {
	matches   []Match
	byOffer   map[string]int
	byProduct map[string][]int
}

// NewMatchSet indexes the given matches. Later matches for an offer already
// matched are dropped (an offer matches at most one product, §2).
func NewMatchSet(matches []Match) *MatchSet {
	ms := &MatchSet{
		byOffer:   make(map[string]int),
		byProduct: make(map[string][]int),
	}
	for _, m := range matches {
		ms.add(m)
	}
	return ms
}

func (ms *MatchSet) add(m Match) {
	if _, dup := ms.byOffer[m.OfferID]; dup {
		return
	}
	idx := len(ms.matches)
	ms.matches = append(ms.matches, m)
	ms.byOffer[m.OfferID] = idx
	ms.byProduct[m.ProductID] = append(ms.byProduct[m.ProductID], idx)
}

// Len returns the number of matches.
func (ms *MatchSet) Len() int { return len(ms.matches) }

// All returns the matches in insertion order (shared slice; do not mutate).
func (ms *MatchSet) All() []Match { return ms.matches }

// ProductFor returns the product matched to the given offer.
func (ms *MatchSet) ProductFor(offerID string) (Match, bool) {
	i, ok := ms.byOffer[offerID]
	if !ok {
		return Match{}, false
	}
	return ms.matches[i], true
}

// OffersFor returns the offer IDs matched to a product, sorted.
func (ms *MatchSet) OffersFor(productID string) []string {
	idx := ms.byProduct[productID]
	out := make([]string, len(idx))
	for j, i := range idx {
		out[j] = ms.matches[i].OfferID
	}
	sort.Strings(out)
	return out
}

// Matcher finds historical offer-to-product matches.
//
// Per-category matching state (the inverted TitleIndex, or the token cache
// of the linear scan) comes from a shared Registry: it is built exactly
// once per category regardless of Workers, stays warm across Run calls
// against the same catalog, and follows catalog growth with incremental
// posting-list updates instead of rebuilds.
type Matcher struct {
	// TitleThreshold is the minimum token-overlap score for a title match
	// (default 0.6). Identifier matches are always accepted.
	TitleThreshold float64
	// DisableTitleMatching restricts matching to universal identifiers.
	DisableTitleMatching bool
	// LinearScan replaces the default inverted-index title matching
	// (IDF-weighted containment, the scalable path) with an O(|products|)
	// scan per offer using unweighted containment. It exists for ablations
	// and tiny catalogs where index construction is not worth it.
	LinearScan bool
	// Workers is the parallelism for title matching (default: 4).
	Workers int
	// Registry caches per-category matching state across runs. Nil means
	// DefaultRegistry, the process-wide cache.
	Registry *Registry
}

func (m Matcher) registry() *Registry {
	if m.Registry != nil {
		return m.Registry
	}
	return DefaultRegistry
}

// Run matches every offer against the catalog and returns the match set.
// Offers match only within their assigned category. Output is identical
// for every Workers value.
func (m Matcher) Run(store *catalog.Store, offers *offer.Set) *MatchSet {
	threshold := m.TitleThreshold
	if threshold == 0 {
		threshold = 0.6
	}
	workers := m.Workers
	if workers <= 0 {
		workers = 4
	}

	all := offers.All()
	results := make([]Match, len(all))
	found := make([]bool, len(all))

	var wg sync.WaitGroup
	chunk := (len(all) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < len(all); start += chunk {
		end := start + chunk
		if end > len(all) {
			end = len(all)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Resolve registry entries once per category per goroutine:
			// the shared registry takes a shard mutex per lookup, which
			// is fine per category but not per offer.
			local := make(categoryCache)
			for i := lo; i < hi; i++ {
				o := all[i]
				if mt, ok := m.matchOne(store, o, local, threshold); ok {
					results[i] = mt
					found[i] = true
				}
			}
		}(start, end)
	}
	wg.Wait()

	kept := make([]Match, 0, len(all))
	for i := range results {
		if found[i] {
			kept = append(kept, results[i])
		}
	}
	return NewMatchSet(kept)
}

type productTokens struct {
	id     string
	tokens map[string]bool
}

// categoryState is one category's matching state resolved from the shared
// registry; categoryCache holds resolutions local to one goroutine so the
// registry mutex is taken once per category, not once per offer.
type categoryState struct {
	index  *TitleIndex
	linear []productTokens
}

type categoryCache map[string]*categoryState

func (m Matcher) matchOne(store *catalog.Store, o offer.Offer, local categoryCache, threshold float64) (Match, bool) {
	// 1. Identifier match: UPC first, then MPN, looked up in the key index.
	for _, keyAttr := range []string{catalog.AttrUPC, catalog.AttrMPN} {
		if v, ok := o.Spec.Get(keyAttr); ok && v != "" {
			if p, ok := store.ProductByKey(v); ok && p.CategoryID == o.CategoryID {
				return Match{OfferID: o.ID, ProductID: p.ID, Source: "upc", Score: 1}, true
			}
		}
	}
	if m.DisableTitleMatching {
		return Match{}, false
	}

	st := local[o.CategoryID]
	if st == nil {
		st = &categoryState{}
		if m.LinearScan {
			st.linear = m.registry().linearTokens(store, o.CategoryID)
		} else {
			st.index = m.registry().TitleIndex(store, o.CategoryID)
		}
		local[o.CategoryID] = st
	}

	// 2a. Indexed title match (default): IDF-weighted containment via the
	// shared inverted index.
	if !m.LinearScan {
		pid, score := st.index.Match(o.Title)
		if pid != "" && score >= threshold {
			return Match{OfferID: o.ID, ProductID: pid, Source: "title", Score: score}, true
		}
		return Match{}, false
	}

	// 2b. Linear-scan title match within the category.
	prods := st.linear
	titleToks := text.DefaultTokenizer.Tokenize(o.Title)
	if len(titleToks) == 0 {
		return Match{}, false
	}
	bestScore := 0.0
	bestID := ""
	for _, p := range prods {
		if len(p.tokens) == 0 {
			continue
		}
		overlap := 0
		for _, t := range titleToks {
			if p.tokens[t] {
				overlap++
			}
		}
		// Containment of the title in the product token set: titles are
		// terse, so containment beats Jaccard here.
		score := float64(overlap) / float64(len(titleToks))
		if score > bestScore {
			bestScore = score
			bestID = p.id
		}
	}
	if bestScore >= threshold && bestID != "" {
		return Match{OfferID: o.ID, ProductID: bestID, Source: "title", Score: bestScore}, true
	}
	return Match{}, false
}
