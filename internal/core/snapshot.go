// Snapshot: versioned binary persistence for the learned offline artifact.
//
// The format is deliberately hand-rolled rather than gob/JSON so that the
// bytes are deterministic (maps are emitted in sorted order), strict to
// decode (magic, version, length and checksum are all verified before any
// payload field is parsed), and stable across Go versions — a model saved
// by one process warm-starts another without re-running the offline phase.
//
// Layout (all integers little-endian):
//
//	magic   "PSMD" (4 bytes)
//	version uint32 (SnapshotVersion)
//	length  uint64 (payload byte count)
//	crc32   uint32 (IEEE, over the payload)
//	payload (sections: stats, correspondences, scored candidates,
//	         classifier weights, category classifier counts)
//
// The payload holds everything the runtime pipeline consumes — the
// correspondence set, the trained logistic-regression weights, the scored
// candidate list, the title→category classifier counts, and the §5.1
// statistics. The offline phase's raw inputs (offers, matches, the feature
// table) are learning-time diagnostics and are not persisted; a decoded
// OfflineResult carries nil for them.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"prodsynth/internal/categorize"
	"prodsynth/internal/correspond"
	"prodsynth/internal/ml"
	"prodsynth/internal/offer"
)

// SnapshotVersion is the on-disk format version written by EncodeOffline.
// DecodeOffline rejects any other version.
const SnapshotVersion = 1

// ErrBadSnapshot is wrapped by every DecodeOffline error caused by the
// input (bad magic, unsupported version, checksum mismatch, truncation,
// malformed payload) — as opposed to I/O errors from the reader.
var ErrBadSnapshot = errors.New("core: invalid model snapshot")

var snapshotMagic = [4]byte{'P', 'S', 'M', 'D'}

// maxSnapshotPayload bounds the payload length DecodeOffline accepts, so a
// corrupt header cannot demand an absurd read.
const maxSnapshotPayload = 1 << 30

// EncodeOffline writes a versioned, checksummed snapshot of the learned
// artifact. The output is deterministic: encoding the same logical state
// twice yields identical bytes.
func EncodeOffline(w io.Writer, off *OfflineResult) error {
	if off == nil {
		return errors.New("core: nil offline result")
	}
	var p payloadWriter
	p.stats(off.Stats)
	p.correspondences(off.Correspondences)
	p.scored(off.Scored)
	p.logistic(off.Model)
	p.classifier(off.Classifier)

	payload := p.buf.Bytes()
	header := make([]byte, 0, 20)
	header = append(header, snapshotMagic[:]...)
	header = binary.LittleEndian.AppendUint32(header, SnapshotVersion)
	header = binary.LittleEndian.AppendUint64(header, uint64(len(payload)))
	header = binary.LittleEndian.AppendUint32(header, crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// DecodeOffline parses a snapshot written by EncodeOffline, strictly: any
// deviation from the format — wrong magic, unknown version, length or
// checksum mismatch, truncated or trailing bytes — is an error wrapping
// ErrBadSnapshot, never a panic or a partially filled result.
func DecodeOffline(r io.Reader) (*OfflineResult, error) {
	header := make([]byte, 20)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadSnapshot, err)
		}
		return nil, err // genuine reader I/O failure, not a format error
	}
	if !bytes.Equal(header[:4], snapshotMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, header[:4])
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != SnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (want %d)", ErrBadSnapshot, v, SnapshotVersion)
	}
	length := binary.LittleEndian.Uint64(header[8:16])
	if length > maxSnapshotPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadSnapshot, length)
	}
	sum := binary.LittleEndian.Uint32(header[16:20])

	// Read through a limited ReadAll rather than a trusted-length alloc,
	// so a forged length cannot force a giant allocation. ReadAll never
	// returns io.EOF, so any error here is a genuine reader failure —
	// short input surfaces as the length mismatch below instead.
	payload, err := io.ReadAll(io.LimitReader(r, int64(length)))
	if err != nil {
		return nil, err
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrBadSnapshot, len(payload), length)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch: %08x != %08x", ErrBadSnapshot, got, sum)
	}
	// io.ReadFull rather than a bare Read: a reader may legally return
	// (0, nil), which would let trailing bytes slip past a single Read.
	switch _, err := io.ReadFull(r, make([]byte, 1)); err {
	case io.EOF:
		// clean end of input
	case nil:
		return nil, fmt.Errorf("%w: trailing data after payload", ErrBadSnapshot)
	default:
		return nil, err // genuine reader I/O failure, not a format error
	}

	d := payloadReader{buf: payload}
	off := &OfflineResult{}
	off.Stats = d.stats()
	off.Correspondences = d.correspondences()
	off.Scored = d.scored()
	off.Model = d.logistic()
	off.Classifier = d.classifier()
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%w: %d unparsed payload bytes", ErrBadSnapshot, len(d.buf)-d.pos)
	}
	return off, nil
}

// payloadWriter accumulates the payload. bytes.Buffer writes cannot fail.
type payloadWriter struct {
	buf bytes.Buffer
}

func (p *payloadWriter) u32(v uint32) {
	p.buf.Write(binary.LittleEndian.AppendUint32(nil, v))
}

func (p *payloadWriter) u64(v uint64) {
	p.buf.Write(binary.LittleEndian.AppendUint64(nil, v))
}

func (p *payloadWriter) f64(v float64) { p.u64(math.Float64bits(v)) }

func (p *payloadWriter) bool(v bool) {
	if v {
		p.buf.WriteByte(1)
	} else {
		p.buf.WriteByte(0)
	}
}

func (p *payloadWriter) str(s string) {
	p.u32(uint32(len(s)))
	p.buf.WriteString(s)
}

func (p *payloadWriter) record(sc correspond.Scored) {
	p.str(sc.Key.Merchant)
	p.str(sc.Key.CategoryID)
	p.str(sc.MerchantAttr)
	p.str(sc.CatalogAttr)
	p.f64(sc.Score)
}

func (p *payloadWriter) stats(st OfflineStats) {
	p.u64(uint64(st.HistoricalOffers))
	p.u64(uint64(st.MatchedOffers))
	p.u64(uint64(st.Candidates))
	p.u64(uint64(st.TrainingSize))
	p.u64(uint64(st.TrainingPositives))
	p.u64(uint64(st.Correspondences))
}

func (p *payloadWriter) correspondences(set *correspond.Set) {
	if set == nil {
		p.u32(0)
		return
	}
	all := set.All()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Key.Merchant != b.Key.Merchant {
			return a.Key.Merchant < b.Key.Merchant
		}
		if a.Key.CategoryID != b.Key.CategoryID {
			return a.Key.CategoryID < b.Key.CategoryID
		}
		return a.MerchantAttr < b.MerchantAttr
	})
	p.u32(uint32(len(all)))
	for _, sc := range all {
		p.record(sc)
	}
}

func (p *payloadWriter) scored(scored []correspond.Scored) {
	p.u32(uint32(len(scored)))
	for _, sc := range scored {
		p.record(sc)
	}
}

func (p *payloadWriter) logistic(m *correspond.Model) {
	if m == nil || m.LR == nil {
		p.bool(false)
		return
	}
	p.bool(true)
	p.u64(uint64(m.TrainingSize))
	p.u64(uint64(m.TrainingPositives))
	p.f64(m.LR.Bias)
	p.u32(uint32(len(m.LR.Weights)))
	for _, w := range m.LR.Weights {
		p.f64(w)
	}
}

func (p *payloadWriter) classifier(c *categorize.Classifier) {
	if c == nil {
		p.bool(false)
		return
	}
	p.bool(true)
	snap := c.Snapshot()
	p.f64(snap.Laplace)
	p.bool(snap.ClassPriors)
	p.u32(uint32(len(snap.Classes)))
	for _, cls := range snap.Classes {
		p.str(cls.Name)
		p.u64(uint64(cls.Docs))
		p.u32(uint32(len(cls.Tokens)))
		for _, tc := range cls.Tokens {
			p.str(tc.Token)
			p.u64(uint64(tc.Count))
		}
	}
}

// payloadReader is a strict bounds-checked cursor over the payload. The
// first failure latches err and turns every later read into a no-op, so
// section decoders can run unconditionally and the error is checked once.
type payloadReader struct {
	buf []byte
	pos int
	err error
}

func (d *payloadReader) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrBadSnapshot}, args...)...)
	}
}

func (d *payloadReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.pos < n {
		d.fail("truncated at byte %d (need %d more)", d.pos, n)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *payloadReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *payloadReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *payloadReader) int(what string) int {
	v := d.u64()
	if v > math.MaxInt64 {
		d.fail("%s out of range: %d", what, v)
		return 0
	}
	return int(int64(v))
}

func (d *payloadReader) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *payloadReader) bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte %d at %d", b[0], d.pos-1)
		return false
	}
}

func (d *payloadReader) str() string {
	n := d.u32()
	return string(d.take(int(n)))
}

// count reads an element count and sanity-checks it against the bytes
// remaining (minSize is the smallest possible encoding of one element), so
// a forged count cannot drive a huge preallocation.
func (d *payloadReader) count(what string, minSize int) int {
	n := int(d.u32())
	if d.err == nil && n*minSize > len(d.buf)-d.pos {
		d.fail("%s count %d exceeds remaining payload", what, n)
		return 0
	}
	return n
}

// minRecordSize is four empty strings (4 bytes length each) + a float64.
const minRecordSize = 4*4 + 8

func (d *payloadReader) record() correspond.Scored {
	return correspond.Scored{
		Candidate: correspond.Candidate{
			Key:          offer.SchemaKey{Merchant: d.str(), CategoryID: d.str()},
			MerchantAttr: d.str(),
			CatalogAttr:  d.str(),
		},
		Score: d.f64(),
	}
}

func (d *payloadReader) stats() OfflineStats {
	return OfflineStats{
		HistoricalOffers:  d.int("stats.HistoricalOffers"),
		MatchedOffers:     d.int("stats.MatchedOffers"),
		Candidates:        d.int("stats.Candidates"),
		TrainingSize:      d.int("stats.TrainingSize"),
		TrainingPositives: d.int("stats.TrainingPositives"),
		Correspondences:   d.int("stats.Correspondences"),
	}
}

func (d *payloadReader) correspondences() *correspond.Set {
	n := d.count("correspondences", minRecordSize)
	set := correspond.NewSet()
	for i := 0; i < n && d.err == nil; i++ {
		set.Add(d.record())
	}
	return set
}

func (d *payloadReader) scored() []correspond.Scored {
	n := d.count("scored candidates", minRecordSize)
	if n == 0 {
		return nil
	}
	out := make([]correspond.Scored, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.record())
	}
	return out
}

func (d *payloadReader) logistic() *correspond.Model {
	if !d.bool() {
		return nil
	}
	m := &correspond.Model{
		TrainingSize:      d.int("model.TrainingSize"),
		TrainingPositives: d.int("model.TrainingPositives"),
	}
	bias := d.f64()
	n := d.count("classifier weights", 8)
	weights := make([]float64, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		weights = append(weights, d.f64())
	}
	m.LR = &ml.Logistic{Weights: weights, Bias: bias}
	return m
}

func (d *payloadReader) classifier() *categorize.Classifier {
	if !d.bool() {
		return nil
	}
	snap := ml.NBSnapshot{
		Laplace:     d.f64(),
		ClassPriors: d.bool(),
	}
	// Smallest class: empty name (4) + docs (8) + token count (4).
	nClasses := d.count("classifier classes", 16)
	for i := 0; i < nClasses && d.err == nil; i++ {
		cls := ml.NBClassSnapshot{Name: d.str(), Docs: d.int("class docs")}
		// Smallest token entry: empty token (4) + count (8).
		nTokens := d.count("class tokens", 12)
		for j := 0; j < nTokens && d.err == nil; j++ {
			cls.Tokens = append(cls.Tokens, ml.NBTokenCount{Token: d.str(), Count: d.int("token count")})
		}
		snap.Classes = append(snap.Classes, cls)
	}
	if d.err != nil {
		return nil
	}
	return categorize.FromSnapshot(snap)
}
