package prodsynth

import (
	"context"
	"io"

	"prodsynth/internal/categorize"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
)

// Model is the immutable artifact of the offline learning phase (§3): the
// selected attribute correspondences, the trained classifier weights, the
// scored candidate list, and the learning statistics. A Model is produced
// by Learn or LoadModel, is safe for concurrent use, and never changes —
// re-learning produces a new Model, which a serving System adopts
// atomically via System.Use.
//
// Models are plain values, independent of any catalog or process: persist
// one with SaveModel and warm-start a fresh process with LoadModel instead
// of re-running the offline phase. A loaded Model carries everything the
// runtime pipeline consumes; the offline phase's raw inputs (the enriched
// historical offers, the match set, the feature table) are learning-time
// diagnostics and do not survive a save/load round trip.
type Model struct {
	offline *core.OfflineResult
}

// Stats returns the offline learning statistics (the paper's §5.1 numbers).
func (m *Model) Stats() OfflineStats { return m.offline.Stats }

// Correspondences returns every selected attribute correspondence — the
// set schema reconciliation translates merchant attributes with. The
// returned slice is a fresh copy in unspecified order.
func (m *Model) Correspondences() []Correspondence {
	if m.offline.Correspondences == nil {
		return nil
	}
	return m.offline.Correspondences.All()
}

// ScoredCandidates returns every candidate correspondence with its
// classifier score, best first. The returned slice is a fresh copy.
func (m *Model) ScoredCandidates() []Correspondence {
	if m.offline.Scored == nil {
		return nil
	}
	out := make([]Correspondence, len(m.offline.Scored))
	copy(out, m.offline.Scored)
	return out
}

// Option adjusts the pipeline Config used by Learn, NewSystem, and the
// other option-taking entry points. Options apply in order over the zero
// Config (the paper's defaults: table extraction, UPC+title matching, all
// six features, class-weighted logistic regression, centroid fusion,
// threshold 0.5).
type Option func(*Config)

// WithConfig replaces the whole Config — the bridge for code that already
// assembles a Config value (including everything ported from the v1 API).
func WithConfig(cfg Config) Option { return func(c *Config) { *c = cfg } }

// WithWorkers bounds the pipeline's worker pools. Output is identical for
// every value; see Config.Workers.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithScoreThreshold sets the classifier probability above which a
// candidate becomes a correspondence (default 0.5).
func WithScoreThreshold(t float64) Option { return func(c *Config) { c.ScoreThreshold = t } }

// WithStrictPages makes a landing-page fetch failure fatal to a run —
// runtime and offline learning alike; see Config.StrictPages.
func WithStrictPages(strict bool) Option { return func(c *Config) { c.StrictPages = strict } }

// WithFetchPolicy wraps every landing-page fetch in the resilience layer:
// per-attempt deadlines, bounded retries with full-jitter backoff, a
// per-host circuit breaker, and a concurrency gate, with exact counters in
// each result's FetchReport. The fetcher is wrapped once per run (once per
// stream), so breaker state and counters span a whole batch or wave
// sequence; see Config.Fetch and DefaultFetchPolicy.
func WithFetchPolicy(p FetchPolicy) Option { return func(c *Config) { c.Fetch = p } }

// WithStageBuffer sets the bounded buffer depth between the streaming
// pipeline's wave-level stages (prepare → fuse); see Config.StageBuffer.
// 0, the default, is an unbuffered handoff: wave n+1's prepare still
// overlaps wave n's fuse, but never runs more than one wave ahead.
// Positive depths let prepare run that many additional waves ahead; a
// negative value disables cross-wave pipelining entirely (barrier
// execution, each wave fully fused before the next is prepared). Output
// is byte-identical for every value.
func WithStageBuffer(n int) Option { return func(c *Config) { c.StageBuffer = n } }

// WithMatchRegistry gives the pipeline a private match-index cache with
// its own sharding and memory bound instead of the process-wide default.
func WithMatchRegistry(reg *MatchRegistry) Option {
	return func(c *Config) { c.Matcher.Registry = reg }
}

func buildConfig(opts []Option) Config {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Learn runs the offline learning phase (§3) over historical offers:
// extraction, historical matching, feature computation, automatic training
// set construction, classifier training, and correspondence selection. It
// returns the learned artifact as an immutable Model.
//
// Cancelling ctx stops the phase at the next stage boundary (or between
// worker-pool jobs inside a stage) with ctx.Err(); the bounded pools are
// always joined before Learn returns, so cancellation leaks no goroutines.
//
// A configured WithFetchPolicy applies here too: historical-page fetches
// retry under the policy, and the learning run's fetch activity —
// including historical offers learned feed-only — is reported via
// Model.FetchReport.
func Learn(ctx context.Context, store *Catalog, historical []Offer, pages PageFetcher, opts ...Option) (*Model, error) {
	cfg := buildConfig(opts)
	off, err := core.RunOffline(ctx, store, historical, wrapFetch(pages, cfg), cfg)
	if err != nil {
		return nil, err
	}
	return &Model{offline: off}, nil
}

// FetchReport returns the fetch accounting of the learning run that
// produced the model: counters plus the historical offers learned from
// feed specs alone. Zero for models built from correspondences or loaded
// from a snapshot (learning-time diagnostics do not survive a save/load
// round trip).
func (m *Model) FetchReport() FetchReport { return m.offline.Fetch }

// ModelFromCorrespondences wraps an externally obtained correspondence set
// (e.g. rows parsed from the TSV interchange format of internal/correspond)
// as a Model, so the runtime pipeline can run without the offline phase.
// The title→category classifier is trained from the given catalog; offers
// that already carry a category bypass it.
func ModelFromCorrespondences(store *Catalog, correspondences []Correspondence) *Model {
	set := correspond.NewSet()
	for _, sc := range correspondences {
		set.Add(sc)
	}
	classifier := categorize.New()
	classifier.TrainFromCatalog(store)
	return &Model{offline: core.OfflineFromCorrespondences(set, classifier)}
}

// ModelFormatVersion is the version number embedded in the binary format
// written by SaveModel. LoadModel rejects every other version.
const ModelFormatVersion = core.SnapshotVersion

// ErrBadModel is wrapped by every LoadModel error caused by the input
// itself: bad magic, unsupported version, checksum mismatch, truncation,
// or a malformed payload.
var ErrBadModel = core.ErrBadSnapshot

// SaveModel writes the model as a versioned, checksummed binary snapshot.
// The bytes are deterministic: saving the same model twice yields
// identical output, so snapshots can be content-addressed and diffed.
func SaveModel(w io.Writer, m *Model) error {
	return core.EncodeOffline(w, m.offline)
}

// LoadModel reads a snapshot written by SaveModel, strictly: the magic,
// format version, payload length, and checksum are verified before any
// field is parsed, and corrupt or truncated input returns an error
// wrapping ErrBadModel — never a panic or a partial Model. The loaded
// Model synthesizes identically to the one that was saved (given a catalog
// with the same contents).
func LoadModel(r io.Reader) (*Model, error) {
	off, err := core.DecodeOffline(r)
	if err != nil {
		return nil, err
	}
	return &Model{offline: off}, nil
}
