// Harddrives walks through the paper's running example (Figures 1, 2 and
// 5): a hard-drive catalog, merchants that rename attributes ("Speed" vs
// "RPM", "Interface" vs "Int. Type", "Capacity" vs "Hard Disk Size"), and
// offers whose specs live in HTML tables on landing pages.
//
// The example is built entirely by hand — no generator — so every moving
// part of the pipeline is visible: which correspondences get learned, how
// a noisy "Availability" attribute is filtered, and how offers from two
// merchants fuse into one catalog-ready product.
//
//	go run ./examples/harddrives
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"prodsynth"
)

// page renders a minimal merchant landing page with a spec table.
func page(title string, pairs [][2]string) string {
	var b strings.Builder
	b.WriteString("<html><body><h1>" + title + "</h1><table>")
	for _, p := range pairs {
		b.WriteString("<tr><td>" + p[0] + "</td><td>" + p[1] + "</td></tr>")
	}
	b.WriteString("</table></body></html>")
	return b.String()
}

func main() {
	log.SetFlags(0)

	// --- The catalog: hard drives with structured specs (Figure 5a, left).
	store := prodsynth.NewCatalog()
	err := store.AddCategory(prodsynth.Category{
		ID: "computing/hard-drives", Name: "Hard Drives", TopLevel: "Computing",
		Schema: prodsynth.Schema{Attributes: []prodsynth.Attribute{
			{Name: "Brand", Kind: prodsynth.KindCategorical},
			{Name: "Model", Kind: prodsynth.KindText},
			{Name: "Speed", Kind: prodsynth.KindNumeric, Unit: "rpm"},
			{Name: "Interface", Kind: prodsynth.KindCategorical},
			{Name: "Capacity", Kind: prodsynth.KindNumeric, Unit: "GB"},
			{Name: prodsynth.AttrMPN, Kind: prodsynth.KindIdentifier},
			{Name: prodsynth.AttrUPC, Kind: prodsynth.KindIdentifier},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	type drive struct{ id, brand, model, speed, iface, capacity, mpn, upc string }
	drives := []drive{
		{"p1", "Seagate", "Barracuda", "5400", "ATA 100", "250", "ST3250", "001"},
		{"p2", "Seagate", "Cheetah", "10000", "ATA 100", "146", "ST3146", "002"},
		{"p3", "Western Digital", "Raptor", "7200", "IDE 133", "150", "WD1500", "003"},
		{"p4", "Seagate", "Momentus", "5400", "IDE 133", "120", "ST9120", "004"},
		{"p5", "Hitachi", "39T2525", "7200", "ATA 133", "300", "HT3925", "005"},
		{"p6", "Hitachi", "38L2392", "10000", "SCSI", "73", "HT3823", "006"},
	}
	for _, d := range drives {
		err := store.AddProduct(prodsynth.Product{
			ID: d.id, CategoryID: "computing/hard-drives",
			Spec: prodsynth.Spec{
				{Name: "Brand", Value: d.brand}, {Name: "Model", Value: d.model},
				{Name: "Speed", Value: d.speed}, {Name: "Interface", Value: d.iface},
				{Name: "Capacity", Value: d.capacity},
				{Name: prodsynth.AttrMPN, Value: d.mpn}, {Name: prodsynth.AttrUPC, Value: d.upc},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// --- Historical offers from two merchants (Figure 5a, right).
	// "driveking" uses the catalog's own attribute names — those name
	// identities become the automatic training set. "hdshop" renames
	// everything; the classifier must recover its vocabulary from value
	// distributions. Both list a marketing "Availability" row that the
	// extractor will pick up and reconciliation must discard.
	pages := prodsynth.MapFetcher{}
	var historical []prodsynth.Offer
	addOffer := func(id, merchant, title, upc string, pairs [][2]string) prodsynth.Offer {
		url := "http://" + merchant + ".example/" + id
		pages[url] = page(title, pairs)
		o := prodsynth.Offer{
			ID: id, Merchant: merchant, CategoryID: "computing/hard-drives",
			Title: title, URL: url, PriceCents: 6700,
			Spec: prodsynth.Spec{{Name: prodsynth.AttrUPC, Value: upc}},
		}
		return o
	}
	for i, d := range drives[:5] {
		id := fmt.Sprintf("dk-%d", i)
		historical = append(historical, addOffer(id, "driveking",
			d.brand+" "+d.model+" hard drive", d.upc, [][2]string{
				{"Brand", d.brand}, {"Model", d.model}, {"Speed", d.speed + " rpm"},
				{"Interface", d.iface}, {"Capacity", d.capacity + " GB"},
				{"Model Part Number", d.mpn}, {"Availability", "In Stock"},
			}))
	}
	for i, d := range []drive{drives[0], drives[2], drives[3], drives[4]} {
		id := fmt.Sprintf("hs-%d", i)
		historical = append(historical, addOffer(id, "hdshop",
			d.brand+" "+d.model+" HDD", d.upc, [][2]string{
				{"Make", d.brand}, {"Product Line", d.model}, {"RPM", d.speed},
				{"Int. Type", d.iface + " mb/s"}, {"Hard Disk Size", d.capacity},
				{"Mfr. Part #", d.mpn}, {"Availability", "Ships Today"},
			}))
	}

	// --- Offline learning: the historical offers yield an immutable
	// Model artifact; the runtime System is then built from it.
	ctx := context.Background()
	model, err := prodsynth.Learn(ctx, store, historical, pages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("learned attribute correspondences:")
	corr := model.Correspondences()
	sort.Slice(corr, func(i, j int) bool {
		if corr[i].Key.Merchant != corr[j].Key.Merchant {
			return corr[i].Key.Merchant < corr[j].Key.Merchant
		}
		return corr[i].MerchantAttr < corr[j].MerchantAttr
	})
	for _, c := range corr {
		marker := ""
		if c.MerchantAttr == c.CatalogAttr {
			marker = " (name identity)"
		}
		fmt.Printf("  %-10s %-18s -> %-18s score %.2f%s\n",
			c.Key.Merchant, c.MerchantAttr, c.CatalogAttr, c.Score, marker)
	}

	// --- A new drive appears on both merchants but is missing from the
	// catalog; synthesize it (Figure 2's fusion scenario).
	incoming := []prodsynth.Offer{
		addOffer("dk-new", "driveking", "Hitachi Deskstar T7K500 hard drive", "", [][2]string{
			{"Brand", "Hitachi"}, {"Model", "Deskstar T7K500"}, {"Speed", "7200 rpm"},
			{"Interface", "SATA 300"}, {"Capacity", "500 GB"},
			{"Model Part Number", "HDT725050VLA360"}, {"Availability", "In Stock"},
		}),
		addOffer("hs-new", "hdshop", "Hitachi 500GB S/ATA2 7200rpm", "", [][2]string{
			{"Make", "Hitachi"}, {"Product Line", "Deskstar T7K500"}, {"RPM", "7200"},
			{"Int. Type", "SATA 300 mb/s"}, {"Hard Disk Size", "500"},
			{"Mfr. Part #", "HDT 725050-VLA360"}, {"Availability", "Back Order"},
		}),
	}
	// The feed rows for the new product carry no UPC, so identifier
	// matching cannot pre-associate them with anything in the catalog.
	incoming[0].Spec = nil
	incoming[1].Spec = nil

	sys := prodsynth.NewSystem(store, model)
	res, err := sys.SynthesizeContext(ctx, incoming, pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized %d product(s); %d noise pairs dropped by schema reconciliation\n",
		len(res.Products), res.PairsDropped)
	for _, p := range res.Products {
		fmt.Printf("\nnew catalog product (category %s, key %s=%s, fused from %d offers):\n",
			p.CategoryID, p.KeyAttr, p.Key, len(p.OfferIDs))
		for _, av := range p.Spec {
			fmt.Printf("  %-20s %s\n", av.Name, av.Value)
		}
	}
}
