package durable

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// The crash tests re-exec the test binary as a child that appends a
// deterministic workload with a killpoint armed (see KillpointEnv), then
// recover the child's data directory in-process and require the result
// to be byte-identical to a store that never crashed. TestMain diverts
// the child invocation before any test runs.

const (
	crashChildEnv = "DURABLE_CRASH_CHILD"
	crashDirEnv   = "DURABLE_CRASH_DIR"
	crashProducts = 40
)

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		crashChild()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// crashChild is the workload the parent SIGKILLs mid-flight: open the
// durable store, register the categories, append crashProducts products
// acking each on stdout, and compact once after the 10th. With
// SyncAlways, every acked append must survive the kill.
func crashChild() {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(2)
	}
	m, err := Open(os.Getenv(crashDirEnv), Options{MaxSegmentBytes: 512})
	if err != nil {
		fail(err)
	}
	st := m.Store()
	for _, c := range testCategories() {
		if err := st.AddCategory(c); err != nil {
			fail(err)
		}
	}
	for i := 0; i < crashProducts; i++ {
		if _, err := st.AddProductOutcome(testProduct(i)); err != nil {
			fail(err)
		}
		fmt.Printf("acked %d\n", i+1)
		if i == 9 {
			if err := m.Compact(); err != nil {
				fail(err)
			}
		}
	}
	if err := m.Close(); err != nil {
		fail(err)
	}
}

func TestKillAndRecover(t *testing.T) {
	// Killpoint counts are in records: 1-2 are the category
	// registrations, 3-12 the first ten products, then the compaction
	// (no records), then the rest. Every point is after the categories,
	// so the recovered taxonomy is always complete.
	cases := []struct {
		name      string
		killpoint string
	}{
		{"append-early", "append:5"},
		{"append-after-compaction", "append:27"},
		{"torn-append-early", "append-torn:6"},
		{"torn-append-after-compaction", "append-torn:18"},
		{"mid-compaction-before-manifest", "compact-snapshots:1"},
		{"mid-compaction-after-manifest", "compact-manifest:1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=TestKillAndRecover")
			cmd.Env = append(os.Environ(),
				crashChildEnv+"=1",
				crashDirEnv+"="+dir,
				KillpointEnv+"="+tc.killpoint,
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("child survived; killpoint %s never fired\n%s", tc.killpoint, out)
			}
			lastAcked := parseLastAcked(t, out)
			if lastAcked == 0 {
				t.Fatalf("child acked nothing before dying\n%s", out)
			}

			// Recover. The store must hold every acked append (n can
			// exceed lastAcked by one: a record can be durable before
			// its ack prints) and be byte-identical to a store that
			// performed the same n appends with no crash at all.
			m, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			n := m.Store().NumProducts()
			if n < lastAcked {
				t.Fatalf("recovered %d products, child acked %d", n, lastAcked)
			}
			if got, want := storeBytes(t, m.Store()), referenceBytes(t, n); !bytes.Equal(got, want) {
				t.Fatalf("recovered store differs from uninterrupted reference at %d products", n)
			}

			// The recovered store must also be fully live: appends
			// continue, and a second recovery sees them too.
			for i := n; i < n+5; i++ {
				if _, err := m.Store().AddProductOutcome(testProduct(i)); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			}
			if err := m.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			m2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			defer m2.Close()
			if got, want := storeBytes(t, m2.Store()), referenceBytes(t, n+5); !bytes.Equal(got, want) {
				t.Fatal("store diverged after post-recovery appends and a second recovery")
			}
		})
	}
}

// parseLastAcked extracts the highest "acked N" the child printed.
func parseLastAcked(t *testing.T, out []byte) int {
	t.Helper()
	last := 0
	for _, line := range strings.Split(string(out), "\n") {
		numStr, ok := strings.CutPrefix(strings.TrimSpace(line), "acked ")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(numStr)
		if err != nil {
			t.Fatalf("bad ack line %q", line)
		}
		if n > last {
			last = n
		}
	}
	return last
}

// TestKillpointParsing pins the env contract the crash tests rely on.
func TestKillpointParsing(t *testing.T) {
	t.Setenv(KillpointEnv, "append:3")
	kp := parseKillpoint()
	if kp.hit("compact-snapshots") {
		t.Fatal("wrong name fired")
	}
	if kp.hit("append") || kp.hit("append") {
		t.Fatal("fired before the n-th hit")
	}
	if !kp.hit("append") {
		t.Fatal("did not fire on the n-th hit")
	}
	if kp.hit("append") {
		t.Fatal("fired twice")
	}
	for _, bad := range []string{"", "append", "append:", "append:x", "append:0", ":3"} {
		t.Setenv(KillpointEnv, bad)
		if kp := parseKillpoint(); kp.hit("append") {
			t.Fatalf("malformed %q armed a killpoint", bad)
		}
	}
}
