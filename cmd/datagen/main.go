// Command datagen generates a synthetic marketplace dataset — catalog,
// merchant offer feeds, and HTML landing pages — and writes it to a
// directory that cmd/synthesize and cmd/experiments can consume.
//
// Usage:
//
//	datagen -out ./data [-seed 1] [-categories 4] [-products 40]
//	        [-merchants 30] [-truth=true]
//
// With -truth (default on) the generator's ground truth is included so
// downstream evaluation can grade results exactly; pass -truth=false to
// produce a production-shaped dataset without answers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"prodsynth/internal/dataset"
	"prodsynth/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		out        = flag.String("out", "", "output directory (required)")
		seed       = flag.Int64("seed", 1, "random seed")
		categories = flag.Int("categories", 4, "leaf categories per top-level domain")
		products   = flag.Int("products", 40, "products per category")
		merchants  = flag.Int("merchants", 30, "number of merchants")
		truth      = flag.Bool("truth", true, "include ground truth for evaluation")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := synth.Config{
		Seed:                *seed,
		CategoriesPerDomain: *categories,
		ProductsPerCategory: *products,
		Merchants:           *merchants,
	}
	ds := synth.Generate(cfg)
	if err := dataset.Save(ds, *out, *truth); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("  categories:        %d\n", ds.Catalog.NumCategories())
	fmt.Printf("  catalog products:  %d\n", ds.Catalog.NumProducts())
	fmt.Printf("  universe products: %d (%d withheld from catalog)\n",
		len(ds.Universe), len(ds.Truth.Missing))
	fmt.Printf("  historical offers: %d\n", len(ds.HistoricalOffers))
	fmt.Printf("  incoming offers:   %d\n", len(ds.IncomingOffers))
	fmt.Printf("  landing pages:     %d\n", len(ds.Pages))
}
