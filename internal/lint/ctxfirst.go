package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ctxFirstPackages are where the context-first entry-point rule applies:
// the public surface (root package) and the pipeline/serving/ingestion
// layers whose exported functions fan out work or touch the outside
// world.
var ctxFirstPackages = map[string]bool{
	"prodsynth":                 true,
	"prodsynth/internal/core":   true,
	"prodsynth/internal/stream": true,
	"prodsynth/internal/serve":  true,
	"prodsynth/internal/fetch":  true,
}

// ioFuncs are direct stdlib calls that make a function "perform I/O" for
// the ctx-first rule. The list is deliberately the blocking entry points,
// not every os helper: the rule is about functions a caller may need to
// cancel.
var ioFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "ReadFile": true,
		"WriteFile": true, "ReadDir": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "MkdirAll": true, "Mkdir": true,
	},
	"net": {"Listen": true, "Dial": true, "DialTimeout": true},
}

// CtxFirst enforces the v2 API's context discipline: exported functions
// in the root package and internal/{core,stream,serve,fetch} that spawn
// goroutines, block on channels, or perform I/O take context.Context as
// their first parameter, and library packages never manufacture contexts
// with context.Background()/context.TODO() — only cmd/, examples/, and
// tests may. Deliberate detached contexts (v1 shims, drain/reload
// lifecycles) carry lint:allow annotations.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context-first exported entry points; no context.Background/TODO in library packages",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	path := pass.Pkg.Path
	library := !strings.HasPrefix(path, "prodsynth/cmd/") && !strings.HasPrefix(path, "prodsynth/examples/") &&
		path != "prodsynth/cmd" && path != "prodsynth/examples"
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		if library {
			ast.Inspect(f.Ast, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel := f.PkgSel(call.Fun, "context"); sel == "Background" || sel == "TODO" {
					pass.Reportf(call.Pos(),
						"context.%s in library package %s: take a ctx from the caller — only cmd/, examples/, and tests make root contexts", sel, path)
				}
				return true
			})
		}
		if !ctxFirstPackages[path] {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			why := blockingWork(f, fd)
			if why == "" {
				continue
			}
			if !firstParamIsContext(f, fd) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s but does not take context.Context as its first parameter", fd.Name.Name, why)
			}
		}
	}
}

// blockingWork reports why fd needs a context: it spawns a goroutine,
// blocks on channel operations, or performs direct I/O. Empty when none
// of those appear in its body.
func blockingWork(f *File, fd *ast.FuncDecl) string {
	why := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A goroutine body's own channel traffic is the spawned
			// work's, not the caller's blocking surface; the GoStmt case
			// below already catches the spawn itself.
			return false
		case *ast.GoStmt:
			why = "spawns goroutines"
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			why = "blocks on channel operations"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				why = "blocks on channel operations"
				return false
			}
		case *ast.RangeStmt:
			// Ranging over a channel blocks; over anything else it does
			// not, and without types we cannot tell. Leave it to the
			// explicit receive/send cases.
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if names, ok := ioFuncs[f.Imports[id.Name]]; ok && names[sel.Sel.Name] {
						why = "performs I/O (" + id.Name + "." + sel.Sel.Name + ")"
						return false
					}
				}
			}
		}
		return true
	})
	return why
}

// firstParamIsContext reports whether fd's first parameter is typed
// context.Context.
func firstParamIsContext(f *File, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	return f.PkgSel(params.List[0].Type, "context") == "Context"
}
