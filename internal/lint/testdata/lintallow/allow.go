package durable

import "time"

// now carries a lint:allow with no reason: it suppresses nothing and is
// itself a finding. (Asserted directly by TestAllowRequiresReason — this
// fixture deliberately has no want markers.)
func now() time.Time {
	//lint:allow clockcheck
	return time.Now()
}
