package prodsynth

// Legacy sits outside compat.go, so its marker is in the wrong home.
//
// Deprecated: v1 shims live in compat.go.
func Legacy() {} // want "Legacy outside compat.go"

// Current is exported, current API: no marker, no finding.
func Current() {}
