package prodsynth_test

import (
	"context"
	"fmt"
	"log"

	"prodsynth"
)

// Example_endToEnd walks the full public API: build a catalog, learn
// attribute correspondences — into an immutable Model — from a merchant
// whose historical offers use the catalog's own attribute names plus a
// merchant that renames them, then synthesize a product that is missing
// from the catalog.
func Example_endToEnd() {
	store := prodsynth.NewCatalog()
	err := store.AddCategory(prodsynth.Category{
		ID: "hd", Name: "Hard Drives", TopLevel: "Computing",
		Schema: prodsynth.Schema{Attributes: []prodsynth.Attribute{
			{Name: "Brand", Kind: prodsynth.KindCategorical},
			{Name: "Speed", Kind: prodsynth.KindNumeric, Unit: "rpm"},
			{Name: prodsynth.AttrMPN, Kind: prodsynth.KindIdentifier},
			{Name: prodsynth.AttrUPC, Kind: prodsynth.KindIdentifier},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	speeds := []string{"5400", "7200", "10000", "5400", "7200"}
	brands := []string{"Seagate", "Hitachi", "Seagate", "Samsung", "Hitachi"}
	for i := 0; i < 5; i++ {
		err := store.AddProduct(prodsynth.Product{
			ID: fmt.Sprintf("p%d", i), CategoryID: "hd",
			Spec: prodsynth.Spec{
				{Name: "Brand", Value: brands[i]},
				{Name: "Speed", Value: speeds[i]},
				{Name: prodsynth.AttrMPN, Value: fmt.Sprintf("MPN%d", i)},
				{Name: prodsynth.AttrUPC, Value: fmt.Sprintf("%03d", i)},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Historical offers: "alpha" uses catalog names (training signal),
	// "beta" renames Speed to RPM and Brand to Make.
	var historical []prodsynth.Offer
	for i := 0; i < 5; i++ {
		historical = append(historical,
			prodsynth.Offer{
				ID: fmt.Sprintf("a%d", i), Merchant: "alpha", CategoryID: "hd",
				Spec: prodsynth.Spec{
					{Name: prodsynth.AttrUPC, Value: fmt.Sprintf("%03d", i)},
					{Name: "Brand", Value: brands[i]},
					{Name: "Speed", Value: speeds[i]},
					{Name: prodsynth.AttrMPN, Value: fmt.Sprintf("MPN%d", i)},
				},
			},
			prodsynth.Offer{
				ID: fmt.Sprintf("b%d", i), Merchant: "beta", CategoryID: "hd",
				Spec: prodsynth.Spec{
					{Name: prodsynth.AttrUPC, Value: fmt.Sprintf("%03d", i)},
					{Name: "Make", Value: brands[i]},
					{Name: "RPM", Value: speeds[i]},
					{Name: "Part Number", Value: fmt.Sprintf("MPN%d", i)},
				},
			})
	}

	ctx := context.Background()
	model, err := prodsynth.Learn(ctx, store, historical, nil)
	if err != nil {
		log.Fatal(err)
	}
	sys := prodsynth.NewSystem(store, model)

	// Two offers for a drive the catalog does not have.
	incoming := []prodsynth.Offer{
		{ID: "n1", Merchant: "alpha", CategoryID: "hd", Spec: prodsynth.Spec{
			{Name: "Brand", Value: "Toshiba"}, {Name: "Speed", Value: "7200"},
			{Name: prodsynth.AttrMPN, Value: "TOSH99"},
		}},
		{ID: "n2", Merchant: "beta", CategoryID: "hd", Spec: prodsynth.Spec{
			{Name: "Make", Value: "Toshiba"}, {Name: "RPM", Value: "7200"},
			{Name: "Part Number", Value: "TOSH-99"},
		}},
	}
	res, err := sys.SynthesizeContext(ctx, incoming, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Products {
		fmt.Printf("synthesized in %s from %d offers:\n", p.CategoryID, len(p.OfferIDs))
		for _, av := range p.Spec {
			fmt.Printf("  %s = %s\n", av.Name, av.Value)
		}
	}
	// Output:
	// synthesized in hd from 2 offers:
	//   Brand = Toshiba
	//   Model Part Number = TOSH-99
	//   Speed = 7200
}
