// Package cluster implements the Clustering component of the runtime
// pipeline (§4): reconciled offers are grouped by key attribute — UPC if
// present, else Model Part Number — so that each cluster corresponds to
// exactly one product instance.
//
// Because Schema Reconciliation has already translated merchant names like
// "MPN" and "Mfr. Part #" into the catalog's key attribute names, clustering
// reduces to grouping by the key value.
package cluster

import (
	"sort"
	"strings"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

// Cluster is one group of offers believed to describe a single product.
type Cluster struct {
	// Key is the normalized key attribute value shared by the offers.
	Key string
	// KeyAttr is the catalog attribute the key came from (UPC or MPN).
	KeyAttr string
	// CategoryID is the catalog category of the offers.
	CategoryID string
	// Offers are the member offers (reconciled specs).
	Offers []offer.Offer
}

// Options configures clustering.
type Options struct {
	// KeyAttrs are the catalog attributes used as clustering keys, in
	// priority order. Defaults to [UPC, Model Part Number] per §4.
	KeyAttrs []string
	// WithinCategory restricts clusters to a single category. By default
	// clusters form on key values alone and the cluster category is the
	// majority vote of its members — this absorbs category-classifier
	// errors on individual offers (the resilience §2 claims), since key
	// values like UPCs identify the product regardless of category.
	WithinCategory bool
}

// DefaultKeyAttrs returns keyAttrs, or the paper's §4 default key
// attribute priority (UPC, then Model Part Number) when it is empty.
func DefaultKeyAttrs(keyAttrs []string) []string {
	if len(keyAttrs) == 0 {
		return []string{catalog.AttrUPC, catalog.AttrMPN}
	}
	return keyAttrs
}

// OfferKeys returns the namespaced clustering keys of one reconciled
// offer: for each key attribute present with a non-empty normalized value,
// "attr \x00 value" (prefixed by the category when withinCategory). Offers
// sharing any key belong to the same cluster; an offer with no keys cannot
// be clustered. Group and the streaming cluster memory derive keys through
// this one function so batch and continuous clustering agree exactly.
func OfferKeys(o offer.Offer, keyAttrs []string, withinCategory bool) []string {
	var keys []string
	for _, ka := range DefaultKeyAttrs(keyAttrs) {
		if v, ok := o.Spec.Get(ka); ok {
			if norm := normalizeKey(v); norm != "" {
				k := ka + "\x00" + norm
				if withinCategory {
					k = o.CategoryID + "\x00" + k
				}
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// Assemble builds the Cluster for a member set already known to form one
// cluster (offers connected through shared keys): it computes the
// representative key, key attribute, and majority category exactly as
// Group does. The offers slice is retained, not copied.
func Assemble(offers []offer.Offer, keyAttrs []string) Cluster {
	keyAttrs = DefaultKeyAttrs(keyAttrs)
	key, keyAttr := clusterIdentity(offers, keyAttrs)
	return Cluster{
		Key:        key,
		KeyAttr:    keyAttr,
		CategoryID: majorityCategory(offers),
		Offers:     offers,
	}
}

// normalizeKey canonicalizes key values: trim, uppercase, drop spaces and
// dashes so "HDT 725050-VLA360" and "hdt725050vla360" cluster together.
func normalizeKey(v string) string {
	var b strings.Builder
	for _, r := range strings.ToUpper(strings.TrimSpace(v)) {
		switch r {
		case ' ', '-', '_', '.':
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Group clusters reconciled offers by key attributes. Offers sharing ANY
// key value (same attribute) end up in the same cluster — a union-find over
// keys, so that a product whose offers variously expose UPC, MPN, or both
// still forms a single cluster. Offers without any key attribute are
// returned in skipped. The cluster category is the majority vote of its
// member offers (unless WithinCategory keys clusters by category too).
func Group(offers []offer.Offer, opts Options) (clusters []Cluster, skipped []offer.Offer) {
	keyAttrs := DefaultKeyAttrs(opts.KeyAttrs)

	// Namespaced key: attr \x00 normalized value (plus the category when
	// WithinCategory), so UPC and MPN values never collide.
	uf := newUnionFind()
	offerKeys := make([][]string, len(offers))
	for i, o := range offers {
		keys := OfferKeys(o, keyAttrs, opts.WithinCategory)
		offerKeys[i] = keys
		for j := 1; j < len(keys); j++ {
			uf.union(keys[0], keys[j])
		}
	}

	byRoot := make(map[string]*Cluster)
	var order []string
	for i, o := range offers {
		if len(offerKeys[i]) == 0 {
			skipped = append(skipped, o)
			continue
		}
		root := uf.find(offerKeys[i][0])
		cl := byRoot[root]
		if cl == nil {
			cl = &Cluster{}
			byRoot[root] = cl
			order = append(order, root)
		}
		cl.Offers = append(cl.Offers, o)
	}

	clusters = make([]Cluster, len(order))
	for i, root := range order {
		clusters[i] = Assemble(byRoot[root].Offers, keyAttrs)
	}
	return clusters, skipped
}

// majorityCategory returns the most common CategoryID among offers, ties
// broken toward the lexicographically smallest for determinism.
func majorityCategory(offers []offer.Offer) string {
	counts := make(map[string]int)
	for _, o := range offers {
		counts[o.CategoryID]++
	}
	best, bestN := "", -1
	for cat, n := range counts {
		if n > bestN || (n == bestN && cat < best) {
			best, bestN = cat, n
		}
	}
	return best
}

// clusterIdentity picks the cluster's representative key: the
// lexicographically smallest normalized value of the highest-priority key
// attribute present in any member offer.
func clusterIdentity(offers []offer.Offer, keyAttrs []string) (key, keyAttr string) {
	for _, ka := range keyAttrs {
		best := ""
		for _, o := range offers {
			if v, ok := o.Spec.Get(ka); ok {
				if norm := normalizeKey(v); norm != "" && (best == "" || norm < best) {
					best = norm
				}
			}
		}
		if best != "" {
			return best, ka
		}
	}
	return "", ""
}

// unionFind is a string-keyed disjoint-set with path compression.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[string]string)}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// Stats summarizes a clustering result.
type Stats struct {
	Clusters      int
	Offers        int
	Skipped       int
	LargestSize   int
	SingletonSize int // number of single-offer clusters
}

// Summarize computes statistics over a clustering result.
func Summarize(clusters []Cluster, skipped []offer.Offer) Stats {
	st := Stats{Clusters: len(clusters), Skipped: len(skipped)}
	for _, c := range clusters {
		st.Offers += len(c.Offers)
		if len(c.Offers) > st.LargestSize {
			st.LargestSize = len(c.Offers)
		}
		if len(c.Offers) == 1 {
			st.SingletonSize++
		}
	}
	return st
}

// SortBySize orders clusters by descending member count (stable; ties by
// key) — convenient for reporting.
func SortBySize(clusters []Cluster) {
	sort.SliceStable(clusters, func(i, j int) bool {
		if len(clusters[i].Offers) != len(clusters[j].Offers) {
			return len(clusters[i].Offers) > len(clusters[j].Offers)
		}
		return clusters[i].Key < clusters[j].Key
	})
}
