package prodsynth

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// The tests here pin the context contract of the v2 entry points:
// cancelling mid-Learn and mid-Synthesize returns ctx.Err() promptly and
// leaks no worker-pool goroutines — the batch-side mirror of
// TestStreamCtxCancelNoLeak. The gateFetcher (stream_test.go) parks every
// page fetch until released, which is how the tests guarantee the
// cancellation lands while the pipeline's pools are mid-stage.

// TestLearnCtxCancelNoLeak cancels Learn while the historical offers'
// page fetches are in flight.
func TestLearnCtxCancelNoLeak(t *testing.T) {
	ds := marketplace(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := newGateFetcher(MapFetcher(ds.Pages))
	errc := make(chan error, 1)
	go func() {
		_, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, gate)
		errc <- err
	}()

	<-gate.inflight // extraction stage is mid-fetch
	cancel()
	close(gate.release) // let the parked workers drain
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Learn returned %v, want context.Canceled", err)
	}
	waitGoroutines(t, baseline)
}

// TestLearnCtxAlreadyCancelled pins the fast path: a dead context fails
// before any work starts.
func TestLearnCtxAlreadyCancelled(t *testing.T) {
	ds := marketplace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A fetcher that would fail the test if consulted.
	if _, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, fetchFail{t}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type fetchFail struct{ t *testing.T }

func (f fetchFail) Fetch(string) (string, error) {
	f.t.Error("Fetch called despite pre-cancelled context")
	return "", nil
}

// TestSynthesizeCtxCancelNoLeak cancels SynthesizeContext while the
// incoming offers' page fetches are in flight.
func TestSynthesizeCtxCancelNoLeak(t *testing.T) {
	ds, sys := learned(t, Config{})
	model := sys.Model()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := newGateFetcher(MapFetcher(ds.Pages))
	sys2 := NewSystem(ds.Catalog, model)
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := sys2.SynthesizeContext(ctx, ds.IncomingOffers, gate)
		done <- outcome{res, err}
	}()

	<-gate.inflight
	cancel()
	close(gate.release)
	got := <-done
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("SynthesizeContext returned %v, want context.Canceled", got.err)
	}
	if got.res != nil {
		t.Error("cancelled run returned a non-nil Result")
	}
	waitGoroutines(t, baseline)
}

// TestSynthesizeBatchesCtxCancel pins the batch loop's cancellation: a
// cancelled context aborts the run with ctx.Err() rather than recording
// the cancellation as a per-batch failure and marching on.
func TestSynthesizeBatchesCtxCancel(t *testing.T) {
	ds, sys := learned(t, Config{})
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := newGateFetcher(MapFetcher(ds.Pages))
	waves := contiguousWaves(ds.IncomingOffers, 4)
	type outcome struct {
		res *BatchResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := sys.SynthesizeBatchesContext(ctx, waves, gate)
		done <- outcome{res, err}
	}()

	<-gate.inflight // first batch is mid-extraction
	cancel()
	close(gate.release)
	got := <-done
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("SynthesizeBatchesContext returned %v, want context.Canceled", got.err)
	}
	if got.res != nil {
		t.Error("cancelled batch run returned a non-nil BatchResult")
	}
	waitGoroutines(t, baseline)
}
