package htmlx

import "strings"

// NodeType enumerates DOM node kinds.
type NodeType int

const (
	// ElementNode is an element with a tag name and children.
	ElementNode NodeType = iota
	// TextNode is character data.
	TextNode
)

// Node is a DOM tree node.
type Node struct {
	Type     NodeType
	Tag      string // element tag name (lower case), empty for text
	Text     string // text content for TextNode
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// Attr returns the value of the named attribute on an element node.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// voidElements never have children (HTML void elements).
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose maps a tag to the set of open tags it implicitly closes.
// This covers the common unclosed-markup patterns on merchant pages:
// successive <li>, <tr>, <td>, <th>, <option>, <p> without close tags.
var autoClose = map[string]map[string]bool{
	"li":     {"li": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"option": {"option": true},
	"p":      {"p": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
}

// Parse tokenizes the input and builds a DOM tree rooted at a synthetic
// element with Tag "#root". It is tolerant: stray end tags are dropped,
// unclosed elements are closed at EOF, and the auto-close rules above are
// applied.
func Parse(input string) *Node {
	root := &Node{Type: ElementNode, Tag: "#root"}
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }

	for _, tok := range Tokenize(input) {
		switch tok.Type {
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			cur := top()
			child := &Node{Type: TextNode, Text: tok.Data, Parent: cur}
			cur.Children = append(cur.Children, child)
		case CommentToken:
			// Dropped; comments carry no extraction signal.
		case StartTagToken, SelfClosingToken:
			if closes := autoClose[tok.Data]; closes != nil {
				for len(stack) > 1 && closes[top().Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			cur := top()
			el := &Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs, Parent: cur}
			cur.Children = append(cur.Children, el)
			if tok.Type == StartTagToken && !voidElements[tok.Data] {
				stack = append(stack, el)
			}
		case EndTagToken:
			// Find the matching open element; if found, pop to it.
			for j := len(stack) - 1; j >= 1; j-- {
				if stack[j].Tag == tok.Data {
					stack = stack[:j]
					break
				}
			}
		}
	}
	return root
}

// InnerText returns the concatenated text content of the subtree, with
// runs of whitespace collapsed to single spaces and the result trimmed.
// Script and style subtrees are skipped.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.appendText(&b)
	return collapseSpace(b.String())
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Type == TextNode {
		b.WriteString(n.Text)
		b.WriteByte(' ')
		return
	}
	if n.Tag == "script" || n.Tag == "style" {
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

func collapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' || r == '\u00a0' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

// Walk performs a pre-order traversal, calling fn for every node. If fn
// returns false the subtree below that node is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// FindAll returns all element nodes with the given tag, in document order.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(node *Node) bool {
		if node.Type == ElementNode && node.Tag == tag {
			out = append(out, node)
		}
		return true
	})
	return out
}

// ChildElements returns the element children with the given tag (any tag if
// tag is empty).
func (n *Node) ChildElements(tag string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Type == ElementNode && (tag == "" || c.Tag == tag) {
			out = append(out, c)
		}
	}
	return out
}
