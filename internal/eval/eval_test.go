package eval

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/fusion"
	"prodsynth/internal/offer"
	"prodsynth/internal/synth"
)

func scoredFixture() []correspond.Scored {
	key := offer.SchemaKey{Merchant: "m", CategoryID: "c"}
	mk := func(ap, ao string, score float64) correspond.Scored {
		return correspond.Scored{
			Candidate: correspond.Candidate{Key: key, CatalogAttr: ap, MerchantAttr: ao},
			Score:     score,
		}
	}
	return []correspond.Scored{
		mk("Speed", "RPM", 0.95),       // true
		mk("Brand", "Make", 0.90),      // true
		mk("Speed", "Speed", 0.88),     // identity (excluded by default)
		mk("Capacity", "RPM", 0.70),    // false
		mk("Interface", "Conn", 0.60),  // true
		mk("Capacity", "Junk", 0.40),   // false
		mk("Interface", "Avail", 0.20), // false
		mk("Speed", "Zero", 0),         // zero score: never counted
	}
}

func truthFixture() TruthFunc {
	truths := map[string]bool{
		"Speed/RPM": true, "Brand/Make": true, "Interface/Conn": true,
		"Speed/Speed": true,
	}
	return func(c correspond.Candidate) bool {
		return truths[c.CatalogAttr+"/"+c.MerchantAttr]
	}
}

func TestPrecisionAtCoverage(t *testing.T) {
	pts := PrecisionAtCoverage(scoredFixture(), truthFixture(), CurveOptions{
		ExcludeNameIdentity: true,
		Points:              6,
	})
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// First point: top-1 is Speed/RPM (true) -> precision 1.
	if pts[0].Coverage != 1 || pts[0].Precision != 1 {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	// Last point: 6 candidates, 3 true -> 0.5.
	last := pts[len(pts)-1]
	if last.Coverage != 6 || math.Abs(last.Precision-0.5) > 1e-9 {
		t.Errorf("last = %+v", last)
	}
	// Coverage must be nondecreasing, precision in [0,1].
	for i := 1; i < len(pts); i++ {
		if pts[i].Coverage < pts[i-1].Coverage {
			t.Error("coverage not monotone")
		}
		if pts[i].Precision < 0 || pts[i].Precision > 1 {
			t.Error("precision out of range")
		}
	}
}

func TestPrecisionAtCoverageIncludeIdentity(t *testing.T) {
	pts := PrecisionAtCoverage(scoredFixture(), truthFixture(), CurveOptions{Points: 7})
	last := pts[len(pts)-1]
	if last.Coverage != 7 {
		t.Errorf("identity not included: %+v", last)
	}
}

func TestPrecisionAtCoverageEmpty(t *testing.T) {
	if pts := PrecisionAtCoverage(nil, truthFixture(), CurveOptions{}); pts != nil {
		t.Errorf("pts = %v", pts)
	}
}

func TestCoverageAtPrecision(t *testing.T) {
	pts := []Point{
		{Coverage: 10, Precision: 0.95},
		{Coverage: 20, Precision: 0.90},
		{Coverage: 30, Precision: 0.70},
	}
	if got := CoverageAtPrecision(pts, 0.9); got != 20 {
		t.Errorf("got %d", got)
	}
	if got := CoverageAtPrecision(pts, 0.99); got != 0 {
		t.Errorf("got %d", got)
	}
}

func TestRelativeRecall(t *testing.T) {
	a := []Point{{Coverage: 20, Precision: 0.9}}
	b := []Point{{Coverage: 10, Precision: 0.9}}
	if got := RelativeRecall(a, b, 0.9); got != 2 {
		t.Errorf("got %g", got)
	}
	if got := RelativeRecall(a, []Point{{Coverage: 5, Precision: 0.5}}, 0.9); got != 0 {
		t.Errorf("unreachable precision should be 0, got %g", got)
	}
}

func TestWriteCurves(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCurves(&buf, []Series{{
		Name:   "Our approach",
		Points: []Point{{Theta: 0.5, Coverage: 100, Precision: 0.87}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Our approach") || !strings.Contains(out, "0.870") {
		t.Errorf("output = %q", out)
	}
}

func TestValueCorrect(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"500", "500", true},
		{"500 GB", "500", true}, // unit appended
		{"500", "500 GB", true},
		{"Microsoft Windows Vista", "Windows Vista", true},
		{"7200", "500", false},
		{"SATA 300", "IDE 133", false},
		{"", "", true},
		{"", "x", false},
		{"Seagate Barracuda 500", "Barracuda", true}, // brand-prefixed
	}
	for _, c := range cases {
		if got := ValueCorrect(c.a, c.b); got != c.want {
			t.Errorf("ValueCorrect(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCorrectSymmetric(t *testing.T) {
	pairs := [][2]string{{"500 GB", "500"}, {"a b", "b c"}, {"x", "x"}}
	for _, p := range pairs {
		if ValueCorrect(p[0], p[1]) != ValueCorrect(p[1], p[0]) {
			t.Errorf("asymmetric for %q / %q", p[0], p[1])
		}
	}
}

// pipelineRun runs the full pipeline on a small marketplace and returns
// everything grading needs.
func pipelineRun(t *testing.T) (*synth.Dataset, []fusion.Synthesized) {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Seed:                5,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 20,
		Merchants:           24,
	})
	fetcher := core.MapFetcher(ds.Pages)
	off, err := core.RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := core.RunRuntime(context.Background(), ds.Catalog, off, ds.IncomingOffers, fetcher, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ds, run.Products
}

func TestGradeSynthesisEndToEnd(t *testing.T) {
	ds, products := pipelineRun(t)
	rep := GradeSynthesis(products, ds.Truth, ds.Universe)
	if rep.Products == 0 || rep.AttributePairs == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if p := rep.AttributePrecision(); p < 0.8 {
		t.Errorf("attribute precision = %.3f, want >= 0.8 (paper: 0.92)", p)
	}
	if p := rep.ProductPrecision(); p < 0.5 {
		t.Errorf("product precision = %.3f", p)
	}
	if rep.ProductPrecision() > rep.AttributePrecision() {
		t.Error("strict product precision cannot exceed attribute precision")
	}
	if len(rep.Grades) != rep.Products {
		t.Errorf("grades = %d, products = %d", len(rep.Grades), rep.Products)
	}
}

func TestGradeByTopLevelTable3Shape(t *testing.T) {
	ds, products := pipelineRun(t)
	reports := GradeByTopLevel(products, ds.Truth, ds.Universe, ds.Catalog)
	if len(reports) != 4 {
		t.Fatalf("top-level reports = %d, want 4", len(reports))
	}
	byName := make(map[string]CategoryReport)
	for _, r := range reports {
		byName[r.TopLevel] = r
	}
	comp, okC := byName["Computing"]
	furn, okF := byName["Home Furnishings"]
	if !okC || !okF {
		t.Fatalf("missing domains: %v", byName)
	}
	// Table 3's structural effect: Computing products carry more
	// attributes than Furnishing products.
	if comp.AvgAttrsPerProduct() <= furn.AvgAttrsPerProduct() {
		t.Errorf("avg attrs: computing %.2f <= furnishing %.2f",
			comp.AvgAttrsPerProduct(), furn.AvgAttrsPerProduct())
	}
}

func TestGradeRecallTable4Shape(t *testing.T) {
	ds, products := pipelineRun(t)
	heavy, light := GradeRecall(products, ds.Truth, ds.Universe, 10)
	if heavy.Products == 0 || light.Products == 0 {
		t.Skipf("need both buckets: heavy=%d light=%d", heavy.Products, light.Products)
	}
	// Table 4's effect: more offers -> larger evidence pool.
	if heavy.AvgPoolSize <= light.AvgPoolSize {
		t.Errorf("pool: heavy %.1f <= light %.1f", heavy.AvgPoolSize, light.AvgPoolSize)
	}
	if heavy.AttributeRecall == 0 || light.AttributeRecall == 0 {
		t.Errorf("recall: heavy %.3f light %.3f", heavy.AttributeRecall, light.AttributeRecall)
	}
}

func TestGradeSynthesisUnresolvable(t *testing.T) {
	ds, _ := pipelineRun(t)
	fake := []fusion.Synthesized{{
		CategoryID: "computing/hard-drives",
		Key:        "NOSUCHKEY999",
		KeyAttr:    catalog.AttrMPN,
		Spec:       catalog.Spec{{Name: "Brand", Value: "X"}},
	}}
	rep := GradeSynthesis(fake, ds.Truth, ds.Universe)
	if rep.UnresolvedProducts != 1 || rep.CorrectPairs != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestMaxCoverageConsistentWithCurve(t *testing.T) {
	// The exact scan and the gridded curve must agree wherever the grid
	// has a point: curve precision at each point k equals the running
	// precision the scan uses.
	scored := scoredFixture()
	truth := truthFixture()
	opts := CurveOptions{ExcludeNameIdentity: true, Points: 10}
	pts := PrecisionAtCoverage(scored, truth, opts)
	for _, pt := range pts {
		exact := MaxCoverageAtPrecision(scored, truth, opts, pt.Precision)
		if exact < pt.Coverage {
			t.Errorf("MaxCoverage(%.3f) = %d < curve coverage %d", pt.Precision, exact, pt.Coverage)
		}
	}
	// And the exact scan at precision 1.0 finds the clean head prefix.
	if got := MaxCoverageAtPrecision(scored, truth, opts, 1.0); got != 2 {
		t.Errorf("MaxCoverage(1.0) = %d, want 2 (two true candidates lead)", got)
	}
}

func TestMaxCoverageAtPrecisionUnsortedInput(t *testing.T) {
	// The helper must not rely on the caller's ordering.
	scored := scoredFixture()
	reversed := make([]correspond.Scored, len(scored))
	for i, sc := range scored {
		reversed[len(scored)-1-i] = sc
	}
	opts := CurveOptions{ExcludeNameIdentity: true}
	a := MaxCoverageAtPrecision(scored, truthFixture(), opts, 0.8)
	b := MaxCoverageAtPrecision(reversed, truthFixture(), opts, 0.8)
	if a != b {
		t.Errorf("order dependence: %d vs %d", a, b)
	}
}
