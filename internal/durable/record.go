package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"prodsynth/internal/catalog"
	"prodsynth/internal/snapfmt"
)

// ErrBadRecord is wrapped by every log-record decode failure: bad
// framing, checksum mismatch, unknown record type, or a payload whose
// fields cannot be parsed.
var ErrBadRecord = errors.New("durable: invalid log record")

// Record type tags. The log is append-only; new record kinds get new
// tags, existing tags never change meaning.
const (
	recCategory = 1
	recProduct  = 2
)

// recordHeaderSize is the per-record framing: u32 payload length + u32
// CRC-32 (IEEE) over the payload, both little-endian.
const recordHeaderSize = 8

// maxRecordLen bounds the payload length replay accepts, so a corrupt
// length field cannot demand an absurd allocation. Far above any real
// record (one product or one category schema).
const maxRecordLen = 1 << 28

// frameRecord wraps a payload in the length+CRC record framing.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)
	return buf
}

// encodeCategory builds the payload of a category-registration record.
func encodeCategory(c catalog.Category) []byte {
	var p snapfmt.Writer
	p.U32(recCategory)
	p.Str(c.ID)
	p.Str(c.Name)
	p.Str(c.TopLevel)
	p.U32(uint32(len(c.Schema.Attributes)))
	for _, a := range c.Schema.Attributes {
		p.Str(a.Name)
		p.U32(uint32(a.Kind))
		p.Str(a.Unit)
	}
	return p.Bytes()
}

// encodeProduct builds the payload of a product-append record. version
// is the category version after the append and ownsKey whether the
// product claimed its UPC/MPN key — both recorded so replay reproduces
// the original store exactly (see catalog.ReplayRecord).
func encodeProduct(version uint64, ownsKey bool, pr catalog.Product) []byte {
	var p snapfmt.Writer
	p.U32(recProduct)
	p.Str(pr.CategoryID)
	p.U64(version)
	p.Bool(ownsKey)
	p.Str(pr.ID)
	p.U32(uint32(len(pr.Spec)))
	for _, av := range pr.Spec {
		p.Str(av.Name)
		p.Str(av.Value)
	}
	return p.Bytes()
}

// decodeRecord parses one record payload (already CRC-verified) into a
// replayable mutation. The log is an external input at replay time, so
// everything is bounds-checked; structural validity (schema conformance,
// version contiguity) is re-checked by catalog.Replay itself.
func decodeRecord(payload []byte) (catalog.ReplayRecord, error) {
	d := snapfmt.NewReader(payload, ErrBadRecord)
	tag := d.U32()
	if err := d.Err(); err != nil {
		return catalog.ReplayRecord{}, err
	}
	switch tag {
	case recCategory:
		var c catalog.Category
		c.ID = d.Str()
		c.Name = d.Str()
		c.TopLevel = d.Str()
		// Minimum attribute encoding: name len + kind + unit len.
		n := d.Count("schema attributes", 12)
		for i := 0; i < n && d.Err() == nil; i++ {
			var a catalog.Attribute
			a.Name = d.Str()
			kind := d.U32()
			if d.Err() == nil && kind > uint32(catalog.KindIdentifier) {
				d.Fail("attribute kind out of range: %d", kind)
			}
			a.Kind = catalog.AttributeKind(kind)
			a.Unit = d.Str()
			c.Schema.Attributes = append(c.Schema.Attributes, a)
		}
		if err := d.Finish(); err != nil {
			return catalog.ReplayRecord{}, err
		}
		return catalog.ReplayRecord{Category: &c}, nil
	case recProduct:
		var pr catalog.Product
		var rec catalog.ReplayRecord
		pr.CategoryID = d.Str()
		rec.Version = d.U64()
		rec.OwnsKey = d.Bool()
		pr.ID = d.Str()
		// Minimum spec-pair encoding: name len + value len.
		n := d.Count("spec pairs", 8)
		for i := 0; i < n && d.Err() == nil; i++ {
			var av catalog.AttributeValue
			av.Name = d.Str()
			av.Value = d.Str()
			pr.Spec = append(pr.Spec, av)
		}
		if err := d.Finish(); err != nil {
			return catalog.ReplayRecord{}, err
		}
		rec.Product = &pr
		return rec, nil
	default:
		return catalog.ReplayRecord{}, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, tag)
	}
}

// snapshotRecords flattens a catalog snapshot into the replay records
// that would have produced it: every category first, then each
// category's products in insertion order with version i+1 and ownership
// read off the snapshot's key table. Used to seed an empty durable store
// from a bundle (see Manager.ImportSnapshot).
func snapshotRecords(snap catalog.Snapshot) []catalog.ReplayRecord {
	owner := make(map[string]string, len(snap.Keys))
	for _, k := range snap.Keys {
		owner[k.Key] = k.ProductID
	}
	var recs []catalog.ReplayRecord
	for i := range snap.Categories {
		c := snap.Categories[i].Category
		recs = append(recs, catalog.ReplayRecord{Category: &c})
	}
	for ci := range snap.Categories {
		cs := &snap.Categories[ci]
		for pi := range cs.Products {
			p := cs.Products[pi]
			owns := false
			if key, ok := p.Key(); ok {
				owns = owner[key] == p.ID
			}
			recs = append(recs, catalog.ReplayRecord{
				Product: &p,
				Version: uint64(pi + 1),
				OwnsKey: owns,
			})
		}
	}
	return recs
}
