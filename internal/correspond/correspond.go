// Package correspond implements the Attribute Correspondence Creation
// component — the paper's main contribution (§3). It:
//
//  1. generates candidate tuples <Ap, Ao, M, C> pairing catalog attributes
//     with merchant offer attributes,
//  2. computes six distributional-similarity features per candidate
//     (Jensen-Shannon and Jaccard at merchant+category, category, and
//     merchant groupings — Table 1), restricted to historical
//     offer-to-product matches (§3.1),
//  3. constructs a training set automatically from name-identity candidates
//     (§3.2, no manual labels), and
//  4. trains a logistic regression classifier and scores every candidate.
//
// The scored output feeds the Schema Reconciliation component.
package correspond

import (
	"fmt"

	"prodsynth/internal/offer"
)

// Candidate is one <Ap, Ao, M, C> tuple: catalog attribute Ap may correspond
// to attribute Ao of merchant M in category C (Definition 1).
type Candidate struct {
	Key          offer.SchemaKey
	CatalogAttr  string // Ap
	MerchantAttr string // Ao
}

// NameIdentity reports whether the candidate uses the exact same name on
// both sides.
func (c Candidate) NameIdentity() bool { return c.CatalogAttr == c.MerchantAttr }

func (c Candidate) String() string {
	return fmt.Sprintf("<%s, %s, %s>", c.CatalogAttr, c.MerchantAttr, c.Key)
}

// FeatureNames lists the classifier features in vector order (paper Table 1).
var FeatureNames = []string{
	"JS-MC", "JS-C", "JS-M",
	"Jaccard-MC", "Jaccard-C", "Jaccard-M",
}

// NumFeatures is the feature vector dimension.
const NumFeatures = 6

// Scored is a candidate with its classifier score.
type Scored struct {
	Candidate
	// Score is the classifier probability (or raw measure for
	// single-feature baselines) that the candidate is a valid
	// correspondence. Higher is better.
	Score float64
}

// Set is the selected attribute correspondences, indexed for the Schema
// Reconciliation component: per (merchant, category), each merchant
// attribute maps to at most one catalog attribute.
type Set struct {
	byKey map[offer.SchemaKey]map[string]Scored
}

// NewSet builds an empty set.
func NewSet() *Set {
	return &Set{byKey: make(map[offer.SchemaKey]map[string]Scored)}
}

// Add inserts a scored correspondence, keeping the highest-scoring catalog
// attribute per merchant attribute (ties keep the first inserted).
func (s *Set) Add(sc Scored) {
	m := s.byKey[sc.Key]
	if m == nil {
		m = make(map[string]Scored)
		s.byKey[sc.Key] = m
	}
	if cur, ok := m[sc.MerchantAttr]; ok && cur.Score >= sc.Score {
		return
	}
	m[sc.MerchantAttr] = sc
}

// Lookup returns the catalog attribute for a merchant attribute, if any.
func (s *Set) Lookup(key offer.SchemaKey, merchantAttr string) (string, bool) {
	m := s.byKey[key]
	if m == nil {
		return "", false
	}
	sc, ok := m[merchantAttr]
	if !ok {
		return "", false
	}
	return sc.CatalogAttr, true
}

// Len returns the number of correspondences in the set.
func (s *Set) Len() int {
	n := 0
	for _, m := range s.byKey {
		n += len(m)
	}
	return n
}

// All returns every correspondence (unspecified order).
func (s *Set) All() []Scored {
	out := make([]Scored, 0, s.Len())
	for _, m := range s.byKey {
		for _, sc := range m {
			out = append(out, sc)
		}
	}
	return out
}

// Select builds a Set from scored candidates: candidates with score >=
// threshold are kept; additionally every name-identity candidate is kept
// regardless of score (§3.2 assumes identities are correspondences).
// Per merchant attribute, the highest-scoring catalog attribute wins.
func Select(scored []Scored, threshold float64) *Set {
	s := NewSet()
	for _, sc := range scored {
		if sc.Score >= threshold || sc.NameIdentity() {
			s.Add(sc)
		}
	}
	return s
}
