// Package synth generates a complete synthetic marketplace: a product
// taxonomy and catalog, a universe of products (some deliberately missing
// from the catalog), merchants with private attribute vocabularies and
// formatting quirks, offer feeds, and HTML landing pages — plus exact ground
// truth for every quantity the paper measures.
//
// This is the substitute for the proprietary Bing Shopping corpus (see
// DESIGN.md §2). The generator is fully deterministic given Config.Seed.
package synth

// Config controls the size and noise characteristics of the generated
// marketplace. Zero values are replaced by the defaults documented on each
// field; DefaultConfig returns the configuration used by unit tests, and
// ExperimentConfig the larger one used by the benchmark harness.
type Config struct {
	// Seed drives all randomness (default 1).
	Seed int64

	// CategoriesPerDomain caps leaf categories per top-level domain
	// (default 4; the vocabulary provides 8-12 per domain).
	CategoriesPerDomain int
	// ProductsPerCategory is the size of the product universe per leaf
	// category (default 40).
	ProductsPerCategory int
	// Merchants is the number of merchants (default 30). Each merchant
	// operates in one or two domains.
	Merchants int

	// FracMissing is the fraction of universe products withheld from the
	// catalog (default 0.5). Offers for withheld products form the
	// incoming stream the runtime pipeline synthesizes from; the rest are
	// historical offers used for offline learning.
	FracMissing float64

	// HeavyOfferFrac is the fraction of products that attract a large
	// (≥10) number of offers (default 0.15); the rest get 1-6. Drives the
	// Table 4 recall split.
	HeavyOfferFrac float64

	// PIdentity is the probability that a merchant adopts the catalog's
	// own name for an attribute (default 0.35). Name identities are what
	// the automatic training-set construction of §3.2 feeds on.
	PIdentity float64

	// PAttrPresent is the probability that a product attribute appears on
	// a given offer's landing page (default 0.85).
	PAttrPresent float64

	// PFeedUPC is the probability that an offer's feed row carries the
	// product UPC (default 0.7); these enable identifier-based historical
	// matches.
	PFeedUPC float64

	// PBulletPage is the probability a landing page renders its specs as
	// a bullet list instead of a table (default 0.1). The paper's table
	// extractor misses these, trading recall for simplicity (§4).
	PBulletPage float64

	// NoiseRowsMax is the maximum number of marketing noise rows
	// interleaved into each spec table (default 3).
	NoiseRowsMax int

	// PMissingCategory is the probability an offer's feed row omits the
	// category, exercising the title classifier (default 0.05).
	PMissingCategory float64

	// PValueError is the probability that a merchant page lists a wrong
	// value for an attribute — stale or mistyped data (default 0.05).
	// Identifier attributes (UPC, MPN) are never corrupted. Value errors
	// are what keep strict product precision below 1 for attribute-rich
	// categories (the paper's Table 3 effect) and what separate the
	// classifier from single-feature scorers (Figure 6): per-(merchant,
	// category) distributions are small and noisy, while the category-
	// and merchant-level aggregations average the noise out.
	PValueError float64

	// FracOrphanBrands is the fraction of each domain's brands carried by
	// NO merchant (default 0.3). Products of orphan brands enter the
	// catalog as "cold" products without offers — the paper's §3.1
	// motivating case (the catalog lists 10,000-rpm drives that no
	// merchant sells). Because brand correlates with value tiers, cold
	// products skew catalog-wide value distributions away from offer
	// distributions, which is precisely what the historical-match
	// restriction (Figure 7) corrects.
	FracOrphanBrands float64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CategoriesPerDomain <= 0 {
		c.CategoriesPerDomain = 4
	}
	if c.ProductsPerCategory <= 0 {
		c.ProductsPerCategory = 40
	}
	if c.Merchants <= 0 {
		c.Merchants = 30
	}
	if c.FracMissing <= 0 {
		c.FracMissing = 0.5
	}
	if c.HeavyOfferFrac <= 0 {
		c.HeavyOfferFrac = 0.15
	}
	if c.PIdentity <= 0 {
		c.PIdentity = 0.35
	}
	if c.PAttrPresent <= 0 {
		c.PAttrPresent = 0.85
	}
	if c.PFeedUPC <= 0 {
		c.PFeedUPC = 0.7
	}
	if c.PBulletPage < 0 {
		c.PBulletPage = 0
	} else if c.PBulletPage == 0 {
		c.PBulletPage = 0.1
	}
	if c.NoiseRowsMax <= 0 {
		c.NoiseRowsMax = 3
	}
	if c.PMissingCategory < 0 {
		c.PMissingCategory = 0
	} else if c.PMissingCategory == 0 {
		c.PMissingCategory = 0.05
	}
	if c.PValueError < 0 {
		c.PValueError = 0
	} else if c.PValueError == 0 {
		c.PValueError = 0.05
	}
	if c.FracOrphanBrands < 0 {
		c.FracOrphanBrands = 0
	} else if c.FracOrphanBrands == 0 {
		c.FracOrphanBrands = 0.3
	}
	return c
}

// DefaultConfig is the small marketplace used by unit and integration tests:
// ~16 categories, ~2.5k products, a few thousand offers.
func DefaultConfig() Config {
	return Config{}.withDefaults()
}

// ExperimentConfig is the laptop-scale marketplace used by the benchmark
// harness to regenerate the paper's tables and figures: every category in
// the vocabulary, a large product universe, tens of thousands of offers,
// and — like the paper's corpus — many merchants with few offers each, so
// that per-(merchant, category) evidence is sparse and the multi-grouping
// classifier has room to beat single-grouping features.
func ExperimentConfig() Config {
	return Config{
		CategoriesPerDomain: 12, // capped by vocabulary size per domain
		ProductsPerCategory: 120,
		Merchants:           260,
		PValueError:         0.08,
	}.withDefaults()
}
