package fetch

import (
	"context"
	"errors"
	"fmt"
	//lint:allow clockcheck deterministic: every rand.Rand here is seeded from the URL hash (FlakyFaults), so outcomes are a pure function of (URL, attempt)
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ErrInjected is wrapped by every fault the Faulty fetcher injects, so
// tests and experiment replays can tell scripted failures from real ones.
var ErrInjected = errors.New("fetch: injected fault")

// Outcome is one scripted attempt result: fail with Err (nil = succeed)
// after Latency elapses on the injected clock.
type Outcome struct {
	Err     error
	Latency time.Duration
}

// Schedule scripts a fault plan: the outcome of attempt number `attempt`
// (1-based) for `url`. Outcomes must be a pure function of (url, attempt)
// — never of call order across URLs — so synthesis output under the
// schedule is identical for every worker count and stage interleaving.
type Schedule interface {
	Outcome(url string, attempt int) Outcome
}

// ScheduleFunc adapts a function to the Schedule interface.
type ScheduleFunc func(url string, attempt int) Outcome

// Outcome implements Schedule.
func (f ScheduleFunc) Outcome(url string, attempt int) Outcome { return f(url, attempt) }

// FailFirst scripts the canonical recovery scenario: every URL fails its
// first n attempts (with an ErrInjected-wrapped error naming the URL and
// attempt) and succeeds from attempt n+1 on.
func FailFirst(n int) Schedule {
	return ScheduleFunc(func(url string, attempt int) Outcome {
		if attempt <= n {
			return Outcome{Err: fmt.Errorf("%w: %q attempt %d", ErrInjected, url, attempt)}
		}
		return Outcome{}
	})
}

// Flaky scripts seeded random faults: each (url, attempt) pair fails with
// probability p, decided by hashing the pair with the seed so the
// schedule is deterministic and order-independent. p is clamped to [0,1].
func Flaky(seed int64, p float64) Schedule {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return ScheduleFunc(func(url string, attempt int) Outcome {
		h := seed
		for _, c := range url {
			h = h*131 + int64(c)
		}
		h = h*131 + int64(attempt)
		r := rand.New(rand.NewSource(h))
		if r.Float64() < p {
			return Outcome{Err: fmt.Errorf("%w: %q attempt %d", ErrInjected, url, attempt)}
		}
		return Outcome{}
	})
}

// HostOutage scripts a hard outage of one host: every fetch for a URL on
// `host` fails on every attempt, all other URLs succeed. The scenario
// that trips the per-host circuit breaker without touching its neighbors.
func HostOutage(host string) Schedule {
	return ScheduleFunc(func(url string, attempt int) Outcome {
		if Host(url) == host {
			return Outcome{Err: fmt.Errorf("%w: host %q down: %q", ErrInjected, host, url)}
		}
		return Outcome{}
	})
}

// Faulty wraps an inner fetcher with a scripted fault schedule: attempt
// number k for a URL (counted per URL across the Faulty's lifetime)
// suffers Schedule.Outcome(url, k) — its latency is slept on the Clock,
// then its error is returned, or the fetch is delegated to the inner
// fetcher on a nil error. Deterministic by construction: outcomes depend
// only on (url, per-URL attempt number), never on cross-URL ordering.
//
// Faulty implements ContextPages (latency sleeps observe ctx) and legacy
// Pages, plus attempt accounting for asserting a schedule was exercised
// exactly as scripted.
type Faulty struct {
	inner    Pages
	schedule Schedule
	clock    Clock

	mu       sync.Mutex
	attempts map[string]int
}

// NewFaulty wraps inner with a fault schedule. A nil clock means faults
// with latency sleep on the wall clock; inject a FakeClock to run latency
// schedules instantly.
func NewFaulty(inner Pages, schedule Schedule, clock Clock) *Faulty {
	if clock == nil {
		clock = realClock{}
	}
	return &Faulty{inner: inner, schedule: schedule, clock: clock, attempts: make(map[string]int)}
}

// Fetch implements the legacy interface over a background context.
func (f *Faulty) Fetch(url string) (string, error) {
	//lint:allow ctxfirst legacy Fetcher-interface adapter: the context-free signature has no ctx to forward
	return f.FetchContext(context.Background(), url)
}

// FetchContext runs the URL's next scripted attempt.
func (f *Faulty) FetchContext(ctx context.Context, url string) (string, error) {
	f.mu.Lock()
	f.attempts[url]++
	n := f.attempts[url]
	f.mu.Unlock()
	out := f.schedule.Outcome(url, n)
	if out.Latency > 0 {
		if err := f.clock.Sleep(ctx, out.Latency); err != nil {
			return "", err
		}
	}
	if out.Err != nil {
		return "", out.Err
	}
	return Call(ctx, f.inner, url)
}

// Attempts returns how many attempts url has received.
func (f *Faulty) Attempts(url string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[url]
}

// TotalAttempts returns the attempt count summed over all URLs.
func (f *Faulty) TotalAttempts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, n := range f.attempts {
		total += n
	}
	return total
}

// Reset clears the per-URL attempt counters, so one Faulty can replay the
// same schedule across runs (e.g. the batch and stream sides of an
// equivalence test).
func (f *Faulty) Reset() {
	f.mu.Lock()
	f.attempts = make(map[string]int)
	f.mu.Unlock()
}

// AttemptedURLs returns the fetched URLs in sorted order — handy for
// asserting schedule coverage.
func (f *Faulty) AttemptedURLs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	urls := make([]string, 0, len(f.attempts))
	for u := range f.attempts {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}
