package coma

import (
	"fmt"
	"math"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
)

func fixture(t *testing.T) (*catalog.Store, *offer.Set) {
	t.Helper()
	st := catalog.NewStore()
	err := st.AddCategory(catalog.Category{
		ID: "hd",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Speed"}, {Name: "Interface"}, {Name: "Memory Technology"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	speeds := []string{"5400", "7200", "10000"}
	ifaces := []string{"SATA", "IDE", "SCSI"}
	for i := 0; i < 12; i++ {
		err := st.AddProduct(catalog.Product{ID: fmt.Sprintf("p%d", i), CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Speed", Value: speeds[i%3]},
			{Name: "Interface", Value: ifaces[i%3]},
			{Name: "Memory Technology", Value: "DDR2"},
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	var offs []offer.Offer
	for i := 0; i < 8; i++ {
		offs = append(offs, offer.Offer{ID: fmt.Sprintf("o%d", i), Merchant: "shop", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Interface Type", Value: ifaces[i%3]},
			{Name: "RPM", Value: speeds[i%3]},
			{Name: "Graphic Technology", Value: "GDDR3"},
		}})
	}
	return st, offer.NewSet(offs)
}

func get(t *testing.T, scored []correspond.Scored, ap, ao string) float64 {
	t.Helper()
	for _, sc := range scored {
		if sc.CatalogAttr == ap && sc.MerchantAttr == ao {
			return sc.Score
		}
	}
	t.Fatalf("candidate <%s,%s> missing", ap, ao)
	return 0
}

func TestNameBasedMatcher(t *testing.T) {
	st, offers := fixture(t)
	scored := Matcher{Mode: NameBased, Delta: math.Inf(1)}.Score(st, offers, match.NewMatchSet(nil))
	// "Interface" vs "Interface Type": high name similarity.
	good := get(t, scored, "Interface", "Interface Type")
	if good < 0.5 {
		t.Errorf("Interface/Interface Type = %.3f, want high", good)
	}
	// The §5.2 false-positive: "Memory Technology" vs "Graphic Technology"
	// scores well on names despite being a wrong match.
	trap := get(t, scored, "Memory Technology", "Graphic Technology")
	if trap < 0.4 {
		t.Errorf("name trap = %.3f, expected mid-high (this is COMA's weakness)", trap)
	}
	// Name matcher is blind to value-aligned but renamed attributes.
	renamed := get(t, scored, "Speed", "RPM")
	if renamed > good {
		t.Errorf("Speed/RPM name score %.3f should not beat Interface/Interface Type %.3f", renamed, good)
	}
}

func TestInstanceBasedMatcher(t *testing.T) {
	st, offers := fixture(t)
	scored := Matcher{Mode: InstanceBased, Delta: math.Inf(1)}.Score(st, offers, match.NewMatchSet(nil))
	// Value overlap finds Speed/RPM and Interface/Interface Type.
	if get(t, scored, "Speed", "RPM") < 0.5 {
		t.Errorf("Speed/RPM instance = %.3f", get(t, scored, "Speed", "RPM"))
	}
	if get(t, scored, "Interface", "Interface Type") < 0.5 {
		t.Errorf("Interface/Interface Type instance = %.3f", get(t, scored, "Interface", "Interface Type"))
	}
	// Disjoint values: DDR2 vs GDDR3 tokens differ.
	if got := get(t, scored, "Memory Technology", "Graphic Technology"); got > 0.3 {
		t.Errorf("instance trap = %.3f, want low", got)
	}
}

func TestCombinedMatcher(t *testing.T) {
	st, offers := fixture(t)
	name := Matcher{Mode: NameBased, Delta: math.Inf(1)}.Score(st, offers, match.NewMatchSet(nil))
	inst := Matcher{Mode: InstanceBased, Delta: math.Inf(1)}.Score(st, offers, match.NewMatchSet(nil))
	comb := Matcher{Mode: Combined, Delta: math.Inf(1)}.Score(st, offers, match.NewMatchSet(nil))
	// Combined = average of the two for every candidate.
	n := get(t, name, "Speed", "RPM")
	i := get(t, inst, "Speed", "RPM")
	c := get(t, comb, "Speed", "RPM")
	if math.Abs(c-(n+i)/2) > 1e-9 {
		t.Errorf("combined %.4f != avg(%.4f, %.4f)", c, n, i)
	}
}

func TestApplyDelta(t *testing.T) {
	key := offer.SchemaKey{Merchant: "m", CategoryID: "c"}
	mk := func(ap string, score float64) correspond.Scored {
		return correspond.Scored{
			Candidate: correspond.Candidate{Key: key, CatalogAttr: ap, MerchantAttr: "x"},
			Score:     score,
		}
	}
	s := []correspond.Scored{mk("A", 0.9), mk("B", 0.895), mk("C", 0.5)}
	ApplyDelta(s, 0.01)
	if s[0].Score != 0.9 || s[1].Score != 0.895 {
		t.Errorf("within-delta candidates pruned: %+v", s)
	}
	if s[2].Score != 0 {
		t.Errorf("below-delta candidate kept: %+v", s[2])
	}
}

func TestDeltaDefaultTightensSelection(t *testing.T) {
	st, offers := fixture(t)
	pruned := Matcher{Mode: Combined}.Score(st, offers, match.NewMatchSet(nil)) // delta = 0.01
	open := Matcher{Mode: Combined, Delta: math.Inf(1)}.Score(st, offers, match.NewMatchSet(nil))
	nPos := func(s []correspond.Scored) int {
		n := 0
		for _, sc := range s {
			if sc.Score > 0 {
				n++
			}
		}
		return n
	}
	if nPos(pruned) >= nPos(open) {
		t.Errorf("delta=0.01 positives %d should be < delta=inf positives %d", nPos(pruned), nPos(open))
	}
}

func TestModeString(t *testing.T) {
	if NameBased.String() != "Name-based COMA++" ||
		InstanceBased.String() != "Instance-based COMA++" ||
		Combined.String() != "Combined COMA++" {
		t.Error("mode strings wrong")
	}
	if Mode(99).String() != "COMA++" {
		t.Error("unknown mode string")
	}
}
