package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

// Dataset is a fully generated marketplace.
type Dataset struct {
	Config Config

	// Catalog holds every category plus the products NOT withheld
	// (the "existing catalog" the PSE already has).
	Catalog *catalog.Store

	// Categories lists all generated categories (also present in Catalog).
	Categories []catalog.Category

	// Universe maps product ID to the full true product instance,
	// including the products withheld from the catalog.
	Universe map[string]catalog.Product

	// HistoricalOffers are offers for catalog products (offline learning
	// input). Their Spec contains only feed fields (possibly a UPC);
	// the rest must be extracted from Pages.
	HistoricalOffers []offer.Offer

	// IncomingOffers are offers for withheld products (runtime input).
	IncomingOffers []offer.Offer

	// Pages maps offer URL to the landing page HTML.
	Pages map[string]string

	// Truth is the exact ground truth for evaluation.
	Truth *Truth
}

// Truth records everything the paper had to hand-label.
type Truth struct {
	// Correspondences maps (merchant, category) to the true mapping from
	// merchant attribute name to catalog attribute name — only for
	// attributes the merchant actually used in that category.
	Correspondences map[offer.SchemaKey]map[string]string

	// OfferProduct maps offer ID to the universe product it describes.
	OfferProduct map[string]string

	// Missing marks universe products withheld from the catalog.
	Missing map[string]bool

	// PageAttrs maps offer ID to the catalog-vocabulary attribute names
	// actually rendered on its landing page (spec attributes only, no
	// noise). This is the recall denominator of Table 4.
	PageAttrs map[string][]string

	// ProductByKey maps an MPN or UPC value to the universe product ID,
	// used to resolve synthesized clusters to their true product.
	ProductByKey map[string]string
}

// IsCorrespondence reports whether merchant attribute ao maps to catalog
// attribute ap for the given (merchant, category).
func (t *Truth) IsCorrespondence(k offer.SchemaKey, ap, ao string) bool {
	m := t.Correspondences[k]
	if m == nil {
		return false
	}
	return m[ao] == ap
}

// merchant is one generated merchant with its private vocabulary and quirks.
type merchant struct {
	name    string
	domains map[string]bool
	// attrName maps a catalog attribute name to this merchant's name for
	// it (chosen once, used across all categories — merchants are
	// internally consistent, the assumption behind the paper's
	// group-by-merchant feature).
	attrName map[string]string
	// unitStyle: 0 = never append units, 1 = always, 2 = per-offer coin.
	unitStyle int
	// brandInModel prefixes the brand into model values.
	brandInModel bool
	// bulletPages renders this merchant's pages as bullet lists.
	bulletPages bool
	// generalist merchants carry every brand; specialists carry only the
	// brands in their affinity set. Assortment bias is the paper's §3.1
	// motivation for restricting value distributions to matched
	// instances ("SonyStyle.com only provides Sony MP3 players").
	generalist bool
	brands     map[string]bool
}

// carries reports whether the merchant stocks the given brand.
func (m *merchant) carries(brand string) bool {
	return m.generalist || m.brands[brand]
}

// categoryInfo carries the generated schema plus its attribute templates.
type categoryInfo struct {
	cat       catalog.Category
	templates map[string]attrTemplate // by catalog attribute name
	domain    *domainTemplate
	noun      string // singular-ish noun for titles ("Hard Drive")
}

// Generate builds the marketplace.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	ds := &Dataset{
		Config:   cfg,
		Catalog:  catalog.NewStore(),
		Universe: make(map[string]catalog.Product),
		Pages:    make(map[string]string),
		Truth: &Truth{
			Correspondences: make(map[offer.SchemaKey]map[string]string),
			OfferProduct:    make(map[string]string),
			Missing:         make(map[string]bool),
			PageAttrs:       make(map[string][]string),
			ProductByKey:    make(map[string]string),
		},
	}

	orphans := pickOrphanBrands(cfg, rng)
	cats := buildCategories(cfg, rng, ds)
	merchants := buildMerchants(cfg, rng, orphans)
	buildProductsAndOffers(cfg, rng, ds, cats, merchants, orphans)
	return ds
}

// pickOrphanBrands selects, per domain, the brands no merchant carries.
func pickOrphanBrands(cfg Config, rng *rand.Rand) map[string]bool {
	orphans := make(map[string]bool)
	for d := range domains {
		dom := &domains[d]
		k := int(float64(len(dom.brands)) * cfg.FracOrphanBrands)
		for _, idx := range pickIndexes(rng, len(dom.brands), k) {
			orphans[dom.brands[idx]] = true
		}
	}
	return orphans
}

// buildCategories instantiates category schemas from the domain templates.
func buildCategories(cfg Config, rng *rand.Rand, ds *Dataset) []*categoryInfo {
	var infos []*categoryInfo
	for d := range domains {
		dom := &domains[d]
		n := cfg.CategoriesPerDomain
		if n > len(dom.categories) {
			n = len(dom.categories)
		}
		for _, base := range dom.categories[:n] {
			id := categoryID(dom.name, base)
			info := &categoryInfo{
				domain:    dom,
				noun:      strings.TrimSuffix(base, "s"),
				templates: make(map[string]attrTemplate),
			}
			schema := catalog.Schema{}
			addAttr := func(t attrTemplate) {
				schema.Attributes = append(schema.Attributes, t.attr)
				info.templates[t.attr.Name] = t
			}
			// Universal attributes: Brand, Model, then the keys.
			addAttr(attrTemplate{
				attr:     catalog.Attribute{Name: "Brand", Kind: catalog.KindCategorical},
				synonyms: brandSynonyms[1:],
				values:   dom.brands,
			})
			addAttr(attrTemplate{
				attr:     catalog.Attribute{Name: "Model", Kind: catalog.KindText},
				synonyms: []string{"Model Name", "Product Model", "Product Line"},
			})
			for _, kt := range keyTemplates {
				addAttr(kt)
			}
			// Domain attributes: a random subset of size in
			// [minAttrs, maxAttrs], in template order for determinism.
			k := dom.minAttrs + rng.Intn(dom.maxAttrs-dom.minAttrs+1)
			if k > len(dom.attrs) {
				k = len(dom.attrs)
			}
			for _, idx := range pickIndexes(rng, len(dom.attrs), k) {
				addAttr(dom.attrs[idx])
			}
			info.cat = catalog.Category{
				ID:       id,
				Name:     base,
				TopLevel: dom.name,
				Schema:   schema,
			}
			if err := ds.Catalog.AddCategory(info.cat); err != nil {
				panic(fmt.Sprintf("synth: %v", err)) // IDs are unique by construction
			}
			ds.Categories = append(ds.Categories, info.cat)
			infos = append(infos, info)
		}
	}
	return infos
}

func categoryID(domain, base string) string {
	slug := func(s string) string {
		s = strings.ToLower(s)
		s = strings.ReplaceAll(s, "&", "and")
		return strings.Join(strings.Fields(s), "-")
	}
	return slug(domain) + "/" + slug(base)
}

func buildMerchants(cfg Config, rng *rand.Rand, orphans map[string]bool) []*merchant {
	out := make([]*merchant, cfg.Merchants)
	for i := range out {
		base := merchantNamePool[i%len(merchantNamePool)]
		name := base
		if i >= len(merchantNamePool) {
			name = fmt.Sprintf("%s%d", base, i/len(merchantNamePool))
		}
		m := &merchant{
			name:         name,
			domains:      make(map[string]bool),
			attrName:     make(map[string]string),
			unitStyle:    rng.Intn(3),
			brandInModel: rng.Float64() < 0.3,
			bulletPages:  rng.Float64() < cfg.PBulletPage,
			generalist:   rng.Float64() < 0.3,
			brands:       make(map[string]bool),
		}
		// One or two domains per merchant.
		first := rng.Intn(len(domains))
		m.domains[domains[first].name] = true
		if rng.Float64() < 0.4 {
			m.domains[domains[rng.Intn(len(domains))].name] = true
		}
		// Specialists stock 1-3 carried (non-orphan) brands per domain
		// they operate in.
		if !m.generalist {
			for d := range domains {
				dom := &domains[d]
				if !m.domains[dom.name] {
					continue
				}
				var carried []string
				for _, b := range dom.brands {
					if !orphans[b] {
						carried = append(carried, b)
					}
				}
				if len(carried) == 0 {
					continue
				}
				k := 1 + rng.Intn(3)
				for _, idx := range pickIndexes(rng, len(carried), k) {
					m.brands[carried[idx]] = true
				}
			}
		}
		out[i] = m
	}
	return out
}

// nameFor returns (and fixes, on first use) the merchant's name for a
// catalog attribute.
func (m *merchant) nameFor(rng *rand.Rand, t attrTemplate, pIdentity float64) string {
	if n, ok := m.attrName[t.attr.Name]; ok {
		return n
	}
	name := t.attr.Name
	if len(t.synonyms) > 0 && rng.Float64() >= pIdentity {
		name = t.synonyms[rng.Intn(len(t.synonyms))]
	}
	m.attrName[t.attr.Name] = name
	return name
}

var modelSyllables = []string{
	"bar", "rac", "des", "tor", "cud", "rap", "max", "ultra", "pro",
	"neo", "zen", "flex", "core", "star", "nova", "apex", "volt", "aero",
}

func modelName(rng *rand.Rand) string {
	a := modelSyllables[rng.Intn(len(modelSyllables))]
	b := modelSyllables[rng.Intn(len(modelSyllables))]
	return strings.Title(a+b) + " " + fmt.Sprintf("%d", 100+rng.Intn(900)) //nolint:staticcheck // ASCII-only input
}

// valueFor draws the true catalog value for one attribute of one product.
func valueFor(rng *rand.Rand, t attrTemplate, brand string, serial int) string {
	switch t.attr.Kind {
	case catalog.KindIdentifier:
		if t.attr.Name == catalog.AttrUPC {
			return fmt.Sprintf("%012d", rng.Int63n(1e12))
		}
		prefix := strings.ToUpper(strings.ReplaceAll(brand, " ", ""))
		if len(prefix) > 3 {
			prefix = prefix[:3]
		}
		return fmt.Sprintf("%s%d%04d", prefix, serial, rng.Intn(10000))
	case catalog.KindNumeric:
		if len(t.numericChoices) > 0 {
			return t.numericChoices[tieredIndex(rng, brand, t.attr.Name, len(t.numericChoices))]
		}
		return fmt.Sprintf("%d", 1+rng.Intn(1000))
	case catalog.KindText:
		if t.attr.Name == "Model" {
			return modelName(rng)
		}
		n := 2 + rng.Intn(3)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = t.textPool[rng.Intn(len(t.textPool))]
		}
		return strings.Join(toks, " ")
	default: // categorical
		pool := t.values
		if len(pool) == 0 {
			pool = []string{"Standard"}
		}
		return pool[tieredIndex(rng, brand, t.attr.Name, len(pool))]
	}
}

// tieredIndex draws a value index biased toward the brand's "tier" for the
// attribute: each brand occupies a stable segment of the value range, with
// ±1 jitter. This correlates brand with the other attribute values, so a
// brand-specialist merchant's assortment has skewed value distributions for
// EVERY attribute — the phenomenon that makes unrestricted distributional
// matching unreliable (paper §3.1) and historical-match restriction
// valuable.
func tieredIndex(rng *rand.Rand, brand, attrName string, n int) int {
	if n <= 1 {
		return 0
	}
	tier := int(fnv32(brand+"\x00"+attrName) % uint32(n))
	idx := tier + rng.Intn(3) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// fnv32 is the FNV-1a hash, inlined to keep value generation allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func buildProductsAndOffers(cfg Config, rng *rand.Rand, ds *Dataset, cats []*categoryInfo, merchants []*merchant, orphans map[string]bool) {
	offerSerial := 0
	productSerial := 0

	for _, info := range cats {
		// Merchants active in this category's domain.
		var active []*merchant
		for _, m := range merchants {
			if m.domains[info.domain.name] {
				active = append(active, m)
			}
		}
		if len(active) == 0 {
			active = merchants[:1]
		}

		for pi := 0; pi < cfg.ProductsPerCategory; pi++ {
			productSerial++
			pid := fmt.Sprintf("prod-%05d", productSerial)
			brand := info.domain.brands[skewed(rng, len(info.domain.brands))]

			spec := catalog.Spec{}
			for _, a := range info.cat.Schema.Attributes {
				t := info.templates[a.Name]
				v := brand
				if a.Name != "Brand" {
					v = valueFor(rng, t, brand, productSerial)
				}
				spec = append(spec, catalog.AttributeValue{Name: a.Name, Value: v})
			}
			prod := catalog.Product{ID: pid, CategoryID: info.cat.ID, Spec: spec}
			ds.Universe[pid] = prod
			if mpn, ok := spec.Get(catalog.AttrMPN); ok {
				ds.Truth.ProductByKey[mpn] = pid
			}
			if upc, ok := spec.Get(catalog.AttrUPC); ok {
				ds.Truth.ProductByKey[upc] = pid
			}

			// Orphan-brand products are cold: always in the catalog,
			// never offered by any merchant (§3.1's unmatched products).
			if orphans[brand] {
				if err := ds.Catalog.AddProduct(prod); err != nil {
					panic(fmt.Sprintf("synth: %v", err))
				}
				continue
			}

			missing := rng.Float64() < cfg.FracMissing
			if missing {
				ds.Truth.Missing[pid] = true
			} else if err := ds.Catalog.AddProduct(prod); err != nil {
				panic(fmt.Sprintf("synth: %v", err))
			}

			// Offers: pick the merchant set for this product among
			// merchants that actually carry the brand.
			var eligible []*merchant
			for _, m := range active {
				if m.carries(brand) {
					eligible = append(eligible, m)
				}
			}
			if len(eligible) == 0 {
				eligible = active[:1]
			}
			nOffers := 1 + rng.Intn(6)
			if rng.Float64() < cfg.HeavyOfferFrac {
				nOffers = 10 + rng.Intn(10)
			}
			if nOffers > len(eligible) {
				nOffers = len(eligible)
			}
			for _, mi := range pickIndexes(rng, len(eligible), nOffers) {
				m := eligible[mi]
				offerSerial++
				o := makeOffer(cfg, rng, ds, info, m, prod, offerSerial)
				if missing {
					ds.IncomingOffers = append(ds.IncomingOffers, o)
				} else {
					ds.HistoricalOffers = append(ds.HistoricalOffers, o)
				}
			}
		}
	}
}

// makeOffer creates one offer plus its landing page and ground truth rows.
func makeOffer(cfg Config, rng *rand.Rand, ds *Dataset, info *categoryInfo, m *merchant, prod catalog.Product, serial int) offer.Offer {
	oid := fmt.Sprintf("offer-%06d", serial)
	url := fmt.Sprintf("http://%s.example.com/item/%s", m.name, oid)

	// The merchant-side rendering of the product spec.
	type renderedPair struct {
		catalogName  string
		merchantName string
		value        string
	}
	var pairs []renderedPair
	key := offer.SchemaKey{Merchant: m.name, CategoryID: info.cat.ID}
	for _, av := range prod.Spec {
		if rng.Float64() >= cfg.PAttrPresent {
			continue
		}
		t := info.templates[av.Name]
		mName := m.nameFor(rng, t, cfg.PIdentity)
		trueValue := av.Value
		// Merchant data errors: wrong value listed for a real attribute.
		// Keys are exempt so cluster identity stays evaluable.
		if t.attr.Kind != catalog.KindIdentifier && rng.Float64() < cfg.PValueError {
			brand, _ := prod.Spec.Get("Brand")
			trueValue = valueFor(rng, t, brand, serial)
		}
		pairs = append(pairs, renderedPair{
			catalogName:  av.Name,
			merchantName: mName,
			value:        m.formatValue(rng, t, trueValue, prod),
		})
		// Record ground truth correspondence.
		c := ds.Truth.Correspondences[key]
		if c == nil {
			c = make(map[string]string)
			ds.Truth.Correspondences[key] = c
		}
		c[mName] = av.Name
	}

	// Title: brand + model + one or two salient values + category noun.
	brand, _ := prod.Spec.Get("Brand")
	model, _ := prod.Spec.Get("Model")
	titleParts := []string{brand, model}
	for _, av := range prod.Spec {
		t := info.templates[av.Name]
		if t.attr.Kind == catalog.KindNumeric && len(titleParts) < 4 {
			titleParts = append(titleParts, av.Value+t.attr.Unit)
		}
	}
	titleParts = append(titleParts, info.noun)
	title := strings.Join(titleParts, " ")

	// Feed spec: possibly the UPC.
	var feedSpec catalog.Spec
	if rng.Float64() < cfg.PFeedUPC {
		if upc, ok := prod.Spec.Get(catalog.AttrUPC); ok {
			feedSpec = append(feedSpec, catalog.AttributeValue{Name: catalog.AttrUPC, Value: upc})
		}
	}

	categoryID := info.cat.ID
	if rng.Float64() < cfg.PMissingCategory {
		categoryID = ""
	}

	price := info.domain.priceLo + rng.Int63n(info.domain.priceHi-info.domain.priceLo+1)

	o := offer.Offer{
		ID:         oid,
		Merchant:   m.name,
		CategoryID: categoryID,
		Title:      title,
		PriceCents: price,
		URL:        url,
		Spec:       feedSpec,
	}

	// Landing page: merchant-name/value pairs plus noise rows.
	var pageAttrs []string
	var pagePairs []catalog.AttributeValue
	for _, p := range pairs {
		pagePairs = append(pagePairs, catalog.AttributeValue{Name: p.merchantName, Value: p.value})
		pageAttrs = append(pageAttrs, p.catalogName)
	}
	nNoise := rng.Intn(cfg.NoiseRowsMax + 1)
	for _, idx := range pickIndexes(rng, len(noisePool), nNoise) {
		np := noisePool[idx]
		pagePairs = append(pagePairs, catalog.AttributeValue{
			Name:  np.name,
			Value: np.values[rng.Intn(len(np.values))],
		})
	}
	ds.Pages[url] = renderPage(rng, m, title, price, pagePairs)
	ds.Truth.PageAttrs[oid] = pageAttrs
	ds.Truth.OfferProduct[oid] = prod.ID
	return o
}

// formatValue applies the merchant's formatting quirks to a true value.
func (m *merchant) formatValue(rng *rand.Rand, t attrTemplate, v string, prod catalog.Product) string {
	switch t.attr.Kind {
	case catalog.KindNumeric:
		if t.attr.Unit == "" {
			return v
		}
		switch m.unitStyle {
		case 1:
			return v + " " + t.attr.Unit
		case 2:
			if rng.Float64() < 0.5 {
				return v + t.attr.Unit
			}
		}
		return v
	case catalog.KindText:
		if t.attr.Name == "Model" && m.brandInModel {
			if brand, ok := prod.Spec.Get("Brand"); ok {
				return brand + " " + v
			}
		}
		return v
	default:
		return v
	}
}

// skewed returns an index in [0,n) biased toward 0 (min of two uniforms).
func skewed(rng *rand.Rand, n int) int {
	i, j := rng.Intn(n), rng.Intn(n)
	if j < i {
		return j
	}
	return i
}

// pickIndexes returns k distinct indexes from [0,n) in ascending order.
func pickIndexes(rng *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// AllOffers returns historical then incoming offers as one slice.
func (ds *Dataset) AllOffers() []offer.Offer {
	out := make([]offer.Offer, 0, len(ds.HistoricalOffers)+len(ds.IncomingOffers))
	out = append(out, ds.HistoricalOffers...)
	out = append(out, ds.IncomingOffers...)
	return out
}
