package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// spawnExemptPackages may use raw go statements freely: internal/pipe is
// the pipeline runtime whose whole job is goroutine lifecycle (its stages
// are leak-tested as a unit), and cmd/ and examples/ binaries tie
// goroutines to process lifetime.
func spawnExempt(path string) bool {
	return path == "prodsynth/internal/pipe" ||
		strings.HasPrefix(path, "prodsynth/cmd/") ||
		strings.HasPrefix(path, "prodsynth/examples/")
}

// SpawnCheck enforces the leak-guard discipline on goroutines: a raw go
// statement in a library package must have a join visible in the
// enclosing function — a WaitGroup/errgroup-style Wait(), or a result
// channel the goroutine sends on and the function receives from. Detached
// pipeline goroutines whose lifecycle is a closed channel plus a
// leak-guarded test carry lint:allow annotations naming that contract.
var SpawnCheck = &Analyzer{
	Name: "spawncheck",
	Doc:  "raw go statements must sync via a join visible in the enclosing function",
	Run:  runSpawnCheck,
}

func runSpawnCheck(pass *Pass) {
	if spawnExempt(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if f.Test {
			continue
		}
		for _, decl := range f.Ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpawns(pass, fd)
		}
	}
}

func checkSpawns(pass *Pass, fd *ast.FuncDecl) {
	var spawns []*ast.GoStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			spawns = append(spawns, g)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}
	// A Wait() anywhere in the function joins its pool — the WaitGroup /
	// errgroup shape used by every fan-out in the repo.
	hasWait := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				hasWait = true
				return false
			}
		}
		return true
	})
	if hasWait {
		return
	}
	recvs := receivedChannels(fd, spawns)
	for _, g := range spawns {
		if joinedByChannel(g, recvs) {
			continue
		}
		pass.Reportf(g.Pos(),
			"raw go statement in %s with no visible join: add a WaitGroup/errgroup Wait or a result-channel receive, or lint:allow with the lifecycle contract", fd.Name.Name)
	}
}

// receivedChannels collects the identifier names the enclosing function
// receives from (<-ch, including select comm clauses and range-over
// channel candidates), outside the spawned goroutine bodies themselves.
func receivedChannels(fd *ast.FuncDecl, spawns []*ast.GoStmt) map[string]bool {
	inSpawn := func(pos token.Pos) bool {
		for _, g := range spawns {
			if pos >= g.Pos() && pos <= g.End() {
				return true
			}
		}
		return false
	}
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ue, ok := n.(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW || inSpawn(ue.Pos()) {
			return true
		}
		if id, ok := ue.X.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// joinedByChannel reports whether the goroutine's body sends on a channel
// the enclosing function receives from — the drained-result-channel join.
func joinedByChannel(g *ast.GoStmt, recvs map[string]bool) bool {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if id, ok := send.Chan.(*ast.Ident); ok && recvs[id.Name] {
			joined = true
			return false
		}
		return true
	})
	return joined
}
