package prodsynth

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// catalogBytes renders a catalog in the canonical snapshot encoding, the
// byte-identity yardstick for recovery tests.
func catalogBytes(t *testing.T, store *Catalog) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, store); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDurableLifecycle drives the public durability API through the full
// product-synthesis loop: seed a data dir from a generated marketplace,
// learn and synthesize against the durable catalog, commit the products
// with AddToCatalog, then reopen the directory and require the recovered
// catalog to be byte-identical — first from the log tail alone, then
// again after an explicit Compact.
func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	ds := marketplace(t)

	d, err := OpenDurable(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ImportCatalog(ds.Catalog); err != nil {
		t.Fatal(err)
	}
	store := d.Catalog()
	if got, want := catalogBytes(t, store), catalogBytes(t, ds.Catalog); !bytes.Equal(got, want) {
		t.Fatal("imported catalog differs from source")
	}
	// A second import must refuse: recovery owns existing state.
	if err := d.ImportCatalog(ds.Catalog); err == nil {
		t.Fatal("ImportCatalog into non-empty store succeeded")
	}

	sys := NewSystem(store, nil)
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if rep := sys.AddToCatalog(res.Products, "dur"); rep.Added == 0 {
		t.Fatal("AddToCatalog added nothing")
	}
	want := catalogBytes(t, store)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from snapshot + log tail.
	d2, err := OpenDurable(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := catalogBytes(t, d2.Catalog()); !bytes.Equal(got, want) {
		t.Fatal("recovered catalog differs from the one we closed")
	}
	st := d2.Stats()
	if st.Recovery.ReplayedRecords == 0 {
		t.Errorf("recovery replayed 0 records, want the AddToCatalog tail; stats %+v", st.Recovery)
	}

	// Compact, recover again: now purely snapshot-backed.
	if err := d2.Compact(); err != nil {
		t.Fatal(err)
	}
	if depth := d2.Stats().LogDepthRecords; depth != 0 {
		t.Errorf("log depth after Compact = %d, want 0", depth)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := OpenDurable(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := catalogBytes(t, d3.Catalog()); !bytes.Equal(got, want) {
		t.Fatal("post-compaction recovery differs")
	}
	if rr := d3.Stats().Recovery.ReplayedRecords; rr != 0 {
		t.Errorf("post-compaction recovery replayed %d records, want 0", rr)
	}
}

// TestWithDurabilitySpillsStreams pins the WithDurability wiring: a
// system built with it spills bounded-out clusters to scratch files under
// <data-dir>/spill, the streamed output stays byte-identical to one-shot,
// and the scratch files are gone when the stream ends.
func TestWithDurabilitySpillsStreams(t *testing.T) {
	dir := t.TempDir()
	ds := marketplace(t)

	d, err := OpenDurable(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.ImportCatalog(ds.Catalog); err != nil {
		t.Fatal(err)
	}

	sys := NewSystem(d.Catalog(), nil, WithDurability(d))
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	fetcher := MapFetcher(ds.Pages)
	oneShot, err := sys.Synthesize(ds.IncomingOffers, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	want := productFingerprints(oneShot.Products)

	waves := contiguousWaves(ds.IncomingOffers, len(ds.IncomingOffers))
	perWave, final := runStream(t, sys, waves, fetcher, StreamOptions{MaxOpenClusters: 1})
	got := productFingerprints(final.Products)
	if len(got) != len(want) {
		t.Fatalf("%d streamed products vs %d one-shot", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("product %d differs:\n  streamed: %s\n  one-shot: %s", i, got[i], want[i])
		}
	}
	spilled := false
	for _, r := range perWave {
		if r.SpilledClusters > 0 {
			spilled = true
			break
		}
	}
	if !spilled {
		t.Error("MaxOpenClusters=1 stream never spilled a cluster")
	}
	// The spill directory exists (the factory ran) and holds no leftover
	// scratch: stream teardown removes its file.
	left, err := os.ReadDir(filepath.Join(dir, "spill"))
	if err != nil {
		t.Fatalf("spill dir: %v", err)
	}
	if len(left) != 0 {
		t.Errorf("spill scratch left behind: %v", left)
	}
}
