package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"prodsynth/internal/core"
	"prodsynth/internal/experiments"
	"prodsynth/internal/fetch"
	"prodsynth/internal/fusion"
	"prodsynth/internal/offer"
	"prodsynth/internal/pipe"
	"prodsynth/internal/stream"
)

// The pipeline benchmark replays the incoming offers on a slow-fetch
// workload (benchFetchDelay per page, spread across the worker pool) so
// the prepare stage has real latency for cross-wave pipelining to hide.
// benchWaves matches BenchmarkSynthesizeStreamPipelined in bench_test.go:
// enough prepare/fuse pairs that the un-overlappable first prepare and
// last fuse are a small fraction of the run.
// benchFuseDelay gives value fusion real latency too (think: a dedupe
// service call per attribute) — without it the fuse stage is nearly
// free and cross-wave overlap has nothing to hide.
const (
	benchWaves      = 16
	benchFetchDelay = 5 * time.Millisecond
	benchFuseDelay  = 200 * time.Microsecond
)

// benchMode is one measured configuration in the report. PrepareMS and
// FuseMS are the per-stage wall-time sums across waves (stream modes
// only); in pipelined mode they overlap, so they add up to more than
// ns_per_op when the overlap is doing its job.
type benchMode struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  uint64  `json:"allocs_per_op"`
	OffersPerSec float64 `json:"offers_per_sec"`
	Products     int     `json:"products"`
	PrepareMS    float64 `json:"prepare_ms,omitempty"`
	FuseMS       float64 `json:"fuse_ms,omitempty"`
}

// benchReport is the machine-readable shape written to -benchjson. The
// batch mode is one-shot RunRuntime; stream_pipelined is the wave feed
// with the default stage buffer (prepare overlaps fuse); stream_barrier
// forces StageBuffer=-1, the pre-pipelining serial execution model, so
// pipelined_speedup_x isolates what the overlap buys on this workload.
type benchReport struct {
	GeneratedAt        string    `json:"generated_at"`
	Scale              string    `json:"scale"`
	Seed               int64     `json:"seed"`
	Offers             int       `json:"offers"`
	Waves              int       `json:"waves"`
	FetchDelayMS       float64   `json:"fetch_delay_ms"`
	Batch              benchMode `json:"batch"`
	StreamPipelined    benchMode `json:"stream_pipelined"`
	StreamBarrier      benchMode `json:"stream_barrier"`
	PipelinedSpeedupX  float64   `json:"pipelined_speedup_x"`
	PeakInFlightOffers int       `json:"peak_in_flight_offers"`
}

// slowFetcher adds crawl latency in front of the in-memory page map.
type slowFetcher struct {
	inner core.MapFetcher
	d     time.Duration
}

func (f slowFetcher) Fetch(url string) (string, error) {
	time.Sleep(f.d)
	return f.inner.Fetch(url)
}

// slowStrategy adds per-attribute latency in front of the configured
// fusion strategy.
type slowStrategy struct {
	inner fusion.Strategy
	d     time.Duration
}

func (s slowStrategy) Fuse(candidates []string) string {
	time.Sleep(s.d)
	return s.inner.Fuse(candidates)
}

// measure runs fn once and reports wall time plus the run's Mallocs
// delta. One iteration keeps the CI smoke cheap; the Go benchmarks in
// bench_test.go are the high-iteration companion.
func measure(fn func() (int, error)) (benchMode, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	products, err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchMode{}, err
	}
	return benchMode{
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		Products:    products,
	}, nil
}

// runBenchPipeline measures batch vs stream (pipelined and barrier) on
// the env's incoming offers and writes the JSON report to path, echoing
// a summary to w.
func runBenchPipeline(w io.Writer, env *experiments.Env, rc runConfig, path string) error {
	ctx := context.Background()
	offers := env.Dataset.IncomingOffers
	fetcher := slowFetcher{inner: core.MapFetcher(env.Dataset.Pages), d: benchFetchDelay}
	cfg := env.Config
	inner := cfg.Fusion
	if inner == nil {
		inner = fusion.Centroid{}
	}
	cfg.Fusion = slowStrategy{inner: inner, d: benchFuseDelay}
	rep := benchReport{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		Scale:        rc.scale,
		Seed:         rc.seed,
		Offers:       len(offers),
		Waves:        benchWaves,
		FetchDelayMS: float64(benchFetchDelay) / float64(time.Millisecond),
	}

	var err error
	rep.Batch, err = measure(func() (int, error) {
		run, err := core.RunRuntime(ctx, env.Dataset.Catalog, env.Offline, offers, fetcher, cfg)
		if err != nil {
			return 0, err
		}
		return len(run.Products), nil
	})
	if err != nil {
		return fmt.Errorf("bench batch: %w", err)
	}

	var gauge pipe.Gauge
	var final stream.Result
	rep.StreamPipelined, err = measure(func() (n int, err error) {
		n, final, err = benchStreamOnce(ctx, env, offers, fetcher, cfg, &gauge)
		return n, err
	})
	if err != nil {
		return fmt.Errorf("bench stream pipelined: %w", err)
	}
	rep.PeakInFlightOffers = gauge.Peak()
	rep.StreamPipelined.PrepareMS = float64(final.PrepareElapsed) / float64(time.Millisecond)
	rep.StreamPipelined.FuseMS = float64(final.FuseElapsed) / float64(time.Millisecond)

	barrierCfg := cfg
	barrierCfg.StageBuffer = -1
	rep.StreamBarrier, err = measure(func() (n int, err error) {
		n, final, err = benchStreamOnce(ctx, env, offers, fetcher, barrierCfg, nil)
		return n, err
	})
	if err != nil {
		return fmt.Errorf("bench stream barrier: %w", err)
	}
	rep.StreamBarrier.PrepareMS = float64(final.PrepareElapsed) / float64(time.Millisecond)
	rep.StreamBarrier.FuseMS = float64(final.FuseElapsed) / float64(time.Millisecond)

	for _, m := range []*benchMode{&rep.Batch, &rep.StreamPipelined, &rep.StreamBarrier} {
		m.OffersPerSec = float64(len(offers)) / (float64(m.NsPerOp) / float64(time.Second))
	}
	if rep.StreamPipelined.NsPerOp > 0 {
		rep.PipelinedSpeedupX = float64(rep.StreamBarrier.NsPerOp) / float64(rep.StreamPipelined.NsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "## pipeline benchmark — %d offers, %d waves, %v fetch delay → %s\n\n",
		len(offers), benchWaves, benchFetchDelay, path)
	fmt.Fprintf(w, "%-18s %12s %14s %12s\n", "mode", "ms/op", "allocs/op", "offers/sec")
	for _, row := range []struct {
		name string
		m    benchMode
	}{
		{"batch", rep.Batch},
		{"stream pipelined", rep.StreamPipelined},
		{"stream barrier", rep.StreamBarrier},
	} {
		fmt.Fprintf(w, "%-18s %12.1f %14d %12.1f\n",
			row.name, float64(row.m.NsPerOp)/1e6, row.m.AllocsPerOp, row.m.OffersPerSec)
	}
	fmt.Fprintf(w, "\n# pipelined speedup over barrier: %.2fx; peak in-flight offers: %d\n\n",
		rep.PipelinedSpeedupX, rep.PeakInFlightOffers)
	return nil
}

// benchFetchReport is the machine-readable shape written to
// BENCH_fetch.json (emitted next to -benchjson's pipeline report): the
// one-shot batch run with the fetcher plain, wrapped in the resilience
// layer over a healthy fetcher, and wrapped over a fetcher whose every
// page fails twice before succeeding. The overhead figures are per fetch
// operation; the fault run backs off on a FakeClock, so they isolate the
// retry machinery, not the sleeps (simulated_backoff_ms is what a wall
// clock would have slept).
type benchFetchReport struct {
	GeneratedAt             string    `json:"generated_at"`
	Scale                   string    `json:"scale"`
	Seed                    int64     `json:"seed"`
	Offers                  int       `json:"offers"`
	Plain                   benchMode `json:"plain"`
	Resilient               benchMode `json:"resilient_no_faults"`
	Faulted                 benchMode `json:"resilient_fail_twice"`
	WrapOverheadNsPerFetch  int64     `json:"wrap_overhead_ns_per_fetch"`
	RetryOverheadNsPerFetch int64     `json:"retry_overhead_ns_per_fetch"`
	RecoveredFetchRate      float64   `json:"recovered_fetch_rate"`
	SimulatedBackoffMS      float64   `json:"simulated_backoff_ms"`
}

// runBenchFetch measures what the resilience layer costs and writes the
// JSON report to path, echoing a summary to w. Single-iteration numbers,
// same caveat as the pipeline report: CI smoke, not a benchmark.
func runBenchFetch(w io.Writer, env *experiments.Env, rc runConfig, path string) error {
	ctx := context.Background()
	offers := env.Dataset.IncomingOffers
	inner := core.MapFetcher(env.Dataset.Pages)
	cfg := env.Config
	policy := func(clock fetch.Clock) fetch.Policy {
		return fetch.Policy{
			MaxAttempts: 3,
			BackoffBase: 50 * time.Millisecond,
			BackoffMax:  time.Second,
			JitterSeed:  1,
			Clock:       clock,
		}
	}
	var lastReport fetch.Report
	runOnce := func(pages core.PageFetcher) func() (int, error) {
		return func() (int, error) {
			run, err := core.RunRuntime(ctx, env.Dataset.Catalog, env.Offline, offers, pages, cfg)
			if err != nil {
				return 0, err
			}
			lastReport = run.Fetch
			return len(run.Products), nil
		}
	}
	rep := benchFetchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scale:       rc.scale,
		Seed:        rc.seed,
		Offers:      len(offers),
	}

	var err error
	rep.Plain, err = measure(runOnce(inner))
	if err != nil {
		return fmt.Errorf("bench fetch plain: %w", err)
	}
	rep.Resilient, err = measure(runOnce(fetch.NewResilient(inner, policy(fetch.NewFakeClock()))))
	if err != nil {
		return fmt.Errorf("bench fetch resilient: %w", err)
	}
	clock := fetch.NewFakeClock()
	faulted := fetch.NewResilient(fetch.NewFaulty(inner, fetch.FailFirst(2), clock), policy(clock))
	rep.Faulted, err = measure(runOnce(faulted))
	if err != nil {
		return fmt.Errorf("bench fetch faulted: %w", err)
	}
	if n := int64(lastReport.Attempted); n > 0 {
		rep.WrapOverheadNsPerFetch = (rep.Resilient.NsPerOp - rep.Plain.NsPerOp) / n
		rep.RetryOverheadNsPerFetch = (rep.Faulted.NsPerOp - rep.Resilient.NsPerOp) / n
		rep.RecoveredFetchRate = float64(lastReport.Recovered) / float64(lastReport.Attempted)
	}
	rep.SimulatedBackoffMS = float64(clock.Slept()) / float64(time.Millisecond)
	for _, m := range []*benchMode{&rep.Plain, &rep.Resilient, &rep.Faulted} {
		m.OffersPerSec = float64(len(offers)) / (float64(m.NsPerOp) / float64(time.Second))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "## fetch-layer benchmark — %d offers, fail-twice schedule → %s\n\n",
		len(offers), path)
	fmt.Fprintf(w, "%-22s %12s %14s %12s\n", "mode", "ms/op", "allocs/op", "offers/sec")
	for _, row := range []struct {
		name string
		m    benchMode
	}{
		{"plain", rep.Plain},
		{"resilient, no faults", rep.Resilient},
		{"resilient, fail twice", rep.Faulted},
	} {
		fmt.Fprintf(w, "%-22s %12.1f %14d %12.1f\n",
			row.name, float64(row.m.NsPerOp)/1e6, row.m.AllocsPerOp, row.m.OffersPerSec)
	}
	fmt.Fprintf(w, "\n# wrap overhead %d ns/fetch; retry overhead %d ns/fetch; recovered rate %.2f; simulated backoff %.0f ms\n\n",
		rep.WrapOverheadNsPerFetch, rep.RetryOverheadNsPerFetch, rep.RecoveredFetchRate, rep.SimulatedBackoffMS)
	return nil
}

// benchStreamOnce drives one full stream replay and returns the merged
// product count plus the final result's per-stage wall-time sums.
func benchStreamOnce(ctx context.Context, env *experiments.Env, offers []offer.Offer, fetcher core.PageFetcher, cfg core.Config, gauge *pipe.Gauge) (int, stream.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	waves := make(chan []offer.Offer)
	go func() {
		defer close(waves)
		for i := 0; i < benchWaves; i++ {
			select {
			case waves <- offers[i*len(offers)/benchWaves : (i+1)*len(offers)/benchWaves]:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := stream.Run(ctx, env.Dataset.Catalog, env.Offline, waves, fetcher, cfg, stream.Options{InFlight: gauge})
	products := 0
	var final stream.Result
	for r := range out {
		if r.Err != nil {
			return 0, final, fmt.Errorf("wave %d: %w", r.Wave, r.Err)
		}
		if r.Final {
			final = r
			products = len(r.Products)
		}
	}
	return products, final, nil
}
