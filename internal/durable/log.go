package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prodsynth/internal/catalog"
)

// segPrefix/segSuffix frame the log segment file names: wal-<seq>.psdl,
// zero-padded so lexical order is replay order.
const (
	segPrefix = "wal-"
	segSuffix = ".psdl"
)

func segName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the log segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// walLog is the append-only delta log: an open segment file plus the
// rotation and sync machinery around it. It implements catalog.Observer,
// so attaching it to a store routes every committed mutation here; the
// observer fires inside the store's shard critical sections, and the
// log's own mutex serializes appends from different shards into one
// total order.
//
// Observer methods cannot return errors, so append failures (disk full,
// I/O error) are counted and latched instead: the in-memory store stays
// correct, Stats surfaces the failure, and the manager keeps trying so a
// transient error does not permanently stop the log.
type walLog struct {
	dir  string
	opts Options
	kp   *killpoint

	mu       sync.Mutex
	f        *os.File
	seq      uint64 // active segment
	segBytes int64

	totalRecords uint64 // appended since Open
	totalBytes   uint64
	baseRecords  uint64 // totals already covered by a snapshot
	baseBytes    uint64

	errCount uint64
	firstErr error
}

// openLog creates the active segment file (always a fresh one — boots
// and rotations never append to an existing segment).
func openLog(dir string, seq uint64, opts Options, kp *killpoint) (*walLog, error) {
	l := &walLog{dir: dir, opts: opts, kp: kp, seq: seq}
	if err := l.openSegment(seq); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *walLog) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.seq = seq
	l.segBytes = 0
	return nil
}

// ObserveCategory implements catalog.Observer.
func (l *walLog) ObserveCategory(c catalog.Category) {
	l.append(encodeCategory(c))
}

// ObserveProduct implements catalog.Observer.
func (l *walLog) ObserveProduct(version uint64, ownsKey bool, p catalog.Product) {
	l.append(encodeProduct(version, ownsKey, p))
}

func (l *walLog) append(payload []byte) {
	buf := frameRecord(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		l.fail(fmt.Errorf("durable: append to closed log"))
		return
	}
	if l.segBytes > 0 && l.segBytes+int64(len(buf)) > l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.fail(err)
			return
		}
	}
	// Crash injection: a torn tail is the first half of the framed
	// record reaching the disk before the power cut.
	if l.kp.hit("append-torn") {
		_, _ = l.f.Write(buf[:len(buf)/2])
		_ = l.f.Sync()
		die()
	}
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return
	}
	if l.opts.Fsync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.fail(err)
			return
		}
	}
	l.segBytes += int64(len(buf))
	l.totalRecords++
	l.totalBytes += uint64(len(buf))
	if l.kp.hit("append") {
		// The record above is fully durable; the crash hits after the
		// commit, so recovery must reproduce it.
		_ = l.f.Sync()
		die()
	}
}

func (l *walLog) fail(err error) {
	l.errCount++
	if l.firstErr == nil {
		l.firstErr = err
	}
}

// recordError latches an error from outside the append path (flush and
// compaction failures), where the log lock is not already held.
func (l *walLog) recordError(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fail(err)
}

// rotateLocked seals the active segment and opens the next one.
func (l *walLog) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	return l.openSegment(l.seq + 1)
}

// rotate seals the active segment and returns the new active sequence
// number plus the append totals at the instant of rotation. Compaction
// calls it first: a snapshot taken after rotate covers every record in
// segments before the returned sequence, so those segments (and only
// those) become deletable once the new manifest lands.
func (l *walLog) rotate() (retainSeq, markRecords, markBytes uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return 0, 0, 0, fmt.Errorf("durable: rotate on closed log")
	}
	if err := l.rotateLocked(); err != nil {
		return 0, 0, 0, err
	}
	return l.seq, l.totalRecords, l.totalBytes, nil
}

// setBaseline marks all appends up to the given totals as covered by a
// snapshot; the depth counters restart from there.
func (l *walLog) setBaseline(records, bytes uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.baseRecords = records
	l.baseBytes = bytes
}

// depth reports the records and bytes a crash right now would replay.
func (l *walLog) depth() (records, bytes uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalRecords - l.baseRecords, l.totalBytes - l.baseBytes
}

func (l *walLog) errors() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errCount, l.firstErr
}

// sync flushes the active segment to disk — the SyncInterval flush path.
func (l *walLog) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// close syncs and closes the active segment; later appends fail.
func (l *walLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
