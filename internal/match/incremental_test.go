package match

import (
	"fmt"
	"sync"
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/offer"
)

// growStore adds n products to the category with predictable specs.
func growStore(t *testing.T, st *catalog.Store, categoryID string, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		err := st.AddProduct(catalog.Product{
			ID: fmt.Sprintf("p-grown-%s-%d", categoryID, i), CategoryID: categoryID,
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Growth Corp"},
				{Name: "Model", Value: fmt.Sprintf("Grown Model %d", i)},
				{Name: catalog.AttrMPN, Value: fmt.Sprintf("GROWN%04d", i)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// mixedOffers builds offers across both test categories, some aimed at
// the seed products, some at grown products, some at nothing.
func mixedOffers(n int) *offer.Set {
	titles := []string{
		"Seagate Barracuda 7200.10 HDD",
		"Western Digital Raptor X",
		"Canon EOS 40D",
		"Growth Corp Grown Model 3",
		"GROWN0007 drive",
		"Completely unrelated gadget xyz",
	}
	offs := make([]offer.Offer, n)
	for i := range offs {
		cat := "hd"
		if i%5 == 2 {
			cat = "cam"
		}
		offs[i] = offer.Offer{
			ID: fmt.Sprintf("o%d", i), Merchant: "m",
			CategoryID: cat, Title: titles[i%len(titles)],
		}
	}
	return offer.NewSet(offs)
}

func assertSameMatches(t *testing.T, label string, want, got *MatchSet) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len = %d, want %d", label, got.Len(), want.Len())
	}
	for _, m := range want.All() {
		gm, ok := got.ProductFor(m.OfferID)
		if !ok || gm != m {
			t.Fatalf("%s: %s -> %+v (ok=%v), want %+v", label, m.OfferID, gm, ok, m)
		}
	}
}

// TestRegistryIncrementalEqualsColdBuild is the acceptance test for
// posting-list deltas: after AddProduct, the warm registry must apply an
// incremental update — Builds does not move for the touched category —
// and the resulting MatchSet must be identical (IDs, sources, and exact
// scores) to one produced by a cold rebuild at the same catalog state.
func TestRegistryIncrementalEqualsColdBuild(t *testing.T) {
	st := testStore(t)
	warm := NewRegistry()
	m := Matcher{Workers: 4, Registry: warm}
	set := mixedOffers(300)

	m.Run(st, set) // build both categories warm
	buildsBefore := warm.Builds()

	growStore(t, st, "hd", 0, 7)
	growStore(t, st, "cam", 0, 3)

	gotWarm := m.Run(st, set)
	if got := warm.Builds(); got != buildsBefore {
		t.Errorf("Builds moved %d -> %d after AddProduct; want deltas, not rebuilds", buildsBefore, got)
	}
	if got := warm.Deltas(); got != 2 {
		t.Errorf("Deltas = %d, want 2 (one per touched category)", got)
	}

	cold := Matcher{Workers: 4, Registry: NewRegistry()}.Run(st, set)
	assertSameMatches(t, "incremental vs cold", cold, gotWarm)

	// A chain of further deltas stays equivalent too.
	growStore(t, st, "hd", 7, 5)
	gotWarm = m.Run(st, set)
	cold = Matcher{Workers: 4, Registry: NewRegistry()}.Run(st, set)
	assertSameMatches(t, "second delta vs cold", cold, gotWarm)
	if got := warm.Builds(); got != buildsBefore {
		t.Errorf("Builds moved to %d on the second delta", got)
	}
}

// TestRegistryShardCountInvariance asserts byte-identical matcher output
// across shard counts and entry bounds (the sharding acceptance
// criterion), crossed with worker counts.
func TestRegistryShardCountInvariance(t *testing.T) {
	st := testStore(t)
	growStore(t, st, "hd", 0, 10)
	set := mixedOffers(300)

	base := Matcher{Workers: 1, Registry: NewRegistryWithOptions(RegistryOptions{Shards: 1})}.Run(st, set)
	for _, opts := range []RegistryOptions{
		{Shards: 2}, {Shards: 3}, {Shards: 8}, {Shards: 32},
		{Shards: 4, MaxEntries: 1}, {Shards: 1, MaxEntries: 1},
	} {
		for _, workers := range []int{1, 8} {
			m := Matcher{Workers: workers, Registry: NewRegistryWithOptions(opts)}
			got := m.Run(st, set)
			assertSameMatches(t, fmt.Sprintf("opts=%+v workers=%d", opts, workers), base, got)
		}
	}
}

// TestRegistryLRUEviction covers the MaxEntries bound: cold categories
// fall off the LRU, Entries stays within the bound, and a re-touched
// category rebuilds.
func TestRegistryLRUEviction(t *testing.T) {
	st := testStore(t)
	reg := NewRegistryWithOptions(RegistryOptions{Shards: 1, MaxEntries: 1})
	m := Matcher{Registry: reg}

	hd := manyOffers(10, "hd", "Western Digital Raptor X")
	cam := manyOffers(10, "cam", "Canon EOS 40D")

	m.Run(st, hd)
	if got := reg.Builds(); got != 1 {
		t.Fatalf("Builds after hd = %d, want 1", got)
	}
	m.Run(st, cam) // evicts hd
	if got := reg.Builds(); got != 2 {
		t.Fatalf("Builds after cam = %d, want 2", got)
	}
	if got := reg.Entries(); got != 1 {
		t.Errorf("Entries = %d, want 1 (bound)", got)
	}

	// Re-touching the evicted category rebuilds it (correct output, one
	// more cold build) rather than serving a dropped entry.
	ms := m.Run(st, hd)
	if got := reg.Builds(); got != 3 {
		t.Errorf("Builds after hd re-touch = %d, want 3 (rebuild)", got)
	}
	if got, ok := ms.ProductFor("o1"); !ok || got.ProductID != "p-raptor" {
		t.Errorf("post-eviction match = %+v, %v", got, ok)
	}
	if got := reg.Entries(); got != 1 {
		t.Errorf("Entries after re-touch = %d, want 1", got)
	}

	// An unbounded registry keeps both.
	unbounded := NewRegistry()
	mu := Matcher{Registry: unbounded}
	mu.Run(st, hd)
	mu.Run(st, cam)
	if got := unbounded.Entries(); got != 2 {
		t.Errorf("unbounded Entries = %d, want 2", got)
	}
}

// TestRegistryConcurrentExtendAndMatch pins the delta path's one
// by-design unsynchronized write/read pair: extend appends into backing
// arrays shared with the previous index, and must only ever touch memory
// past every concurrent reader's slice length. Matchers hammer a warm
// index while AddProduct + TitleIndex drive a chain of extends; the race
// detector (CI runs this under -race) catches any extend that starts
// writing inside the previous generation's bounds.
func TestRegistryConcurrentExtendAndMatch(t *testing.T) {
	st := testStore(t)
	growStore(t, st, "hd", 0, 50)
	reg := NewRegistry()
	reg.TitleIndex(st, "hd") // warm

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Each acquisition may observe an older or newer
				// generation; both must be readable mid-extend.
				idx := reg.TitleIndex(st, "hd")
				idx.Match("Growth Corp Grown Model 3 extra")
				idx.Match("GROWN0049 unseen token")
			}
		}()
	}
	for i := 0; i < 30; i++ {
		growStore(t, st, "hd", 50+i, 1)
		reg.TitleIndex(st, "hd") // apply the delta
	}
	close(stop)
	wg.Wait()

	// The chain of deltas must still equal a cold build.
	set := mixedOffers(100)
	warm := Matcher{Registry: reg}.Run(st, set)
	cold := Matcher{Registry: NewRegistry()}.Run(st, set)
	assertSameMatches(t, "post-concurrent-extend", cold, warm)
}

// TestMatchWarmAllocs is the allocation regression guard on the warm
// Match path: with the index built and the scratch pool warm, a Match
// call must not allocate.
func TestMatchWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector's sync.Pool instrumentation allocates")
	}
	st := testStore(t)
	growStore(t, st, "hd", 0, 50)
	idx := NewTitleIndex(st.ProductsInCategory("hd"))
	title := "Growth Corp Grown Model 17 brandnewtoken xyz"
	idx.Match(title) // warm IDF + scratch pool
	if n := testing.AllocsPerRun(200, func() { idx.Match(title) }); n > 0 {
		t.Errorf("warm Match allocates %.1f times per call, want 0", n)
	}
}
