// Package reconcile implements the Schema Reconciliation component of the
// runtime pipeline (§4): it translates offer attribute-value pairs from
// merchant vocabulary into catalog vocabulary using the attribute
// correspondences learned offline, and discards pairs with no
// correspondence. The discard step is what filters extraction noise: pairs
// harvested from marketing tables never earn a correspondence, so they are
// dropped here.
package reconcile

import (
	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/offer"
)

// Stats counts the outcome of a reconciliation run.
type Stats struct {
	// OffersIn is the number of offers processed.
	OffersIn int
	// PairsIn is the number of attribute-value pairs seen.
	PairsIn int
	// PairsMapped is the number of pairs translated to catalog names.
	PairsMapped int
	// PairsDropped is the number of pairs with no correspondence.
	PairsDropped int
}

// Add folds other into s, field by field. Every aggregation site (batch
// reconciliation, the per-category merge in core, the per-wave running
// totals in stream) goes through here, so a newly added counter field has
// exactly one place to be wired in.
func (s *Stats) Add(other Stats) {
	s.OffersIn += other.OffersIn
	s.PairsIn += other.PairsIn
	s.PairsMapped += other.PairsMapped
	s.PairsDropped += other.PairsDropped
}

// Offer reconciles a single offer's spec, returning the translated spec.
// When two merchant attributes map to the same catalog attribute, the first
// pair in spec order wins.
func Offer(o offer.Offer, set *correspond.Set) (catalog.Spec, Stats) {
	st := Stats{OffersIn: 1}
	key := offer.SchemaKey{Merchant: o.Merchant, CategoryID: o.CategoryID}
	var out catalog.Spec
	used := make(map[string]bool)
	for _, av := range o.Spec {
		st.PairsIn++
		ap, ok := set.Lookup(key, av.Name)
		if !ok {
			st.PairsDropped++
			continue
		}
		if used[ap] {
			st.PairsDropped++
			continue
		}
		used[ap] = true
		out = append(out, catalog.AttributeValue{Name: ap, Value: av.Value})
		st.PairsMapped++
	}
	return out, st
}

// Offers reconciles a batch, returning offers whose Spec has been replaced
// by the reconciled catalog-vocabulary spec. Offers that end up with an
// empty spec are still returned (clustering will skip them).
func Offers(offers []offer.Offer, set *correspond.Set) ([]offer.Offer, Stats) {
	var total Stats
	out := make([]offer.Offer, len(offers))
	for i, o := range offers {
		spec, st := Offer(o, set)
		total.Add(st)
		ro := o.Clone()
		ro.Spec = spec
		out[i] = ro
	}
	return out, total
}
