package ml

import (
	"math"
	"sort"
)

// NaiveBayes is a multinomial multi-class Naive Bayes text classifier over
// bags of tokens. It backs the title→category classifier (paper §2) and the
// LSD instance matcher baseline (Appendix C).
//
// Build it with NewNaiveBayes, feed it with Train, then call Classify or
// LogPosterior. Training is incremental; classification is safe for
// concurrent use once training is done.
type NaiveBayes struct {
	classes     map[string]*nbClass
	vocab       map[string]bool
	totalDocs   int
	laplace     float64
	classPriors bool
}

type nbClass struct {
	docs       int
	tokenCount map[string]int
	totalToken int
}

// NewNaiveBayes returns an empty classifier with Laplace smoothing alpha
// (alpha <= 0 defaults to 1) and class priors enabled.
func NewNaiveBayes(alpha float64) *NaiveBayes {
	if alpha <= 0 {
		alpha = 1
	}
	return &NaiveBayes{
		classes:     make(map[string]*nbClass),
		vocab:       make(map[string]bool),
		laplace:     alpha,
		classPriors: true,
	}
}

// SetUniformPriors disables class priors (uniform prior over classes). The
// LSD matcher scores classes by likelihood per Appendix C where P(A) uses
// instance counts; the category classifier keeps priors on.
func (nb *NaiveBayes) SetUniformPriors() { nb.classPriors = false }

// Train adds one document (bag of tokens) labeled with class.
func (nb *NaiveBayes) Train(class string, tokens []string) {
	c := nb.classes[class]
	if c == nil {
		c = &nbClass{tokenCount: make(map[string]int)}
		nb.classes[class] = c
	}
	c.docs++
	nb.totalDocs++
	for _, t := range tokens {
		c.tokenCount[t]++
		c.totalToken++
		nb.vocab[t] = true
	}
}

// NumClasses returns the number of classes seen.
func (nb *NaiveBayes) NumClasses() int { return len(nb.classes) }

// Classes returns the class labels, sorted.
func (nb *NaiveBayes) Classes() []string {
	out := make([]string, 0, len(nb.classes))
	for c := range nb.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// LogPosterior returns log P(class) + Σ log P(token | class) for one class.
// Unknown classes get -Inf.
func (nb *NaiveBayes) LogPosterior(class string, tokens []string) float64 {
	c := nb.classes[class]
	if c == nil || nb.totalDocs == 0 {
		return math.Inf(-1)
	}
	var lp float64
	if nb.classPriors {
		lp = math.Log(float64(c.docs) / float64(nb.totalDocs))
	}
	v := float64(len(nb.vocab))
	den := math.Log(float64(c.totalToken) + nb.laplace*v)
	for _, t := range tokens {
		num := float64(c.tokenCount[t]) + nb.laplace
		lp += math.Log(num) - den
	}
	return lp
}

// Posterior returns the normalized posterior P(class | tokens) over all
// classes, computed with the log-sum-exp trick. Classes are accumulated
// in sorted order so the float summation order — and therefore every
// returned probability, to the last ULP — is deterministic run to run.
func (nb *NaiveBayes) Posterior(tokens []string) map[string]float64 {
	if len(nb.classes) == 0 {
		return nil
	}
	classes := nb.Classes()
	logs := make([]float64, len(classes))
	maxLog := math.Inf(-1)
	for i, class := range classes {
		lp := nb.LogPosterior(class, tokens)
		logs[i] = lp
		if lp > maxLog {
			maxLog = lp
		}
	}
	var z float64
	for _, lp := range logs {
		z += math.Exp(lp - maxLog)
	}
	out := make(map[string]float64, len(logs))
	for i, class := range classes {
		out[class] = math.Exp(logs[i]-maxLog) / z
	}
	return out
}

// NBSnapshot is a deterministic, serializable view of a trained NaiveBayes
// classifier: classes sorted by name, token counts sorted by token. A
// snapshot round-trips exactly — NaiveBayesFromSnapshot(nb.Snapshot())
// classifies identically to nb — because the classifier's state is nothing
// but these counts (vocabulary, document and token totals are derived).
type NBSnapshot struct {
	Laplace     float64
	ClassPriors bool
	Classes     []NBClassSnapshot
}

// NBClassSnapshot is one class's training counts.
type NBClassSnapshot struct {
	Name   string
	Docs   int
	Tokens []NBTokenCount
}

// NBTokenCount is one token's occurrence count within a class.
type NBTokenCount struct {
	Token string
	Count int
}

// Snapshot extracts the classifier's full trained state in deterministic
// order.
func (nb *NaiveBayes) Snapshot() NBSnapshot {
	s := NBSnapshot{Laplace: nb.laplace, ClassPriors: nb.classPriors}
	for _, name := range nb.Classes() {
		c := nb.classes[name]
		cs := NBClassSnapshot{Name: name, Docs: c.docs, Tokens: make([]NBTokenCount, 0, len(c.tokenCount))}
		for tok, n := range c.tokenCount {
			cs.Tokens = append(cs.Tokens, NBTokenCount{Token: tok, Count: n})
		}
		sort.Slice(cs.Tokens, func(i, j int) bool { return cs.Tokens[i].Token < cs.Tokens[j].Token })
		s.Classes = append(s.Classes, cs)
	}
	return s
}

// NaiveBayesFromSnapshot rebuilds a classifier from a snapshot. Derived
// state (vocabulary, totals) is recomputed, so the result is equivalent to
// the classifier the snapshot was taken from.
func NaiveBayesFromSnapshot(s NBSnapshot) *NaiveBayes {
	nb := NewNaiveBayes(s.Laplace)
	nb.classPriors = s.ClassPriors
	for _, cs := range s.Classes {
		c := &nbClass{docs: cs.Docs, tokenCount: make(map[string]int, len(cs.Tokens))}
		for _, tc := range cs.Tokens {
			c.tokenCount[tc.Token] = tc.Count
			c.totalToken += tc.Count
			nb.vocab[tc.Token] = true
		}
		nb.classes[cs.Name] = c
		nb.totalDocs += cs.Docs
	}
	return nb
}

// Classify returns the argmax class and its posterior probability.
// Ties break lexicographically for determinism.
func (nb *NaiveBayes) Classify(tokens []string) (string, float64) {
	post := nb.Posterior(tokens)
	if post == nil {
		return "", 0
	}
	best, bestP := "", math.Inf(-1)
	for _, class := range nb.Classes() {
		if p := post[class]; p > bestP {
			best, bestP = class, p
		}
	}
	return best, bestP
}
