package prodsynth

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prodsynth/internal/cluster"
	"prodsynth/internal/durable"
	"prodsynth/internal/fusion"
)

// learned builds a marketplace and a learned System over it.
func learned(t *testing.T, cfg Config) (*Marketplace, *System) {
	t.Helper()
	ds := marketplace(t)
	sys := New(ds.Catalog, cfg)
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	return ds, sys
}

// contiguousWaves splits offers into n contiguous waves.
func contiguousWaves(offers []Offer, n int) [][]Offer {
	if n > len(offers) {
		n = len(offers)
	}
	waves := make([][]Offer, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(offers)/n, (i+1)*len(offers)/n
		waves = append(waves, offers[lo:hi])
	}
	return waves
}

// runStream feeds the waves through SynthesizeStream and collects every
// per-wave result plus the final one.
func runStream(t *testing.T, sys *System, waves [][]Offer, pages PageFetcher, opts StreamOptions) (perWave []StreamResult, final StreamResult) {
	t.Helper()
	in := make(chan []Offer)
	out, err := sys.SynthesizeStream(context.Background(), in, pages, opts)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, w := range waves {
			in <- w
		}
		close(in)
	}()
	sawFinal := false
	for r := range out {
		if r.Final {
			if sawFinal {
				t.Fatal("two final results")
			}
			sawFinal = true
			final = r
			continue
		}
		if sawFinal {
			t.Fatal("per-wave result after the final result")
		}
		perWave = append(perWave, r)
	}
	if !sawFinal {
		t.Fatal("stream closed without a final result")
	}
	return perWave, final
}

// TestSynthesizeStreamEquivalence is the stream≡batch acceptance suite:
// for every tested partitioning of the incoming offers into waves — one
// wave, a few contiguous waves, and one wave per offer — the streamed
// output with cluster memory (the final merged view, and the last
// emission per cluster along the way) must be byte-identical to one-shot
// Synthesize output: same clusters, same fused values, same order, same
// counters.
func TestSynthesizeStreamEquivalence(t *testing.T) {
	ds, sys := learned(t, Config{})
	fetcher := MapFetcher(ds.Pages)
	oneShot, err := sys.Synthesize(ds.IncomingOffers, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	want := productFingerprints(oneShot.Products)

	for _, n := range []int{1, 2, 3, 7, len(ds.IncomingOffers)} {
		waves := contiguousWaves(ds.IncomingOffers, n)
		perWave, final := runStream(t, sys, waves, fetcher, StreamOptions{})

		if len(perWave) != len(waves) {
			t.Fatalf("waves=%d: %d per-wave results", n, len(perWave))
		}
		for i, r := range perWave {
			if r.Wave != i {
				t.Errorf("waves=%d: result %d has Wave=%d (out of order)", n, i, r.Wave)
			}
			if r.Err != nil {
				t.Errorf("waves=%d: wave %d failed: %v", n, i, r.Err)
			}
			if r.Offers != len(waves[i]) {
				t.Errorf("waves=%d: wave %d Offers=%d, want %d", n, i, r.Offers, len(waves[i]))
			}
		}

		got := productFingerprints(final.Products)
		if len(got) != len(want) {
			t.Fatalf("waves=%d: %d merged products vs %d one-shot", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("waves=%d: product %d differs:\n  streamed: %s\n  one-shot: %s", n, i, got[i], want[i])
			}
		}
		if final.Wave != len(waves) {
			t.Errorf("waves=%d: final.Wave = %d", n, final.Wave)
		}
		if final.Clusters != oneShot.Clusters ||
			final.Offers != oneShot.Offers ||
			final.PairsMapped != oneShot.PairsMapped ||
			final.PairsDropped != oneShot.PairsDropped ||
			final.OffersWithoutKey != oneShot.OffersWithoutKey ||
			final.ExcludedMatched != oneShot.ExcludedMatched {
			t.Errorf("waves=%d: final counters %+v differ from one-shot %+v", n, final.Result, *oneShot)
		}

		// The merged view must also be reachable from the per-wave
		// emissions alone: for every final cluster, the last per-wave
		// emission under its key is its final state. (Earlier emissions
		// may sit under superseded keys — a merge or a lexicographically
		// smaller key value can re-label a cluster mid-stream — so the
		// map may hold more keys than there are final clusters.)
		last := make(map[string]string)
		for _, r := range perWave {
			for _, p := range r.Products {
				last[p.KeyAttr+"\x00"+p.Key] = productFingerprints([]Synthesized{p})[0]
			}
		}
		for i, p := range final.Products {
			if fp := last[p.KeyAttr+"\x00"+p.Key]; fp != want[i] {
				t.Errorf("waves=%d: last emission for %s = %s, want %s", n, p.Key, fp, want[i])
			}
		}
	}

	// Pipelining determinism: the same equivalence must hold across
	// stage-buffer depths (barrier, unbuffered handoff, deeper readahead)
	// crossed with worker counts — cross-wave overlap and fan-out width
	// must never change a byte of output.
	model := sys.Model()
	for _, sb := range []int{-1, 0, 1, 4} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("stagebuffer=%d/workers=%d", sb, workers)
			psys := NewSystem(ds.Catalog, model, WithStageBuffer(sb), WithWorkers(workers))
			for _, n := range []int{1, 3, 7} {
				waves := contiguousWaves(ds.IncomingOffers, n)
				perWave, final := runStream(t, psys, waves, fetcher, StreamOptions{})
				if len(perWave) != len(waves) {
					t.Fatalf("%s waves=%d: %d per-wave results", name, n, len(perWave))
				}
				for i, r := range perWave {
					if r.Err != nil {
						t.Errorf("%s waves=%d: wave %d failed: %v", name, n, i, r.Err)
					}
					if r.Wave != i {
						t.Errorf("%s waves=%d: result %d has Wave=%d (out of order)", name, n, i, r.Wave)
					}
				}
				got := productFingerprints(final.Products)
				if len(got) != len(want) {
					t.Fatalf("%s waves=%d: %d merged products vs %d one-shot", name, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s waves=%d: product %d differs:\n  streamed: %s\n  one-shot: %s", name, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSynthesizeStreamMemoryDisabledMatchesBatches pins the memory-off
// semantics: every wave clusters independently, so the per-wave results
// reproduce SynthesizeBatches batch for batch.
func TestSynthesizeStreamMemoryDisabledMatchesBatches(t *testing.T) {
	ds, sys := learned(t, Config{})
	fetcher := MapFetcher(ds.Pages)
	waves := contiguousWaves(ds.IncomingOffers, 3)

	batched, err := sys.SynthesizeBatches(waves, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	perWave, final := runStream(t, sys, waves, fetcher, StreamOptions{DisableClusterMemory: true})

	if len(perWave) != len(batched.Batches) {
		t.Fatalf("%d waves vs %d batches", len(perWave), len(batched.Batches))
	}
	for i, r := range perWave {
		b := batched.Batches[i]
		got, want := productFingerprints(r.Products), productFingerprints(b.Products)
		if len(got) != len(want) {
			t.Fatalf("wave %d: %d products vs batch %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("wave %d product %d differs:\n  stream: %s\n  batch:  %s", i, j, got[j], want[j])
			}
		}
		if r.Clusters != b.Clusters || r.Offers != b.Offers ||
			r.PairsMapped != b.PairsMapped || r.PairsDropped != b.PairsDropped ||
			r.OffersWithoutKey != b.OffersWithoutKey || r.ExcludedMatched != b.ExcludedMatched {
			t.Errorf("wave %d counters %+v differ from batch %+v", i, r.Result, *b)
		}
	}
	// With no memory there is nothing to merge: the final result carries
	// only the aggregate counters, which match the batch totals.
	if len(final.Products) != 0 {
		t.Errorf("final.Products = %d with memory disabled, want 0", len(final.Products))
	}
	if final.Clusters != batched.Total.Clusters || final.Offers != batched.Total.Offers {
		t.Errorf("final totals %+v differ from batch totals %+v", final.Result, batched.Total)
	}
}

// TestSynthesizeStreamMergesAcrossWaves splits one multi-offer cluster
// across the wave boundary and checks the headline behaviour: batch
// synthesis duplicates the product, streaming re-fuses the wave-1 cluster
// with the wave-2 evidence and synthesizes it once.
func TestSynthesizeStreamMergesAcrossWaves(t *testing.T) {
	ds, sys := learned(t, Config{})
	fetcher := MapFetcher(ds.Pages)
	oneShot, err := sys.Synthesize(ds.IncomingOffers, fetcher)
	if err != nil {
		t.Fatal(err)
	}

	// Pick a cluster with at least two member offers and cut the waves
	// between its first and last member, so it must span both waves.
	idx := make(map[string]int, len(ds.IncomingOffers))
	for i, o := range ds.IncomingOffers {
		idx[o.ID] = i
	}
	var target *Synthesized
	mid := 0
	for i := range oneShot.Products {
		p := &oneShot.Products[i]
		if len(p.OfferIDs) < 2 {
			continue
		}
		lo, hi := len(ds.IncomingOffers), -1
		for _, id := range p.OfferIDs {
			if j, ok := idx[id]; ok {
				if j < lo {
					lo = j
				}
				if j > hi {
					hi = j
				}
			}
		}
		if hi > lo {
			target, mid = p, (lo+hi+1)/2
			break
		}
	}
	if target == nil {
		t.Fatal("no multi-offer cluster spans a wave boundary in this marketplace")
	}
	waves := [][]Offer{ds.IncomingOffers[:mid], ds.IncomingOffers[mid:]}
	wantFP := productFingerprints([]Synthesized{*target})[0]
	countKey := func(products []Synthesized) int {
		n := 0
		for _, p := range products {
			if p.KeyAttr == target.KeyAttr && p.Key == target.Key {
				n++
			}
		}
		return n
	}

	// Batch runs have no cross-batch memory: the product synthesizes in
	// both batches.
	batched, err := sys.SynthesizeBatches(waves, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	if got := countKey(batched.Total.Products); got < 2 {
		t.Fatalf("batches synthesized the split cluster %d times, want ≥ 2", got)
	}

	perWave, final := runStream(t, sys, waves, fetcher, StreamOptions{})
	if got := countKey(final.Products); got != 1 {
		t.Fatalf("stream merged view has the split cluster %d times, want 1", got)
	}
	// Wave 2 re-emits the cluster re-fused over the union of evidence —
	// identical to the one-shot product, full member list included.
	found := false
	for _, p := range perWave[1].Products {
		if p.KeyAttr == target.KeyAttr && p.Key == target.Key {
			found = true
			if fp := productFingerprints([]Synthesized{p})[0]; fp != wantFP {
				t.Errorf("wave-2 re-fusion = %s, want %s", fp, wantFP)
			}
		}
	}
	if !found {
		t.Error("wave 2 did not re-emit the extended cluster")
	}
	// And wave 1's emission was the partial state, not the union.
	if got := countKey(perWave[0].Products); got != 1 {
		t.Errorf("wave 1 emitted the cluster %d times, want 1", got)
	}
}

// TestSynthesizeStreamNotLearned mirrors the batch APIs' contract.
func TestSynthesizeStreamNotLearned(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})
	in := make(chan []Offer)
	if _, err := sys.SynthesizeStream(context.Background(), in, MapFetcher(ds.Pages), StreamOptions{}); !errors.Is(err, ErrNotLearned) {
		t.Fatalf("err = %v, want ErrNotLearned", err)
	}
}

// badOffer forges an incoming offer whose landing page cannot be fetched.
func badOffer(ds *Marketplace) Offer {
	o := ds.IncomingOffers[0].Clone()
	o.ID = "bad-offer"
	o.URL = "missing://nowhere"
	return o
}

// TestSynthesizeBatchesPartialFailure pins the fixed abort semantics:
// under StrictPages a failing batch records its error in that batch's
// Result and later batches still run.
func TestSynthesizeBatchesPartialFailure(t *testing.T) {
	ds, sys := learned(t, Config{StrictPages: true})
	fetcher := MapFetcher(ds.Pages)
	waves := contiguousWaves(ds.IncomingOffers, 2)
	batches := [][]Offer{waves[0], {badOffer(ds)}, waves[1]}

	res, err := sys.SynthesizeBatches(batches, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 || res.Failed != 1 {
		t.Fatalf("Batches = %d, Failed = %d; want 3, 1", len(res.Batches), res.Failed)
	}
	if res.Batches[0].Err != nil || res.Batches[2].Err != nil {
		t.Errorf("healthy batches failed: %v, %v", res.Batches[0].Err, res.Batches[2].Err)
	}
	if res.Batches[1].Err == nil {
		t.Fatal("bad batch recorded no error")
	}
	if res.Batches[1].Offers != 1 || len(res.Batches[1].Products) != 0 {
		t.Errorf("failed batch Result = %+v", *res.Batches[1])
	}
	if res.Total.Offers != len(ds.IncomingOffers) {
		t.Errorf("Total.Offers = %d, want %d (failed batch excluded)", res.Total.Offers, len(ds.IncomingOffers))
	}
	if len(res.Total.Products) != len(res.Batches[0].Products)+len(res.Batches[2].Products) {
		t.Error("Total.Products disagrees with the successful batches")
	}
}

// TestSynthesizeStreamPartialFailure is the same contract on the stream:
// a failing wave reports Err, contributes nothing, and the feed goes on.
func TestSynthesizeStreamPartialFailure(t *testing.T) {
	ds, sys := learned(t, Config{StrictPages: true})
	fetcher := MapFetcher(ds.Pages)
	waves := contiguousWaves(ds.IncomingOffers, 2)
	perWave, final := runStream(t, sys, [][]Offer{waves[0], {badOffer(ds)}, waves[1]}, fetcher, StreamOptions{})

	if len(perWave) != 3 {
		t.Fatalf("per-wave results = %d, want 3", len(perWave))
	}
	if perWave[0].Err != nil || perWave[2].Err != nil {
		t.Errorf("healthy waves failed: %v, %v", perWave[0].Err, perWave[2].Err)
	}
	if perWave[1].Err == nil {
		t.Fatal("bad wave recorded no error")
	}
	if final.Err != nil {
		t.Errorf("final.Err = %v", final.Err)
	}
	if final.Offers != len(ds.IncomingOffers) {
		t.Errorf("final.Offers = %d, want %d (failed wave excluded)", final.Offers, len(ds.IncomingOffers))
	}
	if len(final.Products) == 0 {
		t.Error("no products despite two healthy waves")
	}
}

// gateFetcher blocks every Fetch until released, signalling the first
// call — the hook the cancellation test uses to cancel mid-wave.
type gateFetcher struct {
	pages    MapFetcher
	inflight chan struct{}
	release  chan struct{}
	once     sync.Once
}

func newGateFetcher(pages MapFetcher) *gateFetcher {
	return &gateFetcher{pages: pages, inflight: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateFetcher) Fetch(url string) (string, error) {
	g.once.Do(func() { close(g.inflight) })
	<-g.release
	return g.pages.Fetch(url)
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (with a little slack for runtime housekeeping).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamCtxCancelNoLeak cancels the stream mid-wave — while the
// wave's page fetches are in flight — and asserts the pipeline drains
// cleanly: the result channel closes, no healthy result is fabricated,
// and every pipeline goroutine exits. The second scenario cancels while
// the consumer has stopped reading entirely, the easiest way to strand a
// sender.
func TestStreamCtxCancelNoLeak(t *testing.T) {
	ds, sys := learned(t, Config{})

	t.Run("cancel mid-wave", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		gate := newGateFetcher(MapFetcher(ds.Pages))
		in := make(chan []Offer, 1)
		out, err := sys.SynthesizeStream(ctx, in, gate, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		in <- ds.IncomingOffers[:8]
		<-gate.inflight // the wave is mid-extraction
		cancel()
		close(gate.release) // let the worker pool drain
		for r := range out {
			if r.Err == nil {
				t.Errorf("received a healthy result after cancellation: wave %d", r.Wave)
			}
		}
		waitGoroutines(t, baseline)
	})

	t.Run("cancel with absent consumer", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		gate := newGateFetcher(MapFetcher(ds.Pages))
		close(gate.release) // no blocking on fetches this time
		in := make(chan []Offer, 2)
		if _, err := sys.SynthesizeStream(ctx, in, gate, StreamOptions{}); err != nil {
			t.Fatal(err)
		}
		in <- ds.IncomingOffers[:8] // result is produced; nobody reads it
		in <- ds.IncomingOffers[8:16]
		<-gate.inflight
		cancel()
		waitGoroutines(t, baseline)
	})
}

// gateStrategy blocks every Fuse call until released, signalling the
// first call — the fuse-stage counterpart of gateFetcher.
type gateStrategy struct {
	inner    fusion.Strategy
	inflight chan struct{}
	release  chan struct{}
	once     sync.Once
}

func newGateStrategy() *gateStrategy {
	return &gateStrategy{inner: fusion.Centroid{}, inflight: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateStrategy) Fuse(candidates []string) string {
	g.once.Do(func() { close(g.inflight) })
	<-g.release
	return g.inner.Fuse(candidates)
}

// blockAfterFetcher passes the first `after` fetches through and blocks
// every later one until released, signalling the first blocked call.
type blockAfterFetcher struct {
	pages    MapFetcher
	after    int64
	calls    atomic.Int64
	inflight chan struct{}
	release  chan struct{}
	once     sync.Once
}

func newBlockAfterFetcher(pages MapFetcher, after int) *blockAfterFetcher {
	return &blockAfterFetcher{pages: pages, after: int64(after), inflight: make(chan struct{}), release: make(chan struct{})}
}

func (f *blockAfterFetcher) Fetch(url string) (string, error) {
	if f.calls.Add(1) > f.after {
		f.once.Do(func() { close(f.inflight) })
		<-f.release
	}
	return f.pages.Fetch(url)
}

// TestStreamPipelinedCancelTwoWavesInFlight is the cancellation guard for
// cross-wave pipelining: wave 1 is held mid-fuse (gated fusion strategy)
// while wave 2 is concurrently held mid-prepare (gated fetcher) — proving
// the overlap exists — then the context is cancelled with both stages
// blocked. The stream must close without a healthy result and every
// pipeline goroutine (stage boundary, both stages' worker pools) must
// exit.
func TestStreamPipelinedCancelTwoWavesInFlight(t *testing.T) {
	ds, v1 := learned(t, Config{})
	wave1 := ds.IncomingOffers[:8]
	wave2 := ds.IncomingOffers[8:16]

	// The gate only trips if wave 1 actually fuses something.
	sanity, err := v1.Synthesize(wave1, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(sanity.Products) == 0 {
		t.Fatal("wave 1 would fuse nothing; pick a different slice")
	}

	baseline := runtime.NumGoroutine()
	gate := newGateStrategy()
	fetchGate := newBlockAfterFetcher(MapFetcher(ds.Pages), len(wave1))
	sys := NewSystem(ds.Catalog, v1.Model(), WithConfig(Config{Fusion: gate}))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan []Offer, 2)
	out, err := sys.SynthesizeStream(ctx, in, fetchGate, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in <- wave1
	in <- wave2
	<-gate.inflight      // wave 1 is mid-fuse...
	<-fetchGate.inflight // ...while wave 2 is mid-prepare, concurrently
	cancel()
	close(gate.release)
	close(fetchGate.release)
	for r := range out {
		if r.Err == nil {
			t.Errorf("received a healthy result after cancellation: wave %d", r.Wave)
		}
	}
	waitGoroutines(t, baseline)
}

// TestStreamConcurrentCatalogGrowth runs AddToCatalog concurrently with
// the stream — the mid-stream commit path. Under -race this is the data
// race guard for the registry, the catalog store, and the cluster
// memory's version invalidation; in any mode it must neither panic nor
// deadlock, and the stream must still deliver every wave plus a final
// result.
func TestStreamConcurrentCatalogGrowth(t *testing.T) {
	ds, sys := learned(t, Config{})
	fetcher := MapFetcher(ds.Pages)
	nWaves := 8
	if raceEnabled {
		nWaves = 4
	}
	waves := contiguousWaves(ds.IncomingOffers, nWaves)

	in := make(chan []Offer)
	out, err := sys.SynthesizeStream(context.Background(), in, fetcher, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for _, w := range waves {
			in <- w
		}
		close(in)
	}()

	var wg sync.WaitGroup
	got := 0
	sawFinal := false
	for r := range out {
		if r.Err != nil {
			t.Errorf("wave %d: %v", r.Wave, r.Err)
		}
		if r.Final {
			sawFinal = true
			continue
		}
		got++
		if len(r.Products) > 0 {
			wg.Add(1)
			go func(wave int, products []Synthesized) {
				defer wg.Done()
				sys.AddToCatalog(products, fmt.Sprintf("grow%d", wave))
			}(r.Wave, r.Products)
		}
	}
	wg.Wait()
	if got != len(waves) || !sawFinal {
		t.Fatalf("received %d wave results (want %d), final=%v", got, len(waves), sawFinal)
	}
}

// TestSynthesizeStreamEquivalenceWithSpill is the out-of-core leg of the
// equivalence matrix: with the cluster memory squeezed to tiny RAM bounds
// but a spill store attached (the pure in-RAM reference store, and the
// real file-backed store durability uses), the streamed output must stay
// byte-identical to the one-shot Synthesize — evicted clusters park
// out-of-core and revive instead of sealing early.
func TestSynthesizeStreamEquivalenceWithSpill(t *testing.T) {
	ds, base := learned(t, Config{})
	fetcher := MapFetcher(ds.Pages)
	oneShot, err := base.Synthesize(ds.IncomingOffers, fetcher)
	if err != nil {
		t.Fatal(err)
	}
	want := productFingerprints(oneShot.Products)

	factories := []struct {
		name string
		mk   func(t *testing.T) cluster.SpillFactory
	}{
		{"memory", func(t *testing.T) cluster.SpillFactory { return cluster.MemorySpillFactory{} }},
		{"file", func(t *testing.T) cluster.SpillFactory { return durable.SpillDir{Dir: t.TempDir()} }},
	}
	bounds := []StreamOptions{
		{MaxOpenClusters: 1},
		{MaxOpenClusters: 2, MaxIdleWaves: 1},
		{MaxIdleWaves: 1},
	}

	for _, f := range factories {
		for _, opts := range bounds {
			name := fmt.Sprintf("%s/open=%d/idle=%d", f.name, opts.MaxOpenClusters, opts.MaxIdleWaves)
			cfg := Config{}
			cfg.Spill = f.mk(t)
			sys := New(ds.Catalog, cfg)
			if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 3, 7, len(ds.IncomingOffers)} {
				waves := contiguousWaves(ds.IncomingOffers, n)
				perWave, final := runStream(t, sys, waves, fetcher, opts)
				for i, r := range perWave {
					if r.Err != nil {
						t.Errorf("%s waves=%d: wave %d failed: %v", name, n, i, r.Err)
					}
				}
				got := productFingerprints(final.Products)
				if len(got) != len(want) {
					t.Fatalf("%s waves=%d: %d merged products vs %d one-shot", name, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s waves=%d: product %d differs:\n  streamed: %s\n  one-shot: %s",
							name, n, i, got[i], want[i])
					}
				}
				if final.Clusters != oneShot.Clusters || final.Offers != oneShot.Offers {
					t.Errorf("%s waves=%d: final counters %+v differ from one-shot %+v",
						name, n, final.Result, *oneShot)
				}
				// The tightest bound with many waves must actually have
				// exercised the spill path.
				if opts.MaxOpenClusters == 1 && n == len(ds.IncomingOffers) {
					saw := false
					for _, r := range perWave {
						if r.SpilledClusters > 0 {
							saw = true
							break
						}
					}
					if !saw {
						t.Errorf("%s waves=%d: spill store never held a cluster", name, n)
					}
				}
			}
		}
	}
}
