// Package lsd reimplements the instance-based Naive Bayes matcher that LSD
// (Doan, Domingos & Halevy, SIGMOD 2001) uses as a base learner, following
// the paper's Appendix C:
//
//   - One multi-class Naive Bayes classifier per category, whose classes are
//     the catalog attributes of that category and whose training documents
//     are all values of those attributes over all catalog products.
//   - For a candidate <A, B, M, C>, the score is the average posterior
//     P(A | v) over all values v of merchant attribute B in category C:
//     score = Σ_{v ∈ V} P(A|v) / |V|.
//
// Unlike the paper's own approach, no match knowledge or distributional
// similarity is used — the comparison in Figure 8 measures exactly that gap.
package lsd

import (
	"prodsynth/internal/baseline"
	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/match"
	"prodsynth/internal/ml"
	"prodsynth/internal/offer"
	"prodsynth/internal/text"
)

// Matcher is the LSD-style Naive Bayes baseline.
type Matcher struct{}

// Name implements baseline.Matcher.
func (Matcher) Name() string { return "Instance-based Naive Bayes" }

// Score implements baseline.Matcher. The matches argument is ignored.
func (Matcher) Score(store *catalog.Store, offers *offer.Set, _ *match.MatchSet) []correspond.Scored {
	// Train one classifier per category present in the offer set.
	classifiers := make(map[string]*ml.NaiveBayes)
	for _, categoryID := range offers.Categories() {
		nb := ml.NewNaiveBayes(1)
		nb.SetUniformPriors()
		for _, p := range store.ProductsInCategory(categoryID) {
			for _, av := range p.Spec {
				toks := text.DefaultTokenizer.Tokenize(av.Value)
				if len(toks) > 0 {
					nb.Train(av.Name, toks)
				}
			}
		}
		if nb.NumClasses() > 0 {
			classifiers[categoryID] = nb
		}
	}

	// Average posteriors per (key, merchant attribute): one pass over the
	// offers, caching the posterior per distinct value string.
	type agg struct {
		sums  map[string]float64 // catalog attr -> Σ P(attr|v)
		count int
	}
	aggs := make(map[offer.SchemaKey]map[string]*agg)
	postCache := make(map[string]map[string]float64) // categoryID \x00 value -> posterior

	for _, o := range offers.All() {
		nb := classifiers[o.CategoryID]
		if nb == nil {
			continue
		}
		key := offer.SchemaKey{Merchant: o.Merchant, CategoryID: o.CategoryID}
		byAttr := aggs[key]
		if byAttr == nil {
			byAttr = make(map[string]*agg)
			aggs[key] = byAttr
		}
		for _, av := range o.Spec {
			cacheKey := o.CategoryID + "\x00" + av.Value
			post, ok := postCache[cacheKey]
			if !ok {
				toks := text.DefaultTokenizer.Tokenize(av.Value)
				if len(toks) == 0 {
					post = nil
				} else {
					post = nb.Posterior(toks)
				}
				postCache[cacheKey] = post
			}
			a := byAttr[av.Name]
			if a == nil {
				a = &agg{sums: make(map[string]float64)}
				byAttr[av.Name] = a
			}
			a.count++
			for class, p := range post {
				a.sums[class] += p
			}
		}
	}

	universe := baseline.Candidates(store, offers)
	out := make([]correspond.Scored, len(universe))
	for i, c := range universe {
		var score float64
		if byAttr := aggs[c.Key]; byAttr != nil {
			if a := byAttr[c.MerchantAttr]; a != nil && a.count > 0 {
				score = a.sums[c.CatalogAttr] / float64(a.count)
			}
		}
		out[i] = correspond.Scored{Candidate: c, Score: score}
	}

	// Appendix C: a correspondence is created only when A is the argmax
	// over catalog attributes for B. We realize this as a score bonus of
	// 0 (keep raw scores) — the precision/coverage sweep naturally favors
	// argmax pairs; but to mirror the hard argmax, zero out non-argmax
	// candidates.
	best := make(map[string]float64) // key \x00 merchant attr -> max score
	for _, sc := range out {
		k := sc.Key.String() + "\x00" + sc.MerchantAttr
		if sc.Score > best[k] {
			best[k] = sc.Score
		}
	}
	for i := range out {
		k := out[i].Key.String() + "\x00" + out[i].MerchantAttr
		if out[i].Score < best[k] {
			out[i].Score = 0
		}
	}
	baseline.SortScored(out)
	return out
}

var _ baseline.Matcher = Matcher{}
