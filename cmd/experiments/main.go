// Command experiments regenerates the paper's tables and figures on a
// synthetic marketplace, plus the ablation sweeps described in DESIGN.md.
//
// Usage:
//
//	experiments -all                     # everything, default scale
//	experiments -table2 -fig6            # selected experiments
//	experiments -all -scale large        # laptop-scale corpus (slower)
//	experiments -all -seed 7 -out report.txt
//
// Output is text shaped like the paper's tables and figures (coverage /
// precision series), suitable for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"prodsynth/internal/core"
	"prodsynth/internal/experiments"
	"prodsynth/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		all     = flag.Bool("all", false, "run every experiment")
		table2  = flag.Bool("table2", false, "Table 2: end-to-end synthesis quality")
		table3  = flag.Bool("table3", false, "Table 3: per top-level category")
		table4  = flag.Bool("table4", false, "Table 4: recall by offer-set size")
		fig6    = flag.Bool("fig6", false, "Figure 6: classifier vs single features")
		fig7    = flag.Bool("fig7", false, "Figure 7: with vs without historical matches")
		fig8    = flag.Bool("fig8", false, "Figure 8: baseline comparison")
		fig9    = flag.Bool("fig9", false, "Figure 9: COMA++ delta settings")
		ablate  = flag.Bool("ablations", false, "ablation sweeps")
		scale   = flag.String("scale", "medium", "corpus scale: small, medium, large")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "pipeline worker pool size (0 = default)")
		out     = flag.String("out", "", "write report here (default stdout)")
	)
	flag.Parse()

	if !(*all || *table2 || *table3 || *table4 || *fig6 || *fig7 || *fig8 || *fig9 || *ablate) {
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	gen := scaleConfig(*scale)
	gen.Seed = *seed
	start := time.Now()
	fmt.Fprintf(w, "# prodsynth experiments — scale=%s seed=%d\n", *scale, *seed)
	fmt.Fprintf(w, "# generating marketplace: %d categories/domain, %d products/category, %d merchants\n\n",
		gen.CategoriesPerDomain, gen.ProductsPerCategory, gen.Merchants)

	env, err := experiments.Setup(gen, core.Config{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(w, "# setup done in %v: %d historical offers, %d incoming offers\n\n",
		time.Since(start).Round(time.Millisecond),
		len(env.Dataset.HistoricalOffers), len(env.Dataset.IncomingOffers))

	if *all || *table2 {
		experiments.RenderTable2(w, experiments.Table2(env))
	}
	if *all || *table3 {
		experiments.RenderTable3(w, experiments.Table3(env))
	}
	if *all || *table4 {
		heavy, light := experiments.Table4(env)
		experiments.RenderTable4(w, heavy, light)
	}
	figures := []struct {
		enabled bool
		build   func(*experiments.Env) (*experiments.Figure, error)
	}{
		{*all || *fig6, experiments.Figure6},
		{*all || *fig7, experiments.Figure7},
		{*all || *fig8, experiments.Figure8},
		{*all || *fig9, experiments.Figure9},
	}
	for _, f := range figures {
		if !f.enabled {
			continue
		}
		fig, err := f.build(env)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.RenderFigure(w, fig); err != nil {
			log.Fatal(err)
		}
	}
	if *all || *ablate {
		runAblations(w, env)
	}
	fmt.Fprintf(w, "# total %v\n", time.Since(start).Round(time.Millisecond))
}

func scaleConfig(scale string) synth.Config {
	switch scale {
	case "small":
		return synth.Config{CategoriesPerDomain: 2, ProductsPerCategory: 20, Merchants: 24}
	case "large":
		return synth.ExperimentConfig()
	default:
		return synth.Config{CategoriesPerDomain: 4, ProductsPerCategory: 60, Merchants: 60}
	}
}

func runAblations(w io.Writer, env *experiments.Env) {
	type ablation struct {
		name    string
		run     func(*experiments.Env) ([]experiments.AblationRow, error)
		metrics []string
	}
	for _, a := range []ablation{
		{"drop one feature", experiments.AblationDropFeature, nil},
		{"name-similarity feature (§7 future work)", experiments.AblationNameFeature, nil},
		{"value fusion strategy", experiments.AblationFusion, []string{"attr precision", "products"}},
		{"clustering key attributes", experiments.AblationClusterKeys, []string{"attr precision", "products"}},
		{"extraction coverage", experiments.AblationExtraction, []string{"attr precision", "products"}},
	} {
		rows, err := a.run(env)
		if err != nil {
			log.Fatal(err)
		}
		experiments.RenderAblation(w, a.name, rows, a.metrics...)
	}
}
