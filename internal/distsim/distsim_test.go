package distsim

import (
	"math"
	"testing"
	"testing/quick"

	"prodsynth/internal/text"
)

func distOf(tokens ...string) text.Distribution {
	b := text.NewBag()
	b.Add(tokens...)
	return b.Distribution()
}

func TestKLIdentical(t *testing.T) {
	p := distOf("a", "b", "b")
	if got := KL(p, p); math.Abs(got) > 1e-12 {
		t.Errorf("KL(p,p) = %g, want 0", got)
	}
}

func TestKLNonNegative(t *testing.T) {
	p := distOf("a", "b")
	q := distOf("a", "a", "b")
	if got := KL(p, q); got < 0 {
		t.Errorf("KL = %g, want >= 0", got)
	}
}

func TestKLInfiniteWhenNotDominated(t *testing.T) {
	p := distOf("a")
	q := distOf("b")
	if got := KL(p, q); !math.IsInf(got, 1) {
		t.Errorf("KL = %g, want +Inf", got)
	}
}

func TestJSIdenticalIsZero(t *testing.T) {
	// Paper Figure 5d: Speed vs RPM have identical distributions -> JS 0.00.
	speed := distOf("5400", "7200", "5400", "7200")
	rpm := distOf("5400", "7200", "5400", "7200")
	if got := JS(speed, rpm); math.Abs(got) > 1e-12 {
		t.Errorf("JS identical = %g, want 0", got)
	}
}

func TestJSDisjointIsLn2(t *testing.T) {
	// Paper Figure 5d: Speed vs Int.Type fully disjoint -> JS 0.69 (= ln 2).
	p := distOf("5400", "7200")
	q := distOf("ata", "ide", "133")
	if got := JS(p, q); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("JS disjoint = %g, want ln2=%g", got, math.Ln2)
	}
}

func TestJSPaperInterfaceExample(t *testing.T) {
	// Figure 5c/5d: Interface vs Int. Type -> 0.13 in the paper.
	iface := distOf("ata", "100", "ide", "133", "ide", "133", "ata", "133")
	intType := distOf("ata", "100", "mb", "s", "ide", "133", "mb", "s", "ide", "133", "mb", "s", "ata", "133", "mb", "s")
	got := JS(iface, intType)
	if got <= 0 || got >= 0.3 {
		t.Errorf("JS(Interface, Int.Type) = %g, want small positive (~0.13)", got)
	}
	// And it must be far closer than Interface vs RPM.
	rpm := distOf("5400", "7200", "5400", "7200")
	if far := JS(iface, rpm); far <= got {
		t.Errorf("JS(Interface,RPM)=%g should exceed JS(Interface,Int.Type)=%g", far, got)
	}
}

func TestJSSymmetricAndBounded(t *testing.T) {
	f := func(xs, ys []string) bool {
		p, q := distOf(xs...), distOf(ys...)
		a, b := JS(p, q), JS(q, p)
		return math.Abs(a-b) < 1e-9 && a >= 0 && a <= math.Ln2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSEmpty(t *testing.T) {
	empty := distOf()
	p := distOf("a")
	if got := JS(empty, p); got != math.Ln2 {
		t.Errorf("JS(empty,p) = %g, want ln2", got)
	}
	if got := JS(empty, empty); got != math.Ln2 {
		t.Errorf("JS(empty,empty) = %g, want ln2", got)
	}
}

func TestJSSimilarityOrientation(t *testing.T) {
	same := JSSimilarity(distOf("a", "b"), distOf("a", "b"))
	diff := JSSimilarity(distOf("a", "b"), distOf("c", "d"))
	if same <= diff {
		t.Errorf("similarity orientation wrong: same=%g diff=%g", same, diff)
	}
	if math.Abs(same-1) > 1e-9 || math.Abs(diff) > 1e-9 {
		t.Errorf("bounds wrong: same=%g diff=%g", same, diff)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"speed", "spend", 1},
		{"resolution", "resolutions", 1},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		// Keep inputs short so quick doesn't explode runtime.
		if len(a) > 20 || len(b) > 20 || len(c) > 20 {
			return true
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("EditSimilarity empty = %g, want 1", got)
	}
	if got := EditSimilarity("abc", "abc"); got != 1 {
		t.Errorf("identical = %g, want 1", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %g, want 0", got)
	}
}

func TestJaro(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444},
		{"DIXON", "DICKSONX", 0.766667},
		{"", "", 1},
		{"a", "", 0},
		{"same", "same", 1},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("Jaro(%q,%q) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinkler(t *testing.T) {
	// Standard reference value.
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-0.961111) > 1e-4 {
		t.Errorf("JaroWinkler(MARTHA,MARHTA) = %g, want 0.961111", got)
	}
	// Prefix boost: shared prefix must not lower the score.
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		jw := JaroWinkler(a, b)
		return jw >= Jaro(a, b)-1e-12 && jw <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNGrams(t *testing.T) {
	g := NGrams("abcd", 3)
	if len(g) != 2 || !g["abc"] || !g["bcd"] {
		t.Errorf("NGrams(abcd,3) = %v", g)
	}
	short := NGrams("ab", 3)
	if len(short) != 1 || !short["ab"] {
		t.Errorf("NGrams(ab,3) = %v", short)
	}
	if len(NGrams("", 3)) != 0 {
		t.Errorf("NGrams empty should be empty")
	}
}

func TestTrigramSimilarity(t *testing.T) {
	if got := TrigramSimilarity("capacity", "capacity"); got != 1 {
		t.Errorf("identical = %g, want 1", got)
	}
	if got := TrigramSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint = %g, want 0", got)
	}
	// "Memory Technology" vs "Graphic Technology": similar names, the
	// COMA++ false-positive case cited in §5.2 — must score mid-high.
	got := TrigramSimilarity("Memory Technology", "Graphic Technology")
	if got < 0.3 || got > 0.95 {
		t.Errorf("TrigramSimilarity = %g, want mid-range", got)
	}
}

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	c.AddDocument("ata 100")
	c.AddDocument("ata 133")
	c.AddDocument("ide 133")
	if c.NumDocs() != 3 {
		t.Fatalf("NumDocs = %d", c.NumDocs())
	}
	// "ata" appears in 2 docs, "ide" in 1 -> IDF(ide) > IDF(ata).
	if c.IDF("ide") <= c.IDF("ata") {
		t.Errorf("IDF ordering wrong: ide=%g ata=%g", c.IDF("ide"), c.IDF("ata"))
	}
	// Unknown terms get max IDF.
	if c.IDF("zzz") < c.IDF("ide") {
		t.Errorf("unknown IDF should be maximal")
	}
}

func TestVectorizeUnitNorm(t *testing.T) {
	c := NewCorpus()
	c.AddDocument("seagate barracuda 5400")
	c.AddDocument("western digital raptor")
	v := c.Vectorize("seagate barracuda hd")
	var norm float64
	for _, w := range v {
		norm += w * w
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("vector norm^2 = %g, want 1", norm)
	}
}

func TestCosine(t *testing.T) {
	c := NewCorpus()
	for _, d := range []string{"a b c", "a b", "c d", "x y"} {
		c.AddDocument(d)
	}
	va := c.Vectorize("a b c")
	if got := Cosine(va, va); math.Abs(got-1) > 1e-9 {
		t.Errorf("self cosine = %g, want 1", got)
	}
	vd := c.Vectorize("x y")
	if got := Cosine(va, vd); got != 0 {
		t.Errorf("disjoint cosine = %g, want 0", got)
	}
}

func TestSoftTFIDF(t *testing.T) {
	c := NewCorpus()
	for _, d := range []string{
		"seagate barracuda", "seagate momentus", "western digital raptor",
		"hitachi deskstar", "seagate cheetah",
	} {
		c.AddDocument(d)
	}
	s := SoftTFIDF{Corpus: c, Theta: 0.9}

	exact := s.Similarity("seagate barracuda", "seagate barracuda")
	if exact < 0.99 {
		t.Errorf("exact SoftTFIDF = %g, want ~1", exact)
	}
	// Typo within theta: "barracuda" vs "baracuda" are JW-close.
	typo := s.Similarity("seagate barracuda", "seagate baracuda")
	if typo <= 0.5 || typo > 1 {
		t.Errorf("typo SoftTFIDF = %g, want high", typo)
	}
	disjoint := s.Similarity("seagate barracuda", "xorp qwty")
	if disjoint > 0.1 {
		t.Errorf("disjoint SoftTFIDF = %g, want ~0", disjoint)
	}
	if got := s.Similarity("", "anything"); got != 0 {
		t.Errorf("empty SoftTFIDF = %g, want 0", got)
	}
}

func TestSoftTFIDFBounds(t *testing.T) {
	c := NewCorpus()
	c.AddDocument("alpha beta gamma")
	c.AddDocument("delta epsilon")
	s := SoftTFIDF{Corpus: c}
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		sim := s.Similarity(a, b)
		return sim >= 0 && sim <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJS(b *testing.B) {
	p := distOf("ata", "100", "ide", "133", "ide", "133", "ata", "133")
	q := distOf("ata", "100", "mb", "s", "ide", "133", "mb", "s")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JS(p, q)
	}
}

func BenchmarkSoftTFIDF(b *testing.B) {
	c := NewCorpus()
	c.AddDocument("seagate barracuda 500gb sata")
	c.AddDocument("western digital raptor 150gb")
	s := SoftTFIDF{Corpus: c}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Similarity("seagate barracuda hd", "seagate barracuda 500 gb")
	}
}
