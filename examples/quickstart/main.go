// Quickstart: generate a small synthetic marketplace, learn attribute
// correspondences from the historical offers into an immutable Model,
// synthesize products from the incoming offers, and print what the
// pipeline produced — including the model save/load round trip and the
// catalog+model bundle a long-lived process uses to warm-start without
// re-ingesting or re-learning anything.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"prodsynth"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A marketplace: a catalog with known products, merchants with their
	// own attribute vocabularies, offer feeds, and landing pages. Half
	// the product universe is withheld from the catalog — those are the
	// products the pipeline must synthesize from offers alone.
	market := prodsynth.GenerateMarketplace(prodsynth.MarketplaceConfig{
		Seed:                42,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 20,
		Merchants:           24,
	})
	fmt.Printf("marketplace: %d categories, %d catalog products, %d historical + %d incoming offers\n\n",
		market.Catalog.NumCategories(), market.Catalog.NumProducts(),
		len(market.HistoricalOffers), len(market.IncomingOffers))

	pages := prodsynth.MapFetcher(market.Pages)

	// Offline learning (paper §3): extract specs from landing pages,
	// match historical offers to catalog products, compute distributional
	// similarity features, auto-label a training set from name-identity
	// candidates, train the classifier, select correspondences. The
	// result is an immutable Model artifact.
	model, err := prodsynth.Learn(ctx, market.Catalog, market.HistoricalOffers, pages)
	if err != nil {
		log.Fatal(err)
	}
	st := model.Stats()
	fmt.Printf("offline learning: %d/%d offers matched, %d candidate tuples,\n",
		st.MatchedOffers, st.HistoricalOffers, st.Candidates)
	fmt.Printf("  auto-labeled training set of %d (%d positive), %d correspondences selected\n\n",
		st.TrainingSize, st.TrainingPositives, st.Correspondences)

	// Models are plain values: save the artifact and warm-start from the
	// bytes instead of re-running the offline phase. (A real deployment
	// writes to a file; see SaveModel/LoadModel.)
	var snapshot bytes.Buffer
	if err := prodsynth.SaveModel(&snapshot, model); err != nil {
		log.Fatal(err)
	}
	reloaded, err := prodsynth.LoadModel(bytes.NewReader(snapshot.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model snapshot: %d bytes, round-trips to %d correspondences\n\n",
		snapshot.Len(), reloaded.Stats().Correspondences)

	// A few learned renamings (skipping trivial identities).
	fmt.Println("sample learned correspondences (merchant attr -> catalog attr):")
	shown := 0
	for _, c := range model.Correspondences() {
		if c.MerchantAttr == c.CatalogAttr {
			continue
		}
		fmt.Printf("  %-22s -> %-18s score %.2f  (%s)\n",
			c.MerchantAttr, c.CatalogAttr, c.Score, c.Key)
		if shown++; shown == 5 {
			break
		}
	}

	// Runtime pipeline (paper §4): a System serves synthesis over the
	// catalog with the loaded model — it cannot exist "unlearned".
	sys := prodsynth.NewSystem(market.Catalog, reloaded)
	res, err := sys.SynthesizeContext(ctx, market.IncomingOffers, pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized %d products (%d pairs mapped, %d noise pairs dropped)\n\n",
		len(res.Products), res.PairsMapped, res.PairsDropped)

	for i, p := range res.Products {
		if i == 3 {
			break
		}
		fmt.Printf("product in %s (from %d offers, key %s=%s):\n",
			p.CategoryID, len(p.OfferIDs), p.KeyAttr, p.Key)
		for _, av := range p.Spec {
			fmt.Printf("  %-22s %s\n", av.Name, av.Value)
		}
		fmt.Println()
	}

	// Grow the catalog with the synthesized products.
	report := sys.AddToCatalog(res.Products, "synth")
	fmt.Printf("catalog grew to %d products (+%d, %d key collisions, %d key shadowed, %d schema violations)\n\n",
		market.Catalog.NumProducts(), report.Added,
		len(report.KeyCollisions), len(report.KeyShadowed), len(report.SchemaViolations))

	// Finally, the full warm start: one bundle artifact carries the grown
	// catalog AND the model, so another process boots with zero catalog
	// re-ingestion and zero re-learning — LoadBundle then NewSystem.
	var bundle bytes.Buffer
	if err := prodsynth.SaveBundle(&bundle, market.Catalog, reloaded); err != nil {
		log.Fatal(err)
	}
	store2, model2, err := prodsynth.LoadBundle(bytes.NewReader(bundle.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle snapshot: %d bytes; a fresh process loads %d categories, %d products, %d correspondences\n",
		bundle.Len(), store2.NumCategories(), store2.NumProducts(), model2.Stats().Correspondences)
}
