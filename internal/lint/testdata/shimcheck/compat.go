package prodsynth

// Learn is a v1 shim.
//
// Deprecated: use LearnContext.
func Learn() {}

// Synthesize is a v1 shim that lost its marker.
func Synthesize() {} // want "Synthesize in compat.go is missing its"

// helper is unexported: only the exported shim surface needs markers.
func helper() {}
