package catalog

import "sync"

type registry struct {
	mu   sync.Mutex
	keys []string
}

// publish copies under the lock and sends after release — the repo's
// pattern for getting data out of a critical section.
func (r *registry) publish(ch chan []string) {
	r.mu.Lock()
	keys := append([]string(nil), r.keys...)
	r.mu.Unlock()
	ch <- keys
}

type observer interface {
	ObserveAppend(key string)
}

// add invokes the Observe* commit hook under the lock: the documented
// catalog.Observer exception.
func (r *registry) add(obs observer, key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys = append(r.keys, key)
	obs.ObserveAppend(key)
}
