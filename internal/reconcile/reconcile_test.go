package reconcile

import (
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/offer"
)

func testSet() *correspond.Set {
	key := offer.SchemaKey{Merchant: "hdshop", CategoryID: "hd"}
	set := correspond.NewSet()
	set.Add(correspond.Scored{Candidate: correspond.Candidate{Key: key, CatalogAttr: "Speed", MerchantAttr: "RPM"}, Score: 0.9})
	set.Add(correspond.Scored{Candidate: correspond.Candidate{Key: key, CatalogAttr: "Interface", MerchantAttr: "Int. Type"}, Score: 0.8})
	set.Add(correspond.Scored{Candidate: correspond.Candidate{Key: key, CatalogAttr: catalog.AttrMPN, MerchantAttr: "Mfr. Part #"}, Score: 0.95})
	return set
}

func TestOfferReconciliation(t *testing.T) {
	o := offer.Offer{
		ID: "o1", Merchant: "hdshop", CategoryID: "hd",
		Spec: catalog.Spec{
			{Name: "RPM", Value: "7200"},
			{Name: "Int. Type", Value: "SATA 300"},
			{Name: "Mfr. Part #", Value: "HDT725"},
			{Name: "Availability", Value: "In Stock"}, // no correspondence
		},
	}
	spec, st := Offer(o, testSet())
	if v, _ := spec.Get("Speed"); v != "7200" {
		t.Errorf("Speed = %q", v)
	}
	if v, _ := spec.Get("Interface"); v != "SATA 300" {
		t.Errorf("Interface = %q", v)
	}
	if v, _ := spec.Get(catalog.AttrMPN); v != "HDT725" {
		t.Errorf("MPN = %q", v)
	}
	if _, ok := spec.Get("Availability"); ok {
		t.Error("noise pair not dropped")
	}
	if st.PairsIn != 4 || st.PairsMapped != 3 || st.PairsDropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOfferWrongMerchantDropsAll(t *testing.T) {
	o := offer.Offer{
		ID: "o1", Merchant: "other", CategoryID: "hd",
		Spec: catalog.Spec{{Name: "RPM", Value: "7200"}},
	}
	spec, st := Offer(o, testSet())
	if len(spec) != 0 || st.PairsDropped != 1 {
		t.Errorf("spec = %v, stats = %+v", spec, st)
	}
}

func TestOfferDuplicateTargetFirstWins(t *testing.T) {
	key := offer.SchemaKey{Merchant: "m", CategoryID: "c"}
	set := correspond.NewSet()
	set.Add(correspond.Scored{Candidate: correspond.Candidate{Key: key, CatalogAttr: "Speed", MerchantAttr: "RPM"}, Score: 0.9})
	set.Add(correspond.Scored{Candidate: correspond.Candidate{Key: key, CatalogAttr: "Speed", MerchantAttr: "Rotational Speed"}, Score: 0.8})
	o := offer.Offer{
		Merchant: "m", CategoryID: "c",
		Spec: catalog.Spec{
			{Name: "RPM", Value: "7200"},
			{Name: "Rotational Speed", Value: "9999"},
		},
	}
	spec, st := Offer(o, set)
	if v, _ := spec.Get("Speed"); v != "7200" {
		t.Errorf("Speed = %q", v)
	}
	if len(spec) != 1 || st.PairsDropped != 1 {
		t.Errorf("spec = %v, stats = %+v", spec, st)
	}
}

func TestOffersBatch(t *testing.T) {
	offers := []offer.Offer{
		{ID: "o1", Merchant: "hdshop", CategoryID: "hd",
			Spec: catalog.Spec{{Name: "RPM", Value: "5400"}}},
		{ID: "o2", Merchant: "hdshop", CategoryID: "hd",
			Spec: catalog.Spec{{Name: "Junk", Value: "x"}}},
	}
	out, st := Offers(offers, testSet())
	if len(out) != 2 {
		t.Fatalf("out = %d", len(out))
	}
	if v, _ := out[0].Spec.Get("Speed"); v != "5400" {
		t.Errorf("o1 Speed = %q", v)
	}
	if len(out[1].Spec) != 0 {
		t.Errorf("o2 spec = %v", out[1].Spec)
	}
	if st.OffersIn != 2 || st.PairsIn != 2 || st.PairsMapped != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Original offers must be untouched.
	if v, _ := offers[0].Spec.Get("RPM"); v != "5400" {
		t.Error("input mutated")
	}
}
