package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"prodsynth/internal/snapfmt"
)

// manifestName is the single mutable file in a data directory. It is
// replaced atomically (temp + rename + directory fsync); everything else
// is immutable once written.
const manifestName = "MANIFEST"

var manifestMagic = [4]byte{'P', 'S', 'M', 'F'}

const manifestVersion = 1

// ErrBadManifest is wrapped by every manifest decode failure.
var ErrBadManifest = errors.New("durable: invalid manifest")

// maxManifestPayload bounds the manifest payload length; the real
// payload is 20 bytes.
const maxManifestPayload = 1 << 16

// manifest names the live snapshot epoch and the log position it covers.
type manifest struct {
	// Epoch identifies the live shard snapshot files
	// (shard-<i>-<Epoch>.psct); 1 is the first compaction.
	Epoch uint64
	// Shards is how many shard snapshot files the epoch has.
	Shards uint32
	// FirstSeq is the first log segment the snapshots do NOT cover:
	// recovery replays segments >= FirstSeq, and compaction deletes
	// segments < FirstSeq.
	FirstSeq uint64
}

// snapName is the immutable per-shard snapshot file of one epoch.
func snapName(shard int, epoch uint64) string {
	return fmt.Sprintf("shard-%d-%d.psct", shard, epoch)
}

// writeManifest atomically replaces the manifest: frame to a temp file,
// fsync it, rename over MANIFEST, fsync the directory. A crash anywhere
// in between leaves the old manifest (and its still-undeleted files)
// fully intact.
func writeManifest(dir string, m manifest) error {
	var p snapfmt.Writer
	p.U64(m.Epoch)
	p.U32(m.Shards)
	p.U64(m.FirstSeq)
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := snapfmt.Encode(f, manifestMagic, manifestVersion, maxManifestPayload, p.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// readManifest loads the manifest; ok is false when none exists yet
// (a fresh data directory).
func readManifest(dir string) (m manifest, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	defer f.Close()
	tr := snapfmt.TrackOffset(f)
	payload, err := snapfmt.Decode(tr, manifestMagic, manifestVersion, maxManifestPayload, ErrBadManifest)
	if err != nil {
		return manifest{}, false, err
	}
	if err := snapfmt.ExpectEOF(tr, ErrBadManifest); err != nil {
		return manifest{}, false, err
	}
	d := snapfmt.NewReader(payload, ErrBadManifest)
	m.Epoch = d.U64()
	m.Shards = d.U32()
	m.FirstSeq = d.U64()
	if err := d.Finish(); err != nil {
		return manifest{}, false, err
	}
	if m.Epoch == 0 || m.Shards == 0 {
		return manifest{}, false, fmt.Errorf("%w: zero epoch or shard count", ErrBadManifest)
	}
	return m, true, nil
}
