package distsim

import (
	"math"

	"prodsynth/internal/text"
)

// Corpus accumulates document frequencies so that TF-IDF weights can be
// computed for SoftTFIDF and for the COMA++-style instance matcher. A
// "document" is one attribute value (a short string); term frequencies are
// computed per value at comparison time.
//
// Corpus is not safe for concurrent mutation; build it fully before sharing.
type Corpus struct {
	docFreq map[string]int
	numDocs int
	tok     text.Tokenizer
}

// NewCorpus returns an empty corpus using the default tokenizer.
func NewCorpus() *Corpus {
	return &Corpus{docFreq: make(map[string]int)}
}

// AddDocument records one value into the document-frequency statistics.
func (c *Corpus) AddDocument(value string) {
	c.numDocs++
	seen := make(map[string]bool)
	for _, t := range c.tok.Tokenize(value) {
		if !seen[t] {
			seen[t] = true
			c.docFreq[t]++
		}
	}
}

// NumDocs returns the number of documents added.
func (c *Corpus) NumDocs() int { return c.numDocs }

// IDF returns the smoothed inverse document frequency of term t:
// log(1 + N/df). Unknown terms get the maximum IDF log(1+N).
func (c *Corpus) IDF(t string) float64 {
	if c.numDocs == 0 {
		return 0
	}
	df := c.docFreq[t]
	if df == 0 {
		df = 1
	}
	return math.Log(1 + float64(c.numDocs)/float64(df))
}

// Vector is a sparse TF-IDF vector with unit L2 norm (unless empty).
type Vector map[string]float64

// Vectorize converts a value into a normalized TF-IDF vector.
func (c *Corpus) Vectorize(value string) Vector {
	tf := make(map[string]int)
	for _, t := range c.tok.Tokenize(value) {
		tf[t]++
	}
	v := make(Vector, len(tf))
	var norm float64
	for t, n := range tf {
		w := float64(n) * c.IDF(t)
		v[t] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for t := range v {
			v[t] /= norm
		}
	}
	return v
}

// Cosine returns the cosine similarity of two normalized vectors.
func Cosine(a, b Vector) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var dot float64
	for t, wa := range a {
		if wb, ok := b[t]; ok {
			dot += wa * wb
		}
	}
	// Clamp rounding overshoot.
	if dot > 1 {
		return 1
	}
	if dot < 0 {
		return 0
	}
	return dot
}

// SoftTFIDF computes the SoftTFIDF similarity of two values per Cohen,
// Ravikumar & Fienberg: like TF-IDF cosine, but tokens need not match
// exactly — a pair of tokens (s, t) with JaroWinkler(s,t) ≥ θ contributes
// weight(s)·weight(t)·sim(s,t) using the closest partner. DUMAS uses this as
// its field-value similarity (paper Appendix C).
type SoftTFIDF struct {
	Corpus *Corpus
	// Theta is the secondary-similarity threshold; Cohen et al. use 0.9.
	Theta float64
}

// Similarity returns the SoftTFIDF similarity of values a and b in [0,1].
func (s SoftTFIDF) Similarity(a, b string) float64 {
	theta := s.Theta
	if theta == 0 {
		theta = 0.9
	}
	va := s.Corpus.Vectorize(a)
	vb := s.Corpus.Vectorize(b)
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	var sum float64
	for ta, wa := range va {
		best := 0.0
		var bestW float64
		for tb, wb := range vb {
			var sim float64
			if ta == tb {
				sim = 1
			} else {
				sim = JaroWinkler(ta, tb)
			}
			if sim >= theta && sim > best {
				best = sim
				bestW = wb
			}
		}
		if best > 0 {
			sum += wa * bestW * best
		}
	}
	if sum > 1 {
		return 1
	}
	return sum
}
