package prodsynth

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prodsynth/internal/snapfmt"
)

// handBuiltCatalog constructs a fully deterministic catalog without the
// generator: fixed categories, products with and without keys, a shadowed
// key, and unicode values, so its encoded bytes are stable across
// platforms — the golden file pins the on-disk format itself.
func handBuiltCatalog(t *testing.T) *Catalog {
	t.Helper()
	store := NewCatalog()
	if err := store.AddCategory(Category{
		ID: "computing/hard-drives", Name: "Hard Drives", TopLevel: "Computing",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Capacity", Kind: KindNumeric, Unit: "GB"},
			{Name: AttrMPN, Kind: KindIdentifier},
			{Name: AttrUPC, Kind: KindIdentifier},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddCategory(Category{
		ID: "cameras/digital", Name: "Digital Cameras", TopLevel: "Cameras",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Description", Kind: KindText},
			{Name: AttrMPN, Kind: KindIdentifier},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	add := func(p Product) {
		t.Helper()
		if _, err := store.AddProductOutcome(p); err != nil {
			t.Fatal(err)
		}
	}
	add(Product{ID: "hd1", CategoryID: "computing/hard-drives", Spec: Spec{
		{Name: "Brand", Value: "Seagate"},
		{Name: "Capacity", Value: "500"},
		{Name: AttrMPN, Value: "ST3500"},
	}})
	add(Product{ID: "hd2", CategoryID: "computing/hard-drives", Spec: Spec{
		{Name: "Brand", Value: "Hitachi"},
		{Name: AttrMPN, Value: "ST3500"}, // shadowed by hd1
	}})
	add(Product{ID: "hd3", CategoryID: "computing/hard-drives", Spec: Spec{
		{Name: "Capacity", Value: "750"}, // keyless
	}})
	add(Product{ID: "cam1", CategoryID: "cameras/digital", Spec: Spec{
		{Name: "Brand", Value: "Canon"},
		{Name: "Description", Value: "compact µFour-Thirds ✓"},
		{Name: AttrMPN, Value: "PSX-100"},
	}})
	return store
}

func saveCatalogBytes(t *testing.T, store *Catalog) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, store); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCatalogRoundTrip is the acceptance test for the catalog half of
// warm start: a catalog populated in one process, saved, and loaded by a
// "fresh process" — simulated by LoadCatalog from bytes, with nothing
// shared — serves synthesis byte-identically to the original store,
// reports identical CategoryVersion values, and keeps ProductsSince
// deltas working across the boundary.
func TestCatalogRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds := marketplace(t)
	model, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := NewSystem(ds.Catalog, model).SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}

	raw := saveCatalogBytes(t, ds.Catalog)
	loaded, err := LoadCatalog(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	// Behavioral identity: every category agrees on version, product set,
	// and insertion order.
	cats := ds.Catalog.Categories()
	if got := loaded.Categories(); len(got) != len(cats) {
		t.Fatalf("categories: %d loaded vs %d original", len(got), len(cats))
	}
	for _, c := range cats {
		if gv, wv := loaded.CategoryVersion(c.ID), ds.Catalog.CategoryVersion(c.ID); gv != wv {
			t.Errorf("CategoryVersion(%s) = %d loaded vs %d original", c.ID, gv, wv)
		}
		want, wantV := ds.Catalog.ProductsInCategoryVersioned(c.ID)
		got, gotV := loaded.ProductsInCategoryVersioned(c.ID)
		if gotV != wantV || len(got) != len(want) {
			t.Fatalf("category %s: %d products at v%d loaded vs %d at v%d", c.ID, len(got), gotV, len(want), wantV)
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Spec.String() != want[i].Spec.String() {
				t.Errorf("category %s product %d differs after load", c.ID, i)
			}
		}
		// ProductsSince works on the loaded store from any persisted version.
		if wantV > 0 {
			delta, v, ok := loaded.ProductsSince(c.ID, wantV-1)
			if !ok || v != wantV || len(delta) != 1 || delta[0].ID != want[len(want)-1].ID {
				t.Errorf("ProductsSince(%s, %d) after load = %v, %d, %v", c.ID, wantV-1, delta, v, ok)
			}
		}
	}

	// The fresh process synthesizes byte-identically over the loaded
	// catalog (model arrives through its own snapshot, as a daemon would).
	loadedModel, err := LoadModel(bytes.NewReader(saveToBytes(t, model)))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSystem(loaded, loadedModel).SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	want, got := productFingerprints(inMem.Products), productFingerprints(fresh.Products)
	if len(got) != len(want) {
		t.Fatalf("loaded catalog synthesized %d products, in-memory %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("product %d differs:\n  loaded:    %s\n  in-memory: %s", i, got[i], want[i])
		}
	}
	if fresh.ExcludedMatched != inMem.ExcludedMatched || fresh.PairsMapped != inMem.PairsMapped {
		t.Errorf("counters differ: loaded %+v vs in-memory %+v", *fresh, *inMem)
	}

	// Determinism: save→load→save is byte-identical.
	if again := saveCatalogBytes(t, loaded); !bytes.Equal(again, raw) {
		t.Error("re-encoding a loaded catalog changed the bytes")
	}

	// Growth after load keeps the versioned delta surface alive: the
	// loaded store picks up where the original's append log left off.
	report := NewSystem(loaded, loadedModel).AddToCatalog(fresh.Products, "synth")
	if report.Added == 0 {
		t.Fatalf("nothing added to loaded catalog: %+v", report)
	}
}

// TestLoadCatalogStrict pins the decode error paths: every corruption
// mode errors with ErrBadCatalog, never a panic or a partial store.
func TestLoadCatalogStrict(t *testing.T) {
	valid := saveCatalogBytes(t, handBuiltCatalog(t))
	mutate := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:10]},
		{"bad magic", mutate(0)},
		{"bad version", mutate(4)},
		{"bad length", mutate(8)},
		{"bad checksum", mutate(16)},
		{"corrupt payload", mutate(len(valid) - 1)},
		{"truncated payload", valid[:len(valid)-7]},
		{"trailing data", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store, err := LoadCatalog(bytes.NewReader(tc.data))
			if !errors.Is(err, ErrBadCatalog) {
				t.Fatalf("err = %v, want ErrBadCatalog", err)
			}
			if store != nil {
				t.Fatal("corrupt input returned a non-nil store")
			}
		})
	}
}

// TestCatalogGoldenSnapshot pins the on-disk catalog format: the
// hand-built store must encode to exactly the checked-in golden file, so
// any format change forces a deliberate version bump. Refresh with
// -update-golden.
func TestCatalogGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "catalog_v1.golden")
	raw := saveCatalogBytes(t, handBuiltCatalog(t))
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("encoded catalog (%d bytes) differs from golden file (%d bytes); "+
			"if the format change is intentional, bump catalog.SnapshotVersion and run with -update-golden",
			len(raw), len(want))
	}
	// And the golden bytes decode to a store that still serves.
	store, err := LoadCatalog(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if store.NumCategories() != 2 || store.NumProducts() != 4 {
		t.Errorf("golden catalog has %d categories, %d products", store.NumCategories(), store.NumProducts())
	}
	if p, ok := store.ProductByKey("ST3500"); !ok || p.ID != "hd1" {
		t.Errorf("golden catalog ProductByKey(ST3500) = %+v, %v; want hd1", p, ok)
	}
	if v := store.CategoryVersion("computing/hard-drives"); v != 3 {
		t.Errorf("golden catalog CategoryVersion = %d, want 3", v)
	}
}

// TestBundleRoundTrip proves one artifact carries both halves: a bundle
// saved from a learned system and loaded into a "fresh process" yields a
// store and model that synthesize byte-identically — the zero-reingestion,
// zero-relearning cold start.
func TestBundleRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds := marketplace(t)
	model, err := Learn(ctx, ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := NewSystem(ds.Catalog, model).SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveBundle(&buf, ds.Catalog, model); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	store, loaded, err := LoadBundle(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if store.NumProducts() != ds.Catalog.NumProducts() {
		t.Fatalf("bundle store has %d products, want %d", store.NumProducts(), ds.Catalog.NumProducts())
	}
	fresh, err := NewSystem(store, loaded).SynthesizeContext(ctx, ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	want, got := productFingerprints(inMem.Products), productFingerprints(fresh.Products)
	if len(got) != len(want) {
		t.Fatalf("bundle synthesized %d products, in-memory %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("product %d differs:\n  bundle:    %s\n  in-memory: %s", i, got[i], want[i])
		}
	}

	// Determinism: save→load→save is byte-identical.
	var again bytes.Buffer
	if err := SaveBundle(&again, store, loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), raw) {
		t.Error("re-encoding a loaded bundle changed the bytes")
	}
}

// TestLoadBundleStrict pins the bundle decode error paths, including that
// a corrupt half keeps wrapping its own sentinel alongside ErrBadBundle.
func TestLoadBundleStrict(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveBundle(&buf, handBuiltCatalog(t), handBuiltModel()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	mutate := func(i int) []byte {
		b := append([]byte(nil), valid...)
		b[i] ^= 0xFF
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", valid[:10]},
		{"bad magic", mutate(0)},
		{"bad version", mutate(4)},
		{"bad length", mutate(8)},
		{"bad checksum", mutate(16)},
		{"corrupt payload", mutate(len(valid) - 1)},
		{"truncated payload", valid[:len(valid)-7]},
		{"trailing data", append(append([]byte(nil), valid...), 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store, m, err := LoadBundle(bytes.NewReader(tc.data))
			if !errors.Is(err, ErrBadBundle) {
				t.Fatalf("err = %v, want ErrBadBundle", err)
			}
			if store != nil || m != nil {
				t.Fatal("corrupt input returned non-nil state")
			}
		})
	}

	// A payload that is a catalog block with no model half fails as a
	// truncated model half, still wrapping ErrBadModel.
	catOnly := saveCatalogBytes(t, handBuiltCatalog(t))
	// Hand-frame a bundle whose payload is only the catalog block.
	short := frameBundlePayload(t, catOnly)
	if _, _, err := LoadBundle(bytes.NewReader(short)); !errors.Is(err, ErrBadBundle) || !errors.Is(err, ErrBadModel) {
		t.Fatalf("catalog-only bundle err = %v, want ErrBadBundle wrapping ErrBadModel", err)
	}
	// And a bundle whose catalog half is corrupt reports ErrBadCatalog.
	corruptCat := append([]byte(nil), catOnly...)
	corruptCat[len(corruptCat)-1] ^= 0xFF
	var modelBuf bytes.Buffer
	if err := SaveModel(&modelBuf, handBuiltModel()); err != nil {
		t.Fatal(err)
	}
	bad := frameBundlePayload(t, append(corruptCat, modelBuf.Bytes()...))
	if _, _, err := LoadBundle(bytes.NewReader(bad)); !errors.Is(err, ErrBadBundle) || !errors.Is(err, ErrBadCatalog) {
		t.Fatalf("corrupt-catalog bundle err = %v, want ErrBadBundle wrapping ErrBadCatalog", err)
	}
}

// TestLoadErrorsCarryByteOffsets pins the debuggability fix for corrupt
// multi-gigabyte artifacts: LoadCatalog and LoadBundle errors name the
// byte offset of the bad frame — absolute file coordinates, even for the
// blocks embedded in a bundle payload.
func TestLoadErrorsCarryByteOffsets(t *testing.T) {
	valid := saveCatalogBytes(t, handBuiltCatalog(t))

	// Truncated catalog: the frame starts at byte 0 and the error says
	// exactly where the input ran out.
	cut := len(valid) - 7
	_, err := LoadCatalog(bytes.NewReader(valid[:cut]))
	if err == nil {
		t.Fatal("truncated catalog loaded")
	}
	for _, want := range []string{"frame at byte 0", fmt.Sprintf("input ends at byte %d", cut)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("truncated catalog error %q does not mention %q", err, want)
		}
	}

	// A bundle whose model half is truncated: the error locates the model
	// frame at its absolute offset — outer header + catalog block.
	var modelBuf bytes.Buffer
	if err := SaveModel(&modelBuf, handBuiltModel()); err != nil {
		t.Fatal(err)
	}
	mb := modelBuf.Bytes()
	payload := append(append([]byte(nil), valid...), mb[:len(mb)-3]...)
	_, _, err = LoadBundle(bytes.NewReader(frameBundlePayload(t, payload)))
	if err == nil {
		t.Fatal("truncated bundle loaded")
	}
	wantOff := fmt.Sprintf("frame at byte %d", snapfmt.HeaderSize+len(valid))
	if !strings.Contains(err.Error(), wantOff) {
		t.Errorf("truncated-model bundle error %q does not mention %q", err, wantOff)
	}

	// Garbage where the catalog half should start: located right after
	// the outer header.
	_, _, err = LoadBundle(bytes.NewReader(frameBundlePayload(t, []byte("not a catalog block at all"))))
	if err == nil {
		t.Fatal("garbage bundle loaded")
	}
	wantOff = fmt.Sprintf("frame at byte %d", snapfmt.HeaderSize)
	if !strings.Contains(err.Error(), wantOff) {
		t.Errorf("garbage-catalog bundle error %q does not mention %q", err, wantOff)
	}
}

// frameBundlePayload wraps raw bytes in a valid outer bundle frame, so
// tests can drive the inner-half error paths past the checksum.
func frameBundlePayload(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapfmt.Encode(&buf, bundleMagic, BundleFormatVersion, maxBundlePayload, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadCatalog proves corrupt or truncated catalog snapshots error
// cleanly: no panic, no partial store, and any input that does decode
// re-encodes canonically and re-decodes stably.
func FuzzLoadCatalog(f *testing.F) {
	store := NewCatalog()
	if err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives", TopLevel: "Computing",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: AttrMPN, Kind: KindIdentifier},
		}},
	}); err != nil {
		f.Fatal(err)
	}
	if err := store.AddProduct(Product{ID: "p1", CategoryID: "hd", Spec: Spec{
		{Name: "Brand", Value: "Seagate"}, {Name: AttrMPN, Value: "ST3500"}}}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, store); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...))
	f.Add([]byte{})
	f.Add([]byte("PSCT junk that is not a snapshot"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := LoadCatalog(bytes.NewReader(data))
		if err != nil {
			if st != nil {
				t.Fatal("error with non-nil store")
			}
			return
		}
		var out bytes.Buffer
		if err := SaveCatalog(&out, st); err != nil {
			t.Fatalf("re-encoding a decoded catalog failed: %v", err)
		}
		st2, err := LoadCatalog(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded catalog failed: %v", err)
		}
		var out2 bytes.Buffer
		if err := SaveCatalog(&out2, st2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatal("canonical re-encoding is not a fixed point")
		}
	})
}
