package cluster

import "fmt"

// MemorySpill is the reference SpillStore: a map. It moves nothing out
// of RAM — its point is semantics, not capacity — serving as the
// equivalence-test oracle for real spill stores and as a stand-in where
// durability is configured off. Refs are never reused, so a stale ref
// from a revived cluster cannot alias a later spill.
type MemorySpill struct {
	clusters map[int64]Spilled
	index    map[string]int64
	nextRef  int64
}

// NewMemorySpill returns an empty in-RAM spill store.
func NewMemorySpill() *MemorySpill {
	return &MemorySpill{
		clusters: make(map[int64]Spilled),
		index:    make(map[string]int64),
	}
}

// Spill implements SpillStore.
func (s *MemorySpill) Spill(sp Spilled) error {
	ref := s.nextRef
	s.nextRef++
	s.clusters[ref] = sp
	for _, k := range sp.Keys {
		s.index[k] = ref
	}
	return nil
}

// Lookup implements SpillStore.
func (s *MemorySpill) Lookup(key string) (int64, bool) {
	ref, ok := s.index[key]
	return ref, ok
}

// Revive implements SpillStore.
func (s *MemorySpill) Revive(ref int64) (Spilled, error) {
	sp, ok := s.clusters[ref]
	if !ok {
		return Spilled{}, errSpillRef(ref)
	}
	delete(s.clusters, ref)
	for _, k := range sp.Keys {
		if s.index[k] == ref {
			delete(s.index, k)
		}
	}
	return sp, nil
}

// All implements SpillStore.
func (s *MemorySpill) All() ([]Spilled, error) {
	out := make([]Spilled, 0, len(s.clusters))
	for _, sp := range s.clusters {
		out = append(out, sp)
	}
	return out, nil
}

// Len implements SpillStore.
func (s *MemorySpill) Len() int { return len(s.clusters) }

// Close implements SpillStore.
func (s *MemorySpill) Close() error { return nil }

// MemorySpillFactory hands every stream its own MemorySpill.
type MemorySpillFactory struct{}

// NewSpill implements SpillFactory.
func (MemorySpillFactory) NewSpill() (SpillStore, error) { return NewMemorySpill(), nil }

func errSpillRef(ref int64) error {
	return fmt.Errorf("cluster: no spilled cluster at ref %d", ref)
}
