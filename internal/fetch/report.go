package fetch

import (
	"fmt"
	"strings"
)

// Counters are the resilience layer's fetch-operation counts. One
// "operation" is one logical page fetch (one offer URL); an operation
// spans up to Policy.MaxAttempts attempts. Counters are cumulative over a
// Resilient's lifetime; per-run and per-wave figures are deltas between
// snapshots (Sub).
type Counters struct {
	// Attempted counts fetch operations started.
	Attempted int
	// Attempts counts individual attempts that reached the underlying
	// fetcher (Attempted == Attempts when nothing retried; breaker
	// rejections reach no fetcher and are not attempts).
	Attempts int
	// Retried counts operations that needed more than one attempt.
	Retried int
	// Recovered counts operations that failed at least once and then
	// succeeded — the fetches retries saved.
	Recovered int
	// GaveUp counts operations whose final outcome was an error:
	// retries exhausted, a permanent error, a breaker rejection, or
	// cancellation.
	GaveUp int
	// BreakerRejected counts operations rejected by an open circuit
	// breaker without reaching the underlying fetcher.
	BreakerRejected int
}

// Sub returns the counter delta c - prev: the activity between two
// snapshots of the same Resilient.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Attempted:       c.Attempted - prev.Attempted,
		Attempts:        c.Attempts - prev.Attempts,
		Retried:         c.Retried - prev.Retried,
		Recovered:       c.Recovered - prev.Recovered,
		GaveUp:          c.GaveUp - prev.GaveUp,
		BreakerRejected: c.BreakerRejected - prev.BreakerRejected,
	}
}

// Add folds d into c.
func (c *Counters) Add(d Counters) {
	c.Attempted += d.Attempted
	c.Attempts += d.Attempts
	c.Retried += d.Retried
	c.Recovered += d.Recovered
	c.GaveUp += d.GaveUp
	c.BreakerRejected += d.BreakerRejected
}

// CounterSource is implemented by fetchers that account their activity
// (Resilient does). The pipeline detects it by interface upgrade and
// reports per-run counter deltas instead of its own coarser tally.
type CounterSource interface {
	FetchCounters() Counters
}

// Report is the per-run fetch accounting attached to every synthesis
// result: what lenient mode would otherwise degrade silently. The
// embedded Counters cover the run's fetch operations; FeedOnly names the
// offers that proceeded on feed spec alone because their page could not
// be fetched — the run's graceful-degradation surface.
type Report struct {
	Counters
	// FeedOnly are the IDs of offers whose landing page could not be
	// fetched and that therefore went through reconciliation with their
	// feed spec only (lenient mode). Sorted; empty under StrictPages
	// (the run fails instead) and when every fetch succeeded.
	FeedOnly []string
}

// Degraded reports whether any offer in the run proceeded without its
// landing page.
func (r Report) Degraded() bool { return len(r.FeedOnly) > 0 }

// Add folds o into r (counter sums, FeedOnly concatenation in argument
// order) — the aggregation used by batch totals and the stream's final
// result.
func (r *Report) Add(o Report) {
	r.Counters.Add(o.Counters)
	r.FeedOnly = append(r.FeedOnly, o.FeedOnly...)
}

// String renders the report compactly for logs and experiment tables.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fetched %d (%d attempts", r.Attempted, r.Attempts)
	if r.Retried > 0 {
		fmt.Fprintf(&b, ", %d retried, %d recovered", r.Retried, r.Recovered)
	}
	if r.GaveUp > 0 {
		fmt.Fprintf(&b, ", %d gave up", r.GaveUp)
	}
	if r.BreakerRejected > 0 {
		fmt.Fprintf(&b, ", %d breaker-rejected", r.BreakerRejected)
	}
	b.WriteString(")")
	if len(r.FeedOnly) > 0 {
		fmt.Fprintf(&b, "; %d offers feed-only", len(r.FeedOnly))
	}
	return b.String()
}
