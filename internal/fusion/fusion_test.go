package fusion

import (
	"testing"
	"testing/quick"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/offer"
)

func TestMajorityVote(t *testing.T) {
	mv := MajorityVote{}
	if got := mv.Fuse([]string{"1024", "1024", "1024", "1024", "2048"}); got != "1024" {
		t.Errorf("got %q", got)
	}
	if got := mv.Fuse([]string{"only"}); got != "only" {
		t.Errorf("got %q", got)
	}
	// Tie: lexicographically smallest most-frequent value.
	if got := mv.Fuse([]string{"b", "a"}); got != "a" {
		t.Errorf("tie = %q", got)
	}
}

func TestCentroidPaperExample(t *testing.T) {
	// Appendix A: "Windows Vista", "Microsoft Windows Vista",
	// "Microsoft Vista" -> centroid picks "Microsoft Windows Vista".
	c := Centroid{}
	got := c.Fuse([]string{"Windows Vista", "Microsoft Windows Vista", "Microsoft Vista"})
	if got != "Microsoft Windows Vista" {
		t.Errorf("got %q, want Microsoft Windows Vista", got)
	}
}

func TestCentroidSingleCandidate(t *testing.T) {
	if got := (Centroid{}).Fuse([]string{"x"}); got != "x" {
		t.Errorf("got %q", got)
	}
}

func TestCentroidAgreesWithMajorityOnSingleTokens(t *testing.T) {
	// For single-token values the centroid generalization must behave
	// like majority voting (Appendix A motivation).
	got := (Centroid{}).Fuse([]string{"1024", "1024", "1024", "2048"})
	if got != "1024" {
		t.Errorf("got %q", got)
	}
}

func TestCentroidEmptyTokens(t *testing.T) {
	// Values that tokenize to nothing degrade to majority voting.
	got := (Centroid{}).Fuse([]string{"!!!", "???", "!!!"})
	if got != "!!!" {
		t.Errorf("got %q", got)
	}
}

func TestCentroidReturnsACandidate(t *testing.T) {
	f := func(vals []string) bool {
		if len(vals) == 0 {
			return true
		}
		got := (Centroid{}).Fuse(vals)
		for _, v := range vals {
			if v == got {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuseCluster(t *testing.T) {
	cl := cluster.Cluster{
		Key: "HDT725", KeyAttr: catalog.AttrMPN, CategoryID: "hd",
		Offers: []offer.Offer{
			{ID: "o1", Spec: catalog.Spec{
				{Name: "Capacity", Value: "500"},
				{Name: "Operating System", Value: "Windows Vista"},
			}},
			{ID: "o2", Spec: catalog.Spec{
				{Name: "Capacity", Value: "500"},
				{Name: "Operating System", Value: "Microsoft Windows Vista"},
			}},
			{ID: "o3", Spec: catalog.Spec{
				{Name: "Capacity", Value: "500 GB"},
				{Name: "Operating System", Value: "Microsoft Vista"},
				{Name: "Speed", Value: "7200"},
			}},
		},
	}
	spec := FuseCluster(cl, Centroid{})
	if v, _ := spec.Get("Capacity"); v != "500" {
		t.Errorf("Capacity = %q", v)
	}
	if v, _ := spec.Get("Operating System"); v != "Microsoft Windows Vista" {
		t.Errorf("OS = %q", v)
	}
	if v, _ := spec.Get("Speed"); v != "7200" {
		t.Errorf("Speed = %q (single-source attribute must survive)", v)
	}
	// Attributes sorted.
	if spec[0].Name != "Capacity" {
		t.Errorf("order = %v", spec.Names())
	}
}

func TestFuseClusterNilStrategyDefaultsToCentroid(t *testing.T) {
	cl := cluster.Cluster{Offers: []offer.Offer{
		{Spec: catalog.Spec{{Name: "A", Value: "x y"}}},
		{Spec: catalog.Spec{{Name: "A", Value: "x"}}},
		{Spec: catalog.Spec{{Name: "A", Value: "y"}}},
	}}
	spec := FuseCluster(cl, nil)
	if v, _ := spec.Get("A"); v != "x y" {
		t.Errorf("A = %q, want centroid pick", v)
	}
}

func TestSynthesizeAll(t *testing.T) {
	clusters := []cluster.Cluster{
		{Key: "K1", KeyAttr: catalog.AttrMPN, CategoryID: "hd", Offers: []offer.Offer{
			{ID: "o1", Spec: catalog.Spec{{Name: "Brand", Value: "Seagate"}}},
			{ID: "o2", Spec: catalog.Spec{{Name: "Brand", Value: "Seagate"}}},
		}},
		{Key: "K2", KeyAttr: catalog.AttrUPC, CategoryID: "cam", Offers: []offer.Offer{
			{ID: "o3", Spec: catalog.Spec{{Name: "Brand", Value: "Canon"}}},
		}},
	}
	prods := SynthesizeAll(clusters, Centroid{})
	if len(prods) != 2 {
		t.Fatalf("products = %d", len(prods))
	}
	if prods[0].Key != "K1" || len(prods[0].OfferIDs) != 2 {
		t.Errorf("p0 = %+v", prods[0])
	}
	if v, _ := prods[1].Spec.Get("Brand"); v != "Canon" {
		t.Errorf("p1 Brand = %q", v)
	}
}

func BenchmarkCentroidFuse(b *testing.B) {
	vals := []string{
		"Windows Vista", "Microsoft Windows Vista", "Microsoft Vista",
		"Windows Vista Home", "Microsoft Windows Vista Home Premium",
		"Vista", "Windows Vista", "Microsoft Windows Vista",
	}
	c := Centroid{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Fuse(vals)
	}
}

// TestRefuseExtendedClusterDeterministic pins the contract the streaming
// pipeline leans on: fusion is a pure function of a cluster's member
// offers, so re-fusing a cluster after it gains members (cross-batch
// cluster memory extending a wave-1 cluster in wave 2) yields exactly
// what fusing the full cluster in one shot would have — for both
// strategies, and stably across repeated calls.
func TestRefuseExtendedClusterDeterministic(t *testing.T) {
	mko := func(id string, kvs ...string) offer.Offer {
		o := offer.Offer{ID: id, CategoryID: "hd"}
		for i := 0; i+1 < len(kvs); i += 2 {
			o.Spec = append(o.Spec, catalog.AttributeValue{Name: kvs[i], Value: kvs[i+1]})
		}
		return o
	}
	members := []offer.Offer{
		mko("a", catalog.AttrUPC, "111", "Brand", "Seagate", "Capacity", "500 GB"),
		mko("b", catalog.AttrUPC, "111", "Brand", "Seagate Inc", "Capacity", "500GB"),
		mko("c", catalog.AttrUPC, "111", "Brand", "Seagate", "Interface", "SATA"),
	}
	for _, strategy := range []Strategy{Centroid{}, MajorityVote{}} {
		grown := cluster.Cluster{Key: "111", KeyAttr: catalog.AttrUPC, CategoryID: "hd"}
		var specs []string
		for _, m := range members {
			grown.Offers = append(grown.Offers, m)
			specs = append(specs, FuseCluster(grown, strategy).String())
		}
		oneShot := cluster.Cluster{Key: "111", KeyAttr: catalog.AttrUPC, CategoryID: "hd", Offers: members}
		want := FuseCluster(oneShot, strategy).String()
		if specs[len(specs)-1] != want {
			t.Errorf("%T: grown fusion = %s, one-shot = %s", strategy, specs[len(specs)-1], want)
		}
		if again := FuseCluster(oneShot, strategy).String(); again != want {
			t.Errorf("%T: repeated fusion differs: %s vs %s", strategy, again, want)
		}
	}
}
