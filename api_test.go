package prodsynth

import (
	"testing"
)

func marketplace(t *testing.T) *Marketplace {
	t.Helper()
	return GenerateMarketplace(MarketplaceConfig{
		Seed:                21,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 20,
		Merchants:           20,
	})
}

func TestSystemLifecycle(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})

	// Before Learn, accessors are inert and Synthesize fails.
	if sys.Stats() != (OfflineStats{}) {
		t.Error("Stats before Learn should be zero")
	}
	if sys.Correspondences() != nil || sys.ScoredCandidates() != nil {
		t.Error("correspondences before Learn should be nil")
	}
	if _, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages)); err == nil {
		t.Fatal("Synthesize before Learn should error")
	}

	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.TrainingSize == 0 || st.Correspondences == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(sys.Correspondences()) != st.Correspondences {
		t.Error("Correspondences length disagrees with stats")
	}
	if len(sys.ScoredCandidates()) != st.Candidates {
		t.Error("ScoredCandidates length disagrees with stats")
	}

	res, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Products) == 0 {
		t.Fatal("no products synthesized")
	}
	if res.PairsMapped == 0 || res.PairsDropped == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestAddToCatalog(t *testing.T) {
	ds := marketplace(t)
	sys := New(ds.Catalog, Config{})
	if err := sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Synthesize(ds.IncomingOffers, MapFetcher(ds.Pages))
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Catalog.NumProducts()
	added, skipped := sys.AddToCatalog(res.Products, "synth")
	if added == 0 {
		t.Fatalf("added = 0, skipped = %d", len(skipped))
	}
	if got := ds.Catalog.NumProducts(); got != before+added {
		t.Errorf("catalog grew by %d, want %d", got-before, added)
	}
	// Adding the same products again collides on IDs: all skipped.
	again, skippedAgain := sys.AddToCatalog(res.Products, "synth")
	if again != 0 || len(skippedAgain) != len(res.Products) {
		t.Errorf("re-add: added=%d skipped=%d", again, len(skippedAgain))
	}
}

func TestBuildCatalogByHand(t *testing.T) {
	store := NewCatalog()
	err := store.AddCategory(Category{
		ID: "hd", Name: "Hard Drives", TopLevel: "Computing",
		Schema: Schema{Attributes: []Attribute{
			{Name: "Brand", Kind: KindCategorical},
			{Name: "Capacity", Kind: KindNumeric, Unit: "GB"},
			{Name: AttrMPN, Kind: KindIdentifier},
			{Name: AttrUPC, Kind: KindIdentifier},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = store.AddProduct(Product{
		ID: "p1", CategoryID: "hd",
		Spec: Spec{
			{Name: "Brand", Value: "Seagate"},
			{Name: "Capacity", Value: "500"},
			{Name: AttrMPN, Value: "ST3500"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if store.NumProducts() != 1 || store.NumCategories() != 1 {
		t.Error("counts wrong")
	}
}
