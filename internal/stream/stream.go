package stream

import (
	"context"
	"time"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/core"
	"prodsynth/internal/fusion"
	"prodsynth/internal/offer"
	"prodsynth/internal/reconcile"
)

// Options tunes a streaming run. The zero value keeps unbounded cluster
// memory and an unbuffered output channel.
type Options struct {
	// MaxOpenClusters bounds the cluster memory (LRU); 0 = unbounded.
	MaxOpenClusters int
	// MaxIdleWaves expires clusters untouched for more than this many
	// waves; 0 = never. See MemoryOptions.MaxIdleWaves.
	MaxIdleWaves int
	// DisableMemory turns cross-batch cluster memory off: every wave
	// clusters independently, reproducing SynthesizeBatches semantics
	// (a product split across waves synthesizes once per wave).
	DisableMemory bool
	// Buffer is the output channel's capacity. 0 (unbuffered) applies
	// backpressure: the pipeline does not start wave n+1 until the
	// consumer has taken wave n's result.
	Buffer int
}

// Result is one emission of the streaming pipeline: per-wave results in
// input order, then exactly one closing result with Final set.
type Result struct {
	// Wave is the 0-based index of the wave this result covers. On the
	// final result it is the number of waves consumed.
	Wave int
	// Final marks the closing result emitted after the input channel
	// closes: Products holds the merged view of the stream (the final
	// fused state of every open cluster, in cluster creation order) and
	// the counters aggregate every successful wave.
	Final bool
	// Err reports a failed wave. The wave contributes nothing to cluster
	// memory or the final counters; later waves still run.
	Err error
	// Products are the fused products of every cluster this wave created
	// or extended (for an extended cluster: re-fused over the union of
	// its evidence across waves), in cluster creation order.
	Products []fusion.Synthesized
	// Reconcile counts the wave's pair translation outcomes.
	Reconcile reconcile.Stats
	// OffersWithoutKey counts reconciled offers with no clustering key.
	OffersWithoutKey int
	// ExcludedMatched counts offers dropped as matching the catalog.
	ExcludedMatched int
	// Offers is the number of offers the wave carried.
	Offers int
	// Clusters is the number of clusters fused (len(Products)).
	Clusters int
	// OpenClusters is the cluster-memory size after the wave — the
	// quantity Options.MaxOpenClusters bounds.
	OpenClusters int
	// Elapsed is the wave's processing wall time. On the final result it
	// is the total processing time (summed waves plus the final fuse),
	// excluding time spent waiting for input.
	Elapsed time.Duration
}

// Run starts the streaming pipeline: a goroutine that consumes offer
// waves from waves, processes each through the shared per-offer front
// half (core.PrepareIncoming) and the cross-batch cluster memory, and
// emits one Result per wave, in input order, on the returned channel.
// When waves closes, one closing Result (Final=true) carries the merged
// stream view and aggregate counters; then the channel closes. When ctx
// is cancelled the pipeline stops — between waves, or between the stages
// of the wave in flight — and closes the channel without the final
// result. Either way the goroutine exits: cancel ctx or close waves to
// release it, even if the consumer has stopped reading.
func Run(ctx context.Context, store *catalog.Store, offline *core.OfflineResult, waves <-chan []offer.Offer, pages core.PageFetcher, cfg core.Config, opts Options) <-chan Result {
	out := make(chan Result, opts.Buffer)
	go func() {
		defer close(out)
		var mem *Memory
		if !opts.DisableMemory {
			mem = NewMemory(MemoryOptions{
				KeyAttrs:     cfg.ClusterKeys,
				MaxClusters:  opts.MaxOpenClusters,
				MaxIdleWaves: opts.MaxIdleWaves,
			})
		}
		var total Result
		for {
			var batch []offer.Offer
			var ok bool
			select {
			case <-ctx.Done():
				return
			case batch, ok = <-waves:
			}
			if !ok {
				final := finalResult(ctx, mem, cfg, total)
				if final.Err != nil {
					// Cancelled during the closing fuse: the contract is
					// "cancellation closes the channel without the final
					// result", so never deliver a half-built Final (the
					// send below could win a race against ctx.Done).
					return
				}
				select {
				case out <- final:
				case <-ctx.Done():
				}
				return
			}
			r := runWave(ctx, store, offline, batch, pages, cfg, mem, opts, total.Wave)
			if r.Err == nil {
				accumulate(&total, r)
			}
			total.Wave++
			select {
			case out <- r:
			case <-ctx.Done():
				return
			}
			if ctx.Err() != nil {
				return
			}
		}
	}()
	return out
}

// runWave processes one wave. ctx is only consulted between stages: a
// cancellation mid-stage lets the bounded worker pools drain (they hold
// no external resources) and surfaces as the wave's Err.
func runWave(ctx context.Context, store *catalog.Store, offline *core.OfflineResult, batch []offer.Offer, pages core.PageFetcher, cfg core.Config, mem *Memory, opts Options, wave int) Result {
	start := time.Now()
	r := Result{Wave: wave, Offers: len(batch)}

	prep, err := core.PrepareIncoming(ctx, store, offline, batch, pages, cfg)
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		r.Err = err
		r.Elapsed = time.Since(start)
		return r
	}
	r.Reconcile = prep.Reconcile
	r.ExcludedMatched = prep.ExcludedMatched

	var touched []cluster.Cluster
	var skipped []offer.Offer
	if mem != nil {
		touched, skipped = mem.Add(store, prep.Kept)
		r.OpenClusters = mem.Len()
	} else {
		touched, skipped = cluster.Group(prep.Kept, cluster.Options{KeyAttrs: cfg.ClusterKeys})
	}
	r.OffersWithoutKey = len(skipped)
	r.Clusters = len(touched)

	if r.Products, err = core.FuseClusters(ctx, touched, cfg); err != nil {
		r.Err = err
	}
	r.Elapsed = time.Since(start)
	return r
}

// accumulate folds one successful wave into the running totals the final
// result reports.
func accumulate(total *Result, r Result) {
	total.Reconcile.OffersIn += r.Reconcile.OffersIn
	total.Reconcile.PairsIn += r.Reconcile.PairsIn
	total.Reconcile.PairsMapped += r.Reconcile.PairsMapped
	total.Reconcile.PairsDropped += r.Reconcile.PairsDropped
	total.OffersWithoutKey += r.OffersWithoutKey
	total.ExcludedMatched += r.ExcludedMatched
	total.Offers += r.Offers
	total.Clusters += r.Clusters
	total.Elapsed += r.Elapsed
}

// finalResult builds the closing emission. With cluster memory, Products
// is the final fused state of every open cluster in creation order — for
// an unbounded memory over an uninterrupted stream, byte-identical to a
// one-shot run over the concatenated waves — and Clusters counts those
// clusters. With memory disabled there is nothing to merge (every wave
// already emitted its own clusters), so Products is nil and Clusters
// keeps the summed per-wave count.
func finalResult(ctx context.Context, mem *Memory, cfg core.Config, total Result) Result {
	final := total
	final.Final = true
	if mem != nil {
		start := time.Now()
		merged := mem.Final()
		products, err := core.FuseClusters(ctx, merged, cfg)
		if err != nil {
			// Cancelled during the closing fuse: record it so Run drops
			// the final result instead of delivering a half-built one.
			final.Err = err
			return final
		}
		final.Products = products
		final.Clusters = len(merged)
		final.OpenClusters = mem.Len()
		final.Elapsed += time.Since(start)
	}
	return final
}
