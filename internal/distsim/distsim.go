// Package distsim implements the distributional- and string-similarity
// measures used by the schema reconciliation component and the baseline
// matchers: Kullback-Leibler and Jensen-Shannon divergence over term
// distributions (paper §3.1), and the lexical similarities (edit distance,
// Jaro-Winkler, n-gram overlap, TF-IDF cosine, SoftTFIDF) required by the
// COMA++- and DUMAS-style baselines (paper §5.2, Appendices C and D).
package distsim

import (
	"math"
	"strings"

	"prodsynth/internal/text"
)

// KL returns the Kullback-Leibler divergence KL(p ‖ q) in nats:
//
//	KL(p‖q) = Σ_t p(t) · log( p(t) / q(t) )
//
// Terms with p(t)=0 contribute nothing. The caller must ensure q dominates p
// (q(t)>0 wherever p(t)>0); within the pipeline this always holds because q
// is a mixture containing p. If domination is violated, KL returns +Inf,
// which is the mathematically correct value.
func KL(p, q text.Distribution) float64 {
	var sum float64
	for _, tok := range p.Tokens() {
		pt := p.P(tok)
		if pt == 0 {
			continue
		}
		qt := q.P(tok)
		if qt == 0 {
			return math.Inf(1)
		}
		sum += pt * math.Log(pt/qt)
	}
	return sum
}

// JS returns the Jensen-Shannon divergence between p and q:
//
//	JS(p‖q) = ½·KL(p‖m) + ½·KL(q‖m),  m = ½p + ½q
//
// JS is symmetric, finite, and bounded by ln 2 (≈0.693, matching the 0.69
// worst-case scores in the paper's Figure 5d). Two identical distributions
// have JS 0. If either distribution is empty, JS returns ln 2 (maximally
// dissimilar), so that attributes with no observed values never look similar.
func JS(p, q text.Distribution) float64 {
	if p.Support() == 0 || q.Support() == 0 {
		return math.Ln2
	}
	var sum float64
	// KL(p‖m) where m(t) = (p(t)+q(t))/2, iterating only over p's support
	// (terms outside p's support contribute 0 to KL(p‖m)).
	for _, tok := range p.Tokens() {
		pt := p.P(tok)
		mt := (pt + q.P(tok)) / 2
		sum += 0.5 * pt * math.Log(pt/mt)
	}
	for _, tok := range q.Tokens() {
		qt := q.P(tok)
		mt := (p.P(tok) + qt) / 2
		sum += 0.5 * qt * math.Log(qt/mt)
	}
	// Guard against -0 and tiny negative rounding.
	if sum < 0 {
		return 0
	}
	if sum > math.Ln2 {
		return math.Ln2
	}
	return sum
}

// JSSimilarity maps JS divergence onto [0,1] with 1 meaning identical
// distributions: 1 - JS/ln2. This is the orientation used for classifier
// features, where larger must mean more similar.
func JSSimilarity(p, q text.Distribution) float64 {
	return 1 - JS(p, q)/math.Ln2
}

// EditDistance returns the Levenshtein distance between a and b (unit costs),
// operating on runes. It is one of the COMA++ name matchers.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSimilarity normalizes edit distance to [0,1]:
// 1 - dist/max(len(a),len(b)). Two empty strings have similarity 1.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(EditDistance(a, b))/float64(m)
}

// Jaro returns the Jaro similarity of a and b in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := max2(la, lb)/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := max2(0, i-window)
		hi := min2(lb-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchedB[j] && ra[i] == rb[j] {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	trans := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard prefix
// scale 0.1 and maximum prefix length 4. Used inside SoftTFIDF per Cohen et
// al., which DUMAS adopts.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// NGrams returns the set of character n-grams of s (n ≥ 1). Strings shorter
// than n yield a single gram equal to the whole string (COMA++ convention so
// short names are still comparable).
func NGrams(s string, n int) map[string]bool {
	out := make(map[string]bool)
	r := []rune(s)
	if len(r) == 0 {
		return out
	}
	if len(r) < n {
		out[string(r)] = true
		return out
	}
	for i := 0; i+n <= len(r); i++ {
		out[string(r[i:i+n])] = true
	}
	return out
}

// TrigramSimilarity returns the Dice coefficient over character trigram sets:
// 2|A∩B| / (|A|+|B|). One of the COMA++ name matchers.
func TrigramSimilarity(a, b string) float64 {
	ga, gb := NGrams(strings.ToLower(a), 3), NGrams(strings.ToLower(b), 3)
	if len(ga) == 0 && len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range ga {
		if gb[g] {
			inter++
		}
	}
	den := len(ga) + len(gb)
	if den == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(den)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
