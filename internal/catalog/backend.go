// Backend: the storage engine behind a Store. The Store's exported API
// is a thin veneer over this interface, so the in-memory representation
// can be swapped (or sharded, or disk-backed) without touching callers —
// the same pluggable-storage shape janus-datalog uses to keep an
// in-memory fast path next to an LSM backend.
//
// The default backend shards categories by ID hash. Each shard owns its
// categories, their product lists, and their version counters under its
// own RWMutex, so reads and writes against different categories never
// contend. The two store-global indexes — product ID -> shard and
// UPC/MPN key -> owning product — live in a small directory with its own
// lock, held only for map lookups inside a shard's critical section
// (lock order: shard, then directory).
//
// Mutations are observable: an Observer attached with SetObserver is
// invoked synchronously inside the shard critical section, so the
// observed per-category sequence is exactly the version sequence. That
// is the hook the durable write-ahead log hangs off, and the reason a
// log replay (Replay) can rebuild the store from per-shard snapshots
// plus the tail of the log.
package catalog

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count of the backend NewStore builds. Small
// enough that per-shard snapshot files stay coarse, large enough that
// concurrent ingestion into distinct categories rarely shares a lock.
const DefaultShards = 8

// Backend is the storage engine interface behind a Store. All methods
// must be safe for concurrent use. Product and Category values passed in
// are copied; values returned are private copies.
type Backend interface {
	AddCategory(c Category) error
	Category(id string) (Category, bool)
	Categories() []Category
	NumCategories() int

	AddProduct(p Product) (AddOutcome, error)
	AddProductAutoID(prefix string, p Product) (string, AddOutcome, error)
	Product(id string) (Product, bool)
	ProductByKey(key string) (Product, bool)
	ProductsInCategory(categoryID string) []Product
	ProductsInCategoryVersioned(categoryID string) ([]Product, uint64)
	ProductsSince(categoryID string, since uint64) (added []Product, version uint64, ok bool)
	CategoryVersion(categoryID string) uint64
	NumProducts() int

	// NumShards and ShardOf describe the backend's partitioning;
	// ShardSnapshot captures one partition. A non-sharded backend
	// reports one shard.
	NumShards() int
	ShardOf(categoryID string) int
	Snapshot() Snapshot
	ShardSnapshot(shard int) Snapshot

	// SetObserver attaches the mutation observer (nil detaches). The
	// observer runs inside the shard critical section: per category, the
	// observed order is the version order.
	SetObserver(obs Observer)

	// Replay applies one logged mutation idempotently: records at or
	// below the category's current version are skipped (the snapshot
	// already covers them), the next version applies, anything further
	// ahead is a gap error. Replay does not invoke the observer.
	Replay(rec ReplayRecord) error
}

// Observer receives committed mutations, synchronously, inside the shard
// critical section. Implementations must not call back into the store.
type Observer interface {
	// ObserveCategory fires after a category is registered.
	ObserveCategory(c Category)
	// ObserveProduct fires after a product commits. version is the
	// category's version after the insertion; ownsKey reports whether
	// the product claimed its UPC/MPN key (false when shadowed or
	// keyless) — recorded so a replay reproduces first-insertion-wins
	// ownership even across shards, where commit order and log order
	// may differ.
	ObserveProduct(version uint64, ownsKey bool, p Product)
}

// ReplayRecord is one logged mutation: exactly one of Category or
// Product is set.
type ReplayRecord struct {
	Category *Category
	Product  *Product
	// Version is the category version after the product insertion.
	Version uint64
	// OwnsKey records whether the product owned its key at commit time.
	OwnsKey bool
}

// memBackend is the default backend: category-hash shards plus a global
// directory for the cross-shard indexes.
type memBackend struct {
	shards []memShard
	dir    directory
	obs    atomic.Value // observerBox
}

// observerBox wraps the Observer so atomic.Value always stores one
// concrete type (and can hold "no observer").
type observerBox struct{ obs Observer }

type memShard struct {
	mu         sync.RWMutex
	categories map[string]*Category
	products   map[string]*Product
	byCategory map[string][]string // category ID -> product IDs (insertion order)
	versions   map[string]uint64   // category ID -> mutation counter
}

// directory holds the store-global indexes. Lock order: a shard's mu is
// always acquired before dir.mu, never the reverse.
type directory struct {
	mu      sync.RWMutex
	ids     map[string]int    // product ID -> owning shard
	byKey   map[string]string // key value -> product ID (first insertion wins)
	autoSeq uint64            // next candidate suffix for AddProductAutoID
}

// NewMemBackend returns the default sharded in-memory backend. shards
// values below 1 are raised to 1.
func NewMemBackend(shards int) Backend {
	if shards < 1 {
		shards = 1
	}
	b := &memBackend{shards: make([]memShard, shards)}
	for i := range b.shards {
		b.shards[i] = memShard{
			categories: make(map[string]*Category),
			products:   make(map[string]*Product),
			byCategory: make(map[string][]string),
			versions:   make(map[string]uint64),
		}
	}
	b.dir.ids = make(map[string]int)
	b.dir.byKey = make(map[string]string)
	b.obs.Store(observerBox{})
	return b
}

func (b *memBackend) NumShards() int { return len(b.shards) }

func (b *memBackend) ShardOf(categoryID string) int {
	h := fnv.New32a()
	h.Write([]byte(categoryID))
	return int(h.Sum32() % uint32(len(b.shards)))
}

func (b *memBackend) observer() Observer {
	return b.obs.Load().(observerBox).obs
}

func (b *memBackend) SetObserver(obs Observer) {
	b.obs.Store(observerBox{obs: obs})
}

func (b *memBackend) AddCategory(c Category) error {
	sh := &b.shards[b.ShardOf(c.ID)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.categories[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateCategory, c.ID)
	}
	cp := c
	cp.Schema.Attributes = append([]Attribute(nil), c.Schema.Attributes...)
	cp.Schema.byName = nil
	cp.Schema.buildNameIndex()
	sh.categories[c.ID] = &cp
	if obs := b.observer(); obs != nil {
		obs.ObserveCategory(cp)
	}
	return nil
}

func (b *memBackend) Category(id string) (Category, bool) {
	sh := &b.shards[b.ShardOf(id)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.categories[id]
	if !ok {
		return Category{}, false
	}
	return *c, true
}

func (b *memBackend) Categories() []Category {
	var out []Category
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for _, c := range sh.categories {
			out = append(out, *c)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (b *memBackend) NumCategories() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		n += len(sh.categories)
		sh.mu.RUnlock()
	}
	return n
}

func (b *memBackend) AddProduct(p Product) (AddOutcome, error) {
	shi := b.ShardOf(p.CategoryID)
	sh := &b.shards[shi]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, out, err := b.addLocked(sh, shi, p, false, "")
	return out, err
}

func (b *memBackend) AddProductAutoID(prefix string, p Product) (string, AddOutcome, error) {
	shi := b.ShardOf(p.CategoryID)
	sh := &b.shards[shi]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return b.addLocked(sh, shi, p, true, prefix)
}

// addLocked validates p against its category and commits it; sh.mu must
// be held. When mint is true, p.ID is assigned from the auto sequence
// ("<prefix>-nokey-<n>"), skipping IDs already in use, inside the same
// critical section that claims it — concurrent callers can never mint
// the same ID. Error precedence matches the pre-sharding store: unknown
// category, then duplicate ID, then schema violation.
func (b *memBackend) addLocked(sh *memShard, shi int, p Product, mint bool, prefix string) (string, AddOutcome, error) {
	cat, ok := sh.categories[p.CategoryID]
	if !ok {
		return "", AddOutcome{}, fmt.Errorf("%w: %s (product %s)", ErrUnknownCategory, p.CategoryID, p.ID)
	}
	d := &b.dir
	d.mu.Lock()
	if !mint {
		if _, dup := d.ids[p.ID]; dup {
			d.mu.Unlock()
			return "", AddOutcome{}, fmt.Errorf("%w: %s", ErrDuplicateProduct, p.ID)
		}
	}
	for _, av := range p.Spec {
		if !cat.Schema.Has(av.Name) {
			d.mu.Unlock()
			return "", AddOutcome{}, fmt.Errorf("%w: %q not in schema of %s", ErrSchemaViolation, av.Name, p.CategoryID)
		}
	}
	if mint {
		for {
			id := fmt.Sprintf("%s-nokey-%d", prefix, d.autoSeq)
			d.autoSeq++
			if _, taken := d.ids[id]; !taken {
				p.ID = id
				break
			}
		}
	}
	cp := p
	cp.Spec = p.Spec.Clone()
	var out AddOutcome
	ownsKey := false
	if key, ok := cp.Key(); ok {
		if owner, dup := d.byKey[key]; dup {
			out.KeyShadowedBy = owner
		} else {
			d.byKey[key] = cp.ID
			ownsKey = true
		}
	}
	d.ids[cp.ID] = shi
	d.mu.Unlock()
	sh.products[cp.ID] = &cp
	sh.byCategory[cp.CategoryID] = append(sh.byCategory[cp.CategoryID], cp.ID)
	sh.versions[cp.CategoryID]++
	if obs := b.observer(); obs != nil {
		obs.ObserveProduct(sh.versions[cp.CategoryID], ownsKey, cp)
	}
	return cp.ID, out, nil
}

func (b *memBackend) Product(id string) (Product, bool) {
	b.dir.mu.RLock()
	shi, ok := b.dir.ids[id]
	b.dir.mu.RUnlock()
	if !ok {
		return Product{}, false
	}
	// The directory entry is written inside the owning shard's critical
	// section, so by the time this RLock is granted the product is in
	// the shard maps.
	sh := &b.shards[shi]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p, ok := sh.products[id]
	if !ok {
		return Product{}, false
	}
	cp := *p
	cp.Spec = p.Spec.Clone()
	return cp, true
}

func (b *memBackend) ProductByKey(key string) (Product, bool) {
	b.dir.mu.RLock()
	id, ok := b.dir.byKey[key]
	b.dir.mu.RUnlock()
	if !ok {
		return Product{}, false
	}
	return b.Product(id)
}

func (b *memBackend) CategoryVersion(categoryID string) uint64 {
	sh := &b.shards[b.ShardOf(categoryID)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.versions[categoryID]
}

func (b *memBackend) ProductsInCategory(categoryID string) []Product {
	sh := &b.shards[b.ShardOf(categoryID)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.productsLocked(sh.byCategory[categoryID])
}

func (b *memBackend) ProductsInCategoryVersioned(categoryID string) ([]Product, uint64) {
	sh := &b.shards[b.ShardOf(categoryID)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.productsLocked(sh.byCategory[categoryID]), sh.versions[categoryID]
}

func (b *memBackend) ProductsSince(categoryID string, since uint64) ([]Product, uint64, bool) {
	sh := &b.shards[b.ShardOf(categoryID)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v := sh.versions[categoryID]
	ids := sh.byCategory[categoryID]
	if since > v || uint64(len(ids)) != v {
		return nil, v, false
	}
	return sh.productsLocked(ids[since:]), v, true
}

func (b *memBackend) NumProducts() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		n += len(sh.products)
		sh.mu.RUnlock()
	}
	return n
}

// productsLocked clones the products with the given IDs; sh.mu must be held.
func (sh *memShard) productsLocked(ids []string) []Product {
	out := make([]Product, 0, len(ids))
	for _, id := range ids {
		p := sh.products[id]
		cp := *p
		cp.Spec = p.Spec.Clone()
		out = append(out, cp)
	}
	return out
}

// Snapshot captures the whole store at one point in time: every shard
// RLock plus the directory RLock are held together, so no mutation can
// land between two shards' captures.
func (b *memBackend) Snapshot() Snapshot {
	for i := range b.shards {
		b.shards[i].mu.RLock()
	}
	b.dir.mu.RLock()
	defer func() {
		b.dir.mu.RUnlock()
		for i := range b.shards {
			b.shards[i].mu.RUnlock()
		}
	}()
	var snap Snapshot
	for i := range b.shards {
		snap.Categories = append(snap.Categories, b.shards[i].categoriesLocked()...)
	}
	sortSnapshotCategories(&snap)
	snap.Keys = b.dir.keysLocked(nil)
	return snap
}

// ShardSnapshot captures one shard: its categories (with versions and
// products) and the slice of the key table owned by its products. The
// union of all shard snapshots is exactly Snapshot (modulo the capture
// not being atomic across separate calls).
func (b *memBackend) ShardSnapshot(shard int) Snapshot {
	sh := &b.shards[shard]
	sh.mu.RLock()
	b.dir.mu.RLock()
	defer func() {
		b.dir.mu.RUnlock()
		sh.mu.RUnlock()
	}()
	var snap Snapshot
	snap.Categories = sh.categoriesLocked()
	sortSnapshotCategories(&snap)
	snap.Keys = b.dir.keysLocked(func(ownerID string) bool {
		return b.dir.ids[ownerID] == shard
	})
	return snap
}

// categoriesLocked captures the shard's categories unsorted; sh.mu held.
func (sh *memShard) categoriesLocked() []CategorySnapshot {
	out := make([]CategorySnapshot, 0, len(sh.categories))
	for id, c := range sh.categories {
		cc := *c
		cc.Schema.Attributes = append([]Attribute(nil), c.Schema.Attributes...)
		cc.Schema.byName = nil
		out = append(out, CategorySnapshot{
			Category: cc,
			Version:  sh.versions[id],
			Products: sh.productsLocked(sh.byCategory[id]),
		})
	}
	return out
}

func sortSnapshotCategories(snap *Snapshot) {
	sort.Slice(snap.Categories, func(i, j int) bool {
		return snap.Categories[i].Category.ID < snap.Categories[j].Category.ID
	})
}

// keysLocked captures the key table sorted by key, filtered by owner
// when keep is non-nil; dir.mu must be held.
func (d *directory) keysLocked(keep func(ownerID string) bool) []KeyOwner {
	keys := make([]string, 0, len(d.byKey))
	for k, owner := range d.byKey {
		if keep == nil || keep(owner) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]KeyOwner, 0, len(keys))
	for _, k := range keys {
		out = append(out, KeyOwner{Key: k, ProductID: d.byKey[k]})
	}
	return out
}

func (b *memBackend) Replay(rec ReplayRecord) error {
	switch {
	case rec.Category != nil:
		err := b.AddCategory(*rec.Category)
		if errors.Is(err, ErrDuplicateCategory) {
			return nil // snapshot already covers it
		}
		return err
	case rec.Product != nil:
		return b.replayProduct(rec)
	default:
		return errors.New("catalog: empty replay record")
	}
}

func (b *memBackend) replayProduct(rec ReplayRecord) error {
	p := *rec.Product
	shi := b.ShardOf(p.CategoryID)
	sh := &b.shards[shi]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cat, ok := sh.categories[p.CategoryID]
	if !ok {
		return fmt.Errorf("%w: %s (replayed product %s)", ErrUnknownCategory, p.CategoryID, p.ID)
	}
	cur := sh.versions[p.CategoryID]
	if rec.Version <= cur {
		return nil // snapshot already covers this append
	}
	if rec.Version != cur+1 {
		return fmt.Errorf("catalog: replay gap in category %s: record is version %d, store is at %d", p.CategoryID, rec.Version, cur)
	}
	// Logged records were validated at commit time, but the log is an
	// external input at replay time — re-validate rather than trust it.
	for _, av := range p.Spec {
		if !cat.Schema.Has(av.Name) {
			return fmt.Errorf("%w: %q not in schema of %s (replayed product %s)", ErrSchemaViolation, av.Name, p.CategoryID, p.ID)
		}
	}
	d := &b.dir
	d.mu.Lock()
	if _, dup := d.ids[p.ID]; dup {
		d.mu.Unlock()
		return fmt.Errorf("%w: %s (replayed)", ErrDuplicateProduct, p.ID)
	}
	cp := p
	cp.Spec = p.Spec.Clone()
	// Key ownership comes from the record, not first-insertion-wins at
	// replay time: commit order and log order can differ across shards,
	// and the recovered key table must match the original's.
	if rec.OwnsKey {
		key, ok := cp.Key()
		if !ok {
			d.mu.Unlock()
			return fmt.Errorf("catalog: replayed product %s claims key ownership but has no key", cp.ID)
		}
		if owner, dup := d.byKey[key]; dup && owner != cp.ID {
			d.mu.Unlock()
			return fmt.Errorf("catalog: replayed key %q already owned by %s", key, owner)
		}
		d.byKey[key] = cp.ID
	}
	d.ids[cp.ID] = shi
	d.mu.Unlock()
	sh.products[cp.ID] = &cp
	sh.byCategory[cp.CategoryID] = append(sh.byCategory[cp.CategoryID], cp.ID)
	sh.versions[cp.CategoryID] = rec.Version
	return nil
}

// loadSnapshot installs validated snapshot state; the backend must be
// empty and not yet shared. Called by FromSnapshot after its consistency
// checks, so no validation happens here.
func (b *memBackend) loadSnapshot(snap Snapshot) {
	for _, cs := range snap.Categories {
		shi := b.ShardOf(cs.Category.ID)
		sh := &b.shards[shi]
		cc := cs.Category
		cc.Schema.Attributes = append([]Attribute(nil), cs.Category.Schema.Attributes...)
		cc.Schema.byName = nil
		cc.Schema.buildNameIndex()
		sh.categories[cc.ID] = &cc
		if cs.Version != 0 {
			sh.versions[cc.ID] = cs.Version
		}
		if len(cs.Products) > 0 {
			ids := make([]string, 0, len(cs.Products))
			for _, p := range cs.Products {
				cp := p
				cp.Spec = p.Spec.Clone()
				sh.products[cp.ID] = &cp
				b.dir.ids[cp.ID] = shi
				ids = append(ids, cp.ID)
			}
			sh.byCategory[cc.ID] = ids
		}
	}
	for _, ko := range snap.Keys {
		b.dir.byKey[ko.Key] = ko.ProductID
	}
}
