package eval

import (
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/fusion"
	"prodsynth/internal/synth"
	"prodsynth/internal/text"
)

// ValueCorrect grades a synthesized value against the true value the way
// the paper's labelers graded against manufacturer pages: formatting
// differences are forgiven. Two values are considered equivalent when the
// normalized token set of one contains the other's (merchants append units
// and brand prefixes; fusion may keep either form) and the intersection is
// non-empty.
func ValueCorrect(synthesized, truth string) bool {
	a := tokenSet(synthesized)
	b := tokenSet(truth)
	if len(a) == 0 || len(b) == 0 {
		return len(a) == len(b)
	}
	return subset(a, b) || subset(b, a)
}

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, t := range text.DefaultTokenizer.Tokenize(s) {
		out[t] = true
	}
	return out
}

func subset(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for t := range a {
		if !b[t] {
			return false
		}
	}
	return true
}

// ProductGrade is the grading of one synthesized product.
type ProductGrade struct {
	// ProductID is the resolved universe product ("" if unresolvable —
	// the paper's "entire specification invalid" case).
	ProductID string
	// CategoryID is the product's category.
	CategoryID string
	// Attributes is the number of synthesized attribute-value pairs.
	Attributes int
	// CorrectAttributes is how many pairs grade correct.
	CorrectAttributes int
}

// AllCorrect reports whether every synthesized pair was correct — the
// paper's strict product-precision criterion.
func (g ProductGrade) AllCorrect() bool {
	return g.Attributes > 0 && g.CorrectAttributes == g.Attributes
}

// SynthesisReport aggregates grading over a synthesis run (Table 2).
type SynthesisReport struct {
	Products           int
	AttributePairs     int
	CorrectPairs       int
	CorrectProducts    int
	UnresolvedProducts int
	Grades             []ProductGrade
}

// AttributePrecision is correct pairs / all pairs (Table 2 row 4).
func (r SynthesisReport) AttributePrecision() float64 {
	if r.AttributePairs == 0 {
		return 0
	}
	return float64(r.CorrectPairs) / float64(r.AttributePairs)
}

// ProductPrecision is fully-correct products / all products (Table 2 row 5).
func (r SynthesisReport) ProductPrecision() float64 {
	if r.Products == 0 {
		return 0
	}
	return float64(r.CorrectProducts) / float64(r.Products)
}

// AvgAttrsPerProduct is the Table 3 "Avg Attrs / Product" statistic.
func (r SynthesisReport) AvgAttrsPerProduct() float64 {
	if r.Products == 0 {
		return 0
	}
	return float64(r.AttributePairs) / float64(r.Products)
}

// GradeSynthesis grades synthesized products against the generator's
// ground truth. A product resolves to its true universe product through
// the cluster key; unresolvable products count with all pairs incorrect,
// mirroring the paper's treatment of specifications that could not be
// located on any manufacturer site.
func GradeSynthesis(products []fusion.Synthesized, truth *synth.Truth, universe map[string]catalog.Product) SynthesisReport {
	rep := SynthesisReport{}
	for _, sp := range products {
		g := ProductGrade{CategoryID: sp.CategoryID, Attributes: len(sp.Spec)}
		pid := truth.ProductByKey[sp.Key]
		if pid == "" {
			// Keys are normalized during clustering; retry raw lookup
			// against normalized truth keys.
			pid = resolveNormalized(truth, sp.Key)
		}
		if pid != "" {
			g.ProductID = pid
			trueProd := universe[pid]
			for _, av := range sp.Spec {
				tv, ok := trueProd.Spec.Get(av.Name)
				if ok && ValueCorrect(av.Value, tv) {
					g.CorrectAttributes++
				}
			}
		} else {
			rep.UnresolvedProducts++
		}
		rep.Products++
		rep.AttributePairs += g.Attributes
		rep.CorrectPairs += g.CorrectAttributes
		if g.AllCorrect() {
			rep.CorrectProducts++
		}
		rep.Grades = append(rep.Grades, g)
	}
	return rep
}

// resolveNormalized matches a normalized cluster key against the truth's
// key index, normalizing truth keys the same way clustering does.
func resolveNormalized(truth *synth.Truth, key string) string {
	// The truth index holds raw keys; normalize lazily and cache? Keys in
	// the generator are already alphanumeric-upper, so a direct scan is a
	// rare fallback and linear cost is acceptable.
	for raw, pid := range truth.ProductByKey {
		if normalizeKey(raw) == key {
			return pid
		}
	}
	return ""
}

// normalizeKey mirrors cluster.normalizeKey for resolution purposes.
func normalizeKey(v string) string {
	out := make([]rune, 0, len(v))
	for _, r := range v {
		switch r {
		case ' ', '-', '_', '.':
			continue
		}
		if r >= 'a' && r <= 'z' {
			r -= 32
		}
		out = append(out, r)
	}
	return string(out)
}

// CategoryReport is the per-top-level breakdown of Table 3.
type CategoryReport struct {
	TopLevel string
	SynthesisReport
}

// GradeByTopLevel groups grading by top-level category (Table 3). The
// store maps category IDs to their top level.
func GradeByTopLevel(products []fusion.Synthesized, truth *synth.Truth, universe map[string]catalog.Product, store *catalog.Store) []CategoryReport {
	byTop := make(map[string][]fusion.Synthesized)
	for _, sp := range products {
		top := sp.CategoryID
		if cat, ok := store.Category(sp.CategoryID); ok {
			top = cat.TopLevel
		}
		byTop[top] = append(byTop[top], sp)
	}
	tops := make([]string, 0, len(byTop))
	for top := range byTop {
		tops = append(tops, top)
	}
	sort.Strings(tops)
	out := make([]CategoryReport, 0, len(tops))
	for _, top := range tops {
		out = append(out, CategoryReport{
			TopLevel:        top,
			SynthesisReport: GradeSynthesis(byTop[top], truth, universe),
		})
	}
	return out
}

// RecallReport is one row of Table 4.
type RecallReport struct {
	// Bucket names the offer-count split ("products with >= 10 offers").
	Bucket string
	// Products is the number of synthesized products in the bucket.
	Products int
	// AttributeRecall is |synthesized ∩ page attributes| / |page
	// attributes| aggregated over the bucket.
	AttributeRecall float64
	// AttributePrecision is the bucket's attribute precision.
	AttributePrecision float64
	// AvgPoolSize is the average number of attribute-value pairs
	// available across the offers of each product (§5.1's 84.6 vs 9).
	AvgPoolSize float64
	// AvgSynthesized is the average number of synthesized attributes.
	AvgSynthesized float64
}

// GradeRecall computes the Table 4 split: products with >= minOffers offers
// versus fewer. Page attributes come from the generator's ground truth.
func GradeRecall(products []fusion.Synthesized, truth *synth.Truth, universe map[string]catalog.Product, minOffers int) (heavy, light RecallReport) {
	heavy.Bucket = "products with >= 10 offers"
	light.Bucket = "products with < 10 offers"
	type agg struct {
		rep                   *RecallReport
		recallNum, recallDen  int
		pairs, correct, pool  int
		products, synthesized int
	}
	ha := agg{rep: &heavy}
	la := agg{rep: &light}
	for _, sp := range products {
		a := &la
		if len(sp.OfferIDs) >= minOffers {
			a = &ha
		}
		// Ground truth attribute pool: union of page attributes over the
		// product's offers, in catalog vocabulary.
		pageUnion := make(map[string]bool)
		for _, oid := range sp.OfferIDs {
			for _, attr := range truth.PageAttrs[oid] {
				pageUnion[attr] = true
			}
			a.pool += len(truth.PageAttrs[oid])
		}
		synth := make(map[string]bool)
		for _, av := range sp.Spec {
			synth[av.Name] = true
		}
		for attr := range pageUnion {
			a.recallDen++
			if synth[attr] {
				a.recallNum++
			}
		}
		// Precision within the bucket.
		pid := truth.ProductByKey[sp.Key]
		if pid == "" {
			pid = resolveNormalized(truth, sp.Key)
		}
		trueProd := universe[pid]
		for _, av := range sp.Spec {
			a.pairs++
			if tv, ok := trueProd.Spec.Get(av.Name); ok && ValueCorrect(av.Value, tv) {
				a.correct++
			}
		}
		a.products++
		a.synthesized += len(sp.Spec)
	}
	finish := func(a *agg) {
		a.rep.Products = a.products
		if a.recallDen > 0 {
			a.rep.AttributeRecall = float64(a.recallNum) / float64(a.recallDen)
		}
		if a.pairs > 0 {
			a.rep.AttributePrecision = float64(a.correct) / float64(a.pairs)
		}
		if a.products > 0 {
			a.rep.AvgPoolSize = float64(a.pool) / float64(a.products)
			a.rep.AvgSynthesized = float64(a.synthesized) / float64(a.products)
		}
	}
	finish(&ha)
	finish(&la)
	return heavy, light
}
