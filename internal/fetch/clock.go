package fetch

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the resilience layer: backoff sleeps, breaker
// cooldowns, and injected latency all go through it, so tests drive every
// timing-dependent behavior deterministically with a FakeClock instead of
// sleeping for real.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the wall clock.
type realClock struct{}

//lint:allow clockcheck realClock is the package's one real-clock site, behind the injectable Clock
func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// FakeClock is a manually-driven clock: Sleep advances the clock by the
// requested duration and returns immediately, so a retry schedule that
// would wall-clock minutes runs in microseconds while still exercising
// every backoff and cooldown decision. Safe for concurrent use.
type FakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewFakeClock returns a FakeClock starting at a fixed epoch, so tests
// over the same schedule observe identical timestamps.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d and returns immediately (ctx.Err() if ctx
// is already done). The total advanced through Sleep is available via
// Slept.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept += d
	c.mu.Unlock()
	return nil
}

// Advance moves the clock forward by d without counting as sleep — the
// hook for stepping a breaker past its cooldown.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Slept returns the total duration passed to Sleep — the wall-clock time
// a real clock would have spent backing off.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
