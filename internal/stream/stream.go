package stream

import (
	"context"
	"time"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/core"
	"prodsynth/internal/fetch"
	"prodsynth/internal/fusion"
	"prodsynth/internal/offer"
	"prodsynth/internal/pipe"
	"prodsynth/internal/reconcile"
)

// Options tunes a streaming run. The zero value keeps unbounded cluster
// memory and an unbuffered output channel.
type Options struct {
	// MaxOpenClusters bounds the cluster memory (LRU); 0 = unbounded.
	MaxOpenClusters int
	// MaxIdleWaves expires clusters untouched for more than this many
	// waves; 0 = never. See MemoryOptions.MaxIdleWaves.
	MaxIdleWaves int
	// DisableMemory turns cross-batch cluster memory off: every wave
	// clusters independently, reproducing SynthesizeBatches semantics
	// (a product split across waves synthesizes once per wave). With no
	// memory there is nothing to seal: no result carries Sealed events,
	// and every wave's products are as final as they will ever be.
	DisableMemory bool
	// Buffer is the output channel's capacity. 0 (unbuffered) applies
	// consumer backpressure on the fuse stage; note that with cross-wave
	// pipelining (core.Config.StageBuffer >= 0) the prepare stage still
	// works ahead of the consumer by up to 1+StageBuffer waves.
	Buffer int
	// InFlight, when non-nil, gauges the number of offers inside the
	// pipeline (pulled into prepare but not yet fused) — its Peak reports
	// the memory-relevant high-water mark of cross-wave pipelining.
	InFlight *pipe.Gauge
	// Clock supplies the time source for the per-wave timings results
	// report (PrepareElapsed, FuseElapsed, Elapsed). nil means the wall
	// clock; inject a fake so timing-sensitive tests are deterministic.
	Clock Clock
}

// Clock abstracts time for the streaming pipeline's wave timings, so
// timing-dependent results are testable without the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// wallClock is the default Clock.
type wallClock struct{}

//lint:allow clockcheck wallClock is the package's one real-clock site, behind the injectable Clock
func (wallClock) Now() time.Time { return time.Now() }

// Sealed is one per-cluster seal event: the cross-batch memory decided
// this cluster can no longer grow, so its product is final rather than
// provisional. IDs are cluster creation ordinals, unique per stream, and
// each cluster seals exactly once — through exactly one of the eviction
// reasons or the closing result.
type Sealed struct {
	// ClusterID is the cluster's creation ordinal (the order snapshots
	// and final products are emitted in).
	ClusterID int
	// Wave is the wave result the seal was reported on (0-based); for
	// SealClose it is the closing result's wave count.
	Wave int
	// Reason says why the cluster sealed.
	Reason SealReason
	// Product is the cluster's final fused product.
	Product fusion.Synthesized
}

// Result is one emission of the streaming pipeline: per-wave results in
// input order, then exactly one closing result with Final set.
type Result struct {
	// Wave is the 0-based index of the wave this result covers. On the
	// final result it is the number of waves consumed.
	Wave int
	// Final marks the closing result emitted after the input channel
	// closes: Products holds the merged view of the stream (the final
	// fused state of every open cluster, in cluster creation order) and
	// the counters aggregate every successful wave.
	Final bool
	// Err reports a failed wave. The wave contributes nothing to cluster
	// memory or the final counters; later waves still run.
	Err error
	// Products are the fused products of every cluster this wave created
	// or extended (for an extended cluster: re-fused over the union of
	// its evidence across waves), in cluster creation order.
	Products []fusion.Synthesized
	// Sealed are the clusters sealed by this result: per-wave results
	// carry the wave's evictions (LRU, idle, invalidation), each with the
	// cluster's final fused product; the closing result carries one
	// SealClose event per merged product, aligned 1:1 with Products.
	Sealed []Sealed
	// Reconcile counts the wave's pair translation outcomes.
	Reconcile reconcile.Stats
	// OffersWithoutKey counts reconciled offers with no clustering key.
	OffersWithoutKey int
	// ExcludedMatched counts offers dropped as matching the catalog.
	ExcludedMatched int
	// Fetch accounts the wave's landing-page fetches (counters plus the
	// offers that proceeded feed-only); on the final result, the
	// aggregate over every successful wave.
	Fetch fetch.Report
	// Offers is the number of offers the wave carried.
	Offers int
	// Clusters is the number of clusters fused (len(Products)).
	Clusters int
	// OpenClusters is the cluster-memory size after the wave — the
	// quantity Options.MaxOpenClusters bounds.
	OpenClusters int
	// SpilledClusters is the number of clusters parked in the spill
	// store after the wave (0 when no spill store is configured); on the
	// final result, the count still spilled at close, each of which the
	// closing result merges back into Products.
	SpilledClusters int
	// PrepareElapsed is the wall time the wave spent in the prepare stage
	// (classify, extract, match-exclude, reconcile); with pipelining it
	// overlaps earlier waves' FuseElapsed.
	PrepareElapsed time.Duration
	// FuseElapsed is the wall time the wave spent in the fuse stage
	// (cluster memory, value fusion, seal handling).
	FuseElapsed time.Duration
	// Elapsed is the wave's total processing wall time
	// (PrepareElapsed+FuseElapsed). On the final result it is the total
	// processing time (summed waves plus the final fuse), excluding time
	// spent waiting for input. With pipelining, summed Elapsed exceeds
	// wall time — that overlap is the point.
	Elapsed time.Duration
}

// preparedWave is the prepare stage's per-wave output, crossing the stage
// boundary to the fuse stage.
type preparedWave struct {
	wave    int
	offers  int
	prep    *core.Prepared
	err     error
	elapsed time.Duration
}

// Run starts the streaming pipeline: a goroutine that consumes offer
// waves from waves and emits one Result per wave, in input order, on the
// returned channel. The pipeline is two pull-based stages with a bounded
// buffer between them:
//
//	waves ── prepare (classify·extract·match·reconcile)
//	      ──[pipe.Buffer(cfg.StageBuffer)]── fuse (memory·fusion·seals) ── out
//
// so wave n+1's prepare overlaps wave n's fuse while emission order stays
// input order (cfg.StageBuffer < 0 disables the overlap — barrier
// execution). When waves closes, one closing Result (Final=true) carries
// the merged stream view, aggregate counters, and the SealClose events;
// then the channel closes. When ctx is cancelled the pipeline stops —
// whatever stage each in-flight wave is in — and closes the channel
// without the final result. Either way every pipeline goroutine exits:
// cancel ctx or close waves to release them, even if the consumer has
// stopped reading.
func Run(ctx context.Context, store *catalog.Store, offline *core.OfflineResult, waves <-chan []offer.Offer, pages core.PageFetcher, cfg core.Config, opts Options) <-chan Result {
	clk := opts.Clock
	if clk == nil {
		clk = wallClock{}
	}
	out := make(chan Result, opts.Buffer)
	//lint:allow spawncheck pipeline goroutine: lifecycle is ctx cancellation or closing waves, both close out; leak-guarded by TestStreamCtxCancelNoLeak
	go func() {
		defer close(out)
		var mem *Memory
		if !opts.DisableMemory {
			mopts := MemoryOptions{
				KeyAttrs:     cfg.ClusterKeys,
				MaxClusters:  opts.MaxOpenClusters,
				MaxIdleWaves: opts.MaxIdleWaves,
			}
			// One spill store per stream, owned here. A factory failure
			// degrades to the unspilled behaviour (bounds seal) rather
			// than failing the stream before it starts.
			if cfg.Spill != nil {
				if sp, err := cfg.Spill.NewSpill(); err == nil {
					mopts.Spill = sp
					defer sp.Close()
				}
			}
			mem = NewMemory(mopts)
		}

		// Prepare stage: pulls waves in input order and runs the shared
		// per-offer front half. Wave failures (StrictPages, etc.) ride
		// inside the item — only upstream exhaustion or cancellation ends
		// the stage — so later waves still run after a failed one.
		nextWave := 0
		prepared := pipe.Map(func(ctx context.Context, batch []offer.Offer) (preparedWave, error) {
			start := clk.Now()
			opts.InFlight.Add(len(batch))
			pw := preparedWave{wave: nextWave, offers: len(batch)}
			nextWave++
			prep, err := core.PrepareIncoming(ctx, store, offline, batch, pages, cfg)
			if err == nil {
				err = ctx.Err()
			}
			if err != nil {
				pw.err = err
			} else {
				pw.prep = prep
			}
			pw.elapsed = clk.Now().Sub(start)
			return pw, nil
		})(pipe.FromChan(waves))
		if cfg.StageBuffer >= 0 {
			// The stage boundary: prepare moves to its own goroutine and
			// works ahead of fuse by up to 1+StageBuffer waves. A negative
			// StageBuffer skips the boundary, so fuse's pull drives prepare
			// inline — the pre-pipelining barrier execution.
			prepared = pipe.Buffer[preparedWave](cfg.StageBuffer)(prepared)
		}

		var total Result
		for {
			pw, ok, err := prepared.Next(ctx)
			if err != nil {
				return // cancelled; contract: close without final result
			}
			if !ok {
				final := finalResult(ctx, mem, cfg, total, clk)
				if final.Err != nil {
					// Cancelled during the closing fuse: the contract is
					// "cancellation closes the channel without the final
					// result", so never deliver a half-built Final (the
					// send below could win a race against ctx.Done).
					return
				}
				select {
				case out <- final:
				case <-ctx.Done():
				}
				return
			}
			r := fuseWave(ctx, store, pw, cfg, mem, clk)
			opts.InFlight.Add(-pw.offers)
			if r.Err == nil {
				accumulate(&total, r)
			}
			total.Wave++
			select {
			case out <- r:
			case <-ctx.Done():
				return
			}
			if ctx.Err() != nil {
				return
			}
		}
	}()
	return out
}

// fuseWave is the fuse stage body: one prepared wave through the cluster
// memory, value fusion, and seal handling. ctx is only consulted between
// steps: a cancellation mid-step lets the bounded worker pools drain (they
// hold no external resources) and surfaces as the wave's Err.
func fuseWave(ctx context.Context, store *catalog.Store, pw preparedWave, cfg core.Config, mem *Memory, clk Clock) Result {
	r := Result{Wave: pw.wave, Offers: pw.offers, PrepareElapsed: pw.elapsed}
	if pw.err != nil {
		r.Err = pw.err
		r.Elapsed = r.PrepareElapsed
		return r
	}
	start := clk.Now()
	r.Reconcile = pw.prep.Reconcile
	r.ExcludedMatched = pw.prep.ExcludedMatched
	r.Fetch = pw.prep.Fetch

	var touched []cluster.Cluster
	var skipped []offer.Offer
	if mem != nil {
		touched, skipped = mem.Add(store, pw.prep.Kept)
		r.OpenClusters = mem.Len()
		r.SpilledClusters = mem.SpilledLen()
	} else {
		touched, skipped = cluster.Group(pw.prep.Kept, cluster.Options{KeyAttrs: cfg.ClusterKeys})
	}
	r.OffersWithoutKey = len(skipped)
	r.Clusters = len(touched)

	var err error
	if r.Products, err = core.FuseClusters(ctx, touched, cfg); err != nil {
		r.Err = err
	} else if mem != nil {
		r.Sealed, err = sealEvents(ctx, mem.DrainEvicted(), cfg, pw.wave)
		if err != nil {
			r.Err = err
		}
	}
	r.FuseElapsed = clk.Now().Sub(start)
	r.Elapsed = r.PrepareElapsed + r.FuseElapsed
	return r
}

// sealEvents fuses the evicted clusters' seal-time snapshots into their
// final products. Eviction is rare (it only happens under memory bounds),
// so the extra fuse work is per-eviction, not per-wave.
func sealEvents(ctx context.Context, evicted []Evicted, cfg core.Config, wave int) ([]Sealed, error) {
	if len(evicted) == 0 {
		return nil, nil
	}
	clusters := make([]cluster.Cluster, len(evicted))
	for i, ev := range evicted {
		clusters[i] = ev.Cluster
	}
	products, err := core.FuseClusters(ctx, clusters, cfg)
	if err != nil {
		return nil, err
	}
	sealed := make([]Sealed, len(evicted))
	for i, ev := range evicted {
		sealed[i] = Sealed{ClusterID: ev.ID, Wave: wave, Reason: ev.Reason, Product: products[i]}
	}
	return sealed, nil
}

// accumulate folds one successful wave into the running totals the final
// result reports. Per-wave Sealed events are not folded in: they were
// already delivered, and the closing result carries only its own SealClose
// events.
func accumulate(total *Result, r Result) {
	total.Reconcile.Add(r.Reconcile)
	total.OffersWithoutKey += r.OffersWithoutKey
	total.ExcludedMatched += r.ExcludedMatched
	total.Fetch.Add(r.Fetch)
	total.Offers += r.Offers
	total.Clusters += r.Clusters
	total.PrepareElapsed += r.PrepareElapsed
	total.FuseElapsed += r.FuseElapsed
	total.Elapsed += r.Elapsed
}

// finalResult builds the closing emission. With cluster memory, Products
// is the final fused state of every open cluster in creation order — for
// an unbounded memory over an uninterrupted stream, byte-identical to a
// one-shot run over the concatenated waves — Clusters counts those
// clusters, and Sealed carries one SealClose event per product, aligned
// 1:1 with Products (same order, same fused values). With memory disabled
// there is nothing to merge or seal (every wave already emitted its own
// clusters), so Products and Sealed are nil and Clusters keeps the summed
// per-wave count.
func finalResult(ctx context.Context, mem *Memory, cfg core.Config, total Result, clk Clock) Result {
	final := total
	final.Final = true
	if mem != nil {
		start := clk.Now()
		closing := mem.CloseAll()
		merged := make([]cluster.Cluster, len(closing))
		for i, ev := range closing {
			merged[i] = ev.Cluster
		}
		products, err := core.FuseClusters(ctx, merged, cfg)
		if err != nil {
			// Cancelled during the closing fuse: record it so Run drops
			// the final result instead of delivering a half-built one.
			final.Err = err
			return final
		}
		final.Products = products
		final.Clusters = len(merged)
		final.OpenClusters = mem.Len()
		final.SpilledClusters = mem.SpilledLen()
		final.Sealed = make([]Sealed, len(closing))
		for i, ev := range closing {
			final.Sealed[i] = Sealed{ClusterID: ev.ID, Wave: total.Wave, Reason: SealClose, Product: products[i]}
		}
		closingElapsed := clk.Now().Sub(start)
		final.FuseElapsed += closingElapsed
		final.Elapsed += closingElapsed
	}
	return final
}
