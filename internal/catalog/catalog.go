// Package catalog models the Product Search Engine catalog of paper §2:
// a product taxonomy whose categories each carry a schema (a set of
// attribute names), and product instances p = (C, {<A1,v1>,...,<An,vn>})
// whose attribute names belong to the schema of C.
//
// The Store is safe for concurrent readers and writers, and maintains the
// indexes the synthesis pipeline needs: products by category, and products
// by key attribute (UPC / Model Part Number) for offer matching and for
// deciding which offers describe products missing from the catalog.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Well-known key attribute names (catalog-side vocabulary). The clustering
// component (paper §4) extracts these to group offers into products.
const (
	AttrUPC = "UPC"
	AttrMPN = "Model Part Number"
)

// AttributeKind describes the value domain of a schema attribute; the
// synthetic generator uses it to draw realistic values, and value fusion
// uses it to decide tokenization granularity.
type AttributeKind int

const (
	// KindCategorical draws from a small closed vocabulary (e.g. Brand).
	KindCategorical AttributeKind = iota
	// KindNumeric is a number, possibly with a unit suffix (e.g. Capacity).
	KindNumeric
	// KindText is short free text of several tokens (e.g. Description).
	KindText
	// KindIdentifier is a near-unique code (e.g. UPC, MPN).
	KindIdentifier
)

func (k AttributeKind) String() string {
	switch k {
	case KindCategorical:
		return "categorical"
	case KindNumeric:
		return "numeric"
	case KindText:
		return "text"
	case KindIdentifier:
		return "identifier"
	default:
		return fmt.Sprintf("AttributeKind(%d)", int(k))
	}
}

// Attribute is one column of a category schema.
type Attribute struct {
	Name string
	Kind AttributeKind
	// Unit is an optional unit suffix merchants may or may not attach
	// ("GB", "rpm"). Empty for unitless attributes.
	Unit string
}

// Schema is the ordered attribute list of one category.
type Schema struct {
	Attributes []Attribute

	// byName maps attribute name to its position in Attributes — the
	// acceleration behind Has and Attribute, which are hot in product
	// validation, reconciliation, and fusion. It is built lazily, when a
	// schema first enters a Store (AddCategory), and then shared
	// read-only by every copy of the schema; schemas constructed as plain
	// literals fall back to the linear scan until stored.
	byName map[string]int
}

// buildNameIndex populates byName. The first occurrence wins on duplicate
// names, matching the linear scan's behavior.
func (s *Schema) buildNameIndex() {
	if s.byName != nil || len(s.Attributes) == 0 {
		return
	}
	m := make(map[string]int, len(s.Attributes))
	for i, a := range s.Attributes {
		if _, dup := m[a.Name]; !dup {
			m[a.Name] = i
		}
	}
	s.byName = m
}

// Has reports whether the schema contains an attribute with the given name.
func (s Schema) Has(name string) bool {
	if s.byName != nil {
		_, ok := s.byName[name]
		return ok
	}
	for _, a := range s.Attributes {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Attribute returns the attribute with the given name.
func (s Schema) Attribute(name string) (Attribute, bool) {
	if s.byName != nil {
		if i, ok := s.byName[name]; ok {
			return s.Attributes[i], true
		}
		return Attribute{}, false
	}
	for _, a := range s.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// Names returns the attribute names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Attributes))
	for i, a := range s.Attributes {
		out[i] = a.Name
	}
	return out
}

// Category is a node in the product taxonomy. Only leaf categories carry
// products; TopLevel is the root ancestor used for Table 3 style rollups.
type Category struct {
	ID       string
	Name     string
	TopLevel string
	Schema   Schema
}

// AttributeValue is one <A, v> pair of a product or offer specification.
type AttributeValue struct {
	Name  string
	Value string
}

// Spec is an attribute-value specification. Order is not significant but is
// preserved for deterministic output.
type Spec []AttributeValue

// Get returns the value for the named attribute.
func (s Spec) Get(name string) (string, bool) {
	for _, av := range s {
		if av.Name == name {
			return av.Value, true
		}
	}
	return "", false
}

// Set replaces the value for name, or appends it if absent.
func (s Spec) Set(name, value string) Spec {
	for i, av := range s {
		if av.Name == name {
			s[i].Value = value
			return s
		}
	}
	return append(s, AttributeValue{Name: name, Value: value})
}

// Names returns the attribute names in spec order.
func (s Spec) Names() []string {
	out := make([]string, len(s))
	for i, av := range s {
		out[i] = av.Name
	}
	return out
}

// Clone returns a deep copy.
func (s Spec) Clone() Spec {
	out := make(Spec, len(s))
	copy(out, s)
	return out
}

// Sorted returns a copy sorted by attribute name, for deterministic output.
func (s Spec) Sorted() Spec {
	out := s.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// String renders the spec as "A=v; B=w" for logs and error messages.
func (s Spec) String() string {
	parts := make([]string, len(s))
	for i, av := range s {
		parts[i] = av.Name + "=" + av.Value
	}
	return strings.Join(parts, "; ")
}

// Product is a catalog product instance.
type Product struct {
	ID         string
	CategoryID string
	Spec       Spec
}

// Key returns the product's clustering key: UPC if present, else MPN.
func (p *Product) Key() (string, bool) {
	if v, ok := p.Spec.Get(AttrUPC); ok && v != "" {
		return v, true
	}
	if v, ok := p.Spec.Get(AttrMPN); ok && v != "" {
		return v, true
	}
	return "", false
}

// Errors returned by Store operations.
var (
	ErrUnknownCategory   = errors.New("catalog: unknown category")
	ErrDuplicateCategory = errors.New("catalog: duplicate category")
	ErrDuplicateProduct  = errors.New("catalog: duplicate product")
	ErrSchemaViolation   = errors.New("catalog: attribute not in category schema")
)

// Store is the catalog: categories plus products, with indexes by
// category and by key attribute. All methods are safe for concurrent use.
// Storage lives behind a Backend; the default is an in-memory backend
// sharded by category hash (see NewMemBackend), so readers and writers
// of different categories never share a lock.
//
// Every mutation of a category's product set bumps that category's version
// counter (see CategoryVersion). External caches built over a category's
// products — such as the matcher's shared title-index registry — record the
// version they were built at and rebuild when it moves, so stale entries are
// evicted without the Store knowing who caches what.
type Store struct {
	b Backend
}

// NewStore returns an empty catalog store on the default sharded
// in-memory backend.
func NewStore() *Store {
	return NewStoreShards(DefaultShards)
}

// NewStoreShards returns an empty catalog store whose in-memory backend
// uses the given shard count.
func NewStoreShards(shards int) *Store {
	return &Store{b: NewMemBackend(shards)}
}

// NewStoreBackend returns a store over a caller-supplied backend.
func NewStoreBackend(b Backend) *Store {
	return &Store{b: b}
}

// Backend exposes the store's storage engine — the surface durability
// layers build on (shard snapshots, mutation observers, log replay).
func (st *Store) Backend() Backend { return st.b }

// NumShards reports the backend's shard count.
func (st *Store) NumShards() int { return st.b.NumShards() }

// ShardSnapshot captures one backend shard; see Backend.ShardSnapshot.
func (st *Store) ShardSnapshot(shard int) Snapshot { return st.b.ShardSnapshot(shard) }

// SetObserver attaches a mutation observer; see Backend.SetObserver.
func (st *Store) SetObserver(obs Observer) { st.b.SetObserver(obs) }

// Replay applies one logged mutation idempotently; see Backend.Replay.
func (st *Store) Replay(rec ReplayRecord) error { return st.b.Replay(rec) }

// AddCategory registers a category. The category is copied; later mutation
// of the argument does not affect the store.
func (st *Store) AddCategory(c Category) error {
	return st.b.AddCategory(c)
}

// Category returns the category with the given ID.
func (st *Store) Category(id string) (Category, bool) {
	return st.b.Category(id)
}

// Categories returns all categories sorted by ID.
func (st *Store) Categories() []Category {
	return st.b.Categories()
}

// NumCategories returns the number of categories.
func (st *Store) NumCategories() int {
	return st.b.NumCategories()
}

// AddOutcome reports non-fatal conditions observed while inserting a
// product — conditions that do not reject the product but that the caller
// may want to surface.
type AddOutcome struct {
	// KeyShadowedBy is the ID of the product that already owns the new
	// product's UPC/MPN key: the new product is stored and reachable by
	// ID and category, but ProductByKey resolves the key to the earlier
	// product (first insertion wins, matching Schema.buildNameIndex).
	// Empty when the key was free or the product has no key.
	KeyShadowedBy string
}

// AddProduct inserts a product. The product's category must exist and every
// spec attribute must belong to the category schema; this enforces the §2
// invariant that product specs conform to their category. Use
// AddProductOutcome to also learn whether the product's key was shadowed
// by an earlier product.
func (st *Store) AddProduct(p Product) error {
	_, err := st.AddProductOutcome(p)
	return err
}

// AddProductOutcome inserts a product like AddProduct and additionally
// reports non-fatal outcomes: a duplicate UPC/MPN key does not overwrite
// the key index (the earlier product keeps owning the key) and is
// surfaced through AddOutcome.KeyShadowedBy instead of silently skewing
// later ProductByKey lookups.
func (st *Store) AddProductOutcome(p Product) (AddOutcome, error) {
	return st.b.AddProduct(p)
}

// AddProductAutoID inserts a product under a generated ID of the form
// "<prefix>-nokey-<n>", chosen while holding the store lock so that
// concurrent callers can never mint the same ID — the reservation and
// the insertion are one critical section. The chosen n is a per-store
// sequence that skips IDs already in use (e.g. after a snapshot load),
// so a generated ID never collides with an existing product. Returns the
// assigned ID; p.ID is ignored.
func (st *Store) AddProductAutoID(prefix string, p Product) (string, AddOutcome, error) {
	return st.b.AddProductAutoID(prefix, p)
}

// CategoryVersion returns the category's mutation counter: it starts at 0
// and increments on every product insertion into the category. Caches keyed
// on a category's product set use it to detect staleness.
func (st *Store) CategoryVersion(categoryID string) uint64 {
	return st.b.CategoryVersion(categoryID)
}

// Product returns the product with the given ID.
func (st *Store) Product(id string) (Product, bool) {
	return st.b.Product(id)
}

// ProductByKey returns the product whose UPC or MPN equals key. When
// several products were inserted with the same key, the first insertion
// owns it (later ones are reported shadowed by AddProductOutcome).
func (st *Store) ProductByKey(key string) (Product, bool) {
	return st.b.ProductByKey(key)
}

// ProductsInCategory returns the products of one category in insertion order.
func (st *Store) ProductsInCategory(categoryID string) []Product {
	return st.b.ProductsInCategory(categoryID)
}

// ProductsInCategoryVersioned returns the products of one category in
// insertion order together with the category version the snapshot
// corresponds to, read atomically. Caches that later ask ProductsSince
// for a delta must seed from this version, not from a separately read
// CategoryVersion, or a concurrent insertion could slip between the two
// reads and be double-counted or lost.
func (st *Store) ProductsInCategoryVersioned(categoryID string) ([]Product, uint64) {
	return st.b.ProductsInCategoryVersioned(categoryID)
}

// ProductsSince returns the products appended to a category after its
// first `since` insertions — the category's append log from version
// `since` to the returned current version. It is the incremental-update
// surface for caches built over a category's products: on a version bump,
// apply the delta instead of rebuilding from the full product list.
//
// ok is false when the delta cannot be derived: since is ahead of the
// category's version, or the category's history is not pure appends (no
// such mutation exists today; the check guards future ones). Callers must
// then rebuild from ProductsInCategoryVersioned.
func (st *Store) ProductsSince(categoryID string, since uint64) (added []Product, version uint64, ok bool) {
	return st.b.ProductsSince(categoryID, since)
}

// NumProducts returns the number of products in the store.
func (st *Store) NumProducts() int {
	return st.b.NumProducts()
}
