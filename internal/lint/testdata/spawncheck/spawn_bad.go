package serve

// feed is the pre-fix feeder shape: fire-and-forget, nothing joins it.
func feed(items []int) {
	go work(items) // want "no visible join"
}

// broadcast spawns senders whose channels the function never receives
// from, so the channel-join heuristic does not apply.
func broadcast(chans []chan int) {
	for _, ch := range chans {
		ch := ch
		go func() { // want "no visible join"
			ch <- 1
		}()
	}
}

func work(items []int) {}
