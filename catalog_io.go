package prodsynth

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/snapfmt"
)

// CatalogFormatVersion is the version number embedded in the binary
// format written by SaveCatalog. LoadCatalog rejects every other version.
const CatalogFormatVersion = catalog.SnapshotVersion

// ErrBadCatalog is wrapped by every LoadCatalog error caused by the input
// itself: bad magic, unsupported version, checksum mismatch, truncation,
// or a payload whose indexes cannot be rebuilt consistently.
var ErrBadCatalog = catalog.ErrBadSnapshot

// SaveCatalog writes the catalog store as a versioned, checksummed binary
// snapshot: categories with their schemas, products in per-category
// insertion order, the per-category version counters, and the key-index
// ownership table. The bytes are deterministic: saving the same catalog
// twice yields identical output, so snapshots can be content-addressed
// and diffed.
func SaveCatalog(w io.Writer, store *Catalog) error {
	return catalog.EncodeStore(w, store)
}

// LoadCatalog reads a snapshot written by SaveCatalog, strictly: the
// magic, format version, payload length, and checksum are verified before
// any field is parsed, and corrupt, truncated, or internally inconsistent
// input returns an error wrapping ErrBadCatalog — never a panic or a
// partial store. Corruption errors name the byte offset of the bad
// frame. The loaded store is behaviorally identical to the one
// that was saved: same products and insertion order, same ProductByKey
// resolution, same CategoryVersion counters (so ProductsSince deltas and
// the match registry's version-driven invalidation carry straight on).
func LoadCatalog(r io.Reader) (*Catalog, error) {
	return catalog.DecodeStore(snapfmt.TrackOffset(r))
}

// BundleFormatVersion is the version number embedded in the binary format
// written by SaveBundle. LoadBundle rejects every other version.
const BundleFormatVersion = 1

// ErrBadBundle is wrapped by every LoadBundle error caused by the input
// itself — including a corrupt catalog or model half, whose errors also
// keep wrapping ErrBadCatalog / ErrBadModel respectively.
var ErrBadBundle = errors.New("prodsynth: invalid bundle snapshot")

var bundleMagic = [4]byte{'P', 'S', 'B', 'D'}

// maxBundlePayload bounds the payload length LoadBundle accepts, so a
// corrupt header cannot demand an absurd read.
const maxBundlePayload = 1 << 31

// SaveBundle writes both halves of a warm start — the catalog store and
// the learned Model — as one artifact: a framed outer block whose payload
// is a catalog snapshot followed by a model snapshot. A process holding a
// bundle cold-starts with zero catalog re-ingestion and zero re-learning
// (see LoadBundle). The bytes are deterministic.
func SaveBundle(w io.Writer, store *Catalog, m *Model) error {
	if m == nil {
		return errors.New("prodsynth: nil model")
	}
	var payload bytes.Buffer
	if err := catalog.EncodeStore(&payload, store); err != nil {
		return err
	}
	if err := core.EncodeOffline(&payload, m.offline); err != nil {
		return err
	}
	return snapfmt.Encode(w, bundleMagic, BundleFormatVersion, maxBundlePayload, payload.Bytes())
}

// LoadBundle reads an artifact written by SaveBundle and returns both
// halves, strictly: the outer framing and each embedded snapshot carry
// their own magic, version, and checksum, all verified before use, and
// any corruption returns an error wrapping ErrBadBundle — never a panic
// or partial state — and names the byte offset of the bad frame, outer
// or embedded, in absolute file coordinates. The typical serving-daemon
// boot is one LoadBundle followed by NewSystem(store, model).
func LoadBundle(r io.Reader) (*Catalog, *Model, error) {
	tr := snapfmt.TrackOffset(r)
	payload, err := snapfmt.Decode(tr, bundleMagic, BundleFormatVersion, maxBundlePayload, ErrBadBundle)
	if err != nil {
		return nil, nil, err
	}
	if err := snapfmt.ExpectEOF(tr, ErrBadBundle); err != nil {
		return nil, nil, err
	}
	// The embedded blocks sit right after the outer header; an offset
	// reader based there makes their errors absolute file positions.
	br := bytes.NewReader(payload)
	pr := snapfmt.NewOffsetReaderAt(br, snapfmt.HeaderSize)
	store, err := catalog.DecodeStoreFrom(pr)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: catalog half: %w", ErrBadBundle, err)
	}
	off, err := core.DecodeOfflineFrom(pr)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: model half: %w", ErrBadBundle, err)
	}
	if br.Len() != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing payload bytes after model half", ErrBadBundle, br.Len())
	}
	return store, &Model{offline: off}, nil
}
