package extract

import (
	"strings"
	"testing"
	"testing/quick"
)

const specPage = `
<html><head><title>Hitachi Deskstar</title>
<script>var tracking = "<table><tr><td>fake</td><td>row</td></tr></table>";</script>
</head>
<body>
<div class="nav"><ul><li><a href="/">Home</a></li><li><a href="/hd">Hard Drives</a></li></ul></div>
<h1>Hitachi Deskstar T7K500</h1>
<table class="specs">
  <tbody>
  <tr><td>Brand</td><td>Hitachi</td></tr>
  <tr><td>Capacity:</td><td>500 GB</td></tr>
  <tr><td>RPM</td><td>7200 rpm</td></tr>
  <tr><th>Interface</th><td>Serial ATA 300</td></tr>
  <tr><td colspan="2">Free shipping on orders over $50!</td></tr>
  <tr><td>Buy</td><td>Now</td><td>Extra cell makes this a 3-col row</td></tr>
  </tbody>
</table>
<table class="pricing">
  <tr><td>Price</td><td>$67.00</td></tr>
</table>
</body></html>`

func TestFromHTMLTables(t *testing.T) {
	spec := FromHTML(specPage)
	want := map[string]string{
		"Brand":     "Hitachi",
		"Capacity":  "500 GB",
		"RPM":       "7200 rpm",
		"Interface": "Serial ATA 300",
		"Price":     "$67.00",
	}
	if len(spec) != len(want) {
		t.Fatalf("extracted %d pairs: %v", len(spec), spec)
	}
	for name, val := range want {
		got, ok := spec.Get(name)
		if !ok || got != val {
			t.Errorf("%s = %q, %v; want %q", name, got, ok, val)
		}
	}
}

func TestExtractSkipsScriptContent(t *testing.T) {
	spec := FromHTML(specPage)
	if _, ok := spec.Get("fake"); ok {
		t.Error("extracted a pair from script raw text")
	}
}

func TestExtractTrimsTrailingColon(t *testing.T) {
	spec := FromHTML(`<table><tr><td>Capacity:</td><td>500</td></tr></table>`)
	if v, ok := spec.Get("Capacity"); !ok || v != "500" {
		t.Errorf("spec = %v", spec)
	}
}

func TestExtractFirstOccurrenceWins(t *testing.T) {
	spec := FromHTML(`<table>
		<tr><td>Brand</td><td>First</td></tr>
		<tr><td>Brand</td><td>Second</td></tr>
	</table>`)
	if v, _ := spec.Get("Brand"); v != "First" {
		t.Errorf("Brand = %q", v)
	}
	if len(spec) != 1 {
		t.Errorf("len = %d", len(spec))
	}
}

func TestExtractNestedTables(t *testing.T) {
	// Outer layout table with a nested spec table: the outer row has one
	// cell so it contributes nothing; the inner rows contribute.
	page := `<table><tr><td>
		<table>
			<tr><td>Brand</td><td>Seagate</td></tr>
			<tr><td>Model</td><td>Barracuda</td></tr>
		</table>
	</td></tr></table>`
	spec := FromHTML(page)
	if len(spec) != 2 {
		t.Fatalf("spec = %v", spec)
	}
	if v, _ := spec.Get("Model"); v != "Barracuda" {
		t.Errorf("Model = %q", v)
	}
}

func TestExtractUnclosedCells(t *testing.T) {
	page := `<table>
		<tr><td>Brand<td>Seagate
		<tr><td>Capacity<td>750 GB
	</table>`
	spec := FromHTML(page)
	if v, _ := spec.Get("Capacity"); v != "750 GB" {
		t.Errorf("spec = %v", spec)
	}
}

func TestExtractEmptyNameOrValueDropped(t *testing.T) {
	page := `<table>
		<tr><td></td><td>value</td></tr>
		<tr><td>Name</td><td>  </td></tr>
		<tr><td>Good</td><td>pair</td></tr>
	</table>`
	spec := FromHTML(page)
	if len(spec) != 1 {
		t.Errorf("spec = %v", spec)
	}
}

func TestExtractMaxValueLen(t *testing.T) {
	long := strings.Repeat("x ", 300)
	page := `<table><tr><td>Blurb</td><td>` + long + `</td></tr>
	<tr><td>Ok</td><td>short</td></tr></table>`
	spec := WithOptions(page, Options{MaxValueLen: 100})
	if _, ok := spec.Get("Blurb"); ok {
		t.Error("overlong value kept")
	}
	if _, ok := spec.Get("Ok"); !ok {
		t.Error("short value lost")
	}
}

func TestExtractMaxPairs(t *testing.T) {
	page := `<table>
		<tr><td>A</td><td>1</td></tr>
		<tr><td>B</td><td>2</td></tr>
		<tr><td>C</td><td>3</td></tr>
	</table>`
	spec := WithOptions(page, Options{MaxPairs: 2})
	if len(spec) != 2 {
		t.Errorf("spec = %v", spec)
	}
}

func TestExtractDefinitionList(t *testing.T) {
	page := `<dl><dt>Brand</dt><dd>Canon</dd><dt>Zoom</dt><dd>3x</dd></dl>`
	if got := FromHTML(page); len(got) != 0 {
		t.Errorf("default options should ignore <dl>: %v", got)
	}
	spec := WithOptions(page, Options{IncludeDefinitionLists: true})
	if v, _ := spec.Get("Zoom"); v != "3x" {
		t.Errorf("spec = %v", spec)
	}
}

func TestExtractBulletList(t *testing.T) {
	page := `<ul>
		<li>Resolution: 12 MP</li>
		<li>Optical Zoom: 3x</li>
		<li>Ships within 24 hours from our warehouse in beautiful downtown Omaha: call now</li>
		<li>No colon here</li>
	</ul>`
	if got := FromHTML(page); len(got) != 0 {
		t.Errorf("default options should ignore bullets: %v", got)
	}
	spec := WithOptions(page, Options{IncludeBulletLists: true})
	if v, _ := spec.Get("Resolution"); v != "12 MP" {
		t.Errorf("spec = %v", spec)
	}
	if v, _ := spec.Get("Optical Zoom"); v != "3x" {
		t.Errorf("spec = %v", spec)
	}
	if len(spec) != 2 {
		t.Errorf("prose bullet not rejected: %v", spec)
	}
}

func TestExtractNeverPanics(t *testing.T) {
	f := func(s string) bool {
		WithOptions(s, Options{IncludeBulletLists: true, IncludeDefinitionLists: true})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtractRealisticNoisyPage(t *testing.T) {
	// A page with marketing tables interleaved: the extractor harvests
	// noise too ("Availability"), which schema reconciliation must later
	// filter — here we only assert extraction shape.
	page := `
	<table><tr><td>In Stock</td><td>Yes</td></tr></table>
	<table>
	<tr><td>Mfr. Part #</td><td>HDT725050VLA360</td></tr>
	<tr><td>Cache</td><td>16 MB</td></tr>
	</table>`
	spec := FromHTML(page)
	if v, _ := spec.Get("Mfr. Part #"); v != "HDT725050VLA360" {
		t.Errorf("spec = %v", spec)
	}
	if len(spec) != 3 {
		t.Errorf("expected noisy pair kept for downstream filtering: %v", spec)
	}
}

func BenchmarkExtract(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(specPage)))
	for i := 0; i < b.N; i++ {
		FromHTML(specPage)
	}
}
