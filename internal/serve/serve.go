// Package serve is the synthesis daemon's HTTP layer: request handling,
// admission control, metrics, hot reload, and graceful drain around a
// prodsynth.System. cmd/synthd is a thin flag-parsing shell over this
// package; everything observable about the daemon is implemented — and
// tested — here.
//
// Endpoints:
//
//	POST /v1/synthesize         offers + pages in, products + fetch report out
//	POST /v1/synthesize/stream  waves in, NDJSON per-wave results (incl. seal events) out
//	POST /v1/reload             re-learn in the background, atomically swap the model
//	GET  /healthz               liveness (200 while the process runs)
//	GET  /readyz                readiness (503 while draining or unlearned)
//	GET  /metrics               Prometheus text format
//
// Production posture:
//
//   - Admission control: at most Options.MaxInFlight synthesis requests
//     run concurrently; excess load is shed immediately with 429 and a
//     Retry-After header instead of queueing without bound.
//   - Deadlines: every synthesis request runs under a context with the
//     server's RequestTimeout (a request may tighten, never extend, it),
//     so a stuck fetch cannot pin a slot forever.
//   - Hot reload: /v1/reload runs the Options.Reload callback in the
//     background and System.Use-swaps the result while traffic keeps
//     serving the old model; in-flight requests are pinned to the
//     generation they started with and every response carries its
//     model_generation, so a swap can never mix two models in one answer.
//   - Graceful drain: Run stops accepting on context cancellation
//     (SIGTERM in cmd/synthd), lets in-flight requests finish, and bounds
//     the wait with Options.DrainTimeout.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"prodsynth"
)

// Options configures a Server. The zero value serves with the defaults
// noted per field.
type Options struct {
	// MaxInFlight caps concurrently admitted synthesis requests (both
	// endpoints share the cap); excess requests are shed with 429.
	// Default 64.
	MaxInFlight int
	// RequestTimeout bounds each synthesis request's context. A request
	// may ask for less via timeout_ms, never more. Default 30s; negative
	// disables the server-side deadline.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain: when Run's context is
	// cancelled the listener closes and in-flight requests get up to this
	// long to finish. Default 15s; negative waits forever.
	DrainTimeout time.Duration
	// Reload produces a replacement Model for /v1/reload — typically a
	// background re-Learn over fresh historical data, or re-reading a
	// bundle. Nil disables the endpoint (501). It runs outside any
	// request deadline; errors are reported to the /v1/reload caller (in
	// wait mode) and counted in synthd_reloads_total{result="error"}.
	Reload func(ctx context.Context) (*prodsynth.Model, error)
	// WrapFetcher, when set, wraps the page fetcher built from each
	// request's pages before synthesis — the seam for a ResilientFetcher
	// retry policy in production and for gating fetches in tests.
	WrapFetcher func(prodsynth.PageFetcher) prodsynth.PageFetcher
	// Logger receives operational log lines. Nil uses log.Default.
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 15 * time.Second
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// Server is the daemon's HTTP layer over one prodsynth.System. Create
// with New, mount as an http.Handler (it serves its own mux), and run
// with Run for listener lifecycle + graceful drain.
type Server struct {
	sys  *prodsynth.System
	opts Options
	mux  *http.ServeMux
	adm  *admission

	draining  atomic.Bool
	reloading atomic.Bool

	reg *Registry
	// Instruments. Request counters are labeled per endpoint and code at
	// observation time; the fields here are the unlabeled singletons.
	inflight  *Gauge
	shed      *Counter
	modelGen  *Gauge
	offers    *Counter
	products  *Counter
	fetchOps  *Counter
	fetchAtt  *Counter
	fetchRet  *Counter
	fetchRec  *Counter
	fetchGave *Counter
	fetchBrk  *Counter
	feedOnly  *Counter
}

// New builds a Server over a learned System.
func New(sys *prodsynth.System, opts Options) *Server {
	s := &Server{sys: sys, opts: opts.withDefaults(), reg: NewRegistry()}
	s.inflight = s.reg.Gauge("synthd_inflight_requests", "Synthesis requests currently admitted.")
	s.shed = s.reg.Counter("synthd_shed_total", "Synthesis requests shed with 429 by admission control.")
	s.adm = newAdmission(s.opts.MaxInFlight, s.inflight, s.shed)
	s.modelGen = s.reg.Gauge("synthd_model_generation", "Generation of the model currently serving (bumped by every hot reload).")
	s.modelGen.Set(int64(sys.Generation()))
	s.offers = s.reg.Counter("synthd_offers_total", "Offers processed by synthesis requests.")
	s.products = s.reg.Counter("synthd_products_total", "Products synthesized by requests.")
	s.fetchOps = s.reg.Counter("synthd_fetch_operations_total", "Landing-page fetch operations started.")
	s.fetchAtt = s.reg.Counter("synthd_fetch_attempts_total", "Landing-page fetch attempts (including retries).")
	s.fetchRet = s.reg.Counter("synthd_fetch_retried_total", "Fetch operations that needed more than one attempt.")
	s.fetchRec = s.reg.Counter("synthd_fetch_recovered_total", "Fetch operations recovered by retries.")
	s.fetchGave = s.reg.Counter("synthd_fetch_gaveup_total", "Fetch operations whose final outcome was an error.")
	s.fetchBrk = s.reg.Counter("synthd_fetch_breaker_rejected_total", "Fetch operations rejected by an open circuit breaker.")
	s.feedOnly = s.reg.Counter("synthd_feed_only_offers_total", "Offers that proceeded on feed spec alone (lenient degradation).")

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/synthesize", s.instrument("synthesize", s.admitted(s.handleSynthesize)))
	s.mux.HandleFunc("POST /v1/synthesize/stream", s.instrument("synthesize_stream", s.admitted(s.handleStream)))
	s.mux.HandleFunc("POST /v1/reload", s.instrument("reload", s.handleReload))
	return s
}

// Metrics returns the server's registry, for embedding callers that want
// to add their own series to the same scrape.
func (s *Server) Metrics() *Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Run serves on ln until ctx is cancelled, then drains: the listener
// closes (new connections are refused, /readyz has already been failing
// since the cancel), in-flight requests run to completion, and the whole
// drain is bounded by Options.DrainTimeout. Returns nil after a clean
// drain; context.DeadlineExceeded if the drain timed out with requests
// still in flight; the listener error if serving failed outright.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		// Serve failed before any drain was requested.
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	//lint:allow ctxfirst drain must outlive the cancelled run ctx: a fresh root context (deadline-bounded below) is the point
	dctx := context.Background()
	if s.opts.DrainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, s.opts.DrainTimeout)
		defer cancel()
	}
	err := hs.Shutdown(dctx)
	<-serveErr // always http.ErrServerClosed once Shutdown ran
	return err
}

// Draining reports whether the server has begun graceful drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps a handler with request counting and latency
// observation, labeled by endpoint and status code.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.reg.Counter("synthd_requests_total", "HTTP requests served.",
			"endpoint", endpoint, "code", fmt.Sprint(sw.code)).Inc()
		s.reg.Histogram("synthd_request_seconds", "HTTP request latency in seconds.",
			"endpoint", endpoint).Observe(time.Since(start).Seconds())
	}
}

// admitted wraps a synthesis handler with the admission controller.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.adm.tryAcquire() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("admission: %d synthesis requests already in flight", s.opts.MaxInFlight))
			return
		}
		defer s.adm.release()
		h(w, r)
	}
}

// statusWriter records the status code written (and forwards Flush, which
// the NDJSON stream handler depends on).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg}) //nolint:errcheck // best effort on an error path
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.sys.Model() == nil:
		http.Error(w, "no model", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteTo(w) //nolint:errcheck // a dropped scrape is the scraper's problem
}

// requestCtx derives the synthesis context: the server's timeout, tightened
// by the request's timeout_ms when that is smaller.
func (s *Server) requestCtx(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	timeout := s.opts.RequestTimeout
	if reqTO := time.Duration(timeoutMillis) * time.Millisecond; reqTO > 0 && (timeout <= 0 || reqTO < timeout) {
		timeout = reqTO
	}
	if timeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), timeout)
}

// observeResult folds a synthesis result into the fetch/throughput
// counters.
func (s *Server) observeResult(res *prodsynth.Result) {
	s.offers.Add(uint64(res.Offers))
	s.products.Add(uint64(len(res.Products)))
	s.observeFetch(res.Fetch)
}

func (s *Server) observeFetch(f prodsynth.FetchReport) {
	s.fetchOps.Add(uint64(f.Attempted))
	s.fetchAtt.Add(uint64(f.Attempts))
	s.fetchRet.Add(uint64(f.Retried))
	s.fetchRec.Add(uint64(f.Recovered))
	s.fetchGave.Add(uint64(f.GaveUp))
	s.fetchBrk.Add(uint64(f.BreakerRejected))
	s.feedOnly.Add(uint64(len(f.FeedOnly)))
}

// fetcher builds the request's page fetcher (rejecting conflicting
// duplicate URLs) and applies the server's WrapFetcher seam.
func (s *Server) fetcher(pages []PageJSON) (prodsynth.PageFetcher, error) {
	mf, err := fetcherFromWire(pages)
	if err != nil {
		return nil, err
	}
	var pf prodsynth.PageFetcher = mf
	if s.opts.WrapFetcher != nil {
		pf = s.opts.WrapFetcher(pf)
	}
	return pf, nil
}

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req SynthesizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	fetcher, err := s.fetcher(req.Pages)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMillis)
	defer cancel()

	res, err := s.sys.SynthesizeContext(ctx, OffersFromWire(req.Offers), fetcher)
	if err != nil {
		writeError(w, synthesisErrorCode(ctx, err), err.Error())
		return
	}
	s.observeResult(res)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(ResponseFromResult(res)); err != nil {
		s.opts.Logger.Printf("synthd: write response: %v", err)
	}
}

// synthesisErrorCode maps a pipeline failure to a status: deadline 504,
// client-gone 499 (nginx's convention; the client will never read it),
// anything else 500.
func synthesisErrorCode(ctx context.Context, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var req StreamRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	fetcher, err := s.fetcher(req.Pages)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMillis)
	defer cancel()

	waves := make(chan []prodsynth.Offer)
	out, err := s.sys.SynthesizeStream(ctx, waves, fetcher, streamOptionsFromWire(&req))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Feed the request's waves; the pipeline applies backpressure. The
	// send select on ctx keeps the feeder from deadlocking when the
	// stream dies mid-request.
	//lint:allow spawncheck feeder exits when the request ctx cancels or every wave is sent; the stream it feeds is drained to completion by writeNDJSON below
	go func() {
		defer close(waves)
		for _, wave := range req.Waves {
			select {
			case waves <- OffersFromWire(wave):
			case <-ctx.Done():
				return
			}
		}
	}()

	if err := writeNDJSON(w, out, func(res prodsynth.StreamResult) {
		if res.Err == nil {
			s.observeResult(&res.Result)
		}
	}); err != nil {
		s.opts.Logger.Printf("synthd: stream write: %v", err)
	}
	// A cancelled context means the stream closed without its final
	// result; the NDJSON framing ends with an error line so the client
	// can tell truncation from completion.
	if ctx.Err() != nil {
		writeNDJSONError(w, ctx.Err())
	}
}

// handleReload swaps in a new model without downtime. The learn runs in
// the background — the endpoint answers 202 immediately — unless the
// caller asks to wait (?wait=1), which blocks until the swap and reports
// the new generation (the deterministic mode tests and operators use).
// One reload runs at a time; concurrent requests get 409.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.Reload == nil {
		writeError(w, http.StatusNotImplemented, "reload is not configured on this server")
		return
	}
	if !s.reloading.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, "a reload is already in flight")
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	done := make(chan error, 1)
	go func() {
		defer s.reloading.Store(false)
		// Deliberately not the request context: a background reload must
		// survive the 202 response (and the client's disconnect).
		//lint:allow ctxfirst background reload outliving the triggering request is the endpoint's contract
		model, err := s.opts.Reload(context.Background())
		if err != nil {
			s.reg.Counter("synthd_reloads_total", "Hot reloads by outcome.", "result", "error").Inc()
			s.opts.Logger.Printf("synthd: reload failed: %v", err)
			done <- err
			return
		}
		s.sys.Use(model)
		gen := s.sys.Generation()
		s.modelGen.Set(int64(gen))
		s.reg.Counter("synthd_reloads_total", "Hot reloads by outcome.", "result", "ok").Inc()
		s.opts.Logger.Printf("synthd: reload complete, serving model generation %d", gen)
		done <- nil
	}()

	w.Header().Set("Content-Type", "application/json")
	if !wait {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"status":     "accepted",
			"generation": s.sys.Generation(),
		})
		return
	}
	if err := <-done; err != nil {
		writeError(w, http.StatusInternalServerError, "reload: "+err.Error())
		return
	}
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"status":     "ok",
		"generation": s.sys.Generation(),
	})
}
