// Daemon: embed the synthesis daemon's HTTP layer (internal/serve, the
// engine behind cmd/synthd) in your own process — learn a model, serve
// /v1/synthesize over a real listener, observe the Prometheus metrics,
// hot-swap the model via /v1/reload with zero downtime, and drain
// gracefully. Everything cmd/synthd does, minus the flag parsing.
//
//	go run ./examples/daemon
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"prodsynth"
	"prodsynth/internal/serve"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Learn a model over a synthetic marketplace — in production this is
	// one LoadBundle call instead (see examples/quickstart).
	market := prodsynth.GenerateMarketplace(prodsynth.MarketplaceConfig{
		Seed:                42,
		CategoriesPerDomain: 2,
		ProductsPerCategory: 20,
		Merchants:           24,
	})
	model, err := prodsynth.Learn(ctx, market.Catalog, market.HistoricalOffers, prodsynth.MapFetcher(market.Pages))
	if err != nil {
		log.Fatal(err)
	}
	sys := prodsynth.NewSystem(market.Catalog, model)

	// The serving layer: admission control (shed with 429 past
	// MaxInFlight), per-request deadlines, /metrics, hot reload, drain.
	srv := serve.New(sys, serve.Options{
		MaxInFlight:    8,
		RequestTimeout: 10 * time.Second,
		Reload: func(ctx context.Context) (*prodsynth.Model, error) {
			// Production would re-learn from fresh data or re-read a
			// bundle; the swap below is atomic either way.
			return prodsynth.Learn(ctx, market.Catalog, market.HistoricalOffers, prodsynth.MapFetcher(market.Pages))
		},
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	runCtx, shutdown := context.WithCancel(ctx)
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(runCtx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon up at %s (generation %d)\n\n", base, sys.Generation())

	// One synthesize request: the dataset's incoming offers and pages,
	// in the wire shape. The response is byte-deterministic — identical
	// to what a direct SynthesizeContext call would produce.
	body, _ := json.Marshal(serve.SynthesizeRequest{
		Offers: serve.WireOffers(market.IncomingOffers),
		Pages:  serve.WirePages(market.Pages),
	})
	resp, err := http.Post(base+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var res serve.SynthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /v1/synthesize: %d offers -> %d products (model generation %d)\n",
		res.Offers, len(res.Products), res.ModelGeneration)

	// Hot reload: re-learn in the background, atomic swap, generation
	// bump. ?wait=1 blocks until the swap so the next line sees it.
	resp, err = http.Post(base+"/v1/reload?wait=1", "application/json", strings.NewReader("{}"))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("POST /v1/reload: now serving generation %d, zero downtime\n", sys.Generation())

	// The metrics scrape: request counts, latency histogram, generation.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nGET /metrics (excerpt):")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "synthd_requests_total") ||
			strings.HasPrefix(line, "synthd_model_generation") ||
			strings.HasPrefix(line, "synthd_products_total") {
			fmt.Println("  " + line)
		}
	}

	// Graceful drain: cancel Run's context (cmd/synthd wires SIGTERM to
	// this); in-flight requests finish, then Run returns.
	shutdown()
	if err := <-runDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly")
}
