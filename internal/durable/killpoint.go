package durable

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// KillpointEnv is the environment variable driving deterministic crash
// injection: "<name>:<n>" kills the process (SIGKILL, no deferred
// cleanup, no flushing) the n-th time the named killpoint is reached.
// Names in use:
//
//	append            after the n-th record is fully written and synced
//	append-torn       the n-th record is written only partially (a torn
//	                  tail), synced, then the process dies
//	compact-snapshots after compaction has written the new epoch's shard
//	                  snapshots but before the manifest is published
//	compact-manifest  after the new manifest is published but before the
//	                  old epoch's files are deleted
//
// Only the crash-recovery tests set this; production never does.
const KillpointEnv = "DURABLE_KILLPOINT"

// killpoint counts hits of one named crash site and dies on the n-th.
type killpoint struct {
	mu        sync.Mutex
	name      string
	remaining int
}

// parseKillpoint reads KillpointEnv; an unset or malformed value yields
// an inert killpoint that never fires.
func parseKillpoint() *killpoint {
	v := os.Getenv(KillpointEnv)
	name, count, ok := strings.Cut(v, ":")
	if !ok || name == "" {
		return &killpoint{}
	}
	n, err := strconv.Atoi(count)
	if err != nil || n <= 0 {
		return &killpoint{}
	}
	return &killpoint{name: name, remaining: n}
}

// hit reports whether this call is the fatal n-th hit of name. The
// caller performs any staged damage (e.g. the torn partial write) and
// then calls die; hit itself does not kill, so the append path can sync
// what it wrote first.
func (k *killpoint) hit(name string) bool {
	if k.name != name {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.remaining <= 0 {
		return false
	}
	k.remaining--
	return k.remaining == 0
}

// die SIGKILLs the current process: no deferred functions, no exit
// handlers, no flushing — the closest portable stand-in for a power cut.
func die() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {} // the signal is asynchronous; never execute past this point
}

// maybeKill is hit + die for sites with no staged damage.
func (k *killpoint) maybeKill(name string) {
	if k.hit(name) {
		die()
	}
}
