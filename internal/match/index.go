package match

import (
	"math"
	"sync"

	"prodsynth/internal/catalog"
	"prodsynth/internal/text"
)

// TitleIndex is an inverted index from tokens to products, used to match
// offer titles against structured product records at scale: instead of
// scanning every product in the category (O(|products|) per offer), a
// lookup touches only the posting lists of the title's tokens.
//
// Scoring is weighted token containment: each title token found in a
// product's token set contributes its IDF weight; the score is the
// fraction of the title's total IDF mass covered by the product. Rare
// tokens (model numbers, part codes) therefore dominate, which is what
// makes title matching work — "Hitachi" appears in hundreds of products,
// "HDT725050VLA360" in one.
//
// The category vocabulary is interned into a text.Dict, so all per-token
// state is held in flat arrays indexed by dense token ID: postings and
// IDF weights are array loads on the match path, not string-keyed map
// probes, and match-time accumulation runs over a pooled dense scratch
// array with a single argmax pass instead of a map plus sort.
//
// Build the index once per category with NewTitleIndex, or derive an
// index covering newly appended products from an existing one with
// extend; Match is safe for concurrent use afterwards.
type TitleIndex struct {
	dict     *text.Dict
	postings [][]int32 // token ID -> product ordinals (ascending)
	ids      []string  // ordinal -> product ID
	numDocs  int

	// IDF weights derive from posting-list lengths and are recomputed
	// lazily on first Match, so a chain of incremental extends pays the
	// O(vocabulary) recompute once, not per delta.
	idfOnce sync.Once
	idf     []float64 // token ID -> IDF weight
	maxIDF  float64   // IDF charged to tokens the catalog has never seen
}

// NewTitleIndex indexes the token sets of the given products' attribute
// values.
func NewTitleIndex(products []catalog.Product) *TitleIndex {
	return buildIndex(nil, products)
}

// extend returns an index covering prev's products plus added, sharing
// prev's interned vocabulary and posting lists: added products append to
// the existing structures instead of re-tokenizing the whole category.
// Token IDs, posting order, and therefore match output are identical to a
// cold build over the concatenated product list. prev stays valid for
// concurrent Match calls (appends touch only slots past its lengths), but
// extends of the same lineage must be serialized by the caller — the
// registry does so under its shard lock via the entry chain.
func (idx *TitleIndex) extend(added []catalog.Product) *TitleIndex {
	if len(added) == 0 {
		return idx
	}
	return buildIndex(idx, added)
}

func buildIndex(prev *TitleIndex, added []catalog.Product) *TitleIndex {
	idx := &TitleIndex{}
	var b *text.DictBuilder
	if prev != nil {
		b = prev.dict.Extend()
		idx.ids = prev.ids
		idx.postings = append(make([][]int32, 0, len(prev.postings)+16), prev.postings...)
	} else {
		b = text.NewDictBuilder()
	}

	var tokIDs []uint32
	var buf []byte
	// lastOrd[id] remembers the last ordinal inserted into postings[id]:
	// O(1) per-product dedup (each product contributes one posting per
	// distinct token) without a per-product set.
	lastOrd := make([]int32, b.Len())
	for i := range lastOrd {
		lastOrd[i] = -1
	}
	for _, p := range added {
		ord := int32(len(idx.ids))
		idx.ids = append(idx.ids, p.ID)
		tokIDs = tokIDs[:0]
		for _, av := range p.Spec {
			tokIDs, buf = text.DefaultTokenizer.TokenizeIDs(b, tokIDs, buf, av.Value)
		}
		for len(idx.postings) < b.Len() {
			idx.postings = append(idx.postings, nil)
			lastOrd = append(lastOrd, -1)
		}
		for _, id := range tokIDs {
			if lastOrd[id] == ord {
				continue
			}
			lastOrd[id] = ord
			idx.postings[id] = append(idx.postings[id], ord)
		}
	}
	idx.dict = b.Build()
	idx.numDocs = len(idx.ids)
	return idx
}

func (idx *TitleIndex) ensureIDF() {
	idx.idfOnce.Do(func() {
		n := float64(idx.numDocs)
		idf := make([]float64, len(idx.postings))
		for id, post := range idx.postings {
			if len(post) > 0 {
				idf[id] = math.Log(1 + n/float64(len(post)))
			}
		}
		idx.maxIDF = math.Log(1 + n)
		idx.idf = idf
	})
}

// Len returns the number of indexed products.
func (idx *TitleIndex) Len() int { return idx.numDocs }

// matchScratch is the pooled per-call state of TitleIndex.Match. mass and
// gen are dense per-ordinal arrays sized to the largest index seen by this
// scratch; gen stamps make mass entries from earlier calls invisible
// without clearing the array between calls.
type matchScratch struct {
	buf     []byte   // token assembly scratch
	known   []uint32 // distinct indexed title-token IDs, in title order
	unknown []byte   // distinct unindexed title tokens, concatenated
	bounds  []int    // unknown segment boundaries (bounds[i]:bounds[i+1])
	mass    []float64
	gen     []uint32
	cur     uint32
}

var scratchPool = sync.Pool{New: func() any { return new(matchScratch) }}

// Match returns the best-scoring product for the title and its score in
// [0,1], or ("", 0) when the index is empty or the title has no tokens.
// Ties break toward the product indexed first, keeping results
// deterministic.
func (idx *TitleIndex) Match(title string) (productID string, score float64) {
	if idx.numDocs == 0 {
		return "", 0
	}
	idx.ensureIDF()

	s := scratchPool.Get().(*matchScratch)
	if cap(s.mass) < idx.numDocs {
		s.mass = make([]float64, idx.numDocs)
		s.gen = make([]uint32, idx.numDocs)
		s.cur = 0
	}
	mass := s.mass[:idx.numDocs]
	gen := s.gen[:idx.numDocs]
	if s.cur == math.MaxUint32 {
		clear(s.gen)
		s.cur = 0
	}
	s.cur++
	cur := s.cur
	s.known = s.known[:0]
	s.unknown = s.unknown[:0]
	s.bounds = append(s.bounds[:0], 0)

	// One pass over the title's distinct tokens (first-occurrence order,
	// exactly as the pre-interning implementation deduplicated), tracking
	// the argmax inline: mass only grows, and ties resolve toward the
	// smaller ordinal at every update, so the final (bestOrd, bestMass) is
	// the smallest ordinal achieving the maximum — the same product the
	// old sort-then-scan argmax selected.
	var totalMass, bestMass float64
	bestOrd := int32(-1)
	sc := text.DefaultTokenizer.Scanner(s.buf, title)
scan:
	for {
		tok, ok := sc.Next()
		if !ok {
			break
		}
		if id, ok := idx.dict.LookupBytes(tok); ok && int(id) < len(idx.postings) {
			for _, k := range s.known {
				if k == id {
					continue scan
				}
			}
			s.known = append(s.known, id)
			w := idx.idf[id]
			totalMass += w
			for _, ord := range idx.postings[id] {
				m := w
				if gen[ord] == cur {
					m = mass[ord] + w
				}
				gen[ord] = cur
				mass[ord] = m
				if m > bestMass || (m == bestMass && ord < bestOrd) {
					bestMass = m
					bestOrd = ord
				}
			}
			continue
		}
		// Unknown tokens still count toward the denominator with the
		// maximum IDF: a title full of tokens the catalog has never seen
		// should not match anything confidently. Distinct unknown
		// spellings each count once, so they deduplicate by bytes.
		for i := 0; i+1 < len(s.bounds); i++ {
			if string(s.unknown[s.bounds[i]:s.bounds[i+1]]) == string(tok) {
				continue scan
			}
		}
		s.unknown = append(s.unknown, tok...)
		s.bounds = append(s.bounds, len(s.unknown))
		totalMass += idx.maxIDF
	}
	s.buf = sc.Buffer()

	if bestOrd >= 0 {
		productID = idx.ids[bestOrd]
		score = bestMass / totalMass
	}
	scratchPool.Put(s)
	return productID, score
}
