// Package prodsynth is an end-to-end implementation of the product
// synthesis pipeline from "Synthesizing Products for Online Catalogs"
// (Nguyen, Fuxman, Paparizos, Freire, Agrawal — PVLDB 4(7), 2011).
//
// Given a product catalog and merchant offers (terse feed rows plus landing
// pages), the system learns attribute correspondences between merchant
// vocabularies and the catalog schema from historical offer-to-product
// matches — with an automatically constructed training set, no manual
// labels — and then synthesizes new, structured product instances from
// offers that match nothing in the catalog.
//
// The API separates the two phases of the paper's Figure 4 architecture.
// The offline phase is a function producing an immutable, serializable
// [Model] artifact; the runtime phase is a [System] constructed over a
// catalog from such a Model:
//
//	store := prodsynth.NewCatalog()
//	// ... add categories and known products ...
//	model, err := prodsynth.Learn(ctx, store, historicalOffers, pages)
//	if err != nil { ... }
//	sys := prodsynth.NewSystem(store, model)
//	result, err := sys.SynthesizeContext(ctx, incomingOffers, pages)
//	// result.Products now holds catalog-ready product instances.
//
// Because a System cannot be built on the new path without a Model, "not
// learned yet" is no longer a runtime state to guard against. Models are
// plain values: save one with [SaveModel], warm-start a fresh process with
// [LoadModel], and swap a re-learned model into a serving System atomically
// with [System.Use].
//
// # Migrating from the v1 API
//
// The original API hid the learned state inside a mutable System. Those
// entry points remain as thin deprecated shims (see compat.go), so v1 code
// keeps compiling, but new code should use the Model-first forms:
//
//	v1 (deprecated)                     v2
//	----------------------------------  ------------------------------------------
//	sys := New(store, cfg)              model, err := Learn(ctx, store, hist, pages, WithConfig(cfg))
//	err := sys.Learn(hist, pages)       sys := NewSystem(store, model, WithConfig(cfg))
//	sys.Stats()                         sys.Model().Stats()   (or keep the *Model)
//	sys.Correspondences()               sys.Model().Correspondences()
//	res, err := sys.Synthesize(in, p)   res, err := sys.SynthesizeContext(ctx, in, p)
//	sys.SynthesizeBatches(bs, p)        sys.SynthesizeBatchesContext(ctx, bs, p)
//
// Every v2 entry point is context-first: cancelling the context stops the
// pipeline's worker pools at the next stage boundary with ctx.Err(), and
// never leaks a goroutine.
//
// # Pipeline
//
// Internally every entry point composes the same pull-based iterator
// stages (classify → extract → match/reconcile → cluster → fuse); a
// stage computes only when the consumer pulls, and parallel stages
// preserve input order, so results are byte-identical for every
// [Config.Workers] and [WithStageBuffer] setting. [System.SynthesizeStream]
// additionally pipelines across waves — wave n+1 is prepared while wave
// n fuses — and reports [StreamResult.Sealed] events when the cross-batch
// cluster memory decides a cluster can no longer grow: the signal that a
// provisional product is final and safe to commit downstream. See
// README.md ("Pipeline architecture") for the stage diagram, buffer and
// backpressure semantics, and a ClusterSealed consumer recipe.
//
// # Robustness and degraded mode
//
// Landing-page retrieval is the pipeline's one external boundary, and it
// is allowed to fail. Configure [WithFetchPolicy] (or [Config.Fetch]) and
// every entry point wraps the caller's [PageFetcher] in a resilience
// layer — per-attempt deadlines, bounded retries with jittered backoff, a
// per-host circuit breaker, and a concurrency gate — wrapped once per run
// (once per stream), so breaker state spans a whole batch or wave
// sequence. The degraded-mode guarantees are:
//
//   - Lenient mode (the default): an offer whose page cannot be fetched
//     after all retries proceeds on its feed spec alone. Nothing is
//     dropped and nothing is silent — every result carries a
//     [FetchReport] with exact counters and the sorted IDs of the offers
//     that went feed-only ([FetchReport.FeedOnly]), so graceful
//     degradation is observable and alertable.
//   - Strict mode ([WithStrictPages]): the first fetch failure in offer
//     input order fails the run (a batch or wave records the error and
//     later batches continue). Offline learning honors the same knob.
//   - Determinism: retries change when a fetch runs, never what it
//     returns, so under any fault schedule that is a pure function of
//     (URL, attempt) the synthesized output is byte-identical across
//     worker counts and stage buffering — and identical to a no-fault
//     run when retries recover every page. The circuit breaker is the
//     one exception: it reacts to cross-offer ordering, so runs that
//     trip it keep deterministic products per wave but may vary in
//     which fetches were rejected.
//   - Cancellation reaches in-flight fetches: a fetcher implementing
//     [ContextFetcher] observes pipeline cancellation mid-retry and
//     mid-backoff instead of being abandoned.
//
// Fault injection for tests and drills is built in: [NewFaultyFetcher]
// scripts deterministic per-(URL, attempt) error/latency schedules and
// [NewFakeFetchClock] removes the wall clock from backoff and cooldowns.
// See README.md ("Robustness") for the recipe.
//
// Warm-starting a long-lived process: the catalog store persists the same
// way the Model does ([SaveCatalog]/[LoadCatalog]), and [SaveBundle]
// writes both halves as one artifact, so a daemon cold-starts from a
// single file with zero catalog re-ingestion and zero re-learning —
//
//	// learner process: ingest the catalog, learn, persist both halves
//	model, _ := prodsynth.Learn(ctx, store, historical, pages)
//	f, _ := os.Create("warm.psbd")
//	prodsynth.SaveBundle(f, store, model)
//	f.Close()
//
//	// serving process: one load, nothing re-derived
//	f, _ := os.Open("warm.psbd")
//	store, model, err := prodsynth.LoadBundle(f) // strict: checksums + versions verified
//	sys := prodsynth.NewSystem(store, model)
//	// ... serve SynthesizeContext / SynthesizeStream ...
//	sys.Use(relearned)                           // atomic hot-swap, no downtime
//
// A loaded catalog is behaviorally identical to the one that was saved —
// same products and insertion order, same ProductByKey resolution, same
// CategoryVersion counters — so ProductsSince deltas and the match
// registry's version-driven invalidation carry straight on. The halves
// remain independently useful: [SaveModel]/[LoadModel] move a re-learned
// model between processes that already hold the catalog, and
// [SaveCatalog]/[LoadCatalog] snapshot a growing catalog on its own.
//
// # Durability and out-of-core state
//
// Where bundles snapshot a moment, [OpenDurable] makes the catalog
// continuously crash-safe: the store lives in a data directory as
// compacted per-shard snapshots plus an append-only, CRC-framed
// write-ahead log, every commit (including each product [System.AddToCatalog]
// adds mid-stream) is logged before the call returns, and reopening the
// directory recovers a byte-identical store — snapshot load, idempotent
// log replay, torn-tail truncation — even after SIGKILL mid-write.
// [Durable.Run] compacts in the background while serving, and
// [WithDurability] extends the same data directory to the streaming side:
// clusters evicted by [StreamOptions.MaxOpenClusters]/MaxIdleWaves spill
// to disk and revive when their keys resurface, keeping bounded-memory
// streaming byte-identical to unbounded. cmd/synthd exposes the whole
// layer as -data-dir. See README.md ("Durability & out-of-core").
//
// # Serving
//
// cmd/synthd packages the daemon recipe above as a binary: one LoadBundle
// at boot, then synthesis over HTTP until SIGTERM. Its HTTP layer
// (internal/serve) adds the production posture a library call leaves to
// the caller — semaphore admission control that sheds excess load with
// 429 instead of queueing, per-request deadlines, Prometheus-format
// metrics with zero dependencies, hot reload via [System.Use], and a
// deadline-bounded graceful drain:
//
//	synthd -bundle warm.psbd -addr :8080      # boot and serve
//	curl -X POST d:8080/v1/synthesize         # offers+pages → products
//	curl -X POST d:8080/v1/reload             # background re-learn + atomic swap
//	curl d:8080/metrics                       # request/latency/fetch/generation series
//
// Every synthesis call — direct or served — pins its (model, generation)
// pair in one atomic load and stamps [Result.ModelGeneration], so during
// a hot swap no response ever mixes two models; the daemon's responses
// are byte-identical to direct [System.SynthesizeContext] output for the
// same request and generation.
//
// # Invariants, machine-checked
//
// The contracts above are not prose-only: internal/lint is a repo-specific
// analyzer suite (run as cmd/vetsynth in CI and as a self-scan test) that
// machine-checks them — timing in the Clock-bearing packages goes through
// the injectable Clock (clockcheck), exported entry points that block or
// spawn take a context first and library code never manufactures root
// contexts (ctxfirst), shard critical sections stay free of channel ops,
// I/O, and user callbacks (lockscope), Err* sentinels are wrapped with %w
// so errors.Is matches through every decoder (errwrapcheck), the v1 shims
// keep their Deprecated: markers and nothing else carries one (shimcheck),
// and raw goroutines have a visible join (spawncheck). A justified
// exception is allowlisted in the source with `//lint:allow <analyzer>
// <reason>` — the reason is mandatory — so every exception in the tree
// documents why it is one.
//
// The subpackages under internal implement each component of the paper's
// Figure 4 architecture plus every substrate the evaluation needs: an HTML
// extractor, distributional similarity measures, logistic regression,
// baseline matchers (DUMAS, LSD, COMA++-style), and a synthetic marketplace
// generator standing in for the proprietary Bing Shopping corpus.
package prodsynth

import (
	"errors"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/correspond"
	"prodsynth/internal/fetch"
	"prodsynth/internal/fusion"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/synth"
)

// ErrNotLearned is returned by the synthesis entry points of a System that
// holds no Model — possible only on the deprecated v1 path, where New
// builds a System before Learn has run. Systems built with NewSystem carry
// their Model from construction.
var ErrNotLearned = errors.New("prodsynth: Learn must succeed before Synthesize")

// Re-exported data model. These aliases are the supported public surface;
// their methods are documented on the internal definitions.
type (
	// Catalog is the product catalog store: categories, schemas,
	// products, key indexes. Safe for concurrent use.
	Catalog = catalog.Store
	// Category is a taxonomy node with a schema.
	Category = catalog.Category
	// Schema is a category's attribute list.
	Schema = catalog.Schema
	// Attribute is one schema attribute.
	Attribute = catalog.Attribute
	// AttributeValue is one <name, value> pair.
	AttributeValue = catalog.AttributeValue
	// Spec is an attribute-value specification.
	Spec = catalog.Spec
	// Product is a catalog product instance.
	Product = catalog.Product
	// Offer is a merchant offer.
	Offer = offer.Offer
	// SchemaKey identifies a (merchant, category) pair.
	SchemaKey = offer.SchemaKey
	// Config controls the pipeline (extraction, matching, training,
	// thresholds, fusion strategy, parallelism).
	Config = core.Config
	// PageFetcher retrieves landing pages by URL.
	PageFetcher = core.PageFetcher
	// MapFetcher serves pages from an in-memory map.
	MapFetcher = core.MapFetcher
	// PageDoc is one landing page in a page list: URL plus HTML body.
	PageDoc = core.PageDoc
	// Correspondence is a scored attribute correspondence
	// <catalog attr, merchant attr, merchant, category>.
	Correspondence = correspond.Scored
	// Synthesized is a product instance produced by the pipeline.
	Synthesized = fusion.Synthesized
	// OfflineStats summarizes the offline learning phase (§5.1 numbers).
	OfflineStats = core.OfflineStats
	// Marketplace is a generated synthetic marketplace with ground truth.
	Marketplace = synth.Dataset
	// MarketplaceConfig sizes a generated marketplace.
	MarketplaceConfig = synth.Config
)

// Resilient ingestion: the fetch layer's public surface (see the
// "Robustness and degraded mode" section of the package documentation).
type (
	// FetchPolicy configures the resilience layer around a PageFetcher:
	// per-attempt deadlines, bounded retries with full-jitter backoff, a
	// per-host circuit breaker, and a concurrency gate. The zero value
	// disables wrapping.
	FetchPolicy = fetch.Policy
	// FetchReport is the per-run fetch accounting on every Result:
	// counters plus the IDs of offers that proceeded feed-only.
	FetchReport = fetch.Report
	// FetchCounters are the fetch-operation counts inside a FetchReport.
	FetchCounters = fetch.Counters
	// ContextFetcher is the context-aware fetch boundary
	// (FetchContext(ctx, url)); fetchers implementing it observe
	// pipeline cancellation and per-attempt deadlines mid-fetch.
	ContextFetcher = fetch.ContextPages
	// ResilientFetcher wraps any PageFetcher with a FetchPolicy's
	// defenses; the entry points build one automatically when a policy
	// is configured. Implements PageFetcher, ContextFetcher, and
	// per-lifetime counters.
	ResilientFetcher = fetch.Resilient
	// FaultyFetcher injects a deterministic fault schedule in front of a
	// PageFetcher — the built-in fault-injection harness.
	FaultyFetcher = fetch.Faulty
	// FaultSchedule scripts fault outcomes as a pure function of
	// (URL, attempt number).
	FaultSchedule = fetch.Schedule
	// FaultScheduleFunc adapts a function to FaultSchedule.
	FaultScheduleFunc = fetch.ScheduleFunc
	// FaultOutcome is one scripted attempt outcome (error, latency).
	FaultOutcome = fetch.Outcome
	// FetchClock abstracts time for backoff, cooldowns, and injected
	// latency.
	FetchClock = fetch.Clock
	// FakeFetchClock is a manually driven FetchClock: sleeps advance it
	// instantly, so retry schedules run without wall-clock delays.
	FakeFetchClock = fetch.FakeClock
)

// Fetch-layer sentinel errors.
var (
	// ErrFetchBreakerOpen wraps fetch errors rejected by an open
	// per-host circuit breaker.
	ErrFetchBreakerOpen = fetch.ErrBreakerOpen
	// ErrFetchPermanent marks a fetch error as not worth retrying.
	ErrFetchPermanent = fetch.ErrPermanent
	// ErrFetchInjected wraps every fault a FaultyFetcher injects.
	ErrFetchInjected = fetch.ErrInjected
)

// DefaultFetchPolicy is the recommended serving configuration: 10s per
// attempt, 3 attempts with 50ms..2s full-jitter backoff, and a 5-failure
// per-host breaker with 30s cooldown.
func DefaultFetchPolicy() FetchPolicy { return fetch.DefaultPolicy() }

// NewResilientFetcher wraps a PageFetcher with a FetchPolicy's defenses
// explicitly — useful for sharing one breaker/counter state across many
// runs; the entry points otherwise wrap per run via WithFetchPolicy.
func NewResilientFetcher(inner PageFetcher, p FetchPolicy) *ResilientFetcher {
	return fetch.NewResilient(inner, p)
}

// NewFaultyFetcher wraps a PageFetcher with a scripted fault schedule: the
// k-th fetch of a URL suffers schedule.Outcome(url, k). A nil clock sleeps
// injected latency on the wall clock; pass NewFakeFetchClock() to run
// latency schedules instantly.
func NewFaultyFetcher(inner PageFetcher, schedule FaultSchedule, clock FetchClock) *FaultyFetcher {
	return fetch.NewFaulty(inner, schedule, clock)
}

// NewFakeFetchClock returns a manually driven clock starting at a fixed
// epoch.
func NewFakeFetchClock() *FakeFetchClock { return fetch.NewFakeClock() }

// FailFirstFaults scripts the canonical recovery drill: every URL fails
// its first n attempts and succeeds from attempt n+1 on.
func FailFirstFaults(n int) FaultSchedule { return fetch.FailFirst(n) }

// FlakyFaults scripts seeded random faults: each (URL, attempt) fails
// with probability p, deterministically and independent of call order.
func FlakyFaults(seed int64, p float64) FaultSchedule { return fetch.Flaky(seed, p) }

// HostOutageFaults scripts a hard outage of one host (every attempt for
// its URLs fails) — the drill that trips the per-host circuit breaker.
func HostOutageFaults(host string) FaultSchedule { return fetch.HostOutage(host) }

// Attribute kinds, re-exported for schema construction.
const (
	KindCategorical = catalog.KindCategorical
	KindNumeric     = catalog.KindNumeric
	KindText        = catalog.KindText
	KindIdentifier  = catalog.KindIdentifier
)

// Key attribute names used for clustering (§4).
const (
	AttrUPC = catalog.AttrUPC
	AttrMPN = catalog.AttrMPN
)

// NewCatalog returns an empty catalog store.
func NewCatalog() *Catalog { return catalog.NewStore() }

// ErrDuplicatePage is returned by NewMapFetcher when a page list repeats a
// URL with a different body.
var ErrDuplicatePage = core.ErrDuplicatePage

// NewMapFetcher builds a MapFetcher from a page list, rejecting a URL that
// appears twice with distinct bodies (ErrDuplicatePage) instead of
// silently keeping the last one; exact repeats are tolerated. This is the
// constructor serving layers should use for request-supplied page sets —
// a map literal cannot carry duplicates, but a decoded list can.
func NewMapFetcher(docs []PageDoc) (MapFetcher, error) { return core.MapFetcherFromDocs(docs) }

// MatchRegistry is the shared cache of per-category matching state (title
// indexes and token caches). Set one on Config.Matcher.Registry to give a
// pipeline an independent lifecycle or memory bound; leave it nil to
// share DefaultRegistry with the rest of the process.
type MatchRegistry = match.Registry

// MatchRegistryOptions tunes a MatchRegistry: lock sharding (Shards) and
// the LRU bound on cached category entries (MaxEntries). Zero values
// apply defaults (8 shards, unbounded).
type MatchRegistryOptions = match.RegistryOptions

// NewMatchRegistry returns an empty match registry with the given
// sharding and memory bounds. Matcher output is identical for every
// option combination; the options trade lock contention and resident
// index memory against rebuild cost on cold categories.
func NewMatchRegistry(opts MatchRegistryOptions) *MatchRegistry {
	return match.NewRegistryWithOptions(opts)
}

// ReleaseMatchState drops the matcher's cached per-category indexes for a
// catalog, releasing the memory (and the catalog reference) the shared
// index registry holds for it. Call when a catalog goes out of use in a
// long-lived process — e.g. after swapping in a rebuilt catalog — to keep
// the registry from pinning retired stores. Matching against the catalog
// afterwards simply rebuilds its indexes on first touch.
func ReleaseMatchState(store *Catalog) { match.DefaultRegistry.ReleaseStore(store) }

// GenerateMarketplace builds a synthetic marketplace (catalog, merchants,
// offers, landing pages, ground truth) standing in for a production offer
// corpus. Deterministic given cfg.Seed.
func GenerateMarketplace(cfg MarketplaceConfig) *Marketplace { return synth.Generate(cfg) }

// DefaultMarketplaceConfig is the small test-scale marketplace.
func DefaultMarketplaceConfig() MarketplaceConfig { return synth.DefaultConfig() }

// ExperimentMarketplaceConfig is the laptop-scale marketplace used to
// regenerate the paper's tables and figures.
func ExperimentMarketplaceConfig() MarketplaceConfig { return synth.ExperimentConfig() }
