package eval

import (
	"math"
	"math/rand"

	"prodsynth/internal/catalog"
	"prodsynth/internal/fusion"
	"prodsynth/internal/synth"
)

// The paper could not grade all 287,135 synthesized products, so it sampled
// 400 products / 1,447 attribute pairs and reported interval estimates at
// 95% confidence (§5.1, citing Mendenhall). This file reproduces that
// protocol so the repository can report results both ways: exact (the
// generator knows the truth) and sampled (the paper's methodology),
// including the sample size the paper derives.

// Interval is an estimate with a symmetric confidence interval.
type Interval struct {
	Estimate float64
	// Margin is the half-width of the interval at the requested
	// confidence level.
	Margin float64
}

// Low and High bound the interval, clamped to [0,1] for proportions.
func (iv Interval) Low() float64 {
	if v := iv.Estimate - iv.Margin; v > 0 {
		return v
	}
	return 0
}

// High returns the upper bound of the interval.
func (iv Interval) High() float64 {
	if v := iv.Estimate + iv.Margin; v < 1 {
		return v
	}
	return 1
}

// Contains reports whether the interval covers p.
func (iv Interval) Contains(p float64) bool {
	return p >= iv.Low() && p <= iv.High()
}

// zFor maps a confidence level to the normal quantile. Only the levels
// used in practice are tabulated; unknown levels fall back to 95%.
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.995:
		return 2.807
	case confidence >= 0.99:
		return 2.576
	case confidence >= 0.95:
		return 1.96
	case confidence >= 0.90:
		return 1.645
	default:
		return 1.96
	}
}

// SampleSize returns the number of Bernoulli observations needed to
// estimate a proportion within margin at the given confidence, using the
// conservative p=0.5 bound: n = z² / (4·margin²). For 95% confidence and a
// 5% margin this yields the 384 the paper samples per configuration.
func SampleSize(confidence, margin float64) int {
	z := zFor(confidence)
	return int(math.Ceil(z * z / (4 * margin * margin)))
}

// ProportionInterval computes the normal-approximation interval for
// successes/trials at the given confidence.
func ProportionInterval(successes, trials int, confidence float64) Interval {
	if trials == 0 {
		return Interval{}
	}
	p := float64(successes) / float64(trials)
	se := math.Sqrt(p * (1 - p) / float64(trials))
	return Interval{Estimate: p, Margin: zFor(confidence) * se}
}

// SampledReport is the outcome of the paper's sampling protocol.
type SampledReport struct {
	SampledProducts int
	SampledPairs    int
	AttributePrec   Interval
	ProductPrec     Interval
}

// GradeSynthesisSampled reproduces the paper's §5.1 methodology: sample
// sampleProducts synthesized products uniformly (seeded rng for
// reproducibility), grade only those, and report interval estimates at the
// given confidence. With sampleProducts >= len(products) it degrades to
// exact grading with intervals attached.
func GradeSynthesisSampled(products []fusion.Synthesized, truth *synth.Truth, universe map[string]catalog.Product, sampleProducts int, confidence float64, seed int64) SampledReport {
	rng := rand.New(rand.NewSource(seed))
	sample := products
	if sampleProducts < len(products) {
		idx := rng.Perm(len(products))[:sampleProducts]
		sample = make([]fusion.Synthesized, sampleProducts)
		for i, j := range idx {
			sample[i] = products[j]
		}
	}
	rep := GradeSynthesis(sample, truth, universe)
	return SampledReport{
		SampledProducts: rep.Products,
		SampledPairs:    rep.AttributePairs,
		AttributePrec:   ProportionInterval(rep.CorrectPairs, rep.AttributePairs, confidence),
		ProductPrec:     ProportionInterval(rep.CorrectProducts, rep.Products, confidence),
	}
}
