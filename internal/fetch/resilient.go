package fetch

import (
	"context"
	"errors"
	"fmt"
	//lint:allow clockcheck deterministic: the backoff jitter rand.Rand is seeded from Policy.JitterSeed, so retry schedules replay identically
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Policy configures a Resilient fetcher. The zero value is "no
// resilience": one attempt, no deadline, no breaker, no gate — the
// pipeline treats a zero Policy as "do not wrap at all". DefaultPolicy
// returns the recommended serving configuration.
//
// Determinism: retries change *when* a fetch runs, never *what* it
// returns — outcomes are a function of (URL, attempt) at the underlying
// fetcher (see Faulty), so synthesis output under a fixed fault schedule
// is identical for every worker count, jitter draw, and stage-buffer
// depth. The breaker and the gate are the exception: they react to
// cross-operation ordering, which is scheduling-dependent by nature, so
// equivalence tests disable the breaker.
type Policy struct {
	// Timeout bounds each attempt (not the whole operation). 0 = none.
	// Context-aware inner fetchers receive a deadline-carrying ctx; a
	// legacy Fetch is raced against the deadline in a goroutine (it
	// finishes in the background after a timeout — it cannot be killed).
	Timeout time.Duration
	// MaxAttempts is the total number of attempts per fetch operation
	// (1 = no retries). Values < 1 behave as 1.
	MaxAttempts int
	// BackoffBase is the backoff ceiling before the first retry; the
	// ceiling doubles each further retry. The actual delay is drawn with
	// full jitter: uniform in [0, ceiling). Default 50ms when retries
	// are enabled.
	BackoffBase time.Duration
	// BackoffMax caps the backoff ceiling. Default 2s.
	BackoffMax time.Duration
	// JitterSeed seeds the jitter RNG, making delay sequences
	// reproducible for a fixed call order. Jitter affects timing only,
	// never outcomes.
	JitterSeed int64
	// BreakerThreshold opens a host's circuit breaker after this many
	// consecutive failures on that host. 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects fetches before
	// admitting a half-open probe. Default 30s when the breaker is
	// enabled.
	BreakerCooldown time.Duration
	// MaxConcurrent bounds the attempts in flight across all operations
	// (backoff sleeps hold no slot). 0 = unbounded.
	MaxConcurrent int
	// Clock supplies time. nil = the wall clock. Inject a FakeClock to
	// run retry/breaker schedules without wall-clock delays.
	Clock Clock
}

// Enabled reports whether the policy asks for any resilience behavior;
// the pipeline skips wrapping entirely when it does not.
func (p Policy) Enabled() bool {
	return p.Timeout > 0 || p.MaxAttempts > 0 || p.BackoffBase > 0 || p.BackoffMax > 0 ||
		p.JitterSeed != 0 || p.BreakerThreshold > 0 || p.BreakerCooldown > 0 ||
		p.MaxConcurrent > 0 || p.Clock != nil
}

// DefaultPolicy is the recommended serving configuration: 10s per
// attempt, 3 attempts with 50ms..2s full-jitter backoff, a 5-failure
// breaker with 30s cooldown, and concurrency left to the pipeline's
// worker bound.
func DefaultPolicy() Policy {
	return Policy{
		Timeout:          10 * time.Second,
		MaxAttempts:      3,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       2 * time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  30 * time.Second,
	}
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.MaxAttempts > 1 {
		if p.BackoffBase <= 0 {
			p.BackoffBase = 50 * time.Millisecond
		}
		if p.BackoffMax <= 0 {
			p.BackoffMax = 2 * time.Second
		}
	}
	if p.BreakerThreshold > 0 && p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 30 * time.Second
	}
	if p.Clock == nil {
		p.Clock = realClock{}
	}
	return p
}

// breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// hostBreaker is one host's circuit breaker: closed → open after
// BreakerThreshold consecutive failures, open → half-open after the
// cooldown, half-open admits exactly one probe whose outcome closes or
// re-opens the circuit.
type hostBreaker struct {
	mu          sync.Mutex
	state       int
	consecFails int
	openedAt    time.Time
	probing     bool
}

// admit decides whether an attempt may proceed at time now. It returns
// (ok, probe): probe marks the single half-open probe admission, which
// the caller must resolve via onSuccess/onFailure or return via
// cancelProbe if the attempt never runs.
func (b *hostBreaker) admit(now time.Time, cooldown time.Duration) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true, false
	case stateOpen:
		if now.Sub(b.openedAt) < cooldown {
			return false, false
		}
		b.state = stateHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// cancelProbe returns an admitted-but-unused probe slot (the attempt was
// cancelled before it ran), so the breaker does not dangle half-open
// forever.
func (b *hostBreaker) cancelProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

func (b *hostBreaker) onSuccess() {
	b.mu.Lock()
	b.state = stateClosed
	b.consecFails = 0
	b.probing = false
	b.mu.Unlock()
}

func (b *hostBreaker) onFailure(now time.Time, threshold int) {
	b.mu.Lock()
	b.consecFails++
	if b.state == stateHalfOpen || b.consecFails >= threshold {
		b.state = stateOpen
		b.openedAt = now
		b.consecFails = 0
		b.probing = false
	}
	b.mu.Unlock()
}

// Resilient wraps any fetcher with the Policy's defenses and counts every
// outcome. It implements both fetch interfaces — ContextPages for the
// context-threaded pipeline and legacy Fetch (background context) so it
// satisfies core.PageFetcher anywhere one is expected — plus
// CounterSource for per-run accounting deltas.
//
// State (breaker circuits, the concurrency gate, counters) lives for the
// Resilient's lifetime: the pipeline builds one per run/stream so breaker
// memory spans batches and waves, and a serving daemon can hold one for
// its whole life.
type Resilient struct {
	inner Pages
	p     Policy
	clock Clock

	jmu sync.Mutex
	rng *rand.Rand

	bmu      sync.Mutex
	breakers map[string]*hostBreaker

	gate chan struct{}

	attempted       atomic.Int64
	attempts        atomic.Int64
	retried         atomic.Int64
	recovered       atomic.Int64
	gaveUp          atomic.Int64
	breakerRejected atomic.Int64
}

// NewResilient wraps inner with the policy's resilience behaviors.
func NewResilient(inner Pages, p Policy) *Resilient {
	p = p.withDefaults()
	r := &Resilient{
		inner: inner,
		p:     p,
		clock: p.Clock,
		rng:   rand.New(rand.NewSource(p.JitterSeed)),
	}
	if p.BreakerThreshold > 0 {
		r.breakers = make(map[string]*hostBreaker)
	}
	if p.MaxConcurrent > 0 {
		r.gate = make(chan struct{}, p.MaxConcurrent)
	}
	return r
}

// FetchCounters snapshots the cumulative counters. Implements
// CounterSource.
func (r *Resilient) FetchCounters() Counters {
	return Counters{
		Attempted:       int(r.attempted.Load()),
		Attempts:        int(r.attempts.Load()),
		Retried:         int(r.retried.Load()),
		Recovered:       int(r.recovered.Load()),
		GaveUp:          int(r.gaveUp.Load()),
		BreakerRejected: int(r.breakerRejected.Load()),
	}
}

// Fetch implements the legacy context-free interface over a background
// context — retries and breaker logic apply, cancellation does not.
func (r *Resilient) Fetch(url string) (string, error) {
	//lint:allow ctxfirst legacy Fetcher-interface adapter: the context-free signature has no ctx to forward
	return r.FetchContext(context.Background(), url)
}

// FetchContext runs one fetch operation: up to MaxAttempts attempts
// against the inner fetcher, each bounded by Timeout and admitted by the
// URL's host breaker and the concurrency gate, with full-jitter
// exponential backoff between attempts. Cancelling ctx aborts the
// operation wherever it is — mid-backoff, waiting on the gate, or (for a
// context-aware inner fetcher) mid-attempt — with ctx's error.
func (r *Resilient) FetchContext(ctx context.Context, url string) (string, error) {
	r.attempted.Add(1)
	br := r.breakerFor(url)
	made := 0       // attempts that ran
	failed := false // at least one attempt failed
	for {
		if err := ctx.Err(); err != nil {
			return r.finish(made, failed, "", err)
		}
		if br != nil {
			ok, probe := br.admit(r.clock.Now(), r.p.BreakerCooldown)
			if !ok {
				r.breakerRejected.Add(1)
				return r.finish(made, failed, "", fmt.Errorf("%w: host %q: %s", ErrBreakerOpen, Host(url), url))
			}
			if r.gate != nil {
				select {
				case r.gate <- struct{}{}:
				case <-ctx.Done():
					if probe {
						br.cancelProbe()
					}
					return r.finish(made, failed, "", ctx.Err())
				}
			}
		} else if r.gate != nil {
			select {
			case r.gate <- struct{}{}:
			case <-ctx.Done():
				return r.finish(made, failed, "", ctx.Err())
			}
		}

		r.attempts.Add(1)
		made++
		page, err := r.attempt(ctx, url)
		if r.gate != nil {
			<-r.gate
		}
		if br != nil {
			if err != nil {
				br.onFailure(r.clock.Now(), r.p.BreakerThreshold)
			} else {
				br.onSuccess()
			}
		}
		if err == nil {
			return r.finish(made, failed, page, nil)
		}
		failed = true
		// The parent context's own cancellation is terminal; a per-attempt
		// deadline (context.DeadlineExceeded with the parent still live)
		// is just a failed attempt and retries like any other error.
		if ctx.Err() != nil {
			return r.finish(made, failed, "", ctx.Err())
		}
		if made >= r.p.MaxAttempts || errors.Is(err, ErrPermanent) {
			return r.finish(made, failed, "", err)
		}
		if serr := r.clock.Sleep(ctx, r.backoff(made)); serr != nil {
			return r.finish(made, failed, "", serr)
		}
	}
}

// finish settles the operation's counters exactly once and returns its
// outcome.
func (r *Resilient) finish(made int, failed bool, page string, err error) (string, error) {
	if made > 1 {
		r.retried.Add(1)
	}
	if err != nil {
		r.gaveUp.Add(1)
		return "", err
	}
	if failed {
		r.recovered.Add(1)
	}
	return page, nil
}

// attempt runs one bounded attempt against the inner fetcher.
func (r *Resilient) attempt(ctx context.Context, url string) (string, error) {
	if r.p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.p.Timeout)
		defer cancel()
	}
	if cp, ok := r.inner.(ContextPages); ok {
		return cp.FetchContext(ctx, url)
	}
	if r.p.Timeout <= 0 {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		return r.inner.Fetch(url)
	}
	// Legacy fetcher under a deadline: race the fetch against the timer.
	// The goroutine drains into a buffered channel, so an attempt that
	// outlives its deadline finishes in the background without leaking
	// permanently — a context-free Fetch cannot be killed.
	type result struct {
		page string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		page, err := r.inner.Fetch(url)
		ch <- result{page, err}
	}()
	select {
	case <-ctx.Done():
		return "", ctx.Err()
	case res := <-ch:
		return res.page, res.err
	}
}

// backoff draws the full-jitter delay before retry number `made`+1: a
// uniform draw from [0, min(BackoffBase·2^(made-1), BackoffMax)).
func (r *Resilient) backoff(made int) time.Duration {
	ceiling := r.p.BackoffBase << (made - 1)
	if shifted := made - 1; shifted >= 63 || ceiling <= 0 || ceiling > r.p.BackoffMax {
		ceiling = r.p.BackoffMax
	}
	if ceiling <= 0 {
		return 0
	}
	r.jmu.Lock()
	d := time.Duration(r.rng.Int63n(int64(ceiling)))
	r.jmu.Unlock()
	return d
}

// breakerFor returns the URL's host breaker, or nil when the breaker is
// disabled.
func (r *Resilient) breakerFor(url string) *hostBreaker {
	if r.breakers == nil {
		return nil
	}
	host := Host(url)
	r.bmu.Lock()
	defer r.bmu.Unlock()
	b, ok := r.breakers[host]
	if !ok {
		b = &hostBreaker{}
		r.breakers[host] = b
	}
	return b
}
