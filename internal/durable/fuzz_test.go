package durable

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"prodsynth/internal/catalog"
)

// fuzzSeedSegment builds a well-formed segment over the standard test
// schema — the coverage anchor the mutator works outward from.
func fuzzSeedSegment() []byte {
	var buf []byte
	for _, c := range testCategories() {
		buf = append(buf, frameRecord(encodeCategory(c))...)
	}
	for i := 0; i < 4; i++ {
		p := testProduct(i)
		buf = append(buf, frameRecord(encodeProduct(uint64(i/2+1), true, p))...)
	}
	return buf
}

// FuzzReplayLog feeds arbitrary bytes through the full segment replay
// path — framing, CRC, payload decode, store.Replay, torn-tail
// truncation — into a fresh store. Whatever the input, replay must not
// panic, and an accepted (nil-error) replay must leave the store
// internally consistent enough to re-encode.
func FuzzReplayLog(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzSeedSegment())
	// A torn tail: a valid prefix plus half a record.
	seed := fuzzSeedSegment()
	f.Add(seed[:len(seed)-len(seed)/3])
	// A corrupt interior: valid framing, flipped payload byte.
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		store := catalog.NewStoreShards(4)
		res, err := replaySegments(store, dir, []uint64{1})
		if err != nil {
			return
		}
		if res.records < 0 || res.truncated < 0 || res.truncated > int64(len(data)) {
			t.Fatalf("implausible replay result %+v for %d input bytes", res, len(data))
		}
		// Accepted replays must leave an encodable store.
		if err := catalog.EncodeStore(io.Discard, store); err != nil {
			t.Fatalf("store unencodable after accepted replay: %v", err)
		}
	})
}
