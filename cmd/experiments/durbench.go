package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"prodsynth"
)

// The durability benchmark sizes by -scale: how many products flow
// through the WAL, the snapshot codec, and replay.
func durBenchProducts(scale string) int {
	switch scale {
	case "small":
		return 2_000
	case "large":
		return 100_000
	}
	return 20_000
}

// durBenchReport is the machine-readable shape written to -durbench
// (BENCH_catalog.json): the out-of-core catalog's three hot paths —
// snapshot encode/decode throughput, WAL append latency, and recovery
// replay rate — plus the compaction cost that trades the latter two off.
type durBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	Scale       string `json:"scale"`
	Products    int    `json:"products"`
	Categories  int    `json:"categories"`

	SnapshotBytes        int64   `json:"snapshot_bytes"`
	SnapshotEncodeMBPerS float64 `json:"snapshot_encode_mb_per_s"`
	SnapshotDecodeMBPerS float64 `json:"snapshot_decode_mb_per_s"`

	LogAppendNsPerRecord int64 `json:"log_append_ns_per_record"`
	LogBytes             int64 `json:"log_bytes"`

	ReplayRecordsPerSec float64 `json:"replay_records_per_sec"`
	RecoveryMS          float64 `json:"recovery_ms"`
	CompactMS           float64 `json:"compact_ms"`
	SnapshotRecoveryMS  float64 `json:"snapshot_recovery_ms"`
}

// runDurBench measures the durable catalog layer on a synthetic
// fixed-shape catalog (independent of the experiment dataset, so numbers
// compare across scales) and writes the JSON report to path, echoing a
// summary to w.
//
// Append latency is measured under SyncNone: it prices the WAL encode +
// write path itself, not the disk's fsync, which SyncAlways would make
// the whole number.
func runDurBench(w io.Writer, rc runConfig, path string) error {
	dir, err := os.MkdirTemp("", "durbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	n := durBenchProducts(rc.scale)
	const ncats = 4
	opts := prodsynth.DurabilityOptions{Fsync: prodsynth.SyncNone}

	d, err := prodsynth.OpenDurable(dir, opts)
	if err != nil {
		return err
	}
	store := d.Catalog()
	for c := 0; c < ncats; c++ {
		err := store.AddCategory(prodsynth.Category{
			ID:   fmt.Sprintf("cat-%d", c),
			Name: fmt.Sprintf("Category %d", c),
			Schema: prodsynth.Schema{Attributes: []prodsynth.Attribute{
				{Name: prodsynth.AttrUPC, Kind: prodsynth.KindIdentifier},
				{Name: "Brand", Kind: prodsynth.KindCategorical},
				{Name: "Weight", Kind: prodsynth.KindNumeric, Unit: "kg"},
			}},
		})
		if err != nil {
			return err
		}
	}

	// WAL append path: every AddProduct commits one framed record.
	start := time.Now()
	for i := 0; i < n; i++ {
		err := store.AddProduct(prodsynth.Product{
			ID:         fmt.Sprintf("p-%07d", i),
			CategoryID: fmt.Sprintf("cat-%d", i%ncats),
			Spec: prodsynth.Spec{
				{Name: prodsynth.AttrUPC, Value: fmt.Sprintf("%012d", i)},
				{Name: "Brand", Value: fmt.Sprintf("brand-%d", i%37)},
				{Name: "Weight", Value: fmt.Sprintf("%d.%d", i%9+1, i%10)},
			},
		})
		if err != nil {
			return err
		}
	}
	appendNs := time.Since(start).Nanoseconds() / int64(n)
	if err := d.Sync(); err != nil {
		return err
	}
	logBytes := int64(d.Stats().LogDepthBytes)

	// Snapshot codec throughput over the same catalog.
	var buf bytes.Buffer
	start = time.Now()
	if err := prodsynth.SaveCatalog(&buf, store); err != nil {
		return err
	}
	encS := time.Since(start).Seconds()
	snapBytes := int64(buf.Len())
	start = time.Now()
	if _, err := prodsynth.LoadCatalog(bytes.NewReader(buf.Bytes())); err != nil {
		return err
	}
	decS := time.Since(start).Seconds()
	mb := float64(snapBytes) / (1 << 20)

	// Recovery replay rate: reopen the directory, whose state is still
	// (empty snapshot + full log).
	if err := d.Close(); err != nil {
		return err
	}
	d2, err := prodsynth.OpenDurable(dir, opts)
	if err != nil {
		return err
	}
	rec := d2.Stats().Recovery
	replayPerSec := 0.0
	if rec.Duration > 0 {
		replayPerSec = float64(rec.ReplayedRecords) / rec.Duration.Seconds()
	}

	// Compaction, then a third open measures snapshot-backed recovery.
	start = time.Now()
	if err := d2.Compact(); err != nil {
		return err
	}
	compactS := time.Since(start).Seconds()
	if err := d2.Close(); err != nil {
		return err
	}
	d3, err := prodsynth.OpenDurable(dir, opts)
	if err != nil {
		return err
	}
	snapRec := d3.Stats().Recovery
	if err := d3.Close(); err != nil {
		return err
	}

	rep := durBenchReport{
		GeneratedAt:          time.Now().UTC().Format(time.RFC3339),
		Scale:                rc.scale,
		Products:             n,
		Categories:           ncats,
		SnapshotBytes:        snapBytes,
		SnapshotEncodeMBPerS: mb / encS,
		SnapshotDecodeMBPerS: mb / decS,
		LogAppendNsPerRecord: appendNs,
		LogBytes:             logBytes,
		ReplayRecordsPerSec:  replayPerSec,
		RecoveryMS:           float64(rec.Duration.Microseconds()) / 1e3,
		CompactMS:            compactS * 1e3,
		SnapshotRecoveryMS:   float64(snapRec.Duration.Microseconds()) / 1e3,
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n## durable catalog bench (%s)\n", rc.scale)
	fmt.Fprintf(w, "products            %d across %d categories\n", n, ncats)
	fmt.Fprintf(w, "snapshot            %.1f MiB, encode %.0f MB/s, decode %.0f MB/s\n", mb, rep.SnapshotEncodeMBPerS, rep.SnapshotDecodeMBPerS)
	fmt.Fprintf(w, "log append          %d ns/record (SyncNone), %d bytes\n", appendNs, logBytes)
	fmt.Fprintf(w, "replay              %.0f records/s (log recovery %.1f ms)\n", replayPerSec, rep.RecoveryMS)
	fmt.Fprintf(w, "compact             %.1f ms; snapshot-backed recovery %.1f ms\n", rep.CompactMS, rep.SnapshotRecoveryMS)
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}
