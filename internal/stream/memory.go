// Package stream implements continuous-feed synthesis: a long-lived
// pipeline consuming offer waves from a channel (Run) on top of a
// cross-batch cluster memory (Memory) that keeps clusters open between
// waves, so a product whose offers straddle waves joins its earlier
// cluster and re-fuses with the union of evidence instead of synthesizing
// a duplicate.
//
// The memory is an incremental version of cluster.Group: a persistent
// union-find over namespaced key values plus an open-cluster table. For
// any partitioning of an offer sequence into waves, feeding the waves
// through an unbounded Memory and reading Final() yields byte-identical
// clusters — same membership, same member order, same cluster order — as
// one cluster.Group call over the concatenated sequence. The equivalence
// holds because cluster partition is the transitive closure of key
// sharing (independent of union order), cluster order is the arrival
// order of each cluster's earliest member (merges keep the minimum), and
// member order is global arrival order (tracked per offer).
//
// Production feeds are unbounded, so the memory is too unless bounded:
// Options.MaxClusters caps open clusters with LRU eviction, and
// Options.MaxIdleWaves expires clusters no wave has touched recently.
// Eviction trades exactness for memory — a later offer sharing a key with
// an evicted cluster opens a fresh cluster and synthesizes a duplicate,
// exactly what a memory-less batch run would have done for every wave.
// Attaching a spill store (Options.Spill) removes that trade: LRU and
// idle victims move out-of-core instead of sealing and are revived when
// their keys reappear, so the bounded memory's output stays byte-identical
// to the unbounded one while RAM holds only the hot clusters.
//
// Memory is not safe for concurrent use; Run owns one and serializes
// waves through it.
package stream

import (
	"container/list"
	"sort"

	"prodsynth/internal/catalog"
	"prodsynth/internal/cluster"
	"prodsynth/internal/offer"
)

// MemoryOptions bounds a Memory. The zero value is unbounded.
type MemoryOptions struct {
	// KeyAttrs are the clustering key attributes in priority order
	// (default UPC, then Model Part Number — cluster.DefaultKeyAttrs).
	KeyAttrs []string
	// MaxClusters caps the number of open clusters; 0 means unbounded.
	// When a wave pushes the count past the cap, the least recently
	// touched clusters are evicted (after the wave's snapshots are
	// taken, so a wave larger than the cap still emits every cluster it
	// touched).
	MaxClusters int
	// MaxIdleWaves expires clusters by age: a cluster untouched for more
	// than MaxIdleWaves consecutive waves is evicted at the start of the
	// next wave. 0 means never. Measured in waves, not wall time, so
	// behaviour is deterministic for a given wave sequence.
	MaxIdleWaves int
	// Spill, when non-nil, turns the LRU and idle bounds from seals into
	// migrations: a cluster those bounds would evict is parked in the
	// spill store instead, and revived — same ordinal, same members, same
	// keys — when a later offer carries one of its keys. A bounded memory
	// with a spill store therefore produces byte-identical output to an
	// unbounded one (catalog-version invalidation still seals, spilled or
	// not). Spill errors fall back to the plain seal, so a broken disk
	// degrades to the unspilled behaviour rather than failing the stream.
	// The Memory does not close the store; its owner does.
	Spill cluster.SpillStore
}

// SealReason says why a cluster was sealed — why the cross-batch memory
// decided it can no longer grow.
type SealReason uint8

const (
	// SealClose: the stream's input closed; every cluster still open is
	// sealed with its final fused state in the closing result.
	SealClose SealReason = iota + 1
	// SealLRU: the cluster was the least recently touched when the open
	// set exceeded MaxClusters.
	SealLRU
	// SealIdle: no wave touched the cluster for more than MaxIdleWaves
	// consecutive waves.
	SealIdle
	// SealInvalidated: the catalog grew mid-stream in one of the cluster's
	// member categories, so the cluster's product may now exist in the
	// catalog; the cluster is dropped rather than extended. Unlike the
	// other reasons this does not promise the product is absent from the
	// catalog — only that this cluster will never re-fuse.
	SealInvalidated
)

// String names the reason for logs and experiment output.
func (r SealReason) String() string {
	switch r {
	case SealClose:
		return "close"
	case SealLRU:
		return "lru"
	case SealIdle:
		return "idle"
	case SealInvalidated:
		return "invalidated"
	default:
		return "unknown"
	}
}

// Evicted records one sealed cluster: the moment the memory decided it
// can no longer grow, with the membership snapshot taken at that moment.
// ID is the cluster's creation ordinal — unique for the lifetime of one
// Memory (ordinals are never reused; a merge keeps the minimum and
// retires the others, which therefore never seal), so each ID seals at
// most once across all reasons.
type Evicted struct {
	// ID is the cluster's creation ordinal (the order Final() and wave
	// snapshots emit clusters in).
	ID int
	// Wave is the 0-based wave during which the eviction happened; for
	// Close entries it is the total number of waves absorbed.
	Wave int
	// Reason says why the cluster sealed.
	Reason SealReason
	// Cluster is the membership snapshot at seal time.
	Cluster cluster.Cluster
}

// memberOffer is one cluster member with its global arrival index, the
// ordering that keeps merged member lists identical to batch clustering.
type memberOffer struct {
	seq int
	o   offer.Offer
}

// openCluster is one cluster held open across waves.
type openCluster struct {
	// ord is the creation order of the cluster's earliest member —
	// merges keep the minimum — and orders Final() output exactly like
	// cluster.Group orders its clusters.
	ord int
	// root is the union-find root key currently naming this cluster.
	root string
	// keys are all namespaced keys unioned into the cluster; eviction
	// deletes them from the union-find so the key space cannot grow
	// without bound.
	keys []string
	// members are the offers in global arrival order.
	members []memberOffer
	// lastWave is the most recent wave that added a member.
	lastWave int
	// catVersions maps every distinct member category to the catalog
	// version observed at the last touch — the staleness check
	// AddToCatalog trips mid-stream. Clusters can span categories (keys
	// are global), so growth in any member category invalidates.
	catVersions map[string]uint64
	elem        *list.Element
}

// Memory is the cross-batch cluster state. See the package comment.
type Memory struct {
	opts MemoryOptions

	// parent is the persistent union-find over namespaced keys. Every
	// key present belongs to exactly one open cluster, and every chain
	// stays inside one cluster's key set (unions only ever link keys of
	// clusters being merged), so evicting a cluster can delete its keys
	// without dangling references.
	parent map[string]string
	open   map[string]*openCluster // by current root key
	lru    list.List               // *openCluster; front = most recently touched

	wave    int // waves seen (Add calls)
	seq     int // offers admitted (global arrival counter)
	nextOrd int // next cluster creation ordinal

	evictionsLRU     int
	evictionsIdle    int
	evictionsVersion int

	spills         int
	revives        int
	spillFallbacks int
	spillErr       error

	// pending are the clusters evicted since the last DrainEvicted call,
	// snapshotted at eviction time — the seal events the stream surfaces.
	pending []Evicted
}

// NewMemory returns an empty cluster memory.
func NewMemory(opts MemoryOptions) *Memory {
	return &Memory{
		opts:   opts,
		parent: make(map[string]string),
		open:   make(map[string]*openCluster),
	}
}

// Len returns the number of open clusters.
func (m *Memory) Len() int { return len(m.open) }

// Waves returns the number of waves the memory has absorbed.
func (m *Memory) Waves() int { return m.wave }

// Evictions returns how many open clusters have been dropped, by cause:
// LRU (MaxClusters), idle expiry (MaxIdleWaves), and catalog-version
// invalidation. With a spill store attached, LRU and idle victims spill
// instead of sealing and are counted by Spilled, not here (except spill
// failures, which fall back to sealing and count in both places).
func (m *Memory) Evictions() (lru, idle, version int) {
	return m.evictionsLRU, m.evictionsIdle, m.evictionsVersion
}

// Spilled returns the spill traffic: clusters parked out-of-core,
// clusters revived back, and spill failures that fell back to a plain
// seal.
func (m *Memory) Spilled() (spills, revives, fallbacks int) {
	return m.spills, m.revives, m.spillFallbacks
}

// SpillErr returns the first spill-store failure, if any; the memory
// kept running (falling back to seals) past it.
func (m *Memory) SpillErr() error { return m.spillErr }

// SpilledLen reports how many clusters currently sit in the spill store.
func (m *Memory) SpilledLen() int {
	if m.opts.Spill == nil {
		return 0
	}
	return m.opts.Spill.Len()
}

// rootOf walks the union-find without creating missing keys.
func (m *Memory) rootOf(k string) (string, bool) {
	p, ok := m.parent[k]
	if !ok {
		return "", false
	}
	for p != k {
		k = p
		p = m.parent[k]
	}
	return k, true
}

// find returns k's root, inserting k as a fresh singleton when absent,
// with path compression.
func (m *Memory) find(k string) string {
	p, ok := m.parent[k]
	if !ok {
		m.parent[k] = k
		return k
	}
	if p == k {
		return k
	}
	root := m.find(p)
	m.parent[k] = root
	return root
}

func (m *Memory) union(a, b string) {
	ra, rb := m.find(a), m.find(b)
	if ra != rb {
		m.parent[rb] = ra
	}
}

// evict drops one open cluster: its keys leave the union-find, its entry
// leaves the table and the LRU list, and a seal record with the cluster's
// final membership snapshot is queued for DrainEvicted.
func (m *Memory) evict(cl *openCluster, reason SealReason) {
	for _, k := range cl.keys {
		delete(m.parent, k)
	}
	delete(m.open, cl.root)
	m.lru.Remove(cl.elem)
	m.pending = append(m.pending, Evicted{
		ID:      cl.ord,
		Wave:    m.wave - 1, // m.wave is 1-based during Add; results are 0-based
		Reason:  reason,
		Cluster: m.snapshot(cl),
	})
}

// spillOut tries to park one open cluster in the spill store instead of
// sealing it. On success the cluster leaves the in-RAM structures exactly
// as evict would take it out, but no seal event is queued — the cluster
// is suspended, not finished. Returns false (and latches the error) when
// there is no spill store or the spill failed; the caller then seals.
func (m *Memory) spillOut(cl *openCluster) bool {
	if m.opts.Spill == nil {
		return false
	}
	sp := cluster.Spilled{
		Ord:         cl.ord,
		Keys:        cl.keys,
		Members:     make([]cluster.SpillMember, len(cl.members)),
		LastWave:    cl.lastWave,
		CatVersions: cl.catVersions,
	}
	for i, mo := range cl.members {
		sp.Members[i] = cluster.SpillMember{Seq: mo.seq, Offer: mo.o}
	}
	if err := m.opts.Spill.Spill(sp); err != nil {
		m.spillFallbacks++
		if m.spillErr == nil {
			m.spillErr = err
		}
		return false
	}
	for _, k := range cl.keys {
		delete(m.parent, k)
	}
	delete(m.open, cl.root)
	m.lru.Remove(cl.elem)
	m.spills++
	return true
}

// reviveFor revives any spilled clusters reachable from the given offer
// keys, so the offer joins its suspended cluster instead of opening a
// duplicate. Keys already in the union-find belong to open clusters and
// are skipped; one offer can revive two distinct spilled clusters (one
// per key), which the normal union path then merges.
func (m *Memory) reviveFor(store *catalog.Store, versions map[string]uint64, keys []string) {
	if m.opts.Spill == nil {
		return
	}
	for _, k := range keys {
		if _, open := m.parent[k]; open {
			continue
		}
		ref, ok := m.opts.Spill.Lookup(k)
		if !ok {
			continue
		}
		sp, err := m.opts.Spill.Revive(ref)
		if err != nil {
			if m.spillErr == nil {
				m.spillErr = err
			}
			continue
		}
		m.admitSpilled(store, versions, sp)
	}
}

// admitSpilled reinstates one spilled cluster as open — unless the
// catalog moved in one of its member categories while it was out-of-core,
// in which case it seals as invalidated, exactly as expire would have
// sealed it had it stayed in RAM.
func (m *Memory) admitSpilled(store *catalog.Store, versions map[string]uint64, sp cluster.Spilled) {
	if store != nil {
		for cat, seen := range sp.CatVersions {
			if versionOf(store, versions, cat) != seen {
				m.evictionsVersion++
				m.pending = append(m.pending, Evicted{
					ID:      sp.Ord,
					Wave:    m.wave - 1,
					Reason:  SealInvalidated,
					Cluster: spilledSnapshot(sp, m.opts.KeyAttrs),
				})
				return
			}
		}
	}
	root := sp.Keys[0]
	cl := &openCluster{
		ord:         sp.Ord,
		root:        root,
		keys:        sp.Keys,
		members:     make([]memberOffer, len(sp.Members)),
		lastWave:    m.wave,
		catVersions: sp.CatVersions,
	}
	for i, sm := range sp.Members {
		cl.members[i] = memberOffer{seq: sm.Seq, o: sm.Offer}
	}
	for _, k := range sp.Keys {
		m.parent[k] = root
	}
	cl.elem = m.lru.PushFront(cl)
	m.open[root] = cl
	m.revives++
}

// spilledAll lists the spill store's contents for the merge paths
// (Final, CloseAll) without removing anything.
func (m *Memory) spilledAll() []cluster.Spilled {
	if m.opts.Spill == nil {
		return nil
	}
	all, err := m.opts.Spill.All()
	if err != nil {
		if m.spillErr == nil {
			m.spillErr = err
		}
		return nil
	}
	return all
}

// spilledSnapshot materializes a spilled cluster the way snapshot
// materializes an open one.
func spilledSnapshot(sp cluster.Spilled, keyAttrs []string) cluster.Cluster {
	members := make([]offer.Offer, len(sp.Members))
	for i, sm := range sp.Members {
		members[i] = sm.Offer
	}
	return cluster.Assemble(members, keyAttrs)
}

// DrainEvicted returns the seal records queued since the last call and
// clears the queue. The stream pipeline drains after every Add, so each
// wave's result carries exactly the clusters that wave sealed.
func (m *Memory) DrainEvicted() []Evicted {
	out := m.pending
	m.pending = nil
	return out
}

// CloseAll returns a seal record for every cluster still open — in RAM
// or spilled — in creation order: the close-path counterpart of
// DrainEvicted, used for the stream's final result. It does not mutate
// the memory or the spill store: the snapshots are the same clusters
// Final() returns, paired with their IDs and SealClose.
func (m *Memory) CloseAll() []Evicted {
	type entry struct {
		ord int
		c   cluster.Cluster
	}
	entries := make([]entry, 0, len(m.open))
	for _, cl := range m.open {
		entries = append(entries, entry{cl.ord, m.snapshot(cl)})
	}
	for _, sp := range m.spilledAll() {
		entries = append(entries, entry{sp.Ord, spilledSnapshot(sp, m.opts.KeyAttrs)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ord < entries[j].ord })
	out := make([]Evicted, len(entries))
	for i, e := range entries {
		out[i] = Evicted{ID: e.ord, Wave: m.wave, Reason: SealClose, Cluster: e.c}
	}
	return out
}

// expire applies the wave-start evictions: idle expiry and, when store is
// non-nil, catalog-version invalidation. A cluster whose member-category
// version moved since its last touch is stale: AddToCatalog committed
// products into that category mid-stream, so the cluster's product may
// now exist in the catalog and its next same-key offer will be matched
// against the grown catalog (and typically excluded) rather than re-fused
// here. versions memoizes CategoryVersion reads — one store lock per
// distinct category per wave, however many clusters share it.
func (m *Memory) expire(store *catalog.Store, versions map[string]uint64) {
	if m.opts.MaxIdleWaves > 0 {
		// The LRU is ordered by last touch, so lastWave is nonincreasing
		// front to back: the scan from the back stops at the first
		// non-idle cluster.
		var idle []*openCluster
		for e := m.lru.Back(); e != nil; e = e.Prev() {
			cl := e.Value.(*openCluster)
			if m.wave-cl.lastWave <= m.opts.MaxIdleWaves {
				break
			}
			idle = append(idle, cl)
		}
		// Evict oldest-touch first, breaking ties on creation ordinal:
		// clusters last touched in the same wave expire in insertion
		// order, not in whatever order that wave happened to touch them.
		sort.Slice(idle, func(i, j int) bool {
			if idle[i].lastWave != idle[j].lastWave {
				return idle[i].lastWave < idle[j].lastWave
			}
			return idle[i].ord < idle[j].ord
		})
		for _, cl := range idle {
			if m.spillOut(cl) {
				continue
			}
			m.evictionsIdle++
			m.evict(cl, SealIdle)
		}
	}
	if store == nil {
		return
	}
	var stale []*openCluster
	for e := m.lru.Back(); e != nil; e = e.Prev() {
		cl := e.Value.(*openCluster)
		for cat, seen := range cl.catVersions {
			if versionOf(store, versions, cat) != seen {
				stale = append(stale, cl)
				break
			}
		}
	}
	for _, cl := range stale {
		m.evictionsVersion++
		m.evict(cl, SealInvalidated)
	}
}

// versionOf reads one category's version through the per-wave memo.
func versionOf(store *catalog.Store, memo map[string]uint64, cat string) uint64 {
	if v, ok := memo[cat]; ok {
		return v
	}
	v := store.CategoryVersion(cat)
	memo[cat] = v
	return v
}

// Add absorbs one wave of reconciled offers and returns a snapshot of
// every cluster the wave created or extended, ordered by cluster creation
// (the order cluster.Group would emit them in), plus the offers that
// carried no clustering key. Snapshots are self-contained copies: later
// waves do not mutate them. store, when non-nil, supplies the category
// version counters used to invalidate clusters after mid-stream catalog
// growth; pass nil to disable invalidation.
func (m *Memory) Add(store *catalog.Store, offers []offer.Offer) (touched []cluster.Cluster, skipped []offer.Offer) {
	m.wave++
	// Per-wave memo of CategoryVersion reads, shared by the staleness
	// check and the touch records below. A version bumped concurrently
	// mid-wave is recorded at its wave-start value, which at worst
	// evicts the cluster one wave later than a fresh read would — the
	// safe (conservative) direction.
	versions := make(map[string]uint64)
	m.expire(store, versions)

	touchedSet := make(map[*openCluster]bool)
	for _, o := range offers {
		keys := cluster.OfferKeys(o, m.opts.KeyAttrs, false)
		if len(keys) == 0 {
			skipped = append(skipped, o)
			continue
		}
		// A key resurfacing may belong to a spilled cluster: bring it
		// back before the lookups below, so the offer extends it.
		m.reviveFor(store, versions, keys)

		// Existing clusters this offer's keys reach, before any union.
		var joined []*openCluster
		seen := make(map[*openCluster]bool)
		for _, k := range keys {
			if root, ok := m.rootOf(k); ok {
				if cl := m.open[root]; cl != nil && !seen[cl] {
					seen[cl] = true
					joined = append(joined, cl)
				}
			}
		}
		fresh := newKeys(m.parent, keys)

		for j := 1; j < len(keys); j++ {
			m.union(keys[0], keys[j])
		}
		root := m.find(keys[0])

		var cl *openCluster
		switch len(joined) {
		case 0:
			cl = &openCluster{ord: m.nextOrd, root: root}
			m.nextOrd++
			cl.elem = m.lru.PushFront(cl)
			m.open[root] = cl
		default:
			cl = joined[0]
			for _, other := range joined[1:] {
				if other.ord < cl.ord {
					cl.ord = other.ord
				}
				cl.keys = append(cl.keys, other.keys...)
				cl.members = append(cl.members, other.members...)
				delete(m.open, other.root)
				m.lru.Remove(other.elem)
				delete(touchedSet, other)
			}
			if len(joined) > 1 {
				sort.Slice(cl.members, func(i, j int) bool {
					return cl.members[i].seq < cl.members[j].seq
				})
			}
			delete(m.open, cl.root)
			cl.root = root
			m.open[root] = cl
			m.lru.MoveToFront(cl.elem)
		}
		cl.keys = append(cl.keys, fresh...)
		cl.members = append(cl.members, memberOffer{seq: m.seq, o: o})
		m.seq++
		cl.lastWave = m.wave
		touchedSet[cl] = true
	}

	// Snapshot the touched clusters before LRU eviction, so a wave
	// larger than MaxClusters still reports everything it fused.
	touchedList := make([]*openCluster, 0, len(touchedSet))
	for cl := range touchedSet {
		touchedList = append(touchedList, cl)
	}
	sort.Slice(touchedList, func(i, j int) bool { return touchedList[i].ord < touchedList[j].ord })
	touched = make([]cluster.Cluster, len(touchedList))
	for i, cl := range touchedList {
		touched[i] = m.snapshot(cl)
		if store != nil {
			cv := make(map[string]uint64)
			for _, mo := range cl.members {
				if _, ok := cv[mo.o.CategoryID]; !ok {
					cv[mo.o.CategoryID] = versionOf(store, versions, mo.o.CategoryID)
				}
			}
			cl.catVersions = cv
		}
	}

	if m.opts.MaxClusters > 0 {
		for len(m.open) > m.opts.MaxClusters {
			cl := m.lruVictim()
			if m.spillOut(cl) {
				continue
			}
			m.evictionsLRU++
			m.evict(cl, SealLRU)
		}
	}
	return touched, skipped
}

// lruVictim picks the next LRU eviction: the least recently touched open
// cluster, breaking ties among clusters last touched in the same wave by
// creation ordinal (insertion order). The tie-break matters because
// within one wave the list records touch order, which depends on offer
// order inside the wave — an accident of batching, not an age signal —
// whereas the ordinal is the stable age the rest of the memory orders by.
// Equal-lastWave clusters are contiguous at the back of the list (every
// touch moves to front and stamps the current wave), so the scan is
// bounded by one wave's touches.
func (m *Memory) lruVictim() *openCluster {
	back := m.lru.Back()
	victim := back.Value.(*openCluster)
	for e := back.Prev(); e != nil; e = e.Prev() {
		cl := e.Value.(*openCluster)
		if cl.lastWave != victim.lastWave {
			break
		}
		if cl.ord < victim.ord {
			victim = cl
		}
	}
	return victim
}

// Final returns a snapshot of every open cluster — in RAM or spilled —
// in creation order: the merged view of the whole stream. With unbounded
// options, or bounded options plus a spill store, this is exactly the
// cluster.Group output over every offer ever Added (minus clusters lost
// to catalog-version invalidation).
func (m *Memory) Final() []cluster.Cluster {
	type entry struct {
		ord int
		c   cluster.Cluster
	}
	entries := make([]entry, 0, len(m.open))
	for _, cl := range m.open {
		entries = append(entries, entry{cl.ord, m.snapshot(cl)})
	}
	for _, sp := range m.spilledAll() {
		entries = append(entries, entry{sp.Ord, spilledSnapshot(sp, m.opts.KeyAttrs)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ord < entries[j].ord })
	out := make([]cluster.Cluster, len(entries))
	for i, e := range entries {
		out[i] = e.c
	}
	return out
}

// snapshot materializes one open cluster as a self-contained
// cluster.Cluster with identity fields computed the way cluster.Group
// computes them.
func (m *Memory) snapshot(cl *openCluster) cluster.Cluster {
	members := make([]offer.Offer, len(cl.members))
	for i, mo := range cl.members {
		members[i] = mo.o
	}
	return cluster.Assemble(members, m.opts.KeyAttrs)
}

// newKeys returns the keys not yet present in the union-find, preserving
// order. Called before the keys are unioned in.
func newKeys(parent map[string]string, keys []string) []string {
	var fresh []string
	for _, k := range keys {
		if _, ok := parent[k]; !ok {
			fresh = append(fresh, k)
		}
	}
	return fresh
}
