// Command synthd is the product-synthesis daemon: it boots a learned
// system once — from a catalog+model bundle (cmd/synthesize -save-bundle)
// or by learning from a dataset directory — and serves synthesis over
// HTTP until terminated.
//
// Usage:
//
//	synthd -bundle warm.psbd [-addr :8080]        # warm boot from one artifact
//	synthd -data ./data [-addr :8080]             # learn at boot, then serve
//	synthd -data ./data -emit-request             # print a /v1/synthesize body and exit
//	synthd -bundle warm.psbd -data-dir ./catalog  # durable catalog: WAL + snapshots
//
// With -data-dir the catalog lives out-of-core (see prodsynth.OpenDurable):
// the first boot seeds the directory from -bundle/-data, later boots
// recover the catalog from its snapshots and write-ahead log (surviving
// kill -9), background compaction snapshots while serving, stream cluster
// memory spills to disk under <data-dir>/spill, and recovery time plus
// log depth are exported on /metrics.
//
// Endpoints (see prodsynth/internal/serve for the full contract):
//
//	POST /v1/synthesize         one-shot synthesis
//	POST /v1/synthesize/stream  wave-at-a-time synthesis, NDJSON out
//	POST /v1/reload             hot-swap the model without downtime
//	GET  /healthz /readyz /metrics
//
// Reload semantics: with -reload-data (or -data) set, POST /v1/reload
// re-learns from that directory's historical feed against the serving
// catalog; with only -bundle set, it re-reads the bundle file — the ops
// flow where a batch job atomically replaces the bundle on disk and then
// pokes the daemon. The swap is atomic; in-flight requests finish on the
// generation they started with.
//
// On SIGTERM or SIGINT the daemon drains gracefully: the listener closes,
// in-flight requests finish (bounded by -drain-timeout), then the process
// exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prodsynth"
	"prodsynth/internal/dataset"
	"prodsynth/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synthd: ")

	var (
		bundle       = flag.String("bundle", "", "catalog+model bundle to boot from (skips learning)")
		data         = flag.String("data", "", "dataset directory to learn from at boot")
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		maxInFlight  = flag.Int("max-inflight", 64, "max concurrent synthesis requests before shedding with 429")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request synthesis deadline (requests may tighten it, never extend)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful drain bound after SIGTERM")
		reloadData   = flag.String("reload-data", "", "dataset directory re-learned by POST /v1/reload (defaults to -data)")
		emitRequest  = flag.Bool("emit-request", false, "print a /v1/synthesize request body for -data's incoming feed and exit")
		verbose      = flag.Bool("v", false, "log boot statistics")

		dataDir        = flag.String("data-dir", "", "durable catalog directory: recovered at boot (seeded from -bundle/-data on first boot), every catalog commit WAL-logged, stream spill backed by disk")
		fsync          = flag.String("fsync", "always", "WAL fsync policy with -data-dir: always, interval, none")
		snapshotEvery  = flag.Duration("snapshot-interval", 0, "background compaction period with -data-dir (0 = depth-triggered only)")
		compactRecords = flag.Int("compact-records", 10000, "compact when the WAL tail reaches this many records (0 = never by depth)")
	)
	flag.Parse()

	if *emitRequest {
		if *data == "" {
			log.Fatal("-emit-request requires -data")
		}
		ds, err := dataset.LoadWorkload(*data)
		if err != nil {
			log.Fatal(err)
		}
		req := serve.SynthesizeRequest{
			Offers: serve.WireOffers(ds.IncomingOffers),
			Pages:  serve.WirePages(ds.Pages),
		}
		if err := json.NewEncoder(os.Stdout).Encode(req); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		store *prodsynth.Catalog
		model *prodsynth.Model
		learn func(*prodsynth.Catalog) (*prodsynth.Model, error)
		err   error
	)
	switch {
	case *bundle != "":
		store, model, err = readBundle(*bundle)
		if err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			log.Printf("booted from bundle %s: %d categories, %d products, %d correspondences",
				*bundle, store.NumCategories(), store.NumProducts(), st.Correspondences)
		}
	case *data != "":
		ds, err := dataset.Load(*data)
		if err != nil {
			log.Fatal(err)
		}
		store = ds.Catalog
		// Learning is deferred until the serving catalog is final: with
		// -data-dir, the recovered durable catalog replaces ds.Catalog
		// and the model must be learned against what is actually served.
		learn = func(st *prodsynth.Catalog) (*prodsynth.Model, error) {
			return prodsynth.Learn(context.Background(), st, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
		}
	default:
		log.Print("one of -bundle or -data is required")
		flag.Usage()
		os.Exit(2)
	}

	// With -data-dir the catalog lives out-of-core: recover it (snapshot
	// load + WAL replay), seeding an empty directory from the boot
	// catalog, and serve the durable store — every later AddToCatalog
	// commit is logged as it happens.
	var dur *prodsynth.Durable
	var sysOpts []prodsynth.Option
	if *dataDir != "" {
		pol, ok := fsyncPolicy(*fsync)
		if !ok {
			log.Fatalf("-fsync %q: want always, interval, or none", *fsync)
		}
		dur, err = prodsynth.OpenDurable(*dataDir, prodsynth.DurabilityOptions{
			Fsync:            pol,
			SnapshotInterval: *snapshotEvery,
			CompactRecords:   *compactRecords,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer dur.Close()
		if dur.Catalog().NumCategories() == 0 {
			if err := dur.ImportCatalog(store); err != nil {
				log.Fatal(err)
			}
			if *verbose {
				log.Printf("seeded %s: %d categories, %d products", *dataDir, store.NumCategories(), store.NumProducts())
			}
		} else if *verbose {
			rec := dur.Stats().Recovery
			log.Printf("recovered %s in %s: epoch %d, %d snapshot products, %d log records replayed over %d segments",
				*dataDir, rec.Duration, rec.SnapshotEpoch, rec.SnapshotProducts, rec.ReplayedRecords, rec.Segments)
		}
		store = dur.Catalog()
		sysOpts = append(sysOpts, prodsynth.WithDurability(dur))
	}

	if model == nil {
		if model, err = learn(store); err != nil {
			log.Fatal(err)
		}
		if *verbose {
			st := model.Stats()
			log.Printf("learned from %s: %d historical offers, %d correspondences", *data, st.HistoricalOffers, st.Correspondences)
		}
	}

	sys := prodsynth.NewSystem(store, model, sysOpts...)
	srv := serve.New(sys, serve.Options{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		Reload:         reloadFunc(store, *reloadData, *data, *bundle),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Parseable by scripts and tests (and the only stdout line): the
	// resolved address matters when -addr picked port 0.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if dur != nil {
		// Background snapshotting while serving: interval fsync and
		// compaction run alongside the listener, and the durability
		// stats are exported on /metrics.
		go dur.Run(ctx)
		go durableMetrics(ctx, dur, srv.Metrics())
	}
	if err := srv.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}

// durableMetrics exports the durability layer on the server's /metrics
// registry: recovery cost once, log depth and compaction progress
// refreshed every second.
func durableMetrics(ctx context.Context, dur *prodsynth.Durable, reg *serve.Registry) {
	var (
		recoveryMS  = reg.Gauge("synthd_durable_recovery_ms", "Wall time of the boot recovery (snapshot load + WAL replay), in milliseconds.")
		replayed    = reg.Gauge("synthd_durable_recovery_replayed_records", "WAL records replayed over the snapshot at boot.")
		epoch       = reg.Gauge("synthd_durable_snapshot_epoch", "Live snapshot epoch (advances on every compaction).")
		compactions = reg.Gauge("synthd_durable_compactions_total", "Compactions completed since boot.")
		depthRecs   = reg.Gauge("synthd_durable_log_depth_records", "WAL records not yet covered by a snapshot (crash-now replay cost).")
		depthBytes  = reg.Gauge("synthd_durable_log_depth_bytes", "WAL bytes not yet covered by a snapshot.")
		appendErrs  = reg.Gauge("synthd_durable_append_errors_total", "WAL append failures (in-memory catalog stays correct; durability of those records is lost).")
	)
	st := dur.Stats()
	recoveryMS.Set(st.Recovery.Duration.Milliseconds())
	replayed.Set(int64(st.Recovery.ReplayedRecords))

	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		st = dur.Stats()
		epoch.Set(int64(st.Epoch))
		compactions.Set(int64(st.Compactions))
		depthRecs.Set(int64(st.LogDepthRecords))
		depthBytes.Set(int64(st.LogDepthBytes))
		appendErrs.Set(int64(st.AppendErrors))
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// fsyncPolicy parses the -fsync flag.
func fsyncPolicy(s string) (prodsynth.FsyncPolicy, bool) {
	switch s {
	case "always":
		return prodsynth.SyncAlways, true
	case "interval":
		return prodsynth.SyncInterval, true
	case "none":
		return prodsynth.SyncNone, true
	}
	return prodsynth.SyncAlways, false
}

// reloadFunc picks the /v1/reload source: a dataset directory to re-learn
// from (against the serving catalog), else the bundle file to re-read,
// else nil (endpoint answers 501).
func reloadFunc(store *prodsynth.Catalog, reloadData, data, bundle string) func(context.Context) (*prodsynth.Model, error) {
	src := reloadData
	if src == "" {
		src = data
	}
	switch {
	case src != "":
		return func(ctx context.Context) (*prodsynth.Model, error) {
			ds, err := dataset.LoadWorkload(src)
			if err != nil {
				return nil, err
			}
			return prodsynth.Learn(ctx, store, ds.HistoricalOffers, prodsynth.MapFetcher(ds.Pages))
		}
	case bundle != "":
		return func(context.Context) (*prodsynth.Model, error) {
			_, m, err := readBundle(bundle)
			return m, err
		}
	}
	return nil
}

func readBundle(path string) (*prodsynth.Catalog, *prodsynth.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return prodsynth.LoadBundle(f)
}
