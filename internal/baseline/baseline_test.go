package baseline

import (
	"testing"

	"prodsynth/internal/catalog"
	"prodsynth/internal/correspond"
	"prodsynth/internal/offer"
)

func fixture(t *testing.T) (*catalog.Store, *offer.Set) {
	t.Helper()
	st := catalog.NewStore()
	err := st.AddCategory(catalog.Category{
		ID: "hd",
		Schema: catalog.Schema{Attributes: []catalog.Attribute{
			{Name: "Speed"}, {Name: "Interface"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m1", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "RPM", Value: "7200"}, {Name: "Conn", Value: "SATA"},
		}},
		{ID: "o2", Merchant: "m2", CategoryID: "hd", Spec: catalog.Spec{
			{Name: "Speed", Value: "5400"},
		}},
	})
	return st, offers
}

func TestCandidatesUniverse(t *testing.T) {
	st, offers := fixture(t)
	cands := Candidates(st, offers)
	// m1: 2 catalog x 2 merchant = 4; m2: 2 x 1 = 2.
	if len(cands) != 6 {
		t.Fatalf("candidates = %d, want 6", len(cands))
	}
	// Deterministic order: merchants sorted, catalog attrs sorted.
	if cands[0].Key.Merchant != "m1" || cands[0].CatalogAttr != "Interface" {
		t.Errorf("first candidate = %+v", cands[0])
	}
	again := Candidates(st, offers)
	for i := range cands {
		if cands[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestCandidatesSkipsUnknownCategory(t *testing.T) {
	st, _ := fixture(t)
	offers := offer.NewSet([]offer.Offer{
		{ID: "o1", Merchant: "m", CategoryID: "nope", Spec: catalog.Spec{{Name: "A", Value: "v"}}},
	})
	if got := Candidates(st, offers); len(got) != 0 {
		t.Errorf("candidates = %v", got)
	}
}

func TestSortScored(t *testing.T) {
	key := offer.SchemaKey{Merchant: "m", CategoryID: "c"}
	s := []correspond.Scored{
		{Candidate: correspond.Candidate{Key: key, CatalogAttr: "B", MerchantAttr: "x"}, Score: 0.5},
		{Candidate: correspond.Candidate{Key: key, CatalogAttr: "A", MerchantAttr: "x"}, Score: 0.9},
		{Candidate: correspond.Candidate{Key: key, CatalogAttr: "A", MerchantAttr: "a"}, Score: 0.5},
	}
	SortScored(s)
	if s[0].Score != 0.9 {
		t.Errorf("not sorted: %+v", s)
	}
	// Tie at 0.5: catalog attr A before B.
	if s[1].CatalogAttr != "A" || s[2].CatalogAttr != "B" {
		t.Errorf("tie-break wrong: %+v", s)
	}
}
