package correspond

import (
	"prodsynth/internal/ml"
)

// TrainingSet is the automatically labeled training data of §3.2.
type TrainingSet struct {
	Examples []ml.Example
	// Indices maps each example back to its candidate index in the
	// feature table (for diagnostics).
	Indices []int
	// Positives counts label-1 examples.
	Positives int
}

// BuildTrainingSet constructs the training set from name-identity candidate
// tuples, with no manual labeling (§3.2):
//
//   - every name-identity candidate <A, A, M, C> is a positive example;
//   - every candidate <A, B, M, C> with A ≠ B for which the name identity
//     <A, A, M, C> also exists is a negative example (a merchant uses
//     exactly one name for a catalog attribute);
//   - all other candidates are unlabeled and excluded.
func BuildTrainingSet(ft *FeatureTable) *TrainingSet {
	// First collect, per (key, catalog attribute), whether a name
	// identity candidate exists.
	hasIdentity := make(map[string]bool)
	idKey := func(c Candidate) string {
		return c.Key.Merchant + "\x00" + c.Key.CategoryID + "\x00" + c.CatalogAttr
	}
	for _, c := range ft.Candidates() {
		if c.NameIdentity() {
			hasIdentity[idKey(c)] = true
		}
	}

	ts := &TrainingSet{}
	for i, c := range ft.Candidates() {
		switch {
		case c.NameIdentity():
			ts.Examples = append(ts.Examples, ml.Example{Features: ft.Features(i), Label: 1})
			ts.Indices = append(ts.Indices, i)
			ts.Positives++
		case hasIdentity[idKey(c)]:
			ts.Examples = append(ts.Examples, ml.Example{Features: ft.Features(i), Label: 0})
			ts.Indices = append(ts.Indices, i)
		}
	}
	return ts
}
