package lint

import (
	"go/ast"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// ErrWrapCheck enforces the error contract on sentinel errors: a
// fmt.Errorf that stringifies an Err* sentinel (ErrBadModel,
// ErrBadCatalog, ErrBadBundle, ErrFetch*, ErrNotLearned, ...) must use
// %w, so errors.Is keeps matching through every decoder and wrapper —
// the snapfmt decode paths wrap their sentinel, never replace it.
var ErrWrapCheck = &Analyzer{
	Name: "errwrapcheck",
	Doc:  "fmt.Errorf over an Err* sentinel must wrap with %w, not stringify",
	Run:  runErrWrapCheck,
}

func runErrWrapCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f.Ast, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || f.PkgSel(call.Fun, "fmt") != "Errorf" || len(call.Args) < 2 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				name := sentinelName(arg)
				if name == "" || i >= len(verbs) {
					continue
				}
				if verbs[i] != 'w' {
					pass.Reportf(arg.Pos(),
						"sentinel %s formatted with %%%c: use %%w so errors.Is(err, %s) still matches through the wrap", name, verbs[i], name)
				}
			}
			return true
		})
	}
}

// sentinelName returns the name of an Err* sentinel reference (a bare
// ErrFoo identifier or a pkg.ErrFoo selector); empty otherwise.
func sentinelName(e ast.Expr) string {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return ""
	}
	rest, ok := cutErrPrefix(name)
	if !ok {
		return ""
	}
	r, _ := utf8.DecodeRuneInString(rest)
	if !unicode.IsUpper(r) {
		return ""
	}
	return name
}

func cutErrPrefix(name string) (string, bool) {
	if len(name) > 3 && name[:3] == "Err" {
		return name[3:], true
	}
	return "", false
}

// formatVerbs returns the verb letter of each argument-consuming verb in
// a Printf format string, in order. Flags, width, and precision are
// skipped; * consumes an argument and is returned as '*'; %% consumes
// nothing.
func formatVerbs(format string) []byte {
	var out []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // %% literal
			}
			if c == '*' {
				out = append(out, '*')
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == '#' || c == ' ' {
				i++
				continue
			}
			out = append(out, c)
			break
		}
	}
	return out
}
