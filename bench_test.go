package prodsynth

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§5) — one benchmark per artifact — plus the ablation sweeps
// from DESIGN.md and end-to-end phase benchmarks. Quality numbers are
// attached to each benchmark via b.ReportMetric, so a single
//
//	go test -bench=. -benchmem
//
// run prints both the cost (ns/op, allocs) and the reproduced metrics
// (precision, coverage) side by side. EXPERIMENTS.md records a reference
// run against the paper's reported values.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"prodsynth/internal/catalog"
	"prodsynth/internal/core"
	"prodsynth/internal/experiments"
	"prodsynth/internal/fusion"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/synth"
)

// benchGen is the marketplace used by the benchmarks: large enough for the
// paper's effects to be visible, small enough for -bench runs to stay
// interactive.
var benchGen = synth.Config{
	Seed:                1,
	CategoriesPerDomain: 4,
	ProductsPerCategory: 60,
	Merchants:           60,
}

var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnvVal, benchEnvErr = experiments.Setup(context.Background(), benchGen, core.Config{})
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// BenchmarkTable2EndToEnd reproduces Table 2: full pipeline quality.
func BenchmarkTable2EndToEnd(b *testing.B) {
	env := benchEnv(b)
	var r experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(env)
	}
	b.ReportMetric(r.AttributePrec, "attr-precision")
	b.ReportMetric(r.ProductPrec, "product-precision")
	b.ReportMetric(float64(r.Products), "products")
	b.ReportMetric(float64(r.AttributePairs), "attribute-pairs")
}

// BenchmarkTable3PerCategory reproduces Table 3: per top-level category.
func BenchmarkTable3PerCategory(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rs := experiments.Table3(env)
		for _, r := range rs {
			b.ReportMetric(r.AvgAttrsPerProduct(), shorten(r.TopLevel)+"-avg-attrs")
			b.ReportMetric(r.ProductPrecision(), shorten(r.TopLevel)+"-product-prec")
		}
	}
}

// BenchmarkTable4Recall reproduces Table 4: recall by offer-set size.
func BenchmarkTable4Recall(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		heavy, light := experiments.Table4(env)
		b.ReportMetric(heavy.AttributeRecall, "recall-ge10")
		b.ReportMetric(light.AttributeRecall, "recall-lt10")
		b.ReportMetric(heavy.AttributePrecision, "precision-ge10")
		b.ReportMetric(light.AttributePrecision, "precision-lt10")
	}
}

// benchFigure runs one figure builder and reports each system's exact
// coverage at precision 0.85.
func benchFigure(b *testing.B, build func(*experiments.Env) (*experiments.Figure, error)) {
	env := benchEnv(b)
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = build(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range fig.Names {
		b.ReportMetric(float64(fig.CoverageAt(name, 0.85)), "cov@0.85-"+shorten(name))
	}
}

func shorten(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch r {
		case ' ', '(', ')', '\t', '&', '§':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFigure6SingleFeature reproduces Figure 6.
func BenchmarkFigure6SingleFeature(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFigure7NoHistory reproduces Figure 7.
func BenchmarkFigure7NoHistory(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8Baselines reproduces Figure 8.
func BenchmarkFigure8Baselines(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9ComaDelta reproduces Figure 9.
func BenchmarkFigure9ComaDelta(b *testing.B) { benchFigure(b, experiments.Figure9) }

// BenchmarkAblationDropFeature sweeps drop-one-feature retraining.
func BenchmarkAblationDropFeature(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationDropFeature(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Cov90), "cov@0.9-"+shorten(r.Name))
	}
}

// BenchmarkAblationFusion compares fusion strategies.
func BenchmarkAblationFusion(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationFusion(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Metric1, "attr-prec-"+shorten(r.Name))
	}
}

// BenchmarkAblationClusterKeys compares clustering key sets.
func BenchmarkAblationClusterKeys(b *testing.B) {
	env := benchEnv(b)
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationClusterKeys(context.Background(), env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Metric2, "products-"+shorten(r.Name))
	}
}

// BenchmarkOfflineLearning measures the offline phase alone on a fresh
// marketplace (generation excluded from the timed region).
func BenchmarkOfflineLearning(b *testing.B) {
	ds := synth.Generate(benchGen)
	fetcher := core.MapFetcher(ds.Pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.HistoricalOffers))/float64(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}

// BenchmarkRuntimePipeline measures the runtime phase alone.
func BenchmarkRuntimePipeline(b *testing.B) {
	env := benchEnv(b)
	fetcher := core.MapFetcher(env.Dataset.Pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunRuntime(context.Background(), env.Dataset.Catalog, env.Offline, env.Dataset.IncomingOffers, fetcher, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(env.Dataset.IncomingOffers))/float64(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}

// ---------------------------------------------------------------------------
// Cold vs warm index benchmarks: the payoff of the shared category-index
// registry. "Cold" hands the matcher a fresh registry every iteration —
// the seed behavior, where every Matcher.Run rebuilt each category's index
// (and before the registry, every worker goroutine rebuilt it again). "Warm"
// shares one registry across iterations — the batch/serving steady state.

// expGen is the ExperimentMarketplaceConfig-scale marketplace for the
// end-to-end warm/cold comparison.
var (
	expGenOnce sync.Once
	expGenDS   *synth.Dataset
)

func experimentDataset() *synth.Dataset {
	expGenOnce.Do(func() {
		cfg := synth.ExperimentConfig()
		cfg.Seed = 1
		expGenDS = synth.Generate(cfg)
	})
	return expGenDS
}

// matcherBenchInput is one serving-shaped wave: a 500-offer batch against
// the full experiment-scale catalog. Small batches against a large catalog
// are where index construction dominates — the seed paid it per worker per
// run; the registry pays it once ever.
func matcherBenchInput(ds *synth.Dataset) *offer.Set {
	n := 500
	if n > len(ds.HistoricalOffers) {
		n = len(ds.HistoricalOffers)
	}
	return offer.NewSet(ds.HistoricalOffers[:n])
}

// BenchmarkMatcherSeedPerWorkerRebuild reproduces the seed's matching
// cost model: each of the 8 workers holds private per-category state, so
// every worker rebuilds the index of every category its chunk touches, on
// every run. (Implemented as 8 parallel single-worker Matchers, each with
// its own fresh registry — exactly the per-goroutine caches the seed kept.)
func BenchmarkMatcherSeedPerWorkerRebuild(b *testing.B) {
	ds := experimentDataset()
	set := matcherBenchInput(ds)
	all := set.All()
	const workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		chunk := (len(all) + workers - 1) / workers
		for start := 0; start < len(all); start += chunk {
			end := start + chunk
			if end > len(all) {
				end = len(all)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				m := match.Matcher{Workers: 1, Registry: match.NewRegistry()}
				m.Run(ds.Catalog, offer.NewSet(all[lo:hi]))
			}(start, end)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(set.Len())/(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}

// BenchmarkMatcherColdIndex measures Matcher.Run with a fresh shared
// registry per iteration: every category index is rebuilt once per run
// (already W× better than the seed's per-worker rebuilds).
func BenchmarkMatcherColdIndex(b *testing.B) {
	ds := experimentDataset()
	set := matcherBenchInput(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := match.Matcher{Workers: 8, Registry: match.NewRegistry()}
		if ms := m.Run(ds.Catalog, set); ms.Len() == 0 {
			b.Fatal("no matches")
		}
	}
	b.ReportMetric(float64(set.Len())/(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}

// BenchmarkMatcherWarmIndex measures Matcher.Run against a warm registry:
// category indexes are built once before the timer and reused by every
// iteration.
func BenchmarkMatcherWarmIndex(b *testing.B) {
	ds := experimentDataset()
	set := matcherBenchInput(ds)
	m := match.Matcher{Workers: 8, Registry: match.NewRegistry()}
	m.Run(ds.Catalog, set) // warm the registry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ms := m.Run(ds.Catalog, set); ms.Len() == 0 {
			b.Fatal("no matches")
		}
	}
	b.ReportMetric(float64(set.Len())/(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}

// growthBenchSetup builds a private single-category store (so catalog
// mutation cannot leak into the shared experiment dataset) plus a batch
// of offers against it, for the AddProduct → re-match benchmarks.
func growthBenchSetup(b *testing.B, products, offers int) (*catalog.Store, *offer.Set) {
	b.Helper()
	st := catalog.NewStore()
	cat := catalog.Category{ID: "hd", Schema: catalog.Schema{Attributes: []catalog.Attribute{
		{Name: "Brand"}, {Name: "Model"}, {Name: catalog.AttrMPN, Kind: catalog.KindIdentifier},
	}}}
	if err := st.AddCategory(cat); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < products; i++ {
		if err := st.AddProduct(catalog.Product{ID: fmt.Sprintf("p%d", i), CategoryID: "hd",
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Seagate"},
				{Name: "Model", Value: fmt.Sprintf("Model %d", i)},
				{Name: catalog.AttrMPN, Value: fmt.Sprintf("MPN%07d", i)},
			}}); err != nil {
			b.Fatal(err)
		}
	}
	offs := make([]offer.Offer, offers)
	for i := range offs {
		offs[i] = offer.Offer{ID: fmt.Sprintf("o%d", i), Merchant: "m", CategoryID: "hd",
			Title: fmt.Sprintf("Seagate Model %d MPN%07d hard drive", i%products, i%products)}
	}
	return st, offer.NewSet(offs)
}

// BenchmarkMatcherIncrementalUpdate measures the catalog-growth steady
// state: every iteration inserts one product (bumping the category
// version) and re-matches a 500-offer batch, so the registry applies a
// posting-list delta per iteration instead of re-tokenizing the 5000-
// product category.
func BenchmarkMatcherIncrementalUpdate(b *testing.B) {
	st, set := growthBenchSetup(b, 5000, 500)
	reg := match.NewRegistry()
	m := match.Matcher{Workers: 8, Registry: reg}
	m.Run(st, set) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AddProduct(catalog.Product{ID: fmt.Sprintf("new%d", i), CategoryID: "hd",
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Seagate"},
				{Name: "Model", Value: fmt.Sprintf("New Model %d", i)},
				{Name: catalog.AttrMPN, Value: fmt.Sprintf("NEW%07d", i)},
			}}); err != nil {
			b.Fatal(err)
		}
		m.Run(st, set)
	}
	b.StopTimer()
	if reg.Deltas() < int64(b.N) {
		b.Fatalf("Deltas = %d over %d iterations; growth did not take the incremental path", reg.Deltas(), b.N)
	}
}

// BenchmarkMatcherRebuildAfterAdd is the same workload on a fresh
// registry every iteration — the cost model incremental updates replace
// (full category re-tokenization after every insertion).
func BenchmarkMatcherRebuildAfterAdd(b *testing.B) {
	st, set := growthBenchSetup(b, 5000, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.AddProduct(catalog.Product{ID: fmt.Sprintf("new%d", i), CategoryID: "hd",
			Spec: catalog.Spec{
				{Name: "Brand", Value: "Seagate"},
				{Name: "Model", Value: fmt.Sprintf("New Model %d", i)},
				{Name: catalog.AttrMPN, Value: fmt.Sprintf("NEW%07d", i)},
			}}); err != nil {
			b.Fatal(err)
		}
		m := match.Matcher{Workers: 8, Registry: match.NewRegistry()}
		m.Run(st, set)
	}
}

// benchBatches splits the experiment-scale incoming offers into n batches.
func benchBatches(ds *synth.Dataset, n int) [][]Offer {
	batches := make([][]Offer, n)
	for i, o := range ds.IncomingOffers {
		batches[i%n] = append(batches[i%n], o)
	}
	return batches
}

// benchSystem learns once over the experiment-scale marketplace and is
// shared by the batch benchmarks.
var (
	benchSysOnce sync.Once
	benchSysVal  *System
	benchSysErr  error
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	ds := experimentDataset()
	benchSysOnce.Do(func() {
		sys := New(ds.Catalog, Config{})
		benchSysErr = sys.Learn(ds.HistoricalOffers, MapFetcher(ds.Pages))
		benchSysVal = sys
	})
	if benchSysErr != nil {
		b.Fatal(benchSysErr)
	}
	return benchSysVal
}

// BenchmarkSynthesizeBatches runs the batch API over the experiment-scale
// incoming stream split into 8 waves, with warm offline state and warm
// indexes — the steady-state serving cost per offer.
func BenchmarkSynthesizeBatches(b *testing.B) {
	ds := experimentDataset()
	sys := benchSystem(b)
	batches := benchBatches(ds, 8)
	fetcher := MapFetcher(ds.Pages)
	if _, err := sys.SynthesizeBatches(batches, fetcher); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *BatchResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = sys.SynthesizeBatches(batches, fetcher)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.IncomingOffers))/(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
	b.ReportMetric(float64(len(res.Total.Products)), "products")
}

// BenchmarkSynthesizeStream runs the streaming API over the same 8-wave
// split as BenchmarkSynthesizeBatches, with cross-batch cluster memory on
// — the continuous-feed serving cost per offer, including the per-wave
// re-fusion of extended clusters and the final merge.
func BenchmarkSynthesizeStream(b *testing.B) {
	ds := experimentDataset()
	sys := benchSystem(b)
	batches := benchBatches(ds, 8)
	fetcher := MapFetcher(ds.Pages)
	b.ResetTimer()
	var merged int
	for i := 0; i < b.N; i++ {
		in := make(chan []Offer)
		out, err := sys.SynthesizeStream(context.Background(), in, fetcher, StreamOptions{Buffer: 1})
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for _, w := range batches {
				in <- w
			}
			close(in)
		}()
		for r := range out {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if r.Final {
				merged = len(r.Products)
			}
		}
	}
	b.ReportMetric(float64(len(ds.IncomingOffers))/(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
	b.ReportMetric(float64(merged), "products")
}

// delayFetcher simulates crawl latency: every Fetch sleeps before serving
// from the in-memory map — the workload shape where wave preparation is
// fetch-bound and cross-wave pipelining has something to overlap.
type delayFetcher struct {
	inner MapFetcher
	d     time.Duration
}

func (f delayFetcher) Fetch(url string) (string, error) {
	time.Sleep(f.d)
	return f.inner.Fetch(url)
}

// delayStrategy simulates an expensive fusion strategy (every Fuse call
// sleeps), so the fuse stage carries real wall time for the prepare stage
// of the next wave to hide.
type delayStrategy struct {
	inner fusion.Strategy
	d     time.Duration
}

func (s delayStrategy) Fuse(candidates []string) string {
	time.Sleep(s.d)
	return s.inner.Fuse(candidates)
}

// pipelinedBenchSetup learns a System over the small test marketplace
// (fast fetcher — learning cost is not the subject) and returns the slow
// fetcher + slow fusion configuration the pipelined benchmarks stream
// with.
var (
	pipeBenchOnce sync.Once
	pipeBenchDS   *synth.Dataset
	pipeBenchErr  error
)

func pipelinedBenchDataset(b *testing.B) *synth.Dataset {
	b.Helper()
	pipeBenchOnce.Do(func() {
		pipeBenchDS = synth.Generate(synth.Config{
			Seed:                21,
			CategoriesPerDomain: 2,
			ProductsPerCategory: 20,
			Merchants:           20,
		})
	})
	if pipeBenchErr != nil {
		b.Fatal(pipeBenchErr)
	}
	return pipeBenchDS
}

// benchStreamSlow runs the slow-fetcher workload once through
// SynthesizeStream and returns the merged product count. 16 waves, so
// the pipeline has many prepare/fuse pairs to overlap and the
// un-overlappable ends (the first prepare, the final merge fuse) are a
// small fraction of the run.
func benchStreamSlow(b *testing.B, sys *System, ds *synth.Dataset, fetcher PageFetcher) int {
	b.Helper()
	waves := benchBatches(ds, 16)
	in := make(chan []Offer)
	out, err := sys.SynthesizeStream(context.Background(), in, fetcher, StreamOptions{})
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for _, w := range waves {
			in <- w
		}
		close(in)
	}()
	merged := 0
	for r := range out {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		if r.Final {
			merged = len(r.Products)
		}
	}
	return merged
}

// BenchmarkSynthesizeStreamPipelined measures the streaming pipeline on a
// slow-fetcher, slow-fusion workload — 16 waves where wave preparation
// (page fetches) and cluster fusion both carry real wall time, so a
// pipelined runtime can overlap wave n+1's prepare with wave n's fuse.
// Compare against BenchmarkSynthesizeStreamBarrier, which runs the same
// workload with cross-wave pipelining disabled (the pre-pipeline
// execution model: each wave fully fuses before the next is touched).
func BenchmarkSynthesizeStreamPipelined(b *testing.B) {
	ds := pipelinedBenchDataset(b)
	model, err := Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Fusion: delayStrategy{inner: fusion.Centroid{}, d: 200 * time.Microsecond}}
	sys := NewSystem(ds.Catalog, model, WithConfig(cfg))
	fetcher := delayFetcher{inner: MapFetcher(ds.Pages), d: 5 * time.Millisecond}
	benchStreamSlow(b, sys, ds, fetcher) // warm the match indexes
	b.ResetTimer()
	var merged int
	for i := 0; i < b.N; i++ {
		merged = benchStreamSlow(b, sys, ds, fetcher)
	}
	b.ReportMetric(float64(merged), "products")
}

// BenchmarkSynthesizeStreamBarrier is the pipelining baseline: the exact
// workload of BenchmarkSynthesizeStreamPipelined with cross-wave
// pipelining disabled (Config.StageBuffer < 0), so each wave fully fuses
// before the next wave's prepare starts. The delta between the two is the
// wall time pipelining hides.
func BenchmarkSynthesizeStreamBarrier(b *testing.B) {
	ds := pipelinedBenchDataset(b)
	model, err := Learn(context.Background(), ds.Catalog, ds.HistoricalOffers, MapFetcher(ds.Pages))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Fusion: delayStrategy{inner: fusion.Centroid{}, d: 200 * time.Microsecond}}
	sys := NewSystem(ds.Catalog, model, WithConfig(cfg), WithStageBuffer(-1))
	fetcher := delayFetcher{inner: MapFetcher(ds.Pages), d: 5 * time.Millisecond}
	benchStreamSlow(b, sys, ds, fetcher) // warm the match indexes
	b.ResetTimer()
	var merged int
	for i := 0; i < b.N; i++ {
		merged = benchStreamSlow(b, sys, ds, fetcher)
	}
	b.ReportMetric(float64(merged), "products")
}

// BenchmarkSynthesizeOneShotCold measures one runtime pass per iteration
// with a truly cold matcher registry: the offline state is learned once
// (untimed, in its own registry), and each timed run gets a fresh registry
// so every category index is rebuilt — the cold half of the cold-vs-warm
// end-to-end comparison. Learn must not share the per-iteration registry,
// or it would warm the indexes the timed region is supposed to build.
func BenchmarkSynthesizeOneShotCold(b *testing.B) {
	ds := experimentDataset()
	fetcher := core.MapFetcher(ds.Pages)
	learnCfg := core.Config{}
	learnCfg.Matcher.Registry = match.NewRegistry()
	offline, err := core.RunOffline(context.Background(), ds.Catalog, ds.HistoricalOffers, fetcher, learnCfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.Config{}
		cfg.Matcher.Registry = match.NewRegistry()
		if _, err := core.RunRuntime(context.Background(), ds.Catalog, offline, ds.IncomingOffers, fetcher, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(ds.IncomingOffers))/(b.Elapsed().Seconds()/float64(b.N)), "offers/s")
}
