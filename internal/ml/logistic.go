// Package ml provides the learning substrate the paper relies on: binary
// logistic regression (used by the Attribute Correspondence classifier, §3.2,
// citing Hosmer & Lemeshow) and multi-class Naive Bayes (used by the title
// category classifier of §2 and the LSD baseline of Appendix C), plus the
// usual evaluation metrics.
//
// Everything is implemented on dense []float64 feature vectors with no
// external dependencies. Training is deterministic given the same inputs.
package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Example is one labeled training instance.
type Example struct {
	Features []float64
	// Label is 1 for positive, 0 for negative.
	Label int
}

// LogisticConfig controls training of the logistic regression model.
type LogisticConfig struct {
	// Epochs is the number of passes over the training set (default 200).
	Epochs int
	// LearningRate is the SGD step size (default 0.1).
	LearningRate float64
	// L2 is the L2 regularization strength (default 1e-4).
	L2 float64
	// Seed seeds the shuffling of examples between epochs.
	Seed int64
	// ClassWeighting, when true, up-weights the minority class so that
	// both classes contribute equal total gradient mass. The automatically
	// constructed training set of §3.2 is imbalanced (16,213 positives of
	// 76,635 examples in the paper), so this defaults to on in the
	// pipeline configuration.
	ClassWeighting bool
}

func (c LogisticConfig) withDefaults() LogisticConfig {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
	return c
}

// Logistic is a trained binary logistic regression model.
type Logistic struct {
	// Weights has one coefficient per feature.
	Weights []float64
	// Bias is the intercept term.
	Bias float64
}

// ErrNoTrainingData is returned when the training set is empty or
// single-class.
var ErrNoTrainingData = errors.New("ml: training set empty or single-class")

// TrainLogistic fits a logistic regression model with SGD.
func TrainLogistic(examples []Example, cfg LogisticConfig) (*Logistic, error) {
	cfg = cfg.withDefaults()
	if len(examples) == 0 {
		return nil, ErrNoTrainingData
	}
	dim := len(examples[0].Features)
	pos, neg := 0, 0
	for _, ex := range examples {
		if len(ex.Features) != dim {
			return nil, fmt.Errorf("ml: inconsistent feature dimension: %d vs %d", len(ex.Features), dim)
		}
		if ex.Label == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("%w: %d positive, %d negative", ErrNoTrainingData, pos, neg)
	}

	wPos, wNeg := 1.0, 1.0
	if cfg.ClassWeighting {
		// Equalize total class mass: weight_c = N / (2 * N_c).
		n := float64(len(examples))
		wPos = n / (2 * float64(pos))
		wNeg = n / (2 * float64(neg))
	}

	model := &Logistic{Weights: make([]float64, dim)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		// Decay the step size mildly for stable convergence.
		lr := cfg.LearningRate / (1 + 0.01*float64(epoch))
		for _, idx := range order {
			ex := examples[idx]
			p := model.Prob(ex.Features)
			grad := p - float64(ex.Label)
			w := wNeg
			if ex.Label == 1 {
				w = wPos
			}
			g := lr * w * grad
			for j, x := range ex.Features {
				model.Weights[j] -= g*x + lr*cfg.L2*model.Weights[j]
			}
			model.Bias -= g
		}
	}
	return model, nil
}

// Prob returns P(label=1 | features).
func (m *Logistic) Prob(features []float64) float64 {
	z := m.Bias
	for i, w := range m.Weights {
		if i < len(features) {
			z += w * features[i]
		}
	}
	return sigmoid(z)
}

// Predict returns 1 if Prob >= threshold.
func (m *Logistic) Predict(features []float64, threshold float64) int {
	if m.Prob(features) >= threshold {
		return 1
	}
	return 0
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Metrics summarizes binary classification quality.
type Metrics struct {
	TP, FP, TN, FN int
}

// Evaluate scores a model over a labeled set at the given threshold.
func Evaluate(m *Logistic, examples []Example, threshold float64) Metrics {
	var out Metrics
	for _, ex := range examples {
		pred := m.Predict(ex.Features, threshold)
		switch {
		case pred == 1 && ex.Label == 1:
			out.TP++
		case pred == 1 && ex.Label == 0:
			out.FP++
		case pred == 0 && ex.Label == 0:
			out.TN++
		default:
			out.FN++
		}
	}
	return out
}

// Precision returns TP / (TP+FP), or 0 when nothing was predicted positive.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP / (TP+FN), or 0 when there are no positives.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN) / total.
func (m Metrics) Accuracy() float64 {
	n := m.TP + m.FP + m.TN + m.FN
	if n == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(n)
}
