// Package core orchestrates the end-to-end product synthesis pipeline of
// Figure 4 in the paper:
//
//	Offline Learning:
//	  historical offers → web-page attribute extraction → historical
//	  offer-to-product matching → distributional feature computation →
//	  automatic training-set construction → correspondence classifier →
//	  attribute correspondences
//
//	Run-Time Offer Processing:
//	  incoming offers → category classification (if missing) → web-page
//	  attribute extraction → schema reconciliation → clustering by key
//	  attribute → value fusion → new products
//
// The package wires the substrate packages together, parallelizes the
// per-offer stages, and reports the statistics the paper's §5.1 quotes.
package core

import (
	"errors"
	"fmt"
	"sync"

	"prodsynth/internal/catalog"
	"prodsynth/internal/categorize"
	"prodsynth/internal/cluster"
	"prodsynth/internal/correspond"
	"prodsynth/internal/extract"
	"prodsynth/internal/fusion"
	"prodsynth/internal/match"
	"prodsynth/internal/offer"
	"prodsynth/internal/reconcile"
)

// PageFetcher retrieves landing pages by URL. Production systems would
// back this with a crawler cache; tests and experiments use MapFetcher.
type PageFetcher interface {
	Fetch(url string) (html string, err error)
}

// MapFetcher serves pages from an in-memory map.
type MapFetcher map[string]string

// ErrPageNotFound is returned by MapFetcher for unknown URLs.
var ErrPageNotFound = errors.New("core: page not found")

// Fetch implements PageFetcher.
func (m MapFetcher) Fetch(url string) (string, error) {
	page, ok := m[url]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrPageNotFound, url)
	}
	return page, nil
}

// Config controls the pipeline.
type Config struct {
	// Extraction configures the web-page attribute extractor.
	Extraction extract.Options
	// Matcher configures historical offer-to-product matching.
	Matcher match.Matcher
	// Features configures distributional feature computation.
	Features correspond.FeatureOptions
	// Train configures classifier training.
	Train correspond.TrainOptions
	// ScoreThreshold is the classifier probability above which a
	// candidate becomes a correspondence (default 0.5).
	ScoreThreshold float64
	// ClusterKeys overrides the clustering key attributes (§4 default:
	// UPC then Model Part Number).
	ClusterKeys []string
	// Fusion selects the value fusion strategy (default Centroid).
	Fusion fusion.Strategy
	// Workers is the per-offer parallelism (default 4).
	Workers int
	// KeepMatchedIncoming disables the runtime filter that excludes
	// incoming offers matching existing catalog products (§1: synthesis
	// targets offers that cannot be matched).
	KeepMatchedIncoming bool
}

func (c Config) withDefaults() Config {
	if c.Extraction == (extract.Options{}) {
		c.Extraction = extract.DefaultOptions
	}
	if c.ScoreThreshold == 0 {
		c.ScoreThreshold = 0.5
	}
	if c.Fusion == nil {
		c.Fusion = fusion.Centroid{}
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	c.Features.UseMatches = true
	return c
}

// OfflineResult is the output of the offline learning phase.
type OfflineResult struct {
	// Offers are the historical offers with extracted specs attached.
	Offers *offer.Set
	// Matches are the historical offer-to-product matches.
	Matches *match.MatchSet
	// Features is the candidate feature table.
	Features *correspond.FeatureTable
	// Model is the trained correspondence classifier.
	Model *correspond.Model
	// Scored is every candidate with its classifier score (descending).
	Scored []correspond.Scored
	// Correspondences is the selected correspondence set used by
	// schema reconciliation.
	Correspondences *correspond.Set
	// Classifier is the title→category classifier, reused at runtime.
	Classifier *categorize.Classifier
	// Stats are the §5.1-style statistics.
	Stats OfflineStats
}

// OfflineStats mirrors the statistics reported in the paper's §5.1.
type OfflineStats struct {
	HistoricalOffers  int
	MatchedOffers     int
	Candidates        int
	TrainingSize      int
	TrainingPositives int
	Correspondences   int
}

// RunOffline executes the offline learning phase.
func RunOffline(store *catalog.Store, historical []offer.Offer, pages PageFetcher, cfg Config) (*OfflineResult, error) {
	cfg = cfg.withDefaults()

	classifier := categorize.New()
	classifier.TrainFromCatalog(store)
	withCat := make([]offer.Offer, len(historical))
	copy(withCat, historical)
	classifier.Assign(withCat)

	enriched := extractSpecs(withCat, pages, cfg)
	set := offer.NewSet(enriched)

	matches := cfg.Matcher.Run(store, set)
	if matches.Len() == 0 {
		return nil, errors.New("core: no historical offer-to-product matches; offline learning has no signal")
	}

	ft := correspond.ComputeFeatures(store, set, matches, cfg.Features)
	model, err := correspond.Train(ft, cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("core: offline training: %w", err)
	}
	scored := model.ScoreAll(ft)
	selected := correspond.Select(scored, cfg.ScoreThreshold)

	return &OfflineResult{
		Offers:          set,
		Matches:         matches,
		Features:        ft,
		Model:           model,
		Scored:          scored,
		Correspondences: selected,
		Classifier:      classifier,
		Stats: OfflineStats{
			HistoricalOffers:  len(historical),
			MatchedOffers:     matches.Len(),
			Candidates:        ft.Len(),
			TrainingSize:      model.TrainingSize,
			TrainingPositives: model.TrainingPositives,
			Correspondences:   selected.Len(),
		},
	}, nil
}

// OfflineFromCorrespondences wraps a previously learned correspondence set
// (e.g. loaded via correspond.ReadSet) so the runtime pipeline can run
// without repeating the offline phase. The classifier may be nil when every
// incoming offer carries a category.
func OfflineFromCorrespondences(set *correspond.Set, classifier *categorize.Classifier) *OfflineResult {
	return &OfflineResult{
		Correspondences: set,
		Classifier:      classifier,
		Stats:           OfflineStats{Correspondences: set.Len()},
	}
}

// RuntimeResult is the output of the runtime offer processing pipeline.
type RuntimeResult struct {
	// Products are the synthesized product instances.
	Products []fusion.Synthesized
	// Reconcile counts pair translation outcomes.
	Reconcile reconcile.Stats
	// Clusters summarizes the clustering step.
	Clusters cluster.Stats
	// SkippedNoKey are reconciled offers with no key attribute.
	SkippedNoKey []offer.Offer
	// ExcludedMatched counts incoming offers dropped because they match
	// an existing catalog product.
	ExcludedMatched int
}

// RunRuntime executes the runtime pipeline over incoming offers using the
// artifacts of an offline learning run.
func RunRuntime(store *catalog.Store, offline *OfflineResult, incoming []offer.Offer, pages PageFetcher, cfg Config) (*RuntimeResult, error) {
	cfg = cfg.withDefaults()
	if offline == nil || offline.Correspondences == nil {
		return nil, errors.New("core: offline result required")
	}

	withCat := make([]offer.Offer, len(incoming))
	copy(withCat, incoming)
	if offline.Classifier != nil {
		offline.Classifier.Assign(withCat)
	}

	enriched := extractSpecs(withCat, pages, cfg)

	res := &RuntimeResult{}
	if !cfg.KeepMatchedIncoming {
		// Offers matching existing products are associated with them
		// rather than synthesized (§1); exclude them here.
		set := offer.NewSet(enriched)
		matches := cfg.Matcher.Run(store, set)
		var kept []offer.Offer
		for _, o := range enriched {
			if _, ok := matches.ProductFor(o.ID); ok {
				res.ExcludedMatched++
				continue
			}
			kept = append(kept, o)
		}
		enriched = kept
	}

	reconciled, rstats := reconcile.Offers(enriched, offline.Correspondences)
	res.Reconcile = rstats

	clusters, skipped := cluster.Group(reconciled, cluster.Options{KeyAttrs: cfg.ClusterKeys})
	res.SkippedNoKey = skipped
	res.Clusters = cluster.Summarize(clusters, skipped)

	res.Products = fusion.SynthesizeAll(clusters, cfg.Fusion)
	return res, nil
}

// extractSpecs fetches each offer's landing page and merges extracted
// attribute-value pairs into the offer spec (feed pairs win on name
// conflict). Offers whose page cannot be fetched keep their feed spec —
// the pipeline tolerates crawl gaps.
func extractSpecs(offers []offer.Offer, pages PageFetcher, cfg Config) []offer.Offer {
	out := make([]offer.Offer, len(offers))
	var wg sync.WaitGroup
	chunk := (len(offers) + cfg.Workers - 1) / cfg.Workers
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < len(offers); start += chunk {
		end := start + chunk
		if end > len(offers) {
			end = len(offers)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				o := offers[i].Clone()
				if pages != nil {
					if page, err := pages.Fetch(o.URL); err == nil {
						extracted := extract.WithOptions(page, cfg.Extraction)
						have := make(map[string]bool, len(o.Spec))
						for _, av := range o.Spec {
							have[av.Name] = true
						}
						for _, av := range extracted {
							if !have[av.Name] {
								o.Spec = append(o.Spec, av)
							}
						}
					}
				}
				out[i] = o
			}
		}(start, end)
	}
	wg.Wait()
	return out
}
